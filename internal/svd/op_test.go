package svd

import (
	"math"
	"math/rand"
	"testing"

	"pane/internal/mat"
)

func TestDenseOpMatchesMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomDense(rng, 14, 9)
	op := DenseOp{M: a}
	x := randomDense(rng, 9, 4)
	if op.Apply(x).MaxAbsDiff(mat.Mul(a, x)) > 1e-12 {
		t.Fatal("Apply differs from dense product")
	}
	y := randomDense(rng, 14, 3)
	if op.ApplyT(y).MaxAbsDiff(mat.Mul(a.T(), y)) > 1e-12 {
		t.Fatal("ApplyT differs from dense product")
	}
	r, c := op.Dims()
	if r != 14 || c != 9 {
		t.Fatal("Dims wrong")
	}
}

func TestRandSVDOpMatchesRandSVD(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := lowRank(rng, 40, 18, 5)
	direct := RandSVD(a, 5, 3, rand.New(rand.NewSource(7)), 1)
	viaOp := RandSVDOp(DenseOp{M: a}, 5, 3, rand.New(rand.NewSource(7)), 1)
	// Same seed, same sketch, same algorithm: reconstructions must agree.
	if direct.Reconstruct().MaxAbsDiff(viaOp.Reconstruct()) > 1e-7 {
		t.Fatal("operator-based RandSVD deviates from dense RandSVD")
	}
	for i := range direct.S {
		if math.Abs(direct.S[i]-viaOp.S[i]) > 1e-7 {
			t.Fatal("singular values deviate")
		}
	}
}

func TestRandSVDOpRecoversLowRank(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := lowRank(rng, 50, 20, 3)
	res := RandSVDOp(DenseOp{M: a}, 3, 3, rng, 2)
	if res.Reconstruct().MaxAbsDiff(a) > 1e-7 {
		t.Fatal("failed to recover rank-3 matrix through the operator path")
	}
}
