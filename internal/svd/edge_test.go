package svd

import (
	"math/rand"
	"testing"

	"pane/internal/mat"
)

func TestJacobiZeroMatrix(t *testing.T) {
	res := Jacobi(mat.New(6, 4))
	for _, s := range res.S {
		if s != 0 {
			t.Fatalf("zero matrix has singular value %v", s)
		}
	}
	if res.Reconstruct().FrobeniusNorm() != 0 {
		t.Fatal("zero matrix reconstruction nonzero")
	}
}

func TestQRZeroMatrix(t *testing.T) {
	q, r := QR(mat.New(5, 3))
	if mat.Mul(q, r).FrobeniusNorm() != 0 {
		t.Fatal("zero QR reconstruction nonzero")
	}
}

func TestJacobiSingleColumn(t *testing.T) {
	a := mat.FromRows([][]float64{{3}, {4}})
	res := Jacobi(a)
	if len(res.S) != 1 || res.S[0] < 4.999 || res.S[0] > 5.001 {
		t.Fatalf("S = %v, want [5]", res.S)
	}
}

func TestRandSVDZeroMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	res := RandSVD(mat.New(10, 6), 3, 2, rng, 1)
	for _, s := range res.S {
		if s > 1e-12 {
			t.Fatalf("zero matrix RandSVD singular value %v", s)
		}
	}
}

func TestTruncateBeyondRank(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomDense(rng, 8, 5)
	res := Jacobi(a)
	tr := res.Truncate(100)
	if len(tr.S) != 5 {
		t.Fatalf("Truncate(100) kept %d values", len(tr.S))
	}
}

func TestJacobiRowOfZeros(t *testing.T) {
	// Rank-deficient with an exactly zero row must not produce NaNs.
	a := mat.FromRows([][]float64{{0, 0}, {1, 2}, {2, 4}})
	res := Jacobi(a)
	for _, v := range append(append([]float64{}, res.U.Data...), res.V.Data...) {
		if v != v {
			t.Fatal("NaN in singular vectors")
		}
	}
	if res.Reconstruct().MaxAbsDiff(a) > 1e-10 {
		t.Fatal("reconstruction failed")
	}
}
