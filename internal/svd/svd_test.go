package svd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pane/internal/mat"
)

func randomDense(rng *rand.Rand, r, c int) *mat.Dense {
	m := mat.New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// lowRank returns an r x c matrix of exact rank k (with overwhelming
// probability).
func lowRank(rng *rand.Rand, r, c, k int) *mat.Dense {
	return mat.Mul(randomDense(rng, r, k), randomDense(rng, k, c))
}

func isOrthonormalCols(m *mat.Dense, tol float64) bool {
	g := mat.MulAT(m, m)
	for i := 0; i < g.Rows; i++ {
		for j := 0; j < g.Cols; j++ {
			want := 0.0
			if i == j {
				want = 1.0
			}
			if math.Abs(g.At(i, j)-want) > tol {
				return false
			}
		}
	}
	return true
}

func TestQRReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomDense(rng, 20, 7)
	q, r := QR(a)
	if !isOrthonormalCols(q, 1e-10) {
		t.Fatal("Q columns not orthonormal")
	}
	if mat.Mul(q, r).MaxAbsDiff(a) > 1e-10 {
		t.Fatal("QR does not reconstruct A")
	}
	// R must be upper triangular.
	for i := 1; i < r.Rows; i++ {
		for j := 0; j < i; j++ {
			if math.Abs(r.At(i, j)) > 1e-12 {
				t.Fatalf("R[%d,%d] = %v below diagonal", i, j, r.At(i, j))
			}
		}
	}
}

func TestQRSquare(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomDense(rng, 9, 9)
	q, r := QR(a)
	if mat.Mul(q, r).MaxAbsDiff(a) > 1e-10 {
		t.Fatal("square QR reconstruction failed")
	}
}

func TestQRRankDeficient(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := lowRank(rng, 15, 6, 2)
	q, r := QR(a)
	if mat.Mul(q, r).MaxAbsDiff(a) > 1e-9 {
		t.Fatal("rank-deficient QR reconstruction failed")
	}
}

func TestQRPropertyReconstruct(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := 1 + rng.Intn(8)
		r := c + rng.Intn(20)
		a := randomDense(rng, r, c)
		q, rr := QR(a)
		return mat.Mul(q, rr).MaxAbsDiff(a) < 1e-9 && isOrthonormalCols(q, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestJacobiReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomDense(rng, 12, 8)
	res := Jacobi(a)
	if res.Reconstruct().MaxAbsDiff(a) > 1e-9 {
		t.Fatal("Jacobi SVD does not reconstruct")
	}
	if !isOrthonormalCols(res.U, 1e-9) || !isOrthonormalCols(res.V, 1e-9) {
		t.Fatal("singular vectors not orthonormal")
	}
	for i := 1; i < len(res.S); i++ {
		if res.S[i] > res.S[i-1]+1e-12 {
			t.Fatalf("singular values not descending: %v", res.S)
		}
	}
	for _, s := range res.S {
		if s < 0 {
			t.Fatalf("negative singular value %v", s)
		}
	}
}

func TestJacobiWideMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomDense(rng, 5, 11)
	res := Jacobi(a)
	if res.Reconstruct().MaxAbsDiff(a) > 1e-9 {
		t.Fatal("wide Jacobi SVD does not reconstruct")
	}
}

func TestJacobiKnownValues(t *testing.T) {
	// diag(3, 2) has singular values {3, 2}.
	a := mat.FromRows([][]float64{{3, 0}, {0, 2}})
	res := Jacobi(a)
	if math.Abs(res.S[0]-3) > 1e-12 || math.Abs(res.S[1]-2) > 1e-12 {
		t.Fatalf("singular values = %v, want [3 2]", res.S)
	}
}

func TestJacobiFrobeniusIdentity(t *testing.T) {
	// ||A||_F² == Σ σᵢ².
	rng := rand.New(rand.NewSource(6))
	a := randomDense(rng, 10, 6)
	res := Jacobi(a)
	var ss float64
	for _, s := range res.S {
		ss += s * s
	}
	f := a.FrobeniusNorm()
	if math.Abs(ss-f*f) > 1e-8 {
		t.Fatalf("sum σ² = %v, ||A||_F² = %v", ss, f*f)
	}
}

func TestRandSVDExactOnLowRank(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := lowRank(rng, 60, 25, 4)
	res := RandSVD(a, 4, 3, rng, 1)
	if res.Reconstruct().MaxAbsDiff(a) > 1e-7 {
		t.Fatal("RandSVD failed to recover an exactly rank-4 matrix")
	}
}

func TestRandSVDNearOptimal(t *testing.T) {
	// On a general matrix the rank-k randomized approximation should be
	// close to the optimal rank-k error given by exact SVD.
	rng := rand.New(rand.NewSource(8))
	a := randomDense(rng, 40, 20)
	// Give it decaying spectrum so truncation is meaningful.
	exact := Jacobi(a)
	for i := range exact.S {
		exact.S[i] *= math.Pow(0.5, float64(i))
	}
	a = exact.Reconstruct()
	k := 5
	opt := Jacobi(a).Truncate(k).Reconstruct()
	optErr := errNorm(a, opt)
	approx := RandSVD(a, k, 4, rng, 1).Reconstruct()
	apxErr := errNorm(a, approx)
	if apxErr > optErr*1.1+1e-9 {
		t.Fatalf("randomized error %v much worse than optimal %v", apxErr, optErr)
	}
}

func errNorm(a, b *mat.Dense) float64 {
	d := a.Clone()
	d.Sub(b)
	return d.FrobeniusNorm()
}

func TestRandSVDParallelMatchesSerial(t *testing.T) {
	base := rand.New(rand.NewSource(9))
	a := randomDense(base, 50, 30)
	r1 := RandSVD(a, 6, 2, rand.New(rand.NewSource(42)), 1)
	r2 := RandSVD(a, 6, 2, rand.New(rand.NewSource(42)), 4)
	if r1.U.MaxAbsDiff(r2.U) > 1e-9 || r1.V.MaxAbsDiff(r2.V) > 1e-9 {
		t.Fatal("parallel RandSVD differs from serial for same seed")
	}
	for i := range r1.S {
		if math.Abs(r1.S[i]-r2.S[i]) > 1e-9 {
			t.Fatal("singular values differ between serial and parallel")
		}
	}
}

func TestRandSVDUnitaryV(t *testing.T) {
	// GreedyInit's key observation requires VᵀV = I — check it holds for
	// the randomized factorization too.
	rng := rand.New(rand.NewSource(10))
	a := lowRank(rng, 30, 12, 6)
	res := RandSVD(a, 6, 3, rng, 1)
	if !isOrthonormalCols(res.V, 1e-9) {
		t.Fatal("V is not column-orthonormal")
	}
	if !isOrthonormalCols(res.U, 1e-9) {
		t.Fatal("U is not column-orthonormal")
	}
}

func TestRandSVDTruncationSmallerThanRequested(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randomDense(rng, 6, 3)
	res := RandSVD(a, 10, 2, rng, 1) // k > min dimension
	if len(res.S) > 3 {
		t.Fatalf("rank %d exceeds min dimension 3", len(res.S))
	}
}

func TestUScaled(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := lowRank(rng, 20, 10, 3)
	res := RandSVD(a, 3, 3, rng, 1)
	us := res.UScaled()
	// UΣ·Vᵀ must reconstruct like Reconstruct().
	if mat.MulBT(us, res.V).MaxAbsDiff(res.Reconstruct()) > 1e-10 {
		t.Fatal("UScaled inconsistent with Reconstruct")
	}
}

func TestOrthonormalize(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randomDense(rng, 25, 6)
	q := Orthonormalize(a)
	if !isOrthonormalCols(q, 1e-10) {
		t.Fatal("Orthonormalize output not orthonormal")
	}
}
