package svd

import (
	"math/rand"

	"pane/internal/mat"
)

// Op is an implicitly represented r x c linear operator: anything that can
// multiply a dense block from the left (A·X) and from the transposed left
// (Aᵀ·X). Randomized SVD only needs these two products, which lets
// callers factorize matrices — like NRP's personalized-PageRank proximity
// — that would be quadratically large if materialized.
type Op interface {
	Dims() (r, c int)
	// Apply returns A·x, where x is c x k.
	Apply(x *mat.Dense) *mat.Dense
	// ApplyT returns Aᵀ·x, where x is r x k.
	ApplyT(x *mat.Dense) *mat.Dense
}

// DenseOp adapts a dense matrix to the Op interface.
type DenseOp struct {
	M  *mat.Dense
	NB int
}

// Dims implements Op.
func (o DenseOp) Dims() (int, int) { return o.M.Rows, o.M.Cols }

// Apply implements Op.
func (o DenseOp) Apply(x *mat.Dense) *mat.Dense { return mat.ParMul(o.M, x, o.nb()) }

// ApplyT implements Op.
func (o DenseOp) ApplyT(x *mat.Dense) *mat.Dense {
	out := mat.New(o.M.Cols, x.Cols)
	parMulATInto(out, o.M, x, o.nb())
	return out
}

func (o DenseOp) nb() int {
	if o.NB < 1 {
		return 1
	}
	return o.NB
}

// RandSVDOp is RandSVD generalized to an implicit operator. See RandSVD
// for the algorithm; the only difference is that every product with A or
// Aᵀ goes through op.
func RandSVDOp(op Op, k, q int, rng *rand.Rand, nb int) Result {
	r, c := op.Dims()
	p := k + Oversample
	if p > c {
		p = c
	}
	if p > r {
		p = r
	}
	if k > p {
		k = p
	}
	omega := mat.New(c, p)
	for i := range omega.Data {
		omega.Data[i] = rng.NormFloat64()
	}
	qm := Orthonormalize(op.Apply(omega))
	for it := 0; it < q; it++ {
		qm = Orthonormalize(op.Apply(op.ApplyT(qm)))
	}
	// b = qmᵀ·A = (Aᵀ·qm)ᵀ, computed through ApplyT to stay implicit.
	bt := op.ApplyT(qm) // c x p
	small := Jacobi(bt.T())
	u := mat.ParMul(qm, small.U, nb)
	return Result{U: u, S: small.S, V: small.V}.Truncate(k)
}
