package svd

import (
	"math/rand"

	"pane/internal/mat"
)

// Oversample is the extra sketch width used by RandSVD beyond the target
// rank. A handful of extra columns dramatically improves the accuracy of
// the leading singular subspace at negligible cost.
const Oversample = 8

// RandSVD computes an approximate rank-k SVD of a (r x c) using Gaussian
// sketching followed by q power iterations with QR re-orthonormalization
// — simultaneous subspace iteration, the practical variant of the
// randomized block Krylov method of Musco & Musco [30] that Algorithm 3
// cites. rng drives the sketch so results are reproducible.
//
// The procedure:
//  1. Ω ← c x (k+p) Gaussian; Y ← a·Ω; Q ← orth(Y)
//  2. repeat q times: Q ← orth(a·(aᵀ·Q))
//  3. B ← Qᵀ·a  ((k+p) x c, small); exact Jacobi SVD of B
//  4. U ← Q·U_B, truncate to rank k.
//
// nb parallelizes the dense products over row blocks; results for a given
// seed are identical regardless of nb (each output row has one writer).
func RandSVD(a *mat.Dense, k, q int, rng *rand.Rand, nb int) Result {
	r, c := a.Rows, a.Cols
	p := k + Oversample
	if p > c {
		p = c
	}
	if p > r {
		p = r
	}
	if k > p {
		k = p
	}
	// Sketch.
	omega := mat.New(c, p)
	for i := range omega.Data {
		omega.Data[i] = rng.NormFloat64()
	}
	y := mat.New(r, p)
	parMulInto(y, a, omega, nb)
	qm := Orthonormalize(y)
	// Power iterations sharpen the subspace toward the top singular vectors.
	z := mat.New(c, p)
	for it := 0; it < q; it++ {
		parMulATInto(z, a, qm, nb)
		parMulInto(y, a, z, nb)
		qm = Orthonormalize(y)
	}
	// Project and decompose the small matrix exactly.
	b := mat.New(p, c)
	parMulATIntoT(b, qm, a, nb) // b = qmᵀ · a
	small := Jacobi(b)
	u := mat.ParMul(qm, small.U, nb)
	return Result{U: u, S: small.S, V: small.V}.Truncate(k)
}

// parMulInto computes dst = a*b with nb workers.
func parMulInto(dst, a, b *mat.Dense, nb int) {
	mat.ParMulInto(dst, a, b, nb)
}

// parMulATInto computes dst = aᵀ*b (c x p) with nb workers over columns of
// a. Implemented as a row-parallel pass over a with per-worker partial
// accumulators merged at the end, to keep single-writer semantics.
func parMulATInto(dst, a, b *mat.Dense, nb int) {
	if dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic("svd: parMulATInto shape mismatch")
	}
	if nb <= 1 {
		tmp := mat.MulAT(a, b)
		dst.CopyFrom(tmp)
		return
	}
	ranges := mat.SplitRanges(a.Rows, nb)
	parts := make([]*mat.Dense, len(ranges))
	mat.ParallelRanges(len(ranges), len(ranges), func(lo, hi int) {
		for w := lo; w < hi; w++ {
			rg := ranges[w]
			av := a.RowView(rg[0], rg[1])
			bv := b.RowView(rg[0], rg[1])
			parts[w] = mat.MulAT(av, bv)
		}
	})
	dst.Zero()
	for _, p := range parts {
		dst.AddScaled(1, p)
	}
}

// parMulATIntoT computes dst = aᵀ*b where a is r x p and b is r x c, with
// the same partial-sum strategy.
func parMulATIntoT(dst, a, b *mat.Dense, nb int) {
	parMulATInto(dst, a, b, nb)
}
