package svd

import (
	"math"
	"sort"

	"pane/internal/mat"
)

// Result holds a (possibly truncated) singular value decomposition
// a ≈ U · diag(S) · Vᵀ with U (r x k), S (k), V (c x k).
type Result struct {
	U *mat.Dense
	S []float64
	V *mat.Dense
}

// Jacobi computes the full SVD of a (r x c with r >= c recommended; taller
// is cheaper) using the one-sided Jacobi method: it orthogonalizes the
// columns of a working copy by Givens rotations, which simultaneously
// builds U·diag(S) and accumulates V. One-sided Jacobi is slow for big
// matrices but simple and very accurate; PANE only ever calls it on small
// projected matrices (at most (k/2+p) x d after sketching), so simplicity
// wins.
func Jacobi(a *mat.Dense) Result {
	m, n := a.Rows, a.Cols
	if m < n {
		// Decompose the transpose and swap factors: a = U S Vᵀ  <=>
		// aᵀ = V S Uᵀ.
		res := Jacobi(a.T())
		return Result{U: res.V, S: res.S, V: res.U}
	}
	u := a.Clone()
	v := mat.New(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}
	const (
		maxSweeps = 60
		eps       = 1e-14
	)
	// Column views are easier on the transpose: work with columns of u via
	// strided access. n is small (k/2 + oversample), so this is fine.
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				var app, aqq, apq float64
				for i := 0; i < m; i++ {
					up := u.At(i, p)
					uq := u.At(i, q)
					app += up * up
					aqq += uq * uq
					apq += up * uq
				}
				if math.Abs(apq) <= eps*math.Sqrt(app*aqq) {
					continue
				}
				off += apq * apq
				// Compute the Jacobi rotation that zeroes apq.
				tau := (aqq - app) / (2 * apq)
				var t float64
				if tau >= 0 {
					t = 1 / (tau + math.Sqrt(1+tau*tau))
				} else {
					t = -1 / (-tau + math.Sqrt(1+tau*tau))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				for i := 0; i < m; i++ {
					up := u.At(i, p)
					uq := u.At(i, q)
					u.Set(i, p, c*up-s*uq)
					u.Set(i, q, s*up+c*uq)
				}
				for i := 0; i < n; i++ {
					vp := v.At(i, p)
					vq := v.At(i, q)
					v.Set(i, p, c*vp-s*vq)
					v.Set(i, q, s*vp+c*vq)
				}
			}
		}
		if off == 0 {
			break
		}
	}
	// Extract singular values as column norms of u, normalize columns.
	s := make([]float64, n)
	for j := 0; j < n; j++ {
		var norm float64
		for i := 0; i < m; i++ {
			norm += u.At(i, j) * u.At(i, j)
		}
		norm = math.Sqrt(norm)
		s[j] = norm
		if norm > 0 {
			inv := 1 / norm
			for i := 0; i < m; i++ {
				u.Set(i, j, u.At(i, j)*inv)
			}
		}
	}
	// Sort by descending singular value.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return s[idx[i]] > s[idx[j]] })
	us := mat.New(m, n)
	vs := mat.New(n, n)
	ss := make([]float64, n)
	for newJ, oldJ := range idx {
		ss[newJ] = s[oldJ]
		for i := 0; i < m; i++ {
			us.Set(i, newJ, u.At(i, oldJ))
		}
		for i := 0; i < n; i++ {
			vs.Set(i, newJ, v.At(i, oldJ))
		}
	}
	return Result{U: us, S: ss, V: vs}
}

// Truncate returns the rank-k truncation of r, sharing no storage with r.
func (r Result) Truncate(k int) Result {
	if k > len(r.S) {
		k = len(r.S)
	}
	return Result{
		U: r.U.ColSlice(0, k),
		S: append([]float64(nil), r.S[:k]...),
		V: r.V.ColSlice(0, k),
	}
}

// Reconstruct returns U · diag(S) · Vᵀ.
func (r Result) Reconstruct() *mat.Dense {
	us := r.U.Clone()
	for i := 0; i < us.Rows; i++ {
		row := us.Row(i)
		for j := range row {
			row[j] *= r.S[j]
		}
	}
	return mat.MulBT(us, r.V)
}

// UScaled returns U · diag(S), the "UΣ" product GreedyInit seeds Xf with.
func (r Result) UScaled() *mat.Dense {
	us := r.U.Clone()
	for i := 0; i < us.Rows; i++ {
		row := us.Row(i)
		for j := range row {
			row[j] *= r.S[j]
		}
	}
	return us
}
