// Package svd provides the dense decompositions PANE's solver needs:
// Householder QR, one-sided Jacobi SVD for small matrices, and a
// randomized truncated SVD (subspace iteration in the style of
// Musco & Musco, NeurIPS 2015 — reference [30] of the paper) for the tall
// n x d affinity matrices. Everything is stdlib-only.
package svd

import (
	"math"

	"pane/internal/mat"
)

// QR computes a thin QR factorization of a (r x c, r >= c) using
// Householder reflections: a = q·r with q having orthonormal columns
// (r x c) and rr upper triangular (c x c).
func QR(a *mat.Dense) (q, rr *mat.Dense) {
	m, n := a.Rows, a.Cols
	if m < n {
		panic("svd: QR requires rows >= cols")
	}
	// Work on a copy; w holds the Householder vectors in its lower part.
	w := a.Clone()
	betas := make([]float64, n)
	for k := 0; k < n; k++ {
		// Compute the Householder reflector for column k below the diagonal.
		var norm float64
		for i := k; i < m; i++ {
			v := w.At(i, k)
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			betas[k] = 0
			continue
		}
		alpha := w.At(k, k)
		sign := 1.0
		if alpha < 0 {
			sign = -1.0
		}
		v0 := alpha + sign*norm
		// Normalize so v[k] = 1 implicitly; beta = v0 / (sign*norm) form.
		betas[k] = v0 / (sign * norm)
		inv := 1 / v0
		for i := k + 1; i < m; i++ {
			w.Set(i, k, w.At(i, k)*inv)
		}
		w.Set(k, k, -sign*norm) // R diagonal entry
		// Apply the reflector to the remaining columns.
		for j := k + 1; j < n; j++ {
			var s float64
			s = w.At(k, j)
			for i := k + 1; i < m; i++ {
				s += w.At(i, k) * w.At(i, j)
			}
			s *= betas[k]
			w.Set(k, j, w.At(k, j)-s)
			for i := k + 1; i < m; i++ {
				w.Set(i, j, w.At(i, j)-s*w.At(i, k))
			}
		}
	}
	// Extract R.
	rr = mat.New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			rr.Set(i, j, w.At(i, j))
		}
	}
	// Accumulate Q by applying the reflectors to the identity, in reverse.
	q = mat.New(m, n)
	for j := 0; j < n; j++ {
		q.Set(j, j, 1)
	}
	for k := n - 1; k >= 0; k-- {
		if betas[k] == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			s := q.At(k, j)
			for i := k + 1; i < m; i++ {
				s += w.At(i, k) * q.At(i, j)
			}
			s *= betas[k]
			q.Set(k, j, q.At(k, j)-s)
			for i := k + 1; i < m; i++ {
				q.Set(i, j, q.At(i, j)-s*w.At(i, k))
			}
		}
	}
	return q, rr
}

// Orthonormalize returns a matrix with orthonormal columns spanning the
// column space of a (the Q factor of a thin QR).
func Orthonormalize(a *mat.Dense) *mat.Dense {
	q, _ := QR(a)
	return q
}
