package replica

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"pane/internal/core"
	"pane/internal/engine"
	"pane/internal/graph"
	"pane/internal/server"
	"pane/internal/wal"
)

// leaderOpts is the engine configuration both sides run: the
// deterministic apply path (no retained-affinity rounding drift) plus a
// small sharded IVF index, so convergence is checked all the way down
// to the serving backends.
func leaderOpts() []engine.Option {
	return []engine.Option{
		engine.WithAffinityThreshold(0),
		engine.WithIndex(engine.IndexConfig{IVF: true, NList: 2, NProbe: 2}),
	}
}

// startLeader trains a WAL-attached leader and serves it over HTTP.
func startLeader(t *testing.T, walOpts wal.Options, srvOpts ...server.Option) (*engine.Engine, *wal.Log, *httptest.Server) {
	t.Helper()
	eng, err := engine.Train(graph.RunningExample(), core.Config{K: 4, Alpha: 0.15, Eps: 0.05, Seed: 1}, leaderOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	log, err := wal.Open(t.TempDir(), walOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { log.Close() })
	if err := eng.AttachWAL(log); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(eng, srvOpts...))
	t.Cleanup(ts.Close)
	return eng, log, ts
}

func applyLeaderUpdate(t *testing.T, eng *engine.Engine, i int) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(i)))
	var err error
	if i%2 == 0 {
		_, err = eng.ApplyEdges([]graph.Edge{{Src: rng.Intn(6), Dst: rng.Intn(6)}})
	} else {
		_, err = eng.ApplyAttrs([]graph.AttrEntry{{Node: rng.Intn(6), Attr: rng.Intn(3), Weight: 0.25}})
	}
	if err != nil {
		t.Fatalf("update %d: %v", i, err)
	}
}

// assertBitIdenticalTopK compares every node's top-k on both engines
// across the exact and IVF backends — the acceptance bar is equality,
// not approximate recall.
func assertBitIdenticalTopK(t *testing.T, leader, follower *engine.Engine) {
	t.Helper()
	leader.WaitForIndex()
	follower.WaitForIndex()
	for _, mode := range []string{engine.ModeExact, engine.ModeIVF} {
		for u := 0; u < 6; u++ {
			la, err := leader.TopLinks(u, 4, mode, 0)
			if err != nil {
				t.Fatal(err)
			}
			fa, err := follower.TopLinks(u, 4, mode, 0)
			if err != nil {
				t.Fatal(err)
			}
			if la.Version != fa.Version {
				t.Fatalf("mode %s node %d: leader v%d vs follower v%d", mode, u, la.Version, fa.Version)
			}
			if len(la.Results) != len(fa.Results) {
				t.Fatalf("mode %s node %d: %d vs %d results", mode, u, len(la.Results), len(fa.Results))
			}
			for i := range la.Results {
				if la.Results[i] != fa.Results[i] {
					t.Fatalf("mode %s node %d rank %d: leader %+v != follower %+v",
						mode, u, i, la.Results[i], fa.Results[i])
				}
			}
		}
		for v := 0; v < 3; v++ {
			la, err := leader.TopAttrs(v, 3, mode, 0)
			if err != nil {
				t.Fatal(err)
			}
			fa, err := follower.TopAttrs(v, 3, mode, 0)
			if err != nil {
				t.Fatal(err)
			}
			for i := range la.Results {
				if la.Results[i] != fa.Results[i] {
					t.Fatalf("mode %s attr-query %d rank %d: leader %+v != follower %+v",
						mode, v, i, la.Results[i], fa.Results[i])
				}
			}
		}
	}
}

// TestFollowerConvergenceRace is the replication acceptance test: one
// leader and two followers in one process, followers tailing while the
// leader applies a live update stream. Under -race this doubles as the
// proof that the replication path holds no torn state. Both followers
// must reach the leader's final version with bit-identical top-k.
func TestFollowerConvergenceRace(t *testing.T) {
	leader, _, ts := startLeader(t, wal.Options{Sync: wal.SyncNone})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	const followers = 2
	reps := make([]*Replica, followers)
	for i := range reps {
		r, err := Bootstrap(ctx, Options{Leader: ts.URL, Poll: 2 * time.Millisecond}, leaderOpts()...)
		if err != nil {
			t.Fatal(err)
		}
		reps[i] = r
		go r.Run(ctx)
	}

	const updates = 24
	for i := 1; i <= updates; i++ {
		applyLeaderUpdate(t, leader, i)
	}
	want := leader.Version()
	if want != updates+1 {
		t.Fatalf("leader at %d", want)
	}

	deadline := time.Now().Add(30 * time.Second)
	for _, r := range reps {
		for r.Engine().Version() != want {
			if time.Now().After(deadline) {
				t.Fatalf("follower stuck at %d, leader at %d (status %+v)",
					r.Engine().Version(), want, r.Status())
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	cancel()

	for i, r := range reps {
		assertBitIdenticalTopK(t, leader, r.Engine())
		st := r.Status()
		if st.AppliedVersion != want || st.LagRecords != 0 {
			t.Fatalf("follower %d status: %+v", i, st)
		}
		if st.RecordsApplied == 0 {
			t.Fatalf("follower %d applied no records: %+v", i, st)
		}
	}
}

// TestFollowerBundleFallbackAfterCompaction: a follower whose position
// the leader already compacted away gets 410 and must converge through
// a bundle fetch.
func TestFollowerBundleFallbackAfterCompaction(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "snap.pane")
	leader, _, ts := startLeader(t, wal.Options{Sync: wal.SyncNone, SegmentBytes: 1})
	ctx := context.Background()

	r, err := Bootstrap(ctx, Options{Leader: ts.URL}, leaderOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		applyLeaderUpdate(t, leader, i)
	}
	// The snapshot compacts every sealed segment below its version; the
	// follower's from=1 position is gone.
	if _, err := leader.Snapshot(snap); err != nil {
		t.Fatal(err)
	}
	if _, err := r.SyncOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if got := r.Engine().Version(); got != leader.Version() {
		t.Fatalf("follower at %d after fallback, leader at %d", got, leader.Version())
	}
	st := r.Status()
	if st.BundleFetches != 1 {
		t.Fatalf("bundle fetches = %d, want 1 (status %+v)", st.BundleFetches, st)
	}
	assertBitIdenticalTopK(t, leader, r.Engine())
}

// TestFollowerLagThresholdFallback: a backlog past LagFallback switches
// from record replay to a bundle fetch even when records are available.
func TestFollowerLagThresholdFallback(t *testing.T) {
	leader, _, ts := startLeader(t, wal.Options{Sync: wal.SyncNone})
	ctx := context.Background()

	// BatchMax 1 + LagFallback 2: the first sync applies one record,
	// sees itself still >2 behind, and jumps to the bundle.
	r, err := Bootstrap(ctx, Options{Leader: ts.URL, BatchMax: 1, LagFallback: 2}, leaderOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 6; i++ {
		applyLeaderUpdate(t, leader, i)
	}
	applied, err := r.SyncOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 1 {
		t.Fatalf("applied %d records, want 1", applied)
	}
	if got := r.Engine().Version(); got != leader.Version() {
		t.Fatalf("follower at %d, leader at %d", got, leader.Version())
	}
	if st := r.Status(); st.BundleFetches != 1 {
		t.Fatalf("bundle fetches = %d, want 1", st.BundleFetches)
	}
}

func TestBootstrapValidation(t *testing.T) {
	if _, err := Bootstrap(context.Background(), Options{}); err == nil {
		t.Fatal("empty leader URL accepted")
	}
	if _, err := Bootstrap(context.Background(), Options{Leader: "http://127.0.0.1:1"}); err == nil {
		t.Fatal("unreachable leader accepted")
	}
}
