package replica

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"pane/internal/core"
	"pane/internal/engine"
	"pane/internal/graph"
	"pane/internal/server"
	"pane/internal/wal"
)

func testCfg() core.Config { return core.Config{K: 4, Alpha: 0.15, Eps: 0.05, Seed: 1} }

// fastOpts are follower options tuned so failure-path tests spend
// milliseconds, not the production backoff schedule.
func fastOpts(leaderURL string) Options {
	return Options{
		Leader: leaderURL, Poll: time.Millisecond, MaxBackoff: 2 * time.Millisecond,
	}
}

// TestTruncatedStreamKeepsVersionAndResyncs is the torn-stream
// satellite: a /replicate response cut mid-frame (leader died while
// streaming) must not poison the follower — every whole frame applies,
// the partial one is discarded without touching the version, and the
// next round against a healthy leader finishes the catch-up.
func TestTruncatedStreamKeepsVersionAndResyncs(t *testing.T) {
	leader, _, ts := startLeader(t, wal.Options{Sync: wal.SyncNone})
	ctx := context.Background()

	r, err := Bootstrap(ctx, fastOpts(ts.URL), leaderOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		applyLeaderUpdate(t, leader, i)
	}

	// A proxy that forwards /replicate from the real leader but drops the
	// last 3 bytes — inside the final frame, never on a boundary.
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		resp, err := http.Get(ts.URL + req.URL.String())
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		w.Header().Set(server.VersionHeader, resp.Header.Get(server.VersionHeader))
		w.Header().Set(server.EpochHeader, resp.Header.Get(server.EpochHeader))
		w.WriteHeader(resp.StatusCode)
		if len(body) > 3 {
			body = body[:len(body)-3]
		}
		w.Write(body)
	}))
	defer proxy.Close()

	r.SetLeader(proxy.URL)
	applied, err := r.SyncOnce(ctx)
	if err != nil {
		t.Fatalf("truncated stream must not error (whole frames applied): %v", err)
	}
	if applied != 3 {
		t.Fatalf("applied %d records from the truncated stream, want 3", applied)
	}
	if got, want := r.Engine().Version(), leader.Version()-1; got != want {
		t.Fatalf("follower at %d after truncation, want %d", got, want)
	}

	// Healthy leader again: the follower resumes from its kept version.
	r.SetLeader(ts.URL)
	if _, err := r.SyncOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if got := r.Engine().Version(); got != leader.Version() {
		t.Fatalf("follower at %d after resync, leader at %d", got, leader.Version())
	}
	assertBitIdenticalTopK(t, leader, r.Engine())
}

// TestBootstrapRetries: a follower racing its leader's start retries
// the bundle fetch with backoff instead of dying on connection refused.
func TestBootstrapRetries(t *testing.T) {
	eng, err := engine.Train(graph.RunningExample(), testCfg(), leaderOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	h := server.New(eng)
	var calls atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		h.ServeHTTP(w, req)
	}))
	defer flaky.Close()

	opts := fastOpts(flaky.URL)
	opts.BootstrapRetries = 3
	r, err := Bootstrap(context.Background(), opts, leaderOpts()...)
	if err != nil {
		t.Fatalf("bootstrap with retries: %v (after %d calls)", err, calls.Load())
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("leader saw %d bundle calls, want 3 (2 failures + 1 success)", got)
	}
	if r.Engine().Version() != eng.Version() {
		t.Fatalf("bootstrapped at %d, leader at %d", r.Engine().Version(), eng.Version())
	}

	// Without retries the same flaky leader is fatal.
	calls.Store(0)
	if _, err := Bootstrap(context.Background(), fastOpts(flaky.URL), leaderOpts()...); err == nil {
		t.Fatal("bootstrap without retries survived a failing leader")
	}
}

// TestStalenessAccounting: consecutive failed rounds flip the follower
// stale (gauge up, Stale true, reads untouched); one good round clears
// it. One failure alone must not flap the signal.
func TestStalenessAccounting(t *testing.T) {
	leader, _, ts := startLeader(t, wal.Options{Sync: wal.SyncNone})
	ctx := context.Background()

	r, err := Bootstrap(ctx, fastOpts(ts.URL), leaderOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	var down atomic.Bool
	gate := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if down.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		resp, err := http.Get(ts.URL + req.URL.String())
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.Header().Set(server.VersionHeader, resp.Header.Get(server.VersionHeader))
		w.Header().Set(server.EpochHeader, resp.Header.Get(server.EpochHeader))
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
	}))
	defer gate.Close()
	r.SetLeader(gate.URL)

	down.Store(true)
	if _, err := r.SyncOnce(ctx); err == nil {
		t.Fatal("sync against a down leader succeeded")
	}
	if r.Stale() {
		t.Fatal("one failed round already flipped stale — the signal would flap")
	}
	if _, err := r.SyncOnce(ctx); err == nil {
		t.Fatal("second sync against a down leader succeeded")
	}
	if !r.Stale() {
		t.Fatal("two consecutive failures did not flip stale")
	}
	if st := r.Status(); !st.Stale || st.ConsecFails != 2 {
		t.Fatalf("status under failure: %+v", st)
	}
	// Degraded mode: the stale follower still answers reads.
	if _, err := r.Engine().TopLinks(0, 4, engine.ModeExact, 0); err != nil {
		t.Fatalf("stale follower read: %v", err)
	}

	down.Store(false)
	applyLeaderUpdate(t, leader, 1)
	if _, err := r.SyncOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if r.Stale() {
		t.Fatal("successful round did not clear staleness")
	}
}

// TestStaleEpochStreamRejected: a 200 response whose epoch header is
// older than an epoch the follower has already seen must be rejected
// without applying a byte — the deposed leader's version numbers are
// not to be trusted.
func TestStaleEpochStreamRejected(t *testing.T) {
	leader, _, ts := startLeader(t, wal.Options{Sync: wal.SyncNone})
	ctx := context.Background()
	r, err := Bootstrap(ctx, fastOpts(ts.URL), leaderOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	applyLeaderUpdate(t, leader, 1)
	before := r.Engine().Version()

	// A stub that claims epoch 1, which the follower adopts...
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set(server.VersionHeader, strconv.FormatUint(leader.Version(), 10))
		w.Header().Set(server.EpochHeader, "1")
		w.WriteHeader(http.StatusOK)
	}))
	defer stub.Close()
	r.SetLeader(stub.URL)
	if _, err := r.SyncOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if r.knownEpoch() != 1 {
		t.Fatalf("follower epoch = %d, want 1 adopted from the stream", r.knownEpoch())
	}

	// ...after which the old epoch-0 leader is refused. The follower's
	// request also carries epoch 1, so the old leader fences itself.
	r.SetLeader(ts.URL)
	if _, err := r.SyncOnce(ctx); err == nil {
		t.Fatal("stream from a deposed epoch accepted")
	}
	if r.Engine().Version() != before {
		t.Fatal("deposed stream still advanced the follower")
	}
	if !leader.Deposed() {
		t.Fatal("old leader not fenced by the follower's epoch header")
	}
}

// TestPromoteFailover is the deterministic promotion walk-through: the
// leader dies, one follower promotes (epoch 1, own WAL), takes writes,
// and the surviving follower re-points and converges bit-identically —
// while the old leader's lineage is fenced on both sides.
func TestPromoteFailover(t *testing.T) {
	leader, _, ts := startLeader(t, wal.Options{Sync: wal.SyncNone})
	ctx := context.Background()

	r0, err := Bootstrap(ctx, fastOpts(ts.URL), leaderOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Bootstrap(ctx, fastOpts(ts.URL), leaderOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 6; i++ {
		applyLeaderUpdate(t, leader, i)
	}
	for _, r := range []*Replica{r0, r1} {
		if _, err := r.SyncOnce(ctx); err != nil {
			t.Fatal(err)
		}
	}

	// Leader dies. r0 promotes with a fresh WAL.
	ts.Close()
	plog, err := wal.Open(t.TempDir(), wal.Options{Sync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer plog.Close()
	epoch, err := r0.Promote(plog)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 || r0.Engine().Epoch() != 1 {
		t.Fatalf("promotion epoch = %d (engine %d), want 1", epoch, r0.Engine().Epoch())
	}
	if _, err := r0.Promote(plog); err == nil {
		t.Fatal("double promotion accepted")
	}
	// The outage drove the staleness counter up; promotion must clear
	// it — a leader advertising X-Pane-Staleness: stale is nonsense.
	if r0.Stale() {
		t.Fatal("promoted leader still reports stale")
	}

	// The promoted leader takes writes; records carry epoch 1.
	for i := 7; i <= 10; i++ {
		applyLeaderUpdate(t, r0.Engine(), i)
	}
	if plog.LastEpoch() != 1 {
		t.Fatalf("promoted WAL epoch = %d, want 1", plog.LastEpoch())
	}

	// The survivor re-points at the promoted leader and converges.
	ts2 := httptest.NewServer(server.New(r0.Engine()))
	defer ts2.Close()
	r1.SetLeader(ts2.URL)
	deadline := time.Now().Add(10 * time.Second)
	for r1.Engine().Version() != r0.Engine().Version() {
		if time.Now().After(deadline) {
			t.Fatalf("survivor stuck at %d, promoted leader at %d (status %+v)",
				r1.Engine().Version(), r0.Engine().Version(), r1.Status())
		}
		if _, err := r1.SyncOnce(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if r1.Engine().Epoch() != 1 {
		t.Fatalf("survivor epoch = %d, want 1", r1.Engine().Epoch())
	}
	assertBitIdenticalTopK(t, r0.Engine(), r1.Engine())

	// The old leader's lineage is fenced: once it hears about epoch 1,
	// its writes fail and stay failed.
	leader.Fence(epoch)
	if _, err := leader.ApplyEdges([]graph.Edge{{Src: 0, Dst: 1}}); !errors.Is(err, engine.ErrFenced) {
		t.Fatalf("deposed leader write: err = %v, want ErrFenced", err)
	}
}
