// Package replica implements the follower side of the replicated
// serving tier: a read-only engine bootstrapped from a leader's
// /bundle, kept converged by tailing the leader's write-ahead log over
// /replicate. Records apply through the engine's existing O(Δ) update
// path; a follower that has fallen too far behind (or whose position
// was compacted away on the leader) falls back to fetching a fresh
// bundle and swapping it in wholesale.
//
// The follower is failover-aware. Every leader call carries the
// highest fencing epoch the follower has seen (server.EpochHeader),
// and every response's epoch is checked: a stream from an epoch older
// than one already observed is rejected outright — a deposed leader
// cannot feed this follower, whatever its version numbers claim.
// Promote flips the follower itself into the new leader (see Promote);
// surviving followers re-point with SetLeader and resync across the
// epoch boundary through the ordinary bundle-fallback path.
//
// Transient leader failures degrade, never crash: sync rounds run
// under a deadline, retries back off exponentially (capped, jittered),
// and a follower whose rounds keep failing marks itself stale
// (Stale, pane_replication_stale) while continuing to serve reads.
package replica

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pane/internal/engine"
	"pane/internal/obs"
	"pane/internal/server"
	"pane/internal/store"
	"pane/internal/wal"
)

// staleThreshold is the consecutive failed sync rounds after which the
// follower reports itself stale. Two, not one: a single flaky round is
// routine network weather, and flapping the staleness signal on it
// would churn every client that routes on the header.
const staleThreshold = 2

// Options configure a follower.
type Options struct {
	// Leader is the leader's base URL, e.g. http://leader:8080.
	Leader string
	// Poll is the tail interval when the follower is caught up; a full
	// batch triggers an immediate next request instead. Default 500ms.
	Poll time.Duration
	// LagFallback is the record lag past which the follower stops
	// replaying deltas and fetches a bundle instead — the delta-replay
	// vs snapshot-fetch crossover benchexp's replicate experiment
	// measures. Default 10000.
	LagFallback uint64
	// BatchMax caps the records requested per /replicate call.
	// Default (and server-side cap) 4096.
	BatchMax int
	// RoundTimeout bounds one sync round (request, stream, apply; a
	// bundle catch-up included) inside Run. Default 30s — raise it when
	// bundle downloads of a very large model legitimately run longer.
	RoundTimeout time.Duration
	// MaxBackoff caps the exponential retry delay after consecutive
	// failed rounds. Default 15s.
	MaxBackoff time.Duration
	// BootstrapRetries is how many times Bootstrap re-attempts the
	// initial bundle fetch (with the same capped backoff) before giving
	// up — a follower racing its leader's start shouldn't die on the
	// first connection refused. Default 0 (fail fast).
	BootstrapRetries int
	// Client is the HTTP client used for all leader calls. Defaults to
	// a client with a dial timeout and a response-header timeout —
	// NEVER http.DefaultClient, whose zero timeouts would let a dead
	// leader hang a sync round forever.
	Client *http.Client
}

func (o *Options) defaults() error {
	if o.Leader == "" {
		return errors.New("replica: leader URL required")
	}
	if _, err := url.Parse(o.Leader); err != nil {
		return fmt.Errorf("replica: leader URL: %w", err)
	}
	if o.Poll <= 0 {
		o.Poll = 500 * time.Millisecond
	}
	if o.LagFallback == 0 {
		o.LagFallback = 10000
	}
	if o.BatchMax <= 0 {
		o.BatchMax = 4096
	}
	if o.RoundTimeout <= 0 {
		o.RoundTimeout = 30 * time.Second
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 15 * time.Second
	}
	if o.MaxBackoff < o.Poll {
		o.MaxBackoff = o.Poll
	}
	if o.BootstrapRetries < 0 {
		o.BootstrapRetries = 0
	}
	if o.Client == nil {
		o.Client = defaultClient()
	}
	return nil
}

// defaultClient hardens the paths a dead or wedged leader can hang: a
// connection that never completes (dial timeout) and a connection that
// opens but never answers (response-header timeout). Deliberately no
// overall request timeout — bundle bodies are legitimately large and
// stream for as long as they stream; Run bounds whole rounds with
// RoundTimeout instead.
func defaultClient() *http.Client {
	return &http.Client{
		Transport: &http.Transport{
			DialContext:           (&net.Dialer{Timeout: 5 * time.Second}).DialContext,
			ResponseHeaderTimeout: 10 * time.Second,
		},
	}
}

// backoff is the retry delay after `fails` consecutive failed rounds:
// Poll doubled per failure, capped at MaxBackoff, with ±20% jitter so
// a follower fleet does not hammer a recovering leader in lockstep.
func (o *Options) backoff(fails int) time.Duration {
	d := o.Poll
	for i := 1; i < fails && d < o.MaxBackoff; i++ {
		d *= 2
	}
	if d > o.MaxBackoff {
		d = o.MaxBackoff
	}
	return time.Duration(float64(d) * (0.8 + 0.4*rand.Float64()))
}

// Replica tails one leader into one local engine.
type Replica struct {
	eng  *engine.Engine
	opts Options

	// promoted stops Run: a promoted replica is the leader now and
	// tails nobody.
	promoted atomic.Bool

	// Pre-resolved obs handles in the engine's registry, so the
	// follower's /metrics and /healthz replication section read the
	// same cells.
	lagG     *obs.Gauge
	appliedG *obs.Gauge
	staleG   *obs.Gauge
	recordsC *obs.Counter
	fetchesC *obs.Counter

	mu          sync.Mutex
	leader      string // current leader URL (SetLeader re-points it)
	leaderVer   uint64
	epoch       uint32 // highest fencing epoch seen on any response
	consecFails int    // consecutive failed sync rounds
	lastErr     string
}

// Bootstrap fetches the leader's current bundle and builds the local
// engine from it (engOpts configure the local serving surface — index
// layout, thresholds; they need not mirror the leader's). The fetch
// retries Options.BootstrapRetries times with capped backoff — a
// follower racing its leader's start waits for it instead of dying.
func Bootstrap(ctx context.Context, opts Options, engOpts ...engine.Option) (*Replica, error) {
	if err := opts.defaults(); err != nil {
		return nil, err
	}
	r := &Replica{opts: opts, leader: opts.Leader}
	var (
		b   *store.Bundle
		err error
	)
	for attempt := 0; ; attempt++ {
		b, err = r.fetchBundle(ctx)
		if err == nil {
			break
		}
		if attempt >= opts.BootstrapRetries {
			if opts.BootstrapRetries > 0 {
				return nil, fmt.Errorf("replica: bootstrap failed after %d attempts: %w", attempt+1, err)
			}
			return nil, err
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(opts.backoff(attempt + 1)):
		}
	}
	eng, err := engine.FromBundle(b, engOpts...)
	if err != nil {
		return nil, err
	}
	r.eng = eng
	reg := eng.Metrics()
	r.lagG = reg.Gauge("pane_replication_lag_records",
		"Records the leader has applied that this follower has not.")
	r.appliedG = reg.Gauge("pane_replication_applied_version",
		"Model version this follower has applied up to.")
	r.staleG = reg.Gauge("pane_replication_stale",
		"1 while the follower's recent sync rounds keep failing; reads stay live but lag is unbounded.")
	r.recordsC = reg.Counter("pane_replication_records_applied_total",
		"WAL records replayed from the leader.")
	r.fetchesC = reg.Counter("pane_replication_bundle_fetches_total",
		"Full bundle fetches (bootstrap excluded) after falling behind.")
	r.appliedG.Set(float64(eng.Version()))
	return r, nil
}

// Engine returns the follower's engine, ready for read-only serving.
func (r *Replica) Engine() *engine.Engine { return r.eng }

// Run tails the leader until ctx is done or the replica is promoted.
// Transient errors (leader down, truncated stream) are absorbed: the
// follower records them in Status, backs off exponentially (capped,
// jittered) while they persist, and keeps polling. Every round runs
// under Options.RoundTimeout so a wedged leader cannot hang the loop.
func (r *Replica) Run(ctx context.Context) {
	t := time.NewTimer(0)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		if r.promoted.Load() {
			return
		}
		rctx, cancel := context.WithTimeout(ctx, r.opts.RoundTimeout)
		n, err := r.SyncOnce(rctx)
		cancel()
		if r.promoted.Load() {
			return
		}
		switch {
		case err != nil:
			r.mu.Lock()
			fails := r.consecFails
			r.mu.Unlock()
			t.Reset(r.opts.backoff(fails))
		case n >= r.opts.BatchMax:
			// A full batch means backlog: drain without sleeping.
			t.Reset(0)
		default:
			t.Reset(r.opts.Poll)
		}
	}
}

// SyncOnce performs one replication round — one /replicate request,
// applying every returned record, falling back to a bundle fetch on 410
// or when the remaining lag exceeds the threshold — and returns how
// many records it applied. Exported for tests and for benchexp's
// catch-up measurements. Outcomes feed the staleness accounting
// whichever caller drives the round (Run or a test harness).
func (r *Replica) SyncOnce(ctx context.Context) (int, error) {
	n, err := r.syncOnce(ctx)
	r.noteResult(err)
	return n, err
}

func (r *Replica) syncOnce(ctx context.Context) (int, error) {
	from := r.eng.Version()
	u := fmt.Sprintf("%s/replicate?from=%d&max=%d", r.leaderURL(), from, r.opts.BatchMax)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return 0, err
	}
	req.Header.Set(server.EpochHeader, strconv.FormatUint(uint64(r.knownEpoch()), 10))
	resp, err := r.opts.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	leaderVer, _ := parseVersion(resp.Header.Get(server.VersionHeader))
	r.noteLeader(leaderVer)
	if err := r.checkEpoch(resp); err != nil {
		return 0, err
	}

	applied := 0
	switch resp.StatusCode {
	case http.StatusOK:
		br := bufio.NewReader(resp.Body)
		for {
			rec, err := wal.ReadFrame(br)
			if err == io.EOF {
				break
			}
			if errors.Is(err, wal.ErrTorn) {
				// Truncated mid-stream (leader died or hiccuped): what
				// arrived whole was applied; the next poll resumes.
				break
			}
			if err != nil {
				return applied, err
			}
			if _, err := r.eng.ApplyRecord(rec); err != nil {
				return applied, err
			}
			applied++
			r.recordsC.Inc()
			r.appliedG.Set(float64(rec.Version))
		}
	case http.StatusGone:
		// Our position was compacted away; only a bundle can catch up.
		if err := r.catchUpFromBundle(ctx); err != nil {
			return 0, err
		}
		r.updateLag(leaderVer)
		return 0, nil
	case http.StatusConflict:
		// The leader fenced itself: a newer epoch exists somewhere it
		// has seen and we may not have. Record the fact and wait to be
		// re-pointed (SetLeader) or promoted.
		if ep, ok := parseEpoch(resp.Header.Get(server.EpochHeader)); ok {
			r.adoptEpoch(ep)
		}
		return 0, fmt.Errorf("replica: leader at %s is deposed (awaiting re-point to the promoted leader)", r.leaderURL())
	default:
		return 0, fmt.Errorf("replica: leader answered %s on /replicate", resp.Status)
	}

	// Past the lag threshold even after this batch, a snapshot fetch
	// beats replaying the rest record by record.
	if cur := r.eng.Version(); leaderVer > cur && leaderVer-cur > r.opts.LagFallback {
		if err := r.catchUpFromBundle(ctx); err != nil {
			return applied, err
		}
	}
	r.updateLag(leaderVer)
	return applied, nil
}

func (r *Replica) catchUpFromBundle(ctx context.Context) error {
	b, err := r.fetchBundle(ctx)
	if err != nil {
		return err
	}
	if b.ModelVersion <= r.eng.Version() {
		return nil // raced an older leader state; the next poll resolves it
	}
	if err := r.eng.LoadBundle(b); err != nil {
		return err
	}
	r.fetchesC.Inc()
	r.appliedG.Set(float64(b.ModelVersion))
	return nil
}

func (r *Replica) fetchBundle(ctx context.Context) (*store.Bundle, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.leaderURL()+"/bundle", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(server.EpochHeader, strconv.FormatUint(uint64(r.knownEpoch()), 10))
	resp, err := r.opts.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		if resp.StatusCode == http.StatusConflict {
			if ep, ok := parseEpoch(resp.Header.Get(server.EpochHeader)); ok {
				r.adoptEpoch(ep)
			}
			return nil, fmt.Errorf("replica: leader at %s is deposed (awaiting re-point to the promoted leader)", r.leaderURL())
		}
		return nil, fmt.Errorf("replica: leader answered %s on /bundle", resp.Status)
	}
	if err := r.checkEpoch(resp); err != nil {
		return nil, err
	}
	if v, ok := parseVersion(resp.Header.Get(server.VersionHeader)); ok {
		r.noteLeader(v)
	}
	return store.ReadBundle(resp.Body)
}

func parseVersion(raw string) (uint64, bool) {
	if raw == "" {
		return 0, false
	}
	var v uint64
	if _, err := fmt.Sscanf(raw, "%d", &v); err != nil {
		return 0, false
	}
	return v, true
}

func parseEpoch(raw string) (uint32, bool) {
	if raw == "" {
		return 0, false
	}
	v, err := strconv.ParseUint(raw, 10, 32)
	if err != nil {
		return 0, false
	}
	return uint32(v), true
}

// checkEpoch vets a successful replication response's epoch against
// everything seen so far. A response from an epoch older than one
// already observed comes from a deposed lineage — its body must not be
// applied, whatever versions it carries; a newer epoch is adopted (the
// leader crossed a failover we haven't heard of otherwise).
func (r *Replica) checkEpoch(resp *http.Response) error {
	ep, ok := parseEpoch(resp.Header.Get(server.EpochHeader))
	if !ok {
		return nil // pre-epoch leader: everything is epoch 0
	}
	if known := r.knownEpoch(); ep < known {
		return fmt.Errorf("replica: rejecting stream from deposed epoch %d (epoch %d exists)", ep, known)
	}
	r.adoptEpoch(ep)
	return nil
}

func (r *Replica) knownEpoch() uint32 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epoch
}

func (r *Replica) adoptEpoch(ep uint32) {
	r.mu.Lock()
	if ep > r.epoch {
		r.epoch = ep
	}
	r.mu.Unlock()
}

func (r *Replica) leaderURL() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.leader
}

// SetLeader re-points the follower at a new leader URL — the surviving
// followers' move after a failover promotes one of their peers. Takes
// effect on the next sync round; version gaps against the new leader
// resolve through the ordinary 410/lag bundle-fallback path.
func (r *Replica) SetLeader(url string) {
	r.mu.Lock()
	r.leader = url
	r.mu.Unlock()
}

// noteResult feeds the staleness accounting after every sync round.
func (r *Replica) noteResult(err error) {
	r.mu.Lock()
	if err != nil {
		r.consecFails++
		r.lastErr = err.Error()
	} else {
		r.consecFails = 0
		r.lastErr = ""
	}
	stale := r.consecFails >= staleThreshold
	r.mu.Unlock()
	if r.staleG != nil {
		if stale {
			r.staleG.Set(1)
		} else {
			r.staleG.Set(0)
		}
	}
}

// Stale reports whether the follower's recent sync rounds keep failing
// (staleThreshold consecutive failures). A stale follower still serves
// reads — degraded and labeled beats down — and the server advertises
// the state on every response via server.WithStaleness. A promoted
// replica is never stale: it is the lineage others measure against.
func (r *Replica) Stale() bool {
	if r.promoted.Load() {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.consecFails >= staleThreshold
}

// Promote flips the follower into a read-write leader: Run stops
// tailing, the engine's fencing epoch rises above every epoch this
// follower has seen (fencing off the old leader's lineage), and log —
// when non-nil — becomes the promoted leader's own write-ahead log so
// its writes are durable and tailable by the surviving followers.
// Returns the new epoch; wire it into server.WithPromotion so success
// also lifts read-only serving.
func (r *Replica) Promote(log *wal.Log) (uint32, error) {
	if r.promoted.Swap(true) {
		return 0, errors.New("replica: already promoted")
	}
	target := r.knownEpoch()
	if own := r.eng.ObservedEpoch(); own > target {
		target = own
	}
	target++
	if err := r.eng.Promote(target); err != nil {
		r.promoted.Store(false)
		return 0, err
	}
	if log != nil {
		if err := r.eng.AttachWAL(log); err != nil {
			// The epoch is raised but the log isn't armed: stay promoted
			// (Run must not resume tailing under the new epoch) and
			// surface the error — the operator retries with a usable log
			// directory or restarts the node.
			return 0, fmt.Errorf("replica: promoted to epoch %d but WAL attach failed: %w", target, err)
		}
	}
	r.adoptEpoch(target)
	// Promotion usually follows an outage, so the staleness counter is
	// hot; clear it — this node is the fresh lineage now.
	r.mu.Lock()
	r.consecFails = 0
	r.mu.Unlock()
	if r.staleG != nil {
		r.staleG.Set(0)
	}
	return target, nil
}

func (r *Replica) noteLeader(v uint64) {
	if v == 0 {
		return
	}
	r.mu.Lock()
	if v > r.leaderVer {
		r.leaderVer = v
	}
	r.mu.Unlock()
}

func (r *Replica) updateLag(leaderVer uint64) {
	cur := r.eng.Version()
	if leaderVer > cur {
		r.lagG.Set(float64(leaderVer - cur))
	} else {
		r.lagG.Set(0)
	}
}

// Status is the follower's replication state, served under /healthz
// (server.WithHealthSection) from the same obs cells /metrics exposes.
type Status struct {
	Leader         string `json:"leader"`
	AppliedVersion uint64 `json:"applied_version"`
	LeaderVersion  uint64 `json:"leader_version"`
	LagRecords     uint64 `json:"replication_lag_records"`
	RecordsApplied uint64 `json:"records_applied"`
	BundleFetches  uint64 `json:"bundle_fetches"`
	Epoch          uint32 `json:"epoch"`
	Promoted       bool   `json:"promoted,omitempty"`
	Stale          bool   `json:"stale"`
	ConsecFails    int    `json:"consecutive_failures,omitempty"`
	LastError      string `json:"last_error,omitempty"`
}

// Status reports the follower's current replication state.
func (r *Replica) Status() Status {
	r.mu.Lock()
	leader, leaderVer, lastErr := r.leader, r.leaderVer, r.lastErr
	epoch, fails := r.epoch, r.consecFails
	r.mu.Unlock()
	return Status{
		Leader:         leader,
		AppliedVersion: uint64(r.appliedG.Value()),
		LeaderVersion:  leaderVer,
		LagRecords:     uint64(r.lagG.Value()),
		RecordsApplied: r.recordsC.Value(),
		BundleFetches:  r.fetchesC.Value(),
		Epoch:          epoch,
		Promoted:       r.promoted.Load(),
		Stale:          fails >= staleThreshold,
		ConsecFails:    fails,
		LastError:      lastErr,
	}
}
