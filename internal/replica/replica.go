// Package replica implements the follower side of the replicated
// serving tier: a read-only engine bootstrapped from a leader's
// /bundle, kept converged by tailing the leader's write-ahead log over
// /replicate. Records apply through the engine's existing O(Δ) update
// path; a follower that has fallen too far behind (or whose position
// was compacted away on the leader) falls back to fetching a fresh
// bundle and swapping it in wholesale.
package replica

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"time"

	"pane/internal/engine"
	"pane/internal/obs"
	"pane/internal/server"
	"pane/internal/store"
	"pane/internal/wal"
)

// Options configure a follower.
type Options struct {
	// Leader is the leader's base URL, e.g. http://leader:8080.
	Leader string
	// Poll is the tail interval when the follower is caught up; a full
	// batch triggers an immediate next request instead. Default 500ms.
	Poll time.Duration
	// LagFallback is the record lag past which the follower stops
	// replaying deltas and fetches a bundle instead — the delta-replay
	// vs snapshot-fetch crossover benchexp's replicate experiment
	// measures. Default 10000.
	LagFallback uint64
	// BatchMax caps the records requested per /replicate call.
	// Default (and server-side cap) 4096.
	BatchMax int
	// Client is the HTTP client used for all leader calls. Default
	// http.DefaultClient.
	Client *http.Client
}

func (o *Options) defaults() error {
	if o.Leader == "" {
		return errors.New("replica: leader URL required")
	}
	if _, err := url.Parse(o.Leader); err != nil {
		return fmt.Errorf("replica: leader URL: %w", err)
	}
	if o.Poll <= 0 {
		o.Poll = 500 * time.Millisecond
	}
	if o.LagFallback == 0 {
		o.LagFallback = 10000
	}
	if o.BatchMax <= 0 {
		o.BatchMax = 4096
	}
	if o.Client == nil {
		o.Client = http.DefaultClient
	}
	return nil
}

// Replica tails one leader into one local engine.
type Replica struct {
	eng  *engine.Engine
	opts Options

	// Pre-resolved obs handles in the engine's registry, so the
	// follower's /metrics and /healthz replication section read the
	// same cells.
	lagG     *obs.Gauge
	appliedG *obs.Gauge
	recordsC *obs.Counter
	fetchesC *obs.Counter

	mu        sync.Mutex
	leaderVer uint64
	lastErr   string
}

// Bootstrap fetches the leader's current bundle and builds the local
// engine from it (engOpts configure the local serving surface — index
// layout, thresholds; they need not mirror the leader's).
func Bootstrap(ctx context.Context, opts Options, engOpts ...engine.Option) (*Replica, error) {
	if err := opts.defaults(); err != nil {
		return nil, err
	}
	r := &Replica{opts: opts}
	b, err := r.fetchBundle(ctx)
	if err != nil {
		return nil, err
	}
	eng, err := engine.FromBundle(b, engOpts...)
	if err != nil {
		return nil, err
	}
	r.eng = eng
	reg := eng.Metrics()
	r.lagG = reg.Gauge("pane_replication_lag_records",
		"Records the leader has applied that this follower has not.")
	r.appliedG = reg.Gauge("pane_replication_applied_version",
		"Model version this follower has applied up to.")
	r.recordsC = reg.Counter("pane_replication_records_applied_total",
		"WAL records replayed from the leader.")
	r.fetchesC = reg.Counter("pane_replication_bundle_fetches_total",
		"Full bundle fetches (bootstrap excluded) after falling behind.")
	r.appliedG.Set(float64(eng.Version()))
	return r, nil
}

// Engine returns the follower's engine, ready for read-only serving.
func (r *Replica) Engine() *engine.Engine { return r.eng }

// Run tails the leader until ctx is done. Transient errors (leader
// down, truncated stream) are absorbed: the follower records them in
// Status and keeps polling.
func (r *Replica) Run(ctx context.Context) {
	t := time.NewTimer(0)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		n, err := r.SyncOnce(ctx)
		r.mu.Lock()
		if err != nil {
			r.lastErr = err.Error()
		} else {
			r.lastErr = ""
		}
		r.mu.Unlock()
		if err == nil && n >= r.opts.BatchMax {
			// A full batch means backlog: drain without sleeping.
			t.Reset(0)
			continue
		}
		t.Reset(r.opts.Poll)
	}
}

// SyncOnce performs one replication round — one /replicate request,
// applying every returned record, falling back to a bundle fetch on 410
// or when the remaining lag exceeds the threshold — and returns how
// many records it applied. Exported for tests and for benchexp's
// catch-up measurements.
func (r *Replica) SyncOnce(ctx context.Context) (int, error) {
	from := r.eng.Version()
	u := fmt.Sprintf("%s/replicate?from=%d&max=%d", r.opts.Leader, from, r.opts.BatchMax)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return 0, err
	}
	resp, err := r.opts.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	leaderVer, _ := parseVersion(resp.Header.Get(server.VersionHeader))
	r.noteLeader(leaderVer)

	applied := 0
	switch resp.StatusCode {
	case http.StatusOK:
		br := bufio.NewReader(resp.Body)
		for {
			rec, err := wal.ReadFrame(br)
			if err == io.EOF {
				break
			}
			if errors.Is(err, wal.ErrTorn) {
				// Truncated mid-stream (leader died or hiccuped): what
				// arrived whole was applied; the next poll resumes.
				break
			}
			if err != nil {
				return applied, err
			}
			if _, err := r.eng.ApplyRecord(rec); err != nil {
				return applied, err
			}
			applied++
			r.recordsC.Inc()
			r.appliedG.Set(float64(rec.Version))
		}
	case http.StatusGone:
		// Our position was compacted away; only a bundle can catch up.
		if err := r.catchUpFromBundle(ctx); err != nil {
			return 0, err
		}
		r.updateLag(leaderVer)
		return 0, nil
	default:
		return 0, fmt.Errorf("replica: leader answered %s on /replicate", resp.Status)
	}

	// Past the lag threshold even after this batch, a snapshot fetch
	// beats replaying the rest record by record.
	if cur := r.eng.Version(); leaderVer > cur && leaderVer-cur > r.opts.LagFallback {
		if err := r.catchUpFromBundle(ctx); err != nil {
			return applied, err
		}
	}
	r.updateLag(leaderVer)
	return applied, nil
}

func (r *Replica) catchUpFromBundle(ctx context.Context) error {
	b, err := r.fetchBundle(ctx)
	if err != nil {
		return err
	}
	if b.ModelVersion <= r.eng.Version() {
		return nil // raced an older leader state; the next poll resolves it
	}
	if err := r.eng.LoadBundle(b); err != nil {
		return err
	}
	r.fetchesC.Inc()
	r.appliedG.Set(float64(b.ModelVersion))
	return nil
}

func (r *Replica) fetchBundle(ctx context.Context) (*store.Bundle, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.opts.Leader+"/bundle", nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.opts.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("replica: leader answered %s on /bundle", resp.Status)
	}
	if v, ok := parseVersion(resp.Header.Get(server.VersionHeader)); ok {
		r.noteLeader(v)
	}
	return store.ReadBundle(resp.Body)
}

func parseVersion(raw string) (uint64, bool) {
	if raw == "" {
		return 0, false
	}
	var v uint64
	if _, err := fmt.Sscanf(raw, "%d", &v); err != nil {
		return 0, false
	}
	return v, true
}

func (r *Replica) noteLeader(v uint64) {
	if v == 0 {
		return
	}
	r.mu.Lock()
	if v > r.leaderVer {
		r.leaderVer = v
	}
	r.mu.Unlock()
}

func (r *Replica) updateLag(leaderVer uint64) {
	cur := r.eng.Version()
	if leaderVer > cur {
		r.lagG.Set(float64(leaderVer - cur))
	} else {
		r.lagG.Set(0)
	}
}

// Status is the follower's replication state, served under /healthz
// (server.WithHealthSection) from the same obs cells /metrics exposes.
type Status struct {
	Leader         string `json:"leader"`
	AppliedVersion uint64 `json:"applied_version"`
	LeaderVersion  uint64 `json:"leader_version"`
	LagRecords     uint64 `json:"replication_lag_records"`
	RecordsApplied uint64 `json:"records_applied"`
	BundleFetches  uint64 `json:"bundle_fetches"`
	LastError      string `json:"last_error,omitempty"`
}

// Status reports the follower's current replication state.
func (r *Replica) Status() Status {
	r.mu.Lock()
	leaderVer, lastErr := r.leaderVer, r.lastErr
	r.mu.Unlock()
	return Status{
		Leader:         r.opts.Leader,
		AppliedVersion: uint64(r.appliedG.Value()),
		LeaderVersion:  leaderVer,
		LagRecords:     uint64(r.lagG.Value()),
		RecordsApplied: r.recordsC.Value(),
		BundleFetches:  r.fetchesC.Value(),
		LastError:      lastErr,
	}
}
