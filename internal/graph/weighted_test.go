package graph

import (
	"math"
	"testing"
)

func TestNewWeightedBasic(t *testing.T) {
	g, err := NewWeighted(3, 1,
		[]WeightedEdge{{0, 1, 2}, {0, 2, 1}, {0, 1, 1}}, // duplicate sums to 3
		[]AttrEntry{{0, 0, 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.EdgeWeight(0, 1) != 3 || g.EdgeWeight(0, 2) != 1 {
		t.Fatalf("weights: %v %v", g.EdgeWeight(0, 1), g.EdgeWeight(0, 2))
	}
	if g.OutDegree(0) != 4 {
		t.Fatalf("out weight sum = %v, want 4", g.OutDegree(0))
	}
	p, _ := g.Walk()
	if math.Abs(p.At(0, 1)-0.75) > 1e-12 || math.Abs(p.At(0, 2)-0.25) > 1e-12 {
		t.Fatalf("weighted walk probabilities wrong: %v %v", p.At(0, 1), p.At(0, 2))
	}
}

func TestNewWeightedValidation(t *testing.T) {
	if _, err := NewWeighted(2, 1, []WeightedEdge{{0, 1, 0}}, nil, nil); err == nil {
		t.Fatal("zero weight accepted")
	}
	if _, err := NewWeighted(2, 1, []WeightedEdge{{0, 1, -2}}, nil, nil); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := NewWeighted(2, 1, []WeightedEdge{{0, 9, 1}}, nil, nil); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
}

func TestWeightedMatchesUnweightedForUnitWeights(t *testing.T) {
	edges := []Edge{{0, 1}, {1, 2}, {2, 0}}
	wedges := []WeightedEdge{{0, 1, 1}, {1, 2, 1}, {2, 0, 1}}
	attrs := []AttrEntry{{0, 0, 1}, {1, 1, 1}}
	a, err := New(3, 2, edges, attrs, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewWeighted(3, 2, wedges, attrs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Adj.ToDense().Equal(b.Adj.ToDense(), 0) {
		t.Fatal("unit-weight graphs differ")
	}
	pa, _ := a.Walk()
	pb, _ := b.Walk()
	if !pa.ToDense().Equal(pb.ToDense(), 0) {
		t.Fatal("walk matrices differ")
	}
}
