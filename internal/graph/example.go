package graph

// RunningExample returns the 6-node, 3-attribute toy graph of the paper's
// Figure 1 (the "extended graph" running example of §2.2–2.3, whose exact
// forward/backward affinities appear in Table 2).
//
// The published figure is an image, so the precise edge list is not
// machine-readable; this reconstruction follows every constraint stated in
// the text:
//
//   - v1 and v2 carry no attributes (footnote 1's restart case);
//   - v1 reaches attribute r1 through many intermediate nodes (v3, v4, v5),
//     giving it high forward and backward affinity with r1;
//   - v5 owns r1 but not r3, yet its forward-only affinity ranks r3 above
//     r1 (its out-neighborhood leans toward r3-carrying v6) — the anomaly
//     the running example uses to motivate backward affinity;
//   - all attribute weights are 1, and the walks use α = 0.15.
//
// Node/attribute numbering is zero-based: paper's v1..v6 are 0..5 and
// r1..r3 are 0..2.
func RunningExample() *Graph {
	edges := []Edge{
		// v1 fans out to the r1-carrying cluster.
		{0, 2}, {0, 3}, {0, 4},
		// The cluster points back at v1.
		{2, 0}, {3, 0}, {4, 0},
		// v2 connects into the cluster.
		{1, 2}, {2, 1},
		// v5 leans toward v6, which carries r3 (the forward anomaly).
		{4, 5},
		// v6 routes back through v3 rather than v5, so backward r3 mass
		// does not pool at v5.
		{5, 2},
		// v3 also touches v6 lightly so r3 mass circulates.
		{2, 5},
	}
	attrs := []AttrEntry{
		// v3 carries r1 and r2.
		{Node: 2, Attr: 0, Weight: 1}, {Node: 2, Attr: 1, Weight: 1},
		// v4 carries r1.
		{Node: 3, Attr: 0, Weight: 1},
		// v5 carries r1 and r2 but NOT r3.
		{Node: 4, Attr: 0, Weight: 1}, {Node: 4, Attr: 1, Weight: 1},
		// v6 carries r3.
		{Node: 5, Attr: 2, Weight: 1},
	}
	g, err := New(6, 3, edges, attrs, nil)
	if err != nil {
		panic("graph: RunningExample construction failed: " + err.Error())
	}
	return g
}

// RunningExampleAlpha is the stopping probability the paper uses for the
// running example (citing the classic PPR setting of [19, 38]).
const RunningExampleAlpha = 0.15
