// Package graph defines the attributed network G = (V, EV, R, ER) of the
// paper (§2.1) and derives from it the matrices PANE consumes: adjacency A
// in CSR form, the random-walk matrix P = D⁻¹A, the attribute matrix R,
// and its row/column normalizations Rr and Rc (Equation 1).
package graph

import (
	"fmt"
	"sync"

	"pane/internal/mat"
	"pane/internal/sparse"
)

// Edge is a directed edge from Src to Dst.
type Edge struct {
	Src, Dst int
}

// AttrEntry associates node Node with attribute Attr at weight Weight
// (one element of ER).
type AttrEntry struct {
	Node, Attr int
	Weight     float64
}

// Graph is an immutable attributed directed graph. Build one with New;
// undirected inputs should be symmetrized by the caller (each undirected
// edge becomes two directed edges, the convention of §2.1).
type Graph struct {
	N int // number of nodes |V|
	D int // number of attributes |R|

	Adj    *sparse.CSR // n x n adjacency, A[i,j] = 1 iff (i,j) ∈ EV
	AdjT   *sparse.CSR // transpose of Adj (in-edges as CSR)
	Attr   *sparse.CSR // n x d attribute matrix R
	Labels [][]int     // optional per-node label sets (may be nil)

	outDeg []float64

	// Lazily-built cache of the derived matrices (P, Pᵀ, Rr, Rc, …).
	// Logically the graph stays immutable: the cache only memoizes pure
	// functions of Adj/Attr, and WithUpdates carries it across versions
	// with the dirty parts patched.
	prodMu sync.Mutex
	prod   *derived
}

// New builds a Graph from n nodes, d attributes, the directed edge list,
// and the node-attribute associations. Duplicate edges collapse to weight
// 1; attribute duplicates are summed. Labels may be nil.
func New(n, d int, edges []Edge, attrs []AttrEntry, labels [][]int) (*Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("graph: need at least one node, got %d", n)
	}
	if d < 0 {
		return nil, fmt.Errorf("graph: negative attribute count %d", d)
	}
	adjEntries := make([]sparse.Entry, 0, len(edges))
	seen := make(map[[2]int]bool, len(edges))
	for _, e := range edges {
		if e.Src < 0 || e.Src >= n || e.Dst < 0 || e.Dst >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range for %d nodes", e.Src, e.Dst, n)
		}
		key := [2]int{e.Src, e.Dst}
		if seen[key] {
			continue
		}
		seen[key] = true
		adjEntries = append(adjEntries, sparse.Entry{Row: e.Src, Col: e.Dst, Val: 1})
	}
	attrEntries := make([]sparse.Entry, 0, len(attrs))
	for _, a := range attrs {
		if a.Node < 0 || a.Node >= n || a.Attr < 0 || a.Attr >= d {
			return nil, fmt.Errorf("graph: attribute entry (%d,%d) out of range", a.Node, a.Attr)
		}
		if a.Weight < 0 {
			return nil, fmt.Errorf("graph: negative attribute weight %v at (%d,%d)", a.Weight, a.Node, a.Attr)
		}
		if a.Weight == 0 {
			continue
		}
		attrEntries = append(attrEntries, sparse.Entry{Row: a.Node, Col: a.Attr, Val: a.Weight})
	}
	if labels != nil && len(labels) != n {
		return nil, fmt.Errorf("graph: labels length %d != n %d", len(labels), n)
	}
	adj := sparse.NewCSR(n, n, adjEntries)
	g := &Graph{
		N:      n,
		D:      d,
		Adj:    adj,
		AdjT:   adj.T(),
		Attr:   sparse.NewCSR(n, d, attrEntries),
		Labels: labels,
	}
	g.outDeg = adj.RowSums()
	return g, nil
}

// M returns the number of directed edges.
func (g *Graph) M() int { return g.Adj.NNZ() }

// NNZAttr returns |ER|, the number of node-attribute associations.
func (g *Graph) NNZAttr() int { return g.Attr.NNZ() }

// OutDegree returns the out-degree of node v.
func (g *Graph) OutDegree(v int) float64 { return g.outDeg[v] }

// Walk returns the random-walk matrix P = D⁻¹A together with its
// transpose Pᵀ. Rows of dangling nodes (out-degree 0) are zero: a walk at
// a dangling node has nowhere to go, so the iterative recurrence of
// Equation (6) simply stops propagating mass through it. This matches the
// behaviour of the simulator in package rwalk, which terminates walks
// stranded at dangling nodes.
//
// The matrices are cached on the graph (and carried across WithUpdates
// with only the dirty parts recomputed); they are shared and must not be
// mutated.
func (g *Graph) Walk() (p, pt *sparse.CSR) {
	pr := g.products()
	return pr.p, pr.pt
}

// NormalizedAttrs returns the row-normalized attribute matrix Rr
// (Rr[v,r] = R[v,r]/Σ_l R[v,l], node v's attribute pick distribution used
// by the forward walk) and the column-normalized Rc
// (Rc[v,r] = R[v,r]/Σ_l R[l,r], attribute r's node pick distribution used
// by the backward walk) as dense n x d matrices — the seeds P(0)_f and
// P(0)_b of Algorithm 2.
//
// NOTE: the arXiv transcription of Equation (1) swaps the two formulas
// relative to their names; the walk semantics of §2.2/§3.1 ("Rr[vl,rj] is
// the probability that node vl picks attribute rj"; "Rc[vl,rj] is the
// probability that attribute rj picks node vl") are unambiguous, so we
// follow the semantics: Rr row-stochastic, Rc column-stochastic. Zero
// rows/columns stay zero.
//
// Like Walk, the matrices are cached on the graph and carried across
// WithUpdates with only the dirty rows/columns re-normalized; they are
// shared and must not be mutated.
func (g *Graph) NormalizedAttrs() (rr, rc *mat.Dense) {
	pr := g.products()
	return pr.rr, pr.rc
}

// AttrColSums returns the attribute matrix's per-column weight sums (Rc's
// normalization denominators), cached with the other derived products.
// The slice is shared and must not be mutated.
func (g *Graph) AttrColSums() []float64 {
	return g.products().attrColSums
}

// ForwardPickProbs returns the distribution used at the end of a forward
// walk: for node v, row v holds the probability of picking each attribute
// (row-normalized attribute matrix Rr). Nodes without attributes have a
// zero row; per footnote 1 of the paper the simulator restarts such walks
// from the source.
func (g *Graph) ForwardPickProbs() *mat.Dense {
	r := g.Attr.ToDense()
	r.NormalizeRows()
	return r
}

// BackwardStartProbs returns, for each attribute column r, the
// distribution over nodes from which a backward walk starts, i.e. the
// column-normalized attribute matrix (Rc in the backward-walk prose of
// §2.2, which picks node vl with probability proportional to the weight
// of (vl, r)).
func (g *Graph) BackwardStartProbs() *mat.Dense {
	r := g.Attr.ToDense()
	r.NormalizeColumns()
	return r
}

// NodeAttrs returns the attribute indices and weights of node v.
func (g *Graph) NodeAttrs(v int) ([]int32, []float64) { return g.Attr.Row(v) }

// OutNeighbors returns the out-neighbor indices of node v.
func (g *Graph) OutNeighbors(v int) []int32 {
	cols, _ := g.Adj.Row(v)
	return cols
}

// HasEdge reports whether the directed edge (u, v) exists.
func (g *Graph) HasEdge(u, v int) bool { return g.Adj.At(u, v) != 0 }

// Stats summarizes the graph in Table 3's terms.
type Stats struct {
	Nodes, Edges, Attrs, AttrEntries, LabelKinds int
}

// Stats returns the dataset statistics row for this graph.
func (g *Graph) Stats() Stats {
	kinds := map[int]bool{}
	for _, ls := range g.Labels {
		for _, l := range ls {
			kinds[l] = true
		}
	}
	return Stats{
		Nodes:       g.N,
		Edges:       g.M(),
		Attrs:       g.D,
		AttrEntries: g.NNZAttr(),
		LabelKinds:  len(kinds),
	}
}
