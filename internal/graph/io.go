package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// The text formats are deliberately simple, line-oriented, and
// whitespace-separated so datasets can be produced by any tool:
//
//	edges:  "src dst"            one directed edge per line
//	attrs:  "node attr weight"   one association per line (weight optional, default 1)
//	labels: "node label"         one label per line; nodes may repeat (multi-label)
//
// Lines starting with '#' and blank lines are ignored everywhere.

// WriteEdges writes the graph's edge list in text form.
func (g *Graph) WriteEdges(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < g.N; i++ {
		cols, _ := g.Adj.Row(i)
		for _, c := range cols {
			if _, err := fmt.Fprintf(bw, "%d %d\n", i, c); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WriteAttrs writes the node-attribute associations in text form.
func (g *Graph) WriteAttrs(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < g.N; i++ {
		cols, vals := g.Attr.Row(i)
		for k, c := range cols {
			if _, err := fmt.Fprintf(bw, "%d %d %g\n", i, c, vals[k]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WriteLabels writes the label assignments in text form.
func (g *Graph) WriteLabels(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i, ls := range g.Labels {
		for _, l := range ls {
			if _, err := fmt.Fprintf(bw, "%d %d\n", i, l); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadEdges parses an edge-list stream. Node ids may be sparse; n is the
// inferred node count (max id + 1).
func ReadEdges(r io.Reader) (edges []Edge, n int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		fields, skip, err := splitLine(sc.Text(), line, 2, 2)
		if err != nil {
			return nil, 0, err
		}
		if skip {
			continue
		}
		src, dst := fields[0], fields[1]
		edges = append(edges, Edge{Src: int(src), Dst: int(dst)})
		if int(src) >= n {
			n = int(src) + 1
		}
		if int(dst) >= n {
			n = int(dst) + 1
		}
	}
	return edges, n, sc.Err()
}

// ReadAttrs parses a node-attribute stream, returning the entries and the
// inferred attribute count (max attr id + 1).
func ReadAttrs(r io.Reader) (attrs []AttrEntry, d int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		fields, skip, err := splitLine(sc.Text(), line, 2, 3)
		if err != nil {
			return nil, 0, err
		}
		if skip {
			continue
		}
		w := 1.0
		if len(fields) == 3 {
			w = fields[2]
		}
		attrs = append(attrs, AttrEntry{Node: int(fields[0]), Attr: int(fields[1]), Weight: w})
		if int(fields[1]) >= d {
			d = int(fields[1]) + 1
		}
	}
	return attrs, d, sc.Err()
}

// ReadLabels parses a label stream into per-node label sets for n nodes.
func ReadLabels(r io.Reader, n int) ([][]int, error) {
	labels := make([][]int, n)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		fields, skip, err := splitLine(sc.Text(), line, 2, 2)
		if err != nil {
			return nil, err
		}
		if skip {
			continue
		}
		v := int(fields[0])
		if v < 0 || v >= n {
			return nil, fmt.Errorf("graph: labels line %d: node %d out of range", line, v)
		}
		labels[v] = append(labels[v], int(fields[1]))
	}
	return labels, sc.Err()
}

func splitLine(s string, line, minF, maxF int) ([]float64, bool, error) {
	s = strings.TrimSpace(s)
	if s == "" || strings.HasPrefix(s, "#") {
		return nil, true, nil
	}
	parts := strings.Fields(s)
	if len(parts) < minF || len(parts) > maxF {
		return nil, false, fmt.Errorf("graph: line %d: want %d-%d fields, got %d", line, minF, maxF, len(parts))
	}
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, false, fmt.Errorf("graph: line %d field %d: %v", line, i+1, err)
		}
		out[i] = v
	}
	return out, false, nil
}

// LoadFiles builds a Graph from edge, attribute, and (optionally empty)
// label file paths.
func LoadFiles(edgePath, attrPath, labelPath string) (*Graph, error) {
	ef, err := os.Open(edgePath)
	if err != nil {
		return nil, err
	}
	defer ef.Close()
	edges, n, err := ReadEdges(ef)
	if err != nil {
		return nil, err
	}
	af, err := os.Open(attrPath)
	if err != nil {
		return nil, err
	}
	defer af.Close()
	attrs, d, err := ReadAttrs(af)
	if err != nil {
		return nil, err
	}
	for _, a := range attrs {
		if a.Node >= n {
			n = a.Node + 1
		}
	}
	var labels [][]int
	if labelPath != "" {
		lf, err := os.Open(labelPath)
		if err != nil {
			return nil, err
		}
		defer lf.Close()
		labels, err = ReadLabels(lf, n)
		if err != nil {
			return nil, err
		}
	}
	return New(n, d, edges, attrs, labels)
}
