package graph

import (
	"pane/internal/mat"
	"pane/internal/sparse"
)

// derived caches the matrices Walk and NormalizedAttrs compute from the
// graph: the random-walk matrix P and its transpose, the normalized
// attribute seeds Rr/Rc, the attribute column sums (Rc's denominators),
// and the lazily-built attribute transpose. Building them costs
// O(m + n·d); a Graph produced by WithUpdates inherits its parent's cache
// with only the dirty rows and columns recomputed, so repeated
// AffinityFromGraph calls across an update stream stop re-deriving
// everything from scratch.
type derived struct {
	p, pt       *sparse.CSR
	rr, rc      *mat.Dense
	attrColSums []float64
	attrT       *sparse.CSR // nil until first requested via AttrT
}

// products returns the derived-matrix cache, building it on first use.
func (g *Graph) products() *derived {
	g.prodMu.Lock()
	defer g.prodMu.Unlock()
	if g.prod == nil {
		g.prod = g.buildDerived()
	}
	return g.prod
}

func (g *Graph) buildDerived() *derived {
	p := g.Adj.Clone()
	inv := make([]float64, g.N)
	for i, dg := range g.outDeg {
		if dg > 0 {
			inv[i] = 1 / dg
		}
	}
	p.ScaleRows(inv)
	rr := g.Attr.ToDense()
	rc := rr.Clone()
	rr.NormalizeRows()
	// Keep Rc's column sums: the incremental patch adjusts only touched
	// columns, and callers (the affinity frontier) need them anyway. The
	// dense ColSums pass visits the same nonzeros in the same row-major
	// order NormalizeColumns would, so scaling by these sums is
	// bit-identical to calling NormalizeColumns.
	colSums := rc.ColSums()
	scaleColumns(rc, colSums)
	return &derived{p: p, pt: p.T(), rr: rr, rc: rc, attrColSums: colSums}
}

// scaleColumns is the scaling pass of Dense.NormalizeColumns with the sums
// supplied by the caller: columns with zero sum are left untouched.
func scaleColumns(m *mat.Dense, sums []float64) {
	inv := make([]float64, m.Cols)
	for j, s := range sums {
		if s != 0 {
			inv[j] = 1 / s
		} else {
			inv[j] = 1
		}
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] *= inv[j]
		}
	}
}

// AttrT returns the transpose of the attribute matrix (attributes as rows,
// supporting nodes as columns), cached after the first call. The result is
// shared and must not be mutated. The dynamic path uses it to find the
// nodes whose Rc entries an attribute delta moves.
func (g *Graph) AttrT() *sparse.CSR {
	g.prodMu.Lock()
	defer g.prodMu.Unlock()
	if g.prod == nil {
		g.prod = g.buildDerived()
	}
	if g.prod.attrT == nil {
		g.prod.attrT = g.Attr.T()
	}
	return g.prod.attrT
}

// patchDerived carries a parent graph's derived cache into ng, recomputing
// only what the delta dirtied: the walk matrices are rebuilt from the
// merged adjacency (O(m) copy + transpose, no dense work), Rr rows are
// re-normalized for the touched nodes only, and Rc columns (with their
// sums) for the touched attributes only. Every recomputed value goes
// through the same arithmetic as a fresh buildDerived, so the patched
// cache is bit-identical to one built from scratch on ng.
func (ng *Graph) patchDerived(old *derived, touchedNodes, touchedAttrs []int) *derived {
	d := &derived{}
	p := ng.Adj.Clone()
	inv := make([]float64, ng.N)
	for i, dg := range ng.outDeg {
		if dg > 0 {
			inv[i] = 1 / dg
		}
	}
	p.ScaleRows(inv)
	d.p, d.pt = p, p.T()
	if len(touchedNodes) == 0 && len(touchedAttrs) == 0 {
		d.rr, d.rc, d.attrColSums, d.attrT = old.rr, old.rc, old.attrColSums, old.attrT
		return d
	}
	attrT := ng.Attr.T()
	d.attrT = attrT
	rr := old.rr.Clone()
	for _, v := range touchedNodes {
		row := rr.Row(v)
		for j := range row {
			row[j] = 0
		}
		cols, vals := ng.Attr.Row(v)
		var s float64
		for _, w := range vals {
			s += w
		}
		if s == 0 {
			continue
		}
		rinv := 1 / s
		for k, c := range cols {
			row[c] = vals[k] * rinv
		}
	}
	d.rr = rr
	rc := old.rc.Clone()
	sums := append([]float64(nil), old.attrColSums...)
	for _, r := range touchedAttrs {
		nodes, vals := attrT.Row(r)
		var s float64
		for _, w := range vals {
			s += w
		}
		sums[r] = s
		cinv := 1.0
		if s != 0 {
			cinv = 1 / s
		}
		// Attribute weights are additive, so the new column's support is a
		// superset of the old one: overwriting the new supporters covers
		// every previously-stored entry, and untouched zeros stay zero.
		for k, v := range nodes {
			rc.Row(int(v))[r] = vals[k] * cinv
		}
	}
	d.rc = rc
	d.attrColSums = sums
	return d
}
