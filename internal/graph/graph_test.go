package graph

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, n, d int, edges []Edge, attrs []AttrEntry, labels [][]int) *Graph {
	t.Helper()
	g, err := New(n, d, edges, attrs, labels)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewBasic(t *testing.T) {
	g := mustNew(t, 3, 2,
		[]Edge{{0, 1}, {1, 2}, {0, 1}}, // duplicate collapses
		[]AttrEntry{{0, 0, 1}, {0, 0, 2}, {2, 1, 0.5}}, nil)
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2 (duplicate edge must collapse)", g.M())
	}
	if g.Attr.At(0, 0) != 3 {
		t.Fatalf("attr duplicate should sum: %v", g.Attr.At(0, 0))
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Fatal("directedness violated")
	}
	if g.OutDegree(0) != 1 || g.OutDegree(2) != 0 {
		t.Fatal("wrong out-degrees")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 1, nil, nil, nil); err == nil {
		t.Fatal("want error for zero nodes")
	}
	if _, err := New(2, 1, []Edge{{0, 5}}, nil, nil); err == nil {
		t.Fatal("want error for out-of-range edge")
	}
	if _, err := New(2, 1, nil, []AttrEntry{{0, 3, 1}}, nil); err == nil {
		t.Fatal("want error for out-of-range attribute")
	}
	if _, err := New(2, 1, nil, []AttrEntry{{0, 0, -1}}, nil); err == nil {
		t.Fatal("want error for negative weight")
	}
	if _, err := New(2, 1, nil, nil, [][]int{{0}}); err == nil {
		t.Fatal("want error for label length mismatch")
	}
}

func TestWalkRowStochastic(t *testing.T) {
	g := mustNew(t, 4, 0, []Edge{{0, 1}, {0, 2}, {1, 3}, {2, 3}}, nil, nil)
	p, pt := g.Walk()
	sums := p.RowSums()
	for i, s := range sums[:3] {
		if math.Abs(s-1) > 1e-12 {
			t.Fatalf("row %d of P sums to %v", i, s)
		}
	}
	if sums[3] != 0 {
		t.Fatal("dangling node 3 should have a zero row")
	}
	// Pᵀ really is the transpose.
	if !pt.ToDense().Equal(p.ToDense().T(), 0) {
		t.Fatal("Pᵀ mismatch")
	}
	if math.Abs(p.At(0, 1)-0.5) > 1e-12 {
		t.Fatalf("P[0,1] = %v, want 0.5", p.At(0, 1))
	}
}

func TestNormalizedAttrs(t *testing.T) {
	g := mustNew(t, 3, 2, nil, []AttrEntry{{0, 0, 1}, {0, 1, 3}, {1, 0, 2}}, nil)
	rr, rc := g.NormalizedAttrs()
	// Rr rows sum to 1 for nodes with attributes.
	if math.Abs(rr.At(0, 0)-0.25) > 1e-12 || math.Abs(rr.At(0, 1)-0.75) > 1e-12 {
		t.Fatalf("Rr row 0 = %v %v", rr.At(0, 0), rr.At(0, 1))
	}
	if rr.At(2, 0) != 0 || rr.At(2, 1) != 0 {
		t.Fatal("attribute-less node must have zero Rr row")
	}
	// Rc columns sum to 1.
	if math.Abs(rc.At(0, 0)-1.0/3) > 1e-12 || math.Abs(rc.At(1, 0)-2.0/3) > 1e-12 {
		t.Fatalf("Rc col 0 = %v %v", rc.At(0, 0), rc.At(1, 0))
	}
	if math.Abs(rc.At(0, 1)-1) > 1e-12 {
		t.Fatalf("Rc col 1 = %v", rc.At(0, 1))
	}
}

func TestPickProbConsistency(t *testing.T) {
	g := RunningExample()
	rr, rc := g.NormalizedAttrs()
	if fp := g.ForwardPickProbs(); fp.MaxAbsDiff(rr) > 0 {
		t.Fatal("ForwardPickProbs != row-normalized attrs")
	}
	if bp := g.BackwardStartProbs(); bp.MaxAbsDiff(rc) > 0 {
		t.Fatal("BackwardStartProbs != column-normalized attrs")
	}
}

func TestRunningExampleConstraints(t *testing.T) {
	g := RunningExample()
	if g.N != 6 || g.D != 3 {
		t.Fatalf("shape %d nodes %d attrs", g.N, g.D)
	}
	// v1 (index 0) and v2 (index 1) carry no attributes.
	for _, v := range []int{0, 1} {
		if cols, _ := g.NodeAttrs(v); len(cols) != 0 {
			t.Fatalf("node %d should have no attributes", v)
		}
	}
	// v5 (index 4) owns r1 (0) but not r3 (2).
	if g.Attr.At(4, 0) == 0 || g.Attr.At(4, 2) != 0 {
		t.Fatal("v5 attribute constraint violated")
	}
	// All attribute weights are 1.
	for _, v := range g.Attr.Vals {
		if v != 1 {
			t.Fatalf("attribute weight %v != 1", v)
		}
	}
	// Every node must be able to continue a walk (no dead ends for v1-v5).
	for v := 0; v < g.N; v++ {
		if g.OutDegree(v) == 0 {
			t.Fatalf("node %d is dangling in the running example", v)
		}
	}
}

func TestStats(t *testing.T) {
	g := mustNew(t, 3, 2, []Edge{{0, 1}}, []AttrEntry{{0, 0, 1}},
		[][]int{{0, 1}, {1}, {}})
	s := g.Stats()
	if s.Nodes != 3 || s.Edges != 1 || s.Attrs != 2 || s.AttrEntries != 1 || s.LabelKinds != 2 {
		t.Fatalf("Stats = %+v", s)
	}
}

func TestIORoundTrip(t *testing.T) {
	g := RunningExample()
	var eb, ab bytes.Buffer
	if err := g.WriteEdges(&eb); err != nil {
		t.Fatal(err)
	}
	if err := g.WriteAttrs(&ab); err != nil {
		t.Fatal(err)
	}
	edges, n, err := ReadEdges(&eb)
	if err != nil {
		t.Fatal(err)
	}
	attrs, d, err := ReadAttrs(&ab)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := New(n, d, edges, attrs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !g2.Adj.ToDense().Equal(g.Adj.ToDense(), 0) {
		t.Fatal("edge round trip changed adjacency")
	}
	if !g2.Attr.ToDense().Equal(g.Attr.ToDense(), 0) {
		t.Fatal("attr round trip changed attributes")
	}
}

func TestReadEdgesCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\n0 1\n  2 0  \n"
	edges, n, err := ReadEdges(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 2 || n != 3 {
		t.Fatalf("edges=%v n=%d", edges, n)
	}
}

func TestReadAttrsDefaultWeight(t *testing.T) {
	attrs, d, err := ReadAttrs(strings.NewReader("0 1\n1 0 2.5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if d != 2 || attrs[0].Weight != 1 || attrs[1].Weight != 2.5 {
		t.Fatalf("attrs=%v d=%d", attrs, d)
	}
}

func TestReadEdgesMalformed(t *testing.T) {
	if _, _, err := ReadEdges(strings.NewReader("0 1 2 3\n")); err == nil {
		t.Fatal("want error for too many fields")
	}
	if _, _, err := ReadEdges(strings.NewReader("abc def\n")); err == nil {
		t.Fatal("want error for non-numeric fields")
	}
}

func TestReadLabelsMultiLabel(t *testing.T) {
	ls, err := ReadLabels(strings.NewReader("0 1\n0 2\n2 0\n"), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ls[0]) != 2 || len(ls[1]) != 0 || ls[2][0] != 0 {
		t.Fatalf("labels = %v", ls)
	}
	if _, err := ReadLabels(strings.NewReader("9 0\n"), 3); err == nil {
		t.Fatal("want error for out-of-range node")
	}
}

func TestPropertyWalkMassConservation(t *testing.T) {
	// For random graphs, every non-dangling row of P sums to 1.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		var edges []Edge
		for i := 0; i < n*2; i++ {
			edges = append(edges, Edge{rng.Intn(n), rng.Intn(n)})
		}
		g, err := New(n, 0, edges, nil, nil)
		if err != nil {
			return false
		}
		p, _ := g.Walk()
		for i, s := range p.RowSums() {
			if g.OutDegree(i) > 0 && math.Abs(s-1) > 1e-9 {
				return false
			}
			if g.OutDegree(i) == 0 && s != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
