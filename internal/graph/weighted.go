package graph

import (
	"fmt"

	"pane/internal/sparse"
)

// WeightedEdge is a directed edge carrying a positive weight. Weighted
// graphs generalize §2.1's model: the random-walk matrix becomes
// P = D⁻¹A with D the diagonal of out-weight sums, so a walk follows an
// out-edge with probability proportional to its weight.
type WeightedEdge struct {
	Src, Dst int
	Weight   float64
}

// NewWeighted builds a Graph whose adjacency carries edge weights.
// Duplicate (src,dst) pairs sum their weights. Weights must be positive.
func NewWeighted(n, d int, edges []WeightedEdge, attrs []AttrEntry, labels [][]int) (*Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("graph: need at least one node, got %d", n)
	}
	if d < 0 {
		return nil, fmt.Errorf("graph: negative attribute count %d", d)
	}
	adjEntries := make([]sparse.Entry, 0, len(edges))
	for _, e := range edges {
		if e.Src < 0 || e.Src >= n || e.Dst < 0 || e.Dst >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range for %d nodes", e.Src, e.Dst, n)
		}
		if e.Weight <= 0 {
			return nil, fmt.Errorf("graph: non-positive edge weight %v at (%d,%d)", e.Weight, e.Src, e.Dst)
		}
		adjEntries = append(adjEntries, sparse.Entry{Row: e.Src, Col: e.Dst, Val: e.Weight})
	}
	attrEntries := make([]sparse.Entry, 0, len(attrs))
	for _, a := range attrs {
		if a.Node < 0 || a.Node >= n || a.Attr < 0 || a.Attr >= d {
			return nil, fmt.Errorf("graph: attribute entry (%d,%d) out of range", a.Node, a.Attr)
		}
		if a.Weight < 0 {
			return nil, fmt.Errorf("graph: negative attribute weight %v at (%d,%d)", a.Weight, a.Node, a.Attr)
		}
		if a.Weight == 0 {
			continue
		}
		attrEntries = append(attrEntries, sparse.Entry{Row: a.Node, Col: a.Attr, Val: a.Weight})
	}
	if labels != nil && len(labels) != n {
		return nil, fmt.Errorf("graph: labels length %d != n %d", len(labels), n)
	}
	adj := sparse.NewCSR(n, n, adjEntries)
	g := &Graph{
		N:      n,
		D:      d,
		Adj:    adj,
		AdjT:   adj.T(),
		Attr:   sparse.NewCSR(n, d, attrEntries),
		Labels: labels,
	}
	g.outDeg = adj.RowSums()
	return g, nil
}

// EdgeWeight returns the weight of edge (u, v), zero when absent.
func (g *Graph) EdgeWeight(u, v int) float64 { return g.Adj.At(u, v) }
