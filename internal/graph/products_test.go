package graph

import (
	"math/rand"
	"testing"

	"pane/internal/mat"
	"pane/internal/sparse"
)

// randomGraph builds a random directed attributed graph; attribute weights
// are quarter-integers so additive merges are float-exact regardless of
// summation order.
func randomGraph(rng *rand.Rand, n, d int) *Graph {
	var edges []Edge
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && rng.Float64() < 0.12 {
				edges = append(edges, Edge{Src: u, Dst: v})
			}
		}
	}
	var attrs []AttrEntry
	for v := 0; v < n; v++ {
		for r := 0; r < d; r++ {
			if rng.Float64() < 0.3 {
				attrs = append(attrs, AttrEntry{Node: v, Attr: r, Weight: float64(1+rng.Intn(16)) * 0.25})
			}
		}
	}
	g, err := New(n, d, edges, attrs, nil)
	if err != nil {
		panic(err)
	}
	return g
}

func densesEqual(a, b *mat.Dense) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i, v := range a.Data {
		if b.Data[i] != v {
			return false
		}
	}
	return true
}

func csrsEqual(a, b *sparse.CSR) bool {
	if a.R != b.R || a.C != b.C || a.NNZ() != b.NNZ() {
		return false
	}
	for i := range a.RowPtr {
		if a.RowPtr[i] != b.RowPtr[i] {
			return false
		}
	}
	for k := range a.Cols {
		if a.Cols[k] != b.Cols[k] || a.Vals[k] != b.Vals[k] {
			return false
		}
	}
	return true
}

// TestWithUpdatesMergeMatchesRebuild checks that the CSR-merge fast path
// of WithUpdates produces the same graph as rebuilding from entry lists.
func TestWithUpdatesMergeMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(rng, 8+rng.Intn(20), 3+rng.Intn(6))
		var edges []Edge
		for k := 0; k < rng.Intn(6); k++ {
			edges = append(edges, Edge{Src: rng.Intn(g.N), Dst: rng.Intn(g.N)})
		}
		var attrs []AttrEntry
		for k := 0; k < rng.Intn(6); k++ {
			attrs = append(attrs, AttrEntry{Node: rng.Intn(g.N), Attr: rng.Intn(g.D), Weight: float64(rng.Intn(8)) * 0.25})
		}
		got, err := g.WithUpdates(edges, attrs)
		if err != nil {
			t.Fatal(err)
		}
		want, err := New(g.N, g.D, append(g.Edges(), edges...), append(g.AttrEntries(), attrs...), g.Labels)
		if err != nil {
			t.Fatal(err)
		}
		if !csrsEqual(got.Adj, want.Adj) {
			t.Fatalf("trial %d: merged adjacency differs from rebuild", trial)
		}
		if !csrsEqual(got.Attr, want.Attr) {
			t.Fatalf("trial %d: merged attributes differ from rebuild", trial)
		}
		if !csrsEqual(got.AdjT, want.AdjT) {
			t.Fatalf("trial %d: merged transpose differs from rebuild", trial)
		}
		for v := 0; v < g.N; v++ {
			if got.OutDegree(v) != want.OutDegree(v) {
				t.Fatalf("trial %d: out-degree of %d differs", trial, v)
			}
		}
	}
}

// TestPatchedProductsMatchFresh checks that the derived-matrix cache
// carried across WithUpdates is bit-identical to one built from scratch
// on the updated graph.
func TestPatchedProductsMatchFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(rng, 8+rng.Intn(20), 3+rng.Intn(6))
		// Materialize the parent's cache so WithUpdates patches it.
		g.Walk()
		g.NormalizedAttrs()
		g.AttrT()
		var edges []Edge
		for k := 0; k < 1+rng.Intn(5); k++ {
			edges = append(edges, Edge{Src: rng.Intn(g.N), Dst: rng.Intn(g.N)})
		}
		var attrs []AttrEntry
		if trial%2 == 0 {
			for k := 0; k < 1+rng.Intn(5); k++ {
				attrs = append(attrs, AttrEntry{Node: rng.Intn(g.N), Attr: rng.Intn(g.D), Weight: float64(1+rng.Intn(8)) * 0.25})
			}
		}
		g2, err := g.WithUpdates(edges, attrs)
		if err != nil {
			t.Fatal(err)
		}
		if g2.prod == nil {
			t.Fatal("WithUpdates did not carry the derived cache")
		}
		fresh, err := New(g.N, g.D, g2.Edges(), g2.AttrEntries(), g2.Labels)
		if err != nil {
			t.Fatal(err)
		}
		fp, fpt := fresh.Walk()
		frr, frc := fresh.NormalizedAttrs()
		p, pt := g2.Walk()
		rr, rc := g2.NormalizedAttrs()
		if !csrsEqual(p, fp) || !csrsEqual(pt, fpt) {
			t.Fatalf("trial %d: patched walk matrices differ from fresh", trial)
		}
		if !densesEqual(rr, frr) {
			t.Fatalf("trial %d: patched Rr differs from fresh", trial)
		}
		if !densesEqual(rc, frc) {
			t.Fatalf("trial %d: patched Rc differs from fresh", trial)
		}
		fs := fresh.AttrColSums()
		for j, s := range g2.AttrColSums() {
			if s != fs[j] {
				t.Fatalf("trial %d: patched attr col sum %d differs: %v vs %v", trial, j, s, fs[j])
			}
		}
		if !csrsEqual(g2.AttrT(), fresh.AttrT()) {
			t.Fatalf("trial %d: patched AttrT differs from fresh", trial)
		}
	}
}

// TestProductsCachedAndShared checks that Walk/NormalizedAttrs return the
// same objects on repeated calls (the memoization contract).
func TestProductsCachedAndShared(t *testing.T) {
	g := RunningExample()
	p1, pt1 := g.Walk()
	p2, pt2 := g.Walk()
	if p1 != p2 || pt1 != pt2 {
		t.Fatal("Walk results not cached")
	}
	rr1, rc1 := g.NormalizedAttrs()
	rr2, rc2 := g.NormalizedAttrs()
	if rr1 != rr2 || rc1 != rc2 {
		t.Fatal("NormalizedAttrs results not cached")
	}
	if g.AttrT() != g.AttrT() {
		t.Fatal("AttrT not cached")
	}
}

// TestEdgeOnlyUpdateSharesAttrProducts checks that an edge-only delta
// carries the attribute-side products across without any recompute (the
// hot path of high-rate edge ingest).
func TestEdgeOnlyUpdateSharesAttrProducts(t *testing.T) {
	g := RunningExample()
	rr, rc := g.NormalizedAttrs()
	at := g.AttrT()
	g2, err := g.WithUpdates([]Edge{{Src: 0, Dst: 3}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rr2, rc2 := g2.NormalizedAttrs()
	if rr2 != rr || rc2 != rc {
		t.Fatal("edge-only update should share Rr/Rc")
	}
	if g2.Attr != g.Attr || g2.AttrT() != at {
		t.Fatal("edge-only update should share the attribute matrix and its transpose")
	}
}
