package graph

import (
	"testing"
)

func TestEdgesAndAttrEntriesRoundTrip(t *testing.T) {
	g := RunningExample()
	g2, err := New(g.N, g.D, g.Edges(), g.AttrEntries(), g.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if g2.M() != g.M() || g2.NNZAttr() != g.NNZAttr() {
		t.Fatalf("round trip changed graph: m %d->%d, |ER| %d->%d",
			g.M(), g2.M(), g.NNZAttr(), g2.NNZAttr())
	}
	for u := 0; u < g.N; u++ {
		for v := 0; v < g.N; v++ {
			if g.HasEdge(u, v) != g2.HasEdge(u, v) {
				t.Fatalf("edge (%d,%d) differs", u, v)
			}
		}
	}
}

func TestWithUpdates(t *testing.T) {
	g := RunningExample()
	if g.HasEdge(1, 3) {
		t.Fatal("test premise: edge (1,3) should not exist")
	}
	w0 := g.Attr.At(1, 0)
	g2, err := g.WithUpdates(
		[]Edge{{Src: 1, Dst: 3}},
		[]AttrEntry{{Node: 1, Attr: 0, Weight: 2}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !g2.HasEdge(1, 3) {
		t.Fatal("inserted edge missing")
	}
	if got := g2.Attr.At(1, 0); got != w0+2 {
		t.Fatalf("attribute weight %v, want %v (additive)", got, w0+2)
	}
	// Original untouched (immutability contract).
	if g.HasEdge(1, 3) || g.Attr.At(1, 0) != w0 {
		t.Fatal("WithUpdates mutated the receiver")
	}
	// Duplicate edge inserts collapse.
	g3, err := g2.WithUpdates([]Edge{{Src: 1, Dst: 3}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g3.M() != g2.M() {
		t.Fatalf("duplicate edge changed m: %d -> %d", g2.M(), g3.M())
	}
	// Out-of-range entries are rejected.
	if _, err := g.WithUpdates([]Edge{{Src: 0, Dst: g.N}}, nil); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if _, err := g.WithUpdates(nil, []AttrEntry{{Node: 0, Attr: g.D, Weight: 1}}); err == nil {
		t.Fatal("out-of-range attribute accepted")
	}
}

func TestFromCSRMatchesNew(t *testing.T) {
	g := RunningExample()
	g2, err := FromCSR(g.Adj, g.Attr, g.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N != g.N || g2.D != g.D || g2.M() != g.M() {
		t.Fatalf("shape changed: %d/%d/%d vs %d/%d/%d", g2.N, g2.D, g2.M(), g.N, g.D, g.M())
	}
	for v := 0; v < g.N; v++ {
		if g2.OutDegree(v) != g.OutDegree(v) {
			t.Fatalf("out-degree of %d differs", v)
		}
	}
	// AdjT was rebuilt, not shared.
	if g2.AdjT.NNZ() != g.AdjT.NNZ() {
		t.Fatal("transpose nnz differs")
	}
	// Dimension validation.
	if _, err := FromCSR(g.Attr, g.Attr, nil); err == nil {
		t.Fatal("non-square adjacency accepted")
	}
	if _, err := FromCSR(g.Adj, g.Attr, [][]int{{0}}); err == nil {
		t.Fatal("short labels accepted")
	}
}
