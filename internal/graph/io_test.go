package graph

import (
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestLoadFilesRoundTrip(t *testing.T) {
	dir := t.TempDir()
	g := RunningExample()
	labels := make([][]int, g.N)
	for i := range labels {
		labels[i] = []int{i % 2}
	}
	g2, err := New(g.N, g.D, collectEdges(g), collectAttrs(g), labels)
	if err != nil {
		t.Fatal(err)
	}

	edgePath := filepath.Join(dir, "g.edges")
	attrPath := filepath.Join(dir, "g.attrs")
	labelPath := filepath.Join(dir, "g.labels")
	for _, w := range []struct {
		path  string
		write func(f io.Writer) error
	}{
		{edgePath, g2.WriteEdges},
		{attrPath, g2.WriteAttrs},
		{labelPath, g2.WriteLabels},
	} {
		f, err := os.Create(w.path)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.write(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}

	loaded, err := LoadFiles(edgePath, attrPath, labelPath)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.N != g2.N || loaded.D != g2.D {
		t.Fatalf("shape %dx%d, want %dx%d", loaded.N, loaded.D, g2.N, g2.D)
	}
	if !loaded.Adj.ToDense().Equal(g2.Adj.ToDense(), 0) {
		t.Fatal("adjacency mismatch after file round trip")
	}
	if !loaded.Attr.ToDense().Equal(g2.Attr.ToDense(), 0) {
		t.Fatal("attribute mismatch after file round trip")
	}
	for v, ls := range loaded.Labels {
		if len(ls) != 1 || ls[0] != v%2 {
			t.Fatalf("labels mismatch at node %d: %v", v, ls)
		}
	}
}

func TestLoadFilesMissing(t *testing.T) {
	if _, err := LoadFiles("/nonexistent/e", "/nonexistent/a", ""); err == nil {
		t.Fatal("missing files accepted")
	}
}

func TestLoadFilesNoLabels(t *testing.T) {
	dir := t.TempDir()
	g := RunningExample()
	edgePath := filepath.Join(dir, "g.edges")
	attrPath := filepath.Join(dir, "g.attrs")
	ef, _ := os.Create(edgePath)
	g.WriteEdges(ef)
	ef.Close()
	af, _ := os.Create(attrPath)
	g.WriteAttrs(af)
	af.Close()
	loaded, err := LoadFiles(edgePath, attrPath, "")
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Labels != nil {
		t.Fatal("labels should be nil when no label file given")
	}
}

func collectEdges(g *Graph) []Edge {
	var out []Edge
	for u := 0; u < g.N; u++ {
		for _, v := range g.OutNeighbors(u) {
			out = append(out, Edge{Src: u, Dst: int(v)})
		}
	}
	return out
}

func collectAttrs(g *Graph) []AttrEntry {
	var out []AttrEntry
	for v := 0; v < g.N; v++ {
		cols, vals := g.NodeAttrs(v)
		for k, c := range cols {
			out = append(out, AttrEntry{Node: v, Attr: int(c), Weight: vals[k]})
		}
	}
	return out
}
