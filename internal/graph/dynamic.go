package graph

import (
	"fmt"

	"pane/internal/sparse"
)

// This file supports the dynamic-update path (§7 of the paper, implemented
// in core/dynamic.go): a Graph is immutable, so an update produces a new
// Graph from the old one plus a delta. The node and attribute universes
// are fixed — embeddings are positional, so growing |V| or |R| requires a
// retrain, not an update.

// Edges returns every directed edge of g in row-major (src, then dst) order.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.M())
	for u := 0; u < g.N; u++ {
		cols, _ := g.Adj.Row(u)
		for _, v := range cols {
			out = append(out, Edge{Src: u, Dst: int(v)})
		}
	}
	return out
}

// AttrEntries returns every node-attribute association of g.
func (g *Graph) AttrEntries() []AttrEntry {
	out := make([]AttrEntry, 0, g.NNZAttr())
	for v := 0; v < g.N; v++ {
		cols, vals := g.Attr.Row(v)
		for k, c := range cols {
			out = append(out, AttrEntry{Node: v, Attr: int(c), Weight: vals[k]})
		}
	}
	return out
}

// WithUpdates returns a new Graph equal to g plus the given edge and
// attribute deltas. Duplicate edges collapse (adding an existing edge is a
// no-op); attribute weights are additive, matching New's semantics for the
// weighted set ER. Node and attribute counts are unchanged, so entries
// referencing ids outside [0,N) x [0,D) are rejected.
func (g *Graph) WithUpdates(edges []Edge, attrs []AttrEntry) (*Graph, error) {
	allEdges := append(g.Edges(), edges...)
	allAttrs := append(g.AttrEntries(), attrs...)
	return New(g.N, g.D, allEdges, allAttrs, g.Labels)
}

// FromCSR reconstructs a Graph directly from its adjacency and attribute
// matrices, bypassing the entry-list normalization of New — the CSRs are
// used as-is, so a Graph round-tripped through its matrices (e.g. via a
// store bundle) is bit-identical. The caller must not mutate adj or attr
// afterwards; rows must be sorted by column as NewCSR produces them.
func FromCSR(adj, attr *sparse.CSR, labels [][]int) (*Graph, error) {
	if adj.R != adj.C {
		return nil, fmt.Errorf("graph: adjacency must be square, got %dx%d", adj.R, adj.C)
	}
	if attr.R != adj.R {
		return nil, fmt.Errorf("graph: attribute rows %d != nodes %d", attr.R, adj.R)
	}
	if labels != nil && len(labels) != adj.R {
		return nil, fmt.Errorf("graph: labels length %d != n %d", len(labels), adj.R)
	}
	g := &Graph{
		N:      adj.R,
		D:      attr.C,
		Adj:    adj,
		AdjT:   adj.T(),
		Attr:   attr,
		Labels: labels,
	}
	g.outDeg = adj.RowSums()
	return g, nil
}
