package graph

import (
	"fmt"
	"sort"

	"pane/internal/sparse"
)

// This file supports the dynamic-update path (§7 of the paper, implemented
// in core/dynamic.go): a Graph is immutable, so an update produces a new
// Graph from the old one plus a delta. The node and attribute universes
// are fixed — embeddings are positional, so growing |V| or |R| requires a
// retrain, not an update.

// Edges returns every directed edge of g in row-major (src, then dst) order.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.M())
	for u := 0; u < g.N; u++ {
		cols, _ := g.Adj.Row(u)
		for _, v := range cols {
			out = append(out, Edge{Src: u, Dst: int(v)})
		}
	}
	return out
}

// AttrEntries returns every node-attribute association of g.
func (g *Graph) AttrEntries() []AttrEntry {
	out := make([]AttrEntry, 0, g.NNZAttr())
	for v := 0; v < g.N; v++ {
		cols, vals := g.Attr.Row(v)
		for k, c := range cols {
			out = append(out, AttrEntry{Node: v, Attr: int(c), Weight: vals[k]})
		}
	}
	return out
}

// WithUpdates returns a new Graph equal to g plus the given edge and
// attribute deltas. Duplicate edges collapse (adding an existing edge is a
// no-op); attribute weights are additive, matching New's semantics for the
// weighted set ER. Node and attribute counts are unchanged, so entries
// referencing ids outside [0,N) x [0,D) are rejected.
//
// The delta is folded into the parent's CSRs with an O(m) sorted-row
// merge instead of the entry-list rebuild New performs, and the parent's
// derived-matrix cache (Walk / NormalizedAttrs products), when it has been
// materialized, is carried over with only the dirty rows and columns
// recomputed — the two changes that keep the per-update graph cost
// proportional to the graph, not to re-deriving the dense seeds.
func (g *Graph) WithUpdates(edges []Edge, attrs []AttrEntry) (*Graph, error) {
	edgeEntries := make([]sparse.Entry, 0, len(edges))
	for _, e := range edges {
		if e.Src < 0 || e.Src >= g.N || e.Dst < 0 || e.Dst >= g.N {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range for %d nodes", e.Src, e.Dst, g.N)
		}
		edgeEntries = append(edgeEntries, sparse.Entry{Row: e.Src, Col: e.Dst, Val: 1})
	}
	attrEntries := make([]sparse.Entry, 0, len(attrs))
	nodeSet := map[int]bool{}
	attrSet := map[int]bool{}
	for _, a := range attrs {
		if a.Node < 0 || a.Node >= g.N || a.Attr < 0 || a.Attr >= g.D {
			return nil, fmt.Errorf("graph: attribute entry (%d,%d) out of range", a.Node, a.Attr)
		}
		if a.Weight < 0 {
			return nil, fmt.Errorf("graph: negative attribute weight %v at (%d,%d)", a.Weight, a.Node, a.Attr)
		}
		if a.Weight == 0 {
			continue
		}
		attrEntries = append(attrEntries, sparse.Entry{Row: a.Node, Col: a.Attr, Val: a.Weight})
		nodeSet[a.Node] = true
		attrSet[a.Attr] = true
	}
	adj := g.Adj
	if len(edgeEntries) > 0 {
		adj = g.Adj.MergeEntries(edgeEntries, func(old, add float64) float64 { return 1 })
	}
	attr := g.Attr
	if len(attrEntries) > 0 {
		attr = g.Attr.MergeEntries(attrEntries, func(old, add float64) float64 { return old + add })
	}
	ng := &Graph{N: g.N, D: g.D, Adj: adj, Attr: attr, Labels: g.Labels}
	if adj == g.Adj {
		ng.AdjT, ng.outDeg = g.AdjT, g.outDeg
	} else {
		ng.AdjT = adj.T()
		ng.outDeg = adj.RowSums()
	}
	g.prodMu.Lock()
	old := g.prod
	g.prodMu.Unlock()
	if old != nil {
		ng.prod = ng.patchDerived(old, sortedKeys(nodeSet), sortedKeys(attrSet))
	}
	return ng, nil
}

func sortedKeys(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// FromCSR reconstructs a Graph directly from its adjacency and attribute
// matrices, bypassing the entry-list normalization of New — the CSRs are
// used as-is, so a Graph round-tripped through its matrices (e.g. via a
// store bundle) is bit-identical. The caller must not mutate adj or attr
// afterwards; rows must be sorted by column as NewCSR produces them.
func FromCSR(adj, attr *sparse.CSR, labels [][]int) (*Graph, error) {
	if adj.R != adj.C {
		return nil, fmt.Errorf("graph: adjacency must be square, got %dx%d", adj.R, adj.C)
	}
	if attr.R != adj.R {
		return nil, fmt.Errorf("graph: attribute rows %d != nodes %d", attr.R, adj.R)
	}
	if labels != nil && len(labels) != adj.R {
		return nil, fmt.Errorf("graph: labels length %d != n %d", len(labels), adj.R)
	}
	g := &Graph{
		N:      adj.R,
		D:      attr.C,
		Adj:    adj,
		AdjT:   adj.T(),
		Attr:   attr,
		Labels: labels,
	}
	g.outDeg = adj.RowSums()
	return g, nil
}
