package sparse

import (
	"fmt"
	"sort"
)

// This file holds the delta primitives the dynamic-update path builds on:
// Reach computes the t-hop frontier a CSR delta can influence, and
// MergeEntries folds a small entry delta into an existing CSR in O(nnz)
// without the map-dedup + per-row sort of a full NewCSR rebuild.

// Reach returns, sorted ascending, every row reachable from seeds in at
// most steps hops along m's rows (row j's neighbors are its stored column
// indices). steps < 0 is treated as 0; seeds themselves are always
// included (dedup'd). Out-of-range seeds cause a panic.
//
// The intended use is frontier computation for incremental APMI: a change
// to rows S of the recurrence input can, after ℓ iterations, influence
// exactly the rows whose ℓ-hop neighborhood (along the dependency
// direction) meets S — so callers pass the dependency graph (AdjT for the
// forward recurrence, Adj for the backward one) and steps = remaining
// iterations.
func Reach(m *CSR, seeds []int, steps int) []int {
	visited := make([]bool, m.R)
	cur := make([]int, 0, len(seeds))
	for _, s := range seeds {
		if s < 0 || s >= m.R {
			panic(fmt.Sprintf("sparse: Reach seed %d out of range [0,%d)", s, m.R))
		}
		if !visited[s] {
			visited[s] = true
			cur = append(cur, s)
		}
	}
	for step := 0; step < steps && len(cur) > 0; step++ {
		var next []int
		for _, j := range cur {
			cols, _ := m.Row(j)
			for _, c := range cols {
				if !visited[c] {
					visited[c] = true
					next = append(next, int(c))
				}
			}
		}
		cur = next
	}
	out := make([]int, 0, len(seeds))
	for i, v := range visited {
		if v {
			out = append(out, i)
		}
	}
	return out
}

// MergeEntries returns a new CSR equal to m with entries folded in. For
// each entry (r, c, v): when (r, c) is already stored with value old, the
// stored value becomes combine(old, v); otherwise the entry is inserted
// with value combine(0, v). Duplicates within entries apply combine
// successively in (row, col)-sorted order. Rows without entries are copied
// verbatim, so the merge costs O(nnz + |entries| log |entries|) with no
// per-row re-sort. With no entries, m itself is returned (CSRs are
// immutable by convention). Out-of-range entries cause a panic, matching
// NewCSR.
func (m *CSR) MergeEntries(entries []Entry, combine func(old, add float64) float64) *CSR {
	if len(entries) == 0 {
		return m
	}
	add := make([]Entry, len(entries))
	copy(add, entries)
	for _, e := range add {
		if e.Row < 0 || e.Row >= m.R || e.Col < 0 || e.Col >= m.C {
			panic(fmt.Sprintf("sparse: entry (%d,%d) out of range for %dx%d", e.Row, e.Col, m.R, m.C))
		}
	}
	sort.Slice(add, func(i, j int) bool {
		if add[i].Row != add[j].Row {
			return add[i].Row < add[j].Row
		}
		return add[i].Col < add[j].Col
	})
	rowPtr := make([]int, m.R+1)
	cols := make([]int32, 0, m.NNZ()+len(add))
	vals := make([]float64, 0, m.NNZ()+len(add))
	a := 0
	for i := 0; i < m.R; i++ {
		rowPtr[i] = len(cols)
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		if a >= len(add) || add[a].Row != i {
			cols = append(cols, m.Cols[lo:hi]...)
			vals = append(vals, m.Vals[lo:hi]...)
			continue
		}
		k := lo
		for k < hi || (a < len(add) && add[a].Row == i) {
			adding := a < len(add) && add[a].Row == i
			switch {
			case !adding || (k < hi && int(m.Cols[k]) < add[a].Col):
				cols = append(cols, m.Cols[k])
				vals = append(vals, m.Vals[k])
				k++
			case k < hi && int(m.Cols[k]) == add[a].Col:
				v := m.Vals[k]
				for a < len(add) && add[a].Row == i && add[a].Col == int(m.Cols[k]) {
					v = combine(v, add[a].Val)
					a++
				}
				cols = append(cols, m.Cols[k])
				vals = append(vals, v)
				k++
			default:
				c := add[a].Col
				var v float64
				first := true
				for a < len(add) && add[a].Row == i && add[a].Col == c {
					if first {
						v = combine(0, add[a].Val)
						first = false
					} else {
						v = combine(v, add[a].Val)
					}
					a++
				}
				cols = append(cols, int32(c))
				vals = append(vals, v)
			}
		}
	}
	rowPtr[m.R] = len(cols)
	return &CSR{R: m.R, C: m.C, RowPtr: rowPtr, Cols: cols, Vals: vals}
}
