package sparse

import (
	"math/rand"
	"testing"

	"pane/internal/mat"
)

// syntheticCSR builds an n x n random-walk-like matrix with avg nnz per
// row entries.
func syntheticCSR(n, perRow int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	entries := make([]Entry, 0, n*perRow)
	for i := 0; i < n; i++ {
		for e := 0; e < perRow; e++ {
			entries = append(entries, Entry{i, rng.Intn(n), 1.0 / float64(perRow)})
		}
	}
	return NewCSR(n, n, entries)
}

func BenchmarkSpMMSerial(b *testing.B) {
	m := syntheticCSR(20000, 10, 1)
	x := mat.New(20000, 64)
	for i := range x.Data {
		x.Data[i] = 1
	}
	dst := mat.New(20000, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulDenseInto(dst, x)
	}
	b.SetBytes(int64(m.NNZ() * 64 * 8))
}

func BenchmarkSpMMFusedAxpy(b *testing.B) {
	m := syntheticCSR(20000, 10, 2)
	x := mat.New(20000, 64)
	y := mat.New(20000, 64)
	dst := mat.New(20000, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.AxpyInto(dst, 0.5, x, 0.5, y, 1)
	}
}

func BenchmarkTranspose(b *testing.B) {
	m := syntheticCSR(20000, 10, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.T()
	}
}

func BenchmarkBuildCSR(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	entries := make([]Entry, 200000)
	for i := range entries {
		entries[i] = Entry{rng.Intn(20000), rng.Intn(20000), 1}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewCSR(20000, 20000, entries)
	}
}
