// Package sparse implements compressed sparse row (CSR) matrices and the
// parallel sparse-dense multiplication kernels at the heart of PANE's
// APMI/PAPMI phase. The Go ecosystem has no production sparse linear
// algebra in the standard library, so these kernels are hand-rolled.
//
// A CSR matrix stores, for each row, a contiguous run of (column, value)
// pairs. The two products PANE needs are
//
//	P · X   (random-walk push along out-edges)
//	Pᵀ · X  (pull along in-edges)
//
// Both are provided; Pᵀ·X is computed from a CSR of the transpose built
// once up front, so that both directions stream memory with unit stride.
package sparse

import (
	"fmt"
	"sort"

	"pane/internal/mat"
)

// CSR is an immutable sparse matrix in compressed sparse row format.
// Row i's entries are Cols[RowPtr[i]:RowPtr[i+1]] and the matching
// Vals[RowPtr[i]:RowPtr[i+1]], sorted by column index.
type CSR struct {
	R, C   int
	RowPtr []int
	Cols   []int32
	Vals   []float64
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Cols) }

// RowNNZ returns the number of stored entries in row i.
func (m *CSR) RowNNZ(i int) int { return m.RowPtr[i+1] - m.RowPtr[i] }

// Row returns the column indices and values of row i as shared slices.
func (m *CSR) Row(i int) ([]int32, []float64) {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	return m.Cols[lo:hi], m.Vals[lo:hi]
}

// At returns the value at (i, j), zero when the entry is not stored.
// It binary-searches row i, so it costs O(log nnz(row)); use Row for scans.
func (m *CSR) At(i, j int) float64 {
	cols, vals := m.Row(i)
	k := sort.Search(len(cols), func(k int) bool { return cols[k] >= int32(j) })
	if k < len(cols) && cols[k] == int32(j) {
		return vals[k]
	}
	return 0
}

// Entry is one (row, col, value) triple used when building a CSR.
type Entry struct {
	Row, Col int
	Val      float64
}

// NewCSR builds an r x c CSR from entries. Duplicate (row, col) pairs are
// summed. Entries with out-of-range coordinates cause a panic; zero-valued
// entries are kept (callers that want them dropped should filter first) so
// that explicitly stored structural zeros survive round trips.
func NewCSR(r, c int, entries []Entry) *CSR {
	counts := make([]int, r+1)
	for _, e := range entries {
		if e.Row < 0 || e.Row >= r || e.Col < 0 || e.Col >= c {
			panic(fmt.Sprintf("sparse: entry (%d,%d) out of range for %dx%d", e.Row, e.Col, r, c))
		}
		counts[e.Row+1]++
	}
	for i := 0; i < r; i++ {
		counts[i+1] += counts[i]
	}
	rowPtr := counts
	cols := make([]int32, len(entries))
	vals := make([]float64, len(entries))
	next := make([]int, r)
	for i := range next {
		next[i] = rowPtr[i]
	}
	for _, e := range entries {
		p := next[e.Row]
		cols[p] = int32(e.Col)
		vals[p] = e.Val
		next[e.Row]++
	}
	m := &CSR{R: r, C: c, RowPtr: rowPtr, Cols: cols, Vals: vals}
	m.sortRowsAndMergeDuplicates()
	return m
}

// sortRowsAndMergeDuplicates sorts each row by column and sums duplicates,
// compacting the storage in place.
func (m *CSR) sortRowsAndMergeDuplicates() {
	outPtr := make([]int, m.R+1)
	w := 0
	for i := 0; i < m.R; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		row := rowSorter{cols: m.Cols[lo:hi], vals: m.Vals[lo:hi]}
		sort.Sort(row)
		outPtr[i] = w
		for k := lo; k < hi; {
			col := m.Cols[k]
			sum := m.Vals[k]
			k++
			for k < hi && m.Cols[k] == col {
				sum += m.Vals[k]
				k++
			}
			m.Cols[w] = col
			m.Vals[w] = sum
			w++
		}
	}
	outPtr[m.R] = w
	m.RowPtr = outPtr
	m.Cols = m.Cols[:w]
	m.Vals = m.Vals[:w]
}

type rowSorter struct {
	cols []int32
	vals []float64
}

func (s rowSorter) Len() int           { return len(s.cols) }
func (s rowSorter) Less(i, j int) bool { return s.cols[i] < s.cols[j] }
func (s rowSorter) Swap(i, j int) {
	s.cols[i], s.cols[j] = s.cols[j], s.cols[i]
	s.vals[i], s.vals[j] = s.vals[j], s.vals[i]
}

// T returns the transpose as a new CSR, using a counting pass so the
// result's rows come out already column-sorted.
func (m *CSR) T() *CSR {
	counts := make([]int, m.C+1)
	for _, c := range m.Cols {
		counts[c+1]++
	}
	for i := 0; i < m.C; i++ {
		counts[i+1] += counts[i]
	}
	rowPtr := make([]int, m.C+1)
	copy(rowPtr, counts)
	cols := make([]int32, len(m.Cols))
	vals := make([]float64, len(m.Vals))
	for i := 0; i < m.R; i++ {
		cs, vs := m.Row(i)
		for k, c := range cs {
			p := counts[c]
			cols[p] = int32(i)
			vals[p] = vs[k]
			counts[c]++
		}
	}
	return &CSR{R: m.C, C: m.R, RowPtr: rowPtr, Cols: cols, Vals: vals}
}

// ToDense materializes m as a dense matrix. Intended for tests and small
// examples only.
func (m *CSR) ToDense() *mat.Dense {
	out := mat.New(m.R, m.C)
	for i := 0; i < m.R; i++ {
		cols, vals := m.Row(i)
		row := out.Row(i)
		for k, c := range cols {
			row[c] += vals[k]
		}
	}
	return out
}

// ScaleRows multiplies row i by s[i] in place. Used to turn an adjacency
// matrix into the random-walk matrix P = D⁻¹A.
func (m *CSR) ScaleRows(s []float64) {
	if len(s) != m.R {
		panic("sparse: ScaleRows length mismatch")
	}
	for i := 0; i < m.R; i++ {
		f := s[i]
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			m.Vals[k] *= f
		}
	}
}

// RowSums returns the per-row sum of stored values.
func (m *CSR) RowSums() []float64 {
	sums := make([]float64, m.R)
	for i := 0; i < m.R; i++ {
		_, vals := m.Row(i)
		var s float64
		for _, v := range vals {
			s += v
		}
		sums[i] = s
	}
	return sums
}

// ColSums returns the per-column sum of stored values.
func (m *CSR) ColSums() []float64 {
	sums := make([]float64, m.C)
	for k, c := range m.Cols {
		sums[c] += m.Vals[k]
	}
	return sums
}

// Clone returns a deep copy of m.
func (m *CSR) Clone() *CSR {
	out := &CSR{
		R: m.R, C: m.C,
		RowPtr: append([]int(nil), m.RowPtr...),
		Cols:   append([]int32(nil), m.Cols...),
		Vals:   append([]float64(nil), m.Vals...),
	}
	return out
}
