package sparse

import (
	"math/rand"
	"sort"
	"testing"
)

// naiveReach is the reference BFS: repeated one-hop expansion over the
// dense neighbor sets.
func naiveReach(m *CSR, seeds []int, steps int) []int {
	in := make(map[int]bool)
	for _, s := range seeds {
		in[s] = true
	}
	for step := 0; step < steps; step++ {
		next := make(map[int]bool, len(in))
		for v := range in {
			next[v] = true
			cols, _ := m.Row(v)
			for _, c := range cols {
				next[int(c)] = true
			}
		}
		in = next
	}
	out := make([]int, 0, len(in))
	for v := range in {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

func TestReachMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.Intn(40)
		m := randomCSR(rng, n, n, 0.1)
		nSeeds := 1 + rng.Intn(4)
		seeds := make([]int, nSeeds)
		for i := range seeds {
			seeds[i] = rng.Intn(n)
		}
		steps := rng.Intn(4)
		got := Reach(m, seeds, steps)
		want := naiveReach(m, seeds, steps)
		if len(got) != len(want) {
			t.Fatalf("trial %d: Reach size %d, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: Reach[%d] = %d, want %d", trial, i, got[i], want[i])
			}
		}
	}
}

func TestReachSortedAndDedup(t *testing.T) {
	m := NewCSR(4, 4, []Entry{{0, 1, 1}, {1, 2, 1}, {2, 0, 1}})
	got := Reach(m, []int{2, 0, 2}, 1)
	want := []int{0, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("Reach = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Reach = %v, want %v", got, want)
		}
	}
}

func TestReachZeroSteps(t *testing.T) {
	m := NewCSR(3, 3, []Entry{{0, 1, 1}, {1, 2, 1}})
	got := Reach(m, []int{1}, 0)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("Reach with 0 steps = %v, want [1]", got)
	}
}

func TestReachSeedOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range seed")
		}
	}()
	m := NewCSR(3, 3, nil)
	Reach(m, []int{3}, 1)
}

// csrEqual reports whether two CSRs have identical structure and values.
func csrEqual(a, b *CSR) bool {
	if a.R != b.R || a.C != b.C || a.NNZ() != b.NNZ() {
		return false
	}
	for i := range a.RowPtr {
		if a.RowPtr[i] != b.RowPtr[i] {
			return false
		}
	}
	for k := range a.Cols {
		if a.Cols[k] != b.Cols[k] || a.Vals[k] != b.Vals[k] {
			return false
		}
	}
	return true
}

func TestMergeEntriesSumMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sum := func(old, add float64) float64 { return old + add }
	for trial := 0; trial < 30; trial++ {
		r, c := 4+rng.Intn(20), 4+rng.Intn(20)
		// Quarter-integer weights make float addition exact, so the merged
		// result is bit-identical to a rebuild no matter the addition order.
		var base []Entry
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				if rng.Float64() < 0.15 {
					base = append(base, Entry{i, j, float64(1+rng.Intn(16)) * 0.25})
				}
			}
		}
		m := NewCSR(r, c, base)
		var add []Entry
		for k := 0; k < rng.Intn(12); k++ {
			add = append(add, Entry{rng.Intn(r), rng.Intn(c), float64(1+rng.Intn(16)) * 0.25})
		}
		got := m.MergeEntries(add, sum)
		want := NewCSR(r, c, append(append([]Entry(nil), base...), add...))
		if !csrEqual(got, want) {
			t.Fatalf("trial %d: MergeEntries(sum) differs from rebuild", trial)
		}
	}
}

func TestMergeEntriesKeepOne(t *testing.T) {
	one := func(old, add float64) float64 { return 1 }
	m := NewCSR(3, 3, []Entry{{0, 1, 1}, {2, 2, 1}})
	got := m.MergeEntries([]Entry{{0, 1, 1}, {0, 2, 1}, {0, 2, 1}, {1, 0, 1}}, one)
	want := NewCSR(3, 3, []Entry{{0, 1, 1}, {0, 2, 1}, {1, 0, 1}, {2, 2, 1}})
	// The keep-one combine collapses duplicates to weight 1, the adjacency
	// semantics of graph.New.
	want.Vals[0], want.Vals[1], want.Vals[2], want.Vals[3] = 1, 1, 1, 1
	if !csrEqual(got, want) {
		t.Fatalf("MergeEntries(keep-one) = %+v, want %+v", got, want)
	}
}

func TestMergeEntriesEmptyReturnsReceiver(t *testing.T) {
	m := NewCSR(2, 2, []Entry{{0, 0, 1}})
	if m.MergeEntries(nil, func(o, a float64) float64 { return o + a }) != m {
		t.Fatal("empty merge should return the receiver")
	}
}

func TestMergeEntriesOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range entry")
		}
	}()
	m := NewCSR(2, 2, nil)
	m.MergeEntries([]Entry{{2, 0, 1}}, func(o, a float64) float64 { return o + a })
}
