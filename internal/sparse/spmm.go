package sparse

import (
	"fmt"

	"pane/internal/mat"
)

// MulDense returns m * x for a dense right-hand side, serially.
// m is R x C, x is C x k, the result is R x k.
func (m *CSR) MulDense(x *mat.Dense) *mat.Dense {
	out := mat.New(m.R, x.Cols)
	m.MulDenseInto(out, x)
	return out
}

// MulDenseInto computes dst = m * x, overwriting dst. dst must be R x k
// and must not alias x.
func (m *CSR) MulDenseInto(dst, x *mat.Dense) {
	if m.C != x.Rows {
		panic(fmt.Sprintf("sparse: MulDense dimension mismatch %dx%d * %dx%d", m.R, m.C, x.Rows, x.Cols))
	}
	if dst.Rows != m.R || dst.Cols != x.Cols {
		panic("sparse: MulDenseInto dst shape mismatch")
	}
	spmmRows(dst, m, x, 0, m.R)
}

// spmmRows computes rows [lo,hi) of dst = m*x. Each output row is a sparse
// combination of rows of x; the inner loop streams x's rows with unit
// stride, the access pattern that makes CSR·dense fast.
func spmmRows(dst *mat.Dense, m *CSR, x *mat.Dense, lo, hi int) {
	k := x.Cols
	for i := lo; i < hi; i++ {
		di := dst.Data[i*k : (i+1)*k]
		for p := range di {
			di[p] = 0
		}
		cols, vals := m.Row(i)
		for t, c := range cols {
			v := vals[t]
			xr := x.Data[int(c)*k : (int(c)+1)*k]
			for p, xv := range xr {
				di[p] += v * xv
			}
		}
	}
}

// ParMulDense returns m * x computed with nb workers partitioning the rows
// of m. Results are bit-identical to MulDense because each output row is
// written by exactly one worker.
func (m *CSR) ParMulDense(x *mat.Dense, nb int) *mat.Dense {
	out := mat.New(m.R, x.Cols)
	m.ParMulDenseInto(out, x, nb)
	return out
}

// ParMulDenseInto computes dst = m * x with nb workers. See ParMulDense.
func (m *CSR) ParMulDenseInto(dst, x *mat.Dense, nb int) {
	if m.C != x.Rows {
		panic(fmt.Sprintf("sparse: ParMulDense dimension mismatch %dx%d * %dx%d", m.R, m.C, x.Rows, x.Cols))
	}
	if dst.Rows != m.R || dst.Cols != x.Cols {
		panic("sparse: ParMulDenseInto dst shape mismatch")
	}
	if nb <= 1 {
		spmmRows(dst, m, x, 0, m.R)
		return
	}
	mat.ParallelRanges(m.R, nb, func(lo, hi int) {
		spmmRows(dst, m, x, lo, hi)
	})
}

// AxpyInto computes dst = a*(m*x) + b*y, fusing the SpMM with the affine
// combination that APMI's recurrence needs:
//
//	P(ℓ) = (1−α)·P·P(ℓ−1) + α·P(0)
//
// dst must not alias x; dst may alias y only if they are the same matrix.
func (m *CSR) AxpyInto(dst *mat.Dense, a float64, x *mat.Dense, b float64, y *mat.Dense, nb int) {
	if m.C != x.Rows || y.Rows != m.R || y.Cols != x.Cols {
		panic("sparse: AxpyInto shape mismatch")
	}
	if dst.Rows != m.R || dst.Cols != x.Cols {
		panic("sparse: AxpyInto dst shape mismatch")
	}
	k := x.Cols
	work := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			di := dst.Data[i*k : (i+1)*k]
			yi := y.Data[i*k : (i+1)*k]
			m.AxpyRowInto(di, i, a, x, b, yi)
		}
	}
	if nb <= 1 {
		work(0, m.R)
		return
	}
	mat.ParallelRanges(m.R, nb, work)
}

// AxpyRowInto computes one row of AxpyInto: dst = a*(m[i,:]·x) + b*y,
// where y is row i of the additive term and dst a length-x.Cols slice.
// dst may alias y. The incremental-APMI frontier patch re-runs single rows
// of the recurrence through this exact kernel, which is what guarantees a
// patched row is bit-identical to the same row of a full AxpyInto pass.
func (m *CSR) AxpyRowInto(dst []float64, i int, a float64, x *mat.Dense, b float64, y []float64) {
	// Accumulate the sparse product in a stack-friendly pass, combining
	// with y first so dst==y aliasing stays safe.
	for p := range dst {
		dst[p] = b * y[p]
	}
	cols, vals := m.Row(i)
	for t, c := range cols {
		v := a * vals[t]
		xr := x.Data[int(c)*x.Cols : (int(c)+1)*x.Cols]
		for p, xv := range xr {
			dst[p] += v * xv
		}
	}
}

// MulDenseCols multiplies m by the column block x[:, lo:hi) of a dense
// matrix and returns the R x (hi-lo) result. This is the unit of work
// PAPMI assigns to each thread (Algorithm 6 partitions by attribute
// columns).
func (m *CSR) MulDenseCols(x *mat.Dense, lo, hi int) *mat.Dense {
	blk := x.ColSlice(lo, hi)
	return m.MulDense(blk)
}
