package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pane/internal/mat"
)

func randomCSR(rng *rand.Rand, r, c int, density float64) *CSR {
	var entries []Entry
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if rng.Float64() < density {
				entries = append(entries, Entry{i, j, rng.NormFloat64()})
			}
		}
	}
	return NewCSR(r, c, entries)
}

func randomDense(rng *rand.Rand, r, c int) *mat.Dense {
	m := mat.New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestNewCSRBasic(t *testing.T) {
	m := NewCSR(3, 4, []Entry{{0, 1, 2}, {2, 3, 5}, {0, 0, 1}})
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", m.NNZ())
	}
	if m.At(0, 1) != 2 || m.At(2, 3) != 5 || m.At(0, 0) != 1 {
		t.Fatal("wrong stored values")
	}
	if m.At(1, 1) != 0 {
		t.Fatal("missing entry should read 0")
	}
}

func TestNewCSRDuplicatesSummed(t *testing.T) {
	m := NewCSR(2, 2, []Entry{{0, 0, 1}, {0, 0, 2.5}, {1, 1, -1}, {1, 1, 1}})
	if m.At(0, 0) != 3.5 {
		t.Fatalf("duplicate sum = %v, want 3.5", m.At(0, 0))
	}
	if m.At(1, 1) != 0 {
		t.Fatalf("duplicate cancel = %v, want 0", m.At(1, 1))
	}
	if m.NNZ() != 2 {
		t.Fatalf("NNZ after merge = %d, want 2", m.NNZ())
	}
}

func TestNewCSRRowsSorted(t *testing.T) {
	m := NewCSR(1, 5, []Entry{{0, 4, 1}, {0, 0, 2}, {0, 2, 3}})
	cols, _ := m.Row(0)
	for k := 1; k < len(cols); k++ {
		if cols[k-1] >= cols[k] {
			t.Fatalf("row not sorted: %v", cols)
		}
	}
}

func TestNewCSROutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCSR(2, 2, []Entry{{2, 0, 1}})
}

func TestTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := randomCSR(rng, 13, 9, 0.3)
	mt := m.T()
	if mt.R != 9 || mt.C != 13 {
		t.Fatalf("transpose shape %dx%d", mt.R, mt.C)
	}
	d := m.ToDense()
	dt := mt.ToDense()
	if !dt.Equal(d.T(), 0) {
		t.Fatal("CSR transpose differs from dense transpose")
	}
	if !mt.T().ToDense().Equal(d, 0) {
		t.Fatal("double transpose not identity")
	}
}

func TestMulDenseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := randomCSR(rng, 17, 23, 0.2)
	x := randomDense(rng, 23, 6)
	got := m.MulDense(x)
	want := mat.Mul(m.ToDense(), x)
	if got.MaxAbsDiff(want) > 1e-12 {
		t.Fatal("sparse MulDense differs from dense multiply")
	}
}

func TestParMulDenseMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := randomCSR(rng, 41, 31, 0.15)
	x := randomDense(rng, 31, 5)
	want := m.MulDense(x)
	for _, nb := range []int{1, 2, 3, 8, 64} {
		got := m.ParMulDense(x, nb)
		if !got.Equal(want, 0) {
			t.Fatalf("nb=%d: parallel result differs", nb)
		}
	}
}

func TestAxpyInto(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m := randomCSR(rng, 11, 11, 0.3)
	x := randomDense(rng, 11, 4)
	y := randomDense(rng, 11, 4)
	a, b := 0.85, 0.15
	want := m.MulDense(x)
	want.Scale(a)
	want.AddScaled(b, y)
	for _, nb := range []int{1, 3} {
		dst := mat.New(11, 4)
		m.AxpyInto(dst, a, x, b, y, nb)
		if dst.MaxAbsDiff(want) > 1e-12 {
			t.Fatalf("nb=%d: AxpyInto differs", nb)
		}
	}
}

func TestAxpyIntoAliasedY(t *testing.T) {
	// dst == y aliasing must be safe: this is how APMI would update in
	// place if it chose to.
	rng := rand.New(rand.NewSource(11))
	m := randomCSR(rng, 9, 9, 0.4)
	x := randomDense(rng, 9, 3)
	y := randomDense(rng, 9, 3)
	want := m.MulDense(x)
	want.Scale(0.5)
	want.AddScaled(0.5, y)
	m.AxpyInto(y, 0.5, x, 0.5, y, 1)
	if y.MaxAbsDiff(want) > 1e-12 {
		t.Fatal("aliased AxpyInto differs")
	}
}

func TestScaleRowsAndSums(t *testing.T) {
	m := NewCSR(2, 3, []Entry{{0, 0, 2}, {0, 2, 4}, {1, 1, 3}})
	rs := m.RowSums()
	if rs[0] != 6 || rs[1] != 3 {
		t.Fatalf("RowSums = %v", rs)
	}
	cs := m.ColSums()
	if cs[0] != 2 || cs[1] != 3 || cs[2] != 4 {
		t.Fatalf("ColSums = %v", cs)
	}
	m.ScaleRows([]float64{0.5, 2})
	if m.At(0, 2) != 2 || m.At(1, 1) != 6 {
		t.Fatal("ScaleRows wrong")
	}
}

func TestMulDenseColsMatchesSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m := randomCSR(rng, 10, 14, 0.25)
	x := randomDense(rng, 14, 8)
	full := m.MulDense(x)
	blk := m.MulDenseCols(x, 2, 6)
	want := full.ColSlice(2, 6)
	if blk.MaxAbsDiff(want) > 1e-12 {
		t.Fatal("MulDenseCols differs from sliced full product")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewCSR(1, 2, []Entry{{0, 0, 1}})
	c := m.Clone()
	c.Vals[0] = 99
	if m.Vals[0] != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestPropertyTransposeMulAgree(t *testing.T) {
	// Property: (Mᵀ x) computed via transpose CSR equals dense (Mᵀ)x.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 2 + rng.Intn(12)
		c := 2 + rng.Intn(12)
		m := randomCSR(rng, r, c, 0.3)
		x := randomDense(rng, r, 1+rng.Intn(4))
		got := m.T().MulDense(x)
		want := mat.Mul(m.ToDense().T(), x)
		return got.MaxAbsDiff(want) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyRowStochasticPreservesMass(t *testing.T) {
	// A row-stochastic sparse matrix applied to a column of ones yields
	// ones for rows with outgoing mass — the random-walk invariant APMI
	// relies on.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(15)
		m := randomCSR(rng, n, n, 0.4)
		for k := range m.Vals {
			if m.Vals[k] < 0 {
				m.Vals[k] = -m.Vals[k]
			}
		}
		sums := m.RowSums()
		inv := make([]float64, n)
		for i, s := range sums {
			if s > 0 {
				inv[i] = 1 / s
			}
		}
		m.ScaleRows(inv)
		ones := mat.New(n, 1)
		for i := range ones.Data {
			ones.Data[i] = 1
		}
		out := m.MulDense(ones)
		for i := 0; i < n; i++ {
			if sums[i] > 0 {
				if d := out.At(i, 0) - 1; d > 1e-9 || d < -1e-9 {
					return false
				}
			} else if out.At(i, 0) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
