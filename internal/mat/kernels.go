package mat

// Instruction-set names reported by KernelISAs (and by the analogous
// introspection hooks in internal/index). They feed the
// pane_kernel_dispatch gauge and the /healthz kernels section, so a
// misdeployed binary silently running generic kernels is visible.
const (
	ISAGeneric = "generic"
	ISAAVX2    = "avx2"
	ISANEON    = "neon"
)

// KernelISAs reports, per float64 kernel op, which instruction set this
// build dispatches to on this host. All three ops share one dispatch
// decision (the AVX2 feature check), but they are reported separately so
// the observability surface does not bake that implementation detail in.
func KernelISAs() map[string]string {
	isa := kernelISA()
	return map[string]string{
		"dot":  isa,
		"axpy": isa,
		"gemm": isa,
	}
}
