package mat

import (
	"math"
	"math/rand"
	"testing"
)

// fillKernelVec fills dst with a NaN-free mix of ordinary values and
// edge cases: large magnitudes, subnormals, exact zeros of both signs,
// and sign flips — the inputs most likely to expose an accumulation-order
// or rounding difference between kernel twins.
func fillKernelVec(rng *rand.Rand, dst []float64) {
	for i := range dst {
		switch rng.Intn(10) {
		case 0:
			dst[i] = 0
		case 1:
			dst[i] = math.Copysign(0, -1)
		case 2:
			dst[i] = math.Ldexp(1+rng.Float64(), 900) * sign(rng)
		case 3:
			dst[i] = math.Ldexp(rng.Float64(), -1060) * sign(rng) // subnormal territory after multiply
		case 4:
			dst[i] = math.SmallestNonzeroFloat64 * float64(1+rng.Intn(16)) * sign(rng)
		default:
			dst[i] = (rng.Float64()*2 - 1) * math.Ldexp(1, rng.Intn(40)-20)
		}
	}
}

func sign(rng *rand.Rand) float64 {
	if rng.Intn(2) == 0 {
		return -1
	}
	return 1
}

// TestDotMatchesGenericExhaustive drives the dispatched Dot against
// DotGeneric over every length 0..129 at every slice offset 0..3 (so the
// assembly sees every alignment of both operands) and demands bitwise
// equality. On noasm or non-AVX2 builds both sides run the generic
// kernel and the test pins the dispatch wrapper's tail handling.
func TestDotMatchesGenericExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	const maxN, maxOff = 129, 4
	backA := make([]float64, maxN+maxOff)
	backB := make([]float64, maxN+maxOff)
	for n := 0; n <= maxN; n++ {
		for offA := 0; offA < maxOff; offA++ {
			for offB := 0; offB < maxOff; offB++ {
				fillKernelVec(rng, backA)
				fillKernelVec(rng, backB)
				a := backA[offA : offA+n]
				b := backB[offB : offB+n]
				got := Dot(a, b)
				want := DotGeneric(a, b)
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("Dot(n=%d, offA=%d, offB=%d) = %x, generic %x", n, offA, offB, math.Float64bits(got), math.Float64bits(want))
				}
			}
		}
	}
}

// TestAxpyMatchesGenericExhaustive is the same sweep for AxpyVec.
func TestAxpyMatchesGenericExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const maxN, maxOff = 129, 4
	backX := make([]float64, maxN+maxOff)
	backY := make([]float64, maxN+maxOff)
	for n := 0; n <= maxN; n++ {
		for off := 0; off < maxOff; off++ {
			fillKernelVec(rng, backX)
			fillKernelVec(rng, backY)
			alpha := (rng.Float64()*2 - 1) * math.Ldexp(1, rng.Intn(20)-10)
			x := backX[off : off+n]
			got := append([]float64(nil), backY[:n]...)
			want := append([]float64(nil), backY[:n]...)
			AxpyVec(alpha, x, got)
			AxpyGeneric(want, alpha, x)
			for i := range got {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("AxpyVec(n=%d, off=%d)[%d] = %x, generic %x", n, off, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
				}
			}
		}
	}
}

// TestMulIntoMatchesGenericExhaustive sweeps the GEMM panel kernel over
// every (k, n) shape 0..17 plus a few larger shapes that exercise the
// 4-row panels together with 4-wide column blocks and both remainders.
func TestMulIntoMatchesGenericExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	shapes := make([][3]int, 0, 19*19+4)
	for k := 0; k <= 18; k++ {
		for n := 0; n <= 18; n++ {
			shapes = append(shapes, [3]int{3, k, n})
		}
	}
	shapes = append(shapes, [3]int{7, 33, 129}, [3]int{1, 64, 64}, [3]int{5, 129, 33}, [3]int{2, 4, 1})
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a, b := New(m, k), New(k, n)
		fillKernelVec(rng, a.Data)
		fillKernelVec(rng, b.Data)
		got, want := New(m, n), New(m, n)
		MulInto(got, a, b)
		MulIntoGeneric(want, a, b)
		for i := range got.Data {
			if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
				t.Fatalf("MulInto(%dx%d * %dx%d) elem %d = %x, generic %x", m, k, k, n, i, math.Float64bits(got.Data[i]), math.Float64bits(want.Data[i]))
			}
		}
		// MulRowInto must agree row-for-row with the full product.
		row := make([]float64, n)
		for i := 0; i < m; i++ {
			MulRowInto(row, a, i, b)
			for j, v := range row {
				if math.Float64bits(v) != math.Float64bits(want.Data[i*n+j]) {
					t.Fatalf("MulRowInto row %d col %d = %x, full product %x", i, j, math.Float64bits(v), math.Float64bits(want.Data[i*n+j]))
				}
			}
		}
	}
}

// TestDotPanicMessages pins the length-mismatch diagnostics, which now
// include both lengths like the rest of the package.
func TestDotPanicMessages(t *testing.T) {
	for _, tc := range []struct {
		name string
		fn   func()
		want string
	}{
		{"dot", func() { Dot(make([]float64, 3), make([]float64, 5)) }, "mat: Dot length mismatch 3 vs 5"},
		{"axpy", func() { AxpyVec(2, make([]float64, 4), make([]float64, 2)) }, "mat: AxpyVec length mismatch 4 vs 2"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				r := recover()
				if r != tc.want {
					t.Fatalf("panic = %v, want %q", r, tc.want)
				}
			}()
			tc.fn()
		})
	}
}

// TestKernelISAs sanity-checks the introspection hook: every op is
// reported, and the value is one of the known ISA names.
func TestKernelISAs(t *testing.T) {
	isas := KernelISAs()
	for _, op := range []string{"dot", "axpy", "gemm"} {
		isa, ok := isas[op]
		if !ok {
			t.Fatalf("KernelISAs missing op %q", op)
		}
		if isa != ISAGeneric && isa != ISAAVX2 && isa != ISANEON {
			t.Fatalf("KernelISAs[%q] = %q, not a known ISA", op, isa)
		}
	}
}
