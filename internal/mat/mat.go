// Package mat provides dense row-major float64 matrices and the parallel
// kernels PANE needs: blocked matrix multiplication, transposition,
// row/column normalization, and elementwise transforms.
//
// The package is deliberately small and allocation-conscious: the hot
// paths of PANE (APMI iterations, CCD residual maintenance, randomized
// SVD) all reduce to the operations defined here and in package sparse.
// Everything is stdlib-only.
package mat

import (
	"fmt"
	"math"
)

// Dense is a row-major matrix of float64 values. The zero value is an
// empty 0x0 matrix. Data is stored in a single backing slice of length
// Rows*Cols; row i occupies Data[i*Cols : (i+1)*Cols].
type Dense struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zeroed r x c matrix.
func New(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimensions %dx%d", r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromRows builds a matrix from a slice of equal-length rows, copying the
// values. It panics when the rows are ragged.
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return New(0, 0)
	}
	c := len(rows[0])
	m := New(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("mat: ragged row %d: len %d, want %d", i, len(row), c))
		}
		copy(m.Row(i), row)
	}
	return m
}

// Row returns the i-th row as a mutable slice view into the backing data.
func (m *Dense) Row(i int) []float64 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// RowSlice returns the rows [lo, hi) of m as a matrix view sharing m's
// backing data — no copy, so writes through either alias are visible in
// both. It is how the sharded serving path addresses one contiguous row
// shard of a candidate matrix without materializing it.
func (m *Dense) RowSlice(lo, hi int) *Dense {
	if lo < 0 || hi < lo || hi > m.Rows {
		panic(fmt.Sprintf("mat: RowSlice [%d,%d) out of range for %d rows", lo, hi, m.Rows))
	}
	return &Dense{Rows: hi - lo, Cols: m.Cols, Data: m.Data[lo*m.Cols : hi*m.Cols]}
}

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// CopyFrom overwrites m with the contents of src. Dimensions must match.
func (m *Dense) CopyFrom(src *Dense) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("mat: CopyFrom shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	copy(m.Data, src.Data)
}

// Zero sets every element of m to 0.
func (m *Dense) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// T returns a newly allocated transpose of m.
func (m *Dense) T() *Dense {
	out := New(m.Cols, m.Rows)
	// Block the transpose for cache friendliness on large matrices.
	const bs = 64
	for ib := 0; ib < m.Rows; ib += bs {
		iMax := min(ib+bs, m.Rows)
		for jb := 0; jb < m.Cols; jb += bs {
			jMax := min(jb+bs, m.Cols)
			for i := ib; i < iMax; i++ {
				ri := m.Data[i*m.Cols:]
				for j := jb; j < jMax; j++ {
					out.Data[j*out.Cols+i] = ri[j]
				}
			}
		}
	}
	return out
}

// Col copies column j of m into dst (which must have length m.Rows) and
// returns dst. A nil dst allocates a fresh slice.
func (m *Dense) Col(j int, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, m.Rows)
	}
	if len(dst) != m.Rows {
		panic("mat: Col dst length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		dst[i] = m.Data[i*m.Cols+j]
	}
	return dst
}

// SetCol overwrites column j of m from src, which must have length m.Rows.
func (m *Dense) SetCol(j int, src []float64) {
	if len(src) != m.Rows {
		panic("mat: SetCol src length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Cols+j] = src[i]
	}
}

// Equal reports whether m and other have identical shape and all elements
// within tol of each other.
func (m *Dense) Equal(other *Dense, tol float64) bool {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return false
	}
	for i, v := range m.Data {
		if math.Abs(v-other.Data[i]) > tol {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute elementwise difference between m
// and other. It panics on shape mismatch.
func (m *Dense) MaxAbsDiff(other *Dense) float64 {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic("mat: MaxAbsDiff shape mismatch")
	}
	var worst float64
	for i, v := range m.Data {
		if d := math.Abs(v - other.Data[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// FrobeniusNorm returns sqrt(sum of squared elements).
func (m *Dense) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Scale multiplies every element of m by a, in place.
func (m *Dense) Scale(a float64) {
	for i := range m.Data {
		m.Data[i] *= a
	}
}

// AddScaled performs m += a*other elementwise, in place.
func (m *Dense) AddScaled(a float64, other *Dense) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic("mat: AddScaled shape mismatch")
	}
	for i := range m.Data {
		m.Data[i] += a * other.Data[i]
	}
}

// Sub performs m -= other elementwise, in place.
func (m *Dense) Sub(other *Dense) { m.AddScaled(-1, other) }

// Apply replaces every element x of m with f(x), in place.
func (m *Dense) Apply(f func(float64) float64) {
	for i, v := range m.Data {
		m.Data[i] = f(v)
	}
}

// Log1pScaled replaces every element x with log(c*x + 1) in place. This is
// the SPMI transform of Equation (7) of the paper: F' = log(n*P̂f + 1).
// Natural log is used throughout, consistently for targets and models.
func (m *Dense) Log1pScaled(c float64) {
	for i, v := range m.Data {
		m.Data[i] = math.Log1p(c * v)
	}
}

// ColSums returns a length-Cols vector of column sums.
func (m *Dense) ColSums() []float64 {
	sums := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			sums[j] += v
		}
	}
	return sums
}

// RowSums returns a length-Rows vector of row sums.
func (m *Dense) RowSums() []float64 {
	sums := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		var s float64
		for _, v := range m.Row(i) {
			s += v
		}
		sums[i] = s
	}
	return sums
}

// NormalizeColumns divides each column by its sum, in place. Columns whose
// sum is zero are left untouched (there is no probability mass to
// distribute), mirroring Line 6 of Algorithm 2.
func (m *Dense) NormalizeColumns() {
	sums := m.ColSums()
	inv := make([]float64, m.Cols)
	for j, s := range sums {
		if s != 0 {
			inv[j] = 1 / s
		} else {
			inv[j] = 1 // leave zero columns as zeros
		}
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] *= inv[j]
		}
	}
}

// NormalizeRows divides each row by its sum, in place. Zero rows are left
// untouched, mirroring Line 7 of Algorithm 2.
func (m *Dense) NormalizeRows() {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for _, v := range row {
			s += v
		}
		if s == 0 {
			continue
		}
		inv := 1 / s
		for j := range row {
			row[j] *= inv
		}
	}
}

// RowView returns a Dense sharing storage with rows [lo, hi) of m. Mutating
// the view mutates m. This is how the parallel algorithms hand row blocks
// to worker goroutines without copying.
func (m *Dense) RowView(lo, hi int) *Dense {
	if lo < 0 || hi > m.Rows || lo > hi {
		panic(fmt.Sprintf("mat: RowView [%d,%d) out of range for %d rows", lo, hi, m.Rows))
	}
	return &Dense{Rows: hi - lo, Cols: m.Cols, Data: m.Data[lo*m.Cols : hi*m.Cols]}
}

// ColSlice returns a newly allocated matrix with columns [lo, hi) of m.
func (m *Dense) ColSlice(lo, hi int) *Dense {
	if lo < 0 || hi > m.Cols || lo > hi {
		panic(fmt.Sprintf("mat: ColSlice [%d,%d) out of range for %d cols", lo, hi, m.Cols))
	}
	out := New(m.Rows, hi-lo)
	for i := 0; i < m.Rows; i++ {
		copy(out.Row(i), m.Row(i)[lo:hi])
	}
	return out
}

// SetColSlice copies src into columns [lo, lo+src.Cols) of m.
func (m *Dense) SetColSlice(lo int, src *Dense) {
	if src.Rows != m.Rows || lo+src.Cols > m.Cols {
		panic("mat: SetColSlice shape mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		copy(m.Row(i)[lo:lo+src.Cols], src.Row(i))
	}
}

// StackRows vertically concatenates the given matrices (which must share a
// column count) into a new matrix.
func StackRows(ms ...*Dense) *Dense {
	if len(ms) == 0 {
		return New(0, 0)
	}
	cols := ms[0].Cols
	rows := 0
	for _, m := range ms {
		if m.Cols != cols {
			panic("mat: StackRows column mismatch")
		}
		rows += m.Rows
	}
	out := New(rows, cols)
	at := 0
	for _, m := range ms {
		copy(out.Data[at*cols:], m.Data)
		at += m.Rows
	}
	return out
}

// Dot returns the inner product of two equal-length vectors. On amd64
// with AVX2 the 4-aligned prefix runs in assembly (see kernels_amd64.s);
// everywhere else — and under the noasm build tag — DotGeneric runs. Both
// kernels follow the one canonical summation order documented on
// DotGeneric, so the result is bit-identical across instruction sets and
// build tags: the candidate scans in internal/index spend most of their
// cycles here, and the exact backend's bit-determinism guarantee rides on
// every host summing in the same order.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	n := len(a)
	if useAVX2 && n >= 8 {
		p := n &^ 3
		s := dotAVX2(&a[0], &b[0], p)
		for i := p; i < n; i++ {
			s += float64(a[i] * b[i])
		}
		return s
	}
	return DotGeneric(a, b)
}

// DotGeneric is the portable dot kernel and the reference the SIMD path
// is tested against. It fixes the canonical summation order shared by
// every Dot implementation in the repository: sixteen independent
// accumulators over 16-element blocks (matching four 4-lane AVX2
// registers), folded pairwise exactly as the vector kernel folds its
// registers, an optional 8- and 4-element block accumulated into the
// folded lanes, a (l0+l1)+(l2+l3) horizontal reduction, and a sequential
// scalar tail. The explicit float64 conversions pin each product to one
// rounding step, forbidding the fused-multiply-add contraction Go
// otherwise permits (and performs on arm64) — without them the "same
// order" contract would not survive a cross-compile.
func DotGeneric(a, b []float64) float64 {
	n := len(a)
	b = b[:n]
	var s0, s1, s2, s3, s4, s5, s6, s7 float64
	var s8, s9, s10, s11, s12, s13, s14, s15 float64
	i := 0
	for ; i+16 <= n; i += 16 {
		s0 += float64(a[i] * b[i])
		s1 += float64(a[i+1] * b[i+1])
		s2 += float64(a[i+2] * b[i+2])
		s3 += float64(a[i+3] * b[i+3])
		s4 += float64(a[i+4] * b[i+4])
		s5 += float64(a[i+5] * b[i+5])
		s6 += float64(a[i+6] * b[i+6])
		s7 += float64(a[i+7] * b[i+7])
		s8 += float64(a[i+8] * b[i+8])
		s9 += float64(a[i+9] * b[i+9])
		s10 += float64(a[i+10] * b[i+10])
		s11 += float64(a[i+11] * b[i+11])
		s12 += float64(a[i+12] * b[i+12])
		s13 += float64(a[i+13] * b[i+13])
		s14 += float64(a[i+14] * b[i+14])
		s15 += float64(a[i+15] * b[i+15])
	}
	u0, u1, u2, u3 := s0+s4, s1+s5, s2+s6, s3+s7
	v0, v1, v2, v3 := s8+s12, s9+s13, s10+s14, s11+s15
	if i+8 <= n {
		u0 += float64(a[i] * b[i])
		u1 += float64(a[i+1] * b[i+1])
		u2 += float64(a[i+2] * b[i+2])
		u3 += float64(a[i+3] * b[i+3])
		v0 += float64(a[i+4] * b[i+4])
		v1 += float64(a[i+5] * b[i+5])
		v2 += float64(a[i+6] * b[i+6])
		v3 += float64(a[i+7] * b[i+7])
		i += 8
	}
	l0, l1, l2, l3 := u0+v0, u1+v1, u2+v2, u3+v3
	if i+4 <= n {
		l0 += float64(a[i] * b[i])
		l1 += float64(a[i+1] * b[i+1])
		l2 += float64(a[i+2] * b[i+2])
		l3 += float64(a[i+3] * b[i+3])
		i += 4
	}
	s := (l0 + l1) + (l2 + l3)
	for ; i < n; i++ {
		s += float64(a[i] * b[i])
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	return math.Sqrt(Dot(v, v))
}

// AxpyVec performs y += a*x for equal-length vectors. Each element is an
// independent multiply-add, so the SIMD and generic paths are trivially
// bit-identical (no accumulation order to preserve — only the per-element
// rounding the explicit conversions pin down).
func AxpyVec(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: AxpyVec length mismatch %d vs %d", len(x), len(y)))
	}
	axpyTo(y, a, x)
}

// axpyTo performs y[i] += a*x[i] over len(y) elements; x must be at least
// as long as y. It is the shared element-wise kernel behind AxpyVec and
// the GEMM remainder columns.
func axpyTo(y []float64, a float64, x []float64) {
	n := len(y)
	if useAVX2 && n >= 4 {
		p := n &^ 3
		axpyAVX2(a, &x[0], &y[0], p)
		for i := p; i < n; i++ {
			y[i] += float64(a * x[i])
		}
		return
	}
	AxpyGeneric(y, a, x)
}

// AxpyGeneric is the portable element-wise multiply-add kernel, and the
// reference the SIMD path is tested against.
func AxpyGeneric(y []float64, a float64, x []float64) {
	x = x[:len(y)]
	for i, v := range x {
		y[i] += float64(a * v)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
