package mat

import (
	"fmt"
	"runtime"
	"sync"
)

// Mul returns a*b using a cache-blocked single-threaded kernel. It panics
// when the inner dimensions disagree.
func Mul(a, b *Dense) *Dense {
	out := New(a.Rows, b.Cols)
	MulInto(out, a, b)
	return out
}

// MulInto computes dst = a*b, overwriting dst. dst must be preallocated
// with shape a.Rows x b.Cols and must not alias a or b.
func MulInto(dst, a, b *Dense) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: Mul inner dimension mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("mat: MulInto dst shape mismatch")
	}
	dst.Zero()
	gemmRows(dst, a, b, 0, a.Rows)
}

// gemmRows accumulates rows [lo,hi) of a*b into dst. The i-k-j loop order
// streams both b's rows and dst's rows with unit stride, which is the
// standard cache-friendly ordering for row-major data. The k dimension is
// consumed in panels of four b-rows at a time (gemmPanel4, the blocked
// microkernel the AVX2 path vectorizes) with axpyTo sweeping the k%4
// remainder; every output element still accumulates its k products in
// strictly ascending p order, one rounding per product, so the SIMD and
// generic builds produce bit-identical results. There is deliberately no
// zero-coefficient skip: a skipped a[p]==0 and an added ±0 product are
// not always the same float64, and the one canonical order must not
// depend on the data.
func gemmRows(dst, a, b *Dense, lo, hi int) {
	n, k := b.Cols, a.Cols
	if n == 0 {
		return
	}
	for i := lo; i < hi; i++ {
		ai := a.Data[i*k : (i+1)*k]
		di := dst.Data[i*n : (i+1)*n]
		p := 0
		for ; p+4 <= k; p += 4 {
			gemmPanel4(di, ai[p:p+4:p+4], b.Data[p*n:(p+4)*n], n)
		}
		for ; p < k; p++ {
			axpyTo(di, ai[p], b.Data[p*n:(p+1)*n])
		}
	}
}

// gemmRowsGeneric is gemmRows pinned to the portable kernels; it is the
// reference the SIMD GEMM path is tested against and must follow the
// exact same panel decomposition and accumulation order.
func gemmRowsGeneric(dst, a, b *Dense, lo, hi int) {
	n, k := b.Cols, a.Cols
	if n == 0 {
		return
	}
	for i := lo; i < hi; i++ {
		ai := a.Data[i*k : (i+1)*k]
		di := dst.Data[i*n : (i+1)*n]
		p := 0
		for ; p+4 <= k; p += 4 {
			GemmPanel4Generic(di, ai[p:p+4:p+4], b.Data[p*n:(p+4)*n], n)
		}
		for ; p < k; p++ {
			AxpyGeneric(di, ai[p], b.Data[p*n:(p+1)*n])
		}
	}
}

// gemmPanel4 accumulates a four-row panel into one dst row:
// dst[j] += alpha[0]*b[j] + alpha[1]*b[n+j] + alpha[2]*b[2n+j] +
// alpha[3]*b[3n+j] for j in [0,n), with the four adds applied in panel
// order per element. b holds four consecutive rows of length n; alpha
// holds the four a-row coefficients multiplying them.
func gemmPanel4(dst []float64, alpha []float64, b []float64, n int) {
	if useAVX2 && n >= 4 {
		p := n &^ 3
		gemmPanel4AVX2(&dst[0], &alpha[0], &b[0], p, n)
		a0, a1, a2, a3 := alpha[0], alpha[1], alpha[2], alpha[3]
		for j := p; j < n; j++ {
			s := dst[j] + float64(a0*b[j])
			s += float64(a1 * b[n+j])
			s += float64(a2 * b[2*n+j])
			s += float64(a3 * b[3*n+j])
			dst[j] = s
		}
		return
	}
	GemmPanel4Generic(dst, alpha, b, n)
}

// GemmPanel4Generic is the portable four-row panel microkernel and the
// reference the SIMD path is tested against. The explicit float64
// conversions pin each product to one rounding step (no FMA contraction),
// matching the VMULPD+VADDPD sequence of the assembly kernel exactly.
func GemmPanel4Generic(dst []float64, alpha []float64, b []float64, n int) {
	a0, a1, a2, a3 := alpha[0], alpha[1], alpha[2], alpha[3]
	b0, b1, b2, b3 := b[0:n], b[n:2*n], b[2*n:3*n], b[3*n:4*n]
	for j, d := range dst[:n] {
		s := d + float64(a0*b0[j])
		s += float64(a1 * b1[j])
		s += float64(a2 * b2[j])
		s += float64(a3 * b3[j])
		dst[j] = s
	}
}

// MulIntoGeneric is MulInto pinned to the portable kernels regardless of
// CPU features — the reference implementation the SIMD GEMM path is
// property-tested and benchmarked against. It must produce bit-identical
// output to MulInto on every platform.
func MulIntoGeneric(dst, a, b *Dense) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: Mul inner dimension mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("mat: MulInto dst shape mismatch")
	}
	dst.Zero()
	gemmRowsGeneric(dst, a, b, 0, a.Rows)
}

// ParMul returns a*b computed with nb worker goroutines partitioning the
// rows of a. nb <= 1 falls back to the serial kernel. The result is
// bit-identical to Mul because each output row is owned by one worker.
func ParMul(a, b *Dense, nb int) *Dense {
	out := New(a.Rows, b.Cols)
	ParMulInto(out, a, b, nb)
	return out
}

// ParMulInto computes dst = a*b with nb workers. See ParMul.
func ParMulInto(dst, a, b *Dense, nb int) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: ParMul inner dimension mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("mat: ParMulInto dst shape mismatch")
	}
	dst.Zero()
	if nb <= 1 || a.Rows < 2 {
		gemmRows(dst, a, b, 0, a.Rows)
		return
	}
	if nb > runtime.NumCPU()*4 {
		nb = runtime.NumCPU() * 4
	}
	ParallelRanges(a.Rows, nb, func(lo, hi int) {
		gemmRows(dst, a, b, lo, hi)
	})
}

// MulRowInto computes dst = a.Row(i)·b, a single output row of a*b, using
// the same accumulation kernel (and therefore the same float rounding) as
// Mul/ParMul. Incremental rebuilds rely on this bit-identity: recomputing
// only the rows of a product that changed yields exactly the rows a full
// recompute would. dst must have length b.Cols and must not alias a or b.
func MulRowInto(dst []float64, a *Dense, i int, b *Dense) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: MulRowInto inner dimension mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if len(dst) != b.Cols {
		panic("mat: MulRowInto dst length mismatch")
	}
	for j := range dst {
		dst[j] = 0
	}
	out := &Dense{Rows: 1, Cols: b.Cols, Data: dst}
	gemmRows(out, a.RowSlice(i, i+1), b, 0, 1)
}

// MulAT returns aᵀ*b without materializing aᵀ. a is r x c, b is r x n,
// the result is c x n. This is the shape needed for Y-updates in CCD and
// for projecting in RandSVD.
func MulAT(a, b *Dense) *Dense {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("mat: MulAT dimension mismatch %dx%d ᵀ* %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Cols, b.Cols)
	n := b.Cols
	for i := 0; i < a.Rows; i++ {
		ai := a.Row(i)
		bi := b.Data[i*n : (i+1)*n]
		for p, av := range ai {
			if av == 0 {
				continue
			}
			op := out.Data[p*n : (p+1)*n]
			for j, bv := range bi {
				op[j] += av * bv
			}
		}
	}
	return out
}

// MulBT returns a*bᵀ without materializing bᵀ. a is r x c, b is n x c,
// the result is r x n. Used to form residuals X·Yᵀ − F'.
func MulBT(a, b *Dense) *Dense {
	out := New(a.Rows, b.Rows)
	MulBTInto(out, a, b)
	return out
}

// MulBTInto computes dst = a*bᵀ into a preallocated dst (r x n).
func MulBTInto(dst, a, b *Dense) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulBT dimension mismatch %dx%d * %dx%dᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic("mat: MulBTInto dst shape mismatch")
	}
	for i := 0; i < a.Rows; i++ {
		ai := a.Row(i)
		di := dst.Row(i)
		for j := 0; j < b.Rows; j++ {
			di[j] = Dot(ai, b.Row(j))
		}
	}
}

// ParMulBT is MulBT parallelized over rows of a with nb workers.
func ParMulBT(a, b *Dense, nb int) *Dense {
	out := New(a.Rows, b.Rows)
	if nb <= 1 || a.Rows < 2 {
		MulBTInto(out, a, b)
		return out
	}
	ParallelRanges(a.Rows, nb, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ai := a.Row(i)
			di := out.Row(i)
			for j := 0; j < b.Rows; j++ {
				di[j] = Dot(ai, b.Row(j))
			}
		}
	})
	return out
}

// ParallelRanges splits [0, n) into at most nb contiguous chunks and runs
// fn(lo, hi) for each chunk on its own goroutine, waiting for all of them.
// It is the scheduling primitive shared by every parallel kernel in the
// repository, matching the paper's explicit nb-thread model (Algorithm 5).
func ParallelRanges(n, nb int, fn func(lo, hi int)) {
	if nb < 1 {
		nb = 1
	}
	if nb > n {
		nb = n
	}
	if nb <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + nb - 1) / nb
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// SplitRanges returns the chunk boundaries ParallelRanges would use: a
// slice of [lo,hi) pairs covering [0,n) in at most nb pieces. Exposed so
// algorithms that need stable block identities (e.g. SMGreedyInit's
// per-block SVDs) can iterate the same partition deterministically.
func SplitRanges(n, nb int) [][2]int {
	if nb < 1 {
		nb = 1
	}
	if nb > n {
		nb = n
	}
	if n == 0 {
		return nil
	}
	chunk := (n + nb - 1) / nb
	var out [][2]int
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}
