//go:build amd64 && !noasm

#include "textflag.h"

// func cpuHasAVX2F64() bool
//
// AVX2 usability = CPUID.1:ECX.OSXSAVE[27] and .AVX[28], XGETBV(0)
// reporting XMM+YMM state enabled (bits 1 and 2), and CPUID.7.0:EBX.
// AVX2[5]. Same check as internal/index's int8 kernel.
TEXT ·cpuHasAVX2F64(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	TESTL $(1<<27), CX // OSXSAVE
	JZ   no
	TESTL $(1<<28), CX // AVX
	JZ   no
	XORL CX, CX
	XGETBV             // EDX:EAX = XCR0
	ANDL $6, AX
	CMPL AX, $6        // XMM and YMM state saved by the OS
	JNE  no
	MOVL $7, AX
	XORL CX, CX
	CPUID
	TESTL $(1<<5), BX  // AVX2
	JZ   no
	MOVB $1, ret+0(FP)
	RET
no:
	MOVB $0, ret+0(FP)
	RET

// func dotAVX2(a, b *float64, n int) float64
//
// Float64 dot product over n elements (n a multiple of 4), following the
// canonical summation order fixed by DotGeneric: four 4-lane accumulators
// over 16-element blocks, folded pairwise (Y0+=Y1, Y2+=Y3), an optional
// 8-element block into the folded pair, a final fold (Y0+=Y2), an
// optional 4-element block into Y0, then the (l0+l1)+(l2+l3) horizontal
// reduction. VMULPD+VADDPD only — a fused multiply-add would round once
// where the generic kernel rounds twice and break bit-identity.
TEXT ·dotAVX2(SB), NOSPLIT, $0-32
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), CX
	VXORPD Y0, Y0, Y0 // lanes s0..s3
	VXORPD Y1, Y1, Y1 // lanes s4..s7
	VXORPD Y2, Y2, Y2 // lanes s8..s11
	VXORPD Y3, Y3, Y3 // lanes s12..s15

loop16:
	CMPQ CX, $16
	JLT  fold8
	VMOVUPD (SI), Y4
	VMOVUPD (DI), Y5
	VMULPD  Y5, Y4, Y4
	VADDPD  Y4, Y0, Y0
	VMOVUPD 32(SI), Y4
	VMOVUPD 32(DI), Y5
	VMULPD  Y5, Y4, Y4
	VADDPD  Y4, Y1, Y1
	VMOVUPD 64(SI), Y4
	VMOVUPD 64(DI), Y5
	VMULPD  Y5, Y4, Y4
	VADDPD  Y4, Y2, Y2
	VMOVUPD 96(SI), Y4
	VMOVUPD 96(DI), Y5
	VMULPD  Y5, Y4, Y4
	VADDPD  Y4, Y3, Y3
	ADDQ $128, SI
	ADDQ $128, DI
	SUBQ $16, CX
	JMP  loop16

fold8:
	VADDPD Y1, Y0, Y0 // u lanes = s_j + s_{j+4}
	VADDPD Y3, Y2, Y2 // v lanes = s_{j+8} + s_{j+12}
	CMPQ CX, $8
	JLT  fold4
	VMOVUPD (SI), Y4
	VMOVUPD (DI), Y5
	VMULPD  Y5, Y4, Y4
	VADDPD  Y4, Y0, Y0
	VMOVUPD 32(SI), Y4
	VMOVUPD 32(DI), Y5
	VMULPD  Y5, Y4, Y4
	VADDPD  Y4, Y2, Y2
	ADDQ $64, SI
	ADDQ $64, DI
	SUBQ $8, CX

fold4:
	VADDPD Y2, Y0, Y0 // l lanes = u_j + v_j
	CMPQ CX, $4
	JLT  hsum
	VMOVUPD (SI), Y4
	VMOVUPD (DI), Y5
	VMULPD  Y5, Y4, Y4
	VADDPD  Y4, Y0, Y0

hsum:
	// (l0+l1) + (l2+l3): VHADDPD forms the two pair sums, the high pair
	// is extracted and added scalar. Float addition is bitwise
	// commutative, so the lane pairing matches the generic kernel.
	VHADDPD Y0, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDSD X1, X0, X0
	VZEROUPPER
	MOVSD X0, ret+24(FP)
	RET

// func axpyAVX2(a float64, x, y *float64, n int)
//
// y[i] += a*x[i] for i in [0,n), n a multiple of 4. Elementwise, so no
// accumulation order to preserve — only one rounding per product
// (VMULPD+VADDPD, no FMA) to match the generic kernel.
TEXT ·axpyAVX2(SB), NOSPLIT, $0-32
	VBROADCASTSD a+0(FP), Y2
	MOVQ x+8(FP), SI
	MOVQ y+16(FP), DI
	MOVQ n+24(FP), CX

aloop8:
	CMPQ CX, $8
	JLT  aloop4
	VMOVUPD (SI), Y1
	VMULPD  Y2, Y1, Y1
	VMOVUPD (DI), Y0
	VADDPD  Y1, Y0, Y0
	VMOVUPD Y0, (DI)
	VMOVUPD 32(SI), Y1
	VMULPD  Y2, Y1, Y1
	VMOVUPD 32(DI), Y0
	VADDPD  Y1, Y0, Y0
	VMOVUPD Y0, 32(DI)
	ADDQ $64, SI
	ADDQ $64, DI
	SUBQ $8, CX
	JMP  aloop8

aloop4:
	CMPQ CX, $4
	JLT  adone
	VMOVUPD (SI), Y1
	VMULPD  Y2, Y1, Y1
	VMOVUPD (DI), Y0
	VADDPD  Y1, Y0, Y0
	VMOVUPD Y0, (DI)
	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $4, CX

adone:
	VZEROUPPER
	RET

// func gemmPanel4AVX2(dst, alpha, b *float64, p, n int)
//
// Four-row GEMM panel microkernel over the first p columns (p a multiple
// of 4): dst[j] += alpha[0]*b0[j] + alpha[1]*b1[j] + alpha[2]*b2[j] +
// alpha[3]*b3[j], where bk is row k of the n-stride panel b. The four
// adds land in panel order per element, one rounding per product, so the
// result is bit-identical to GemmPanel4Generic.
TEXT ·gemmPanel4AVX2(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), SI
	MOVQ alpha+8(FP), AX
	MOVQ b+16(FP), BX
	MOVQ p+24(FP), CX
	MOVQ n+32(FP), DX
	VBROADCASTSD (AX), Y4
	VBROADCASTSD 8(AX), Y5
	VBROADCASTSD 16(AX), Y6
	VBROADCASTSD 24(AX), Y7
	LEAQ (BX)(DX*8), R9   // row 1
	LEAQ (R9)(DX*8), R10  // row 2
	LEAQ (R10)(DX*8), R11 // row 3

gloop4:
	CMPQ CX, $4
	JLT  gdone
	VMOVUPD (SI), Y0
	VMOVUPD (BX), Y1
	VMULPD  Y4, Y1, Y1
	VADDPD  Y1, Y0, Y0
	VMOVUPD (R9), Y1
	VMULPD  Y5, Y1, Y1
	VADDPD  Y1, Y0, Y0
	VMOVUPD (R10), Y1
	VMULPD  Y6, Y1, Y1
	VADDPD  Y1, Y0, Y0
	VMOVUPD (R11), Y1
	VMULPD  Y7, Y1, Y1
	VADDPD  Y1, Y0, Y0
	VMOVUPD Y0, (SI)
	ADDQ $32, SI
	ADDQ $32, BX
	ADDQ $32, R9
	ADDQ $32, R10
	ADDQ $32, R11
	SUBQ $4, CX
	JMP  gloop4

gdone:
	VZEROUPPER
	RET
