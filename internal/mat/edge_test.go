package mat

import "testing"

func TestRowViewOutOfRangePanics(t *testing.T) {
	m := New(3, 2)
	for _, r := range [][2]int{{-1, 2}, {0, 4}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("RowView(%d,%d) did not panic", r[0], r[1])
				}
			}()
			m.RowView(r[0], r[1])
		}()
	}
}

func TestColSliceOutOfRangePanics(t *testing.T) {
	m := New(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("ColSlice out of range did not panic")
		}
	}()
	m.ColSlice(1, 9)
}

func TestEmptyMatrixOps(t *testing.T) {
	e := New(0, 0)
	if e.T().Rows != 0 || e.FrobeniusNorm() != 0 {
		t.Fatal("empty matrix ops broken")
	}
	if got := Mul(New(0, 3), New(3, 2)); got.Rows != 0 || got.Cols != 2 {
		t.Fatal("empty product shape wrong")
	}
	zeroCols := New(4, 0)
	zeroCols.NormalizeRows() // must not panic
	zeroCols.NormalizeColumns()
}

func TestCopyFromMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CopyFrom mismatch did not panic")
		}
	}()
	New(2, 2).CopyFrom(New(3, 2))
}

func TestStackRowsMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("StackRows mismatch did not panic")
		}
	}()
	StackRows(New(1, 2), New(1, 3))
}

func TestStackRowsEmptyInput(t *testing.T) {
	if s := StackRows(); s.Rows != 0 {
		t.Fatal("StackRows() should be empty")
	}
}
