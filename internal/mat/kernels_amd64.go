//go:build amd64 && !noasm

package mat

// useAVX2 gates the float64 assembly kernels in kernels_amd64.s. The
// check (done once at init) requires AVX2 plus OS support for saving the
// ymm state (OSXSAVE + XGETBV), mirroring internal/index's int8 kernel.
var useAVX2 = cpuHasAVX2F64()

// cpuHasAVX2F64 reports whether the CPU and OS support the AVX2 kernels.
// Implemented in kernels_amd64.s.
func cpuHasAVX2F64() bool

// dotAVX2 returns the dot product of the first n elements of a and b
// using the canonical summation order documented on DotGeneric. n must be
// a multiple of 4; the caller adds the scalar tail in the same order the
// generic kernel would.
//
//go:noescape
func dotAVX2(a, b *float64, n int) float64

// axpyAVX2 performs y[i] += a*x[i] for i in [0,n). n must be a multiple
// of 4; the caller handles the tail.
//
//go:noescape
func axpyAVX2(a float64, x, y *float64, n int)

// gemmPanel4AVX2 accumulates the four-row panel microkernel over the
// first p columns (p a multiple of 4): dst[j] += alpha[0]*b[j] +
// alpha[1]*b[n+j] + alpha[2]*b[2n+j] + alpha[3]*b[3n+j], adds applied in
// panel order, one rounding per product (no FMA). n is the row stride of
// b; the caller handles columns [p,n).
//
//go:noescape
func gemmPanel4AVX2(dst, alpha, b *float64, p, n int)

// kernelISA reports which instruction set the float64 kernels dispatch
// to on this build and host.
func kernelISA() string {
	if useAVX2 {
		return ISAAVX2
	}
	return ISAGeneric
}
