package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomDense(rng *rand.Rand, r, c int) *Dense {
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 {
		t.Fatalf("shape = %dx%d, want 3x4", m.Rows, m.Cols)
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("Data[%d] = %v, want 0", i, v)
		}
	}
}

func TestFromRowsAndAt(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.At(0, 0) != 1 || m.At(2, 1) != 6 || m.At(1, 0) != 3 {
		t.Fatalf("unexpected contents: %+v", m.Data)
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestSetAndRowView(t *testing.T) {
	m := New(4, 3)
	m.Set(2, 1, 7)
	v := m.RowView(2, 4)
	if v.At(0, 1) != 7 {
		t.Fatalf("RowView did not share storage: got %v", v.At(0, 1))
	}
	v.Set(1, 2, 9)
	if m.At(3, 2) != 9 {
		t.Fatal("mutating view did not mutate parent")
	}
}

func TestTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randomDense(rng, 37, 23)
	mt := m.T()
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if mt.At(j, i) != m.At(i, j) {
				t.Fatalf("T mismatch at %d,%d", i, j)
			}
		}
	}
	if !mt.T().Equal(m, 0) {
		t.Fatal("double transpose is not identity")
	}
}

func TestMulSmall(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	got := Mul(a, b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if !got.Equal(want, 1e-12) {
		t.Fatalf("Mul = %v, want %v", got.Data, want.Data)
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randomDense(rng, 15, 15)
	id := New(15, 15)
	for i := 0; i < 15; i++ {
		id.Set(i, i, 1)
	}
	if !Mul(m, id).Equal(m, 1e-14) || !Mul(id, m).Equal(m, 1e-14) {
		t.Fatal("identity multiplication changed the matrix")
	}
}

func TestMulDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	Mul(New(2, 3), New(2, 3))
}

func TestParMulMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, nb := range []int{1, 2, 3, 4, 7, 16} {
		a := randomDense(rng, 53, 31)
		b := randomDense(rng, 31, 17)
		want := Mul(a, b)
		got := ParMul(a, b, nb)
		if !got.Equal(want, 0) {
			t.Fatalf("nb=%d: ParMul differs from Mul", nb)
		}
	}
}

func TestMulATMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomDense(rng, 29, 11)
	b := randomDense(rng, 29, 7)
	got := MulAT(a, b)
	want := Mul(a.T(), b)
	if !got.Equal(want, 1e-12) {
		t.Fatal("MulAT differs from explicit transpose multiply")
	}
}

func TestMulBTMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomDense(rng, 19, 13)
	b := randomDense(rng, 21, 13)
	got := MulBT(a, b)
	want := Mul(a, b.T())
	if !got.Equal(want, 1e-12) {
		t.Fatal("MulBT differs from explicit transpose multiply")
	}
	for _, nb := range []int{2, 5} {
		if !ParMulBT(a, b, nb).Equal(want, 1e-12) {
			t.Fatalf("ParMulBT nb=%d differs", nb)
		}
	}
}

func TestMulAssociativityProperty(t *testing.T) {
	// (A*B)*C == A*(B*C) up to float tolerance, via testing/quick sizes.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 2 + rng.Intn(8)
		k := 2 + rng.Intn(8)
		l := 2 + rng.Intn(8)
		c := 2 + rng.Intn(8)
		a := randomDense(rng, r, k)
		b := randomDense(rng, k, l)
		cc := randomDense(rng, l, c)
		left := Mul(Mul(a, b), cc)
		right := Mul(a, Mul(b, cc))
		return left.MaxAbsDiff(right) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizeColumns(t *testing.T) {
	m := FromRows([][]float64{{1, 0, 2}, {3, 0, 2}})
	m.NormalizeColumns()
	sums := m.ColSums()
	if math.Abs(sums[0]-1) > 1e-12 || math.Abs(sums[2]-1) > 1e-12 {
		t.Fatalf("column sums = %v, want 1 for nonzero columns", sums)
	}
	if sums[1] != 0 {
		t.Fatalf("zero column disturbed: %v", sums[1])
	}
}

func TestNormalizeRows(t *testing.T) {
	m := FromRows([][]float64{{2, 2}, {0, 0}, {1, 3}})
	m.NormalizeRows()
	if math.Abs(m.At(0, 0)-0.5) > 1e-12 || math.Abs(m.At(2, 1)-0.75) > 1e-12 {
		t.Fatalf("unexpected normalized rows: %v", m.Data)
	}
	if m.At(1, 0) != 0 || m.At(1, 1) != 0 {
		t.Fatal("zero row disturbed")
	}
}

func TestNormalizePropertyRowStochastic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New(1+rng.Intn(10), 1+rng.Intn(10))
		for i := range m.Data {
			m.Data[i] = rng.Float64()
		}
		m.NormalizeRows()
		for _, s := range m.RowSums() {
			if s != 0 && math.Abs(s-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLog1pScaled(t *testing.T) {
	m := FromRows([][]float64{{0, 1}, {2, 0.5}})
	m.Log1pScaled(3)
	want := FromRows([][]float64{
		{0, math.Log(4)},
		{math.Log(7), math.Log(2.5)},
	})
	if !m.Equal(want, 1e-12) {
		t.Fatalf("Log1pScaled = %v, want %v", m.Data, want.Data)
	}
}

func TestScaleAddSub(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	n := FromRows([][]float64{{1, 1}, {1, 1}})
	m.Scale(2)
	m.AddScaled(3, n)
	want := FromRows([][]float64{{5, 7}, {9, 11}})
	if !m.Equal(want, 0) {
		t.Fatalf("got %v want %v", m.Data, want.Data)
	}
	m.Sub(n)
	want = FromRows([][]float64{{4, 6}, {8, 10}})
	if !m.Equal(want, 0) {
		t.Fatalf("after Sub got %v want %v", m.Data, want.Data)
	}
}

func TestColOps(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	col := m.Col(1, nil)
	if col[0] != 2 || col[1] != 5 {
		t.Fatalf("Col = %v", col)
	}
	m.SetCol(0, []float64{9, 10})
	if m.At(0, 0) != 9 || m.At(1, 0) != 10 {
		t.Fatal("SetCol failed")
	}
	sl := m.ColSlice(1, 3)
	if sl.Rows != 2 || sl.Cols != 2 || sl.At(1, 1) != 6 {
		t.Fatalf("ColSlice wrong: %+v", sl)
	}
	dst := New(2, 3)
	dst.SetColSlice(1, sl)
	if dst.At(0, 1) != 2 || dst.At(1, 2) != 6 {
		t.Fatal("SetColSlice failed")
	}
}

func TestStackRows(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{3, 4}, {5, 6}})
	s := StackRows(a, b)
	want := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if !s.Equal(want, 0) {
		t.Fatalf("StackRows = %v", s.Data)
	}
}

func TestDotNormAxpy(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if Dot(a, b) != 32 {
		t.Fatalf("Dot = %v", Dot(a, b))
	}
	if math.Abs(Norm2([]float64{3, 4})-5) > 1e-14 {
		t.Fatal("Norm2 wrong")
	}
	AxpyVec(2, a, b)
	if b[0] != 6 || b[2] != 12 {
		t.Fatalf("AxpyVec = %v", b)
	}
}

// TestDotUnrolledTails exercises every remainder length of the 4-way
// unrolled kernel against the plain one-accumulator sum. Exact integer
// values keep the comparison independent of accumulation order.
func TestDotUnrolledTails(t *testing.T) {
	for n := 0; n <= 13; n++ {
		a := make([]float64, n)
		b := make([]float64, n)
		var want float64
		for i := range a {
			a[i] = float64(i + 1)
			b[i] = float64(2*i - 3)
			want += a[i] * b[i]
		}
		if got := Dot(a, b); got != want {
			t.Fatalf("Dot len %d = %v, want %v", n, got, want)
		}
	}
}

func TestSplitRanges(t *testing.T) {
	cases := []struct {
		n, nb  int
		chunks int
	}{
		{10, 3, 3}, {10, 1, 1}, {3, 10, 3}, {0, 4, 0}, {7, 7, 7},
	}
	for _, c := range cases {
		rs := SplitRanges(c.n, c.nb)
		if len(rs) != c.chunks {
			t.Fatalf("SplitRanges(%d,%d) = %d chunks, want %d", c.n, c.nb, len(rs), c.chunks)
		}
		covered := 0
		prev := 0
		for _, r := range rs {
			if r[0] != prev {
				t.Fatalf("SplitRanges(%d,%d) gap at %v", c.n, c.nb, r)
			}
			covered += r[1] - r[0]
			prev = r[1]
		}
		if covered != c.n {
			t.Fatalf("SplitRanges(%d,%d) covers %d", c.n, c.nb, covered)
		}
	}
}

func TestParallelRangesCoversAll(t *testing.T) {
	n := 1003
	seen := make([]int32, n)
	ParallelRanges(n, 7, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			seen[i]++
		}
	})
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestFrobeniusNorm(t *testing.T) {
	m := FromRows([][]float64{{3, 0}, {0, 4}})
	if math.Abs(m.FrobeniusNorm()-5) > 1e-14 {
		t.Fatalf("FrobeniusNorm = %v", m.FrobeniusNorm())
	}
}

func TestCloneIndependence(t *testing.T) {
	m := FromRows([][]float64{{1, 2}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}
