package mat

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchMatrix(r, c int, seed int64) *Dense {
	rng := rand.New(rand.NewSource(seed))
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func BenchmarkGEMM(b *testing.B) {
	a := benchMatrix(512, 512, 1)
	c := benchMatrix(512, 512, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(a, c)
	}
	b.SetBytes(int64(512 * 512 * 512 * 2 / 1000)) // rough flop proxy
}

func BenchmarkGEMMTall(b *testing.B) {
	// The RandSVD shape: tall-skinny times small.
	a := benchMatrix(50000, 72, 3)
	c := benchMatrix(72, 72, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(a, c)
	}
}

func BenchmarkMulBT(b *testing.B) {
	// The residual shape: (n x k/2)·(d x k/2)ᵀ.
	a := benchMatrix(20000, 64, 5)
	c := benchMatrix(500, 64, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulBT(a, c)
	}
}

func BenchmarkMulAT(b *testing.B) {
	// The projection shape: (n x k)ᵀ·(n x k).
	a := benchMatrix(20000, 72, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulAT(a, a)
	}
}

// dotScalar is the pre-unroll reference kernel: one accumulator, one
// multiply-add per iteration, a serial dependency chain on s.
func dotScalar(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// dotSink defeats dead-code elimination of the benchmarked kernels.
var dotSink float64

// BenchmarkDot / BenchmarkDotScalar prove the 4-way unrolled kernel win
// at the dimensions the serving path actually scans (k/2 of the candidate
// matrices; 16 is the default top-k bench, 64/512 the larger budgets).
func BenchmarkDot(b *testing.B) {
	for _, dim := range []int{16, 64, 512} {
		x := benchMatrix(1, dim, 10).Row(0)
		y := benchMatrix(1, dim, 11).Row(0)
		b.Run(fmt.Sprintf("dim=%d", dim), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dotSink += Dot(x, y)
			}
		})
	}
}

func BenchmarkDotScalar(b *testing.B) {
	for _, dim := range []int{16, 64, 512} {
		x := benchMatrix(1, dim, 10).Row(0)
		y := benchMatrix(1, dim, 11).Row(0)
		b.Run(fmt.Sprintf("dim=%d", dim), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dotSink += dotScalar(x, y)
			}
		})
	}
}

func BenchmarkNormalizeColumns(b *testing.B) {
	a := benchMatrix(20000, 500, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.NormalizeColumns()
	}
}

func BenchmarkLog1pScaled(b *testing.B) {
	a := benchMatrix(20000, 500, 9)
	a.Apply(func(x float64) float64 {
		if x < 0 {
			return -x
		}
		return x
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := a.Clone()
		c.Log1pScaled(20000)
	}
}
