//go:build !amd64 || noasm

package mat

// useAVX2 is false on non-amd64 platforms and under the noasm build tag:
// every kernel runs its portable generic twin. The generic kernels follow
// the same canonical summation order as the assembly, so results stay
// bit-identical across builds.
const useAVX2 = false

// The stubs below are never reached (useAVX2 is a false constant, so the
// compiler removes the calls); they exist to keep the dispatch sites
// compiling on every platform.

func dotAVX2(a, b *float64, n int) float64 {
	panic("mat: dotAVX2 called on a noasm build")
}

func axpyAVX2(a float64, x, y *float64, n int) {
	panic("mat: axpyAVX2 called on a noasm build")
}

func gemmPanel4AVX2(dst, alpha, b *float64, p, n int) {
	panic("mat: gemmPanel4AVX2 called on a noasm build")
}

// kernelISA reports which instruction set the float64 kernels dispatch
// to on this build and host.
func kernelISA() string {
	return ISAGeneric
}
