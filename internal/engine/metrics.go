package engine

import (
	"pane/internal/obs"
)

// engineMetrics is the engine's full metric surface, resolved against one
// obs.Registry at construction so the hot paths record through pre-looked-
// up handles (an atomic add, never a map lookup). IndexStatus and
// AffinityStatus read the same handles — /healthz and /metrics report from
// the same cells and cannot disagree.
type engineMetrics struct {
	reg *obs.Registry

	// Update pipeline (apply).
	updIncr      *obs.Counter // updates taking the delta path
	updFull      *obs.Counter
	lastDelta    *obs.Gauge // dirty rows of the most recent update
	affPassIncr  *obs.Counter
	affPassFull  *obs.Counter
	affDurIncr   *obs.Histogram
	affDurFull   *obs.Histogram
	ccdDur       *obs.Histogram
	affFrontier  *obs.Gauge
	affDrift     *obs.Gauge
	gram         *obs.Counter
	modelVersion *obs.Gauge

	// Failover / fencing.
	epoch   *obs.Gauge   // fencing epoch the engine writes at
	deposed *obs.Gauge   // 1 while a newer epoch has been observed
	fenced  *obs.Counter // writes refused with ErrFenced

	// Index build cycles (per-shard workers + manual rebuilds).
	buildIncr    *obs.Counter
	buildFull    *obs.Counter
	buildDurIncr *obs.Histogram
	buildDurFull *obs.Histogram

	// Query stages. Fan-out covers the parallel per-shard searches, merge
	// the partial combination, scan the brute-force fallback when no fresh
	// consistent shard cut exists.
	stageFanout *obs.Histogram
	stageMerge  *obs.Histogram
	stageScan   *obs.Histogram
}

func newEngineMetrics(reg *obs.Registry) *engineMetrics {
	const (
		updHelp   = "Applied model updates by pipeline path."
		affHelp   = "Affinity recurrence passes by kind (patched over the delta frontier vs full recompute)."
		affDur    = "Affinity phase wall time per update, by kind."
		buildHelp = "Per-shard index build cycles by kind (incremental refresh vs full rebuild)."
		buildDur  = "Per-shard index build wall time, by kind."
		stageHelp = "Top-k query stage wall time (shard fan-out, partial merge, brute-force scan fallback)."
	)
	// Info gauge: one always-1 series per kernel, labeled with the
	// instruction set it dispatches to, so dashboards can tell at a
	// glance whether a host is serving from its SIMD or generic paths.
	for op, isa := range KernelDispatch() {
		reg.Gauge("pane_kernel_dispatch",
			"Active instruction set per compute kernel (1 = this op dispatches to this ISA).",
			obs.L("op", op), obs.L("isa", isa)).Set(1)
	}
	return &engineMetrics{
		reg:     reg,
		updIncr: reg.Counter("pane_updates_total", updHelp, obs.L("path", "incremental")),
		updFull: reg.Counter("pane_updates_total", updHelp, obs.L("path", "full")),
		lastDelta: reg.Gauge("pane_update_last_delta_rows",
			"Dirty rows (nodes + attributes) of the most recent update's delta."),
		affPassIncr: reg.Counter("pane_update_affinity_passes_total", affHelp, obs.L("kind", "incremental")),
		affPassFull: reg.Counter("pane_update_affinity_passes_total", affHelp, obs.L("kind", "full")),
		affDurIncr:  reg.Histogram("pane_update_affinity_duration_seconds", affDur, obs.L("kind", "incremental")),
		affDurFull:  reg.Histogram("pane_update_affinity_duration_seconds", affDur, obs.L("kind", "full")),
		ccdDur: reg.Histogram("pane_update_ccd_duration_seconds",
			"CCD refinement wall time per update."),
		affFrontier: reg.Gauge("pane_update_affinity_frontier_rows",
			"Total frontier rows (forward + backward) of the most recent affinity patch."),
		affDrift: reg.Gauge("pane_update_affinity_drift",
			"Advisory drift estimate of the retained affinity state."),
		gram: reg.Counter("pane_update_gram_corrections_total",
			"Attribute updates served through the low-rank Gram correction instead of a full link-space rebuild."),
		modelVersion: reg.Gauge("pane_model_version",
			"Version of the currently served model."),
		epoch: reg.Gauge("pane_model_epoch",
			"Fencing epoch the engine writes (or accepts records) at; failover promotions bump it."),
		deposed: reg.Gauge("pane_model_deposed",
			"1 while a newer fencing epoch has been observed: writes are refused, reads keep serving."),
		fenced: reg.Counter("pane_fencing_rejections_total",
			"Writes and replicated records refused because their fencing epoch was superseded."),
		buildIncr:    reg.Counter("pane_index_build_cycles_total", buildHelp, obs.L("kind", "incremental")),
		buildFull:    reg.Counter("pane_index_build_cycles_total", buildHelp, obs.L("kind", "full")),
		buildDurIncr: reg.Histogram("pane_index_build_duration_seconds", buildDur, obs.L("kind", "incremental")),
		buildDurFull: reg.Histogram("pane_index_build_duration_seconds", buildDur, obs.L("kind", "full")),
		stageFanout:  reg.Histogram("pane_query_stage_duration_seconds", stageHelp, obs.L("stage", "fanout")),
		stageMerge:   reg.Histogram("pane_query_stage_duration_seconds", stageHelp, obs.L("stage", "merge")),
		stageScan:    reg.Histogram("pane_query_stage_duration_seconds", stageHelp, obs.L("stage", "scan")),
	}
}

// The stage accessors are nil-safe because Model methods run with a nil
// *engineMetrics when invoked outside an engine (Model.Execute), and
// obs.StartSpan over a nil histogram is a no-op.

func (m *engineMetrics) fanoutHist() *obs.Histogram {
	if m == nil {
		return nil
	}
	return m.stageFanout
}

func (m *engineMetrics) mergeHist() *obs.Histogram {
	if m == nil {
		return nil
	}
	return m.stageMerge
}

func (m *engineMetrics) scanHist() *obs.Histogram {
	if m == nil {
		return nil
	}
	return m.stageScan
}

// WithMetricsRegistry records the engine's metrics into reg instead of a
// fresh per-engine registry — the way a server shares one registry between
// the engine and its HTTP middleware so GET /metrics exposes both.
func WithMetricsRegistry(reg *obs.Registry) Option {
	return func(e *Engine) {
		if reg != nil {
			e.reg = reg
		}
	}
}

// Metrics returns the registry this engine records into (never nil).
// Serving layers expose it (obs.Registry.Handler) and read snapshots from
// it; its counters are the same cells IndexStatus and AffinityStatus
// report.
func (e *Engine) Metrics() *obs.Registry { return e.reg }
