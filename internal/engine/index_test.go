package engine

import (
	"path/filepath"
	"testing"

	"pane/internal/graph"
)

func indexedEngine(t *testing.T, opts ...Option) *Engine {
	t.Helper()
	opts = append([]Option{WithIndex(IndexConfig{IVF: true, NList: 2, NProbe: 2})}, opts...)
	return trainTestEngine(t, opts...)
}

func TestIndexedTopLinksMatchesScan(t *testing.T) {
	eng := indexedEngine(t)
	m := eng.Model()
	for u := 0; u < m.Nodes(); u++ {
		want := m.Scorer.TopKTargets(u, 3, nil)
		ans, err := eng.TopLinks(u, 3, ModeExact, 0)
		if err != nil {
			t.Fatal(err)
		}
		if ans.Backend != BackendExact || ans.Version != 1 {
			t.Fatalf("u=%d: backend %q version %d", u, ans.Backend, ans.Version)
		}
		if len(ans.Results) != len(want) {
			t.Fatalf("u=%d: %d results, want %d", u, len(ans.Results), len(want))
		}
		// The indexed path computes (Xf[u]·G)·Xb[v] in a different
		// association order than the scan, so scores match to tolerance
		// and the ranked ids must agree wherever scores are separated.
		for i := range want {
			if d := ans.Results[i].Score - want[i].Score; d > 1e-9 || d < -1e-9 {
				t.Fatalf("u=%d rank %d: score %v vs scan %v", u, i, ans.Results[i], want[i])
			}
		}
	}
}

func TestIndexedTopAttrsMatchesScan(t *testing.T) {
	eng := indexedEngine(t)
	m := eng.Model()
	for v := 0; v < m.Nodes(); v++ {
		want := m.Emb.TopKAttrs(v, 2, nil)
		ans, err := eng.TopAttrs(v, 2, ModeExact, 0)
		if err != nil {
			t.Fatal(err)
		}
		if ans.Backend != BackendExact {
			t.Fatalf("backend %q", ans.Backend)
		}
		for i := range want {
			if d := ans.Results[i].Score - want[i].Score; d > 1e-9 || d < -1e-9 {
				t.Fatalf("v=%d rank %d: score %v vs scan %v", v, i, ans.Results[i], want[i])
			}
		}
	}
}

func TestTopKValidation(t *testing.T) {
	eng := indexedEngine(t)
	cases := []struct {
		name string
		run  func() error
	}{
		{"k=0", func() error { _, err := eng.TopLinks(0, 0, "", 0); return err }},
		{"k=-5", func() error { _, err := eng.TopAttrs(0, -5, "", 0); return err }},
		{"bad mode", func() error { _, err := eng.TopLinks(0, 3, "approx", 0); return err }},
		{"negative nprobe", func() error { _, err := eng.TopLinks(0, 3, ModeIVF, -1); return err }},
		{"src out of range", func() error { _, err := eng.TopLinks(99, 3, "", 0); return err }},
		{"node out of range", func() error { _, err := eng.TopAttrs(-1, 3, "", 0); return err }},
	}
	for _, c := range cases {
		if err := c.run(); err == nil {
			t.Fatalf("%s: accepted", c.name)
		}
	}
	if eng.Version() != 1 {
		t.Fatal("validation errors must not touch state")
	}
}

// TestManualRebuildLifecycle walks the full fallback protocol: fresh
// index at v1, update to v2 with the index pinned at v1 (scan fallback at
// the NEW version — never a stale index), then explicit rebuild back to
// indexed serving.
func TestManualRebuildLifecycle(t *testing.T) {
	eng := indexedEngine(t, WithManualIndexRebuild())
	if st := eng.IndexStatus(); !st.Enabled || st.Version != 1 || !st.IVF {
		t.Fatalf("fresh status %+v", st)
	}
	ans, err := eng.TopLinks(0, 3, ModeIVF, 0)
	if err != nil || ans.Backend != BackendIVF || ans.Version != 1 {
		t.Fatalf("fresh ivf answer %+v err %v", ans, err)
	}

	if _, err := eng.ApplyEdges([]graph.Edge{{Src: 0, Dst: 5}}); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{ModeExact, ModeIVF} {
		ans, err := eng.TopLinks(0, 3, mode, 0)
		if err != nil {
			t.Fatal(err)
		}
		if ans.Backend != BackendScan || ans.Version != 2 {
			t.Fatalf("mid-rebuild mode=%s: backend %q version %d, want scan at 2", mode, ans.Backend, ans.Version)
		}
	}
	if st := eng.IndexStatus(); st.Version != 1 {
		t.Fatalf("mid-rebuild status %+v", st)
	}

	eng.RebuildIndex()
	ans, err = eng.TopLinks(0, 3, ModeIVF, 0)
	if err != nil || ans.Backend != BackendIVF || ans.Version != 2 {
		t.Fatalf("post-rebuild answer %+v err %v", ans, err)
	}
	// Redundant rebuilds are no-ops.
	eng.RebuildIndex()
	if st := eng.IndexStatus(); st.Version != 2 {
		t.Fatalf("post-noop status %+v", st)
	}
}

func TestAsyncRebuildCatchesUp(t *testing.T) {
	eng := indexedEngine(t)
	for i := 0; i < 3; i++ {
		if _, err := eng.ApplyEdges([]graph.Edge{{Src: i, Dst: 5 - i}}); err != nil {
			t.Fatal(err)
		}
	}
	eng.WaitForIndex()
	if st := eng.IndexStatus(); st.Version != eng.Version() {
		t.Fatalf("index at %d, model at %d", st.Version, eng.Version())
	}
	ans, err := eng.TopLinks(0, 3, ModeExact, 0)
	if err != nil || ans.Backend != BackendExact || ans.Version != 4 {
		t.Fatalf("post-catchup answer %+v err %v", ans, err)
	}
}

// TestExactIVFFullProbeAgreeOnModel: with nprobe = nlist the two engine
// backends must agree bit for bit — both search the same transformed
// candidate matrix.
func TestExactIVFFullProbeAgreeOnModel(t *testing.T) {
	eng := indexedEngine(t)
	m := eng.Model()
	for u := 0; u < m.Nodes(); u++ {
		ex, err := eng.TopLinks(u, 4, ModeExact, 0)
		if err != nil {
			t.Fatal(err)
		}
		iv, err := eng.TopLinks(u, 4, ModeIVF, 2) // nprobe = nlist
		if err != nil {
			t.Fatal(err)
		}
		if len(ex.Results) != len(iv.Results) {
			t.Fatalf("u=%d: %d vs %d results", u, len(ex.Results), len(iv.Results))
		}
		for i := range ex.Results {
			if ex.Results[i] != iv.Results[i] {
				t.Fatalf("u=%d rank %d: exact %v != full-probe ivf %v", u, i, ex.Results[i], iv.Results[i])
			}
		}
	}
}

func TestIndexConfigSurvivesSnapshot(t *testing.T) {
	eng := trainTestEngine(t, WithIndex(IndexConfig{IVF: true, NList: 3, NProbe: 2, Seed: 9}))
	path := filepath.Join(t.TempDir(), "m.pane")
	if _, err := eng.Snapshot(path); err != nil {
		t.Fatal(err)
	}

	restored, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if st := restored.IndexStatus(); !st.Enabled || !st.IVF || st.NList != 3 || st.NProbe != 2 {
		t.Fatalf("restored status %+v", st)
	}
	// Identical data + identical recorded seed → identical IVF answers.
	a, err := eng.TopLinks(0, 3, ModeIVF, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := restored.TopLinks(0, 3, ModeIVF, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Results {
		if a.Results[i] != b.Results[i] {
			t.Fatalf("rank %d: live %v restored %v", i, a.Results[i], b.Results[i])
		}
	}

	// Caller options override the bundle: indexing can be turned off.
	plain, err := Open(path, WithoutIndex())
	if err != nil {
		t.Fatal(err)
	}
	if st := plain.IndexStatus(); st.Enabled {
		t.Fatalf("WithoutIndex ignored: %+v", st)
	}
	ans, err := plain.TopLinks(0, 3, ModeIVF, 0)
	if err != nil || ans.Backend != BackendScan {
		t.Fatalf("unindexed answer %+v err %v", ans, err)
	}
}

// TestWaitForIndexDuringUpdates calls WaitForIndex concurrently with a
// stream of updates — new rebuilds keep being scheduled while waiters
// block, which a plain WaitGroup would panic on (concurrent Add/Wait).
func TestWaitForIndexDuringUpdates(t *testing.T) {
	eng := indexedEngine(t)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			eng.WaitForIndex()
		}
	}()
	for i := 0; i < 6; i++ {
		if _, err := eng.ApplyEdges([]graph.Edge{{Src: i % 6, Dst: (i + 1) % 6}}); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	eng.WaitForIndex()
	if st := eng.IndexStatus(); st.Version != eng.Version() {
		t.Fatalf("index at %d, model at %d", st.Version, eng.Version())
	}
}

func TestFallbackIndexOption(t *testing.T) {
	// No prior config: the fallback applies.
	eng := trainTestEngine(t, WithFallbackIndex(IndexConfig{IVF: true, NList: 2, NProbe: 2}))
	if st := eng.IndexStatus(); !st.Enabled || !st.IVF {
		t.Fatalf("fallback not applied: %+v", st)
	}
	// A bundle-recorded config wins over the fallback.
	path := filepath.Join(t.TempDir(), "m.pane")
	src := trainTestEngine(t, WithIndex(IndexConfig{IVF: false}))
	if _, err := src.Snapshot(path); err != nil {
		t.Fatal(err)
	}
	restored, err := Open(path, WithFallbackIndex(IndexConfig{IVF: true}))
	if err != nil {
		t.Fatal(err)
	}
	if st := restored.IndexStatus(); !st.Enabled || st.IVF {
		t.Fatalf("bundle config overridden by fallback: %+v", st)
	}
}

func TestBatchInvalidKAndDefault(t *testing.T) {
	eng := indexedEngine(t)
	zero, neg := 0, -2
	results, _ := eng.Execute([]Query{
		{Op: OpTopLinks, Src: 0},           // K omitted → DefaultK, clamped to n-1
		{Op: OpTopLinks, Src: 0, K: &zero}, // explicit 0 → error
		{Op: OpTopAttrs, Node: 0, K: &neg}, // explicit negative → error
	})
	if results[0].Err != "" {
		t.Fatalf("omitted k failed: %s", results[0].Err)
	}
	if len(results[0].Top) != 5 { // 6 nodes minus self
		t.Fatalf("omitted k results %d, want 5", len(results[0].Top))
	}
	if results[0].Backend != BackendExact {
		t.Fatalf("batch backend %q", results[0].Backend)
	}
	for _, i := range []int{1, 2} {
		if results[i].Err == "" {
			t.Fatalf("result %d: invalid k accepted", i)
		}
		if results[i].Top != nil {
			t.Fatalf("result %d: carries results despite error", i)
		}
	}
}

func TestModelExecuteStaysScan(t *testing.T) {
	// Model.Execute (no engine) has no index to consult; it reports scan.
	eng := indexedEngine(t)
	res := eng.Model().Execute([]Query{{Op: OpTopLinks, Src: 0, K: kp(3)}})
	if res[0].Err != "" || res[0].Backend != BackendScan {
		t.Fatalf("model execute: %+v", res[0])
	}
}
