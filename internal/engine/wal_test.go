package engine

import (
	"bufio"
	"bytes"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"pane/internal/graph"
	"pane/internal/store"
	"pane/internal/wal"
)

// walUpdate is the deterministic update stream the WAL tests drive:
// alternating edge inserts and attribute bumps on the running example.
func walUpdate(i int) ([]graph.Edge, []graph.AttrEntry) {
	rng := rand.New(rand.NewSource(int64(i)))
	if i%2 == 0 {
		return []graph.Edge{{Src: rng.Intn(6), Dst: rng.Intn(6)}}, nil
	}
	return nil, []graph.AttrEntry{{Node: rng.Intn(6), Attr: rng.Intn(3), Weight: 0.25}}
}

func applyWALUpdate(t *testing.T, eng *Engine, i int) {
	t.Helper()
	edges, attrs := walUpdate(i)
	var err error
	if edges != nil {
		_, err = eng.ApplyEdges(edges)
	} else {
		_, err = eng.ApplyAttrs(attrs)
	}
	if err != nil {
		t.Fatalf("update %d: %v", i, err)
	}
}

// bundleBytes serializes eng's current bundle in memory — state
// comparison without Snapshot's compaction side effect.
func bundleBytes(t *testing.T, eng *Engine) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := store.WriteBundle(&buf, eng.CurrentBundle()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// snapshotBytes persists eng and returns the bundle bytes.
func snapshotBytes(t *testing.T, eng *Engine) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "snap.pane")
	if _, err := eng.Snapshot(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// trainBase trains the deterministic-path engine (the retained-affinity
// state is exact only to rounding drift, so bit-identity tests disable
// it) and snapshots its version-1 bundle to a file both the golden and
// crashed runs restore from.
func trainBase(t *testing.T, dir string) string {
	t.Helper()
	eng, err := Train(graph.RunningExample(), testConfig(), WithAffinityThreshold(0))
	if err != nil {
		t.Fatal(err)
	}
	base := filepath.Join(dir, "base.pane")
	if _, err := eng.Snapshot(base); err != nil {
		t.Fatal(err)
	}
	return base
}

// TestWALCrashRecovery is the recovery acceptance test: a writer killed
// at ANY record boundary — and at torn mid-record tails — restarts via
// bundle + log replay to a state whose snapshot is byte-identical to
// the uncrashed writer's at the version the log durably reached.
func TestWALCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	base := trainBase(t, dir)
	const updates = 6

	// Golden run: no crash, snapshot bytes captured at every version.
	golden := map[uint64][]byte{}
	gold, err := Open(base, WithAffinityThreshold(0))
	if err != nil {
		t.Fatal(err)
	}
	golden[gold.Version()] = snapshotBytes(t, gold)
	for i := 1; i <= updates; i++ {
		applyWALUpdate(t, gold, i)
		golden[gold.Version()] = snapshotBytes(t, gold)
	}

	// Leader run: same updates, write-ahead logged.
	walDir := filepath.Join(dir, "wal")
	log, err := wal.Open(walDir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	leader, err := Open(base, WithAffinityThreshold(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := leader.AttachWAL(log); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= updates; i++ {
		applyWALUpdate(t, leader, i)
	}
	if !bytes.Equal(snapshotBytes(t, leader), golden[leader.Version()]) {
		t.Fatal("logged and unlogged writers diverge before any crash")
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	// Walk the single segment's frames to find every record boundary.
	segs, err := filepath.Glob(filepath.Join(walDir, "*.wal"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want one segment, got %v (err %v)", segs, err)
	}
	segName := filepath.Base(segs[0])
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	type cut struct {
		off     int64
		version uint64
	}
	cuts := []cut{{0, 1}} // empty log: recovery stays at the base bundle
	br := bufio.NewReader(bytes.NewReader(data))
	for {
		rec, err := wal.ReadFrame(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		frame, err := wal.EncodeFrame(nil, rec)
		if err != nil {
			t.Fatal(err)
		}
		cuts = append(cuts, cut{cuts[len(cuts)-1].off + int64(len(frame)), rec.Version})
	}
	if int64(len(data)) != cuts[len(cuts)-1].off {
		t.Fatalf("frame walk covered %d of %d bytes", cuts[len(cuts)-1].off, len(data))
	}

	recoverAt := func(prefix []byte) *Engine {
		t.Helper()
		crashDir := t.TempDir()
		if err := os.WriteFile(filepath.Join(crashDir, segName), prefix, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := wal.Open(crashDir, wal.Options{Sync: wal.SyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		eng, err := Open(base, WithAffinityThreshold(0))
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.AttachWAL(l); err != nil {
			t.Fatal(err)
		}
		return eng
	}

	// SIGKILL at every record boundary.
	for _, c := range cuts {
		eng := recoverAt(data[:c.off])
		if v := eng.Version(); v != c.version {
			t.Fatalf("boundary %d: recovered version %d, want %d", c.off, v, c.version)
		}
		if !bytes.Equal(snapshotBytes(t, eng), golden[c.version]) {
			t.Fatalf("boundary %d: recovered snapshot not byte-identical to uncrashed v%d", c.off, c.version)
		}
	}

	// SIGKILL mid-record: the torn tail truncates back to the previous
	// boundary's state.
	for i := 1; i < len(cuts); i++ {
		mid := (cuts[i-1].off + cuts[i].off) / 2
		eng := recoverAt(data[:mid])
		want := cuts[i-1].version
		if v := eng.Version(); v != want {
			t.Fatalf("torn cut %d: recovered version %d, want %d", mid, v, want)
		}
		if !bytes.Equal(snapshotBytes(t, eng), golden[want]) {
			t.Fatalf("torn cut %d: recovered snapshot not byte-identical to uncrashed v%d", mid, want)
		}
	}

	// A recovered writer keeps accepting (and logging) updates.
	eng := recoverAt(data)
	applyWALUpdate(t, eng, updates+1)
	if v := eng.Version(); v != uint64(updates)+2 {
		t.Fatalf("post-recovery update version %d", v)
	}
	if lv := eng.WAL().LastVersion(); lv != eng.Version() {
		t.Fatalf("post-recovery append missing: log at %d, model at %d", lv, eng.Version())
	}
}

// TestSnapshotCompactionRace pins the compaction-watermark interleaving:
// a bundle assembled at version V while updates race ahead must anchor
// compaction at V — its own recorded version — so the records between V
// and the live version stay replayable.
func TestSnapshotCompactionRace(t *testing.T) {
	dir := t.TempDir()
	base := trainBase(t, dir)
	walDir := filepath.Join(dir, "wal")
	// One segment per record, so every watermark choice is visible in
	// which segment files survive.
	log, err := wal.Open(walDir, wal.Options{Sync: wal.SyncNone, SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	leader, err := Open(base, WithAffinityThreshold(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := leader.AttachWAL(log); err != nil {
		t.Fatal(err)
	}

	// Deterministic interleaving: the bundle captures version 4, the
	// model advances to 8, and only then does the snapshot's compaction
	// run. Records 5..8 are covered by no bundle and must survive.
	for i := 1; i <= 3; i++ {
		applyWALUpdate(t, leader, i)
	}
	b := leader.CurrentBundle()
	if b.ModelVersion != 4 {
		t.Fatalf("bundle at version %d, want 4", b.ModelVersion)
	}
	for i := 4; i <= 7; i++ {
		applyWALUpdate(t, leader, i)
	}
	if err := leader.compactAfterSnapshot(b); err != nil {
		t.Fatal(err)
	}
	first, last, ok := log.Bounds()
	if !ok || first != 5 || last != 8 {
		t.Fatalf("log bounds after raced compaction = %d..%d (ok=%v), want 5..8", first, last, ok)
	}
	// The raced bundle + surviving log must recover to the live state.
	snap := filepath.Join(dir, "raced.pane")
	if err := store.SaveBundleFile(snap, b); err != nil {
		t.Fatal(err)
	}
	check, err := Open(snap, WithAffinityThreshold(0))
	if err != nil {
		t.Fatal(err)
	}
	checkLog, err := wal.Open(walDir, wal.Options{Sync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	if err := check.AttachWAL(checkLog); err != nil {
		t.Fatal(err)
	}
	if check.Version() != 8 {
		t.Fatalf("recovered version %d, want 8", check.Version())
	}
	// Compare serialized bundles in memory: snapshotting `check` would
	// compact through checkLog, which shares walDir with the live log.
	if !bytes.Equal(bundleBytes(t, check), bundleBytes(t, leader)) {
		t.Fatal("recovery from raced snapshot diverges from the live writer")
	}
	checkLog.Close()

	// Now the live interleaving: snapshots (each compacting) racing a
	// writer. Afterwards the newest snapshot plus the surviving log must
	// still reach the writer's final version — the invariant a live-
	// version watermark breaks.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 8; i < 28; i++ {
			applyWALUpdate(t, leader, i)
		}
	}()
	lastSnap := filepath.Join(dir, "live.pane")
	for i := 0; i < 6; i++ {
		if _, err := leader.Snapshot(lastSnap); err != nil {
			t.Error(err)
			break
		}
	}
	wg.Wait()
	if _, err := leader.Snapshot(lastSnap); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	final, err := Open(lastSnap, WithAffinityThreshold(0))
	if err != nil {
		t.Fatal(err)
	}
	finalLog, err := wal.Open(walDir, wal.Options{Sync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer finalLog.Close()
	if err := final.AttachWAL(finalLog); err != nil {
		t.Fatal(err)
	}
	if final.Version() != leader.Version() {
		t.Fatalf("recovered version %d, want %d", final.Version(), leader.Version())
	}
}

func TestAttachWALEdgeCases(t *testing.T) {
	dir := t.TempDir()
	base := trainBase(t, dir)

	// A log whose records all predate the bundle is reset, and the next
	// update extends the bundle's version.
	behind, err := wal.Open(filepath.Join(dir, "behind"), wal.Options{Sync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer behind.Close()
	leader, err := Open(base, WithAffinityThreshold(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := leader.AttachWAL(behind); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		applyWALUpdate(t, leader, i)
	}
	snap := filepath.Join(dir, "ahead.pane")
	if _, err := leader.Snapshot(snap); err != nil {
		t.Fatal(err)
	}
	// Re-create the "log lost appends the bundle captured" state by
	// dropping the tail records: reset and rewrite records 2..3 only.
	if err := behind.Reset(); err != nil {
		t.Fatal(err)
	}
	for i, v := 1, uint64(2); v <= 3; i, v = i+1, v+1 {
		edges, attrs := walUpdate(i)
		if err := behind.Append(wal.Record{Version: v, Edges: edges, Attrs: attrs}); err != nil {
			t.Fatal(err)
		}
	}
	restarted, err := Open(snap, WithAffinityThreshold(0)) // version 5
	if err != nil {
		t.Fatal(err)
	}
	if err := restarted.AttachWAL(behind); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := behind.Bounds(); ok {
		t.Fatal("stale log not reset on attach")
	}
	applyWALUpdate(t, restarted, 5)
	if first, last, _ := behind.Bounds(); first != 6 || last != 6 {
		t.Fatalf("post-reset append bounds %d..%d, want 6..6", first, last)
	}

	// A log starting past version+1 is an unbridgeable gap.
	gapped, err := wal.Open(filepath.Join(dir, "gap"), wal.Options{Sync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer gapped.Close()
	if err := gapped.Append(wal.Record{Version: 9, Edges: []graph.Edge{{Src: 0, Dst: 1}}}); err != nil {
		t.Fatal(err)
	}
	fresh, err := Open(base, WithAffinityThreshold(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.AttachWAL(gapped); err == nil {
		t.Fatal("gap between bundle and log accepted")
	}

	// Double attach is rejected.
	if err := restarted.AttachWAL(gapped); err == nil {
		t.Fatal("second AttachWAL accepted")
	}
}

func TestWALAppendFailureDoesNotPublish(t *testing.T) {
	dir := t.TempDir()
	base := trainBase(t, dir)
	log, err := wal.Open(filepath.Join(dir, "wal"), wal.Options{Sync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Open(base, WithAffinityThreshold(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.AttachWAL(log); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	before := eng.Version()
	if _, err := eng.ApplyEdges([]graph.Edge{{Src: 0, Dst: 1}}); err == nil {
		t.Fatal("update published without a durable append")
	}
	if eng.Version() != before {
		t.Fatalf("version advanced to %d past a failed append", eng.Version())
	}
}

func TestLoadBundle(t *testing.T) {
	dir := t.TempDir()
	base := trainBase(t, dir)
	// Identical index configs on both sides: the bit-identity claim is
	// between matching serving paths.
	idx := WithIndex(IndexConfig{IVF: true, NList: 2, NProbe: 2})
	leader, err := Open(base, WithAffinityThreshold(0), idx)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		applyWALUpdate(t, leader, i)
	}

	follower, err := Open(base, WithAffinityThreshold(0), idx)
	if err != nil {
		t.Fatal(err)
	}
	b := leader.CurrentBundle()
	if err := follower.LoadBundle(b); err != nil {
		t.Fatal(err)
	}
	if follower.Version() != leader.Version() {
		t.Fatalf("follower at %d, leader at %d", follower.Version(), leader.Version())
	}
	// The swapped-in model serves indexed queries once the scheduled
	// rebuild lands, bit-identical to the leader's (the follower's full
	// build and the leader's incremental refresh agree byte for byte).
	leader.WaitForIndex()
	follower.WaitForIndex()
	for u := 0; u < 6; u++ {
		fa, err := follower.TopLinks(u, 3, ModeExact, 0)
		if err != nil {
			t.Fatal(err)
		}
		la, err := leader.TopLinks(u, 3, ModeExact, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(fa.Results) != len(la.Results) {
			t.Fatalf("node %d: %d vs %d results", u, len(fa.Results), len(la.Results))
		}
		for i := range fa.Results {
			if fa.Results[i] != la.Results[i] {
				t.Fatalf("node %d result %d: follower %+v != leader %+v", u, i, fa.Results[i], la.Results[i])
			}
		}
	}

	// Stale or non-advancing bundles are rejected.
	if err := follower.LoadBundle(b); err == nil {
		t.Fatal("non-advancing bundle accepted")
	}
	// A WAL-attached engine (a leader) refuses wholesale replacement.
	log, err := wal.Open(filepath.Join(dir, "wal"), wal.Options{Sync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	if err := leader.AttachWAL(log); err != nil {
		t.Fatal(err)
	}
	applyWALUpdate(t, leader, 4)
	if err := leader.LoadBundle(leader.CurrentBundle()); err == nil {
		t.Fatal("LoadBundle on a WAL-attached engine accepted")
	}
}
