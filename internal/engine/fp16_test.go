package engine

import (
	"path/filepath"
	"testing"

	"pane/internal/store"
)

// fp16Engine builds an engine with the binary16 tiers enabled alongside
// every other backend.
func fp16Engine(t *testing.T, shards int) *Engine {
	t.Helper()
	g, emb, cfg := shardTestModel(t)
	eng, err := New(g, emb, cfg, WithIndex(IndexConfig{
		IVF: true, NList: 3, NProbe: 3, Quantize: true, FP16: true, Shards: shards,
	}))
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestFP16ModesServeAndReport: fp16/ivffp16 modes answer from their
// backends with correct labels, degrade (fp16 → exact, ivffp16 → ivf →
// exact) when the tier is not built, and the status reports the flag.
func TestFP16ModesServeAndReport(t *testing.T) {
	eng := fp16Engine(t, 1)
	if st := eng.IndexStatus(); !st.FP16 {
		t.Fatalf("status fp16=%v", st.FP16)
	}
	for mode, backend := range map[string]string{
		ModeFP16: BackendFP16, ModeIVFFP16: BackendIVFFP16,
	} {
		ans, err := eng.TopLinks(0, 3, mode, 0)
		if err != nil {
			t.Fatal(err)
		}
		if ans.Backend != backend {
			t.Fatalf("mode %q answered by %q", mode, ans.Backend)
		}
		ans, err = eng.TopAttrs(0, 3, mode, 0)
		if err != nil {
			t.Fatal(err)
		}
		if ans.Backend != backend {
			t.Fatalf("attr mode %q answered by %q", mode, ans.Backend)
		}
	}
	// An exact-only engine degrades both fp16 modes to exact.
	g, emb, cfg := shardTestModel(t)
	plain, err := New(g, emb, cfg, WithIndex(IndexConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{ModeFP16, ModeIVFFP16} {
		ans, err := plain.TopLinks(0, 3, mode, 0)
		if err != nil {
			t.Fatal(err)
		}
		if ans.Backend != BackendExact {
			t.Fatalf("exact-only engine: mode %q answered by %q", mode, ans.Backend)
		}
	}
	// An IVF engine without the fp16 tier degrades ivffp16 to ivf.
	ivfOnly, err := New(g, emb, cfg, WithIndex(IndexConfig{IVF: true, NList: 3}))
	if err != nil {
		t.Fatal(err)
	}
	if ans, _ := ivfOnly.TopLinks(0, 3, ModeIVFFP16, 0); ans.Backend != BackendIVF {
		t.Fatalf("ivf-only engine: ivffp16 answered by %q", ans.Backend)
	}
}

// TestShardedFP16BitForBitIdentical: fp16 answers through S shards equal
// single-shard fp16 EXACTLY — per-element encoding makes every score
// final and shard-invariant — for links and attributes.
func TestShardedFP16BitForBitIdentical(t *testing.T) {
	g, emb, cfg := shardTestModel(t)
	newEng := func(shards int) *Engine {
		eng, err := New(g, emb, cfg, WithIndex(IndexConfig{
			IVF: true, NList: 3, NProbe: 3, FP16: true, Shards: shards,
		}))
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	base := newEng(1)
	for _, s := range []int{2, 3, 7} {
		eng := newEng(s)
		for u := 0; u < g.N; u += 5 {
			want, err := base.TopLinks(u, 10, ModeFP16, 0)
			if err != nil {
				t.Fatal(err)
			}
			got, err := eng.TopLinks(u, 10, ModeFP16, 0)
			if err != nil {
				t.Fatal(err)
			}
			if got.Backend != BackendFP16 {
				t.Fatalf("shards=%d u=%d: backend %q", s, u, got.Backend)
			}
			if len(got.Results) != len(want.Results) {
				t.Fatalf("shards=%d u=%d: %d results, want %d", s, u, len(got.Results), len(want.Results))
			}
			for i := range want.Results {
				if got.Results[i] != want.Results[i] {
					t.Fatalf("shards=%d u=%d rank=%d: %v != %v", s, u, i, got.Results[i], want.Results[i])
				}
			}
			wantA, err := base.TopAttrs(u, 5, ModeFP16, 0)
			if err != nil {
				t.Fatal(err)
			}
			gotA, err := eng.TopAttrs(u, 5, ModeFP16, 0)
			if err != nil {
				t.Fatal(err)
			}
			for i := range wantA.Results {
				if gotA.Results[i] != wantA.Results[i] {
					t.Fatalf("shards=%d attrs u=%d rank=%d: %v != %v", s, u, i, gotA.Results[i], wantA.Results[i])
				}
			}
		}
	}
}

// TestFP16SnapshotRestoreRoundTrip: an fp16 engine snapshots a format-5
// bundle carrying the binary16 payload; the restored engine consumes the
// payload (same version), serves identical fp16 answers, and a second
// snapshot reproduces the codes exactly — per-element encoding makes
// restored and recomputed tiers interchangeable.
func TestFP16SnapshotRestoreRoundTrip(t *testing.T) {
	eng := fp16Engine(t, 3)
	path := filepath.Join(t.TempDir(), "fp16.pane")
	if _, err := eng.Snapshot(path); err != nil {
		t.Fatal(err)
	}
	b, err := store.LoadBundleFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Index == nil || !b.Index.FP16 {
		t.Fatal("bundle did not record the fp16 flag")
	}
	if b.Half == nil {
		t.Fatal("bundle did not carry the fp16 payload")
	}
	m := eng.Model()
	if b.Half.Links.Rows != m.Nodes() || b.Half.Attrs.Rows != m.Attrs() {
		t.Fatalf("payload shape %dx? / %dx?", b.Half.Links.Rows, b.Half.Attrs.Rows)
	}
	restored, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if restored.restoredHalf.Load() == nil {
		t.Fatal("restored engine dropped the payload before building")
	}
	st := restored.IndexStatus()
	if !st.FP16 || st.Shards != 3 {
		t.Fatalf("restored status fp16=%v shards=%d", st.FP16, st.Shards)
	}
	for u := 0; u < m.Nodes(); u += 11 {
		want, err := eng.TopLinks(u, 5, ModeFP16, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := restored.TopLinks(u, 5, ModeFP16, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got.Backend != BackendFP16 || len(got.Results) != len(want.Results) {
			t.Fatalf("restored u=%d: backend %q, %d results", u, got.Backend, len(got.Results))
		}
		for i := range want.Results {
			if got.Results[i] != want.Results[i] {
				t.Fatalf("restored u=%d rank=%d: %v != %v", u, i, got.Results[i], want.Results[i])
			}
		}
	}
	// Re-snapshotting the restored engine reproduces the payload.
	path2 := filepath.Join(t.TempDir(), "fp16b.pane")
	if _, err := restored.Snapshot(path2); err != nil {
		t.Fatal(err)
	}
	b2, err := store.LoadBundleFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	if b2.Half == nil {
		t.Fatal("re-snapshot dropped the payload")
	}
	for i, c := range b.Half.Links.Codes {
		if b2.Half.Links.Codes[i] != c {
			t.Fatalf("link code %d differs after round trip", i)
		}
	}
	for i, c := range b.Half.Attrs.Codes {
		if b2.Half.Attrs.Codes[i] != c {
			t.Fatalf("attr code %d differs after round trip", i)
		}
	}
	// An update invalidates the payload (the model moved past it) but
	// the rebuilt fp16 tier keeps serving at the new version.
	if _, err := restored.ApplyEdges(eng.Model().Graph.Edges()[:1]); err != nil {
		t.Fatal(err)
	}
	if restored.restoredHalf.Load() != nil {
		t.Fatal("stale payload survived an update")
	}
	restored.WaitForIndex()
	ans, err := restored.TopLinks(0, 3, ModeFP16, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Backend != BackendFP16 || ans.Version != 2 {
		t.Fatalf("post-update fp16: backend %q version %d", ans.Backend, ans.Version)
	}
}

// TestFP16IncrementalRefreshMatchesFullRebuild: after an identical update
// stream, an engine whose fp16 tier caught up through incremental refresh
// must answer fp16/ivffp16 queries bit-identically to one rebuilt from
// scratch — the engine-level check that FP16.Refresh and IVFFP16.Refresh
// reproduce a full re-encode exactly.
func TestFP16IncrementalRefreshMatchesFullRebuild(t *testing.T) {
	g, emb, cfg := shardTestModel(t)
	mk := func(opts ...Option) *Engine {
		all := append([]Option{WithIndex(IndexConfig{
			IVF: true, NList: 3, NProbe: 3, FP16: true, Shards: 2,
		})}, opts...)
		eng, err := New(g, emb, cfg, all...)
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	incr := mk()
	full := mk(WithManualIndexRebuild())
	edges := g.Edges()[:2]
	if _, err := incr.ApplyEdges(edges); err != nil {
		t.Fatal(err)
	}
	if _, err := full.ApplyEdges(edges); err != nil {
		t.Fatal(err)
	}
	incr.WaitForIndex()
	full.RebuildIndex()
	for _, mode := range []string{ModeFP16, ModeIVFFP16} {
		for u := 0; u < g.N; u += 7 {
			want, err := full.TopLinks(u, 8, mode, 1000)
			if err != nil {
				t.Fatal(err)
			}
			got, err := incr.TopLinks(u, 8, mode, 1000)
			if err != nil {
				t.Fatal(err)
			}
			if got.Backend != want.Backend || got.Version != want.Version {
				t.Fatalf("mode %q u=%d: backend %q v%d vs %q v%d",
					mode, u, got.Backend, got.Version, want.Backend, want.Version)
			}
			for i := range want.Results {
				if got.Results[i] != want.Results[i] {
					t.Fatalf("mode %q u=%d rank=%d: %v != %v", mode, u, i, got.Results[i], want.Results[i])
				}
			}
		}
	}
}
