// Package engine owns the lifecycle of a live PANE model: one versioned,
// atomically swappable bundle of embedding + scorer + graph + config.
//
// The seed repo froze a trained embedding behind read-only HTTP handlers;
// the paper's dynamic-update rules (core/dynamic.go) existed but nothing
// could reach them. Engine separates the two paths the way a serving
// system must: reads resolve the current model through one atomic pointer
// load and then never touch shared state again (a request observes one
// consistent model for its whole lifetime, and reads never block on
// writes), while writes are serialized behind a mutex, warm-start a new
// embedding from the previous one, and publish the result as a fresh
// immutable Model with a bumped version. Snapshot/restore round-trips the
// whole state through the single-file bundle format of internal/store.
package engine

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pane/internal/core"
	"pane/internal/graph"
	"pane/internal/obs"
	"pane/internal/store"
	"pane/internal/wal"
)

// Model is one immutable, versioned generation of the served state.
// Everything reachable from a Model is read-only; updates replace the
// whole Model rather than mutating it.
type Model struct {
	// Version starts at 1 for a freshly trained model and increases by one
	// per applied update. It survives snapshot/restore.
	Version uint64
	Cfg     core.Config
	Graph   *graph.Graph
	Emb     *core.Embedding
	Scorer  *core.LinkScorer
}

// Nodes returns |V|.
func (m *Model) Nodes() int { return m.Graph.N }

// Attrs returns |R|.
func (m *Model) Attrs() int { return m.Graph.D }

// Engine coordinates readers and writers around the current Model.
type Engine struct {
	cur     atomic.Pointer[Model]
	writeMu sync.Mutex // serializes updates; never held by readers

	sweeps int // CCD sweeps per warm-start update

	// refreshThreshold is the dirty-row fraction at or below which an
	// update takes the delta path: restricted warm-start sweeps in the
	// model update, and incremental per-shard index refresh. Above it (or
	// at 0) the full paths run. See WithRefreshThreshold.
	refreshThreshold float64

	// affinityThreshold is the frontier fraction at or below which the
	// model side of an update patches the retained affinity recurrence
	// state instead of re-running the full APMI recurrence; 0 disables the
	// retained state entirely (every update recomputes affinity from
	// scratch, the pre-PR behavior). See WithAffinityThreshold.
	affinityThreshold float64

	// affState is the retained pre-normalization recurrence state the
	// incremental model updates patch, valid for exactly affVersion. Both
	// are guarded by writeMu (apply is the only reader and writer); nil
	// until the first update lands with the affinity path enabled.
	affState   *core.AffinityState
	affVersion uint64

	// obs, when set, receives one UpdateStats per applied update.
	obs func(UpdateStats)

	// optErr records the first invalid construction option; newEngine
	// fails with it instead of serving a silently-corrected configuration.
	optErr error

	// reg is the obs registry every engine counter, gauge, and stage
	// histogram lives in; met holds the pre-resolved handles the hot paths
	// record through. IndexStatus and AffinityStatus read the same handles,
	// so /healthz and /metrics cannot disagree. Per-engine by default
	// (WithMetricsRegistry shares one across engine + HTTP layer).
	reg *obs.Registry
	met *engineMetrics

	// Sharded serving-index state (see index.go). Each shard's index is
	// published separately from cur: queries accept the shard set only
	// when every shard's version matches the model they resolved, so a
	// mid-rebuild (or mixed-generation) set is never consulted.
	idxCfg    *IndexConfig
	idxManual bool
	shards    *shardSet

	// restoredQuant holds a bundle's SQ8 payload for the initial index
	// builds (it is valid for exactly the restored model version; see
	// buildSQ8). The first applied update clears it — no later version
	// can ever match — via an atomic pointer, since shard rebuild workers
	// read it concurrently.
	restoredQuant atomic.Pointer[restoredQuant]

	// restoredHalf holds a bundle's binary16 payload for the initial
	// index builds, with the same lifecycle as restoredQuant: valid for
	// exactly the restored model version, cleared by the first applied
	// update, read concurrently by shard rebuild workers.
	restoredHalf atomic.Pointer[restoredHalf]

	// wal, when attached, receives every applied update's delta before
	// the new version publishes (see AttachWAL in wal.go). Atomic because
	// Snapshot compacts through it without holding writeMu.
	wal atomic.Pointer[wal.Log]

	// epoch is the fencing epoch this engine writes records at (leader)
	// or has accepted records from (follower). It starts at 0, bumps only
	// through Promote (failover) or by applying a record from a newer
	// epoch, and never regresses.
	epoch atomic.Uint32
	// observedEpoch is the highest foreign fencing epoch the engine has
	// been shown (Fence) — by a replication request from a promoted
	// lineage, or by an operator. While it exceeds epoch the engine is
	// deposed: every write fails with ErrFenced.
	observedEpoch atomic.Uint32
}

// ErrFenced reports a write refused because this engine's fencing epoch
// was superseded — a deposed leader, or a record from a deposed lineage.
// Callers detect it with errors.Is.
var ErrFenced = errors.New("engine: fenced by a newer epoch")

// restoredQuant pairs a bundle's quantized payload with the only model
// version it encodes.
type restoredQuant struct {
	version      uint64
	links, attrs store.QuantizedMatrix
}

// restoredHalf pairs a bundle's binary16 payload with the only model
// version it encodes.
type restoredHalf struct {
	version      uint64
	links, attrs store.HalfMatrix
}

// DefaultUpdateSweeps is the number of CCD refinement sweeps an update
// runs from the previous solution. Small graph deltas move the optimum of
// Equation (4) only slightly, so 2 sweeps recover retrain-level fit (see
// examples/dynamicupdates).
const DefaultUpdateSweeps = 2

// DefaultRefreshThreshold is the dirty-row fraction at or below which
// updates take the delta path. 20% is well past the crossover where
// patching rows stops paying against streaming a full rebuild.
const DefaultRefreshThreshold = 0.2

// DefaultAffinityThreshold is the frontier fraction at or below which
// incremental updates patch the retained affinity state instead of
// re-running the full recurrence, mirroring DefaultRefreshThreshold: a
// frontier past 20% of the nodes re-runs so much of the recurrence that
// the restricted pass stops paying.
const DefaultAffinityThreshold = 0.2

// affinityDriftRebuild bounds the retained state's advisory drift
// estimate (incrementally-maintained column sums accumulate float error
// across chained deltas). Past it, the next update rebuilds the state
// from scratch — measured drift over hundreds of chained deltas stays
// below 1e-9, so this trips only on pathological update streams.
const affinityDriftRebuild = 1e-6

// Option configures an Engine.
type Option func(*Engine)

// fail records err as the construction error (first one wins); New/Open
// return it instead of building an engine from an invalid option.
func (e *Engine) fail(err error) {
	if e.optErr == nil {
		e.optErr = err
	}
}

// WithUpdateSweeps overrides the CCD sweep count used per dynamic update.
func WithUpdateSweeps(n int) Option {
	return func(e *Engine) {
		if n > 0 {
			e.sweeps = n
		}
	}
}

// WithRefreshThreshold sets the dirty-row fraction (of the node and
// attribute row counts respectively) at or below which an update runs the
// delta path — restricted warm-start sweeps plus incremental per-shard
// index refresh — instead of the full rebuild. 0 disables the delta path
// entirely; 1 always takes it. Values outside [0, 1] are a construction
// error.
func WithRefreshThreshold(t float64) Option {
	return func(e *Engine) {
		if t < 0 || t > 1 {
			e.fail(fmt.Errorf("engine: refresh threshold must be in [0,1], got %v", t))
			return
		}
		e.refreshThreshold = t
	}
}

// WithAffinityThreshold sets the frontier fraction (of the node count) at
// or below which the model side of an incremental update patches the
// retained affinity recurrence state over the delta's t-hop frontier —
// O(Δ) instead of the full O(n·d·t) recurrence — and enables the low-rank
// Gram correction that keeps small attribute deltas off the full
// link-space rebuild. 0 disables both (every update recomputes affinity
// from scratch and attribute deltas poison the link space), trading the
// state's 2·t·n·d float memory retention for the old behavior — the
// serving escape hatch behind paneserve's -full-affinity. Values outside
// [0, 1] are a construction error. The affinity path only runs for
// updates the refresh threshold already routed to the delta path.
func WithAffinityThreshold(t float64) Option {
	return func(e *Engine) {
		if t < 0 || t > 1 {
			e.fail(fmt.Errorf("engine: affinity threshold must be in [0,1], got %v", t))
			return
		}
		e.affinityThreshold = t
	}
}

// UpdateStats describes one applied update for observers: the published
// version, the row delta the update touched, and whether the delta path
// (restricted sweeps + incremental index refresh eligibility) ran.
type UpdateStats struct {
	Version     uint64
	DirtyNodes  int
	DirtyAttrs  int
	Incremental bool

	// Model-side timing split (benchexp reports these as
	// affinity_seconds / ccd_seconds; the remainder of the model wall time
	// is graph merge + scorer + publish). Zero when the affinity path is
	// disabled — the legacy paths don't separate the two phases.
	AffinitySeconds float64
	CCDSeconds      float64
	// AffinityIncremental reports whether the recurrence was patched over
	// the delta's frontier (vs re-run in full); AffinityFrontier is the
	// total frontier size (forward + backward rows re-run).
	AffinityIncremental bool
	AffinityFrontier    int
	// GramCorrection reports whether an attribute delta shipped a
	// low-rank Z-correction to the index instead of poisoning the link
	// space into full rebuilds.
	GramCorrection bool
}

// WithUpdateObserver registers fn to be called synchronously after every
// applied update (under the write lock — keep it cheap). Servers use it
// to log per-update delta sizes.
func WithUpdateObserver(fn func(UpdateStats)) Option {
	return func(e *Engine) { e.obs = fn }
}

// New wraps an already-trained embedding in an Engine at version 1.
func New(g *graph.Graph, emb *core.Embedding, cfg core.Config, opts ...Option) (*Engine, error) {
	return newEngine(g, emb, cfg, 1, opts)
}

func newEngine(g *graph.Graph, emb *core.Embedding, cfg core.Config, version uint64, opts []Option) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if emb.Xf.Rows != g.N || emb.Y.Rows != g.D || emb.K() != cfg.K {
		return nil, fmt.Errorf("engine: embedding %dx%d k=%d does not fit graph %dx%d with config K=%d",
			emb.Xf.Rows, emb.Y.Rows, emb.K(), g.N, g.D, cfg.K)
	}
	e := &Engine{
		sweeps:            DefaultUpdateSweeps,
		refreshThreshold:  DefaultRefreshThreshold,
		affinityThreshold: DefaultAffinityThreshold,
	}
	for _, opt := range opts {
		opt(e)
	}
	if e.optErr != nil {
		return nil, e.optErr
	}
	if e.idxCfg != nil {
		if err := e.idxCfg.validate(g.N); err != nil {
			return nil, err
		}
	}
	if e.reg == nil {
		e.reg = obs.NewRegistry()
	}
	e.met = newEngineMetrics(e.reg)
	e.met.modelVersion.Set(float64(version))
	e.cur.Store(&Model{
		Version: version,
		Cfg:     cfg,
		Graph:   g,
		Emb:     emb,
		Scorer:  core.NewLinkScorer(emb),
	})
	// Lay out the shard set (the node and attribute universes are fixed,
	// so the row ranges never change) and build the initial per-shard
	// indexes synchronously — concurrently across shards — so a fresh
	// engine serves indexed queries from its first request.
	if e.idxCfg != nil {
		e.shards = newShardSet(g.N, g.D, e.idxCfg.Shards)
		e.RebuildIndex()
	}
	return e, nil
}

// Train trains a fresh model for g (parallel when cfg.Threads > 1) and
// returns it wrapped in an Engine at version 1.
func Train(g *graph.Graph, cfg core.Config, opts ...Option) (*Engine, error) {
	var (
		emb *core.Embedding
		err error
	)
	if cfg.Threads > 1 {
		emb, err = core.ParallelPANE(g, cfg)
	} else {
		emb, err = core.PANE(g, cfg)
	}
	if err != nil {
		return nil, err
	}
	return New(g, emb, cfg, opts...)
}

// Model returns the current model. The returned value is immutable and
// remains valid (and internally consistent) even as updates land; callers
// doing several related reads should resolve it once and reuse it.
func (e *Engine) Model() *Model { return e.cur.Load() }

// Version returns the current model version.
func (e *Engine) Version() uint64 { return e.Model().Version }

// Epoch returns the fencing epoch the engine currently writes (or
// accepts replicated records) at. 0 until a failover promotes somebody.
func (e *Engine) Epoch() uint32 { return e.epoch.Load() }

// Deposed reports whether a newer fencing epoch has been observed: a
// deposed engine keeps serving reads but refuses every write with
// ErrFenced.
func (e *Engine) Deposed() bool { return e.observedEpoch.Load() > e.epoch.Load() }

// ObservedEpoch returns the highest fencing epoch the engine knows to
// exist anywhere — its own, or a newer one it was fenced with. A
// deposed server advertises this (not its own stale epoch) so callers
// learn which lineage superseded it.
func (e *Engine) ObservedEpoch() uint32 {
	if seen := e.observedEpoch.Load(); seen > e.epoch.Load() {
		return seen
	}
	return e.epoch.Load()
}

// Fence records that epoch exists somewhere in the deployment. If it
// exceeds the engine's own epoch the engine is deposed — writes fail
// from the next applyLocked on, while reads stay live (degraded mode).
// The replication handlers call this when a request arrives from a
// follower that already crossed a failover; idempotent and monotonic.
func (e *Engine) Fence(epoch uint32) {
	for {
		cur := e.observedEpoch.Load()
		if epoch <= cur {
			return
		}
		if e.observedEpoch.CompareAndSwap(cur, epoch) {
			if epoch > e.epoch.Load() {
				e.met.deposed.Set(1)
			}
			return
		}
	}
}

// Promote raises the engine's fencing epoch — the follower-to-leader
// transition. The new epoch must exceed both the engine's own epoch and
// every epoch it has observed; promoting below an observed epoch would
// fork a lineage the rest of the deployment already fenced off.
func (e *Engine) Promote(epoch uint32) error {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	if own := e.epoch.Load(); epoch <= own {
		return fmt.Errorf("engine: promotion epoch %d does not advance own epoch %d", epoch, own)
	}
	if seen := e.observedEpoch.Load(); epoch <= seen {
		return fmt.Errorf("engine: promotion epoch %d not above observed epoch %d", epoch, seen)
	}
	if w := e.wal.Load(); w != nil {
		if last := w.LastEpoch(); epoch < last {
			return fmt.Errorf("engine: promotion epoch %d below the log's epoch %d", epoch, last)
		}
	}
	e.epoch.Store(epoch)
	e.met.epoch.Set(float64(epoch))
	e.met.deposed.Set(0)
	return nil
}

// ApplyEdges inserts directed edges into the graph and publishes a new
// model version whose embedding is warm-started from the previous one.
// Inserting an existing edge is a no-op on the graph but still refines
// and republishes. The node universe is fixed: out-of-range endpoints are
// rejected and no new version is published.
func (e *Engine) ApplyEdges(edges []graph.Edge) (*Model, error) {
	if len(edges) == 0 {
		return nil, fmt.Errorf("engine: empty edge update")
	}
	return e.apply(edges, nil)
}

// ApplyAttrs adds node-attribute weight to the graph (weights are
// additive, matching the weighted set ER of §2.1) and publishes a new
// warm-started model version.
func (e *Engine) ApplyAttrs(attrs []graph.AttrEntry) (*Model, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("engine: empty attribute update")
	}
	return e.apply(nil, attrs)
}

func (e *Engine) apply(edges []graph.Edge, attrs []graph.AttrEntry) (*Model, error) {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	return e.applyLocked(edges, attrs)
}

func (e *Engine) applyLocked(edges []graph.Edge, attrs []graph.AttrEntry) (*Model, error) {
	// Fencing: a deposed engine (a newer epoch exists somewhere) must not
	// produce new versions — they would collide with the promoted
	// lineage's versions under a different epoch.
	ep := e.epoch.Load()
	if seen := e.observedEpoch.Load(); seen > ep {
		e.met.fenced.Inc()
		return nil, fmt.Errorf("%w: this engine is at epoch %d, epoch %d exists", ErrFenced, ep, seen)
	}
	prev := e.Model()
	g, err := prev.Graph.WithUpdates(edges, attrs)
	if err != nil {
		return nil, err
	}
	// The update's row delta: exactly the node and attribute rows whose
	// embedding rows a restricted warm start would move. Small deltas take
	// the delta path — restricted sweeps leave every untouched row
	// bit-identical, which is what lets the index refresh O(Δ) rows
	// instead of rebuilding O(n/S) per shard.
	touched := touchedDelta(edges, attrs)
	thr := e.refreshThreshold
	incremental := thr > 0 &&
		float64(len(touched.Nodes)) <= thr*float64(g.N) &&
		float64(len(touched.Attrs)) <= thr*float64(g.D)
	var (
		emb   *core.Embedding
		affUp core.AffinityUpdate
		stats = UpdateStats{
			Version: prev.Version + 1, Incremental: incremental,
			DirtyNodes: len(touched.Nodes), DirtyAttrs: len(touched.Attrs),
		}
	)
	if e.affinityThreshold > 0 && thr > 0 {
		// Affinity path: serve the recurrence from the retained state,
		// patching it over the delta's frontier when the state is current
		// and the frontier fits the budget, rebuilding it otherwise. The
		// state is graph-derived only, so a rebuilt state is valid for any
		// later delta regardless of how this update refines the embedding.
		t0 := time.Now()
		st := e.affState
		stale := st == nil || e.affVersion != prev.Version ||
			st.Drift() > affinityDriftRebuild || !incremental
		if !stale {
			affUp, err = core.UpdateAffinity(st, g, edges, attrs, e.affinityThreshold, threads(prev.Cfg))
			if err != nil {
				return nil, err
			}
			stale = !affUp.Incremental
		}
		if stale {
			st = core.NewAffinityState(g, prev.Cfg.Alpha, prev.Cfg.Iterations(), threads(prev.Cfg))
			e.met.affPassFull.Inc()
		} else {
			e.met.affPassIncr.Inc()
		}
		e.affState, e.affVersion = st, prev.Version+1
		e.met.affFrontier.Set(float64(affUp.FrontierF + affUp.FrontierB))
		e.met.affDrift.Set(st.Drift())
		stats.AffinitySeconds = time.Since(t0).Seconds()
		if stale {
			e.met.affDurFull.ObserveSeconds(stats.AffinitySeconds)
		} else {
			e.met.affDurIncr.ObserveSeconds(stats.AffinitySeconds)
		}
		stats.AffinityIncremental = !stale
		stats.AffinityFrontier = affUp.FrontierF + affUp.FrontierB
		t1 := time.Now()
		if incremental {
			emb = core.RefineRowsFromState(st, prev.Emb, prev.Cfg, e.sweeps, threads(prev.Cfg), touched)
		} else {
			f, b := st.Affinity(threads(prev.Cfg))
			emb = core.RefineFrom(prev.Emb, f, b, prev.Cfg, e.sweeps, threads(prev.Cfg))
		}
		stats.CCDSeconds = time.Since(t1).Seconds()
		e.met.ccdDur.ObserveSeconds(stats.CCDSeconds)
	} else if incremental {
		emb, err = core.UpdateEmbeddingRows(g, prev.Emb, prev.Cfg, e.sweeps, touched)
	} else {
		emb, err = core.UpdateEmbedding(g, prev.Emb, prev.Cfg, e.sweeps)
	}
	if err != nil {
		return nil, err
	}
	next := &Model{
		Version: prev.Version + 1,
		Cfg:     prev.Cfg,
		Graph:   g,
		Emb:     emb,
		Scorer:  core.NewLinkScorer(emb),
	}
	// Write-ahead: the update's delta must be durable under the log's
	// sync policy before the version it produced becomes visible. On
	// append failure nothing publishes — the caller sees the error and
	// the model stays at prev (the retained affinity state self-heals:
	// its version no longer matches, so the next update rebuilds it).
	if w := e.wal.Load(); w != nil {
		if err := w.Append(wal.Record{Version: next.Version, Epoch: ep, Edges: edges, Attrs: attrs}); err != nil {
			return nil, err
		}
	}
	e.cur.Store(next)
	e.met.modelVersion.Set(float64(next.Version))
	if incremental {
		e.met.updIncr.Inc()
	} else {
		e.met.updFull.Inc()
	}
	// A restored quantized or binary16 payload encodes exactly the
	// restored version; once the model moves past it, free it.
	e.restoredQuant.Store(nil)
	e.restoredHalf.Store(nil)
	// The model is live immediately; the index catches up asynchronously
	// and queries fall back to the scan path until it publishes. The delta
	// tells the per-shard workers which rows to refresh: a full-sweep
	// update dirties everything, a restricted one only its touched rows —
	// except that any moved Y row shifts the Gram matrix G = YᵀY and with
	// it every link candidate row, so the link space goes full then.
	d := idxDelta{target: next.Version}
	if incremental {
		d.links = touched.Nodes
		d.attrs = touched.Attrs
		d.rows = touched.Rows()
		if len(touched.Attrs) > 0 {
			// An attribute delta moves Y rows and with them G = YᵀY — every
			// link candidate row shifts. When the affinity path is on and
			// the delta is low-rank relative to the space (2·|Δattrs| <
			// k/2), ship the correction Z += Xb·ΔG instead of poisoning the
			// link space into per-shard full rebuilds: the restricted
			// refinement moved exactly touched.Attrs' Y rows, so the
			// correction plus exact recomputation of the dirty node rows
			// reproduces the new candidate matrix up to float round-off.
			if gd := e.gramFor(prev.Emb, emb, touched.Attrs); gd != nil {
				d.gram = gd
				stats.GramCorrection = true
				e.met.gram.Inc()
			} else {
				d.linksFull = true
			}
		}
	} else {
		d.linksFull, d.attrsFull = true, true
		d.rows = g.N + g.D
	}
	e.scheduleIndexRebuild(d)
	if e.obs != nil {
		e.obs(stats)
	}
	return next, nil
}

// threads clamps a config's build parallelism to at least 1.
func threads(cfg core.Config) int {
	if cfg.Threads < 1 {
		return 1
	}
	return cfg.Threads
}

// gramFor builds the low-rank link-space correction for an attribute
// delta, or nil when the correction doesn't apply: the affinity path is
// off, or the delta's rank bound 2·|Δattrs| reaches the factor width k/2
// (at which point correcting every row costs as much as the full
// transform it replaces).
func (e *Engine) gramFor(prevEmb, emb *core.Embedding, attrs []int) *core.GramDelta {
	if e.affinityThreshold <= 0 || 2*len(attrs) >= emb.Y.Cols {
		return nil
	}
	gd, err := core.NewGramDelta(prevEmb.Y, emb.Y, attrs)
	if err != nil {
		return nil
	}
	return gd
}

// AffinityStatus reports the model-side incremental-update state for
// monitoring (served under healthz next to the index status).
type AffinityStatus struct {
	// Enabled reports whether updates retain and patch the affinity
	// recurrence state (affinity and refresh thresholds both non-zero).
	Enabled bool `json:"enabled"`
	// Threshold is the frontier fraction budget in effect.
	Threshold float64 `json:"threshold"`
	// Incremental / Full count updates whose recurrence was patched over
	// the delta's frontier vs re-run from scratch.
	Incremental uint64 `json:"affinity_incremental"`
	Full        uint64 `json:"affinity_full"`
	// FrontierRows is the most recent update's total frontier size (the
	// forward plus backward rows whose recurrence was re-run).
	FrontierRows uint64 `json:"affinity_frontier_rows"`
	// Drift is the retained state's advisory column-sum drift estimate;
	// past the internal rebuild bound the next update rebuilds the state.
	Drift float64 `json:"drift"`
	// GramCorrections counts attribute updates served through the
	// low-rank link-space correction instead of full rebuilds.
	GramCorrections uint64 `json:"gram_corrections"`
}

// AffinityStatus returns the current model-side update accounting, read
// from the same obs handles GET /metrics exposes.
func (e *Engine) AffinityStatus() AffinityStatus {
	return AffinityStatus{
		Enabled:         e.affinityThreshold > 0 && e.refreshThreshold > 0,
		Threshold:       e.affinityThreshold,
		Incremental:     e.met.affPassIncr.Value(),
		Full:            e.met.affPassFull.Value(),
		FrontierRows:    uint64(e.met.affFrontier.Value()),
		Drift:           e.met.affDrift.Value(),
		GramCorrections: e.met.gram.Value(),
	}
}

// touchedDelta collects the rows a graph update directly touches: both
// endpoints of every inserted edge (an update refines a node's forward
// and backward rows together) plus the node and attribute of every
// attribute entry, each sorted and deduplicated. Out-of-range ids were
// already rejected by Graph.WithUpdates.
func touchedDelta(edges []graph.Edge, attrs []graph.AttrEntry) core.UpdateDelta {
	nodeSet := make(map[int]struct{}, 2*len(edges)+len(attrs))
	for _, ed := range edges {
		nodeSet[ed.Src] = struct{}{}
		nodeSet[ed.Dst] = struct{}{}
	}
	attrSet := make(map[int]struct{}, len(attrs))
	for _, a := range attrs {
		nodeSet[a.Node] = struct{}{}
		attrSet[a.Attr] = struct{}{}
	}
	return core.UpdateDelta{Nodes: sortedKeys(nodeSet), Attrs: sortedKeys(attrSet)}
}

func sortedKeys(set map[int]struct{}) []int {
	if len(set) == 0 {
		return nil
	}
	out := make([]int, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// Snapshot atomically persists the current model as a single bundle file
// and returns the model that was written. It reads the model through the
// same atomic pointer as queries, so a snapshot taken mid-update-stream
// is a consistent point-in-time version, never a torn mix of two. With a
// WAL attached, a completed snapshot also compacts the log up to the
// version the bundle recorded — see compactAfterSnapshot for why that
// watermark, and never the live version, is the safe one.
func (e *Engine) Snapshot(path string) (*Model, error) {
	m := e.Model()
	b := e.bundleFor(m)
	if err := store.SaveBundleFile(path, b); err != nil {
		return nil, err
	}
	if err := e.compactAfterSnapshot(b); err != nil {
		return nil, err
	}
	return m, nil
}

// CurrentBundle assembles (without persisting) the bundle for the
// current model — what the /bundle endpoint streams to followers.
func (e *Engine) CurrentBundle() *store.Bundle {
	return e.bundleFor(e.Model())
}

// bundleFor builds the store bundle encoding model m.
func (e *Engine) bundleFor(m *Model) *store.Bundle {
	b := &store.Bundle{
		ModelVersion: m.Version,
		Cfg:          m.Cfg,
		Xf:           m.Emb.Xf,
		Xb:           m.Emb.Xb,
		Y:            m.Emb.Y,
		Adj:          m.Graph.Adj,
		Attr:         m.Graph.Attr,
		Labels:       m.Graph.Labels,
	}
	if c := e.idxCfg; c != nil {
		// writeIndexMeta normalizes negative tuning values to 0 ("use
		// defaults") so the written bundle always reloads.
		b.Index = &store.IndexMeta{
			IVF: c.IVF, NList: c.NList, NProbe: c.NProbe, Seed: c.Seed, Shards: c.Shards,
			Quantize: c.Quantize, Rerank: c.Rerank, FP16: c.FP16,
		}
		if c.Quantize {
			// Optional: ship the SQ8 encodings so the restored engine
			// publishes its quantized tier without re-quantizing. Only a
			// consistent shard cut at m's exact version is usable; mid-
			// rebuild the payload is simply omitted.
			b.Quant = e.assembleQuant(m)
		}
		if c.FP16 {
			// Same contract for the binary16 encodings.
			b.Half = e.assembleHalf(m)
		}
	}
	return b
}

// Open restores an Engine from a bundle file written by Snapshot (or by
// cmd/pane). The restored model keeps its version, so monitoring sees the
// same version before and after a restart. A bundle that recorded an
// index configuration restores it too (the index itself is rebuilt, not
// deserialized); caller options run afterwards and may override or
// disable it (WithIndex, WithoutIndex).
func Open(path string, opts ...Option) (*Engine, error) {
	b, err := store.LoadBundleFile(path)
	if err != nil {
		return nil, err
	}
	return FromBundle(b, opts...)
}

// FromBundle restores an Engine from an in-memory bundle — what Open
// does after reading the file, and what a follower does with a bundle
// fetched from its leader.
func FromBundle(b *store.Bundle, opts ...Option) (*Engine, error) {
	g, err := graph.FromCSR(b.Adj, b.Attr, b.Labels)
	if err != nil {
		return nil, err
	}
	emb := &core.Embedding{Xf: b.Xf, Xb: b.Xb, Y: b.Y}
	if im := b.Index; im != nil {
		restore := WithIndex(IndexConfig{
			IVF: im.IVF, NList: im.NList, NProbe: im.NProbe, Seed: im.Seed, Shards: im.Shards,
			Quantize: im.Quantize, Rerank: im.Rerank, FP16: im.FP16,
		})
		opts = append([]Option{restore}, opts...)
	}
	if q := b.Quant; q != nil {
		rq := &restoredQuant{version: b.ModelVersion, links: q.Links, attrs: q.Attrs}
		opts = append([]Option{func(e *Engine) { e.restoredQuant.Store(rq) }}, opts...)
	}
	if h := b.Half; h != nil {
		rh := &restoredHalf{version: b.ModelVersion, links: h.Links, attrs: h.Attrs}
		opts = append([]Option{func(e *Engine) { e.restoredHalf.Store(rh) }}, opts...)
	}
	return newEngine(g, emb, b.Cfg, b.ModelVersion, opts)
}
