package engine

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"pane/internal/core"
	"pane/internal/graph"
)

func testConfig() core.Config {
	return core.Config{K: 4, Alpha: 0.15, Eps: 0.05, Seed: 1}
}

// kp builds the *int K field of a batch Query.
func kp(k int) *int { return &k }

func trainTestEngine(t *testing.T, opts ...Option) *Engine {
	t.Helper()
	eng, err := Train(graph.RunningExample(), testConfig(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestTrainStartsAtVersionOne(t *testing.T) {
	eng := trainTestEngine(t)
	if eng.Version() != 1 {
		t.Fatalf("fresh engine version = %d, want 1", eng.Version())
	}
	m := eng.Model()
	if m.Nodes() != 6 || m.Attrs() != 3 {
		t.Fatalf("model shape %dx%d", m.Nodes(), m.Attrs())
	}
}

func TestNewRejectsMismatchedShapes(t *testing.T) {
	g := graph.RunningExample()
	emb, err := core.PANE(g, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	bad := testConfig()
	bad.K = 8 // embedding was trained with K=4
	if _, err := New(g, emb, bad); err == nil {
		t.Fatal("mismatched K accepted")
	}
}

func TestApplyEdgesBumpsVersionAndChangesScores(t *testing.T) {
	eng := trainTestEngine(t)
	before := eng.Model()
	scoreBefore := before.Scorer.Directed(0, 5)

	m, err := eng.ApplyEdges([]graph.Edge{{Src: 0, Dst: 5}, {Src: 5, Dst: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Version != 2 {
		t.Fatalf("version = %d, want 2", m.Version)
	}
	if !m.Graph.HasEdge(0, 5) {
		t.Fatal("inserted edge missing from new model's graph")
	}
	if m.Scorer.Directed(0, 5) == scoreBefore {
		t.Fatal("score unchanged after inserting the edge")
	}
	// The old model is untouched: a reader holding it mid-update sees a
	// consistent pre-update world.
	if before.Version != 1 || before.Graph.HasEdge(0, 5) || before.Scorer.Directed(0, 5) != scoreBefore {
		t.Fatal("previous model mutated by update")
	}
}

func TestApplyAttrsAddsWeight(t *testing.T) {
	eng := trainTestEngine(t)
	w0 := eng.Model().Graph.Attr.At(0, 2)
	m, err := eng.ApplyAttrs([]graph.AttrEntry{{Node: 0, Attr: 2, Weight: 1.5}})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Graph.Attr.At(0, 2); got != w0+1.5 {
		t.Fatalf("attribute weight %v, want %v", got, w0+1.5)
	}
	if m.Version != 2 {
		t.Fatalf("version = %d", m.Version)
	}
}

func TestApplyRejectsBadUpdates(t *testing.T) {
	eng := trainTestEngine(t)
	cases := []func() error{
		func() error { _, err := eng.ApplyEdges(nil); return err },
		func() error { _, err := eng.ApplyEdges([]graph.Edge{{Src: 0, Dst: 99}}); return err },
		func() error { _, err := eng.ApplyAttrs(nil); return err },
		func() error { _, err := eng.ApplyAttrs([]graph.AttrEntry{{Node: 0, Attr: 99, Weight: 1}}); return err },
		func() error { _, err := eng.ApplyAttrs([]graph.AttrEntry{{Node: 0, Attr: 0, Weight: -1}}); return err },
	}
	for i, run := range cases {
		if err := run(); err == nil {
			t.Fatalf("case %d: bad update accepted", i)
		}
	}
	if eng.Version() != 1 {
		t.Fatalf("failed updates bumped version to %d", eng.Version())
	}
}

func TestBatchExecutesAgainstOneVersion(t *testing.T) {
	eng := trainTestEngine(t)
	results, version := eng.Execute([]Query{
		{Op: OpLinkScore, Src: 0, Dst: 4},
		{Op: OpAttrScore, Node: 2, Attr: 1},
		{Op: OpTopAttrs, Node: 5, K: kp(2)},
		{Op: OpTopLinks, Src: 0, K: kp(3)},
		{Op: "bogus"},
	})
	if version != 1 {
		t.Fatalf("batch version %d", version)
	}
	m := eng.Model()
	if *results[0].Score != m.Scorer.Directed(0, 4) || *results[0].Undirected != m.Scorer.Undirected(0, 4) {
		t.Fatalf("link result %+v", results[0])
	}
	if *results[1].Score != m.Emb.AttrScore(2, 1) {
		t.Fatalf("attr result %+v", results[1])
	}
	if len(results[2].Top) != 2 || len(results[3].Top) != 3 {
		t.Fatalf("top results %+v / %+v", results[2], results[3])
	}
	if results[4].Err == "" {
		t.Fatal("unknown op produced no error")
	}
	for i, r := range results[:4] {
		if r.Err != "" {
			t.Fatalf("result %d unexpectedly failed: %s", i, r.Err)
		}
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	eng := trainTestEngine(t)
	if _, err := eng.ApplyEdges([]graph.Edge{{Src: 1, Dst: 5}}); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	p1 := filepath.Join(dir, "a.pane")
	p2 := filepath.Join(dir, "b.pane")
	if _, err := eng.Snapshot(p1); err != nil {
		t.Fatal(err)
	}
	restored, err := Open(p1)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Version() != 2 {
		t.Fatalf("restored version %d, want 2", restored.Version())
	}

	// Snapshotting the restored engine must reproduce the file byte for
	// byte: the bundle format is deterministic and lossless.
	if _, err := restored.Snapshot(p2); err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("snapshot not bit-identical after restore: %d vs %d bytes", len(b1), len(b2))
	}

	// And the restored model answers exactly like the live one.
	qs := []Query{{Op: OpLinkScore, Src: 1, Dst: 5}, {Op: OpAttrScore, Node: 0, Attr: 0}}
	live := eng.Model().Execute(qs)
	back := restored.Model().Execute(qs)
	for i := range qs {
		if *live[i].Score != *back[i].Score {
			t.Fatalf("query %d: restored score %v != live %v", i, *back[i].Score, *live[i].Score)
		}
	}
	// A restored engine keeps accepting updates from where it left off.
	m, err := restored.ApplyEdges([]graph.Edge{{Src: 2, Dst: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Version != 3 {
		t.Fatalf("post-restore update version %d, want 3", m.Version)
	}
}

// TestConcurrentReadsUpdatesSnapshots hammers the engine from all four
// sides at once — run under -race this is the proof that reads resolve
// one immutable model and never observe a torn update, that the serving
// index never answers for a version other than the model it was resolved
// against (queries mid-rebuild degrade to the scan backend instead of
// serving stale rankings), and that snapshots taken mid-update-stream
// are consistent.
func TestConcurrentReadsUpdatesSnapshots(t *testing.T) {
	// nprobe == nlist so IVF answers are full-coverage: result counts stay
	// deterministic while the race test hammers both search paths.
	eng := trainTestEngine(t, WithIndex(IndexConfig{IVF: true, NList: 2, NProbe: 2}))
	dir := t.TempDir()
	const updates = 8

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Readers: single queries, batches, and indexed top-k in both modes.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				m := eng.Model()
				u, v := rng.Intn(m.Nodes()), rng.Intn(m.Nodes())
				_ = m.Scorer.Directed(u, v)
				_ = m.Emb.AttrScore(u, rng.Intn(m.Attrs()))
				results, _ := eng.Execute([]Query{
					{Op: OpLinkScore, Src: u, Dst: v},
					{Op: OpTopLinks, Src: u, K: kp(3)},
				})
				for _, r := range results {
					if r.Err != "" {
						t.Errorf("reader: %s", r.Err)
						return
					}
				}
				mode := ModeExact
				if rng.Intn(2) == 1 {
					mode = ModeIVF
				}
				ans, err := eng.TopLinks(u, 3, mode, 0)
				if err != nil {
					t.Errorf("indexed reader: %v", err)
					return
				}
				switch ans.Backend {
				case BackendExact, BackendIVF, BackendScan:
				default:
					t.Errorf("indexed reader: unknown backend %q", ans.Backend)
					return
				}
				if len(ans.Results) != 3 {
					t.Errorf("indexed reader: %d results", len(ans.Results))
					return
				}
			}
		}(int64(i))
	}

	// Snapshotters: persist whatever version is current, repeatedly, from
	// TWO goroutines racing on the same path — mirroring paneserve, where
	// the periodic ticker and POST /snapshot can fire together. A fixed
	// iteration count (not stop-gated) guarantees snapshots overlap the
	// update stream even if the updates finish quickly.
	var snaps atomic.Int64
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			path := filepath.Join(dir, "live.pane")
			for i := 0; i < 5; i++ {
				if _, err := eng.Snapshot(path); err != nil {
					t.Errorf("snapshot: %v", err)
					return
				}
				snaps.Add(1)
			}
		}()
	}

	// Writer: a stream of edge and attribute updates.
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < updates; i++ {
		var err error
		if i%2 == 0 {
			_, err = eng.ApplyEdges([]graph.Edge{{Src: rng.Intn(6), Dst: rng.Intn(6)}})
		} else {
			_, err = eng.ApplyAttrs([]graph.AttrEntry{{Node: rng.Intn(6), Attr: rng.Intn(3), Weight: 0.1}})
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	if eng.Version() != 1+updates {
		t.Fatalf("final version %d, want %d", eng.Version(), 1+updates)
	}
	// Once the rebuild queue drains, the index serves the final version
	// again: no rebuild was lost and none outran the model.
	eng.WaitForIndex()
	if st := eng.IndexStatus(); !st.Enabled || st.Version != eng.Version() {
		t.Fatalf("index status %+v after quiesce, model version %d", st, eng.Version())
	}
	if ans, err := eng.TopLinks(0, 3, ModeIVF, 0); err != nil || ans.Backend != BackendIVF {
		t.Fatalf("post-quiesce ivf query: backend %q err %v", ans.Backend, err)
	}
	if snaps.Load() == 0 {
		t.Fatal("snapshotter never ran")
	}
	// The last snapshot on disk is some consistent version ≤ final.
	restored, err := Open(filepath.Join(dir, "live.pane"))
	if err != nil {
		t.Fatalf("restoring mid-stream snapshot: %v", err)
	}
	if v := restored.Version(); v < 1 || v > 1+updates {
		t.Fatalf("restored version %d out of range", v)
	}
}
