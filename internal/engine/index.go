package engine

// Per-version top-k index lifecycle. An Engine with indexing enabled
// maintains one immutable indexSet per published model version: an exact
// backend over the precomputed candidate matrices (Z = Xb·G for links, Y
// for attributes) and, optionally, IVF backends over the same vectors for
// approximate sub-linear search.
//
// The set is published through its own atomic pointer, separate from the
// model pointer. A query resolves the model first, then accepts the index
// only if its version matches exactly; otherwise it answers from the
// model's brute-force scan path. The index is therefore never stale:
// between an update landing and the asynchronous rebuild publishing,
// queries degrade to the PR-1 scan (reported as backend "scan") but keep
// answering at the current model version.

import (
	"fmt"

	"pane/internal/core"
	"pane/internal/index"
)

// Query modes accepted by the top-k paths.
const (
	ModeExact = "exact" // exact answer: indexed scan, or brute force mid-rebuild
	ModeIVF   = "ivf"   // approximate answer from the IVF backend when fresh
)

// Backend labels reported with every top-k answer.
const (
	BackendExact = "exact" // precomputed candidate matrix, parallel blocked scan
	BackendIVF   = "ivf"   // inverted-file approximate search
	BackendScan  = "scan"  // per-query brute force; no fresh index (disabled or mid-rebuild)
)

// IndexConfig selects and tunes the per-version indexes an Engine
// maintains. The zero value enables the exact backend only; defaults are
// resolved against the model at build time.
type IndexConfig struct {
	// IVF additionally builds the approximate backend.
	IVF bool
	// NList is the IVF coarse cluster count; 0 means ~sqrt(n).
	NList int
	// NProbe is the default number of IVF lists probed per query;
	// 0 means max(1, nlist/8). Queries can override it per request.
	NProbe int
	// Threads is the index build/search parallelism; 0 follows the model
	// config's Threads.
	Threads int
	// Seed drives k-means determinism; 0 follows the model config's Seed.
	Seed int64
}

// WithIndex enables per-version top-k indexing with the given config.
func WithIndex(cfg IndexConfig) Option {
	return func(e *Engine) {
		c := cfg
		e.idxCfg = &c
	}
}

// WithoutIndex disables indexing even if a restored bundle carries an
// index configuration (engine.Open applies bundle settings first, then
// caller options).
func WithoutIndex() Option {
	return func(e *Engine) { e.idxCfg = nil }
}

// WithFallbackIndex enables indexing with cfg only when no configuration
// was set earlier in the option list — notably when a restored bundle
// did not record one. It lets a server default to indexed serving while
// still honoring explicit bundle or caller settings.
func WithFallbackIndex(cfg IndexConfig) Option {
	return func(e *Engine) {
		if e.idxCfg == nil {
			c := cfg
			e.idxCfg = &c
		}
	}
}

// WithManualIndexRebuild turns off the automatic asynchronous rebuild
// after updates; callers invoke RebuildIndex themselves. Tests use this
// to pin the "update applied, index not yet republished" state
// deterministically.
func WithManualIndexRebuild() Option {
	return func(e *Engine) { e.idxManual = true }
}

// indexSet is one immutable generation of serving indexes, valid for
// exactly one model version.
type indexSet struct {
	version  uint64
	links    *index.Exact // over Z = Xb·G; query vector is Xf[u]
	attrs    *index.Exact // over Y; query vector is Xf[v]+Xb[v]
	linksIVF *index.IVF   // nil unless cfg.IVF
	attrsIVF *index.IVF
}

// buildIndexSet materializes the indexes for m.
func buildIndexSet(m *Model, cfg IndexConfig) *indexSet {
	threads := cfg.Threads
	if threads <= 0 {
		threads = m.Cfg.Threads
	}
	if threads < 1 {
		threads = 1
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = m.Cfg.Seed
	}
	z := m.Scorer.TransformedCandidates(threads)
	s := &indexSet{
		version: m.Version,
		links:   index.NewExact(z, threads),
		attrs:   index.NewExact(m.Emb.Y, threads),
	}
	if cfg.IVF {
		ivfCfg := index.IVFConfig{
			NList: cfg.NList, NProbe: cfg.NProbe,
			Seed: seed, Threads: threads,
		}
		s.linksIVF = index.BuildIVF(z, ivfCfg)
		s.attrsIVF = index.BuildIVF(m.Emb.Y, ivfCfg)
	}
	return s
}

// freshIndex returns the published index set only when it serves exactly
// m's version; anything else (disabled, still building, or built for a
// different generation) returns nil and the caller scans.
func (e *Engine) freshIndex(m *Model) *indexSet {
	s := e.idx.Load()
	if s == nil || s.version != m.Version {
		return nil
	}
	return s
}

// scheduleIndexRebuild records that the published model moved ahead of
// the index and ensures one worker goroutine is (or becomes) responsible
// for catching up. No-op when indexing is disabled or manual. Callers
// publish the new model BEFORE calling this, so marking dirty afterwards
// guarantees the version is covered: the running worker re-checks the
// flag before exiting (under idxStateMu, so a concurrent mark either is
// seen by that check or observes idxRunning == false and spawns a new
// worker), and the worker resolves the model fresh on every build. A
// sustained update stream therefore collapses into at most one build
// behind the in-flight one, with never more than one goroutine alive.
func (e *Engine) scheduleIndexRebuild() {
	if e.idxCfg == nil || e.idxManual {
		return
	}
	e.idxStateMu.Lock()
	e.idxDirty = true
	if e.idxRunning {
		e.idxStateMu.Unlock()
		return
	}
	e.idxRunning = true
	e.idxStateMu.Unlock()
	go e.indexWorker()
}

// indexWorker drains the dirty flag, rebuilding toward whatever model is
// current each iteration, and announces idleness on exit.
func (e *Engine) indexWorker() {
	for {
		e.idxStateMu.Lock()
		if !e.idxDirty {
			e.idxRunning = false
			e.idxIdleC.Broadcast()
			e.idxStateMu.Unlock()
			return
		}
		e.idxDirty = false
		e.idxStateMu.Unlock()
		e.rebuildIndex()
	}
}

// RebuildIndex synchronously builds and publishes the index for the
// engine's current model version. Redundant calls — an index at or past
// that version is already published — return immediately, so a burst of
// updates collapses into one build of the latest version.
func (e *Engine) RebuildIndex() {
	if e.idxCfg == nil {
		return
	}
	e.rebuildIndex()
}

func (e *Engine) rebuildIndex() {
	e.idxMu.Lock()
	defer e.idxMu.Unlock()
	m := e.Model()
	if cur := e.idx.Load(); cur != nil && cur.version >= m.Version {
		return
	}
	e.idx.Store(buildIndexSet(m, *e.idxCfg))
}

// WaitForIndex blocks until the asynchronous rebuild worker has drained
// every scheduled rebuild, and is safe to call while further updates
// keep scheduling new ones. After it returns (and absent concurrent
// updates) the published index matches the current model version —
// under automatic rebuilds, that is; with WithManualIndexRebuild
// nothing is ever scheduled, so it returns immediately and freshness is
// the caller's RebuildIndex responsibility.
func (e *Engine) WaitForIndex() {
	e.idxStateMu.Lock()
	for e.idxRunning || e.idxDirty {
		e.idxIdleC.Wait()
	}
	e.idxStateMu.Unlock()
}

// IndexStatus reports the serving-index state for monitoring.
type IndexStatus struct {
	Enabled bool   `json:"enabled"`
	Version uint64 `json:"version,omitempty"` // model version the published index serves
	IVF     bool   `json:"ivf,omitempty"`
	NList   int    `json:"nlist,omitempty"`
	NProbe  int    `json:"nprobe,omitempty"` // default probes per IVF query
}

// IndexStatus returns the current index state.
func (e *Engine) IndexStatus() IndexStatus {
	if e.idxCfg == nil {
		return IndexStatus{}
	}
	st := IndexStatus{Enabled: true, IVF: e.idxCfg.IVF}
	if s := e.idx.Load(); s != nil {
		st.Version = s.version
		if s.linksIVF != nil {
			st.NList = s.linksIVF.NList()
			st.NProbe = s.linksIVF.DefaultNProbe()
		}
	}
	return st
}

// TopKAnswer is one served top-k result with its provenance: the model
// version it was computed against and the backend that answered.
type TopKAnswer struct {
	Results []core.Scored
	Version uint64
	Backend string
}

// TopLinks answers a link-prediction top-k query through the index when a
// fresh one exists, falling back to the brute-force scan otherwise. mode
// is ModeExact (default when empty) or ModeIVF; nprobe overrides the IVF
// probe count when > 0. The query node itself is excluded.
func (e *Engine) TopLinks(u, k int, mode string, nprobe int) (TopKAnswer, error) {
	m := e.Model()
	s := e.freshIndex(m)
	res, backend, err := m.topLinks(s, u, k, mode, nprobe)
	if err != nil {
		return TopKAnswer{}, err
	}
	return TopKAnswer{Results: res, Version: m.Version, Backend: backend}, nil
}

// TopAttrs answers an attribute-inference top-k query; see TopLinks for
// mode/nprobe semantics.
func (e *Engine) TopAttrs(v, k int, mode string, nprobe int) (TopKAnswer, error) {
	m := e.Model()
	s := e.freshIndex(m)
	res, backend, err := m.topAttrs(s, v, k, mode, nprobe)
	if err != nil {
		return TopKAnswer{}, err
	}
	return TopKAnswer{Results: res, Version: m.Version, Backend: backend}, nil
}

// validateTopK checks the shared top-k query parameters.
func validateTopK(k int, mode string, nprobe int) (string, error) {
	if k < 1 {
		return "", fmt.Errorf("engine: k must be >= 1, got %d", k)
	}
	if mode == "" {
		mode = ModeExact
	}
	if mode != ModeExact && mode != ModeIVF {
		return "", fmt.Errorf("engine: unknown mode %q (want %q or %q)", mode, ModeExact, ModeIVF)
	}
	if nprobe < 0 {
		return "", fmt.Errorf("engine: nprobe must be >= 0 (0 means the index default), got %d", nprobe)
	}
	return mode, nil
}

// topLinks runs the link top-k against this model, using s when non-nil.
func (m *Model) topLinks(s *indexSet, u, k int, mode string, nprobe int) ([]core.Scored, string, error) {
	mode, err := validateTopK(k, mode, nprobe)
	if err != nil {
		return nil, "", err
	}
	if u < 0 || u >= m.Nodes() {
		return nil, "", fmt.Errorf("engine: src %d out of range [0,%d)", u, m.Nodes())
	}
	if s != nil {
		q := m.Emb.Xf.Row(u)
		skip := func(id int) bool { return id == u }
		if mode == ModeIVF && s.linksIVF != nil {
			return s.linksIVF.Search(q, k, index.Options{NProbe: nprobe, Skip: skip}), BackendIVF, nil
		}
		return s.links.Search(q, k, index.Options{Skip: skip}), BackendExact, nil
	}
	return m.Scorer.TopKTargets(u, k, nil), BackendScan, nil
}

// topAttrs runs the attribute top-k against this model, using s when
// non-nil.
func (m *Model) topAttrs(s *indexSet, v, k int, mode string, nprobe int) ([]core.Scored, string, error) {
	mode, err := validateTopK(k, mode, nprobe)
	if err != nil {
		return nil, "", err
	}
	if v < 0 || v >= m.Nodes() {
		return nil, "", fmt.Errorf("engine: node %d out of range [0,%d)", v, m.Nodes())
	}
	if s != nil {
		q := m.Emb.AttrQueryInto(v, make([]float64, m.Emb.Xf.Cols))
		if mode == ModeIVF && s.attrsIVF != nil {
			return s.attrsIVF.Search(q, k, index.Options{NProbe: nprobe}), BackendIVF, nil
		}
		return s.attrs.Search(q, k, index.Options{}), BackendExact, nil
	}
	return m.Emb.TopKAttrs(v, k, nil), BackendScan, nil
}
