package engine

// Sharded per-version top-k index lifecycle. An Engine with indexing
// enabled partitions the candidate matrices — Z = Xb·G for links (n
// rows), Y for attributes (d rows) — into S contiguous row shards. Each
// shard owns an exact backend (and optionally IVF and the SQ8/IVFSQ
// quantized tiers) over its block only, published through its own atomic
// pointer and rebuilt by its own worker goroutine: after an update, S
// independent, smaller rebuilds overlap instead of one O(n) blocking
// build. All of a shard's enabled representations are built before the
// shard publishes, so the tiers can never serve mixed versions.
//
// A query resolves the model first, then accepts the shard set only if
// EVERY shard's published index matches that model version exactly — a
// consistent cut. Anything else (disabled, some shard still building, or
// built for a different generation) falls back to the model's brute-force
// scan path, so a query never mixes shards from two generations and is
// never answered by a stale index: between an update landing and the last
// shard publishing, queries degrade to the scan (reported as backend
// "scan") but keep answering at the current model version. Accepted
// queries fan out across the shards in parallel and merge through
// core.TopK, which keeps sharded exact answers bit-for-bit identical to
// single-shard exact.

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pane/internal/core"
	"pane/internal/index"
	"pane/internal/mat"
	"pane/internal/obs"
	"pane/internal/store"
)

// Query modes accepted by the top-k paths.
const (
	ModeExact   = "exact"   // exact answer: indexed scan, or brute force mid-rebuild
	ModeIVF     = "ivf"     // approximate answer from the IVF backend when fresh
	ModeSQ8     = "sq8"     // quantized flat scan + exact re-rank
	ModeIVFSQ   = "ivfsq"   // quantized inverted-file scan + exact re-rank
	ModeFP16    = "fp16"    // half-precision flat scan, no re-rank
	ModeIVFFP16 = "ivffp16" // half-precision inverted-file scan, no re-rank
)

// Backend labels reported with every top-k answer.
const (
	BackendExact   = "exact"   // precomputed candidate matrix, parallel blocked scan
	BackendIVF     = "ivf"     // inverted-file approximate search
	BackendSQ8     = "sq8"     // int8 quantized scan, exact re-rank
	BackendIVFSQ   = "ivfsq"   // quantized inverted-file scan, exact re-rank
	BackendFP16    = "fp16"    // binary16 flat scan, no re-rank
	BackendIVFFP16 = "ivffp16" // binary16 inverted-file scan, no re-rank
	BackendScan    = "scan"    // per-query brute force; no fresh index (disabled or mid-rebuild)
)

// IndexConfig selects and tunes the per-version indexes an Engine
// maintains. The zero value enables the exact backend only, unsharded;
// defaults are resolved against the model at build time.
type IndexConfig struct {
	// IVF additionally builds the approximate backend.
	IVF bool
	// Quantize additionally builds the SQ8 quantized tier: an int8 copy
	// of each shard's candidate rows scanned at ~1/8 the memory traffic,
	// re-ranked exactly. With IVF also set, the per-list IVFSQ variant is
	// built alongside (sharing the IVF's k-means, so it costs one extra
	// quantization pass, not a second clustering).
	Quantize bool
	// Rerank is the quantized survivor multiplier: an SQ8/IVFSQ query
	// re-ranks the Rerank*k best quantized scores exactly. 0 means
	// index.DefaultRerank.
	Rerank int
	// FP16 additionally builds the half-precision tier: a binary16 copy
	// of each shard's candidate rows scanned at half the memory traffic
	// of float64, served WITHOUT exact re-rank (11-bit significands keep
	// recall@10 at ≈ 0.999 on embedding workloads). With IVF also set,
	// the per-list IVFFP16 variant is built alongside, sharing the IVF's
	// k-means like IVFSQ does.
	FP16 bool
	// NList is the IVF coarse cluster count per shard; 0 means
	// ~sqrt(shard rows).
	NList int
	// NProbe is the default number of IVF lists probed per query in each
	// shard; 0 means max(1, nlist/8). Queries can override it per request.
	NProbe int
	// Threads is the index build/search parallelism; 0 follows the model
	// config's Threads. Builds divide it across concurrently rebuilding
	// shards.
	Threads int
	// Seed drives k-means determinism; 0 follows the model config's Seed.
	Seed int64
	// Shards is the number of contiguous row shards the candidate
	// matrices are split into; values <= 1 mean one shard, and values
	// above the row count are clamped. Each shard rebuilds independently
	// and queries fan out across all of them.
	Shards int
}

// validate rejects nonsensical index configurations at engine
// construction with a descriptive error — misconfiguration used to be
// silently clamped at scattered build sites, which hid operator typos
// until query time. rows is the candidate (node) row count the shard
// layout will partition. Zero values keep their documented "use the
// default" meaning throughout.
func (c *IndexConfig) validate(rows int) error {
	if c.Shards < 0 {
		return fmt.Errorf("engine: shard count must be >= 1, got %d", c.Shards)
	}
	if rows > 0 && c.Shards > rows {
		return fmt.Errorf("engine: shard count %d exceeds the %d candidate rows (each shard needs at least one row)",
			c.Shards, rows)
	}
	if c.Rerank < 0 {
		return fmt.Errorf("engine: rerank must be >= 1, got %d (0 selects the default, %d)",
			c.Rerank, index.DefaultRerank)
	}
	if c.NList < 0 {
		return fmt.Errorf("engine: nlist must be >= 1, got %d (0 selects ~sqrt(shard rows))", c.NList)
	}
	if c.NProbe < 0 {
		return fmt.Errorf("engine: nprobe must be >= 1, got %d (0 selects nlist/8)", c.NProbe)
	}
	if c.Threads < 0 {
		return fmt.Errorf("engine: index threads must be >= 1, got %d (0 follows the model config)", c.Threads)
	}
	return nil
}

// WithIndex enables per-version top-k indexing with the given config.
func WithIndex(cfg IndexConfig) Option {
	return func(e *Engine) {
		c := cfg
		e.idxCfg = &c
	}
}

// WithoutIndex disables indexing even if a restored bundle carries an
// index configuration (engine.Open applies bundle settings first, then
// caller options).
func WithoutIndex() Option {
	return func(e *Engine) { e.idxCfg = nil }
}

// WithFallbackIndex enables indexing with cfg only when no configuration
// was set earlier in the option list — notably when a restored bundle
// did not record one. It lets a server default to indexed serving while
// still honoring explicit bundle or caller settings.
func WithFallbackIndex(cfg IndexConfig) Option {
	return func(e *Engine) {
		if e.idxCfg == nil {
			c := cfg
			e.idxCfg = &c
		}
	}
}

// WithShards overrides the shard count of whatever index configuration
// is in effect at this point in the option list — typically one restored
// from a bundle — without touching its other settings. An explicit count
// below 1 is a construction error (a config literal's zero Shards still
// means "one shard"); counts above the row count fail validation at
// construction. No-op when indexing is disabled.
func WithShards(n int) Option {
	return func(e *Engine) {
		if n < 1 {
			e.fail(fmt.Errorf("engine: WithShards requires a shard count >= 1, got %d", n))
			return
		}
		if e.idxCfg != nil {
			e.idxCfg.Shards = n
		}
	}
}

// WithManualIndexRebuild turns off the automatic asynchronous rebuild
// after updates; callers invoke RebuildIndex themselves. Tests use this
// to pin the "update applied, index not yet republished" state
// deterministically.
func WithManualIndexRebuild() Option {
	return func(e *Engine) { e.idxManual = true }
}

// shardIdx is one shard's immutable index generation, valid for exactly
// one model version. All ids it returns are global (see index.Shift).
// Every enabled representation is built BEFORE the shardIdx is published
// through its slot, so a query can never observe a shard whose exact tier
// is at one version and whose quantized tier is at another. A generation
// produced by incremental refresh shares unchanged storage (the candidate
// block, quantized codes, inverted lists) with its predecessor; a shard
// with no dirty rows shares everything and republishing it is O(1).
type shardIdx struct {
	version    uint64
	z          *mat.Dense  // this shard's block of Z = Xb·G (rows lo..hi)
	links      index.Index // over z; query vector is Xf[u]
	attrs      index.Index // over Y[alo:ahi); nil when the shard has no attr rows
	linksIVF   index.Index // nil unless cfg.IVF
	attrsIVF   index.Index
	linksSQ    index.Index // nil unless cfg.Quantize
	attrsSQ    index.Index
	linksIVFSQ index.Index // nil unless cfg.IVF && cfg.Quantize
	attrsIVFSQ index.Index
	linksFP16  index.Index // nil unless cfg.FP16
	attrsFP16  index.Index
	linksIVFFP index.Index // nil unless cfg.IVF && cfg.FP16
	attrsIVFFP index.Index
}

// shardPending is one shard's accumulated rebuild obligation: the model
// version the delta reaches (0 = nothing pending) and the dirty rows —
// coalesced across every update since the shard last published — that
// carry the published index to it. linksFull/attrsFull poison a space
// into a full rebuild (full-sweep model updates; any Y movement for the
// link space, since G = YᵀY shifts every candidate row).
type shardPending struct {
	target    uint64
	linksFull bool
	attrsFull bool
	links     map[int]struct{} // global Z row ids inside this shard's range
	attrs     map[int]struct{} // global Y row ids inside this shard's range
	// grams are the accumulated low-rank link-space corrections of the
	// attribute deltas since the shard last published, oldest first. Each
	// is additive on every row whose Xb row did not change, and rows that
	// did change are in links and get recomputed exactly — so applying
	// them all against the current model's Xb is order-independent and
	// reproduces the pending Z shift without a full transform. Ignored
	// when linksFull poisons the space (the rebuild recomputes Z anyway).
	grams []*core.GramDelta
}

// idxDelta is one published update's dirty-row report, handed from apply
// to the shard scheduler, which splits it across the per-shard pendings.
type idxDelta struct {
	target       uint64
	linksFull    bool
	attrsFull    bool
	links, attrs []int
	gram         *core.GramDelta // low-rank Z correction of an attr delta
	rows         int             // total dirty rows, for monitoring
}

// shardSet is the sharded serving-index state of one Engine: the fixed
// shard layout (node and attribute universes are fixed at training time,
// so the ranges never change), one published-index slot per shard, and
// the per-shard rebuild scheduling state.
type shardSet struct {
	linkRanges [][2]int // contiguous row ranges of Z; one per shard
	attrRanges [][2]int // contiguous row ranges of Y; len <= len(linkRanges)
	slots      []atomic.Pointer[shardIdx]

	// Per-shard async rebuild scheduling, all under mu: at most one
	// worker goroutine runs per shard (running[s]); updates merge their
	// dirty rows into pending[s] instead of spawning, and a worker loops
	// until it exits with its pending empty — so every published version
	// is either seen by the running worker's next loop or triggers a
	// fresh worker, and a sustained update stream never piles up
	// goroutines (it collapses into one coalesced delta build per shard).
	// WaitForIndex waits on idleC for every shard to drain. buildMu
	// serializes the builds of one shard (worker vs. manual RebuildIndex)
	// without ever blocking other shards.
	mu      sync.Mutex
	idleC   *sync.Cond
	pending []shardPending
	running []bool
	buildMu []sync.Mutex
}

// newShardSet lays out s shards over n candidate rows and d attribute
// rows. SplitRanges clamps: more shards than rows collapses to one shard
// per row, and the attribute space may span fewer shards than the link
// space when d < n.
func newShardSet(n, d, s int) *shardSet {
	if s < 1 {
		s = 1
	}
	linkRanges := mat.SplitRanges(n, s)
	if len(linkRanges) == 0 { // n == 0: keep one empty shard so slots exist
		linkRanges = [][2]int{{0, 0}}
	}
	ss := &shardSet{
		linkRanges: linkRanges,
		attrRanges: mat.SplitRanges(d, len(linkRanges)),
		slots:      make([]atomic.Pointer[shardIdx], len(linkRanges)),
		pending:    make([]shardPending, len(linkRanges)),
		running:    make([]bool, len(linkRanges)),
		buildMu:    make([]sync.Mutex, len(linkRanges)),
	}
	ss.idleC = sync.NewCond(&ss.mu)
	return ss
}

// linkShard maps a global Z row to its shard. SplitRanges uses equal
// ceil(n/S)-sized chunks (the last possibly shorter), so this is a
// division, not a search.
func (ss *shardSet) linkShard(r int) int {
	return r / (ss.linkRanges[0][1] - ss.linkRanges[0][0])
}

// attrShard maps a global Y row to the shard holding it.
func (ss *shardSet) attrShard(r int) int {
	return r / (ss.attrRanges[0][1] - ss.attrRanges[0][0])
}

// markLocked merges one update's delta into every shard's pending
// obligation. Every shard's target advances — a shard with no dirty rows
// still republishes (an O(1) storage-sharing republish) so the consistent
// cut reaches the new version. Callers hold mu.
func (ss *shardSet) markLocked(d idxDelta) {
	for s := range ss.pending {
		p := &ss.pending[s]
		p.target = d.target
		p.linksFull = p.linksFull || d.linksFull
		p.attrsFull = p.attrsFull || d.attrsFull
		if d.gram != nil {
			p.grams = append(p.grams, d.gram)
		}
	}
	if !d.linksFull {
		for _, r := range d.links {
			p := &ss.pending[ss.linkShard(r)]
			if p.links == nil {
				p.links = make(map[int]struct{})
			}
			p.links[r] = struct{}{}
		}
	}
	if !d.attrsFull && len(ss.attrRanges) > 0 {
		for _, r := range d.attrs {
			p := &ss.pending[ss.attrShard(r)]
			if p.attrs == nil {
				p.attrs = make(map[int]struct{})
			}
			p.attrs[r] = struct{}{}
		}
	}
}

// remergeLocked returns a taken-but-unbuilt pending to shard s, unioning
// it with whatever accumulated meanwhile. Callers hold mu.
func (ss *shardSet) remergeLocked(s int, p shardPending) {
	cur := &ss.pending[s]
	if p.target > cur.target {
		cur.target = p.target
	}
	cur.linksFull = cur.linksFull || p.linksFull
	cur.attrsFull = cur.attrsFull || p.attrsFull
	cur.links = unionRows(cur.links, p.links)
	cur.attrs = unionRows(cur.attrs, p.attrs)
	if len(p.grams) > 0 {
		// p's corrections predate whatever accumulated meanwhile.
		cur.grams = append(append([]*core.GramDelta(nil), p.grams...), cur.grams...)
	}
}

func unionRows(dst, src map[int]struct{}) map[int]struct{} {
	if dst == nil {
		return src
	}
	for r := range src {
		dst[r] = struct{}{}
	}
	return dst
}

// sortedRowsIn extracts the rows of set inside [lo, hi), ascending —
// the shape the index Refresh constructors take.
func sortedRowsIn(set map[int]struct{}, lo, hi int) []int {
	var out []int
	for r := range set {
		if r >= lo && r < hi {
			out = append(out, r)
		}
	}
	sort.Ints(out)
	return out
}

// buildParams resolves the per-shard build knobs against the model config
// once per build cycle.
type buildParams struct {
	cfg     IndexConfig
	threads int
	ivfCfg  index.IVFConfig
}

func (e *Engine) shardBuildParams(m *Model) buildParams {
	cfg := *e.idxCfg
	threads := cfg.Threads
	if threads <= 0 {
		threads = m.Cfg.Threads
	}
	// Divide build parallelism across shards: their rebuilds overlap, so
	// each gets a slice of the budget rather than all of it.
	threads /= len(e.shards.slots)
	if threads < 1 {
		threads = 1
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = m.Cfg.Seed
	}
	return buildParams{
		cfg:     cfg,
		threads: threads,
		ivfCfg: index.IVFConfig{
			NList: cfg.NList, NProbe: cfg.NProbe,
			Seed: seed, Threads: threads,
		},
	}
}

// buildShardIdx materializes shard s's indexes for m from scratch. Only
// the shard's own block of Z is computed (rows linkRanges[s]), which is
// what makes S rebuilds S-times smaller than one monolithic build.
func (e *Engine) buildShardIdx(m *Model, s int) *shardIdx {
	bp := e.shardBuildParams(m)
	si := &shardIdx{version: m.Version}
	e.buildShardLinks(si, m, s, bp)
	e.buildShardAttrs(si, m, s, bp)
	return si
}

// buildShardLinks fills si's link-space tiers with a full build over the
// shard's freshly computed Z block.
func (e *Engine) buildShardLinks(si *shardIdx, m *Model, s int, bp buildParams) {
	ss := e.shards
	lo, hi := ss.linkRanges[s][0], ss.linkRanges[s][1]
	z := m.Scorer.TransformedCandidatesRange(lo, hi, bp.threads)
	si.z = z
	si.links = index.Shift(index.NewExact(z, bp.threads), lo)
	if bp.cfg.IVF {
		iv := index.BuildIVF(z, bp.ivfCfg)
		si.linksIVF = index.Shift(iv, lo)
		if bp.cfg.Quantize {
			si.linksIVFSQ = index.Shift(index.NewIVFSQ(iv, z, bp.cfg.Rerank), lo)
		}
		if bp.cfg.FP16 {
			si.linksIVFFP = index.Shift(index.NewIVFFP16(iv, z), lo)
		}
	}
	if bp.cfg.Quantize {
		si.linksSQ = index.Shift(e.buildSQ8(quantLinks, m.Version, z, lo, bp.cfg.Rerank, bp.threads), lo)
	}
	if bp.cfg.FP16 {
		si.linksFP16 = index.Shift(e.buildFP16(quantLinks, m.Version, z, lo, bp.threads), lo)
	}
}

// buildShardAttrs fills si's attribute-space tiers with a full build over
// the shard's Y block (a view of the model's matrix, not a copy).
func (e *Engine) buildShardAttrs(si *shardIdx, m *Model, s int, bp buildParams) {
	ss := e.shards
	if s >= len(ss.attrRanges) {
		return
	}
	alo, ahi := ss.attrRanges[s][0], ss.attrRanges[s][1]
	y := m.Emb.Y.RowSlice(alo, ahi)
	si.attrs = index.Shift(index.NewExact(y, bp.threads), alo)
	if bp.cfg.IVF {
		iv := index.BuildIVF(y, bp.ivfCfg)
		si.attrsIVF = index.Shift(iv, alo)
		if bp.cfg.Quantize {
			si.attrsIVFSQ = index.Shift(index.NewIVFSQ(iv, y, bp.cfg.Rerank), alo)
		}
		if bp.cfg.FP16 {
			si.attrsIVFFP = index.Shift(index.NewIVFFP16(iv, y), alo)
		}
	}
	if bp.cfg.Quantize {
		si.attrsSQ = index.Shift(e.buildSQ8(quantAttrs, m.Version, y, alo, bp.cfg.Rerank, bp.threads), alo)
	}
	if bp.cfg.FP16 {
		si.attrsFP16 = index.Shift(e.buildFP16(quantAttrs, m.Version, y, alo, bp.threads), alo)
	}
}

// refreshShard produces shard s's next generation from base using p's
// dirty rows, choosing per space between sharing (no dirty rows),
// incremental refresh (dirty fraction at or below the threshold), and a
// full rebuild (poisoned space or a delta past the threshold). Incremental
// link refresh recomputes only the dirty Z rows (core's row-restricted
// transform is bit-identical to the full product), patches them into a
// clone of the previous block, and runs each tier's copy-on-write Refresh;
// the IVF tier keeps its trained coarse quantizer, exactly as a frozen-
// quantizer full rebuild would assign every row. fullWork reports whether
// any space fell back to a from-scratch build.
func (e *Engine) refreshShard(m *Model, s int, base *shardIdx, p shardPending) (si *shardIdx, fullWork bool) {
	bp := e.shardBuildParams(m)
	ss := e.shards
	thr := e.refreshThreshold
	si = &shardIdx{version: m.Version}

	lo, hi := ss.linkRanges[s][0], ss.linkRanges[s][1]
	linkRows := sortedRowsIn(p.links, lo, hi)
	gramRank := 0
	for _, gd := range p.grams {
		gramRank += gd.Rank()
	}
	switch {
	case p.linksFull || gramRank >= m.Emb.Y.Cols ||
		float64(len(linkRows)) > thr*float64(hi-lo):
		// Poisoned space, a coalesced correction whose rank bound reaches
		// the factor width (correcting every row would cost as much as the
		// full transform), or a dirty delta past the threshold.
		e.buildShardLinks(si, m, s, bp)
		fullWork = true
	case len(linkRows) == 0 && len(p.grams) == 0:
		si.z = base.z
		si.links, si.linksIVF = base.links, base.linksIVF
		si.linksSQ, si.linksIVFSQ = base.linksSQ, base.linksIVFSQ
		si.linksFP16, si.linksIVFFP = base.linksFP16, base.linksIVFFP
	case len(p.grams) > 0:
		// Low-rank path: every candidate row shifts by Xb[i]·ΔG, so apply
		// the accumulated corrections to the whole block in O(n·rank·k),
		// then overwrite the dirty rows — the rows whose Xb changed, for
		// which the additive correction is wrong — with exactly recomputed
		// values. Every tier re-derives from the moved block: SQ8
		// re-encodes all rows, the IVF keeps its assignments (Reseat — the
		// values moved by a correction-sized nudge, not to new clusters),
		// and IVFSQ re-quantizes the reseated lists.
		z := base.z.Clone()
		for _, gd := range p.grams {
			gd.Apply(z, m.Emb.Xb, lo, bp.threads)
		}
		if len(linkRows) > 0 {
			patch := m.Scorer.TransformedCandidatesRows(linkRows, bp.threads)
			for j, r := range linkRows {
				copy(z.Row(r-lo), patch.Row(j))
			}
		}
		si.z = z
		si.links = index.Shift(unshift(base.links).(*index.Exact).Refresh(z), lo)
		if base.linksIVF != nil {
			iv := unshift(base.linksIVF).(*index.IVF).Reseat(z)
			si.linksIVF = index.Shift(iv, lo)
			if base.linksIVFSQ != nil {
				si.linksIVFSQ = index.Shift(unshift(base.linksIVFSQ).(*index.IVFSQ).Refresh(iv, z), lo)
			}
			if base.linksIVFFP != nil {
				si.linksIVFFP = index.Shift(unshift(base.linksIVFFP).(*index.IVFFP16).Refresh(iv, z), lo)
			}
		}
		if base.linksSQ != nil {
			si.linksSQ = index.Shift(index.NewSQ8(z, bp.cfg.Rerank, bp.threads), lo)
		}
		if base.linksFP16 != nil {
			si.linksFP16 = index.Shift(index.NewFP16(z, bp.threads), lo)
		}
	default:
		z := base.z.Clone()
		patch := m.Scorer.TransformedCandidatesRows(linkRows, bp.threads)
		local := make([]int, len(linkRows))
		for j, r := range linkRows {
			copy(z.Row(r-lo), patch.Row(j))
			local[j] = r - lo
		}
		si.z = z
		si.links = index.Shift(unshift(base.links).(*index.Exact).Refresh(z), lo)
		if base.linksIVF != nil {
			iv := unshift(base.linksIVF).(*index.IVF).Refresh(z, local)
			si.linksIVF = index.Shift(iv, lo)
			if base.linksIVFSQ != nil {
				si.linksIVFSQ = index.Shift(unshift(base.linksIVFSQ).(*index.IVFSQ).Refresh(iv, z), lo)
			}
			if base.linksIVFFP != nil {
				si.linksIVFFP = index.Shift(unshift(base.linksIVFFP).(*index.IVFFP16).Refresh(iv, z), lo)
			}
		}
		if base.linksSQ != nil {
			si.linksSQ = index.Shift(unshift(base.linksSQ).(*index.SQ8).Refresh(z, local), lo)
		}
		if base.linksFP16 != nil {
			si.linksFP16 = index.Shift(unshift(base.linksFP16).(*index.FP16).Refresh(z, local), lo)
		}
	}

	if s >= len(ss.attrRanges) {
		return si, fullWork
	}
	alo, ahi := ss.attrRanges[s][0], ss.attrRanges[s][1]
	attrRows := sortedRowsIn(p.attrs, alo, ahi)
	switch {
	case p.attrsFull || float64(len(attrRows)) > thr*float64(ahi-alo):
		e.buildShardAttrs(si, m, s, bp)
		fullWork = true
	case len(attrRows) == 0:
		// The previous generation's backends wrap a view of the previous
		// Y; with no dirty rows in this shard's range those rows are
		// bit-identical in the new model, so sharing them is exact.
		si.attrs, si.attrsIVF = base.attrs, base.attrsIVF
		si.attrsSQ, si.attrsIVFSQ = base.attrsSQ, base.attrsIVFSQ
		si.attrsFP16, si.attrsIVFFP = base.attrsFP16, base.attrsIVFFP
	default:
		y := m.Emb.Y.RowSlice(alo, ahi)
		local := make([]int, len(attrRows))
		for j, r := range attrRows {
			local[j] = r - alo
		}
		si.attrs = index.Shift(unshift(base.attrs).(*index.Exact).Refresh(y), alo)
		if base.attrsIVF != nil {
			iv := unshift(base.attrsIVF).(*index.IVF).Refresh(y, local)
			si.attrsIVF = index.Shift(iv, alo)
			if base.attrsIVFSQ != nil {
				si.attrsIVFSQ = index.Shift(unshift(base.attrsIVFSQ).(*index.IVFSQ).Refresh(iv, y), alo)
			}
			if base.attrsIVFFP != nil {
				si.attrsIVFFP = index.Shift(unshift(base.attrsIVFFP).(*index.IVFFP16).Refresh(iv, y), alo)
			}
		}
		if base.attrsSQ != nil {
			si.attrsSQ = index.Shift(unshift(base.attrsSQ).(*index.SQ8).Refresh(y, local), alo)
		}
		if base.attrsFP16 != nil {
			si.attrsFP16 = index.Shift(unshift(base.attrsFP16).(*index.FP16).Refresh(y, local), alo)
		}
	}
	return si, fullWork
}

// Quantized-payload spaces a bundle may carry (see buildSQ8).
const (
	quantLinks = iota // the link candidate matrix Z = Xb·G
	quantAttrs        // the attribute candidate matrix Y
)

// buildSQ8 builds one shard's SQ8 tier over full, the shard's block of
// candidate rows [lo, lo+full.Rows) of the given space. When a
// bundle-restored encoding matches this model version and shape, its row
// slice is reused instead of re-quantizing — per-row quantization makes
// the slice bit-identical to a fresh encoding, so restored and
// self-computed tiers are interchangeable; on any mismatch (newer model
// version, different shape) the payload is ignored and the rows are
// quantized fresh.
func (e *Engine) buildSQ8(space int, version uint64, full *mat.Dense, lo, rerank, threads int) *index.SQ8 {
	if rq := e.restoredQuant.Load(); rq != nil && rq.version == version {
		qm := &rq.links
		if space == quantAttrs {
			qm = &rq.attrs
		}
		hi := lo + full.Rows
		if qm.Dim == full.Cols && hi <= qm.Rows {
			return index.NewSQ8FromCodes(full,
				qm.Codes[lo*qm.Dim:hi*qm.Dim], qm.Scale[lo:hi], qm.Base[lo:hi],
				rerank, threads)
		}
	}
	return index.NewSQ8(full, rerank, threads)
}

// buildFP16 builds one shard's binary16 tier over full, the shard's block
// of candidate rows [lo, lo+full.Rows) of the given space, reusing a
// bundle-restored encoding's row slice when it matches this model version
// and shape — the per-element encoding makes the slice bit-identical to a
// fresh encoding, exactly like buildSQ8's per-row reuse.
func (e *Engine) buildFP16(space int, version uint64, full *mat.Dense, lo, threads int) *index.FP16 {
	if rh := e.restoredHalf.Load(); rh != nil && rh.version == version {
		hm := &rh.links
		if space == quantAttrs {
			hm = &rh.attrs
		}
		hi := lo + full.Rows
		if hm.Dim == full.Cols && hi <= hm.Rows {
			return index.NewFP16FromCodes(full, hm.Codes[lo*hm.Dim:hi*hm.Dim], threads)
		}
	}
	return index.NewFP16(full, threads)
}

// freshShards returns one consistent cut of the published shard indexes:
// every shard serving exactly m's version. Anything else (disabled, some
// shard still building, or a mixed generation set mid-catchup) returns
// nil and the caller scans — a query can never combine shards from two
// model versions.
func (e *Engine) freshShards(m *Model) []*shardIdx {
	ss := e.shards
	if ss == nil {
		return nil
	}
	out := make([]*shardIdx, len(ss.slots))
	for s := range ss.slots {
		si := ss.slots[s].Load()
		if si == nil || si.version != m.Version {
			return nil
		}
		out[s] = si
	}
	return out
}

// scheduleIndexRebuild merges one published update's dirty-row delta into
// every shard's pending obligation and ensures each shard has (or gets) a
// worker responsible for catching up. No-op when indexing is disabled or
// manual. Callers publish the new model BEFORE calling this, so marking
// afterwards guarantees the version is covered: a running worker re-checks
// its pending before exiting (under mu, so a concurrent mark either is
// seen by that check or observes running == false and spawns a new
// worker). A sustained update stream therefore collapses into at most one
// coalesced delta build behind the in-flight one per shard, with never
// more than one goroutine alive per shard.
func (e *Engine) scheduleIndexRebuild(d idxDelta) {
	if e.shards == nil {
		return
	}
	e.met.lastDelta.Set(float64(d.rows))
	if e.idxManual {
		return
	}
	ss := e.shards
	ss.mu.Lock()
	ss.markLocked(d)
	for s := range ss.slots {
		if !ss.running[s] {
			ss.running[s] = true
			go e.shardWorker(s)
		}
	}
	ss.mu.Unlock()
}

// shardWorker drains shard s's pending delta, building toward whatever
// model is current each iteration, and announces idleness on exit.
func (e *Engine) shardWorker(s int) {
	ss := e.shards
	for {
		ss.mu.Lock()
		p := ss.pending[s]
		if p.target == 0 {
			ss.running[s] = false
			ss.idleC.Broadcast()
			ss.mu.Unlock()
			return
		}
		ss.pending[s] = shardPending{}
		ss.mu.Unlock()
		if e.buildShard(s, p) {
			continue
		}
		// The model moved past p.target with its dirty mark still in
		// flight (apply publishes before marking). Building now would
		// publish the new version from a delta that does not cover it, so
		// put the taken delta back; if the missing mark landed meanwhile
		// the merged pending already reaches the current model and the
		// loop retries, otherwise exit and let the incoming mark — which
		// sees running == false — respawn the worker with the full delta.
		ss.mu.Lock()
		ss.remergeLocked(s, p)
		retry := ss.pending[s].target > p.target
		if !retry {
			ss.running[s] = false
			ss.idleC.Broadcast()
		}
		ss.mu.Unlock()
		if !retry {
			return
		}
	}
}

// buildShard brings shard s up to the engine's current model version by
// applying the taken pending delta p: an incremental refresh when the
// previous generation exists and p's dirty fraction is within the
// threshold, a full rebuild otherwise. It reports false — without
// building — when p does not describe reaching the current model (its
// mark is still in flight; see shardWorker). Redundant calls (shard
// already at or past the current version, e.g. a concurrent manual
// RebuildIndex won) return true immediately, so update bursts collapse
// into one build of the latest version per shard.
func (e *Engine) buildShard(s int, p shardPending) bool {
	ss := e.shards
	ss.buildMu[s].Lock()
	defer ss.buildMu[s].Unlock()
	m := e.Model()
	base := ss.slots[s].Load()
	if base != nil && base.version >= m.Version {
		return true
	}
	if m.Version != p.target {
		return false
	}
	// The pending delta accumulates every update since the shard last
	// published, so it covers all rows changed between base's version and
	// the current model — possibly more (rows a manual full rebuild
	// already absorbed), never less; refreshing a clean row recomputes the
	// identical values.
	var si *shardIdx
	fullWork := true
	t0 := time.Now()
	if base == nil {
		si = e.buildShardIdx(m, s)
	} else {
		si, fullWork = e.refreshShard(m, s, base, p)
	}
	d := time.Since(t0)
	if fullWork {
		e.met.buildFull.Inc()
		e.met.buildDurFull.Observe(d)
	} else {
		e.met.buildIncr.Inc()
		e.met.buildDurIncr.Observe(d)
	}
	ss.slots[s].Store(si)
	return true
}

// rebuildShardFull unconditionally brings shard s to the current model
// version with a from-scratch build (retraining the IVF coarse quantizer)
// unless it is already there.
func (e *Engine) rebuildShardFull(s int) {
	ss := e.shards
	ss.buildMu[s].Lock()
	defer ss.buildMu[s].Unlock()
	m := e.Model()
	if cur := ss.slots[s].Load(); cur != nil && cur.version >= m.Version {
		return
	}
	t0 := time.Now()
	ss.slots[s].Store(e.buildShardIdx(m, s))
	e.met.buildFull.Inc()
	e.met.buildDurFull.Observe(time.Since(t0))
}

// RebuildIndex synchronously builds and publishes every shard's index for
// the engine's current model version, rebuilding the shards concurrently.
// Shards already at or past that version are skipped. This is always a
// from-scratch build — the manual escape hatch from incremental refresh,
// and the path that re-trains each shard's IVF coarse quantizer.
func (e *Engine) RebuildIndex() {
	if e.shards == nil {
		return
	}
	var wg sync.WaitGroup
	for s := range e.shards.slots {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			e.rebuildShardFull(s)
		}(s)
	}
	wg.Wait()
}

// WaitForIndex blocks until every shard's asynchronous rebuild worker has
// drained its scheduled rebuilds, and is safe to call while further
// updates keep scheduling new ones. After it returns (and absent
// concurrent updates) every published shard matches the current model
// version — under automatic rebuilds, that is; with
// WithManualIndexRebuild nothing is ever scheduled, so it returns
// immediately and freshness is the caller's RebuildIndex responsibility.
func (e *Engine) WaitForIndex() {
	ss := e.shards
	if ss == nil {
		return
	}
	ss.mu.Lock()
	for ss.anyBusy() {
		ss.idleC.Wait()
	}
	ss.mu.Unlock()
}

// anyBusy reports whether any shard has a running worker or a pending
// rebuild. Callers hold mu.
func (ss *shardSet) anyBusy() bool {
	for s := range ss.running {
		if ss.running[s] || ss.pending[s].target != 0 {
			return true
		}
	}
	return false
}

// IndexStatus reports the serving-index state for monitoring.
type IndexStatus struct {
	Enabled bool `json:"enabled"`
	// Version is the model version served by the full shard set: the
	// minimum over the per-shard generations, 0 while any shard has yet
	// to publish. Queries use the index only when it equals the current
	// model version.
	Version uint64 `json:"version,omitempty"`
	IVF     bool   `json:"ivf,omitempty"`
	NList   int    `json:"nlist,omitempty"`  // per-shard IVF lists (first shard)
	NProbe  int    `json:"nprobe,omitempty"` // default probes per IVF query
	// Quantize reports whether the SQ8/IVFSQ tiers are built; Rerank is
	// their default exact-re-rank survivor multiplier.
	Quantize bool `json:"quantize,omitempty"`
	Rerank   int  `json:"rerank,omitempty"`
	// FP16 reports whether the binary16 tiers are built.
	FP16 bool `json:"fp16,omitempty"`
	// Shards is the shard count; ShardVersions the per-shard index
	// generations, exposing rebuild progress shard by shard (0 = not yet
	// published).
	Shards        int      `json:"shards,omitempty"`
	ShardVersions []uint64 `json:"shard_versions,omitempty"`
	// Update-path accounting: shard build cycles served by incremental
	// (delta) refresh vs from-scratch rebuild (initial builds and manual
	// RebuildIndex count as full), the dirty-row count of the most recent
	// update's delta, and the dirty-fraction threshold in effect. No
	// omitempty: 0 is a meaningful reading for every one of these (an
	// explicit threshold of 0 disables incremental refresh, and a zero
	// counter is a dashboard datum, not an absence).
	IncrementalRefreshes uint64  `json:"incremental_refreshes"`
	FullRebuilds         uint64  `json:"full_rebuilds"`
	LastDeltaRows        uint64  `json:"last_delta_rows"`
	RefreshThreshold     float64 `json:"refresh_threshold"`
}

// IndexStatus returns the current index state.
func (e *Engine) IndexStatus() IndexStatus {
	if e.shards == nil {
		return IndexStatus{}
	}
	ss := e.shards
	st := IndexStatus{
		Enabled:              true,
		IVF:                  e.idxCfg.IVF,
		Quantize:             e.idxCfg.Quantize,
		FP16:                 e.idxCfg.FP16,
		Shards:               len(ss.slots),
		ShardVersions:        make([]uint64, len(ss.slots)),
		IncrementalRefreshes: e.met.buildIncr.Value(),
		FullRebuilds:         e.met.buildFull.Value(),
		LastDeltaRows:        uint64(e.met.lastDelta.Value()),
		RefreshThreshold:     e.refreshThreshold,
	}
	if st.Quantize {
		st.Rerank = e.idxCfg.Rerank
		if st.Rerank <= 0 {
			st.Rerank = index.DefaultRerank
		}
	}
	minVer, complete := uint64(0), true
	for s := range ss.slots {
		si := ss.slots[s].Load()
		if si == nil {
			complete = false
			continue
		}
		st.ShardVersions[s] = si.version
		if minVer == 0 || si.version < minVer {
			minVer = si.version
		}
		if s == 0 && si.linksIVF != nil {
			if iv, ok := unshift(si.linksIVF).(*index.IVF); ok {
				st.NList = iv.NList()
				st.NProbe = iv.DefaultNProbe()
			}
		}
	}
	if complete {
		st.Version = minVer
	}
	return st
}

// assembleQuant reassembles the full-matrix SQ8 payload from a fresh
// consistent shard cut at m's version, or nil when any shard is stale or
// still building — the payload is an optional bundle section, and a
// loader just re-quantizes (bit-identically) without it. Because the
// encoding is per-row, concatenating the shards' blocks in shard order IS
// the whole matrix's encoding.
func (e *Engine) assembleQuant(m *Model) *store.QuantPayload {
	shards := e.freshShards(m)
	if shards == nil {
		return nil
	}
	qp := &store.QuantPayload{
		Links: store.QuantizedMatrix{Rows: m.Nodes(), Dim: m.Emb.Xf.Cols},
		Attrs: store.QuantizedMatrix{Rows: m.Attrs(), Dim: m.Emb.Xf.Cols},
	}
	appendSQ := func(qm *store.QuantizedMatrix, idx index.Index) bool {
		sq, ok := unshift(idx).(*index.SQ8)
		if !ok {
			return false
		}
		qm.Codes = append(qm.Codes, sq.Codes()...)
		qm.Scale = append(qm.Scale, sq.Scale()...)
		qm.Base = append(qm.Base, sq.Base()...)
		return true
	}
	for _, si := range shards {
		if si.linksSQ == nil || !appendSQ(&qp.Links, si.linksSQ) {
			return nil
		}
		if si.attrsSQ != nil && !appendSQ(&qp.Attrs, si.attrsSQ) {
			return nil
		}
	}
	if len(qp.Links.Scale) != qp.Links.Rows || len(qp.Attrs.Scale) != qp.Attrs.Rows {
		return nil // defensive: a partial assembly must not be persisted
	}
	return qp
}

// assembleHalf reassembles the full-matrix binary16 payload from a fresh
// consistent shard cut at m's version, or nil when any shard is stale or
// still building; same derived-state contract as assembleQuant — a loader
// without the payload just re-encodes bit-identically.
func (e *Engine) assembleHalf(m *Model) *store.HalfPayload {
	shards := e.freshShards(m)
	if shards == nil {
		return nil
	}
	hp := &store.HalfPayload{
		Links: store.HalfMatrix{Rows: m.Nodes(), Dim: m.Emb.Xf.Cols},
		Attrs: store.HalfMatrix{Rows: m.Attrs(), Dim: m.Emb.Xf.Cols},
	}
	appendFP := func(hm *store.HalfMatrix, idx index.Index) bool {
		fp, ok := unshift(idx).(*index.FP16)
		if !ok {
			return false
		}
		hm.Codes = append(hm.Codes, fp.Codes()...)
		return true
	}
	for _, si := range shards {
		if si.linksFP16 == nil || !appendFP(&hp.Links, si.linksFP16) {
			return nil
		}
		if si.attrsFP16 != nil && !appendFP(&hp.Attrs, si.attrsFP16) {
			return nil
		}
	}
	if len(hp.Links.Codes) != hp.Links.Rows*hp.Links.Dim ||
		len(hp.Attrs.Codes) != hp.Attrs.Rows*hp.Attrs.Dim {
		return nil // defensive: a partial assembly must not be persisted
	}
	return hp
}

// unshift unwraps index.Shift wrappers for status introspection.
func unshift(idx index.Index) index.Index {
	type unwrapper interface{ Unwrap() index.Index }
	for {
		u, ok := idx.(unwrapper)
		if !ok {
			return idx
		}
		idx = u.Unwrap()
	}
}

// TopKAnswer is one served top-k result with its provenance: the model
// version it was computed against and the backend that answered.
type TopKAnswer struct {
	Results []core.Scored
	Version uint64
	Backend string
}

// TopLinks answers a link-prediction top-k query through the sharded
// index when a fresh consistent shard set exists, falling back to the
// brute-force scan otherwise. mode is ModeExact (default when empty) or
// ModeIVF; nprobe overrides the per-shard IVF probe count when > 0. The
// query node itself is excluded.
func (e *Engine) TopLinks(u, k int, mode string, nprobe int) (TopKAnswer, error) {
	m := e.Model()
	shards := e.freshShards(m)
	res, backend, err := m.topLinks(shards, e.met, u, k, mode, nprobe)
	if err != nil {
		return TopKAnswer{}, err
	}
	return TopKAnswer{Results: res, Version: m.Version, Backend: backend}, nil
}

// TopAttrs answers an attribute-inference top-k query; see TopLinks for
// mode/nprobe semantics.
func (e *Engine) TopAttrs(v, k int, mode string, nprobe int) (TopKAnswer, error) {
	m := e.Model()
	shards := e.freshShards(m)
	res, backend, err := m.topAttrs(shards, e.met, v, k, mode, nprobe)
	if err != nil {
		return TopKAnswer{}, err
	}
	return TopKAnswer{Results: res, Version: m.Version, Backend: backend}, nil
}

// validateTopK checks the shared top-k query parameters.
func validateTopK(k int, mode string, nprobe int) (string, error) {
	if k < 1 {
		return "", fmt.Errorf("engine: k must be >= 1, got %d", k)
	}
	if mode == "" {
		mode = ModeExact
	}
	switch mode {
	case ModeExact, ModeIVF, ModeSQ8, ModeIVFSQ, ModeFP16, ModeIVFFP16:
	default:
		return "", fmt.Errorf("engine: unknown mode %q (want %q, %q, %q, %q, %q, or %q)",
			mode, ModeExact, ModeIVF, ModeSQ8, ModeIVFSQ, ModeFP16, ModeIVFFP16)
	}
	if nprobe < 0 {
		return "", fmt.Errorf("engine: nprobe must be >= 0 (0 means the index default), got %d", nprobe)
	}
	return mode, nil
}

// pickSubs selects one backend field across a shard set. The choice is
// uniform across shards (every generation builds the same backends), so
// one backend label describes the whole fan-out. A mode whose backend was
// not built degrades along ivfsq → ivf → exact / sq8 → exact (and
// likewise ivffp16 → ivf → exact / fp16 → exact), mirroring how an IVF
// request on an exact-only index already served exact.
func pickSubs(shards []*shardIdx, mode string, get func(*shardIdx, string) index.Index) ([]index.Index, string) {
	backend := BackendExact
	switch {
	case mode == ModeIVFSQ && get(shards[0], BackendIVFSQ) != nil:
		backend = BackendIVFSQ
	case mode == ModeIVFFP16 && get(shards[0], BackendIVFFP16) != nil:
		backend = BackendIVFFP16
	case (mode == ModeIVF || mode == ModeIVFSQ || mode == ModeIVFFP16) && get(shards[0], BackendIVF) != nil:
		backend = BackendIVF
	case mode == ModeSQ8 && get(shards[0], BackendSQ8) != nil:
		backend = BackendSQ8
	case mode == ModeFP16 && get(shards[0], BackendFP16) != nil:
		backend = BackendFP16
	}
	subs := make([]index.Index, len(shards))
	for i, si := range shards {
		subs[i] = get(si, backend)
	}
	return subs, backend
}

// linkSubs selects each shard's link backend for mode.
func linkSubs(shards []*shardIdx, mode string) ([]index.Index, string) {
	return pickSubs(shards, mode, func(si *shardIdx, backend string) index.Index {
		switch backend {
		case BackendIVF:
			return si.linksIVF
		case BackendSQ8:
			return si.linksSQ
		case BackendIVFSQ:
			return si.linksIVFSQ
		case BackendFP16:
			return si.linksFP16
		case BackendIVFFP16:
			return si.linksIVFFP
		}
		return si.links
	})
}

// attrSubs selects each shard's attribute backend for mode. Shards past
// the attribute row space contribute nil entries, which the fan-out
// skips.
func attrSubs(shards []*shardIdx, mode string) ([]index.Index, string) {
	return pickSubs(shards, mode, func(si *shardIdx, backend string) index.Index {
		switch backend {
		case BackendIVF:
			return si.attrsIVF
		case BackendSQ8:
			return si.attrsSQ
		case BackendIVFSQ:
			return si.attrsIVFSQ
		case BackendFP16:
			return si.attrsFP16
		case BackendIVFFP16:
			return si.attrsIVFFP
		}
		return si.attrs
	})
}

// topLinks runs the link top-k against this model, fanning out over
// shards when non-nil. met may be nil (Model.Execute outside an engine);
// with one, the shard fan-out, merge, and scan-fallback stages record
// into the engine's stage histograms.
func (m *Model) topLinks(shards []*shardIdx, met *engineMetrics, u, k int, mode string, nprobe int) ([]core.Scored, string, error) {
	mode, err := validateTopK(k, mode, nprobe)
	if err != nil {
		return nil, "", err
	}
	if u < 0 || u >= m.Nodes() {
		return nil, "", fmt.Errorf("engine: src %d out of range [0,%d)", u, m.Nodes())
	}
	if shards != nil {
		q := m.Emb.Xf.Row(u)
		skip := func(id int) bool { return id == u }
		subs, backend := linkSubs(shards, mode)
		res, fan, merge := index.SearchShardedTimed(subs, q, k, index.Options{NProbe: nprobe, Skip: skip})
		recordStages(met, fan, merge)
		return res, backend, nil
	}
	sp := obs.StartSpan(met.scanHist())
	res := m.Scorer.TopKTargets(u, k, nil)
	sp.End()
	return res, BackendScan, nil
}

// topAttrs runs the attribute top-k against this model, fanning out over
// shards when non-nil; see topLinks for met semantics.
func (m *Model) topAttrs(shards []*shardIdx, met *engineMetrics, v, k int, mode string, nprobe int) ([]core.Scored, string, error) {
	mode, err := validateTopK(k, mode, nprobe)
	if err != nil {
		return nil, "", err
	}
	if v < 0 || v >= m.Nodes() {
		return nil, "", fmt.Errorf("engine: node %d out of range [0,%d)", v, m.Nodes())
	}
	if shards != nil {
		q := m.Emb.AttrQueryInto(v, getVec(m.Emb.Xf.Cols))
		subs, backend := attrSubs(shards, mode)
		res, fan, merge := index.SearchShardedTimed(subs, q, k, index.Options{NProbe: nprobe})
		recordStages(met, fan, merge)
		putVec(q)
		return res, backend, nil
	}
	sp := obs.StartSpan(met.scanHist())
	res := m.Emb.TopKAttrs(v, k, nil)
	sp.End()
	return res, BackendScan, nil
}

// recordStages records a fan-out/merge timing pair; nil-safe for met.
func recordStages(met *engineMetrics, fan, merge time.Duration) {
	if met == nil {
		return
	}
	met.stageFanout.Observe(fan)
	met.stageMerge.Observe(merge)
}
