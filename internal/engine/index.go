package engine

// Sharded per-version top-k index lifecycle. An Engine with indexing
// enabled partitions the candidate matrices — Z = Xb·G for links (n
// rows), Y for attributes (d rows) — into S contiguous row shards. Each
// shard owns an exact backend (and optionally IVF and the SQ8/IVFSQ
// quantized tiers) over its block only, published through its own atomic
// pointer and rebuilt by its own worker goroutine: after an update, S
// independent, smaller rebuilds overlap instead of one O(n) blocking
// build. All of a shard's enabled representations are built before the
// shard publishes, so the tiers can never serve mixed versions.
//
// A query resolves the model first, then accepts the shard set only if
// EVERY shard's published index matches that model version exactly — a
// consistent cut. Anything else (disabled, some shard still building, or
// built for a different generation) falls back to the model's brute-force
// scan path, so a query never mixes shards from two generations and is
// never answered by a stale index: between an update landing and the last
// shard publishing, queries degrade to the scan (reported as backend
// "scan") but keep answering at the current model version. Accepted
// queries fan out across the shards in parallel and merge through
// core.TopK, which keeps sharded exact answers bit-for-bit identical to
// single-shard exact.

import (
	"fmt"
	"sync"
	"sync/atomic"

	"pane/internal/core"
	"pane/internal/index"
	"pane/internal/mat"
	"pane/internal/store"
)

// Query modes accepted by the top-k paths.
const (
	ModeExact = "exact" // exact answer: indexed scan, or brute force mid-rebuild
	ModeIVF   = "ivf"   // approximate answer from the IVF backend when fresh
	ModeSQ8   = "sq8"   // quantized flat scan + exact re-rank
	ModeIVFSQ = "ivfsq" // quantized inverted-file scan + exact re-rank
)

// Backend labels reported with every top-k answer.
const (
	BackendExact = "exact" // precomputed candidate matrix, parallel blocked scan
	BackendIVF   = "ivf"   // inverted-file approximate search
	BackendSQ8   = "sq8"   // int8 quantized scan, exact re-rank
	BackendIVFSQ = "ivfsq" // quantized inverted-file scan, exact re-rank
	BackendScan  = "scan"  // per-query brute force; no fresh index (disabled or mid-rebuild)
)

// IndexConfig selects and tunes the per-version indexes an Engine
// maintains. The zero value enables the exact backend only, unsharded;
// defaults are resolved against the model at build time.
type IndexConfig struct {
	// IVF additionally builds the approximate backend.
	IVF bool
	// Quantize additionally builds the SQ8 quantized tier: an int8 copy
	// of each shard's candidate rows scanned at ~1/8 the memory traffic,
	// re-ranked exactly. With IVF also set, the per-list IVFSQ variant is
	// built alongside (sharing the IVF's k-means, so it costs one extra
	// quantization pass, not a second clustering).
	Quantize bool
	// Rerank is the quantized survivor multiplier: an SQ8/IVFSQ query
	// re-ranks the Rerank*k best quantized scores exactly. 0 means
	// index.DefaultRerank.
	Rerank int
	// NList is the IVF coarse cluster count per shard; 0 means
	// ~sqrt(shard rows).
	NList int
	// NProbe is the default number of IVF lists probed per query in each
	// shard; 0 means max(1, nlist/8). Queries can override it per request.
	NProbe int
	// Threads is the index build/search parallelism; 0 follows the model
	// config's Threads. Builds divide it across concurrently rebuilding
	// shards.
	Threads int
	// Seed drives k-means determinism; 0 follows the model config's Seed.
	Seed int64
	// Shards is the number of contiguous row shards the candidate
	// matrices are split into; values <= 1 mean one shard, and values
	// above the row count are clamped. Each shard rebuilds independently
	// and queries fan out across all of them.
	Shards int
}

// WithIndex enables per-version top-k indexing with the given config.
func WithIndex(cfg IndexConfig) Option {
	return func(e *Engine) {
		c := cfg
		e.idxCfg = &c
	}
}

// WithoutIndex disables indexing even if a restored bundle carries an
// index configuration (engine.Open applies bundle settings first, then
// caller options).
func WithoutIndex() Option {
	return func(e *Engine) { e.idxCfg = nil }
}

// WithFallbackIndex enables indexing with cfg only when no configuration
// was set earlier in the option list — notably when a restored bundle
// did not record one. It lets a server default to indexed serving while
// still honoring explicit bundle or caller settings.
func WithFallbackIndex(cfg IndexConfig) Option {
	return func(e *Engine) {
		if e.idxCfg == nil {
			c := cfg
			e.idxCfg = &c
		}
	}
}

// WithShards overrides the shard count of whatever index configuration
// is in effect at this point in the option list — typically one restored
// from a bundle — without touching its other settings. No-op when
// indexing is disabled.
func WithShards(n int) Option {
	return func(e *Engine) {
		if e.idxCfg != nil {
			e.idxCfg.Shards = n
		}
	}
}

// WithManualIndexRebuild turns off the automatic asynchronous rebuild
// after updates; callers invoke RebuildIndex themselves. Tests use this
// to pin the "update applied, index not yet republished" state
// deterministically.
func WithManualIndexRebuild() Option {
	return func(e *Engine) { e.idxManual = true }
}

// shardIdx is one shard's immutable index generation, valid for exactly
// one model version. All ids it returns are global (see index.Shift).
// Every enabled representation is built BEFORE the shardIdx is published
// through its slot, so a query can never observe a shard whose exact tier
// is at one version and whose quantized tier is at another.
type shardIdx struct {
	version    uint64
	links      index.Index // over Z[lo:hi); query vector is Xf[u]
	attrs      index.Index // over Y[alo:ahi); nil when the shard has no attr rows
	linksIVF   index.Index // nil unless cfg.IVF
	attrsIVF   index.Index
	linksSQ    index.Index // nil unless cfg.Quantize
	attrsSQ    index.Index
	linksIVFSQ index.Index // nil unless cfg.IVF && cfg.Quantize
	attrsIVFSQ index.Index
}

// shardSet is the sharded serving-index state of one Engine: the fixed
// shard layout (node and attribute universes are fixed at training time,
// so the ranges never change), one published-index slot per shard, and
// the per-shard rebuild scheduling state.
type shardSet struct {
	linkRanges [][2]int // contiguous row ranges of Z; one per shard
	attrRanges [][2]int // contiguous row ranges of Y; len <= len(linkRanges)
	slots      []atomic.Pointer[shardIdx]

	// Per-shard async rebuild scheduling, all under mu: at most one
	// worker goroutine runs per shard (running[s]); updates mark dirty[s]
	// instead of spawning, and a worker loops until it exits with its
	// dirty flag clear — so every published version is either seen by the
	// running worker's next loop or triggers a fresh worker, and a
	// sustained update stream never piles up goroutines. WaitForIndex
	// waits on idleC for every shard's flags to drop. buildMu serializes
	// the builds of one shard (worker vs. manual RebuildIndex) without
	// ever blocking other shards.
	mu      sync.Mutex
	idleC   *sync.Cond
	dirty   []bool
	running []bool
	buildMu []sync.Mutex
}

// newShardSet lays out s shards over n candidate rows and d attribute
// rows. SplitRanges clamps: more shards than rows collapses to one shard
// per row, and the attribute space may span fewer shards than the link
// space when d < n.
func newShardSet(n, d, s int) *shardSet {
	if s < 1 {
		s = 1
	}
	linkRanges := mat.SplitRanges(n, s)
	if len(linkRanges) == 0 { // n == 0: keep one empty shard so slots exist
		linkRanges = [][2]int{{0, 0}}
	}
	ss := &shardSet{
		linkRanges: linkRanges,
		attrRanges: mat.SplitRanges(d, len(linkRanges)),
		slots:      make([]atomic.Pointer[shardIdx], len(linkRanges)),
		dirty:      make([]bool, len(linkRanges)),
		running:    make([]bool, len(linkRanges)),
		buildMu:    make([]sync.Mutex, len(linkRanges)),
	}
	ss.idleC = sync.NewCond(&ss.mu)
	return ss
}

// buildShardIdx materializes shard s's indexes for m. Only the shard's
// own block of Z is computed (rows linkRanges[s]), which is what makes S
// rebuilds S-times smaller than one monolithic build.
func (e *Engine) buildShardIdx(m *Model, s int) *shardIdx {
	cfg := *e.idxCfg
	ss := e.shards
	threads := cfg.Threads
	if threads <= 0 {
		threads = m.Cfg.Threads
	}
	// Divide build parallelism across shards: their rebuilds overlap, so
	// each gets a slice of the budget rather than all of it.
	threads /= len(ss.slots)
	if threads < 1 {
		threads = 1
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = m.Cfg.Seed
	}
	ivfCfg := index.IVFConfig{
		NList: cfg.NList, NProbe: cfg.NProbe,
		Seed: seed, Threads: threads,
	}
	lo, hi := ss.linkRanges[s][0], ss.linkRanges[s][1]
	z := m.Scorer.TransformedCandidatesRange(lo, hi, threads)
	si := &shardIdx{
		version: m.Version,
		links:   index.Shift(index.NewExact(z, threads), lo),
	}
	if cfg.IVF {
		iv := index.BuildIVF(z, ivfCfg)
		si.linksIVF = index.Shift(iv, lo)
		if cfg.Quantize {
			si.linksIVFSQ = index.Shift(index.NewIVFSQ(iv, z, cfg.Rerank), lo)
		}
	}
	if cfg.Quantize {
		si.linksSQ = index.Shift(e.buildSQ8(quantLinks, m.Version, z, lo, cfg.Rerank, threads), lo)
	}
	if s < len(ss.attrRanges) {
		alo, ahi := ss.attrRanges[s][0], ss.attrRanges[s][1]
		y := m.Emb.Y.RowSlice(alo, ahi)
		si.attrs = index.Shift(index.NewExact(y, threads), alo)
		if cfg.IVF {
			iv := index.BuildIVF(y, ivfCfg)
			si.attrsIVF = index.Shift(iv, alo)
			if cfg.Quantize {
				si.attrsIVFSQ = index.Shift(index.NewIVFSQ(iv, y, cfg.Rerank), alo)
			}
		}
		if cfg.Quantize {
			si.attrsSQ = index.Shift(e.buildSQ8(quantAttrs, m.Version, y, alo, cfg.Rerank, threads), alo)
		}
	}
	return si
}

// Quantized-payload spaces a bundle may carry (see buildSQ8).
const (
	quantLinks = iota // the link candidate matrix Z = Xb·G
	quantAttrs        // the attribute candidate matrix Y
)

// buildSQ8 builds one shard's SQ8 tier over full, the shard's block of
// candidate rows [lo, lo+full.Rows) of the given space. When a
// bundle-restored encoding matches this model version and shape, its row
// slice is reused instead of re-quantizing — per-row quantization makes
// the slice bit-identical to a fresh encoding, so restored and
// self-computed tiers are interchangeable; on any mismatch (newer model
// version, different shape) the payload is ignored and the rows are
// quantized fresh.
func (e *Engine) buildSQ8(space int, version uint64, full *mat.Dense, lo, rerank, threads int) *index.SQ8 {
	if rq := e.restoredQuant.Load(); rq != nil && rq.version == version {
		qm := &rq.links
		if space == quantAttrs {
			qm = &rq.attrs
		}
		hi := lo + full.Rows
		if qm.Dim == full.Cols && hi <= qm.Rows {
			return index.NewSQ8FromCodes(full,
				qm.Codes[lo*qm.Dim:hi*qm.Dim], qm.Scale[lo:hi], qm.Base[lo:hi],
				rerank, threads)
		}
	}
	return index.NewSQ8(full, rerank, threads)
}

// freshShards returns one consistent cut of the published shard indexes:
// every shard serving exactly m's version. Anything else (disabled, some
// shard still building, or a mixed generation set mid-catchup) returns
// nil and the caller scans — a query can never combine shards from two
// model versions.
func (e *Engine) freshShards(m *Model) []*shardIdx {
	ss := e.shards
	if ss == nil {
		return nil
	}
	out := make([]*shardIdx, len(ss.slots))
	for s := range ss.slots {
		si := ss.slots[s].Load()
		if si == nil || si.version != m.Version {
			return nil
		}
		out[s] = si
	}
	return out
}

// scheduleIndexRebuild records that the published model moved ahead of
// the index and ensures each shard has (or gets) a worker responsible for
// catching up. No-op when indexing is disabled or manual. Callers publish
// the new model BEFORE calling this, so marking dirty afterwards
// guarantees the version is covered: a running worker re-checks its flag
// before exiting (under mu, so a concurrent mark either is seen by that
// check or observes running == false and spawns a new worker), and every
// build resolves the model fresh. A sustained update stream therefore
// collapses into at most one build behind the in-flight one per shard,
// with never more than one goroutine alive per shard.
func (e *Engine) scheduleIndexRebuild() {
	if e.shards == nil || e.idxManual {
		return
	}
	ss := e.shards
	ss.mu.Lock()
	for s := range ss.slots {
		ss.dirty[s] = true
		if !ss.running[s] {
			ss.running[s] = true
			go e.shardWorker(s)
		}
	}
	ss.mu.Unlock()
}

// shardWorker drains shard s's dirty flag, rebuilding toward whatever
// model is current each iteration, and announces idleness on exit.
func (e *Engine) shardWorker(s int) {
	ss := e.shards
	for {
		ss.mu.Lock()
		if !ss.dirty[s] {
			ss.running[s] = false
			ss.idleC.Broadcast()
			ss.mu.Unlock()
			return
		}
		ss.dirty[s] = false
		ss.mu.Unlock()
		e.buildShard(s)
	}
}

// buildShard brings shard s up to the engine's current model version.
// Redundant calls — a shard index at or past that version is already
// published — return immediately, so a burst of updates collapses into
// one build of the latest version per shard.
func (e *Engine) buildShard(s int) {
	ss := e.shards
	ss.buildMu[s].Lock()
	defer ss.buildMu[s].Unlock()
	m := e.Model()
	if cur := ss.slots[s].Load(); cur != nil && cur.version >= m.Version {
		return
	}
	ss.slots[s].Store(e.buildShardIdx(m, s))
}

// RebuildIndex synchronously builds and publishes every shard's index for
// the engine's current model version, rebuilding the shards concurrently.
// Shards already at or past that version are skipped.
func (e *Engine) RebuildIndex() {
	if e.shards == nil {
		return
	}
	var wg sync.WaitGroup
	for s := range e.shards.slots {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			e.buildShard(s)
		}(s)
	}
	wg.Wait()
}

// WaitForIndex blocks until every shard's asynchronous rebuild worker has
// drained its scheduled rebuilds, and is safe to call while further
// updates keep scheduling new ones. After it returns (and absent
// concurrent updates) every published shard matches the current model
// version — under automatic rebuilds, that is; with
// WithManualIndexRebuild nothing is ever scheduled, so it returns
// immediately and freshness is the caller's RebuildIndex responsibility.
func (e *Engine) WaitForIndex() {
	ss := e.shards
	if ss == nil {
		return
	}
	ss.mu.Lock()
	for ss.anyBusy() {
		ss.idleC.Wait()
	}
	ss.mu.Unlock()
}

// anyBusy reports whether any shard has a running worker or a pending
// rebuild. Callers hold mu.
func (ss *shardSet) anyBusy() bool {
	for s := range ss.running {
		if ss.running[s] || ss.dirty[s] {
			return true
		}
	}
	return false
}

// IndexStatus reports the serving-index state for monitoring.
type IndexStatus struct {
	Enabled bool `json:"enabled"`
	// Version is the model version served by the full shard set: the
	// minimum over the per-shard generations, 0 while any shard has yet
	// to publish. Queries use the index only when it equals the current
	// model version.
	Version uint64 `json:"version,omitempty"`
	IVF     bool   `json:"ivf,omitempty"`
	NList   int    `json:"nlist,omitempty"`  // per-shard IVF lists (first shard)
	NProbe  int    `json:"nprobe,omitempty"` // default probes per IVF query
	// Quantize reports whether the SQ8/IVFSQ tiers are built; Rerank is
	// their default exact-re-rank survivor multiplier.
	Quantize bool `json:"quantize,omitempty"`
	Rerank   int  `json:"rerank,omitempty"`
	// Shards is the shard count; ShardVersions the per-shard index
	// generations, exposing rebuild progress shard by shard (0 = not yet
	// published).
	Shards        int      `json:"shards,omitempty"`
	ShardVersions []uint64 `json:"shard_versions,omitempty"`
}

// IndexStatus returns the current index state.
func (e *Engine) IndexStatus() IndexStatus {
	if e.shards == nil {
		return IndexStatus{}
	}
	ss := e.shards
	st := IndexStatus{
		Enabled:       true,
		IVF:           e.idxCfg.IVF,
		Quantize:      e.idxCfg.Quantize,
		Shards:        len(ss.slots),
		ShardVersions: make([]uint64, len(ss.slots)),
	}
	if st.Quantize {
		st.Rerank = e.idxCfg.Rerank
		if st.Rerank <= 0 {
			st.Rerank = index.DefaultRerank
		}
	}
	minVer, complete := uint64(0), true
	for s := range ss.slots {
		si := ss.slots[s].Load()
		if si == nil {
			complete = false
			continue
		}
		st.ShardVersions[s] = si.version
		if minVer == 0 || si.version < minVer {
			minVer = si.version
		}
		if s == 0 && si.linksIVF != nil {
			if iv, ok := unshift(si.linksIVF).(*index.IVF); ok {
				st.NList = iv.NList()
				st.NProbe = iv.DefaultNProbe()
			}
		}
	}
	if complete {
		st.Version = minVer
	}
	return st
}

// assembleQuant reassembles the full-matrix SQ8 payload from a fresh
// consistent shard cut at m's version, or nil when any shard is stale or
// still building — the payload is an optional bundle section, and a
// loader just re-quantizes (bit-identically) without it. Because the
// encoding is per-row, concatenating the shards' blocks in shard order IS
// the whole matrix's encoding.
func (e *Engine) assembleQuant(m *Model) *store.QuantPayload {
	shards := e.freshShards(m)
	if shards == nil {
		return nil
	}
	qp := &store.QuantPayload{
		Links: store.QuantizedMatrix{Rows: m.Nodes(), Dim: m.Emb.Xf.Cols},
		Attrs: store.QuantizedMatrix{Rows: m.Attrs(), Dim: m.Emb.Xf.Cols},
	}
	appendSQ := func(qm *store.QuantizedMatrix, idx index.Index) bool {
		sq, ok := unshift(idx).(*index.SQ8)
		if !ok {
			return false
		}
		qm.Codes = append(qm.Codes, sq.Codes()...)
		qm.Scale = append(qm.Scale, sq.Scale()...)
		qm.Base = append(qm.Base, sq.Base()...)
		return true
	}
	for _, si := range shards {
		if si.linksSQ == nil || !appendSQ(&qp.Links, si.linksSQ) {
			return nil
		}
		if si.attrsSQ != nil && !appendSQ(&qp.Attrs, si.attrsSQ) {
			return nil
		}
	}
	if len(qp.Links.Scale) != qp.Links.Rows || len(qp.Attrs.Scale) != qp.Attrs.Rows {
		return nil // defensive: a partial assembly must not be persisted
	}
	return qp
}

// unshift unwraps index.Shift wrappers for status introspection.
func unshift(idx index.Index) index.Index {
	type unwrapper interface{ Unwrap() index.Index }
	for {
		u, ok := idx.(unwrapper)
		if !ok {
			return idx
		}
		idx = u.Unwrap()
	}
}

// TopKAnswer is one served top-k result with its provenance: the model
// version it was computed against and the backend that answered.
type TopKAnswer struct {
	Results []core.Scored
	Version uint64
	Backend string
}

// TopLinks answers a link-prediction top-k query through the sharded
// index when a fresh consistent shard set exists, falling back to the
// brute-force scan otherwise. mode is ModeExact (default when empty) or
// ModeIVF; nprobe overrides the per-shard IVF probe count when > 0. The
// query node itself is excluded.
func (e *Engine) TopLinks(u, k int, mode string, nprobe int) (TopKAnswer, error) {
	m := e.Model()
	shards := e.freshShards(m)
	res, backend, err := m.topLinks(shards, u, k, mode, nprobe)
	if err != nil {
		return TopKAnswer{}, err
	}
	return TopKAnswer{Results: res, Version: m.Version, Backend: backend}, nil
}

// TopAttrs answers an attribute-inference top-k query; see TopLinks for
// mode/nprobe semantics.
func (e *Engine) TopAttrs(v, k int, mode string, nprobe int) (TopKAnswer, error) {
	m := e.Model()
	shards := e.freshShards(m)
	res, backend, err := m.topAttrs(shards, v, k, mode, nprobe)
	if err != nil {
		return TopKAnswer{}, err
	}
	return TopKAnswer{Results: res, Version: m.Version, Backend: backend}, nil
}

// validateTopK checks the shared top-k query parameters.
func validateTopK(k int, mode string, nprobe int) (string, error) {
	if k < 1 {
		return "", fmt.Errorf("engine: k must be >= 1, got %d", k)
	}
	if mode == "" {
		mode = ModeExact
	}
	switch mode {
	case ModeExact, ModeIVF, ModeSQ8, ModeIVFSQ:
	default:
		return "", fmt.Errorf("engine: unknown mode %q (want %q, %q, %q, or %q)",
			mode, ModeExact, ModeIVF, ModeSQ8, ModeIVFSQ)
	}
	if nprobe < 0 {
		return "", fmt.Errorf("engine: nprobe must be >= 0 (0 means the index default), got %d", nprobe)
	}
	return mode, nil
}

// pickSubs selects one backend field across a shard set. The choice is
// uniform across shards (every generation builds the same backends), so
// one backend label describes the whole fan-out. A mode whose backend was
// not built degrades along ivfsq → ivf → exact / sq8 → exact, mirroring
// how an IVF request on an exact-only index already served exact.
func pickSubs(shards []*shardIdx, mode string, get func(*shardIdx, string) index.Index) ([]index.Index, string) {
	backend := BackendExact
	switch {
	case mode == ModeIVFSQ && get(shards[0], BackendIVFSQ) != nil:
		backend = BackendIVFSQ
	case (mode == ModeIVF || mode == ModeIVFSQ) && get(shards[0], BackendIVF) != nil:
		backend = BackendIVF
	case mode == ModeSQ8 && get(shards[0], BackendSQ8) != nil:
		backend = BackendSQ8
	}
	subs := make([]index.Index, len(shards))
	for i, si := range shards {
		subs[i] = get(si, backend)
	}
	return subs, backend
}

// linkSubs selects each shard's link backend for mode.
func linkSubs(shards []*shardIdx, mode string) ([]index.Index, string) {
	return pickSubs(shards, mode, func(si *shardIdx, backend string) index.Index {
		switch backend {
		case BackendIVF:
			return si.linksIVF
		case BackendSQ8:
			return si.linksSQ
		case BackendIVFSQ:
			return si.linksIVFSQ
		}
		return si.links
	})
}

// attrSubs selects each shard's attribute backend for mode. Shards past
// the attribute row space contribute nil entries, which the fan-out
// skips.
func attrSubs(shards []*shardIdx, mode string) ([]index.Index, string) {
	return pickSubs(shards, mode, func(si *shardIdx, backend string) index.Index {
		switch backend {
		case BackendIVF:
			return si.attrsIVF
		case BackendSQ8:
			return si.attrsSQ
		case BackendIVFSQ:
			return si.attrsIVFSQ
		}
		return si.attrs
	})
}

// topLinks runs the link top-k against this model, fanning out over
// shards when non-nil.
func (m *Model) topLinks(shards []*shardIdx, u, k int, mode string, nprobe int) ([]core.Scored, string, error) {
	mode, err := validateTopK(k, mode, nprobe)
	if err != nil {
		return nil, "", err
	}
	if u < 0 || u >= m.Nodes() {
		return nil, "", fmt.Errorf("engine: src %d out of range [0,%d)", u, m.Nodes())
	}
	if shards != nil {
		q := m.Emb.Xf.Row(u)
		skip := func(id int) bool { return id == u }
		subs, backend := linkSubs(shards, mode)
		return index.SearchSharded(subs, q, k, index.Options{NProbe: nprobe, Skip: skip}), backend, nil
	}
	return m.Scorer.TopKTargets(u, k, nil), BackendScan, nil
}

// topAttrs runs the attribute top-k against this model, fanning out over
// shards when non-nil.
func (m *Model) topAttrs(shards []*shardIdx, v, k int, mode string, nprobe int) ([]core.Scored, string, error) {
	mode, err := validateTopK(k, mode, nprobe)
	if err != nil {
		return nil, "", err
	}
	if v < 0 || v >= m.Nodes() {
		return nil, "", fmt.Errorf("engine: node %d out of range [0,%d)", v, m.Nodes())
	}
	if shards != nil {
		q := m.Emb.AttrQueryInto(v, getVec(m.Emb.Xf.Cols))
		subs, backend := attrSubs(shards, mode)
		res := index.SearchSharded(subs, q, k, index.Options{NProbe: nprobe})
		putVec(q)
		return res, backend, nil
	}
	return m.Emb.TopKAttrs(v, k, nil), BackendScan, nil
}
