package engine

import (
	"math/rand"
	"sync"
	"testing"

	"pane/internal/core"
	"pane/internal/datagen"
	"pane/internal/graph"
)

// shardTestModel trains one modest community graph once and returns the
// pieces needed to wrap the SAME embedding in engines with different
// shard counts — so cross-engine comparisons see identical vectors.
func shardTestModel(t *testing.T) (*graph.Graph, *core.Embedding, core.Config) {
	t.Helper()
	g, err := datagen.Generate(datagen.Config{
		Name: "shardtest", N: 120, AvgOutDeg: 6, D: 15, AttrsPer: 4,
		Communities: 5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{K: 8, Alpha: 0.5, Eps: 0.25, Seed: 3}
	emb, err := core.PANE(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g, emb, cfg
}

// TestShardedExactBitForBitIdentical is the acceptance criterion of the
// sharded engine: exact top-k through S shards must equal single-shard
// exact EXACTLY — same ids, same float bits — for links and attributes,
// via both the single-query path and the shard-first batch path.
func TestShardedExactBitForBitIdentical(t *testing.T) {
	g, emb, cfg := shardTestModel(t)
	newEng := func(shards int) *Engine {
		eng, err := New(g, emb, cfg, WithIndex(IndexConfig{IVF: true, NList: 3, NProbe: 3, Shards: shards}))
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	base := newEng(1)
	for _, s := range []int{2, 3, 4, 7} {
		eng := newEng(s)
		if st := eng.IndexStatus(); st.Shards != s {
			t.Fatalf("shards=%d: status reports %d shards", s, st.Shards)
		}
		for u := 0; u < g.N; u += 7 {
			want, err := base.TopLinks(u, 10, ModeExact, 0)
			if err != nil {
				t.Fatal(err)
			}
			got, err := eng.TopLinks(u, 10, ModeExact, 0)
			if err != nil {
				t.Fatal(err)
			}
			if got.Backend != BackendExact {
				t.Fatalf("shards=%d u=%d: backend %q", s, u, got.Backend)
			}
			if len(got.Results) != len(want.Results) {
				t.Fatalf("shards=%d u=%d: %d results, want %d", s, u, len(got.Results), len(want.Results))
			}
			for i := range want.Results {
				if got.Results[i] != want.Results[i] {
					t.Fatalf("shards=%d u=%d rank=%d: %v != %v", s, u, i, got.Results[i], want.Results[i])
				}
			}
			wantA, err := base.TopAttrs(u, 5, ModeExact, 0)
			if err != nil {
				t.Fatal(err)
			}
			gotA, err := eng.TopAttrs(u, 5, ModeExact, 0)
			if err != nil {
				t.Fatal(err)
			}
			for i := range wantA.Results {
				if gotA.Results[i] != wantA.Results[i] {
					t.Fatalf("shards=%d attrs u=%d rank=%d: %v != %v", s, u, i, gotA.Results[i], wantA.Results[i])
				}
			}
		}
		// The shard-first batch path must agree with the single-query path.
		k := 10
		qs := []Query{
			{Op: OpTopLinks, Src: 0, K: &k},
			{Op: OpTopAttrs, Node: 3, K: &k},
			{Op: OpLinkScore, Src: 1, Dst: 2},
			{Op: OpTopLinks, Src: 5, K: &k, Mode: ModeIVF, NProbe: 1000}, // full probe
		}
		wantRes, wantVer := base.Execute(qs)
		gotRes, gotVer := eng.Execute(qs)
		if wantVer != gotVer {
			t.Fatalf("batch versions %d vs %d", wantVer, gotVer)
		}
		for i := range wantRes {
			if wantRes[i].Err != "" || gotRes[i].Err != "" {
				t.Fatalf("batch %d errs: %q / %q", i, wantRes[i].Err, gotRes[i].Err)
			}
			if len(wantRes[i].Top) != len(gotRes[i].Top) {
				t.Fatalf("batch %d: %d vs %d results", i, len(gotRes[i].Top), len(wantRes[i].Top))
			}
			for j := range wantRes[i].Top {
				if wantRes[i].Top[j] != gotRes[i].Top[j] {
					t.Fatalf("batch %d rank %d: %v != %v (shards=%d)", i, j, gotRes[i].Top[j], wantRes[i].Top[j], s)
				}
			}
		}
	}
}

// TestShardedStatusTracksPerShardGenerations pins the per-shard
// observable state through a manual rebuild cycle: all shards at v1,
// then all stale (scan fallback at v2, status still showing v1
// generations), then caught up.
func TestShardedStatusTracksPerShardGenerations(t *testing.T) {
	eng := trainTestEngine(t,
		WithIndex(IndexConfig{IVF: true, NList: 2, NProbe: 2, Shards: 3}),
		WithManualIndexRebuild())
	st := eng.IndexStatus()
	if !st.Enabled || st.Version != 1 || st.Shards != 3 || len(st.ShardVersions) != 3 {
		t.Fatalf("fresh status %+v", st)
	}
	for s, v := range st.ShardVersions {
		if v != 1 {
			t.Fatalf("shard %d at generation %d, want 1", s, v)
		}
	}

	if _, err := eng.ApplyEdges([]graph.Edge{{Src: 0, Dst: 5}}); err != nil {
		t.Fatal(err)
	}
	ans, err := eng.TopLinks(0, 3, ModeExact, 0)
	if err != nil || ans.Backend != BackendScan || ans.Version != 2 {
		t.Fatalf("mid-rebuild answer %+v err %v", ans, err)
	}
	st = eng.IndexStatus()
	if st.Version != 1 {
		t.Fatalf("mid-rebuild status version %d, want 1 (all shards stale)", st.Version)
	}

	eng.RebuildIndex()
	st = eng.IndexStatus()
	if st.Version != 2 {
		t.Fatalf("post-rebuild status %+v", st)
	}
	for s, v := range st.ShardVersions {
		if v != 2 {
			t.Fatalf("shard %d at generation %d after rebuild", s, v)
		}
	}
	ans, err = eng.TopLinks(0, 3, ModeIVF, 0)
	if err != nil || ans.Backend != BackendIVF || ans.Version != 2 {
		t.Fatalf("post-rebuild ivf answer %+v err %v", ans, err)
	}
}

// TestShardedLifecycleRace interleaves edge updates, automatic per-shard
// rebuild workers, manual concurrent rebuilds, and sharded top-k queries
// under -race. Its core assertion is the consistent-cut invariant: a
// query either gets NO index (scan fallback at the current version) or a
// shard set in which every shard serves exactly the resolved model
// version — never a mix of generations.
func TestShardedLifecycleRace(t *testing.T) {
	g, emb, cfg := shardTestModel(t)
	eng, err := New(g, emb, cfg, WithIndex(IndexConfig{IVF: true, NList: 2, NProbe: 2, Shards: 4}))
	if err != nil {
		t.Fatal(err)
	}
	const updates = 12
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Queriers: sharded top-k in both modes, plus shard-first batches.
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				u := rng.Intn(g.N)
				mode := ModeExact
				if rng.Intn(2) == 1 {
					mode = ModeIVF
				}
				ans, err := eng.TopLinks(u, 5, mode, 0)
				if err != nil {
					t.Errorf("query: %v", err)
					return
				}
				switch ans.Backend {
				case BackendExact, BackendIVF, BackendScan:
				default:
					t.Errorf("unknown backend %q", ans.Backend)
					return
				}
				if len(ans.Results) != 5 {
					t.Errorf("%d results", len(ans.Results))
					return
				}
				k := 4
				results, _ := eng.Execute([]Query{
					{Op: OpTopLinks, Src: u, K: &k},
					{Op: OpTopAttrs, Node: u, K: &k},
				})
				for _, r := range results {
					if r.Err != "" {
						t.Errorf("batch: %s", r.Err)
						return
					}
					if len(r.Top) != 4 {
						t.Errorf("batch: %d results", len(r.Top))
						return
					}
				}
			}
		}(int64(i))
	}

	// Invariant checker: white-box read of the published shard cut. A
	// non-nil cut must be uniform at the resolved model's exact version.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			m := eng.Model()
			if shards := eng.freshShards(m); shards != nil {
				for s, si := range shards {
					if si.version != m.Version {
						t.Errorf("mixed-version shard set: shard %d at %d, model at %d", s, si.version, m.Version)
						return
					}
				}
			}
		}
	}()

	// Manual rebuilder racing the automatic per-shard workers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			eng.RebuildIndex()
		}
	}()

	// Writer: the update stream driving per-shard rebuild scheduling.
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < updates; i++ {
		if _, err := eng.ApplyEdges([]graph.Edge{{Src: rng.Intn(g.N), Dst: rng.Intn(g.N)}}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	if eng.Version() != 1+updates {
		t.Fatalf("final version %d, want %d", eng.Version(), 1+updates)
	}
	// Once every shard's rebuild queue drains, the full set serves the
	// final version: no shard lost a rebuild, none outran the model.
	eng.WaitForIndex()
	st := eng.IndexStatus()
	if st.Version != eng.Version() {
		t.Fatalf("index status %+v after quiesce, model version %d", st, eng.Version())
	}
	for s, v := range st.ShardVersions {
		if v != eng.Version() {
			t.Fatalf("shard %d at generation %d after quiesce, model at %d", s, v, eng.Version())
		}
	}
	if ans, err := eng.TopLinks(0, 3, ModeIVF, 0); err != nil || ans.Backend != BackendIVF {
		t.Fatalf("post-quiesce ivf query: backend %q err %v", ans.Backend, err)
	}
}

// TestShardConfigSurvivesSnapshot: bundle format v3 records the shard
// layout, so a restored engine rebuilds the same sharded index.
func TestShardConfigSurvivesSnapshot(t *testing.T) {
	eng := trainTestEngine(t, WithIndex(IndexConfig{IVF: true, NList: 2, NProbe: 2, Shards: 3}))
	path := t.TempDir() + "/m.pane"
	if _, err := eng.Snapshot(path); err != nil {
		t.Fatal(err)
	}
	restored, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	st := restored.IndexStatus()
	if !st.Enabled || st.Shards != 3 {
		t.Fatalf("restored status %+v, want 3 shards", st)
	}

	// An explicit WithShards override (paneserve -shards) wins over the
	// bundle's recorded layout without touching its other settings.
	relaid, err := Open(path, WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	if st := relaid.IndexStatus(); st.Shards != 2 || !st.IVF {
		t.Fatalf("WithShards override status %+v, want 2 shards with IVF", st)
	}
	a, err := eng.TopLinks(0, 3, ModeExact, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := restored.TopLinks(0, 3, ModeExact, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Results {
		if a.Results[i] != b.Results[i] {
			t.Fatalf("rank %d: live %v restored %v", i, a.Results[i], b.Results[i])
		}
	}
}
