package engine

import (
	"fmt"
	"sync"

	"pane/internal/core"
	"pane/internal/index"
	"pane/internal/obs"
)

// Batch query execution: N heterogeneous queries evaluated against ONE
// model version. Under live updates this matters — issuing the same
// queries one at a time could straddle a version swap and mix scores from
// two embeddings; a batch never does. Top-k queries in a batch route
// through the same per-version sharded index as the single-query
// endpoints, and each result reports the backend that answered it.
//
// Dispatch is shard-first: instead of fanning each top-k query out to
// every shard (queries × shards goroutines, one dispatch per pair), the
// batch prepares all its top-k searches up front and runs one worker per
// shard that scans every prepared query against that shard's index. The
// per-query partial results are then merged under core.TopK, which is
// order-independent for unique ids — so the batch answers are bit-for-bit
// identical to issuing the queries one at a time, with S dispatches
// instead of queries × S.

// Query ops understood by Execute.
const (
	OpAttrScore = "attr-score" // Eq. 21 affinity of (Node, Attr)
	OpLinkScore = "link-score" // Eq. 22 plausibility of Src → Dst
	OpTopAttrs  = "top-attrs"  // K strongest attributes for Node
	OpTopLinks  = "top-links"  // K most plausible out-neighbors of Src
)

// DefaultK is the top-k result count when a query leaves K unset.
const DefaultK = 10

// Query is one element of a batch. Only the fields relevant to Op are
// read.
type Query struct {
	Op   string `json:"op"`
	Node int    `json:"node"`
	Attr int    `json:"attr"`
	Src  int    `json:"src"`
	Dst  int    `json:"dst"`
	// K is the result count for top-k ops: omitted defaults to DefaultK
	// and is clamped to the candidate count, but an explicit value < 1
	// fails the query rather than being silently rewritten.
	K *int `json:"k,omitempty"`
	// Mode selects the top-k backend: ModeExact (default when empty),
	// ModeIVF, or the quantized tiers ModeSQ8 / ModeIVFSQ.
	Mode string `json:"mode,omitempty"`
	// NProbe overrides the IVF probe count for this query; 0 keeps the
	// index default.
	NProbe int `json:"nprobe,omitempty"`
}

// Result is the outcome of one query. Exactly one of the value fields is
// set on success; Err is set (and the others empty) on a per-query
// failure, so one bad query never fails its batch.
type Result struct {
	Op         string        `json:"op"`
	Score      *float64      `json:"score,omitempty"`
	Undirected *float64      `json:"undirected,omitempty"`
	Top        []core.Scored `json:"top,omitempty"`
	// Backend reports which path answered a top-k op: BackendExact,
	// BackendIVF, BackendSQ8, BackendIVFSQ, or BackendScan (brute force;
	// no fresh index).
	Backend string `json:"backend,omitempty"`
	Err     string `json:"error,omitempty"`
}

// Execute evaluates a batch of heterogeneous queries against an Engine's
// current model — resolving the model and one consistent shard set once,
// so the whole batch is answered at one version — and reports that
// version. With a fresh sharded index the batch's top-k queries are
// dispatched shard-first (see the package comment above).
func (e *Engine) Execute(qs []Query) ([]Result, uint64) {
	m := e.Model()
	shards := e.freshShards(m)
	return m.execute(qs, shards, e.met), m.Version
}

// Execute evaluates the batch against this specific model version. Top-k
// queries take the brute-force scan path; use Engine.Execute for indexed
// batches.
func (m *Model) Execute(qs []Query) []Result { return m.execute(qs, nil, nil) }

// vecPool recycles per-query float64 scratch (the AttrQueryInto targets):
// a batch of attribute top-k queries would otherwise allocate one vector
// per query. Entries are pooled by capacity check, since engines with
// different embedding widths may share the process.
var vecPool sync.Pool

func getVec(n int) []float64 {
	if p, _ := vecPool.Get().(*[]float64); p != nil && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]float64, n)
}

func putVec(v []float64) { vecPool.Put(&v) }

// preparedTopK is one validated top-k search of a batch, ready to run
// against any shard: the query vector, the global-id skip, the resolved
// quantized re-rank multiplier, and the per-shard sub-index selection.
type preparedTopK struct {
	resIdx  int // index of the result slot to fill after the merge
	q       []float64
	qPooled bool // q came from vecPool and is returned after the merge
	k       int
	mult    int
	opt     index.Options
	subs    []index.Index
}

func (m *Model) execute(qs []Query, shards []*shardIdx, met *engineMetrics) []Result {
	out := make([]Result, len(qs))
	var prep []preparedTopK
	for i, q := range qs {
		out[i] = m.run(q, shards, met, i, &prep)
	}
	if len(prep) > 0 {
		runShardFirst(prep, len(shards), out, met)
	}
	return out
}

// runShardFirst executes the batch's prepared top-k searches with one
// worker per shard, then merges each query's per-shard partials into its
// result slot. The merge goes through index.MergePartials — the same
// two-phase survivor cut the single-query fan-out uses — so a quantized
// batch answer is bit-for-bit what the query would get issued alone.
func runShardFirst(prep []preparedTopK, nShards int, out []Result, met *engineMetrics) {
	// partials[p][s] is query p's contribution from shard s.
	partials := make([][]index.Partial, len(prep))
	for p := range partials {
		partials[p] = make([]index.Partial, nShards)
	}
	fanSp := obs.StartSpan(met.fanoutHist())
	var wg sync.WaitGroup
	for s := 0; s < nShards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for p, pq := range prep {
				if sub := pq.subs[s]; sub != nil {
					partials[p][s] = index.PartialSearch(sub, pq.q, pq.k, pq.mult, pq.opt)
				}
			}
		}(s)
	}
	wg.Wait()
	fanSp.End()
	mergeSp := obs.StartSpan(met.mergeHist())
	for p, pq := range prep {
		out[pq.resIdx].Top = index.MergePartials(partials[p], pq.k, pq.mult)
		if pq.qPooled {
			putVec(pq.q)
		}
	}
	mergeSp.End()
}

// run evaluates one query. Scalar ops are answered inline; top-k ops with
// a fresh shard set are validated, appended to prep for the shard-first
// pass, and have their Backend set immediately (the merge later fills
// Top). Without shards, top-k ops scan inline.
func (m *Model) run(q Query, shards []*shardIdx, met *engineMetrics, resIdx int, prep *[]preparedTopK) Result {
	res := Result{Op: q.Op}
	fail := func(format string, args ...interface{}) Result {
		res.Err = fmt.Sprintf(format, args...)
		return res
	}
	inRange := func(v, limit int) bool { return v >= 0 && v < limit }
	switch q.Op {
	case OpAttrScore:
		if !inRange(q.Node, m.Nodes()) {
			return fail("node %d out of range [0,%d)", q.Node, m.Nodes())
		}
		if !inRange(q.Attr, m.Attrs()) {
			return fail("attr %d out of range [0,%d)", q.Attr, m.Attrs())
		}
		s := m.Emb.AttrScore(q.Node, q.Attr)
		res.Score = &s
	case OpLinkScore:
		if !inRange(q.Src, m.Nodes()) {
			return fail("src %d out of range [0,%d)", q.Src, m.Nodes())
		}
		if !inRange(q.Dst, m.Nodes()) {
			return fail("dst %d out of range [0,%d)", q.Dst, m.Nodes())
		}
		s := m.Scorer.Directed(q.Src, q.Dst)
		u := m.Scorer.Undirected(q.Src, q.Dst)
		res.Score = &s
		res.Undirected = &u
	case OpTopAttrs, OpTopLinks:
		k, err := batchK(q.K)
		if err != nil {
			return fail("%v", err)
		}
		if shards == nil {
			var top []core.Scored
			var backend string
			if q.Op == OpTopAttrs {
				top, backend, err = m.topAttrs(nil, met, q.Node, k, q.Mode, q.NProbe)
			} else {
				top, backend, err = m.topLinks(nil, met, q.Src, k, q.Mode, q.NProbe)
			}
			if err != nil {
				return fail("%v", err)
			}
			res.Top, res.Backend = top, backend
			return res
		}
		mode, err := validateTopK(k, q.Mode, q.NProbe)
		if err != nil {
			return fail("%v", err)
		}
		p := preparedTopK{resIdx: resIdx, k: k, opt: index.Options{NProbe: q.NProbe}}
		if q.Op == OpTopAttrs {
			if !inRange(q.Node, m.Nodes()) {
				return fail("engine: node %d out of range [0,%d)", q.Node, m.Nodes())
			}
			p.q = m.Emb.AttrQueryInto(q.Node, getVec(m.Emb.Xf.Cols))
			p.qPooled = true
			p.subs, res.Backend = attrSubs(shards, mode)
		} else {
			if !inRange(q.Src, m.Nodes()) {
				return fail("engine: src %d out of range [0,%d)", q.Src, m.Nodes())
			}
			u := q.Src
			p.q = m.Emb.Xf.Row(u)
			p.opt.Skip = func(id int) bool { return id == u }
			p.subs, res.Backend = linkSubs(shards, mode)
		}
		p.mult = preparedMult(p.subs, p.opt)
		*prep = append(*prep, p)
	default:
		return fail("unknown op %q", q.Op)
	}
	return res
}

// preparedMult resolves the quantized re-rank multiplier for a prepared
// search against the first live shard (the engine builds every shard with
// the same configuration, so any shard answers for all).
func preparedMult(subs []index.Index, opt index.Options) int {
	for _, sub := range subs {
		if sub != nil {
			return index.RerankMult(sub, opt)
		}
	}
	return 1
}

// batchK resolves a batch query's K: nil means DefaultK, and an explicit
// value below 1 is an error — never a silent rewrite.
func batchK(k *int) (int, error) {
	if k == nil {
		return DefaultK, nil
	}
	if *k < 1 {
		return 0, fmt.Errorf("k must be >= 1, got %d", *k)
	}
	return *k, nil
}
