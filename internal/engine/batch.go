package engine

import (
	"fmt"

	"pane/internal/core"
)

// Batch query execution: N heterogeneous queries evaluated against ONE
// model version. Under live updates this matters — issuing the same
// queries one at a time could straddle a version swap and mix scores from
// two embeddings; a batch never does.

// Query ops understood by Execute.
const (
	OpAttrScore = "attr-score" // Eq. 21 affinity of (Node, Attr)
	OpLinkScore = "link-score" // Eq. 22 plausibility of Src → Dst
	OpTopAttrs  = "top-attrs"  // K strongest attributes for Node
	OpTopLinks  = "top-links"  // K most plausible out-neighbors of Src
)

// Query is one element of a batch. Only the fields relevant to Op are
// read; K defaults to 10 and is clamped to the candidate count.
type Query struct {
	Op   string `json:"op"`
	Node int    `json:"node"`
	Attr int    `json:"attr"`
	Src  int    `json:"src"`
	Dst  int    `json:"dst"`
	K    int    `json:"k"`
}

// Result is the outcome of one query. Exactly one of the value fields is
// set on success; Err is set (and the others empty) on a per-query
// failure, so one bad query never fails its batch.
type Result struct {
	Op         string        `json:"op"`
	Score      *float64      `json:"score,omitempty"`
	Undirected *float64      `json:"undirected,omitempty"`
	Top        []core.Scored `json:"top,omitempty"`
	Err        string        `json:"error,omitempty"`
}

// Execute evaluates a batch of heterogeneous queries against an Engine's
// current model and reports the version they were all answered at.
func (e *Engine) Execute(qs []Query) ([]Result, uint64) {
	m := e.Model()
	return m.Execute(qs), m.Version
}

// Execute evaluates the batch against this specific model version.
func (m *Model) Execute(qs []Query) []Result {
	out := make([]Result, len(qs))
	for i, q := range qs {
		out[i] = m.run(q)
	}
	return out
}

func (m *Model) run(q Query) Result {
	res := Result{Op: q.Op}
	fail := func(format string, args ...interface{}) Result {
		res.Err = fmt.Sprintf(format, args...)
		return res
	}
	inRange := func(v, limit int) bool { return v >= 0 && v < limit }
	switch q.Op {
	case OpAttrScore:
		if !inRange(q.Node, m.Nodes()) {
			return fail("node %d out of range [0,%d)", q.Node, m.Nodes())
		}
		if !inRange(q.Attr, m.Attrs()) {
			return fail("attr %d out of range [0,%d)", q.Attr, m.Attrs())
		}
		s := m.Emb.AttrScore(q.Node, q.Attr)
		res.Score = &s
	case OpLinkScore:
		if !inRange(q.Src, m.Nodes()) {
			return fail("src %d out of range [0,%d)", q.Src, m.Nodes())
		}
		if !inRange(q.Dst, m.Nodes()) {
			return fail("dst %d out of range [0,%d)", q.Dst, m.Nodes())
		}
		s := m.Scorer.Directed(q.Src, q.Dst)
		u := m.Scorer.Undirected(q.Src, q.Dst)
		res.Score = &s
		res.Undirected = &u
	case OpTopAttrs:
		if !inRange(q.Node, m.Nodes()) {
			return fail("node %d out of range [0,%d)", q.Node, m.Nodes())
		}
		res.Top = m.Emb.TopKAttrs(q.Node, clampK(q.K, m.Attrs()), nil)
	case OpTopLinks:
		if !inRange(q.Src, m.Nodes()) {
			return fail("src %d out of range [0,%d)", q.Src, m.Nodes())
		}
		res.Top = m.Scorer.TopKTargets(q.Src, clampK(q.K, m.Nodes()), nil)
	default:
		return fail("unknown op %q", q.Op)
	}
	return res
}

func clampK(k, max int) int {
	if k < 1 {
		k = 10
	}
	if k > max {
		k = max
	}
	return k
}
