package engine

import (
	"fmt"

	"pane/internal/core"
)

// Batch query execution: N heterogeneous queries evaluated against ONE
// model version. Under live updates this matters — issuing the same
// queries one at a time could straddle a version swap and mix scores from
// two embeddings; a batch never does. Top-k queries in a batch route
// through the same per-version index as the single-query endpoints, and
// each result reports the backend that answered it.

// Query ops understood by Execute.
const (
	OpAttrScore = "attr-score" // Eq. 21 affinity of (Node, Attr)
	OpLinkScore = "link-score" // Eq. 22 plausibility of Src → Dst
	OpTopAttrs  = "top-attrs"  // K strongest attributes for Node
	OpTopLinks  = "top-links"  // K most plausible out-neighbors of Src
)

// DefaultK is the top-k result count when a query leaves K unset.
const DefaultK = 10

// Query is one element of a batch. Only the fields relevant to Op are
// read.
type Query struct {
	Op   string `json:"op"`
	Node int    `json:"node"`
	Attr int    `json:"attr"`
	Src  int    `json:"src"`
	Dst  int    `json:"dst"`
	// K is the result count for top-k ops: omitted defaults to DefaultK
	// and is clamped to the candidate count, but an explicit value < 1
	// fails the query rather than being silently rewritten.
	K *int `json:"k,omitempty"`
	// Mode selects the top-k backend, ModeExact (default when empty) or
	// ModeIVF.
	Mode string `json:"mode,omitempty"`
	// NProbe overrides the IVF probe count for this query; 0 keeps the
	// index default.
	NProbe int `json:"nprobe,omitempty"`
}

// Result is the outcome of one query. Exactly one of the value fields is
// set on success; Err is set (and the others empty) on a per-query
// failure, so one bad query never fails its batch.
type Result struct {
	Op         string        `json:"op"`
	Score      *float64      `json:"score,omitempty"`
	Undirected *float64      `json:"undirected,omitempty"`
	Top        []core.Scored `json:"top,omitempty"`
	// Backend reports which path answered a top-k op: BackendExact,
	// BackendIVF, or BackendScan (brute force; no fresh index).
	Backend string `json:"backend,omitempty"`
	Err     string `json:"error,omitempty"`
}

// Execute evaluates a batch of heterogeneous queries against an Engine's
// current model — resolving the model and its serving index once, so the
// whole batch is answered at one version — and reports that version.
func (e *Engine) Execute(qs []Query) ([]Result, uint64) {
	m := e.Model()
	s := e.freshIndex(m)
	return m.execute(qs, s), m.Version
}

// Execute evaluates the batch against this specific model version. Top-k
// queries take the brute-force scan path; use Engine.Execute for indexed
// batches.
func (m *Model) Execute(qs []Query) []Result { return m.execute(qs, nil) }

func (m *Model) execute(qs []Query, s *indexSet) []Result {
	out := make([]Result, len(qs))
	for i, q := range qs {
		out[i] = m.run(q, s)
	}
	return out
}

func (m *Model) run(q Query, s *indexSet) Result {
	res := Result{Op: q.Op}
	fail := func(format string, args ...interface{}) Result {
		res.Err = fmt.Sprintf(format, args...)
		return res
	}
	inRange := func(v, limit int) bool { return v >= 0 && v < limit }
	switch q.Op {
	case OpAttrScore:
		if !inRange(q.Node, m.Nodes()) {
			return fail("node %d out of range [0,%d)", q.Node, m.Nodes())
		}
		if !inRange(q.Attr, m.Attrs()) {
			return fail("attr %d out of range [0,%d)", q.Attr, m.Attrs())
		}
		s := m.Emb.AttrScore(q.Node, q.Attr)
		res.Score = &s
	case OpLinkScore:
		if !inRange(q.Src, m.Nodes()) {
			return fail("src %d out of range [0,%d)", q.Src, m.Nodes())
		}
		if !inRange(q.Dst, m.Nodes()) {
			return fail("dst %d out of range [0,%d)", q.Dst, m.Nodes())
		}
		s := m.Scorer.Directed(q.Src, q.Dst)
		u := m.Scorer.Undirected(q.Src, q.Dst)
		res.Score = &s
		res.Undirected = &u
	case OpTopAttrs:
		k, err := batchK(q.K)
		if err != nil {
			return fail("%v", err)
		}
		top, backend, err := m.topAttrs(s, q.Node, k, q.Mode, q.NProbe)
		if err != nil {
			return fail("%v", err)
		}
		res.Top, res.Backend = top, backend
	case OpTopLinks:
		k, err := batchK(q.K)
		if err != nil {
			return fail("%v", err)
		}
		top, backend, err := m.topLinks(s, q.Src, k, q.Mode, q.NProbe)
		if err != nil {
			return fail("%v", err)
		}
		res.Top, res.Backend = top, backend
	default:
		return fail("unknown op %q", q.Op)
	}
	return res
}

// batchK resolves a batch query's K: nil means DefaultK, and an explicit
// value below 1 is an error — never a silent rewrite.
func batchK(k *int) (int, error) {
	if k == nil {
		return DefaultK, nil
	}
	if *k < 1 {
		return 0, fmt.Errorf("k must be >= 1, got %d", *k)
	}
	return *k, nil
}
