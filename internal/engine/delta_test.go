package engine

import (
	"math/rand"
	"sync"
	"testing"

	"pane/internal/core"
	"pane/internal/datagen"
	"pane/internal/graph"
)

// deltaTestEngine trains a modest community graph and wraps it with the
// full index stack (ivf + quantized tiers) at the given shard count and
// refresh threshold.
func deltaTestEngine(t *testing.T, shards int, threshold float64, extra ...Option) (*Engine, *graph.Graph) {
	t.Helper()
	g, err := datagen.Generate(datagen.Config{
		Name: "deltatest", N: 400, AvgOutDeg: 6, D: 24, AttrsPer: 4,
		Communities: 8, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{K: 8, Alpha: 0.5, Eps: 0.25, Seed: 11}
	opts := append([]Option{
		WithIndex(IndexConfig{IVF: true, NList: 4, NProbe: 4, Shards: shards, Quantize: true}),
		WithRefreshThreshold(threshold),
	}, extra...)
	eng, err := Train(g, cfg, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return eng, g
}

func mustTop(t *testing.T, eng *Engine, links bool, id, k int, mode string, nprobe int) TopKAnswer {
	t.Helper()
	var (
		ans TopKAnswer
		err error
	)
	if links {
		ans, err = eng.TopLinks(id, k, mode, nprobe)
	} else {
		ans, err = eng.TopAttrs(id, k, mode, nprobe)
	}
	if err != nil {
		t.Fatal(err)
	}
	return ans
}

func sameAnswers(t *testing.T, label string, want, got TopKAnswer) {
	t.Helper()
	if len(want.Results) != len(got.Results) {
		t.Fatalf("%s: %d results, want %d", label, len(got.Results), len(want.Results))
	}
	for i := range want.Results {
		if want.Results[i] != got.Results[i] {
			t.Fatalf("%s: rank %d: %v != %v", label, i, got.Results[i], want.Results[i])
		}
	}
}

// TestIncrementalRefreshMatchesFullBuild is the engine-level refresh
// property: after a stream of small edge updates served entirely by
// incremental refresh, the published index must answer bit-for-bit like a
// fresh engine built from scratch around the same model — exact and sq8
// directly, ivf/ivfsq through the full-probe window (full-probe results
// equal exact regardless of the coarse quantizer, which incremental
// refresh deliberately freezes while a fresh build retrains it). Edge
// deltas keep Y fixed, so every clean Z row is bit-identical across the
// stream; attribute deltas ride the low-rank correction and are verified
// by recall instead (TestAttrUpdateGramCorrection).
func TestIncrementalRefreshMatchesFullBuild(t *testing.T) {
	eng, g := deltaTestEngine(t, 3, 1.0)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 6; i++ {
		edges := []graph.Edge{
			{Src: rng.Intn(g.N), Dst: rng.Intn(g.N)},
			{Src: rng.Intn(g.N), Dst: rng.Intn(g.N)},
		}
		if _, err := eng.ApplyEdges(edges); err != nil {
			t.Fatal(err)
		}
		// Quiesce between updates so each delta gets its own refresh
		// cycle instead of coalescing into one (coalescing is exercised by
		// the race test).
		eng.WaitForIndex()
	}
	st := eng.IndexStatus()
	if st.Version != eng.Version() {
		t.Fatalf("index at %d, model at %d", st.Version, eng.Version())
	}
	if st.IncrementalRefreshes == 0 {
		t.Fatalf("no incremental refreshes recorded: %+v", st)
	}

	// A fresh engine around the SAME post-update model: identical
	// candidate matrices, so exact/sq8 must match bit for bit.
	m := eng.Model()
	fresh, err := New(m.Graph, m.Emb, m.Cfg,
		WithIndex(IndexConfig{IVF: true, NList: 4, NProbe: 4, Shards: 3, Quantize: true}))
	if err != nil {
		t.Fatal(err)
	}
	nlist := fresh.IndexStatus().NList
	for u := 0; u < g.N; u += 13 {
		for _, mode := range []string{ModeExact, ModeSQ8} {
			want := mustTop(t, fresh, true, u, 10, mode, 0)
			got := mustTop(t, eng, true, u, 10, mode, 0)
			if got.Backend != mode {
				t.Fatalf("u=%d mode=%s: served by %q", u, mode, got.Backend)
			}
			sameAnswers(t, "links "+mode, want, got)
			sameAnswers(t, "attrs "+mode,
				mustTop(t, fresh, false, u, 6, mode, 0), mustTop(t, eng, false, u, 6, mode, 0))
		}
		// Full-probe IVF degenerates to exact on both engines, which pins
		// the refreshed inverted lists' completeness.
		sameAnswers(t, "links ivf full-probe",
			mustTop(t, eng, true, u, 10, ModeExact, 0), mustTop(t, eng, true, u, 10, ModeIVF, nlist))
	}
}

// TestHealthzCountersTrackIncrementalRefresh is the acceptance check of
// the delta pipeline: an update touching ~0.5% of the rows must publish a
// fresh index via incremental refresh — visible in the healthz counters —
// while a threshold-busting update falls back to full rebuilds.
func TestHealthzCountersTrackIncrementalRefresh(t *testing.T) {
	const shards = 2
	eng, g := deltaTestEngine(t, shards, DefaultRefreshThreshold)
	st := eng.IndexStatus()
	if st.FullRebuilds != shards || st.IncrementalRefreshes != 0 {
		t.Fatalf("initial counters %+v, want %d full builds", st, shards)
	}
	if st.RefreshThreshold != DefaultRefreshThreshold {
		t.Fatalf("threshold %v reported, want %v", st.RefreshThreshold, DefaultRefreshThreshold)
	}

	// 2 dirty rows of 400 = 0.5% — far under the threshold.
	if _, err := eng.ApplyEdges([]graph.Edge{{Src: 1, Dst: 399}}); err != nil {
		t.Fatal(err)
	}
	eng.WaitForIndex()
	st = eng.IndexStatus()
	if st.IncrementalRefreshes != shards || st.FullRebuilds != shards {
		t.Fatalf("after small update: %+v, want %d incremental and still %d full", st, shards, shards)
	}
	if st.LastDeltaRows != 2 {
		t.Fatalf("last delta %d rows, want 2", st.LastDeltaRows)
	}
	if st.Version != eng.Version() {
		t.Fatalf("index at %d, model at %d", st.Version, eng.Version())
	}
	if ans := mustTop(t, eng, true, 1, 5, ModeSQ8, 0); ans.Backend != BackendSQ8 || ans.Version != eng.Version() {
		t.Fatalf("post-refresh answer %+v", ans)
	}

	// An update touching well past 20% of the node rows must rebuild.
	big := make([]graph.Edge, 0, g.N/2)
	for u := 0; u+1 < g.N; u += 2 {
		big = append(big, graph.Edge{Src: u, Dst: u + 1})
	}
	if _, err := eng.ApplyEdges(big); err != nil {
		t.Fatal(err)
	}
	eng.WaitForIndex()
	st2 := eng.IndexStatus()
	if st2.FullRebuilds != st.FullRebuilds+shards {
		t.Fatalf("big update did not full-rebuild: %+v -> %+v", st, st2)
	}
	if st2.IncrementalRefreshes != st.IncrementalRefreshes {
		t.Fatalf("big update counted as incremental: %+v", st2)
	}
	if st2.LastDeltaRows != uint64(g.N+g.D) {
		t.Fatalf("full update delta %d rows, want %d", st2.LastDeltaRows, g.N+g.D)
	}
}

// recallAt measures |want ∩ got| / |want| over the result ids.
func recallAt(want, got []core.Scored) float64 {
	if len(want) == 0 {
		return 1
	}
	ids := make(map[int]bool, len(got))
	for _, s := range got {
		ids[s.ID] = true
	}
	hit := 0
	for _, s := range want {
		if ids[s.ID] {
			hit++
		}
	}
	return float64(hit) / float64(len(want))
}

// TestAttrUpdateGramCorrection: a small attribute update moves Y and with
// it G = YᵀY, but instead of poisoning the link space into full rebuilds
// it now ships a low-rank Z-correction: every shard cycle stays
// incremental, the counters record the correction, the corrected link
// index answers with retrain-level recall against a fresh build, and the
// attribute space (served from exactly-patched Y rows, no correction
// involved) still matches bit for bit.
func TestAttrUpdateGramCorrection(t *testing.T) {
	var stats []UpdateStats
	eng, _ := deltaTestEngine(t, 2, DefaultRefreshThreshold,
		WithUpdateObserver(func(s UpdateStats) { stats = append(stats, s) }))
	before := eng.IndexStatus()
	if _, err := eng.ApplyAttrs([]graph.AttrEntry{{Node: 10, Attr: 3, Weight: 2}}); err != nil {
		t.Fatal(err)
	}
	eng.WaitForIndex()
	after := eng.IndexStatus()
	if after.FullRebuilds != before.FullRebuilds {
		t.Fatalf("attr update fell back to full link rebuilds: %+v -> %+v", before, after)
	}
	if after.IncrementalRefreshes != before.IncrementalRefreshes+2 {
		t.Fatalf("attr update not served incrementally: %+v -> %+v", before, after)
	}
	if len(stats) != 1 || !stats[0].GramCorrection || !stats[0].Incremental {
		t.Fatalf("observer saw %+v, want a gram-corrected incremental update", stats)
	}
	if as := eng.AffinityStatus(); !as.Enabled || as.GramCorrections != 1 {
		t.Fatalf("affinity status %+v, want enabled with 1 gram correction", as)
	}
	m := eng.Model()
	fresh, err := New(m.Graph, m.Emb, m.Cfg,
		WithIndex(IndexConfig{IVF: true, NList: 4, NProbe: 4, Shards: 2, Quantize: true}))
	if err != nil {
		t.Fatal(err)
	}
	// The corrected Z differs from a fresh Xb·G only by float round-off
	// (~1e-15 relative), which can swap genuinely tied candidates but not
	// lose a clear top-k member.
	totalRecall, queries := 0.0, 0
	for u := 0; u < m.Nodes(); u += 29 {
		want := mustTop(t, fresh, true, u, 8, ModeExact, 0)
		got := mustTop(t, eng, true, u, 8, ModeExact, 0)
		totalRecall += recallAt(want.Results, got.Results)
		queries++
		sameAnswers(t, "attrs exact after attr update",
			mustTop(t, fresh, false, u, 5, ModeExact, 0), mustTop(t, eng, false, u, 5, ModeExact, 0))
	}
	if avg := totalRecall / float64(queries); avg < 0.99 {
		t.Fatalf("gram-corrected link recall %.4f vs fresh build, want >= 0.99", avg)
	}
}

// TestFullAffinityRestoresPoisoning: with the affinity path disabled
// (WithAffinityThreshold(0), the -full-affinity escape hatch) an
// attribute update falls back to the pre-correction behavior — the link
// space is poisoned into full rebuilds and the served answers match a
// fresh build exactly.
func TestFullAffinityRestoresPoisoning(t *testing.T) {
	eng, _ := deltaTestEngine(t, 2, DefaultRefreshThreshold, WithAffinityThreshold(0))
	before := eng.IndexStatus()
	if _, err := eng.ApplyAttrs([]graph.AttrEntry{{Node: 10, Attr: 3, Weight: 2}}); err != nil {
		t.Fatal(err)
	}
	eng.WaitForIndex()
	after := eng.IndexStatus()
	if after.FullRebuilds == before.FullRebuilds {
		t.Fatalf("attr update did not trigger full link rebuilds: %+v -> %+v", before, after)
	}
	if as := eng.AffinityStatus(); as.Enabled || as.GramCorrections != 0 {
		t.Fatalf("affinity status %+v, want disabled", as)
	}
	m := eng.Model()
	fresh, err := New(m.Graph, m.Emb, m.Cfg,
		WithIndex(IndexConfig{IVF: true, NList: 4, NProbe: 4, Shards: 2, Quantize: true}))
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < m.Nodes(); u += 29 {
		sameAnswers(t, "links exact after attr update",
			mustTop(t, fresh, true, u, 8, ModeExact, 0), mustTop(t, eng, true, u, 8, ModeExact, 0))
		sameAnswers(t, "attrs exact after attr update",
			mustTop(t, fresh, false, u, 5, ModeExact, 0), mustTop(t, eng, false, u, 5, ModeExact, 0))
	}
}

// TestZeroThresholdDisablesDeltaPath: WithRefreshThreshold(0) must keep
// every update on the full-sweep + full-rebuild path.
func TestZeroThresholdDisablesDeltaPath(t *testing.T) {
	var stats []UpdateStats
	eng, _ := deltaTestEngine(t, 2, 0, WithUpdateObserver(func(s UpdateStats) {
		stats = append(stats, s)
	}))
	if _, err := eng.ApplyEdges([]graph.Edge{{Src: 0, Dst: 1}}); err != nil {
		t.Fatal(err)
	}
	eng.WaitForIndex()
	if st := eng.IndexStatus(); st.IncrementalRefreshes != 0 {
		t.Fatalf("threshold 0 still refreshed incrementally: %+v", st)
	}
	if len(stats) != 1 || stats[0].Incremental || stats[0].DirtyNodes != 2 {
		t.Fatalf("observer saw %+v", stats)
	}
}

// TestUpdateObserverReportsDeltas: the observer sees each update's delta
// size and path.
func TestUpdateObserverReportsDeltas(t *testing.T) {
	var stats []UpdateStats
	eng, _ := deltaTestEngine(t, 2, 1.0, WithUpdateObserver(func(s UpdateStats) {
		stats = append(stats, s)
	}))
	if _, err := eng.ApplyEdges([]graph.Edge{{Src: 5, Dst: 9}, {Src: 9, Dst: 5}}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.ApplyAttrs([]graph.AttrEntry{{Node: 2, Attr: 7, Weight: 1}}); err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 {
		t.Fatalf("%d observations", len(stats))
	}
	if !stats[0].Incremental || stats[0].DirtyNodes != 2 || stats[0].DirtyAttrs != 0 || stats[0].Version != 2 {
		t.Fatalf("edge update stats %+v", stats[0])
	}
	if !stats[1].Incremental || stats[1].DirtyNodes != 1 || stats[1].DirtyAttrs != 1 || stats[1].Version != 3 {
		t.Fatalf("attr update stats %+v", stats[1])
	}
}

// TestAffinityCountersTrackIncrementalRecurrence: the first update has no
// retained state and re-runs the recurrence in full; subsequent small
// updates patch it over the delta's frontier, with the counters, the
// observer's timing split, and the frontier size all reporting it.
func TestAffinityCountersTrackIncrementalRecurrence(t *testing.T) {
	var stats []UpdateStats
	eng, _ := deltaTestEngine(t, 2, DefaultRefreshThreshold,
		WithUpdateObserver(func(s UpdateStats) { stats = append(stats, s) }))
	if as := eng.AffinityStatus(); !as.Enabled || as.Incremental != 0 || as.Full != 0 {
		t.Fatalf("initial affinity status %+v", as)
	}
	if _, err := eng.ApplyEdges([]graph.Edge{{Src: 1, Dst: 2}}); err != nil {
		t.Fatal(err)
	}
	as := eng.AffinityStatus()
	if as.Full != 1 || as.Incremental != 0 {
		t.Fatalf("first update affinity status %+v, want one full recurrence", as)
	}
	if stats[0].AffinityIncremental || stats[0].AffinitySeconds <= 0 || stats[0].CCDSeconds <= 0 {
		t.Fatalf("first update stats %+v", stats[0])
	}
	if _, err := eng.ApplyEdges([]graph.Edge{{Src: 3, Dst: 4}}); err != nil {
		t.Fatal(err)
	}
	as = eng.AffinityStatus()
	if as.Full != 1 || as.Incremental != 1 {
		t.Fatalf("second update affinity status %+v, want one incremental patch", as)
	}
	if !stats[1].AffinityIncremental || stats[1].AffinityFrontier < 1 {
		t.Fatalf("second update stats %+v, want a frontier-restricted patch", stats[1])
	}
	if as.FrontierRows != uint64(stats[1].AffinityFrontier) {
		t.Fatalf("status frontier %d vs observer %d", as.FrontierRows, stats[1].AffinityFrontier)
	}
	if as.Drift < 0 || as.Drift > 1e-9 {
		t.Fatalf("drift estimate %v after one patch", as.Drift)
	}
	eng.WaitForIndex()
}

// TestChainedDeltaLifecycle chains dozens of mixed edge and attribute
// deltas through one engine — the model-side state patched throughout,
// attribute deltas riding the low-rank correction — while queriers run
// concurrently (CI repeats this test under -race). At the end the model
// side must have stayed incremental after its first recurrence, and the
// served link index must match a fresh build around the final model at
// retrain-level recall.
func TestChainedDeltaLifecycle(t *testing.T) {
	// Thresholds pinned to 1.0: on a 400-node graph a popular attribute's
	// frontier easily exceeds the production 20% budget (the fallback is
	// its own test); here we exercise the longest possible patch chain.
	eng, g := deltaTestEngine(t, 2, 1.0, WithAffinityThreshold(1))
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				mode := []string{ModeExact, ModeIVF, ModeSQ8, ModeIVFSQ}[rng.Intn(4)]
				if _, err := eng.TopLinks(rng.Intn(g.N), 5, mode, 0); err != nil {
					t.Errorf("query: %v", err)
					return
				}
			}
		}(int64(40 + i))
	}
	rng := rand.New(rand.NewSource(17))
	const chain = 40
	for i := 0; i < chain; i++ {
		var err error
		if i%4 == 3 {
			_, err = eng.ApplyAttrs([]graph.AttrEntry{
				{Node: rng.Intn(g.N), Attr: rng.Intn(g.D), Weight: 1 + rng.Float64()},
			})
		} else {
			_, err = eng.ApplyEdges([]graph.Edge{
				{Src: rng.Intn(g.N), Dst: rng.Intn(g.N)},
			})
		}
		if err != nil {
			t.Fatal(err)
		}
		// Quiesce so each delta gets its own refresh cycle: at K=8 the
		// factor width is 4, so even two coalesced rank-2 corrections
		// legitimately fall back to a full rebuild. Production widths
		// (k/2 = 64 at K=128) absorb long coalesced chains.
		eng.WaitForIndex()
	}
	close(stop)
	wg.Wait()
	eng.WaitForIndex()

	as := eng.AffinityStatus()
	if as.Full != 1 || as.Incremental != chain-1 {
		t.Fatalf("affinity counters %+v after %d chained deltas, want 1 full + %d incremental", as, chain, chain-1)
	}
	if as.GramCorrections != chain/4 {
		t.Fatalf("%d gram corrections, want %d", as.GramCorrections, chain/4)
	}
	if as.Drift < 0 || as.Drift > 1e-9 {
		t.Fatalf("drift estimate %v after %d chained deltas", as.Drift, chain)
	}
	st := eng.IndexStatus()
	if st.Version != eng.Version() || st.FullRebuilds != uint64(st.Shards) {
		t.Fatalf("index status %+v after quiesce, model at %d", st, eng.Version())
	}
	m := eng.Model()
	fresh, err := New(m.Graph, m.Emb, m.Cfg,
		WithIndex(IndexConfig{IVF: true, NList: 4, NProbe: 4, Shards: 2, Quantize: true}))
	if err != nil {
		t.Fatal(err)
	}
	totalRecall, queries := 0.0, 0
	for u := 0; u < g.N; u += 17 {
		want := mustTop(t, fresh, true, u, 10, ModeExact, 0)
		got := mustTop(t, eng, true, u, 10, ModeExact, 0)
		totalRecall += recallAt(want.Results, got.Results)
		queries++
	}
	if avg := totalRecall / float64(queries); avg < 0.99 {
		t.Fatalf("post-chain link recall %.4f vs fresh build, want >= 0.99", avg)
	}
}

// TestIndexConfigValidation: misconfiguration fails engine construction
// with a descriptive error instead of being silently clamped.
func TestIndexConfigValidation(t *testing.T) {
	g := graph.RunningExample() // 6 nodes
	emb, err := core.PANE(g, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	bad := []struct {
		name string
		opts []Option
	}{
		{"WithShards(0)", []Option{WithIndex(IndexConfig{}), WithShards(0)}},
		{"WithShards(-1)", []Option{WithIndex(IndexConfig{}), WithShards(-1)}},
		{"shards > rows", []Option{WithIndex(IndexConfig{Shards: 7})}},
		{"negative shards", []Option{WithIndex(IndexConfig{Shards: -2})}},
		{"negative rerank", []Option{WithIndex(IndexConfig{Quantize: true, Rerank: -1})}},
		{"negative nlist", []Option{WithIndex(IndexConfig{IVF: true, NList: -3})}},
		{"negative nprobe", []Option{WithIndex(IndexConfig{IVF: true, NProbe: -1})}},
		{"negative threads", []Option{WithIndex(IndexConfig{Threads: -4})}},
		{"threshold < 0", []Option{WithRefreshThreshold(-0.1)}},
		{"threshold > 1", []Option{WithRefreshThreshold(1.5)}},
	}
	for _, tc := range bad {
		if _, err := New(g, emb, testConfig(), tc.opts...); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// The documented defaults stay valid: zero config means one shard.
	if _, err := New(g, emb, testConfig(), WithIndex(IndexConfig{})); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
	if _, err := New(g, emb, testConfig(), WithIndex(IndexConfig{Shards: 6})); err != nil {
		t.Fatalf("shards == rows rejected: %v", err)
	}
	// WithShards(0) fails even without an index configuration in effect.
	if _, err := New(g, emb, testConfig(), WithShards(0)); err == nil {
		t.Error("WithShards(0) without index config accepted")
	}
}

// TestDeltaOverlapLifecycleRace floods the engine with concurrent small
// updates whose deltas are alternately disjoint and overlapping while
// queriers and a white-box invariant checker run under -race. The
// assertion is the consistent-cut invariant of the delta pipeline: no
// query may ever observe a mixed-version or partially-refreshed shard
// set, and after quiescing the incrementally-refreshed index serves the
// final version.
func TestDeltaOverlapLifecycleRace(t *testing.T) {
	eng, g := deltaTestEngine(t, 4, 1.0)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				u := rng.Intn(g.N)
				mode := []string{ModeExact, ModeIVF, ModeSQ8, ModeIVFSQ}[rng.Intn(4)]
				ans, err := eng.TopLinks(u, 5, mode, 0)
				if err != nil {
					t.Errorf("query: %v", err)
					return
				}
				switch ans.Backend {
				case BackendExact, BackendIVF, BackendSQ8, BackendIVFSQ, BackendScan:
				default:
					t.Errorf("unknown backend %q", ans.Backend)
					return
				}
			}
		}(int64(i))
	}

	// White-box invariant checker: any accepted cut is uniform at the
	// resolved model's exact version.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			m := eng.Model()
			if shards := eng.freshShards(m); shards != nil {
				for s, si := range shards {
					if si.version != m.Version {
						t.Errorf("mixed-version cut: shard %d at %d, model at %d", s, si.version, m.Version)
						return
					}
				}
			}
		}
	}()

	// Two writers: disjoint-delta updates on separate node ranges and
	// overlapping-delta updates hammering one small hot set. ApplyEdges
	// serializes internally; the races of interest are between the
	// resulting marks, the per-shard workers, and the queriers.
	const updatesPerWriter = 8
	var writers sync.WaitGroup
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < updatesPerWriter; i++ {
				var edges []graph.Edge
				if w == 0 {
					// Disjoint: low node range, distinct pairs.
					a := rng.Intn(g.N / 2)
					edges = []graph.Edge{{Src: a, Dst: (a + 1) % (g.N / 2)}}
				} else {
					// Overlapping: a fixed hot pair plus a random endpoint.
					edges = []graph.Edge{
						{Src: g.N - 1, Dst: g.N - 2},
						{Src: g.N - 1, Dst: g.N/2 + rng.Intn(g.N/2)},
					}
				}
				if _, err := eng.ApplyEdges(edges); err != nil {
					t.Errorf("update: %v", err)
					return
				}
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	wg.Wait()

	if eng.Version() != 1+2*updatesPerWriter {
		t.Fatalf("final version %d, want %d", eng.Version(), 1+2*updatesPerWriter)
	}
	eng.WaitForIndex()
	st := eng.IndexStatus()
	if st.Version != eng.Version() {
		t.Fatalf("index status %+v after quiesce, model at %d", st, eng.Version())
	}
	if st.IncrementalRefreshes == 0 {
		t.Fatalf("race run never refreshed incrementally: %+v", st)
	}
	// The quiesced incremental index still answers exactly like a fresh
	// build around the final model.
	m := eng.Model()
	fresh, err := New(m.Graph, m.Emb, m.Cfg,
		WithIndex(IndexConfig{IVF: true, NList: 4, NProbe: 4, Shards: 4, Quantize: true}))
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N; u += 37 {
		sameAnswers(t, "post-race exact",
			mustTop(t, fresh, true, u, 8, ModeExact, 0), mustTop(t, eng, true, u, 8, ModeExact, 0))
		sameAnswers(t, "post-race sq8",
			mustTop(t, fresh, true, u, 8, ModeSQ8, 0), mustTop(t, eng, true, u, 8, ModeSQ8, 0))
	}
}
