package engine

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"pane/internal/wal"
)

// The fencing tests pin the epoch machinery in isolation: a fenced
// engine refuses writes but keeps serving reads, promotion advances the
// epoch (and stamps it into the WAL), and replicated records from a
// deposed lineage are rejected even when their version would fit.

func TestFenceRefusesWritesKeepsReads(t *testing.T) {
	dir := t.TempDir()
	eng, err := Open(trainBase(t, dir), WithAffinityThreshold(0))
	if err != nil {
		t.Fatal(err)
	}
	applyWALUpdate(t, eng, 1)
	before := eng.Version()

	if eng.Deposed() {
		t.Fatal("fresh engine reports deposed")
	}
	eng.Fence(3)
	if !eng.Deposed() {
		t.Fatal("engine not deposed after observing epoch 3")
	}
	// Fencing is monotonic: observing an older epoch cannot un-depose.
	eng.Fence(1)
	if !eng.Deposed() {
		t.Fatal("Fence(1) un-deposed an engine that observed epoch 3")
	}

	edges, attrs := walUpdate(2)
	if edges != nil {
		_, err = eng.ApplyEdges(edges)
	} else {
		_, err = eng.ApplyAttrs(attrs)
	}
	if !errors.Is(err, ErrFenced) {
		t.Fatalf("write on a deposed engine: err = %v, want ErrFenced", err)
	}
	if eng.Version() != before {
		t.Fatalf("rejected write still advanced version %d -> %d", before, eng.Version())
	}
	// Reads stay live in degraded mode.
	if res := eng.Model().Execute([]Query{{Op: OpTopLinks, Src: 0}}); res[0].Err != "" {
		t.Fatalf("read on a deposed engine: %s", res[0].Err)
	}
}

func TestPromoteAdvancesEpochAndStampsWAL(t *testing.T) {
	dir := t.TempDir()
	eng, err := Open(trainBase(t, dir), WithAffinityThreshold(0))
	if err != nil {
		t.Fatal(err)
	}
	log, err := wal.Open(filepath.Join(dir, "wal"), wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	if err := eng.AttachWAL(log); err != nil {
		t.Fatal(err)
	}
	applyWALUpdate(t, eng, 1)

	if err := eng.Promote(0); err == nil {
		t.Fatal("Promote(0) accepted — epoch did not advance")
	}
	eng.Fence(2)
	if err := eng.Promote(2); err == nil {
		t.Fatal("promotion to an already-observed epoch accepted")
	}
	if err := eng.Promote(3); err != nil {
		t.Fatal(err)
	}
	if eng.Epoch() != 3 || eng.Deposed() {
		t.Fatalf("after Promote(3): epoch %d deposed %v", eng.Epoch(), eng.Deposed())
	}

	// Writes work again and carry the new epoch into the log.
	applyWALUpdate(t, eng, 2)
	if got := log.LastEpoch(); got != 3 {
		t.Fatalf("log epoch after promoted write = %d, want 3", got)
	}
	recs, err := log.ReadFrom(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantEpochs := []uint32{0, 3}
	if len(recs) != len(wantEpochs) {
		t.Fatalf("got %d records, want %d", len(recs), len(wantEpochs))
	}
	for i, rec := range recs {
		if rec.Epoch != wantEpochs[i] {
			t.Fatalf("record %d epoch = %d, want %d", i, rec.Epoch, wantEpochs[i])
		}
	}
}

func TestApplyRecordEpochSemantics(t *testing.T) {
	dir := t.TempDir()
	base := trainBase(t, dir)

	// A leader across a promotion produces the record stream a follower
	// replays: epochs [0, 0, 2, 2].
	leader, err := Open(base, WithAffinityThreshold(0))
	if err != nil {
		t.Fatal(err)
	}
	log, err := wal.Open(filepath.Join(dir, "wal"), wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	if err := leader.AttachWAL(log); err != nil {
		t.Fatal(err)
	}
	applyWALUpdate(t, leader, 1)
	applyWALUpdate(t, leader, 2)
	if err := leader.Promote(2); err != nil {
		t.Fatal(err)
	}
	applyWALUpdate(t, leader, 3)
	applyWALUpdate(t, leader, 4)
	recs, err := log.ReadFrom(1, 0)
	if err != nil {
		t.Fatal(err)
	}

	// A follower replaying the stream adopts the new epoch mid-stream and
	// converges bit-identically.
	follower, err := Open(base, WithAffinityThreshold(0))
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if _, err := follower.ApplyRecord(rec); err != nil {
			t.Fatalf("replaying record v%d epoch %d: %v", rec.Version, rec.Epoch, err)
		}
	}
	if follower.Epoch() != 2 {
		t.Fatalf("follower epoch after replay = %d, want 2", follower.Epoch())
	}
	if !bytes.Equal(bundleBytes(t, follower), bundleBytes(t, leader)) {
		t.Fatal("follower diverges from leader across the epoch boundary")
	}

	// A record from a deposed epoch is refused even though its version
	// extends the model.
	stale := recs[len(recs)-1]
	stale.Version = follower.Version() + 1
	stale.Epoch = 1
	if _, err := follower.ApplyRecord(stale); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale-epoch record: err = %v, want ErrFenced", err)
	}
}
