package engine

import (
	"pane/internal/index"
	"pane/internal/mat"
)

// KernelDispatch reports, per compute kernel, the instruction set the
// process dispatches to on this build and host: "avx2" or "neon" when
// the hand-written SIMD path is active, "generic" on other platforms, on
// hosts without the feature, or under the noasm build tag. The map is a
// process constant — dispatch is decided once at startup — so it is safe
// to expose verbatim from health endpoints and metrics.
func KernelDispatch() map[string]string {
	m := mat.KernelISAs()
	m["sq8dot"] = index.DotI8ISA()
	m["fp16dot"] = index.FP16ISA()
	return m
}
