package engine

import (
	"path/filepath"
	"testing"

	"pane/internal/index"
	"pane/internal/store"
)

// quantEngine builds an engine with every backend tier enabled.
func quantEngine(t *testing.T, shards int) *Engine {
	t.Helper()
	g, emb, cfg := shardTestModel(t)
	eng, err := New(g, emb, cfg, WithIndex(IndexConfig{
		IVF: true, NList: 3, NProbe: 3, Quantize: true, Shards: shards,
	}))
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestQuantizedModesServeAndReport: sq8/ivfsq modes answer from their
// backends with correct labels, degrade to exact when the tier is not
// built, and the status reports the quantized configuration.
func TestQuantizedModesServeAndReport(t *testing.T) {
	eng := quantEngine(t, 1)
	st := eng.IndexStatus()
	if !st.Quantize || st.Rerank != index.DefaultRerank {
		t.Fatalf("status quantize=%v rerank=%d", st.Quantize, st.Rerank)
	}
	for mode, backend := range map[string]string{
		ModeExact: BackendExact, ModeIVF: BackendIVF,
		ModeSQ8: BackendSQ8, ModeIVFSQ: BackendIVFSQ,
	} {
		ans, err := eng.TopLinks(0, 3, mode, 0)
		if err != nil {
			t.Fatal(err)
		}
		if ans.Backend != backend {
			t.Fatalf("mode %q answered by %q", mode, ans.Backend)
		}
		ans, err = eng.TopAttrs(0, 3, mode, 0)
		if err != nil {
			t.Fatal(err)
		}
		if ans.Backend != backend {
			t.Fatalf("attr mode %q answered by %q", mode, ans.Backend)
		}
	}
	// An exact-only engine degrades the quantized modes to exact.
	g, emb, cfg := shardTestModel(t)
	plain, err := New(g, emb, cfg, WithIndex(IndexConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{ModeSQ8, ModeIVFSQ} {
		ans, err := plain.TopLinks(0, 3, mode, 0)
		if err != nil {
			t.Fatal(err)
		}
		if ans.Backend != BackendExact {
			t.Fatalf("unquantized engine: mode %q answered by %q", mode, ans.Backend)
		}
	}
	// An IVF engine without quantization degrades ivfsq to ivf.
	ivfOnly, err := New(g, emb, cfg, WithIndex(IndexConfig{IVF: true, NList: 3}))
	if err != nil {
		t.Fatal(err)
	}
	if ans, _ := ivfOnly.TopLinks(0, 3, ModeIVFSQ, 0); ans.Backend != BackendIVF {
		t.Fatalf("ivf-only engine: ivfsq answered by %q", ans.Backend)
	}
}

// TestShardedQuantizedBitForBitIdentical is satellite property (c) at the
// engine layer: sq8 answers through S shards equal single-shard sq8
// EXACTLY — the survivor cut is global — for links and attributes, via
// both the single-query path and the shard-first batch path.
func TestShardedQuantizedBitForBitIdentical(t *testing.T) {
	g, emb, cfg := shardTestModel(t)
	newEng := func(shards int) *Engine {
		eng, err := New(g, emb, cfg, WithIndex(IndexConfig{
			IVF: true, NList: 3, NProbe: 3, Quantize: true, Shards: shards,
		}))
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	base := newEng(1)
	for _, s := range []int{2, 3, 7} {
		eng := newEng(s)
		for u := 0; u < g.N; u += 5 {
			want, err := base.TopLinks(u, 10, ModeSQ8, 0)
			if err != nil {
				t.Fatal(err)
			}
			got, err := eng.TopLinks(u, 10, ModeSQ8, 0)
			if err != nil {
				t.Fatal(err)
			}
			if got.Backend != BackendSQ8 {
				t.Fatalf("shards=%d u=%d: backend %q", s, u, got.Backend)
			}
			if len(got.Results) != len(want.Results) {
				t.Fatalf("shards=%d u=%d: %d results, want %d", s, u, len(got.Results), len(want.Results))
			}
			for i := range want.Results {
				if got.Results[i] != want.Results[i] {
					t.Fatalf("shards=%d u=%d rank=%d: %v != %v", s, u, i, got.Results[i], want.Results[i])
				}
			}
			wantA, err := base.TopAttrs(u, 5, ModeSQ8, 0)
			if err != nil {
				t.Fatal(err)
			}
			gotA, err := eng.TopAttrs(u, 5, ModeSQ8, 0)
			if err != nil {
				t.Fatal(err)
			}
			for i := range wantA.Results {
				if gotA.Results[i] != wantA.Results[i] {
					t.Fatalf("shards=%d attrs u=%d rank=%d: %v != %v", s, u, i, gotA.Results[i], wantA.Results[i])
				}
			}
		}
		// The shard-first batch path must agree with the single-query
		// path on quantized modes too (same two-phase merge).
		k := 10
		qs := []Query{
			{Op: OpTopLinks, Src: 0, K: &k, Mode: ModeSQ8},
			{Op: OpTopAttrs, Node: 3, K: &k, Mode: ModeSQ8},
			{Op: OpTopLinks, Src: 5, K: &k, Mode: ModeIVFSQ, NProbe: 1000},
		}
		gotRes, _ := eng.Execute(qs)
		for i, q := range qs {
			if gotRes[i].Err != "" {
				t.Fatalf("batch query %d failed: %s", i, gotRes[i].Err)
			}
			var single TopKAnswer
			var err error
			if q.Op == OpTopAttrs {
				single, err = eng.TopAttrs(q.Node, *q.K, q.Mode, q.NProbe)
			} else {
				single, err = eng.TopLinks(q.Src, *q.K, q.Mode, q.NProbe)
			}
			if err != nil {
				t.Fatal(err)
			}
			if gotRes[i].Backend != single.Backend || len(gotRes[i].Top) != len(single.Results) {
				t.Fatalf("batch query %d: backend %q len %d vs single %q len %d",
					i, gotRes[i].Backend, len(gotRes[i].Top), single.Backend, len(single.Results))
			}
			for j := range single.Results {
				if gotRes[i].Top[j] != single.Results[j] {
					t.Fatalf("batch query %d rank %d: %v != %v", i, j, gotRes[i].Top[j], single.Results[j])
				}
			}
		}
	}
}

// TestQuantizedSnapshotRestoreRoundTrip: a quantized engine snapshots a
// format-4 bundle carrying the SQ8 payload; the restored engine consumes
// the payload (same version), serves identical sq8 answers, and a second
// snapshot reproduces the payload byte-for-values — per-row quantization
// makes restored and recomputed encodings interchangeable.
func TestQuantizedSnapshotRestoreRoundTrip(t *testing.T) {
	eng := quantEngine(t, 3)
	path := filepath.Join(t.TempDir(), "quant.pane")
	if _, err := eng.Snapshot(path); err != nil {
		t.Fatal(err)
	}
	b, err := store.LoadBundleFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Index == nil || !b.Index.Quantize {
		t.Fatal("bundle did not record the quantize flag")
	}
	if b.Quant == nil {
		t.Fatal("bundle did not carry the quantized payload")
	}
	m := eng.Model()
	if b.Quant.Links.Rows != m.Nodes() || b.Quant.Attrs.Rows != m.Attrs() {
		t.Fatalf("payload shape %dx? / %dx?", b.Quant.Links.Rows, b.Quant.Attrs.Rows)
	}
	restored, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if restored.restoredQuant.Load() == nil {
		t.Fatal("restored engine dropped the payload before building")
	}
	st := restored.IndexStatus()
	if !st.Quantize || st.Shards != 3 {
		t.Fatalf("restored status quantize=%v shards=%d", st.Quantize, st.Shards)
	}
	for u := 0; u < m.Nodes(); u += 11 {
		want, err := eng.TopLinks(u, 5, ModeSQ8, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := restored.TopLinks(u, 5, ModeSQ8, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got.Backend != BackendSQ8 || len(got.Results) != len(want.Results) {
			t.Fatalf("restored u=%d: backend %q, %d results", u, got.Backend, len(got.Results))
		}
		for i := range want.Results {
			if got.Results[i] != want.Results[i] {
				t.Fatalf("restored u=%d rank=%d: %v != %v", u, i, got.Results[i], want.Results[i])
			}
		}
	}
	// Re-snapshotting the restored engine reproduces the payload.
	path2 := filepath.Join(t.TempDir(), "quant2.pane")
	if _, err := restored.Snapshot(path2); err != nil {
		t.Fatal(err)
	}
	b2, err := store.LoadBundleFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	if b2.Quant == nil {
		t.Fatal("re-snapshot dropped the payload")
	}
	for i, c := range b.Quant.Links.Codes {
		if b2.Quant.Links.Codes[i] != c {
			t.Fatalf("link code %d differs after round trip", i)
		}
	}
	// An update invalidates the payload (the model moved past it) but
	// the rebuilt quantized tier keeps serving at the new version.
	if _, err := restored.ApplyEdges(eng.Model().Graph.Edges()[:1]); err != nil {
		t.Fatal(err)
	}
	if restored.restoredQuant.Load() != nil {
		t.Fatal("stale payload survived an update")
	}
	restored.WaitForIndex()
	ans, err := restored.TopLinks(0, 3, ModeSQ8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Backend != BackendSQ8 || ans.Version != 2 {
		t.Fatalf("post-update sq8: backend %q version %d", ans.Backend, ans.Version)
	}
}
