package engine

import (
	"errors"
	"fmt"

	"pane/internal/core"
	"pane/internal/graph"
	"pane/internal/store"
	"pane/internal/wal"
)

// This file wires the engine to the write-ahead delta log and to the
// replication surfaces built on it. The contract, both directions:
//
//   - Leader: every applied update appends its delta (tagged with the
//     version it produced) to the log *before* the version publishes
//     (see applyLocked). A snapshot compacts the log up to the version
//     the written bundle recorded.
//   - Recovery / followers: a model at version V advanced by replaying
//     records V+1, V+2, ... through ApplyRecord reproduces the exact
//     update stream — with the retained-affinity path disabled
//     (WithAffinityThreshold(0)) the result is bit-identical to the
//     uncrashed writer; with it enabled, identical up to the documented
//     ~1e-12 column-sum rounding drift of the patched recurrence state.

// AttachWAL replays any log records past the engine's current version
// (so a restarted writer resumes exactly where the crashed one durably
// got to) and then arms the engine to append every subsequent update to
// l. The engine takes ownership of appends but not of the log's
// lifecycle — the caller still closes it.
//
// A log whose newest record is older than the engine's version (a crash
// under -wal-sync none/interval lost appends the last snapshot had
// already captured) is reset: its stale history cannot be extended
// contiguously, and followers it can no longer serve will fall back to
// a bundle fetch. A log whose oldest record is newer than version+1 is
// a configuration error — that bundle/log pair has a gap no replay can
// cross.
func (e *Engine) AttachWAL(l *wal.Log) error {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	if e.wal.Load() != nil {
		return errors.New("engine: WAL already attached")
	}
	cur := e.Model().Version
	if first, last, ok := l.Bounds(); ok {
		switch {
		case last <= cur:
			if err := l.Reset(); err != nil {
				return err
			}
		case first > cur+1:
			return fmt.Errorf("engine: model at version %d cannot reach the log's first record %d — missing bundle?", cur, first)
		default:
			recs, err := l.ReadFrom(cur, 0)
			if err != nil {
				return err
			}
			for _, rec := range recs {
				if _, err := e.applyRecordLocked(rec); err != nil {
					return fmt.Errorf("engine: replaying record %d: %w", rec.Version, err)
				}
			}
		}
	}
	e.wal.Store(l)
	return nil
}

// ApplyRecord applies one replicated update record: the record must
// extend the current version by exactly one (the caller — replay or a
// follower — is responsible for feeding records in order and without
// gaps), and must not come from a fencing epoch older than the engine
// has already accepted — a deposed leader's record is refused with
// ErrFenced even when its version would fit, so no version is ever
// served under two epochs. A record from a *newer* epoch is the normal
// sight of a failover from the follower's side: the engine adopts the
// epoch and applies the record. Followers run their engines WAL-less,
// so nothing re-appends.
func (e *Engine) ApplyRecord(rec wal.Record) (*Model, error) {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	return e.applyRecordLocked(rec)
}

func (e *Engine) applyRecordLocked(rec wal.Record) (*Model, error) {
	if cur := e.Model().Version; rec.Version != cur+1 {
		return nil, fmt.Errorf("engine: record version %d does not extend model version %d", rec.Version, cur)
	}
	if own := e.epoch.Load(); rec.Epoch < own {
		e.met.fenced.Inc()
		return nil, fmt.Errorf("%w: record v%d from deposed epoch %d, engine at epoch %d",
			ErrFenced, rec.Version, rec.Epoch, own)
	} else if rec.Epoch > own {
		// Crossing a failover boundary: adopt the promoted lineage's
		// epoch before applying so the fencing check in applyLocked (and
		// every later record) sees it.
		e.epoch.Store(rec.Epoch)
		e.met.epoch.Set(float64(rec.Epoch))
		e.met.deposed.Set(0)
	}
	return e.applyLocked(rec.Edges, rec.Attrs)
}

// compactAfterSnapshot reclaims log segments the just-written bundle
// makes redundant. The watermark is the version recorded *inside the
// bundle* — never the live engine version. The two differ whenever
// updates land while the bundle is being serialized: the live version
// may be V+10 while the file on disk anchors V, and compacting at V+10
// would reclaim records V+1..V+10 that no bundle covers, losing them
// for both crash recovery and followers. TestSnapshotCompactionRace
// pins this interleaving.
func (e *Engine) compactAfterSnapshot(b *store.Bundle) error {
	if w := e.wal.Load(); w != nil {
		return w.Compact(b.ModelVersion)
	}
	return nil
}

// WAL returns the attached log, or nil. The server's /replicate handler
// streams from it.
func (e *Engine) WAL() *wal.Log { return e.wal.Load() }

// LoadBundle replaces the engine's entire model with b in one atomic
// swap — the follower's catch-up path when it has fallen too far behind
// to replay deltas. The bundle must advance the version and must keep
// the node/attribute universe (the shard layout is fixed at
// construction). Not available on a WAL-attached engine: a leader's log
// could not stay contiguous across a version jump.
func (e *Engine) LoadBundle(b *store.Bundle) error {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	if e.wal.Load() != nil {
		return errors.New("engine: cannot load a bundle into a WAL-attached engine")
	}
	cur := e.Model()
	if b.ModelVersion <= cur.Version {
		return fmt.Errorf("engine: bundle version %d does not advance model version %d", b.ModelVersion, cur.Version)
	}
	if err := b.Cfg.Validate(); err != nil {
		return err
	}
	g, err := graph.FromCSR(b.Adj, b.Attr, b.Labels)
	if err != nil {
		return err
	}
	if g.N != cur.Graph.N || g.D != cur.Graph.D {
		return fmt.Errorf("engine: bundle graph %dx%d does not match serving universe %dx%d",
			g.N, g.D, cur.Graph.N, cur.Graph.D)
	}
	emb := &core.Embedding{Xf: b.Xf, Xb: b.Xb, Y: b.Y}
	if emb.Xf.Rows != g.N || emb.Y.Rows != g.D || emb.K() != b.Cfg.K {
		return fmt.Errorf("engine: bundle embedding %dx%d k=%d does not fit its graph %dx%d with config K=%d",
			emb.Xf.Rows, emb.Y.Rows, emb.K(), g.N, g.D, b.Cfg.K)
	}
	next := &Model{
		Version: b.ModelVersion,
		Cfg:     b.Cfg,
		Graph:   g,
		Emb:     emb,
		Scorer:  core.NewLinkScorer(emb),
	}
	// The retained affinity state described the replaced graph; drop it
	// so the next update rebuilds from the new one.
	e.affState, e.affVersion = nil, 0
	if q := b.Quant; q != nil {
		e.restoredQuant.Store(&restoredQuant{version: b.ModelVersion, links: q.Links, attrs: q.Attrs})
	} else {
		e.restoredQuant.Store(nil)
	}
	if h := b.Half; h != nil {
		e.restoredHalf.Store(&restoredHalf{version: b.ModelVersion, links: h.Links, attrs: h.Attrs})
	} else {
		e.restoredHalf.Store(nil)
	}
	e.cur.Store(next)
	e.met.modelVersion.Set(float64(next.Version))
	e.scheduleIndexRebuild(idxDelta{target: next.Version, linksFull: true, attrsFull: true, rows: g.N + g.D})
	return nil
}
