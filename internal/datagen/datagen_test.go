package datagen

import (
	"testing"

	"pane/internal/graph"
)

func base() Config {
	return Config{
		Name: "t", N: 500, AvgOutDeg: 5, D: 40, AttrsPer: 4,
		Communities: 5, Seed: 42,
	}
}

func TestGenerateShape(t *testing.T) {
	g, err := Generate(base())
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 500 || g.D != 40 {
		t.Fatalf("shape %d nodes %d attrs", g.N, g.D)
	}
	// Edge count near target (duplicates collapse, so allow slack).
	if g.M() < 2000 || g.M() > 2600 {
		t.Fatalf("edges = %d, want ≈2500", g.M())
	}
	if g.NNZAttr() < 500 {
		t.Fatalf("attr entries = %d, too few", g.NNZAttr())
	}
	if len(g.Labels) != g.N {
		t.Fatal("labels missing")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(base())
	b, _ := Generate(base())
	if a.M() != b.M() || a.NNZAttr() != b.NNZAttr() {
		t.Fatal("same seed produced different graphs")
	}
	if !a.Adj.ToDense().Equal(b.Adj.ToDense(), 0) {
		t.Fatal("adjacency differs for same seed")
	}
	c := base()
	c.Seed = 77
	cc, _ := Generate(c)
	if a.Adj.ToDense().Equal(cc.Adj.ToDense(), 0) {
		t.Fatal("different seed produced identical graph")
	}
}

func TestGenerateHomophily(t *testing.T) {
	cfg := base()
	cfg.Homophily = 0.9
	g, _ := Generate(cfg)
	comm := Communities(g)
	intra, total := 0, 0
	for u := 0; u < g.N; u++ {
		for _, v := range g.OutNeighbors(u) {
			total++
			if comm[u] == comm[int(v)] {
				intra++
			}
		}
	}
	frac := float64(intra) / float64(total)
	// With homophily 0.9 and 5 communities, intra fraction should exceed
	// the uniform baseline 0.2 by a wide margin.
	if frac < 0.7 {
		t.Fatalf("intra-community edge fraction %v, want > 0.7", frac)
	}
}

func TestGenerateAttributeCommunityCorrelation(t *testing.T) {
	cfg := base()
	cfg.AttrSkew = 0.9
	g, _ := Generate(cfg)
	comm := Communities(g)
	blockSize := cfg.D / cfg.Communities
	inBlock, total := 0, 0
	for v := 0; v < g.N; v++ {
		lo := comm[v] * blockSize
		cols, _ := g.NodeAttrs(v)
		for _, c := range cols {
			total++
			if int(c) >= lo && int(c) < lo+blockSize {
				inBlock++
			}
		}
	}
	if frac := float64(inBlock) / float64(total); frac < 0.75 {
		t.Fatalf("in-block attribute fraction %v, want > 0.75", frac)
	}
}

func TestGenerateUndirectedSymmetry(t *testing.T) {
	cfg := base()
	cfg.Undirected = true
	g, _ := Generate(cfg)
	for u := 0; u < g.N; u++ {
		for _, v := range g.OutNeighbors(u) {
			if !g.HasEdge(int(v), u) {
				t.Fatalf("edge (%d,%d) lacks its reverse", u, v)
			}
		}
	}
}

func TestGenerateMultiLabel(t *testing.T) {
	cfg := base()
	cfg.MultiLabel = true
	cfg.Seed = 9
	g, _ := Generate(cfg)
	multi := 0
	for _, ls := range g.Labels {
		if len(ls) == 0 {
			t.Fatal("node without label")
		}
		if len(ls) > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("MultiLabel produced no multi-labelled nodes")
	}
}

func TestGenerateHeavyTail(t *testing.T) {
	// Preferential attachment should give max in-degree well above the
	// mean in-degree.
	cfg := base()
	cfg.N = 2000
	cfg.AvgOutDeg = 8
	g, _ := Generate(cfg)
	inDeg := make([]int, g.N)
	for u := 0; u < g.N; u++ {
		for _, v := range g.OutNeighbors(u) {
			inDeg[v]++
		}
	}
	maxIn, sum := 0, 0
	for _, d := range inDeg {
		sum += d
		if d > maxIn {
			maxIn = d
		}
	}
	mean := float64(sum) / float64(g.N)
	if float64(maxIn) < 4*mean {
		t.Fatalf("max in-degree %d vs mean %.1f — no heavy tail", maxIn, mean)
	}
}

func TestGenerateRejectsDegenerate(t *testing.T) {
	for _, cfg := range []Config{
		{N: 1, D: 5, Communities: 2},
		{N: 100, D: 0, Communities: 2},
		{N: 100, D: 5, Communities: 0},
	} {
		if _, err := Generate(cfg); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
}

func TestCommunitiesExtraction(t *testing.T) {
	g, err := graph.New(3, 1, nil, nil, [][]int{{2}, {0, 1}, {}})
	if err != nil {
		t.Fatal(err)
	}
	c := Communities(g)
	if c[0] != 2 || c[1] != 0 || c[2] != 0 {
		t.Fatalf("Communities = %v", c)
	}
}
