// Package datagen generates synthetic attributed directed graphs that
// stand in for the paper's real datasets (Table 3), which are not
// available offline. The generator combines
//
//   - a stochastic block model over `Communities` groups for homophily
//     (intra-community edges are more likely than inter-community ones),
//   - preferential attachment for a heavy-tailed out-degree distribution,
//   - per-community attribute distributions: each community prefers a
//     distinct subset of attributes, so attributes correlate with topology
//     exactly the way real node features do, and
//   - labels equal to (noisy) community memberships, optionally
//     multi-label.
//
// These are the properties PANE's evaluation depends on: link prediction
// needs topology-attribute correlation, attribute inference needs
// multi-hop attribute homophily, and classification needs label-topology
// correlation. Absolute accuracy numbers on synthetic data differ from
// the paper's, but method *orderings* are preserved because every method
// sees the same signal.
package datagen

import (
	"fmt"
	"math/rand"

	"pane/internal/graph"
)

// Config describes one synthetic attributed network.
type Config struct {
	Name        string
	N           int     // nodes
	AvgOutDeg   float64 // mean out-degree (m ≈ N·AvgOutDeg)
	D           int     // attributes
	AttrsPer    float64 // mean attributes per node (|ER| ≈ N·AttrsPer)
	Communities int     // label/community count
	MultiLabel  bool    // allow nodes to carry 1-3 labels
	Undirected  bool    // symmetrize edges (Facebook/Flickr in the paper)
	Homophily   float64 // fraction of edges staying inside the community (0..1)
	AttrSkew    float64 // fraction of a node's attributes drawn from its community's preferred block
	Seed        int64
}

// Generate materializes the configured graph.
func Generate(cfg Config) (*graph.Graph, error) {
	if cfg.N < 2 || cfg.D < 1 || cfg.Communities < 1 {
		return nil, fmt.Errorf("datagen: degenerate config %+v", cfg)
	}
	if cfg.Homophily <= 0 {
		cfg.Homophily = 0.8
	}
	if cfg.AttrSkew <= 0 {
		cfg.AttrSkew = 0.75
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Community assignment: round-robin with a shuffle so community sizes
	// are balanced but membership is random.
	comm := make([]int, cfg.N)
	perm := rng.Perm(cfg.N)
	for i, p := range perm {
		comm[p] = i % cfg.Communities
	}
	members := make([][]int, cfg.Communities)
	for v, c := range comm {
		members[c] = append(members[c], v)
	}

	// Edges: preferential attachment within a chosen target community.
	// popularity[v] grows as v receives edges, yielding a heavy tail of
	// in-degrees; out-degrees are Poisson-ish around AvgOutDeg.
	targetEdges := int(float64(cfg.N) * cfg.AvgOutDeg)
	edges := make([]graph.Edge, 0, targetEdges)
	popularity := make([]float64, cfg.N)
	for i := range popularity {
		popularity[i] = 1
	}
	maxPop := 1.0
	pickTarget := func(c int) int {
		// Linear preferential attachment inside community c via rejection
		// sampling against the running maximum popularity: accept node v
		// with probability popularity(v)/maxPop. O(1) expected per pick.
		for try := 0; try < 64; try++ {
			v := members[c][rng.Intn(len(members[c]))]
			if rng.Float64()*maxPop < popularity[v] {
				return v
			}
		}
		return members[c][rng.Intn(len(members[c]))]
	}
	for len(edges) < targetEdges {
		u := rng.Intn(cfg.N)
		c := comm[u]
		if rng.Float64() > cfg.Homophily {
			c = rng.Intn(cfg.Communities)
		}
		v := pickTarget(c)
		if v == u {
			continue
		}
		edges = append(edges, graph.Edge{Src: u, Dst: v})
		popularity[v]++
		if popularity[v] > maxPop {
			maxPop = popularity[v]
		}
		if cfg.Undirected {
			edges = append(edges, graph.Edge{Src: v, Dst: u})
		}
	}

	// Attributes: community c prefers the attribute block
	// [c·D/K, (c+1)·D/K); AttrSkew of a node's attributes come from its
	// preferred block, the rest are uniform.
	blockSize := cfg.D / cfg.Communities
	if blockSize < 1 {
		blockSize = 1
	}
	attrs := make([]graph.AttrEntry, 0, int(float64(cfg.N)*cfg.AttrsPer))
	for v := 0; v < cfg.N; v++ {
		nAttrs := 1 + rng.Intn(int(2*cfg.AttrsPer))
		c := comm[v]
		lo := (c * blockSize) % cfg.D
		for a := 0; a < nAttrs; a++ {
			var r int
			if rng.Float64() < cfg.AttrSkew {
				r = lo + rng.Intn(blockSize)
				if r >= cfg.D {
					r = cfg.D - 1
				}
			} else {
				r = rng.Intn(cfg.D)
			}
			attrs = append(attrs, graph.AttrEntry{Node: v, Attr: r, Weight: 1})
		}
	}

	// Labels: community id, plus extra memberships when MultiLabel.
	labels := make([][]int, cfg.N)
	for v := 0; v < cfg.N; v++ {
		labels[v] = []int{comm[v]}
		if cfg.MultiLabel {
			for rng.Float64() < 0.3 {
				l := rng.Intn(cfg.Communities)
				dup := false
				for _, x := range labels[v] {
					if x == l {
						dup = true
					}
				}
				if !dup {
					labels[v] = append(labels[v], l)
				}
			}
		}
	}
	return graph.New(cfg.N, cfg.D, edges, attrs, labels)
}

// Communities recomputes the ground-truth community of each node from its
// label set (first label), for tests that need it.
func Communities(g *graph.Graph) []int {
	out := make([]int, g.N)
	for v, ls := range g.Labels {
		if len(ls) > 0 {
			out[v] = ls[0]
		}
	}
	return out
}
