package server

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"pane/internal/graph"
	"pane/internal/wal"
)

// The failover tests pin the HTTP half of fencing: probe endpoints,
// dynamic read-only, POST /promote, the epoch header handshake on the
// replication routes, and the staleness label.

func TestLivezAndReadyz(t *testing.T) {
	ready := errors.New("still bootstrapping")
	s := New(testEngine(t),
		WithReadiness("bootstrap", func() error { return ready }),
		WithReadiness("always", func() error { return nil }))

	if code, _ := get(t, s, "/livez"); code != http.StatusOK {
		t.Fatalf("/livez = %d, want 200", code)
	}
	code, body := get(t, s, "/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with a failing check = %d, want 503", code)
	}
	failed, _ := body["failed"].(map[string]interface{})
	if _, ok := failed["bootstrap"]; !ok {
		t.Fatalf("failing check not named: %v", body)
	}

	ready = nil
	if code, _ := get(t, s, "/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz after checks clear = %d, want 200", code)
	}
}

func TestPromoteLiftsReadOnly(t *testing.T) {
	eng := testEngine(t)
	var promoted bool
	s := New(eng, WithReadOnly(), WithPromotion(func() (uint32, error) {
		if err := eng.Promote(eng.Epoch() + 1); err != nil {
			return 0, err
		}
		promoted = true
		return eng.Epoch(), nil
	}))

	if code, _ := post(t, s, "/update/edges", `{"edges":[{"src":0,"dst":5}]}`); code != http.StatusForbidden {
		t.Fatalf("write on read-only follower = %d, want 403", code)
	}
	code, body := post(t, s, "/promote", "")
	if code != http.StatusOK || !promoted {
		t.Fatalf("/promote = %d (%v), promoted=%v", code, body, promoted)
	}
	if body["epoch"].(float64) != 1 {
		t.Fatalf("promotion epoch = %v, want 1", body["epoch"])
	}
	if code, _ := post(t, s, "/update/edges", `{"edges":[{"src":0,"dst":5}]}`); code != http.StatusOK {
		t.Fatalf("write after promotion = %d, want 200", code)
	}
	_, health := get(t, s, "/healthz")
	if health["read_only"] != false || health["epoch"].(float64) != 1 {
		t.Fatalf("healthz after promotion: read_only=%v epoch=%v", health["read_only"], health["epoch"])
	}
}

func TestPromoteWithoutConfiguration(t *testing.T) {
	s, _ := testServer(t)
	if code, _ := post(t, s, "/promote", ""); code != http.StatusServiceUnavailable {
		t.Fatalf("/promote without WithPromotion = %d, want 503", code)
	}
}

func TestPromoteFailureStaysReadOnly(t *testing.T) {
	s := New(testEngine(t), WithReadOnly(),
		WithPromotion(func() (uint32, error) { return 0, errors.New("epoch conflict") }))
	if code, _ := post(t, s, "/promote", ""); code != http.StatusConflict {
		t.Fatalf("failed promotion = %d, want 409", code)
	}
	if code, _ := post(t, s, "/snapshot", ""); code != http.StatusForbidden {
		t.Fatalf("write after failed promotion = %d, want 403 (still read-only)", code)
	}
}

func TestReplicationFencesDeposedLeader(t *testing.T) {
	s, eng, _ := walServer(t, wal.Options{Sync: wal.SyncNone})
	if _, err := eng.ApplyEdges([]graph.Edge{{Src: 0, Dst: 4}}); err != nil {
		t.Fatal(err)
	}

	// Normal request: response advertises epoch 0.
	rec := getRaw(t, s, "/replicate?from=1")
	if rec.Code != http.StatusOK || rec.Header().Get(EpochHeader) != "0" {
		t.Fatalf("/replicate = %d, epoch header %q", rec.Code, rec.Header().Get(EpochHeader))
	}

	// A follower that crossed a failover announces epoch 2: this leader
	// is deposed — 409, and it stays fenced for epoch-less callers too.
	req := httptest.NewRequest(http.MethodGet, "/replicate?from=1", nil)
	req.Header.Set(EpochHeader, "2")
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusConflict {
		t.Fatalf("/replicate from a newer epoch = %d, want 409", w.Code)
	}
	if rec := getRaw(t, s, "/replicate?from=1"); rec.Code != http.StatusConflict {
		t.Fatalf("/replicate on a deposed leader = %d, want 409", rec.Code)
	}
	if rec := getRaw(t, s, "/bundle"); rec.Code != http.StatusConflict {
		t.Fatalf("/bundle on a deposed leader = %d, want 409", rec.Code)
	}

	// Direct writes are fenced with 409, reads keep serving.
	if code, _ := post(t, s, "/update/edges", `{"edges":[{"src":1,"dst":2}]}`); code != http.StatusConflict {
		t.Fatalf("write on a deposed leader = %d, want 409", code)
	}
	if code, _ := get(t, s, "/top-links?src=0"); code != http.StatusOK {
		t.Fatalf("read on a deposed leader = %d, want 200 (degraded mode keeps reads)", code)
	}
	_, health := get(t, s, "/healthz")
	if health["deposed"] != true {
		t.Fatalf("healthz deposed = %v, want true", health["deposed"])
	}
}

func TestStalenessHeader(t *testing.T) {
	stale := false
	s := New(testEngine(t), WithStaleness(func() bool { return stale }))
	if got := getRaw(t, s, "/top-links?src=0").Header().Get(StalenessHeader); got != "fresh" {
		t.Fatalf("staleness header = %q, want fresh", got)
	}
	stale = true
	if got := getRaw(t, s, "/healthz").Header().Get(StalenessHeader); got != "stale" {
		t.Fatalf("staleness header = %q, want stale", got)
	}
	// A server without the signal (a leader) never emits the header.
	plain, _ := testServer(t)
	if got, ok := getRaw(t, plain, "/healthz").Header()[StalenessHeader]; ok {
		t.Fatalf("leader emitted staleness header %q", got)
	}
}
