package server

import (
	"log"
	"net/http"
	"strconv"
	"time"

	"pane/internal/obs"
)

// HTTP instrumentation: every route registers through instrument, which
// wraps the handler with an in-flight gauge, a per-route latency
// histogram, per-route+status-code request counts, and the threshold-
// driven slow-query log. The registry is the engine's own
// (Engine.Metrics()), so GET /metrics serves the HTTP series and the
// engine's update/index/stage series from one exposition — and /healthz,
// which reads the engine's status structs, can never disagree with it.

// serverMetrics holds the handles shared across routes; the per-route
// histogram handles live in each wrapped handler's closure.
type serverMetrics struct {
	reg      *obs.Registry
	inFlight *obs.Gauge
}

func newServerMetrics(reg *obs.Registry) *serverMetrics {
	return &serverMetrics{
		reg: reg,
		inFlight: reg.Gauge("pane_http_in_flight_requests",
			"HTTP requests currently being served."),
	}
}

const (
	reqHelp     = "HTTP requests by route and status code."
	reqDurHelp  = "HTTP request wall time by route."
	slowHelp    = "HTTP requests slower than the configured slow-query threshold, by route."
	topkHelp    = "Top-k requests by route and the backend that answered."
	topkDurHelp = "Top-k engine search wall time by route and backend."
)

// statusRecorder captures the status code a handler writes; an implicit
// 200 (body written without WriteHeader) is recorded as 200.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

// instrument wraps h with the standard middleware for route (the path
// label every series for this handler carries). The route's latency
// histogram and slow counter are resolved once here; the status-coded
// request counter is looked up per request since the code is only known
// after the handler runs.
func (s *Server) instrument(route string, h http.HandlerFunc) http.Handler {
	durH := s.met.reg.Histogram("pane_http_request_duration_seconds", reqDurHelp, obs.L("route", route))
	slowC := s.met.reg.Counter("pane_http_slow_requests_total", slowHelp, obs.L("route", route))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.met.inFlight.Add(1)
		sr := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		t0 := time.Now()
		h(sr, r)
		d := time.Since(t0)
		s.met.inFlight.Add(-1)
		durH.Observe(d)
		s.met.reg.Counter("pane_http_requests_total", reqHelp,
			obs.L("route", route), obs.L("code", strconv.Itoa(sr.status))).Inc()
		if s.slowThreshold > 0 && d >= s.slowThreshold {
			slowC.Inc()
			s.slowLog.Printf("slow query: %s %s -> %d in %s (threshold %s)",
				r.Method, r.URL.RequestURI(), sr.status, d, s.slowThreshold)
		}
	})
}

// recordTopK records one answered top-k request under the backend that
// actually served it.
func (s *Server) recordTopK(route, backend string, d time.Duration) {
	s.met.reg.Counter("pane_topk_requests_total", topkHelp,
		obs.L("route", route), obs.L("backend", backend)).Inc()
	s.met.reg.Histogram("pane_topk_duration_seconds", topkDurHelp,
		obs.L("route", route), obs.L("backend", backend)).Observe(d)
}

// WithSlowQueryLog logs any request slower than threshold (and counts it
// in pane_http_slow_requests_total). A zero threshold disables the log;
// a nil logger uses log.Default().
func WithSlowQueryLog(threshold time.Duration, logger *log.Logger) Option {
	return func(s *Server) {
		s.slowThreshold = threshold
		if logger != nil {
			s.slowLog = logger
		}
	}
}
