package server

import (
	"bytes"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pane/internal/engine"
)

// scrape fetches GET /metrics raw (it serves text exposition, not JSON).
func scrape(t *testing.T, s *Server) string {
	t.Helper()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	return rec.Body.String()
}

func TestMetricsCoverServingPath(t *testing.T) {
	s, _ := testServer(t)
	get(t, s, "/top-links?src=0&k=3")
	get(t, s, "/top-links?src=0&k=-1") // 400: bad k
	post(t, s, "/update/edges", `{"edges":[{"src":0,"dst":5}]}`)
	out := scrape(t, s)
	for _, want := range []string{
		`pane_http_requests_total{code="200",route="/top-links"} 1`,
		`pane_http_requests_total{code="400",route="/top-links"} 1`,
		`pane_http_requests_total{code="200",route="/update/edges"} 1`,
		`pane_http_request_duration_seconds_count{route="/top-links"} 2`,
		`pane_topk_requests_total{backend="scan",route="/top-links"} 1`,
		`pane_updates_total{path="full"} 1`,
		"pane_model_version 2",
		"pane_http_in_flight_requests",
		// One info series per compute kernel, labeled with the ISA the
		// process dispatches to on this build and host.
		fmt.Sprintf(`pane_kernel_dispatch{isa=%q,op="dot"} 1`, engine.KernelDispatch()["dot"]),
		fmt.Sprintf(`pane_kernel_dispatch{isa=%q,op="fp16dot"} 1`, engine.KernelDispatch()["fp16dot"]),
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("scrape missing %q:\n%s", want, out)
		}
	}
	// The scrape itself is instrumented too: a second scrape must see the
	// first one's request counted.
	if out := scrape(t, s); !strings.Contains(out, `pane_http_requests_total{code="200",route="/metrics"} 1`) {
		t.Fatalf("scrape missing the /metrics route's own series:\n%s", out)
	}
}

func TestMetricsCoverIndexedEngine(t *testing.T) {
	s, _ := indexedServer(t)
	get(t, s, "/top-links?src=0&k=3&mode=exact")
	post(t, s, "/update/edges", `{"edges":[{"src":0,"dst":5}]}`)
	out := scrape(t, s)
	for _, want := range []string{
		`pane_topk_requests_total{backend="exact",route="/top-links"} 1`,
		`pane_topk_duration_seconds_count{backend="exact",route="/top-links"} 1`,
		`pane_index_build_cycles_total{kind="full"}`,
		"pane_query_stage_duration_seconds_count{stage=\"fanout\"}",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("scrape missing %q:\n%s", want, out)
		}
	}
}

// TestScrapeWhileQueryingWhileUpdating is the serving-stack race test:
// reader goroutines issue top-k and batch queries, a writer applies
// edge updates, and the main goroutine scrapes /metrics and /healthz
// throughout. Run under -race it exercises every lock-free recording
// path against the copy-on-write scrape path through real handlers.
func TestScrapeWhileQueryingWhileUpdating(t *testing.T) {
	s, eng := indexedServer(t)
	n := eng.Model().Nodes()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				req := httptest.NewRequest(http.MethodGet,
					fmt.Sprintf("/top-links?src=%d&k=3&mode=exact", (w+i)%n), nil)
				s.ServeHTTP(httptest.NewRecorder(), req)
				breq := httptest.NewRequest(http.MethodPost, "/batch",
					strings.NewReader(fmt.Sprintf(`{"queries":[{"op":"top-links","src":%d,"k":2,"mode":"exact"}]}`, i%n)))
				s.ServeHTTP(httptest.NewRecorder(), breq)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			req := httptest.NewRequest(http.MethodPost, "/update/edges",
				strings.NewReader(fmt.Sprintf(`{"edges":[{"src":%d,"dst":%d}]}`, i%n, (i+1)%n)))
			s.ServeHTTP(httptest.NewRecorder(), req)
		}
	}()
	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		scrape(t, s)
		get(t, s, "/healthz")
	}
	close(stop)
	wg.Wait()
	eng.WaitForIndex()
	// Post-quiescence consistency: /healthz and /metrics read the same
	// cells, so the version must match exactly.
	_, health := get(t, s, "/healthz")
	if want := fmt.Sprintf("pane_model_version %g", health["version"].(float64)); !strings.Contains(scrape(t, s), want) {
		t.Fatalf("metrics/healthz disagree on model version: want %q", want)
	}
}

func TestSlowQueryLog(t *testing.T) {
	eng := testEngine(t)
	var buf bytes.Buffer
	s := New(eng, WithSlowQueryLog(time.Nanosecond, log.New(&buf, "", 0)))
	get(t, s, "/healthz")
	if !strings.Contains(buf.String(), "slow query: GET /healthz -> 200") {
		t.Fatalf("slow-query log missing entry: %q", buf.String())
	}
	if !strings.Contains(scrape(t, s), `pane_http_slow_requests_total{route="/healthz"} 1`) {
		t.Fatal("slow request not counted")
	}
	// Without the option no threshold is set, so nothing logs.
	var quiet bytes.Buffer
	s2 := New(testEngine(t), WithSlowQueryLog(0, log.New(&quiet, "", 0)))
	get(t, s2, "/healthz")
	if quiet.Len() != 0 {
		t.Fatalf("zero threshold still logged: %q", quiet.String())
	}
}

func TestInFlightGaugeSettles(t *testing.T) {
	s, _ := testServer(t)
	for i := 0; i < 5; i++ {
		get(t, s, "/healthz")
	}
	if !strings.Contains(scrape(t, s), "pane_http_in_flight_requests 1") {
		// The scrape observes itself in flight: exactly 1 during its own
		// request, since everything else finished.
		t.Fatal("in-flight gauge did not settle to the scrape's own request")
	}
}
