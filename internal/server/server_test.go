package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"pane/internal/core"
	"pane/internal/engine"
	"pane/internal/graph"
)

func testEngine(t *testing.T, opts ...engine.Option) *engine.Engine {
	t.Helper()
	g := graph.RunningExample()
	eng, err := engine.Train(g, core.Config{K: 4, Alpha: 0.15, Eps: 0.05, Seed: 1}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func testServer(t *testing.T) (*Server, *core.Embedding) {
	t.Helper()
	eng := testEngine(t)
	return New(eng), eng.Model().Emb
}

func get(t *testing.T, s *Server, path string) (int, map[string]interface{}) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var body map[string]interface{}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad JSON from %s: %v (%q)", path, err, rec.Body.String())
	}
	return rec.Code, body
}

func post(t *testing.T, s *Server, path, payload string) (int, map[string]interface{}) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(payload))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var body map[string]interface{}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad JSON from %s: %v (%q)", path, err, rec.Body.String())
	}
	return rec.Code, body
}

func TestHealthz(t *testing.T) {
	s, _ := testServer(t)
	code, body := get(t, s, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if body["nodes"].(float64) != 6 || body["attrs"].(float64) != 3 || body["k"].(float64) != 4 {
		t.Fatalf("health payload: %v", body)
	}
	if body["version"].(float64) != 1 {
		t.Fatalf("fresh model version = %v, want 1", body["version"])
	}
	aff, ok := body["affinity"].(map[string]interface{})
	if !ok {
		t.Fatalf("healthz missing affinity section: %v", body)
	}
	if aff["enabled"] != true || aff["affinity_incremental"].(float64) != 0 ||
		aff["affinity_full"].(float64) != 0 || aff["affinity_frontier_rows"].(float64) != 0 {
		t.Fatalf("fresh affinity status: %v", aff)
	}
}

func TestAttrScoreMatchesEmbedding(t *testing.T) {
	s, emb := testServer(t)
	code, body := get(t, s, "/attr-score?node=2&attr=1")
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, body)
	}
	want := emb.AttrScore(2, 1)
	if got := body["score"].(float64); got != want {
		t.Fatalf("score %v, want %v", got, want)
	}
}

func TestLinkScoreMatchesScorer(t *testing.T) {
	s, emb := testServer(t)
	code, body := get(t, s, "/link-score?src=0&dst=4")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	sc := core.NewLinkScorer(emb)
	if got := body["score"].(float64); got != sc.Directed(0, 4) {
		t.Fatalf("directed %v, want %v", got, sc.Directed(0, 4))
	}
	if got := body["undirected"].(float64); got != sc.Undirected(0, 4) {
		t.Fatalf("undirected %v", got)
	}
}

func TestTopAttrs(t *testing.T) {
	s, emb := testServer(t)
	code, body := get(t, s, "/top-attrs?node=5&k=2")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	results := body["results"].([]interface{})
	if len(results) != 2 {
		t.Fatalf("%d results", len(results))
	}
	first := results[0].(map[string]interface{})
	want := emb.TopKAttrs(5, 2, nil)
	if int(first["ID"].(float64)) != want[0].ID {
		t.Fatalf("top attr %v, want %v", first, want[0])
	}
}

func TestTopLinks(t *testing.T) {
	s, _ := testServer(t)
	code, body := get(t, s, "/top-links?src=0&k=3")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(body["results"].([]interface{})) != 3 {
		t.Fatal("want 3 results")
	}
}

func TestParameterValidation(t *testing.T) {
	s, _ := testServer(t)
	cases := []struct {
		path string
		code int
	}{
		{"/attr-score", http.StatusBadRequest},        // missing both
		{"/attr-score?node=0", http.StatusBadRequest}, // missing attr
		{"/attr-score?node=abc&attr=0", http.StatusBadRequest},
		{"/attr-score?node=99&attr=0", http.StatusNotFound}, // out of range
		{"/attr-score?node=0&attr=-1", http.StatusNotFound},
		{"/link-score?src=0&dst=100", http.StatusNotFound},
		{"/top-attrs?node=77", http.StatusNotFound},
	}
	for _, c := range cases {
		code, body := get(t, s, c.path)
		if code != c.code {
			t.Fatalf("%s: status %d want %d (%v)", c.path, code, c.code, body)
		}
		if _, hasErr := body["error"]; !hasErr {
			t.Fatalf("%s: error payload missing", c.path)
		}
	}
}

func TestKDefaultsAndClamping(t *testing.T) {
	s, _ := testServer(t)
	_, body := get(t, s, "/top-attrs?node=0") // default k=10 > d=3 → clamp to 3
	if got := len(body["results"].([]interface{})); got != 3 {
		t.Fatalf("default k results = %d, want 3 (clamped)", got)
	}
	_, body = get(t, s, "/top-attrs?node=0&k=99") // above candidate count → clamp
	if got := len(body["results"].([]interface{})); got != 3 {
		t.Fatalf("k=99 results = %d, want 3 (clamped)", got)
	}
}

func TestInvalidTopKParamsRejected(t *testing.T) {
	s, _ := testServer(t)
	// An explicit k < 1 (or junk) is a 400, never silently rewritten to
	// the default; same for malformed mode/nprobe.
	for _, path := range []string{
		"/top-attrs?node=0&k=0",
		"/top-attrs?node=0&k=-3",
		"/top-attrs?node=0&k=abc",
		"/top-links?src=0&k=0",
		"/top-links?src=0&mode=bogus",
		"/top-links?src=0&nprobe=0",
		"/top-links?src=0&nprobe=-1",
		"/top-links?src=0&nprobe=x",
		"/top-attrs?node=0&mode=IVF", // case-sensitive
	} {
		code, body := get(t, s, path)
		if code != http.StatusBadRequest {
			t.Fatalf("%s: status %d want 400 (%v)", path, code, body)
		}
		if _, hasErr := body["error"]; !hasErr {
			t.Fatalf("%s: error payload missing", path)
		}
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s, _ := testServer(t)
	cases := []struct {
		method, path string
	}{
		{http.MethodPost, "/healthz"},
		{http.MethodPost, "/link-score?src=0&dst=1"},
		{http.MethodDelete, "/top-attrs?node=0"},
		{http.MethodGet, "/update/edges"},
		{http.MethodGet, "/update/attrs"},
		{http.MethodGet, "/batch"},
		{http.MethodPut, "/snapshot"},
	}
	for _, c := range cases {
		req := httptest.NewRequest(c.method, c.path, strings.NewReader("{}"))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusMethodNotAllowed {
			t.Fatalf("%s %s: status %d, want 405", c.method, c.path, rec.Code)
		}
	}
}

func TestUpdateEdgesReflectsInScores(t *testing.T) {
	s, _ := testServer(t)
	_, before := get(t, s, "/link-score?src=0&dst=5")
	code, body := post(t, s, "/update/edges", `{"edges":[{"src":0,"dst":5},{"src":5,"dst":0}]}`)
	if code != http.StatusOK {
		t.Fatalf("update status %d: %v", code, body)
	}
	if body["version"].(float64) != 2 {
		t.Fatalf("post-update version = %v, want 2", body["version"])
	}
	_, health := get(t, s, "/healthz")
	if health["version"].(float64) != 2 {
		t.Fatalf("healthz version = %v, want 2", health["version"])
	}
	_, after := get(t, s, "/link-score?src=0&dst=5")
	if before["score"].(float64) == after["score"].(float64) {
		t.Fatal("link score unchanged after edge update")
	}
	if after["version"].(float64) != 2 {
		t.Fatalf("score version = %v, want 2", after["version"])
	}
}

func TestUpdateAttrsBumpsVersion(t *testing.T) {
	s, _ := testServer(t)
	code, body := post(t, s, "/update/attrs", `{"attrs":[{"node":0,"attr":2,"weight":1.5}]}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, body)
	}
	if body["version"].(float64) != 2 {
		t.Fatalf("version = %v, want 2", body["version"])
	}
}

func TestUpdateErrorPaths(t *testing.T) {
	s, _ := testServer(t)
	cases := []struct {
		path, payload string
	}{
		{"/update/edges", `not json`},
		{"/update/edges", `{"edges":[]}`},
		{"/update/edges", `{}`},
		{"/update/edges", `{"edges":[{"src":0,"dst":99}]}`}, // out of range
		{"/update/edges", `{"edges":[{"src":-1,"dst":0}]}`},
		{"/update/edges", `{"edges":[{"src":0,"dst":1}]} trailing`},
		{"/update/attrs", `{"attrs":[]}`},
		{"/update/attrs", `{"attrs":[{"node":0,"attr":99,"weight":1}]}`},
		{"/update/attrs", `{"attrs":[{"node":0,"attr":0,"weight":-2}]}`}, // negative weight
		{"/batch", `{"queries":[]}`},
		{"/batch", `broken`},
	}
	for _, c := range cases {
		code, body := post(t, s, c.path, c.payload)
		if code != http.StatusBadRequest {
			t.Fatalf("POST %s %q: status %d want 400 (%v)", c.path, c.payload, code, body)
		}
		if _, hasErr := body["error"]; !hasErr {
			t.Fatalf("POST %s %q: error payload missing", c.path, c.payload)
		}
	}
	// Failed updates must not bump the version.
	_, health := get(t, s, "/healthz")
	if health["version"].(float64) != 1 {
		t.Fatalf("version moved to %v after failed updates", health["version"])
	}
}

func TestOversizedBodyGets413(t *testing.T) {
	s, _ := testServer(t)
	// Valid JSON whose whitespace padding pushes the body past the 64 MB
	// limit: the decoder reads through it and must surface 413, not 400.
	payload := `{"edges":[` + strings.Repeat(" ", 64<<20) + `{"src":0,"dst":5}]}`
	code, body := post(t, s, "/update/edges", payload)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d want 413 (%v)", code, body)
	}
	if _, hasErr := body["error"]; !hasErr {
		t.Fatal("error payload missing")
	}
}

func TestBatchHeterogeneous(t *testing.T) {
	s, emb := testServer(t)
	code, body := post(t, s, "/batch", `{"queries":[
		{"op":"link-score","src":0,"dst":4},
		{"op":"attr-score","node":2,"attr":1},
		{"op":"top-attrs","node":5,"k":2},
		{"op":"nonsense"},
		{"op":"top-links","src":99}
	]}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, body)
	}
	results := body["results"].([]interface{})
	if len(results) != 5 {
		t.Fatalf("%d results, want 5", len(results))
	}
	link := results[0].(map[string]interface{})
	sc := core.NewLinkScorer(emb)
	if link["score"].(float64) != sc.Directed(0, 4) {
		t.Fatalf("batch link score %v, want %v", link["score"], sc.Directed(0, 4))
	}
	attr := results[1].(map[string]interface{})
	if attr["score"].(float64) != emb.AttrScore(2, 1) {
		t.Fatalf("batch attr score %v", attr["score"])
	}
	top := results[2].(map[string]interface{})
	if len(top["top"].([]interface{})) != 2 {
		t.Fatalf("batch top-attrs %v", top["top"])
	}
	for _, i := range []int{3, 4} {
		r := results[i].(map[string]interface{})
		if _, hasErr := r["error"]; !hasErr {
			t.Fatalf("result %d should carry an error: %v", i, r)
		}
	}
	if body["version"].(float64) != 1 {
		t.Fatalf("batch version %v", body["version"])
	}
}

func TestSnapshotEndpoint(t *testing.T) {
	eng := testEngine(t)
	// Unconfigured: 503.
	s := New(eng)
	code, body := post(t, s, "/snapshot", "")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("unconfigured snapshot: status %d (%v)", code, body)
	}
	// Configured: writes a loadable bundle.
	path := filepath.Join(t.TempDir(), "model.pane")
	s = New(eng, WithSnapshotPath(path))
	code, body = post(t, s, "/snapshot", "")
	if code != http.StatusOK {
		t.Fatalf("snapshot: status %d (%v)", code, body)
	}
	if body["path"].(string) != path {
		t.Fatalf("snapshot path %v", body["path"])
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("snapshot file: %v", err)
	}
	restored, err := engine.Open(path)
	if err != nil {
		t.Fatalf("reopening snapshot: %v", err)
	}
	if restored.Version() != eng.Version() {
		t.Fatalf("restored version %d != live %d", restored.Version(), eng.Version())
	}
}

// indexedServer builds a server over an engine with full indexing and
// manual rebuilds, so tests can pin the mid-rebuild state.
func indexedServer(t *testing.T) (*Server, *engine.Engine) {
	t.Helper()
	eng := testEngine(t,
		engine.WithIndex(engine.IndexConfig{IVF: true, NList: 2, NProbe: 2}),
		engine.WithManualIndexRebuild())
	return New(eng), eng
}

func TestTopKBackendReporting(t *testing.T) {
	s, _ := indexedServer(t)
	cases := []struct {
		path, backend string
	}{
		{"/top-links?src=0&k=3", "exact"}, // default mode
		{"/top-links?src=0&k=3&mode=exact", "exact"},
		{"/top-links?src=0&k=3&mode=ivf", "ivf"},
		{"/top-links?src=0&k=3&mode=ivf&nprobe=1", "ivf"},
		{"/top-attrs?node=0&k=2&mode=ivf", "ivf"},
		{"/top-attrs?node=0&k=2", "exact"},
	}
	for _, c := range cases {
		code, body := get(t, s, c.path)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d (%v)", c.path, code, body)
		}
		if got := body["backend"]; got != c.backend {
			t.Fatalf("%s: backend %v, want %q", c.path, got, c.backend)
		}
		if body["version"].(float64) != 1 {
			t.Fatalf("%s: version %v", c.path, body["version"])
		}
	}
	// An unindexed engine answers the same queries from the scan path.
	plain, _ := testServer(t)
	_, body := get(t, plain, "/top-links?src=0&k=3&mode=ivf")
	if got := body["backend"]; got != "scan" {
		t.Fatalf("unindexed backend %v, want scan", got)
	}
}

// TestQuantizedModesOverHTTP: the sq8/ivfsq modes are accepted on both
// top-k routes, answer from their backends, degrade to exact on an
// unquantized index, and healthz reports the quantized configuration.
func TestQuantizedModesOverHTTP(t *testing.T) {
	eng := testEngine(t, engine.WithIndex(engine.IndexConfig{
		IVF: true, NList: 2, NProbe: 2, Quantize: true, Rerank: 3,
	}))
	s := New(eng)
	cases := []struct {
		path, backend string
	}{
		{"/top-links?src=0&k=3&mode=sq8", "sq8"},
		{"/top-links?src=0&k=3&mode=ivfsq", "ivfsq"},
		{"/top-links?src=0&k=3&mode=ivfsq&nprobe=1", "ivfsq"},
		{"/top-attrs?node=0&k=2&mode=sq8", "sq8"},
		{"/top-attrs?node=0&k=2&mode=ivfsq", "ivfsq"},
	}
	for _, c := range cases {
		code, body := get(t, s, c.path)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d (%v)", c.path, code, body)
		}
		if got := body["backend"]; got != c.backend {
			t.Fatalf("%s: backend %v, want %q", c.path, got, c.backend)
		}
	}
	// With a full re-rank window the quantized answer must equal exact.
	_, exact := get(t, s, "/top-links?src=0&k=3&mode=exact")
	_, sq8 := get(t, s, "/top-links?src=0&k=3&mode=sq8")
	if exactJSON, sq8JSON := jsonString(t, exact["results"]), jsonString(t, sq8["results"]); exactJSON != sq8JSON {
		t.Fatalf("sq8 results %s differ from exact %s", sq8JSON, exactJSON)
	}
	// healthz carries the quantized index state.
	_, health := get(t, s, "/healthz")
	idx := health["index"].(map[string]interface{})
	if idx["quantize"] != true || idx["rerank"].(float64) != 3 {
		t.Fatalf("healthz index %v", idx)
	}
	// On an unquantized index the modes degrade with honest labels.
	plainIdx, _ := indexedServer(t)
	_, body := get(t, plainIdx, "/top-links?src=0&k=3&mode=sq8")
	if got := body["backend"]; got != "exact" {
		t.Fatalf("unquantized sq8 backend %v, want exact", got)
	}
	_, body = get(t, plainIdx, "/top-links?src=0&k=3&mode=ivfsq")
	if got := body["backend"]; got != "ivf" {
		t.Fatalf("unquantized ivfsq backend %v, want ivf", got)
	}
}

// TestFP16ModesOverHTTP: the fp16/ivffp16 modes are accepted on both
// top-k routes, answer from their backends, degrade honestly when the
// tier is not built, and healthz reports the fp16 flag plus the kernel
// dispatch table.
func TestFP16ModesOverHTTP(t *testing.T) {
	eng := testEngine(t, engine.WithIndex(engine.IndexConfig{
		IVF: true, NList: 2, NProbe: 2, FP16: true,
	}))
	s := New(eng)
	cases := []struct {
		path, backend string
	}{
		{"/top-links?src=0&k=3&mode=fp16", "fp16"},
		{"/top-links?src=0&k=3&mode=ivffp16", "ivffp16"},
		{"/top-links?src=0&k=3&mode=ivffp16&nprobe=1", "ivffp16"},
		{"/top-attrs?node=0&k=2&mode=fp16", "fp16"},
		{"/top-attrs?node=0&k=2&mode=ivffp16", "ivffp16"},
	}
	for _, c := range cases {
		code, body := get(t, s, c.path)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d (%v)", c.path, code, body)
		}
		if got := body["backend"]; got != c.backend {
			t.Fatalf("%s: backend %v, want %q", c.path, got, c.backend)
		}
	}
	// healthz carries the fp16 flag and the kernel dispatch table.
	_, health := get(t, s, "/healthz")
	idx := health["index"].(map[string]interface{})
	if idx["fp16"] != true {
		t.Fatalf("healthz index %v", idx)
	}
	kernels, ok := health["kernels"].(map[string]interface{})
	if !ok {
		t.Fatalf("healthz kernels section missing: %v", health["kernels"])
	}
	for _, op := range []string{"dot", "axpy", "gemm", "sq8dot", "fp16dot"} {
		isa, ok := kernels[op].(string)
		if !ok || (isa != "generic" && isa != "avx2" && isa != "neon") {
			t.Fatalf("kernels[%q] = %v", op, kernels[op])
		}
	}
	// On an index without the tier the modes degrade with honest labels.
	plainIdx, _ := indexedServer(t)
	_, body := get(t, plainIdx, "/top-links?src=0&k=3&mode=fp16")
	if got := body["backend"]; got != "exact" {
		t.Fatalf("fp16 without tier: backend %v, want exact", got)
	}
	_, body = get(t, plainIdx, "/top-links?src=0&k=3&mode=ivffp16")
	if got := body["backend"]; got != "ivf" {
		t.Fatalf("ivffp16 without tier: backend %v, want ivf", got)
	}
}

// jsonString renders a decoded JSON fragment canonically for comparison.
func jsonString(t *testing.T, v interface{}) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestVersionDuringIndexRebuild pins the update-applied-index-pending
// state: the response must carry the NEW model version with the scan
// backend (never a stale index), and flip to the indexed backend once
// the rebuild publishes.
func TestVersionDuringIndexRebuild(t *testing.T) {
	s, eng := indexedServer(t)

	_, body := get(t, s, "/top-links?src=0&k=3")
	if body["backend"] != "exact" || body["version"].(float64) != 1 {
		t.Fatalf("fresh engine: %v", body)
	}

	code, _ := post(t, s, "/update/edges", `{"edges":[{"src":0,"dst":5}]}`)
	if code != http.StatusOK {
		t.Fatalf("update status %d", code)
	}
	// Manual rebuild mode: the index is still at version 1, the model at
	// 2 — exactly what a query sees mid-rebuild.
	for _, path := range []string{"/top-links?src=0&k=3", "/top-links?src=0&k=3&mode=ivf"} {
		_, body = get(t, s, path)
		if body["version"].(float64) != 2 {
			t.Fatalf("%s mid-rebuild: version %v, want 2", path, body["version"])
		}
		if body["backend"] != "scan" {
			t.Fatalf("%s mid-rebuild: backend %v, want scan", path, body["backend"])
		}
	}
	_, health := get(t, s, "/healthz")
	idx := health["index"].(map[string]interface{})
	if idx["enabled"] != true || idx["version"].(float64) != 1 {
		t.Fatalf("healthz index mid-rebuild: %v", idx)
	}

	eng.RebuildIndex()
	_, body = get(t, s, "/top-links?src=0&k=3&mode=ivf")
	if body["backend"] != "ivf" || body["version"].(float64) != 2 {
		t.Fatalf("post-rebuild: %v", body)
	}
	_, health = get(t, s, "/healthz")
	if idx := health["index"].(map[string]interface{}); idx["version"].(float64) != 2 {
		t.Fatalf("healthz index post-rebuild: %v", idx)
	}
}

// TestHealthzReportsShardGenerations drives a sharded engine over HTTP:
// /healthz exposes per-shard index generations, queries fan out across
// the shards (reported through the usual backend field), and the
// mid-rebuild state shows every shard pinned at the previous generation
// while queries scan at the new model version.
func TestHealthzReportsShardGenerations(t *testing.T) {
	eng := testEngine(t,
		engine.WithIndex(engine.IndexConfig{IVF: true, NList: 2, NProbe: 2, Shards: 3}),
		engine.WithManualIndexRebuild())
	s := New(eng)

	_, health := get(t, s, "/healthz")
	idx := health["index"].(map[string]interface{})
	if idx["shards"].(float64) != 3 {
		t.Fatalf("healthz shards: %v", idx)
	}
	gens := idx["shard_versions"].([]interface{})
	if len(gens) != 3 {
		t.Fatalf("healthz shard_versions: %v", gens)
	}
	for s, g := range gens {
		if g.(float64) != 1 {
			t.Fatalf("shard %d generation %v, want 1", s, g)
		}
	}
	_, body := get(t, s, "/top-links?src=0&k=3")
	if body["backend"] != "exact" || body["version"].(float64) != 1 {
		t.Fatalf("sharded query: %v", body)
	}

	if code, _ := post(t, s, "/update/edges", `{"edges":[{"src":0,"dst":5}]}`); code != http.StatusOK {
		t.Fatalf("update status %d", code)
	}
	_, body = get(t, s, "/top-links?src=0&k=3")
	if body["backend"] != "scan" || body["version"].(float64) != 2 {
		t.Fatalf("mid-rebuild sharded query: %v", body)
	}
	_, health = get(t, s, "/healthz")
	idx = health["index"].(map[string]interface{})
	for s, g := range idx["shard_versions"].([]interface{}) {
		if g.(float64) != 1 {
			t.Fatalf("mid-rebuild shard %d generation %v, want 1", s, g)
		}
	}

	eng.RebuildIndex()
	_, health = get(t, s, "/healthz")
	idx = health["index"].(map[string]interface{})
	if idx["version"].(float64) != 2 {
		t.Fatalf("post-rebuild healthz index: %v", idx)
	}
	for s, g := range idx["shard_versions"].([]interface{}) {
		if g.(float64) != 2 {
			t.Fatalf("post-rebuild shard %d generation %v, want 2", s, g)
		}
	}
	_, body = get(t, s, "/top-links?src=0&k=3&mode=ivf")
	if body["backend"] != "ivf" || body["version"].(float64) != 2 {
		t.Fatalf("post-rebuild sharded query: %v", body)
	}
}

func TestBatchTopKThroughIndex(t *testing.T) {
	s, _ := indexedServer(t)
	code, body := post(t, s, "/batch", `{"queries":[
		{"op":"top-links","src":0,"k":3},
		{"op":"top-links","src":0,"k":3,"mode":"ivf"},
		{"op":"top-attrs","node":1,"k":0},
		{"op":"top-links","src":0,"k":-2},
		{"op":"top-links","src":0,"mode":"bogus"}
	]}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, body)
	}
	results := body["results"].([]interface{})
	if got := results[0].(map[string]interface{})["backend"]; got != "exact" {
		t.Fatalf("batch exact backend %v", got)
	}
	if got := results[1].(map[string]interface{})["backend"]; got != "ivf" {
		t.Fatalf("batch ivf backend %v", got)
	}
	// Explicit k < 1 and bad mode are per-query errors, not silent
	// rewrites and not batch failures.
	for _, i := range []int{2, 3, 4} {
		r := results[i].(map[string]interface{})
		if _, hasErr := r["error"]; !hasErr {
			t.Fatalf("result %d should carry an error: %v", i, r)
		}
	}
}

func TestConcurrentQueries(t *testing.T) {
	s, _ := testServer(t)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := httptest.NewRequest(http.MethodGet, "/top-links?src=0&k=5", nil)
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				t.Errorf("goroutine %d: status %d", i, rec.Code)
			}
		}(i)
	}
	wg.Wait()
}
