package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"pane/internal/core"
	"pane/internal/graph"
)

func testServer(t *testing.T) (*Server, *core.Embedding) {
	t.Helper()
	g := graph.RunningExample()
	emb, err := core.PANE(g, core.Config{K: 4, Alpha: 0.15, Eps: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return New(emb), emb
}

func get(t *testing.T, s *Server, path string) (int, map[string]interface{}) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var body map[string]interface{}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad JSON from %s: %v (%q)", path, err, rec.Body.String())
	}
	return rec.Code, body
}

func TestHealthz(t *testing.T) {
	s, _ := testServer(t)
	code, body := get(t, s, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if body["nodes"].(float64) != 6 || body["attrs"].(float64) != 3 || body["k"].(float64) != 4 {
		t.Fatalf("health payload: %v", body)
	}
}

func TestAttrScoreMatchesEmbedding(t *testing.T) {
	s, emb := testServer(t)
	code, body := get(t, s, "/attr-score?node=2&attr=1")
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, body)
	}
	want := emb.AttrScore(2, 1)
	if got := body["score"].(float64); got != want {
		t.Fatalf("score %v, want %v", got, want)
	}
}

func TestLinkScoreMatchesScorer(t *testing.T) {
	s, emb := testServer(t)
	code, body := get(t, s, "/link-score?src=0&dst=4")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	sc := core.NewLinkScorer(emb)
	if got := body["score"].(float64); got != sc.Directed(0, 4) {
		t.Fatalf("directed %v, want %v", got, sc.Directed(0, 4))
	}
	if got := body["undirected"].(float64); got != sc.Undirected(0, 4) {
		t.Fatalf("undirected %v", got)
	}
}

func TestTopAttrs(t *testing.T) {
	s, emb := testServer(t)
	code, body := get(t, s, "/top-attrs?node=5&k=2")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	results := body["results"].([]interface{})
	if len(results) != 2 {
		t.Fatalf("%d results", len(results))
	}
	first := results[0].(map[string]interface{})
	want := emb.TopKAttrs(5, 2, nil)
	if int(first["ID"].(float64)) != want[0].ID {
		t.Fatalf("top attr %v, want %v", first, want[0])
	}
}

func TestTopLinks(t *testing.T) {
	s, _ := testServer(t)
	code, body := get(t, s, "/top-links?src=0&k=3")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(body["results"].([]interface{})) != 3 {
		t.Fatal("want 3 results")
	}
}

func TestParameterValidation(t *testing.T) {
	s, _ := testServer(t)
	cases := []struct {
		path string
		code int
	}{
		{"/attr-score", http.StatusBadRequest},        // missing both
		{"/attr-score?node=0", http.StatusBadRequest}, // missing attr
		{"/attr-score?node=abc&attr=0", http.StatusBadRequest},
		{"/attr-score?node=99&attr=0", http.StatusNotFound}, // out of range
		{"/attr-score?node=0&attr=-1", http.StatusNotFound},
		{"/link-score?src=0&dst=100", http.StatusNotFound},
		{"/top-attrs?node=77", http.StatusNotFound},
	}
	for _, c := range cases {
		code, body := get(t, s, c.path)
		if code != c.code {
			t.Fatalf("%s: status %d want %d (%v)", c.path, code, c.code, body)
		}
		if _, hasErr := body["error"]; !hasErr {
			t.Fatalf("%s: error payload missing", c.path)
		}
	}
}

func TestKDefaultsAndClamping(t *testing.T) {
	s, _ := testServer(t)
	_, body := get(t, s, "/top-attrs?node=0") // default k=10 > d=3 → clamp to 3
	if got := len(body["results"].([]interface{})); got != 3 {
		t.Fatalf("default k results = %d, want 3 (clamped)", got)
	}
	_, body = get(t, s, "/top-attrs?node=0&k=0") // invalid → default → clamp
	if got := len(body["results"].([]interface{})); got != 3 {
		t.Fatalf("k=0 results = %d", got)
	}
}

func TestConcurrentQueries(t *testing.T) {
	s, _ := testServer(t)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := httptest.NewRequest(http.MethodGet, "/top-links?src=0&k=5", nil)
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				t.Errorf("goroutine %d: status %d", i, rec.Code)
			}
		}(i)
	}
	wg.Wait()
}
