package server

import (
	"bufio"
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"pane/internal/engine"
	"pane/internal/store"
	"pane/internal/wal"
)

// walServer builds a WAL-attached leader server over the running
// example. The affinity path is off so replication tests exercise the
// deterministic apply path end to end.
func walServer(t *testing.T, walOpts wal.Options, srvOpts ...Option) (*Server, *engine.Engine, *wal.Log) {
	t.Helper()
	eng := testEngine(t, engine.WithAffinityThreshold(0))
	log, err := wal.Open(t.TempDir(), walOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { log.Close() })
	if err := eng.AttachWAL(log); err != nil {
		t.Fatal(err)
	}
	return New(eng, srvOpts...), eng, log
}

// getRaw performs a request and returns the raw response.
func getRaw(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

// decodeFrames parses a /replicate body into records.
func decodeFrames(t *testing.T, body []byte) []wal.Record {
	t.Helper()
	br := bufio.NewReader(bytes.NewReader(body))
	var recs []wal.Record
	for {
		rec, err := wal.ReadFrame(br)
		if err == io.EOF {
			return recs
		}
		if err != nil {
			t.Fatalf("frame %d: %v", len(recs), err)
		}
		recs = append(recs, rec)
	}
}

func TestReplicateStreamsRecords(t *testing.T) {
	s, _, _ := walServer(t, wal.Options{Sync: wal.SyncNone})

	// Caught-up followers get an empty 200 with the leader's version.
	rec := getRaw(t, s, "/replicate?from=1")
	if rec.Code != http.StatusOK || rec.Header().Get(VersionHeader) != "1" {
		t.Fatalf("empty log: %d, version %q", rec.Code, rec.Header().Get(VersionHeader))
	}
	if len(decodeFrames(t, rec.Body.Bytes())) != 0 {
		t.Fatal("records from an empty log")
	}

	if code, body := post(t, s, "/update/edges", `{"edges":[{"src":0,"dst":5}]}`); code != http.StatusOK {
		t.Fatalf("update: %d %v", code, body)
	}
	if code, body := post(t, s, "/update/attrs", `{"attrs":[{"node":1,"attr":2,"weight":0.5}]}`); code != http.StatusOK {
		t.Fatalf("update: %d %v", code, body)
	}

	rec = getRaw(t, s, "/replicate?from=1")
	if rec.Code != http.StatusOK || rec.Header().Get(VersionHeader) != "3" {
		t.Fatalf("after updates: %d, version %q", rec.Code, rec.Header().Get(VersionHeader))
	}
	recs := decodeFrames(t, rec.Body.Bytes())
	if len(recs) != 2 || recs[0].Version != 2 || recs[1].Version != 3 {
		t.Fatalf("got %d records %+v", len(recs), recs)
	}
	if len(recs[0].Edges) != 1 || recs[0].Edges[0].Src != 0 || recs[0].Edges[0].Dst != 5 {
		t.Fatalf("record 2 delta: %+v", recs[0])
	}
	if len(recs[1].Attrs) != 1 || recs[1].Attrs[0].Weight != 0.5 {
		t.Fatalf("record 3 delta: %+v", recs[1])
	}

	// Paging.
	rec = getRaw(t, s, "/replicate?from=1&max=1")
	if got := decodeFrames(t, rec.Body.Bytes()); len(got) != 1 || got[0].Version != 2 {
		t.Fatalf("max=1 page: %+v", got)
	}
	// Caught up again.
	rec = getRaw(t, s, "/replicate?from=3")
	if len(decodeFrames(t, rec.Body.Bytes())) != 0 {
		t.Fatal("records past the tail")
	}

	// Parameter validation.
	for _, path := range []string{"/replicate", "/replicate?from=x", "/replicate?from=1&max=0"} {
		if rec := getRaw(t, s, path); rec.Code != http.StatusBadRequest {
			t.Fatalf("%s: %d, want 400", path, rec.Code)
		}
	}
}

func TestReplicateWithoutWAL(t *testing.T) {
	s, _ := testServer(t)
	if rec := getRaw(t, s, "/replicate?from=1"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("no WAL: %d, want 503", rec.Code)
	}
}

func TestReplicateGoneAfterCompaction(t *testing.T) {
	dir := t.TempDir()
	s, eng, _ := walServer(t, wal.Options{Sync: wal.SyncNone, SegmentBytes: 1},
		WithSnapshotPath(filepath.Join(dir, "snap.pane")))
	for i := 0; i < 4; i++ {
		if code, body := post(t, s, "/update/edges", `{"edges":[{"src":0,"dst":5}]}`); code != http.StatusOK {
			t.Fatalf("update: %d %v", code, body)
		}
	}
	if code, body := post(t, s, "/snapshot", ""); code != http.StatusOK {
		t.Fatalf("snapshot: %d %v", code, body)
	}
	rec := getRaw(t, s, "/replicate?from=1")
	if rec.Code != http.StatusGone {
		t.Fatalf("compacted position: %d, want 410", rec.Code)
	}
	// The bundle path the 410 directs followers to still works.
	if v := eng.Version(); v != 5 {
		t.Fatalf("leader at %d", v)
	}
	bun := getRaw(t, s, "/bundle")
	if bun.Code != http.StatusOK || bun.Header().Get(VersionHeader) != "5" {
		t.Fatalf("bundle: %d, version %q", bun.Code, bun.Header().Get(VersionHeader))
	}
}

func TestBundleEndpoint(t *testing.T) {
	s, eng := testServer(t)
	rec := getRaw(t, s, "/bundle")
	_ = eng
	if rec.Code != http.StatusOK {
		t.Fatalf("bundle: %d", rec.Code)
	}
	b, err := store.ReadBundle(bytes.NewReader(rec.Body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if b.ModelVersion != 1 || b.Xf.Rows != 6 || b.Y.Rows != 3 {
		t.Fatalf("decoded bundle v%d %dx%d", b.ModelVersion, b.Xf.Rows, b.Y.Rows)
	}
}

func TestReadOnlyServer(t *testing.T) {
	eng := testEngine(t)
	s := New(eng, WithReadOnly(), WithSnapshotPath(filepath.Join(t.TempDir(), "s.pane")))
	for _, c := range []struct{ path, payload string }{
		{"/update/edges", `{"edges":[{"src":0,"dst":5}]}`},
		{"/update/attrs", `{"attrs":[{"node":1,"attr":2,"weight":0.5}]}`},
		{"/snapshot", ""},
	} {
		if code, _ := post(t, s, c.path, c.payload); code != http.StatusForbidden {
			t.Fatalf("%s on read-only server: %d, want 403", c.path, code)
		}
	}
	if v := eng.Version(); v != 1 {
		t.Fatalf("read-only server mutated the engine to version %d", v)
	}
	// Reads and batches still serve.
	if code, _ := get(t, s, "/link-score?src=0&dst=1"); code != http.StatusOK {
		t.Fatalf("read on read-only server: %d", code)
	}
	if code, _ := post(t, s, "/batch", `{"queries":[{"op":"link-score","src":0,"dst":1}]}`); code != http.StatusOK {
		t.Fatalf("batch on read-only server: %d", code)
	}
	if code, body := get(t, s, "/healthz"); code != http.StatusOK || body["read_only"] != true {
		t.Fatalf("healthz read_only: %d %v", code, body["read_only"])
	}
}

func TestHealthSections(t *testing.T) {
	eng := testEngine(t)
	s := New(eng, WithHealthSection("replication", func() interface{} {
		return map[string]int{"lag": 7}
	}))
	code, body := get(t, s, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	sec, ok := body["replication"].(map[string]interface{})
	if !ok || sec["lag"] != float64(7) {
		t.Fatalf("replication section missing or wrong: %v", body["replication"])
	}
}
