// Package server exposes a trained PANE embedding as a small JSON-over-
// HTTP query service — the deployment artifact a downstream user runs
// next to their application. Endpoints:
//
//	GET /healthz                     liveness + model shape
//	GET /attr-score?node=v&attr=r    Eq. 21 affinity score
//	GET /link-score?src=u&dst=v      Eq. 22 edge plausibility
//	GET /top-attrs?node=v&k=10       strongest attributes for a node
//	GET /top-links?src=u&k=10        most plausible out-neighbors
//
// The service is read-only and the underlying embedding is immutable, so
// handlers are safe under arbitrary concurrency.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"pane/internal/core"
)

// Server wraps an embedding with HTTP handlers.
type Server struct {
	emb    *core.Embedding
	scorer *core.LinkScorer
	mux    *http.ServeMux
}

// New builds a Server for emb.
func New(emb *core.Embedding) *Server {
	s := &Server{emb: emb, scorer: core.NewLinkScorer(emb), mux: http.NewServeMux()}
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/attr-score", s.handleAttrScore)
	s.mux.HandleFunc("/link-score", s.handleLinkScore)
	s.mux.HandleFunc("/top-attrs", s.handleTopAttrs)
	s.mux.HandleFunc("/top-links", s.handleTopLinks)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) n() int { return s.emb.Xf.Rows }
func (s *Server) d() int { return s.emb.Y.Rows }

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"status": "ok",
		"nodes":  s.n(),
		"attrs":  s.d(),
		"k":      s.emb.K(),
	})
}

func (s *Server) handleAttrScore(w http.ResponseWriter, r *http.Request) {
	v, ok := s.intParam(w, r, "node", s.n())
	if !ok {
		return
	}
	a, ok := s.intParam(w, r, "attr", s.d())
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"node": v, "attr": a, "score": s.emb.AttrScore(v, a),
	})
}

func (s *Server) handleLinkScore(w http.ResponseWriter, r *http.Request) {
	u, ok := s.intParam(w, r, "src", s.n())
	if !ok {
		return
	}
	v, ok := s.intParam(w, r, "dst", s.n())
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"src": u, "dst": v,
		"score":      s.scorer.Directed(u, v),
		"undirected": s.scorer.Undirected(u, v),
	})
}

func (s *Server) handleTopAttrs(w http.ResponseWriter, r *http.Request) {
	v, ok := s.intParam(w, r, "node", s.n())
	if !ok {
		return
	}
	k := s.kParam(r, 10, s.d())
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"node": v, "results": s.emb.TopKAttrs(v, k, nil),
	})
}

func (s *Server) handleTopLinks(w http.ResponseWriter, r *http.Request) {
	u, ok := s.intParam(w, r, "src", s.n())
	if !ok {
		return
	}
	k := s.kParam(r, 10, s.n())
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"src": u, "results": s.scorer.TopKTargets(u, k, nil),
	})
}

// intParam parses a required integer query parameter in [0, limit).
func (s *Server) intParam(w http.ResponseWriter, r *http.Request, name string, limit int) (int, bool) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("missing parameter %q", name))
		return 0, false
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("parameter %q: %v", name, err))
		return 0, false
	}
	if v < 0 || v >= limit {
		writeError(w, http.StatusNotFound, fmt.Sprintf("parameter %q = %d out of range [0,%d)", name, v, limit))
		return 0, false
	}
	return v, true
}

func (s *Server) kParam(r *http.Request, def, max int) int {
	raw := r.URL.Query().Get("k")
	if raw == "" {
		return def
	}
	k, err := strconv.Atoi(raw)
	if err != nil || k < 1 {
		return def
	}
	if k > max {
		return max
	}
	return k
}

func writeJSON(w http.ResponseWriter, status int, payload interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(payload)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
