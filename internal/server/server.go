// Package server exposes a live PANE model engine as a small JSON-over-
// HTTP service — the deployment artifact a downstream user runs next to
// their application. Read endpoints:
//
//	GET /healthz                     liveness + model shape + version + index state
//	GET /metrics                     Prometheus text exposition (see internal/obs)
//	GET /attr-score?node=v&attr=r    Eq. 21 affinity score
//	GET /link-score?src=u&dst=v      Eq. 22 edge plausibility
//	GET /top-attrs?node=v&k=10       strongest attributes for a node
//	GET /top-links?src=u&k=10        most plausible out-neighbors
//
// The top-k routes additionally accept mode=exact|ivf|sq8|ivfsq (backend
// choice; exact is the default, sq8/ivfsq are the int8-quantized scans
// with exact re-rank) and nprobe=N (IVF/IVFSQ probe count override), and
// every top-k response reports which backend actually answered ("exact",
// "ivf", "sq8", "ivfsq", or "scan" — the brute-force path used while a
// new index version is still building; a mode whose backend was not
// built degrades toward "exact"). k must be a positive integer; values above the
// candidate count are clamped. With a sharded serving index, top-k
// queries fan out across the shards in parallel and /healthz reports the
// per-shard index generations ("shard_versions") next to the model
// version; a batch's top-k queries are dispatched shard-first (one pass
// per shard over the whole batch) to amortize fan-out overhead.
//
// /healthz additionally exposes the delta-update pipeline's state under
// "index": "incremental_refreshes" and "full_rebuilds" count shard build
// cycles by kind, "last_delta_rows" is the dirty-row count of the most
// recent update, and "refresh_threshold" the dirty fraction at or below
// which updates refresh incrementally instead of rebuilding. The
// model-side counterpart lives under "affinity": "affinity_incremental"
// and "affinity_full" count recurrence passes by kind,
// "affinity_frontier_rows" is the frontier size of the most recent
// incremental pass, "drift" the running column-sum drift estimate of the
// retained recurrence state, and "gram_corrections" how many attribute
// deltas were absorbed by the low-rank link-space correction instead of
// a full shard rebuild.
//
// Write and lifecycle endpoints:
//
//	POST /update/edges   {"edges":[{"src":0,"dst":4}, ...]}
//	POST /update/attrs   {"attrs":[{"node":0,"attr":2,"weight":1}, ...]}
//	POST /batch          {"queries":[{"op":"link-score","src":0,"dst":4}, ...]}
//	POST /snapshot       persist the current model to the configured path
//
// Replication endpoints (see internal/replica for the follower side):
//
//	GET /replicate?from=V[&max=N]   stream WAL records with version > V
//	GET /bundle                     stream the current model as a bundle
//
// /replicate answers with the wal frame encoding (binary), an
// X-Pane-Version header carrying the leader's live model version, 410
// Gone when the requested records were compacted away (the follower
// must fetch /bundle instead), and 503 when the engine has no
// write-ahead log attached. /bundle streams the same byte-deterministic
// v4 format POST /snapshot writes. A follower built with WithReadOnly
// serves every read endpoint but answers 403 on the mutating ones —
// writes belong to the leader, and read-your-writes clients route by
// the model version every response already carries.
//
// Each request resolves the engine's current model once, so every
// response is internally consistent even while updates land; reads never
// block on writes. Routes are method-scoped: the wrong verb on a known
// path gets 405 with an Allow header rather than a silently-served body.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"time"

	"pane/internal/engine"
	"pane/internal/graph"
	"pane/internal/obs"
	"pane/internal/store"
	"pane/internal/wal"
)

// VersionHeader carries the serving model version on replication
// responses; followers compute their record lag from it.
const VersionHeader = "X-Pane-Version"

// Server wraps an engine with HTTP handlers.
type Server struct {
	eng          *engine.Engine
	snapshotPath string
	mux          *http.ServeMux
	readOnly     bool

	// health holds extra named sections merged into /healthz (e.g. a
	// follower's replication status).
	health []healthSection

	// met instruments every route (see metrics.go); it records into the
	// engine's registry so /metrics serves both layers' series.
	met           *serverMetrics
	slowThreshold time.Duration
	slowLog       *log.Logger
}

type healthSection struct {
	name string
	fn   func() interface{}
}

// Option configures a Server.
type Option func(*Server)

// WithSnapshotPath sets the bundle file POST /snapshot writes. The path
// is fixed at construction — clients trigger snapshots but never choose
// where on the host they land. Without it, POST /snapshot returns 503.
func WithSnapshotPath(path string) Option {
	return func(s *Server) { s.snapshotPath = path }
}

// WithReadOnly makes the server a replica surface: the mutating routes
// (updates, snapshot) answer 403 instead of touching the engine. Reads,
// metrics, and the replication endpoints stay live.
func WithReadOnly() Option {
	return func(s *Server) { s.readOnly = true }
}

// WithHealthSection merges fn's value under the given key into every
// /healthz response. fn runs per request; keep it cheap.
func WithHealthSection(name string, fn func() interface{}) Option {
	return func(s *Server) { s.health = append(s.health, healthSection{name, fn}) }
}

// New builds a Server around eng.
func New(eng *engine.Engine, opts ...Option) *Server {
	s := &Server{eng: eng, mux: http.NewServeMux(), slowLog: log.Default()}
	s.met = newServerMetrics(eng.Metrics())
	for _, opt := range opts {
		opt(s)
	}
	routes := []struct {
		method, path string
		h            http.HandlerFunc
		write        bool
	}{
		{"GET", "/healthz", s.handleHealth, false},
		{"GET", "/metrics", eng.Metrics().Handler().ServeHTTP, false},
		{"GET", "/attr-score", s.handleAttrScore, false},
		{"GET", "/link-score", s.handleLinkScore, false},
		{"GET", "/top-attrs", s.handleTopAttrs, false},
		{"GET", "/top-links", s.handleTopLinks, false},
		{"GET", "/replicate", s.handleReplicate, false},
		{"GET", "/bundle", s.handleBundle, false},
		{"POST", "/update/edges", s.handleUpdateEdges, true},
		{"POST", "/update/attrs", s.handleUpdateAttrs, true},
		{"POST", "/batch", s.handleBatch, false},
		{"POST", "/snapshot", s.handleSnapshot, true},
	}
	for _, rt := range routes {
		h := rt.h
		if rt.write && s.readOnly {
			h = rejectReadOnly
		}
		s.mux.Handle(rt.method+" "+rt.path, s.instrument(rt.path, h))
	}
	return s
}

func rejectReadOnly(w http.ResponseWriter, r *http.Request) {
	writeError(w, http.StatusForbidden, "read-only replica: writes go to the leader")
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	// Resolve the index status BEFORE the model: the two reads are not
	// atomic together, and in this order any skew shows the index at or
	// behind the model — the legitimate "rebuild pending" state — rather
	// than impossibly ahead of it.
	idx := s.eng.IndexStatus()
	aff := s.eng.AffinityStatus()
	m := s.eng.Model()
	body := map[string]interface{}{
		"status":       "ok",
		"version":      m.Version,
		"nodes":        m.Nodes(),
		"attrs":        m.Attrs(),
		"k":            m.Emb.K(),
		"edges":        m.Graph.M(),
		"attr_entries": m.Graph.NNZAttr(),
		"index":        idx,
		"affinity":     aff,
		"read_only":    s.readOnly,
	}
	for _, sec := range s.health {
		body[sec.name] = sec.fn()
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleAttrScore(w http.ResponseWriter, r *http.Request) {
	m := s.eng.Model()
	v, ok := intParam(w, r, "node", m.Nodes())
	if !ok {
		return
	}
	a, ok := intParam(w, r, "attr", m.Attrs())
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"node": v, "attr": a, "score": m.Emb.AttrScore(v, a), "version": m.Version,
	})
}

func (s *Server) handleLinkScore(w http.ResponseWriter, r *http.Request) {
	m := s.eng.Model()
	u, ok := intParam(w, r, "src", m.Nodes())
	if !ok {
		return
	}
	v, ok := intParam(w, r, "dst", m.Nodes())
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"src": u, "dst": v,
		"score":      m.Scorer.Directed(u, v),
		"undirected": m.Scorer.Undirected(u, v),
		"version":    m.Version,
	})
}

func (s *Server) handleTopAttrs(w http.ResponseWriter, r *http.Request) {
	m := s.eng.Model()
	v, ok := intParam(w, r, "node", m.Nodes())
	if !ok {
		return
	}
	k, mode, nprobe, ok := topkParams(w, r)
	if !ok {
		return
	}
	t0 := time.Now()
	ans, err := s.eng.TopAttrs(v, k, mode, nprobe)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.recordTopK("/top-attrs", ans.Backend, time.Since(t0))
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"node": v, "results": ans.Results, "version": ans.Version, "backend": ans.Backend,
	})
}

func (s *Server) handleTopLinks(w http.ResponseWriter, r *http.Request) {
	m := s.eng.Model()
	u, ok := intParam(w, r, "src", m.Nodes())
	if !ok {
		return
	}
	k, mode, nprobe, ok := topkParams(w, r)
	if !ok {
		return
	}
	t0 := time.Now()
	ans, err := s.eng.TopLinks(u, k, mode, nprobe)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.recordTopK("/top-links", ans.Backend, time.Since(t0))
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"src": u, "results": ans.Results, "version": ans.Version, "backend": ans.Backend,
	})
}

type edgeUpdate struct {
	Src int `json:"src"`
	Dst int `json:"dst"`
}

func (s *Server) handleUpdateEdges(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Edges []edgeUpdate `json:"edges"`
	}
	if !decodeJSON(w, r, &body) {
		return
	}
	if len(body.Edges) == 0 {
		writeError(w, http.StatusBadRequest, "no edges in update")
		return
	}
	edges := make([]graph.Edge, len(body.Edges))
	for i, e := range body.Edges {
		edges[i] = graph.Edge{Src: e.Src, Dst: e.Dst}
	}
	m, err := s.eng.ApplyEdges(edges)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"version": m.Version, "edges": m.Graph.M(), "applied": len(edges),
	})
}

type attrUpdate struct {
	Node   int     `json:"node"`
	Attr   int     `json:"attr"`
	Weight float64 `json:"weight"`
}

func (s *Server) handleUpdateAttrs(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Attrs []attrUpdate `json:"attrs"`
	}
	if !decodeJSON(w, r, &body) {
		return
	}
	if len(body.Attrs) == 0 {
		writeError(w, http.StatusBadRequest, "no attrs in update")
		return
	}
	attrs := make([]graph.AttrEntry, len(body.Attrs))
	for i, a := range body.Attrs {
		attrs[i] = graph.AttrEntry{Node: a.Node, Attr: a.Attr, Weight: a.Weight}
	}
	m, err := s.eng.ApplyAttrs(attrs)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"version": m.Version, "attr_entries": m.Graph.NNZAttr(), "applied": len(attrs),
	})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Queries []engine.Query `json:"queries"`
	}
	if !decodeJSON(w, r, &body) {
		return
	}
	if len(body.Queries) == 0 {
		writeError(w, http.StatusBadRequest, "no queries in batch")
		return
	}
	t0 := time.Now()
	results, version := s.eng.Execute(body.Queries)
	d := time.Since(t0)
	// Per-backend accounting for the batch's top-k members: the whole
	// batch shares one wall time, so each backend's histogram gets the
	// batch duration once (counts stay per-query via the counter).
	seen := map[string]int{}
	for _, res := range results {
		if res.Backend != "" && res.Err == "" {
			seen[res.Backend]++
		}
	}
	for backend, n := range seen {
		s.met.reg.Counter("pane_topk_requests_total", topkHelp,
			obs.L("route", "/batch"), obs.L("backend", backend)).Add(uint64(n))
		s.met.reg.Histogram("pane_topk_duration_seconds", topkDurHelp,
			obs.L("route", "/batch"), obs.L("backend", backend)).Observe(d)
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"version": version, "results": results,
	})
}

// defaultReplicateMax bounds one /replicate response; followers page
// through larger backlogs with repeated requests.
const defaultReplicateMax = 4096

func (s *Server) handleReplicate(w http.ResponseWriter, r *http.Request) {
	l := s.eng.WAL()
	if l == nil {
		writeError(w, http.StatusServiceUnavailable, "no write-ahead log attached")
		return
	}
	q := r.URL.Query()
	raw := q.Get("from")
	if raw == "" {
		writeError(w, http.StatusBadRequest, "missing parameter \"from\"")
		return
	}
	from, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("parameter \"from\": %v", err))
		return
	}
	max := defaultReplicateMax
	if raw := q.Get("max"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("parameter \"max\" must be a positive integer, got %q", raw))
			return
		}
		if v < max {
			max = v
		}
	}
	recs, err := l.ReadFrom(from, max)
	// The version header is resolved after the read so a follower's lag
	// estimate never counts records it was just handed.
	w.Header().Set(VersionHeader, strconv.FormatUint(s.eng.Version(), 10))
	if err != nil {
		if errors.Is(err, wal.ErrCompacted) {
			writeError(w, http.StatusGone, "records compacted away; fetch /bundle")
			return
		}
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	var frame []byte
	for _, rec := range recs {
		frame, err = wal.EncodeFrame(frame[:0], rec)
		if err != nil {
			return // mid-stream: the torn tail tells the follower to retry
		}
		if _, err := w.Write(frame); err != nil {
			return
		}
	}
}

func (s *Server) handleBundle(w http.ResponseWriter, r *http.Request) {
	b := s.eng.CurrentBundle()
	w.Header().Set(VersionHeader, strconv.FormatUint(b.ModelVersion, 10))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_ = store.WriteBundle(w, b) // mid-stream failure surfaces as a follower decode error
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.snapshotPath == "" {
		writeError(w, http.StatusServiceUnavailable, "no snapshot path configured")
		return
	}
	m, err := s.eng.Snapshot(s.snapshotPath)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"version": m.Version, "path": s.snapshotPath,
	})
}

// decodeJSON parses the request body into dst, rejecting oversized bodies
// and trailing garbage. Returns false after writing the error response.
func decodeJSON(w http.ResponseWriter, r *http.Request, dst interface{}) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	if err := dec.Decode(dst); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid JSON body: %v", err))
		return false
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, "trailing data after JSON body")
		return false
	}
	return true
}

// intParam parses a required integer query parameter in [0, limit).
func intParam(w http.ResponseWriter, r *http.Request, name string, limit int) (int, bool) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("missing parameter %q", name))
		return 0, false
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("parameter %q: %v", name, err))
		return 0, false
	}
	if v < 0 || v >= limit {
		writeError(w, http.StatusNotFound, fmt.Sprintf("parameter %q = %d out of range [0,%d)", name, v, limit))
		return 0, false
	}
	return v, true
}

// topkParams parses the shared top-k query parameters. k defaults to 10
// when absent but an explicit k < 1 (or non-integer) is a 400 — never a
// silent rewrite; values above the candidate count are clamped downstream.
// mode must be "exact", "ivf", "sq8", or "ivfsq" when present; nprobe
// must be a positive integer when present (it is only consulted on
// IVF/IVFSQ searches). Returns ok=false after writing the error response.
func topkParams(w http.ResponseWriter, r *http.Request) (k int, mode string, nprobe int, ok bool) {
	q := r.URL.Query()
	k = engine.DefaultK
	if raw := q.Get("k"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("parameter \"k\" must be a positive integer, got %q", raw))
			return 0, "", 0, false
		}
		k = v
	}
	mode = q.Get("mode")
	switch mode {
	case "", engine.ModeExact, engine.ModeIVF, engine.ModeSQ8, engine.ModeIVFSQ:
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("parameter \"mode\" must be %q, %q, %q, or %q, got %q",
				engine.ModeExact, engine.ModeIVF, engine.ModeSQ8, engine.ModeIVFSQ, mode))
		return 0, "", 0, false
	}
	if raw := q.Get("nprobe"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("parameter \"nprobe\" must be a positive integer, got %q", raw))
			return 0, "", 0, false
		}
		nprobe = v
	}
	return k, mode, nprobe, true
}

func writeJSON(w http.ResponseWriter, status int, payload interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(payload)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
