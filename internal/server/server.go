// Package server exposes a live PANE model engine as a small JSON-over-
// HTTP service — the deployment artifact a downstream user runs next to
// their application. Read endpoints:
//
//	GET /healthz                     liveness + model shape + version + index state
//	GET /metrics                     Prometheus text exposition (see internal/obs)
//	GET /attr-score?node=v&attr=r    Eq. 21 affinity score
//	GET /link-score?src=u&dst=v      Eq. 22 edge plausibility
//	GET /top-attrs?node=v&k=10       strongest attributes for a node
//	GET /top-links?src=u&k=10        most plausible out-neighbors
//
// The top-k routes additionally accept mode=exact|ivf|sq8|ivfsq|fp16|
// ivffp16 (backend choice; exact is the default, sq8/ivfsq are the
// int8-quantized scans with exact re-rank, fp16/ivffp16 the binary16
// scans served without re-rank) and nprobe=N (inverted-file probe count
// override), and every top-k response reports which backend actually
// answered ("exact", "ivf", "sq8", "ivfsq", "fp16", "ivffp16", or "scan"
// — the brute-force path used while a new index version is still
// building; a mode whose backend was not built degrades toward "exact"). k must be a positive integer; values above the
// candidate count are clamped. With a sharded serving index, top-k
// queries fan out across the shards in parallel and /healthz reports the
// per-shard index generations ("shard_versions") next to the model
// version; a batch's top-k queries are dispatched shard-first (one pass
// per shard over the whole batch) to amortize fan-out overhead.
//
// /healthz additionally exposes the delta-update pipeline's state under
// "index": "incremental_refreshes" and "full_rebuilds" count shard build
// cycles by kind, "last_delta_rows" is the dirty-row count of the most
// recent update, and "refresh_threshold" the dirty fraction at or below
// which updates refresh incrementally instead of rebuilding. The
// model-side counterpart lives under "affinity": "affinity_incremental"
// and "affinity_full" count recurrence passes by kind,
// "affinity_frontier_rows" is the frontier size of the most recent
// incremental pass, "drift" the running column-sum drift estimate of the
// retained recurrence state, and "gram_corrections" how many attribute
// deltas were absorbed by the low-rank link-space correction instead of
// a full shard rebuild. "kernels" reports the instruction set each
// compute kernel dispatches to on this build and host ("generic",
// "avx2", or "neon"), mirrored by the pane_kernel_dispatch info gauge on
// /metrics.
//
// Probe endpoints split liveness from readiness:
//
//	GET /livez    200 while the process serves HTTP — restart signal only
//	GET /readyz   200 when every registered readiness check passes, 503
//	              (naming the failing checks) otherwise — rotation signal
//
// Write and lifecycle endpoints:
//
//	POST /update/edges   {"edges":[{"src":0,"dst":4}, ...]}
//	POST /update/attrs   {"attrs":[{"node":0,"attr":2,"weight":1}, ...]}
//	POST /batch          {"queries":[{"op":"link-score","src":0,"dst":4}, ...]}
//	POST /snapshot       persist the current model to the configured path
//	POST /promote        follower-to-leader failover (see WithPromotion)
//
// Replication endpoints (see internal/replica for the follower side):
//
//	GET /replicate?from=V[&max=N]   stream WAL records with version > V
//	GET /bundle                     stream the current model as a bundle
//
// /replicate answers with the wal frame encoding (binary), an
// X-Pane-Version header carrying the leader's live model version, 410
// Gone when the requested records were compacted away (the follower
// must fetch /bundle instead), and 503 when the engine has no
// write-ahead log attached. /bundle streams the same byte-deterministic
// v4 format POST /snapshot writes. A follower built with WithReadOnly
// serves every read endpoint but answers 403 on the mutating ones —
// writes belong to the leader, and read-your-writes clients route by
// the model version every response already carries.
//
// Both replication endpoints speak fencing epochs (X-Pane-Epoch, see
// EpochHeader): responses state the serving engine's epoch, requests
// carry the follower's highest known one, and a leader asked from a
// newer epoch fences itself and answers 409 — a deposed leader never
// feeds its stale stream to followers. Direct writes on a deposed
// engine also answer 409. Reads keep serving throughout (degraded
// mode), with X-Pane-Staleness labeling follower freshness when the
// server has a staleness signal (WithStaleness).
//
// Each request resolves the engine's current model once, so every
// response is internally consistent even while updates land; reads never
// block on writes. Routes are method-scoped: the wrong verb on a known
// path gets 405 with an Allow header rather than a silently-served body.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"pane/internal/engine"
	"pane/internal/graph"
	"pane/internal/obs"
	"pane/internal/store"
	"pane/internal/wal"
)

// VersionHeader carries the serving model version on replication
// responses; followers compute their record lag from it.
const VersionHeader = "X-Pane-Version"

// EpochHeader carries fencing epochs both ways across the replication
// endpoints. Responses always state the serving engine's epoch, so a
// follower can reject a stream from a lineage older than one it has
// already seen. Requests carry the follower's highest known epoch: a
// leader receiving an epoch above its own has been deposed by a
// failover it did not witness — it fences itself and answers 409.
const EpochHeader = "X-Pane-Epoch"

// StalenessHeader advertises a follower's replication freshness
// ("fresh" or "stale") on every response when the server was built
// WithStaleness. A stale follower keeps serving reads — degraded and
// labeled beats down — and clients that cannot tolerate lag route on
// this header.
const StalenessHeader = "X-Pane-Staleness"

// Server wraps an engine with HTTP handlers.
type Server struct {
	eng          *engine.Engine
	snapshotPath string
	mux          *http.ServeMux

	// readOnly is dynamic: a follower starts true and flips false when
	// POST /promote succeeds, with no listener restart.
	readOnly atomic.Bool

	// promote is the follower-to-leader transition POST /promote runs
	// (nil: this server cannot be promoted and the route answers 503).
	// It returns the new fencing epoch.
	promote func() (uint32, error)

	// stale reports replication staleness for StalenessHeader (nil: no
	// header; leaders have no replication lag to advertise).
	stale func() bool

	// ready holds the readiness checks behind GET /readyz; /livez never
	// consults them — a live-but-unready process must not be restarted,
	// just taken out of rotation.
	ready []readinessCheck

	// health holds extra named sections merged into /healthz (e.g. a
	// follower's replication status).
	health []healthSection

	// met instruments every route (see metrics.go); it records into the
	// engine's registry so /metrics serves both layers' series.
	met           *serverMetrics
	slowThreshold time.Duration
	slowLog       *log.Logger
}

type healthSection struct {
	name string
	fn   func() interface{}
}

type readinessCheck struct {
	name string
	fn   func() error
}

// Option configures a Server.
type Option func(*Server)

// WithSnapshotPath sets the bundle file POST /snapshot writes. The path
// is fixed at construction — clients trigger snapshots but never choose
// where on the host they land. Without it, POST /snapshot returns 503.
func WithSnapshotPath(path string) Option {
	return func(s *Server) { s.snapshotPath = path }
}

// WithReadOnly makes the server a replica surface: the mutating routes
// (updates, snapshot) answer 403 instead of touching the engine. Reads,
// metrics, and the replication endpoints stay live. The mode is dynamic
// — a successful POST /promote (see WithPromotion) lifts it.
func WithReadOnly() Option {
	return func(s *Server) { s.readOnly.Store(true) }
}

// WithPromotion arms POST /promote with the follower-to-leader
// transition: fn must stop tailing the old leader, attach a write-ahead
// log, and raise the engine's fencing epoch, returning the epoch it
// promoted to. On success the server drops read-only mode and serves
// writes. Without this option the route answers 503.
func WithPromotion(fn func() (uint32, error)) Option {
	return func(s *Server) { s.promote = fn }
}

// WithStaleness stamps StalenessHeader on every response from fn's
// verdict. Follower deployments wire it to the replica's staleness
// signal (consecutive failed sync rounds against the leader).
func WithStaleness(fn func() bool) Option {
	return func(s *Server) { s.stale = fn }
}

// WithReadiness adds a named check to GET /readyz. Any check returning
// an error makes the server not-ready (503, with the failing checks
// named); /livez is unaffected.
func WithReadiness(name string, fn func() error) Option {
	return func(s *Server) { s.ready = append(s.ready, readinessCheck{name, fn}) }
}

// WithHealthSection merges fn's value under the given key into every
// /healthz response. fn runs per request; keep it cheap.
func WithHealthSection(name string, fn func() interface{}) Option {
	return func(s *Server) { s.health = append(s.health, healthSection{name, fn}) }
}

// New builds a Server around eng.
func New(eng *engine.Engine, opts ...Option) *Server {
	s := &Server{eng: eng, mux: http.NewServeMux(), slowLog: log.Default()}
	s.met = newServerMetrics(eng.Metrics())
	for _, opt := range opts {
		opt(s)
	}
	routes := []struct {
		method, path string
		h            http.HandlerFunc
		write        bool
	}{
		{"GET", "/healthz", s.handleHealth, false},
		{"GET", "/livez", s.handleLivez, false},
		{"GET", "/readyz", s.handleReadyz, false},
		{"GET", "/metrics", eng.Metrics().Handler().ServeHTTP, false},
		{"GET", "/attr-score", s.handleAttrScore, false},
		{"GET", "/link-score", s.handleLinkScore, false},
		{"GET", "/top-attrs", s.handleTopAttrs, false},
		{"GET", "/top-links", s.handleTopLinks, false},
		{"GET", "/replicate", s.handleReplicate, false},
		{"GET", "/bundle", s.handleBundle, false},
		{"POST", "/update/edges", s.handleUpdateEdges, true},
		{"POST", "/update/attrs", s.handleUpdateAttrs, true},
		{"POST", "/batch", s.handleBatch, false},
		{"POST", "/snapshot", s.handleSnapshot, true},
		// /promote is deliberately NOT a write route: promotion happens
		// exactly on a read-only follower.
		{"POST", "/promote", s.handlePromote, false},
	}
	for _, rt := range routes {
		h := rt.h
		if rt.write {
			h = s.guardWrite(h)
		}
		s.mux.Handle(rt.method+" "+rt.path, s.instrument(rt.path, s.withStaleness(h)))
	}
	return s
}

// guardWrite rejects mutating requests while the server is read-only.
// The check runs per request (not at route construction) so promotion
// can lift read-only mode on a live listener.
func (s *Server) guardWrite(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.readOnly.Load() {
			writeError(w, http.StatusForbidden, "read-only replica: writes go to the leader")
			return
		}
		h(w, r)
	}
}

// withStaleness stamps StalenessHeader when the server has a staleness
// signal; a no-op wrapper otherwise.
func (s *Server) withStaleness(h http.HandlerFunc) http.HandlerFunc {
	if s.stale == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		v := "fresh"
		if s.stale() {
			v = "stale"
		}
		w.Header().Set(StalenessHeader, v)
		h(w, r)
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	// Resolve the index status BEFORE the model: the two reads are not
	// atomic together, and in this order any skew shows the index at or
	// behind the model — the legitimate "rebuild pending" state — rather
	// than impossibly ahead of it.
	idx := s.eng.IndexStatus()
	aff := s.eng.AffinityStatus()
	m := s.eng.Model()
	body := map[string]interface{}{
		"status":       "ok",
		"version":      m.Version,
		"nodes":        m.Nodes(),
		"attrs":        m.Attrs(),
		"k":            m.Emb.K(),
		"edges":        m.Graph.M(),
		"attr_entries": m.Graph.NNZAttr(),
		"index":        idx,
		"affinity":     aff,
		"read_only":    s.readOnly.Load(),
		"epoch":        s.eng.Epoch(),
		"deposed":      s.eng.Deposed(),
		"kernels":      engine.KernelDispatch(),
	}
	for _, sec := range s.health {
		body[sec.name] = sec.fn()
	}
	writeJSON(w, http.StatusOK, body)
}

// handleLivez is pure liveness: the process is up and serving HTTP.
// Nothing about model freshness or replication belongs here — a stale
// follower restarted by an over-eager liveness probe loses its warm
// model for no gain.
func (s *Server) handleLivez(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz runs the registered readiness checks; any failure means
// "take me out of rotation" (503), never "restart me".
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	failed := map[string]string{}
	for _, c := range s.ready {
		if err := c.fn(); err != nil {
			failed[c.name] = err.Error()
		}
	}
	if len(failed) > 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]interface{}{
			"status": "not ready", "failed": failed,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handlePromote runs the follower-to-leader transition. On success the
// server leaves read-only mode atomically with the response — the next
// write request on this listener lands on the promoted engine.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	if s.promote == nil {
		writeError(w, http.StatusServiceUnavailable, "this server cannot be promoted (no promotion configured)")
		return
	}
	epoch, err := s.promote()
	if err != nil {
		writeError(w, http.StatusConflict, fmt.Sprintf("promotion failed: %v", err))
		return
	}
	s.readOnly.Store(false)
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"status": "promoted", "epoch": epoch, "version": s.eng.Version(),
	})
}

func (s *Server) handleAttrScore(w http.ResponseWriter, r *http.Request) {
	m := s.eng.Model()
	v, ok := intParam(w, r, "node", m.Nodes())
	if !ok {
		return
	}
	a, ok := intParam(w, r, "attr", m.Attrs())
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"node": v, "attr": a, "score": m.Emb.AttrScore(v, a), "version": m.Version,
	})
}

func (s *Server) handleLinkScore(w http.ResponseWriter, r *http.Request) {
	m := s.eng.Model()
	u, ok := intParam(w, r, "src", m.Nodes())
	if !ok {
		return
	}
	v, ok := intParam(w, r, "dst", m.Nodes())
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"src": u, "dst": v,
		"score":      m.Scorer.Directed(u, v),
		"undirected": m.Scorer.Undirected(u, v),
		"version":    m.Version,
	})
}

func (s *Server) handleTopAttrs(w http.ResponseWriter, r *http.Request) {
	m := s.eng.Model()
	v, ok := intParam(w, r, "node", m.Nodes())
	if !ok {
		return
	}
	k, mode, nprobe, ok := topkParams(w, r)
	if !ok {
		return
	}
	t0 := time.Now()
	ans, err := s.eng.TopAttrs(v, k, mode, nprobe)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.recordTopK("/top-attrs", ans.Backend, time.Since(t0))
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"node": v, "results": ans.Results, "version": ans.Version, "backend": ans.Backend,
	})
}

func (s *Server) handleTopLinks(w http.ResponseWriter, r *http.Request) {
	m := s.eng.Model()
	u, ok := intParam(w, r, "src", m.Nodes())
	if !ok {
		return
	}
	k, mode, nprobe, ok := topkParams(w, r)
	if !ok {
		return
	}
	t0 := time.Now()
	ans, err := s.eng.TopLinks(u, k, mode, nprobe)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.recordTopK("/top-links", ans.Backend, time.Since(t0))
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"src": u, "results": ans.Results, "version": ans.Version, "backend": ans.Backend,
	})
}

type edgeUpdate struct {
	Src int `json:"src"`
	Dst int `json:"dst"`
}

func (s *Server) handleUpdateEdges(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Edges []edgeUpdate `json:"edges"`
	}
	if !decodeJSON(w, r, &body) {
		return
	}
	if len(body.Edges) == 0 {
		writeError(w, http.StatusBadRequest, "no edges in update")
		return
	}
	edges := make([]graph.Edge, len(body.Edges))
	for i, e := range body.Edges {
		edges[i] = graph.Edge{Src: e.Src, Dst: e.Dst}
	}
	m, err := s.eng.ApplyEdges(edges)
	if err != nil {
		writeApplyError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"version": m.Version, "edges": m.Graph.M(), "applied": len(edges),
	})
}

type attrUpdate struct {
	Node   int     `json:"node"`
	Attr   int     `json:"attr"`
	Weight float64 `json:"weight"`
}

func (s *Server) handleUpdateAttrs(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Attrs []attrUpdate `json:"attrs"`
	}
	if !decodeJSON(w, r, &body) {
		return
	}
	if len(body.Attrs) == 0 {
		writeError(w, http.StatusBadRequest, "no attrs in update")
		return
	}
	attrs := make([]graph.AttrEntry, len(body.Attrs))
	for i, a := range body.Attrs {
		attrs[i] = graph.AttrEntry{Node: a.Node, Attr: a.Attr, Weight: a.Weight}
	}
	m, err := s.eng.ApplyAttrs(attrs)
	if err != nil {
		writeApplyError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"version": m.Version, "attr_entries": m.Graph.NNZAttr(), "applied": len(attrs),
	})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Queries []engine.Query `json:"queries"`
	}
	if !decodeJSON(w, r, &body) {
		return
	}
	if len(body.Queries) == 0 {
		writeError(w, http.StatusBadRequest, "no queries in batch")
		return
	}
	t0 := time.Now()
	results, version := s.eng.Execute(body.Queries)
	d := time.Since(t0)
	// Per-backend accounting for the batch's top-k members: the whole
	// batch shares one wall time, so each backend's histogram gets the
	// batch duration once (counts stay per-query via the counter).
	seen := map[string]int{}
	for _, res := range results {
		if res.Backend != "" && res.Err == "" {
			seen[res.Backend]++
		}
	}
	for backend, n := range seen {
		s.met.reg.Counter("pane_topk_requests_total", topkHelp,
			obs.L("route", "/batch"), obs.L("backend", backend)).Add(uint64(n))
		s.met.reg.Histogram("pane_topk_duration_seconds", topkDurHelp,
			obs.L("route", "/batch"), obs.L("backend", backend)).Observe(d)
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"version": version, "results": results,
	})
}

// defaultReplicateMax bounds one /replicate response; followers page
// through larger backlogs with repeated requests.
const defaultReplicateMax = 4096

// fenceFromRequest applies the caller's EpochHeader (its highest known
// fencing epoch) to the engine, then refuses to serve replication from
// a deposed lineage: a leader that lost a failover must not keep
// feeding its stale stream to followers — that is exactly the
// split-brain propagation fencing exists to stop. Returns false after
// writing the 409 (or 400 on a malformed header).
func (s *Server) fenceFromRequest(w http.ResponseWriter, r *http.Request) bool {
	if raw := r.Header.Get(EpochHeader); raw != "" {
		ep, err := strconv.ParseUint(raw, 10, 32)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("header %s: %v", EpochHeader, err))
			return false
		}
		s.eng.Fence(uint32(ep))
	}
	if s.eng.Deposed() {
		// Advertise the superseding epoch, not our own stale one, so the
		// caller learns which lineage won.
		w.Header().Set(EpochHeader, strconv.FormatUint(uint64(s.eng.ObservedEpoch()), 10))
		writeError(w, http.StatusConflict,
			"deposed: a newer fencing epoch exists; re-point to the promoted leader")
		return false
	}
	return true
}

func (s *Server) handleReplicate(w http.ResponseWriter, r *http.Request) {
	if !s.fenceFromRequest(w, r) {
		return
	}
	l := s.eng.WAL()
	if l == nil {
		writeError(w, http.StatusServiceUnavailable, "no write-ahead log attached")
		return
	}
	q := r.URL.Query()
	raw := q.Get("from")
	if raw == "" {
		writeError(w, http.StatusBadRequest, "missing parameter \"from\"")
		return
	}
	from, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("parameter \"from\": %v", err))
		return
	}
	max := defaultReplicateMax
	if raw := q.Get("max"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("parameter \"max\" must be a positive integer, got %q", raw))
			return
		}
		if v < max {
			max = v
		}
	}
	recs, err := l.ReadFrom(from, max)
	// The version header is resolved after the read so a follower's lag
	// estimate never counts records it was just handed.
	w.Header().Set(VersionHeader, strconv.FormatUint(s.eng.Version(), 10))
	w.Header().Set(EpochHeader, strconv.FormatUint(uint64(s.eng.Epoch()), 10))
	if err != nil {
		if errors.Is(err, wal.ErrCompacted) {
			writeError(w, http.StatusGone, "records compacted away; fetch /bundle")
			return
		}
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	var frame []byte
	for _, rec := range recs {
		frame, err = wal.EncodeFrame(frame[:0], rec)
		if err != nil {
			return // mid-stream: the torn tail tells the follower to retry
		}
		if _, err := w.Write(frame); err != nil {
			return
		}
	}
}

func (s *Server) handleBundle(w http.ResponseWriter, r *http.Request) {
	if !s.fenceFromRequest(w, r) {
		return
	}
	b := s.eng.CurrentBundle()
	w.Header().Set(VersionHeader, strconv.FormatUint(b.ModelVersion, 10))
	w.Header().Set(EpochHeader, strconv.FormatUint(uint64(s.eng.Epoch()), 10))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_ = store.WriteBundle(w, b) // mid-stream failure surfaces as a follower decode error
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.snapshotPath == "" {
		writeError(w, http.StatusServiceUnavailable, "no snapshot path configured")
		return
	}
	m, err := s.eng.Snapshot(s.snapshotPath)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"version": m.Version, "path": s.snapshotPath,
	})
}

// decodeJSON parses the request body into dst, rejecting oversized bodies
// and trailing garbage. Returns false after writing the error response.
func decodeJSON(w http.ResponseWriter, r *http.Request, dst interface{}) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	if err := dec.Decode(dst); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid JSON body: %v", err))
		return false
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, "trailing data after JSON body")
		return false
	}
	return true
}

// intParam parses a required integer query parameter in [0, limit).
func intParam(w http.ResponseWriter, r *http.Request, name string, limit int) (int, bool) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("missing parameter %q", name))
		return 0, false
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("parameter %q: %v", name, err))
		return 0, false
	}
	if v < 0 || v >= limit {
		writeError(w, http.StatusNotFound, fmt.Sprintf("parameter %q = %d out of range [0,%d)", name, v, limit))
		return 0, false
	}
	return v, true
}

// topkParams parses the shared top-k query parameters. k defaults to 10
// when absent but an explicit k < 1 (or non-integer) is a 400 — never a
// silent rewrite; values above the candidate count are clamped downstream.
// mode must be "exact", "ivf", "sq8", "ivfsq", "fp16", or "ivffp16" when
// present; nprobe must be a positive integer when present (it is only
// consulted on inverted-file searches). Returns ok=false after writing
// the error response.
func topkParams(w http.ResponseWriter, r *http.Request) (k int, mode string, nprobe int, ok bool) {
	q := r.URL.Query()
	k = engine.DefaultK
	if raw := q.Get("k"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("parameter \"k\" must be a positive integer, got %q", raw))
			return 0, "", 0, false
		}
		k = v
	}
	mode = q.Get("mode")
	switch mode {
	case "", engine.ModeExact, engine.ModeIVF, engine.ModeSQ8, engine.ModeIVFSQ,
		engine.ModeFP16, engine.ModeIVFFP16:
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("parameter \"mode\" must be %q, %q, %q, %q, %q, or %q, got %q",
				engine.ModeExact, engine.ModeIVF, engine.ModeSQ8, engine.ModeIVFSQ,
				engine.ModeFP16, engine.ModeIVFFP16, mode))
		return 0, "", 0, false
	}
	if raw := q.Get("nprobe"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("parameter \"nprobe\" must be a positive integer, got %q", raw))
			return 0, "", 0, false
		}
		nprobe = v
	}
	return k, mode, nprobe, true
}

func writeJSON(w http.ResponseWriter, status int, payload interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(payload)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// writeApplyError maps an engine write failure to a status: a fenced
// write is 409 (this replica was deposed; the client must re-resolve
// the leader), anything else is the caller's fault (400).
func writeApplyError(w http.ResponseWriter, err error) {
	if errors.Is(err, engine.ErrFenced) {
		writeError(w, http.StatusConflict, err.Error())
		return
	}
	writeError(w, http.StatusBadRequest, err.Error())
}
