package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"pane/internal/baselines"
	"pane/internal/core"
	"pane/internal/dataset"
	"pane/internal/eval"
	"pane/internal/graph"
)

// ---------------------------------------------------------------------------
// Figure 3: running time per method and dataset.

// TimingRow records one (dataset, method) wall-clock measurement.
type TimingRow struct {
	Dataset string
	Method  string
	Elapsed time.Duration
	Skipped bool
}

// RunFig3 times every method on every dataset. skipSlowAbove mirrors the
// paper's one-week cutoff for the non-scalable baselines.
func RunFig3(names []string, opt Options, skipSlowAbove int) ([]TimingRow, error) {
	var out []TimingRow
	for _, name := range names {
		g, _, err := dataset.Load(name)
		if err != nil {
			return nil, err
		}
		big := g.N > skipSlowAbove
		timeIt := func(method string, skip bool, fn func()) {
			if skip {
				out = append(out, TimingRow{Dataset: name, Method: method, Skipped: true})
				return
			}
			start := time.Now()
			fn()
			out = append(out, TimingRow{Dataset: name, Method: method, Elapsed: time.Since(start)})
		}
		timeIt("PANE(parallel)", false, func() {
			if _, err := core.ParallelPANE(g, opt.paneConfig()); err != nil {
				panic(err)
			}
		})
		timeIt("PANE(single)", false, func() {
			if _, err := core.PANE(g, opt.paneConfig()); err != nil {
				panic(err)
			}
		})
		timeIt("NRP", false, func() {
			cfg := baselines.DefaultNRPConfig()
			cfg.K = opt.K
			cfg.NB = 1
			baselines.NRP(g, cfg)
		})
		timeIt("CAN(lite)", big, func() {
			cfg := baselines.DefaultCANLiteConfig()
			cfg.K = opt.K
			baselines.CANLite(g, cfg)
		})
		timeIt("BANE", big, func() {
			cfg := baselines.DefaultBANEConfig()
			cfg.K = opt.K
			baselines.BANE(g, cfg)
		})
		timeIt("LQANR", big, func() {
			cfg := baselines.DefaultLQANRConfig()
			cfg.K = opt.K
			baselines.LQANR(g, cfg)
		})
		timeIt("TADW", big || g.N > 5000, func() {
			cfg := baselines.DefaultTADWConfig()
			cfg.K = opt.K
			baselines.TADW(g, cfg)
		})
		timeIt("AANE", big, func() {
			cfg := baselines.DefaultAANEConfig()
			cfg.K = opt.K
			baselines.AANE(g, cfg)
		})
		timeIt("DeepWalkMF", big || g.N > 5000, func() {
			cfg := baselines.DefaultDeepWalkMFConfig()
			cfg.K = opt.K
			baselines.DeepWalkMF(g, cfg)
		})
	}
	return out, nil
}

// PrintFig3 renders the timing table.
func PrintFig3(w io.Writer, rows []TimingRow) {
	fmt.Fprintln(w, "Figure 3: running time (seconds)")
	for _, r := range rows {
		if r.Skipped {
			fmt.Fprintf(w, "%-12s %-14s %10s\n", r.Dataset, r.Method, "-")
		} else {
			fmt.Fprintf(w, "%-12s %-14s %10.3f\n", r.Dataset, r.Method, r.Elapsed.Seconds())
		}
	}
}

// ---------------------------------------------------------------------------
// Figure 4a: speedup vs number of threads.

// SpeedupPoint is parallel PANE's speedup over 1 thread at nb threads.
type SpeedupPoint struct {
	Dataset string
	NB      int
	Elapsed time.Duration
	Speedup float64
}

// RunFig4a measures wall-clock speedups for nb ∈ threads.
func RunFig4a(names []string, threads []int, opt Options) ([]SpeedupPoint, error) {
	var out []SpeedupPoint
	for _, name := range names {
		g, _, err := dataset.Load(name)
		if err != nil {
			return nil, err
		}
		var base time.Duration
		for _, nb := range threads {
			cfg := opt.paneConfig()
			cfg.Threads = nb
			start := time.Now()
			if _, err := core.ParallelPANE(g, cfg); err != nil {
				return nil, err
			}
			elapsed := time.Since(start)
			if nb == threads[0] {
				base = elapsed
			}
			out = append(out, SpeedupPoint{
				Dataset: name, NB: nb, Elapsed: elapsed,
				Speedup: base.Seconds() / elapsed.Seconds(),
			})
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Figure 4b/4c: time vs k and vs ε.

// ParamTiming is the wall-clock at one parameter value.
type ParamTiming struct {
	Dataset string
	Param   float64
	Elapsed time.Duration
}

// RunFig4b sweeps the space budget k.
func RunFig4b(names []string, ks []int, opt Options) ([]ParamTiming, error) {
	var out []ParamTiming
	for _, name := range names {
		g, _, err := dataset.Load(name)
		if err != nil {
			return nil, err
		}
		for _, k := range ks {
			cfg := opt.paneConfig()
			cfg.K = k
			start := time.Now()
			if _, err := core.ParallelPANE(g, cfg); err != nil {
				return nil, err
			}
			out = append(out, ParamTiming{Dataset: name, Param: float64(k), Elapsed: time.Since(start)})
		}
	}
	return out, nil
}

// RunFig4c sweeps the error threshold ε.
func RunFig4c(names []string, epss []float64, opt Options) ([]ParamTiming, error) {
	var out []ParamTiming
	for _, name := range names {
		g, _, err := dataset.Load(name)
		if err != nil {
			return nil, err
		}
		for _, eps := range epss {
			cfg := opt.paneConfig()
			cfg.Eps = eps
			start := time.Now()
			if _, err := core.ParallelPANE(g, cfg); err != nil {
				return nil, err
			}
			out = append(out, ParamTiming{Dataset: name, Param: eps, Elapsed: time.Since(start)})
		}
	}
	return out, nil
}

// PrintParamTimings renders a parameter/time series.
func PrintParamTimings(w io.Writer, title, param string, rows []ParamTiming) {
	fmt.Fprintln(w, title)
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %s=%-8g %10.3fs\n", r.Dataset, param, r.Param, r.Elapsed.Seconds())
	}
}

// PrintSpeedups renders Figure 4a.
func PrintSpeedups(w io.Writer, rows []SpeedupPoint) {
	fmt.Fprintln(w, "Figure 4a: parallel speedup vs nb")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s nb=%-3d %10.3fs  speedup=%.2fx\n", r.Dataset, r.NB, r.Elapsed.Seconds(), r.Speedup)
	}
}

// ---------------------------------------------------------------------------
// Figures 5 & 6: quality vs k, nb, ε, α.

// QualityPoint is AUC at one parameter setting for one dataset and task.
type QualityPoint struct {
	Dataset string
	Param   string
	Value   float64
	AUC     float64
}

// RunFig56 sweeps one parameter for both tasks (attribute inference =
// Figure 5, link prediction = Figure 6). param ∈ {"k","nb","eps","alpha"}.
func RunFig56(names []string, param string, values []float64, opt Options) (attr, link []QualityPoint, err error) {
	for _, name := range names {
		g, info, err := dataset.Load(name)
		if err != nil {
			return nil, nil, err
		}
		rng := rand.New(rand.NewSource(opt.Seed))
		attrSplit := eval.SplitAttributes(g, 0.8, rng)
		linkSplit := eval.SplitLinks(g, 0.3, rand.New(rand.NewSource(opt.Seed)))
		for _, v := range values {
			cfg := opt.paneConfig()
			switch param {
			case "k":
				cfg.K = int(v)
			case "nb":
				cfg.Threads = int(v)
			case "eps":
				cfg.Eps = v
			case "alpha":
				cfg.Alpha = v
			default:
				return nil, nil, fmt.Errorf("experiments: unknown parameter %q", param)
			}
			// Attribute inference on the attribute split.
			eAttr, err := core.ParallelPANE(attrSplit.Train, cfg)
			if err != nil {
				return nil, nil, err
			}
			auc, _ := attrSplit.Evaluate(eAttr.AttrScore)
			attr = append(attr, QualityPoint{Dataset: name, Param: param, Value: v, AUC: auc})
			// Link prediction on the link split.
			eLink, err := core.ParallelPANE(linkSplit.Train, cfg)
			if err != nil {
				return nil, nil, err
			}
			s := core.NewLinkScorer(eLink)
			score := s.Directed
			if !info.Directed {
				score = s.Undirected
			}
			auc, _ = linkSplit.Evaluate(score)
			link = append(link, QualityPoint{Dataset: name, Param: param, Value: v, AUC: auc})
		}
	}
	return attr, link, nil
}

// PrintQuality renders a Figure 5/6 panel.
func PrintQuality(w io.Writer, title string, rows []QualityPoint) {
	fmt.Fprintln(w, title)
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %s=%-8g AUC=%.3f\n", r.Dataset, r.Param, r.Value, r.AUC)
	}
}

// ---------------------------------------------------------------------------
// Figures 7 & 8: GreedyInit vs random initialization.

// InitPoint is (time, AUC) at one CCD iteration budget for one variant.
type InitPoint struct {
	Dataset string
	Variant string // "PANE" or "PANE-R"
	Iters   int
	Elapsed time.Duration
	AUC     float64
}

// RunFig78 compares PANE against PANE-R on both tasks at the given CCD
// iteration budgets. Returned slices: link prediction (Fig 7), attribute
// inference (Fig 8).
func RunFig78(names []string, iters []int, opt Options) (link, attr []InitPoint, err error) {
	for _, name := range names {
		g, info, err := dataset.Load(name)
		if err != nil {
			return nil, nil, err
		}
		linkSplit := eval.SplitLinks(g, 0.3, rand.New(rand.NewSource(opt.Seed)))
		attrSplit := eval.SplitAttributes(g, 0.8, rand.New(rand.NewSource(opt.Seed)))
		for _, it := range iters {
			cfg := opt.paneConfig()
			cfg.CCDIters = it
			for _, variant := range []string{"PANE", "PANE-R"} {
				run := func(g *graph.Graph) (*core.Embedding, time.Duration, error) {
					start := time.Now()
					var e *core.Embedding
					var err error
					if variant == "PANE" {
						e, err = core.PANE(g, cfg)
					} else {
						e, err = core.PANERandomInit(g, cfg)
					}
					return e, time.Since(start), err
				}
				// Link prediction.
				e, elapsed, err := run(linkSplit.Train)
				if err != nil {
					return nil, nil, err
				}
				s := core.NewLinkScorer(e)
				score := s.Directed
				if !info.Directed {
					score = s.Undirected
				}
				auc, _ := linkSplit.Evaluate(score)
				link = append(link, InitPoint{Dataset: name, Variant: variant, Iters: it, Elapsed: elapsed, AUC: auc})
				// Attribute inference.
				e, elapsed, err = run(attrSplit.Train)
				if err != nil {
					return nil, nil, err
				}
				auc, _ = attrSplit.Evaluate(e.AttrScore)
				attr = append(attr, InitPoint{Dataset: name, Variant: variant, Iters: it, Elapsed: elapsed, AUC: auc})
			}
		}
	}
	return link, attr, nil
}

// PrintInitPoints renders a Figure 7/8 panel.
func PrintInitPoints(w io.Writer, title string, rows []InitPoint) {
	fmt.Fprintln(w, title)
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %-7s t=%-3d %8.3fs AUC=%.3f\n", r.Dataset, r.Variant, r.Iters, r.Elapsed.Seconds(), r.AUC)
	}
}
