package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http/httptest"
	"os"
	"time"

	"pane/internal/core"
	"pane/internal/datagen"
	"pane/internal/engine"
	"pane/internal/graph"
	"pane/internal/replica"
	"pane/internal/server"
	"pane/internal/wal"
)

// ReplicateOptions configures RunReplicate. Zero values pick the
// defaults noted per field.
type ReplicateOptions struct {
	N       int   // nodes; 0 → 20000
	D       int   // attributes; 0 → 50
	K       int   // space budget; 0 → 64
	Threads int   // 0 → 1
	Seed    int64 // 0 → 1
	// Backlog is the number of leader updates the follower catches up
	// on; 0 → 10000.
	Backlog int
	// BatchEdges is the edge count per update record; 0 → 4.
	BatchEdges int
	// AppendRecords is the record count of each fsync-policy append
	// run; 0 → 2000.
	AppendRecords int
	// Queries is the number of leader-vs-follower top-k spot checks;
	// 0 → 50.
	Queries int
}

// AppendPoint is one fsync policy's append-throughput measurement:
// Records identical WAL records appended back to back through one
// wal.Log configured with that policy.
type AppendPoint struct {
	Policy        string  `json:"policy"`
	Records       int     `json:"records"`
	Seconds       float64 `json:"seconds"`
	RecordsPerSec float64 `json:"records_per_sec"`
	MBPerSec      float64 `json:"mb_per_sec"`
}

// ReplicateBench is the report emitted as BENCH_replicate.json by
// `benchexp -exp replicate`: WAL append throughput under each fsync
// policy, and the two ways a follower catches up on a Backlog-record
// leader lead — O(Δ) record replay over /replicate vs fetching the
// leader's bundle — with the crossover backlog at which the bundle
// starts winning.
type ReplicateBench struct {
	N          int `json:"n"`
	Edges      int `json:"edges"`
	D          int `json:"d"`
	K          int `json:"k"`
	Backlog    int `json:"backlog"`
	BatchEdges int `json:"batch_edges"`

	Append []AppendPoint `json:"append"`
	// SyncFreeSpeedup is append throughput without fsync over
	// throughput with fsync-per-record — a same-machine ratio, so
	// runner hardware drops out of the CI gate.
	SyncFreeSpeedup float64 `json:"sync_free_speedup"`

	// Record-replay catch-up: SyncOnce loops until the follower holds
	// the leader's version, index included.
	ReplaySeconds       float64 `json:"replay_seconds"`
	ReplayRecordsPerSec float64 `json:"replay_records_per_sec"`
	// Bundle catch-up: one bootstrap (bundle fetch + engine build +
	// index) against the same leader state.
	SnapshotSeconds float64 `json:"snapshot_seconds"`
	// CrossoverRecords is the backlog size at which per-record replay
	// time equals the bundle fetch: SnapshotSeconds ÷ per-record
	// replay cost. Followers lagging past it should jump to the
	// bundle — the trade -follow-lag encodes.
	CrossoverRecords float64 `json:"crossover_records"`
	// RecallVsLeader is the followers' mean top-10 link recall against
	// the leader after convergence; the run fails below 0.999.
	RecallVsLeader float64 `json:"recall_vs_leader"`
}

// RunReplicate measures the replication tier. Phase one times raw WAL
// appends under each fsync policy on identical record streams. Phase
// two trains a leader, bootstraps a follower at the base version,
// applies Backlog updates on the leader, and times the follower's
// record-by-record catch-up against a fresh bundle bootstrap of the
// same lead. The run fails — rather than reporting numbers for a
// broken replica — when the replay path touched the bundle fallback,
// when either follower misses the leader's version, or when converged
// top-k recall drops below 0.999.
func RunReplicate(opt ReplicateOptions) (*ReplicateBench, error) {
	if opt.N <= 0 {
		opt.N = 20000
	}
	if opt.D <= 0 {
		opt.D = 50
	}
	if opt.K <= 0 {
		opt.K = 64
	}
	if opt.Threads <= 0 {
		opt.Threads = 1
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	if opt.Backlog <= 0 {
		opt.Backlog = 10000
	}
	if opt.BatchEdges <= 0 {
		opt.BatchEdges = 4
	}
	if opt.AppendRecords <= 0 {
		opt.AppendRecords = 2000
	}
	if opt.Queries <= 0 {
		opt.Queries = 50
	}
	b := &ReplicateBench{
		N: opt.N, D: opt.D, K: opt.K,
		Backlog: opt.Backlog, BatchEdges: opt.BatchEdges,
	}

	// Phase one: append throughput per fsync policy. The same record
	// stream goes through each policy; only the durability barrier
	// differs. Sync/Close stay outside the timed window — the point of
	// the relaxed policies is exactly that they do not pay it per
	// record.
	recs := make([]wal.Record, opt.AppendRecords)
	arng := rand.New(rand.NewSource(opt.Seed))
	var recBytes int
	for i := range recs {
		edges := make([]graph.Edge, opt.BatchEdges)
		for j := range edges {
			edges[j] = graph.Edge{Src: arng.Intn(opt.N), Dst: arng.Intn(opt.N)}
		}
		recs[i] = wal.Record{Version: uint64(i + 1), Edges: edges}
		recBytes += 24 + 8*opt.BatchEdges // frame header + payload
	}
	for _, policy := range []wal.SyncPolicy{wal.SyncAlways, wal.SyncInterval, wal.SyncNone} {
		sec, err := timeAppends(recs, policy)
		if err != nil {
			return nil, err
		}
		b.Append = append(b.Append, AppendPoint{
			Policy:        policy.String(),
			Records:       opt.AppendRecords,
			Seconds:       sec,
			RecordsPerSec: float64(opt.AppendRecords) / sec,
			MBPerSec:      float64(recBytes) / sec / (1 << 20),
		})
	}
	b.SyncFreeSpeedup = b.Append[2].RecordsPerSec / b.Append[0].RecordsPerSec

	// Phase two: follower catch-up. Both sides run the engine's delta
	// path (thresholds 1) — the leader applies each batch in O(Δ) and
	// the follower replays the identical records through the same
	// code, so convergence is checked by recall rather than the
	// bit-identity the deterministic CI configuration asserts.
	g, err := datagen.Generate(datagen.Config{
		Name: "replbench", N: opt.N, AvgOutDeg: 8, D: opt.D, AttrsPer: 6,
		Communities: 50, Seed: opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	cfg := core.Config{K: opt.K, Alpha: 0.5, Eps: 0.25, Threads: opt.Threads, Seed: opt.Seed}
	emb, err := core.ParallelPANE(g, cfg)
	if err != nil {
		return nil, err
	}
	b.Edges = g.M()
	engOpts := []engine.Option{
		engine.WithIndex(engine.IndexConfig{IVF: true, Shards: 2}),
		engine.WithRefreshThreshold(1),
		engine.WithAffinityThreshold(1),
	}
	leader, err := engine.New(g, emb, cfg, engOpts...)
	if err != nil {
		return nil, err
	}
	walDir, err := os.MkdirTemp("", "pane-replbench-wal")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(walDir)
	wlog, err := wal.Open(walDir, wal.Options{Sync: wal.SyncNone})
	if err != nil {
		return nil, err
	}
	defer wlog.Close()
	if err := leader.AttachWAL(wlog); err != nil {
		return nil, err
	}
	ts := httptest.NewServer(server.New(leader))
	defer ts.Close()
	ctx := context.Background()

	// Bootstrapped before the backlog, so every record must replay;
	// the lag threshold sits far above the backlog to keep the bundle
	// fallback out of the measured path.
	tail, err := replica.Bootstrap(ctx, replica.Options{
		Leader: ts.URL, LagFallback: 1 << 62,
	}, engOpts...)
	if err != nil {
		return nil, err
	}

	urng := rand.New(rand.NewSource(opt.Seed + 2))
	for i := 0; i < opt.Backlog; i++ {
		edges := make([]graph.Edge, opt.BatchEdges)
		for j := range edges {
			edges[j] = graph.Edge{Src: urng.Intn(g.N), Dst: urng.Intn(g.N)}
		}
		if _, err := leader.ApplyEdges(edges); err != nil {
			return nil, err
		}
	}
	leader.WaitForIndex()
	want := leader.Version()

	t0 := time.Now()
	for tail.Engine().Version() < want {
		if _, err := tail.SyncOnce(ctx); err != nil {
			return nil, err
		}
	}
	tail.Engine().WaitForIndex()
	b.ReplaySeconds = time.Since(t0).Seconds()
	b.ReplayRecordsPerSec = float64(opt.Backlog) / b.ReplaySeconds
	st := tail.Status()
	if st.BundleFetches != 0 {
		return nil, fmt.Errorf("experiments: replay catch-up fell back to %d bundle fetches", st.BundleFetches)
	}
	if st.RecordsApplied != uint64(opt.Backlog) {
		return nil, fmt.Errorf("experiments: replay applied %d records, backlog was %d", st.RecordsApplied, opt.Backlog)
	}

	t0 = time.Now()
	boot, err := replica.Bootstrap(ctx, replica.Options{Leader: ts.URL}, engOpts...)
	if err != nil {
		return nil, err
	}
	boot.Engine().WaitForIndex()
	b.SnapshotSeconds = time.Since(t0).Seconds()
	if v := boot.Engine().Version(); v != want {
		return nil, fmt.Errorf("experiments: bundle bootstrap landed at version %d, leader at %d", v, want)
	}
	b.CrossoverRecords = b.SnapshotSeconds / (b.ReplaySeconds / float64(opt.Backlog))

	var recallSum float64
	qrng := rand.New(rand.NewSource(opt.Seed + 3))
	for i := 0; i < opt.Queries; i++ {
		u := qrng.Intn(g.N)
		lead, err := leader.TopLinks(u, 10, engine.ModeExact, 0)
		if err != nil {
			return nil, err
		}
		for _, f := range []*replica.Replica{tail, boot} {
			got, err := f.Engine().TopLinks(u, 10, engine.ModeExact, 0)
			if err != nil {
				return nil, err
			}
			recallSum += recallScored(lead.Results, got.Results)
		}
	}
	b.RecallVsLeader = recallSum / float64(2*opt.Queries)
	if b.RecallVsLeader < 0.999 {
		return nil, fmt.Errorf("experiments: converged follower top-10 recall %.4f below the 0.999 floor", b.RecallVsLeader)
	}
	return b, nil
}

// timeAppends appends recs through one fresh log under policy and
// returns the wall time of the append loop alone.
func timeAppends(recs []wal.Record, policy wal.SyncPolicy) (float64, error) {
	dir, err := os.MkdirTemp("", "pane-replbench-append")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	log, err := wal.Open(dir, wal.Options{Sync: policy, SyncEvery: 10 * time.Millisecond})
	if err != nil {
		return 0, err
	}
	defer log.Close()
	t0 := time.Now()
	for _, rec := range recs {
		if err := log.Append(rec); err != nil {
			return 0, err
		}
	}
	return time.Since(t0).Seconds(), nil
}

// PrintReplicate renders the report.
func PrintReplicate(w io.Writer, b *ReplicateBench) {
	fmt.Fprintf(w, "Replication: n=%d m=%d d=%d k=%d, %d-update backlog of %d-edge records\n",
		b.N, b.Edges, b.D, b.K, b.Backlog, b.BatchEdges)
	fmt.Fprintf(w, "%-10s | %10s %12s %10s\n", "fsync", "records", "records/s", "MB/s")
	for _, p := range b.Append {
		fmt.Fprintf(w, "%-10s | %10d %12.0f %10.2f\n", p.Policy, p.Records, p.RecordsPerSec, p.MBPerSec)
	}
	fmt.Fprintf(w, "sync-free append speedup: %.1fx (none vs always)\n", b.SyncFreeSpeedup)
	fmt.Fprintf(w, "catch-up: replay %.3fs (%.0f records/s) vs bundle %.3fs — crossover at %.0f records (recall %.4f)\n",
		b.ReplaySeconds, b.ReplayRecordsPerSec, b.SnapshotSeconds, b.CrossoverRecords, b.RecallVsLeader)
}

// WriteReplicateJSON writes the report to path as indented JSON.
func WriteReplicateJSON(path string, b *ReplicateBench) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadReplicateJSON loads a report written by WriteReplicateJSON.
func ReadReplicateJSON(path string) (*ReplicateBench, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	b := &ReplicateBench{}
	if err := json.Unmarshal(data, b); err != nil {
		return nil, fmt.Errorf("experiments: parsing baseline %s: %w", path, err)
	}
	return b, nil
}

// CheckReplicateBaseline is the CI gate for the replication tier. Both
// gated numbers are same-machine ratios (fsync-free vs fsync-bound
// appends; bundle fetch vs per-record replay), so runner hardware
// drops out exactly as in the other gates. The crossover is gated in
// both directions: falling means record replay got relatively slower,
// rising means the bundle path did.
func CheckReplicateBaseline(cur, base *ReplicateBench, tol float64) error {
	if tol < 0 {
		return fmt.Errorf("experiments: negative tolerance %v", tol)
	}
	if len(cur.Append) == 0 || cur.ReplayRecordsPerSec <= 0 {
		return fmt.Errorf("experiments: replicate gate: empty report")
	}
	var failures []string
	if base.SyncFreeSpeedup > 0 && cur.SyncFreeSpeedup < base.SyncFreeSpeedup*(1-tol) {
		failures = append(failures, fmt.Sprintf(
			"sync-free append speedup %.1fx dropped more than %.0f%% below baseline %.1fx",
			cur.SyncFreeSpeedup, tol*100, base.SyncFreeSpeedup))
	}
	if base.CrossoverRecords > 0 {
		if cur.CrossoverRecords < base.CrossoverRecords*(1-tol) {
			failures = append(failures, fmt.Sprintf(
				"replay/bundle crossover %.0f records dropped more than %.0f%% below baseline %.0f — record replay regressed",
				cur.CrossoverRecords, tol*100, base.CrossoverRecords))
		}
		if cur.CrossoverRecords*(1-tol) > base.CrossoverRecords {
			failures = append(failures, fmt.Sprintf(
				"replay/bundle crossover %.0f records rose more than %.0f%% above baseline %.0f — bundle catch-up regressed",
				cur.CrossoverRecords, tol*100, base.CrossoverRecords))
		}
	}
	if len(failures) == 0 {
		return nil
	}
	msg := "experiments: replication perf regression vs baseline:"
	for _, f := range failures {
		msg += "\n  - " + f
	}
	return fmt.Errorf("%s", msg)
}
