package experiments

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestRunKernelSmallEndToEnd(t *testing.T) {
	b, err := RunKernel(KernelOptions{Dims: []int{32, 37}, MinTime: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// 4 ops × 2 dims, every cell timed and self-consistent.
	if len(b.Cells) != 8 {
		t.Fatalf("got %d cells, want 8", len(b.Cells))
	}
	for _, c := range b.Cells {
		if c.GenericNsOp <= 0 || c.DispatchNsOp <= 0 || c.Bytes <= 0 {
			t.Fatalf("degenerate cell %+v", c)
		}
		if want := c.GenericNsOp / c.DispatchNsOp; c.Speedup != want {
			t.Fatalf("cell %s/%d speedup %v inconsistent with timings (want %v)", c.Op, c.Dim, c.Speedup, want)
		}
	}
	for _, op := range []string{"dot", "axpy", "gemm", "sq8dot", "fp16dot"} {
		if b.ISAs[op] == "" {
			t.Fatalf("ISAs missing %q: %v", op, b.ISAs)
		}
	}

	var out bytes.Buffer
	PrintKernel(&out, b)
	for _, want := range []string{"Kernel dispatch:", "fp16dot", "gemm"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("table missing %q:\n%s", want, out.String())
		}
	}

	path := filepath.Join(t.TempDir(), "kernel.json")
	if err := WriteKernelJSON(path, b); err != nil {
		t.Fatal(err)
	}
	back, err := ReadKernelJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Cells) != len(b.Cells) || back.ISAs["dot"] != b.ISAs["dot"] {
		t.Fatalf("JSON round trip changed the report")
	}
	// A fresh run gates cleanly against itself at zero tolerance.
	if err := CheckKernelBaseline(b, back, 0.0); err != nil {
		t.Fatalf("self-comparison failed: %v", err)
	}
}

// kernelBench returns a baseline-shaped report for gate tests,
// independent of the host the test runs on.
func kernelBench() *KernelBench {
	return &KernelBench{
		ISAs: map[string]string{"dot": "avx2", "axpy": "avx2", "gemm": "avx2", "sq8dot": "avx2", "fp16dot": "avx2"},
		Cells: []KernelCell{
			{Op: "dot", Dim: 128, Bytes: 2048, GenericNsOp: 100, DispatchNsOp: 25, Speedup: 4.0},
			{Op: "sq8dot", Dim: 128, Bytes: 256, GenericNsOp: 80, DispatchNsOp: 10, Speedup: 8.0},
		},
	}
}

func TestCheckKernelBaselineGates(t *testing.T) {
	base := kernelBench()

	// Within tolerance passes.
	cur := kernelBench()
	cur.Cells[0].Speedup = 2.5
	if err := CheckKernelBaseline(cur, base, 0.5); err != nil {
		t.Fatalf("in-tolerance run rejected: %v", err)
	}

	// A dispatched kernel falling back to generic fails even when every
	// ratio looks healthy.
	cur = kernelBench()
	cur.ISAs["sq8dot"] = "generic"
	err := CheckKernelBaseline(cur, base, 0.5)
	if err == nil || !strings.Contains(err.Error(), "regressed to generic") {
		t.Fatalf("dispatch regression not caught: %v", err)
	}

	// A large same-machine speedup drop fails.
	cur = kernelBench()
	cur.Cells[1].Speedup = 2.0 // 8x → 2x
	err = CheckKernelBaseline(cur, base, 0.5)
	if err == nil || !strings.Contains(err.Error(), "sq8dot dim=128") {
		t.Fatalf("speedup regression not caught: %v", err)
	}

	// A generic baseline (e.g. recorded under noasm) gates nothing.
	genBase := kernelBench()
	for op := range genBase.ISAs {
		genBase.ISAs[op] = "generic"
	}
	for i := range genBase.Cells {
		genBase.Cells[i].Speedup = 1.0
	}
	genCur := kernelBench()
	for op := range genCur.ISAs {
		genCur.ISAs[op] = "generic"
	}
	genCur.Cells[0].Speedup = 0.5
	if err := CheckKernelBaseline(genCur, genBase, 0.5); err != nil {
		t.Fatalf("generic baseline gated: %v", err)
	}

	if err := CheckKernelBaseline(kernelBench(), base, -1); err == nil {
		t.Fatal("negative tolerance accepted")
	}
}
