package experiments

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func replicateBench() *ReplicateBench {
	return &ReplicateBench{
		N: 2000, D: 30, K: 16, Backlog: 200, BatchEdges: 4,
		Append: []AppendPoint{
			{Policy: "always", Records: 100, RecordsPerSec: 500},
			{Policy: "interval", Records: 100, RecordsPerSec: 20000},
			{Policy: "none", Records: 100, RecordsPerSec: 40000},
		},
		SyncFreeSpeedup:     80,
		ReplaySeconds:       0.5,
		ReplayRecordsPerSec: 400,
		SnapshotSeconds:     0.2,
		CrossoverRecords:    80,
		RecallVsLeader:      1,
	}
}

func TestCheckReplicateBaselinePasses(t *testing.T) {
	base := replicateBench()
	cur := replicateBench()
	cur.SyncFreeSpeedup = 50 // -37%, within 50%
	cur.CrossoverRecords = 50
	if err := CheckReplicateBaseline(cur, base, 0.5); err != nil {
		t.Fatalf("in-tolerance run rejected: %v", err)
	}
}

func TestCheckReplicateBaselineCatchesRegressions(t *testing.T) {
	base := replicateBench()
	cur := replicateBench()
	cur.SyncFreeSpeedup = 10 // -87%
	err := CheckReplicateBaseline(cur, base, 0.5)
	if err == nil || !strings.Contains(err.Error(), "sync-free") {
		t.Fatalf("append-speedup regression not caught: %v", err)
	}
	cur = replicateBench()
	cur.CrossoverRecords = 10 // replay got 8x relatively slower
	err = CheckReplicateBaseline(cur, base, 0.5)
	if err == nil || !strings.Contains(err.Error(), "record replay regressed") {
		t.Fatalf("replay regression not caught: %v", err)
	}
	cur = replicateBench()
	cur.CrossoverRecords = 800 // bundle path got 10x relatively slower
	err = CheckReplicateBaseline(cur, base, 0.5)
	if err == nil || !strings.Contains(err.Error(), "bundle catch-up regressed") {
		t.Fatalf("bundle regression not caught: %v", err)
	}
	if err := CheckReplicateBaseline(&ReplicateBench{}, base, 0.5); err == nil {
		t.Fatal("empty report accepted")
	}
	if err := CheckReplicateBaseline(replicateBench(), base, -1); err == nil {
		t.Fatal("negative tolerance accepted")
	}
}

// TestRunReplicateSmoke runs the whole experiment small: append sweep,
// record-replay catch-up, bundle bootstrap, recall floor, and the JSON
// round trip must all hold together.
func TestRunReplicateSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("replication bench in -short mode")
	}
	b, err := RunReplicate(ReplicateOptions{
		N: 1000, D: 20, K: 16, Threads: 2, Seed: 7,
		Backlog: 60, BatchEdges: 2, AppendRecords: 50, Queries: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Append) != 3 || b.Append[0].Policy != "always" || b.Append[2].Policy != "none" {
		t.Fatalf("append sweep %+v", b.Append)
	}
	for _, p := range b.Append {
		if p.RecordsPerSec <= 0 {
			t.Fatalf("policy %s throughput %+v", p.Policy, p)
		}
	}
	if b.ReplayRecordsPerSec <= 0 || b.SnapshotSeconds <= 0 || b.CrossoverRecords <= 0 {
		t.Fatalf("catch-up numbers %+v", b)
	}
	if b.RecallVsLeader < 0.999 {
		t.Fatalf("recall %v", b.RecallVsLeader)
	}
	var buf bytes.Buffer
	PrintReplicate(&buf, b)
	if !strings.Contains(buf.String(), "crossover") {
		t.Fatalf("print output:\n%s", buf.String())
	}
	path := filepath.Join(t.TempDir(), "r.json")
	if err := WriteReplicateJSON(path, b); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReplicateJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckReplicateBaseline(back, b, 0.0); err != nil {
		t.Fatalf("round-tripped report fails its own gate: %v", err)
	}
}
