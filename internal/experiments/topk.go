package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"pane/internal/core"
	"pane/internal/datagen"
	"pane/internal/engine"
)

// TopKOptions configures the serving-index comparison of RunTopK. Zero
// values pick the defaults noted per field.
type TopKOptions struct {
	N       int   // nodes; 0 → 100000
	D       int   // attributes; 0 → 100
	K       int   // space budget; 0 → 32
	Threads int   // 0 → 1 (the comparison is about work, not cores)
	Seed    int64 // 0 → 1
	NList   int   // IVF lists; 0 → sqrt(n)
	NProbe  int   // probes per query; 0 → index default
	Queries int   // measured queries; 0 → 200
	TopK    int   // k per query; 0 → 10
}

// TopKBench is the measured exact-vs-IVF serving comparison emitted as
// BENCH_topk.json by `benchexp -exp topk`. QPS numbers are single-stream
// (one query at a time, as a latency-sensitive caller sees them).
type TopKBench struct {
	N       int `json:"n"`
	Edges   int `json:"edges"`
	D       int `json:"d"`
	K       int `json:"k"`
	Queries int `json:"queries"`
	TopK    int `json:"top_k"`
	NList   int `json:"nlist"`
	NProbe  int `json:"nprobe"`

	TrainSeconds      float64 `json:"train_seconds"`
	IndexBuildSeconds float64 `json:"index_build_seconds"`

	ScanQPS  float64 `json:"scan_qps"`  // PR-1 brute force (per-query transform + full scan)
	ExactQPS float64 `json:"exact_qps"` // exact backend over precomputed Z
	IVFQPS   float64 `json:"ivf_qps"`   // IVF backend at NProbe

	RecallAtK          float64 `json:"recall_at_k"` // IVF vs exact, fraction of top-k ids recovered
	SpeedupExactVsScan float64 `json:"speedup_exact_vs_scan"`
	SpeedupIVFVsScan   float64 `json:"speedup_ivf_vs_scan"`
}

// RunTopK generates a community-structured graph, trains a model, builds
// the serving indexes, and measures the three top-links paths against
// each other.
func RunTopK(opt TopKOptions) (*TopKBench, error) {
	if opt.N <= 0 {
		opt.N = 100000
	}
	if opt.D <= 0 {
		opt.D = 100
	}
	if opt.K <= 0 {
		opt.K = 32
	}
	if opt.Threads <= 0 {
		opt.Threads = 1
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	if opt.Queries <= 0 {
		opt.Queries = 200
	}
	if opt.TopK <= 0 {
		opt.TopK = 10
	}

	g, err := datagen.Generate(datagen.Config{
		Name: "topkbench", N: opt.N, AvgOutDeg: 8, D: opt.D, AttrsPer: 6,
		Communities: 50, Seed: opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	// Eps 0.25 keeps the training loop short (t = 1); the index
	// comparison needs realistic vector structure, not converged quality.
	cfg := core.Config{K: opt.K, Alpha: 0.5, Eps: 0.25, Threads: opt.Threads, Seed: opt.Seed}

	start := time.Now()
	emb, err := core.ParallelPANE(g, cfg)
	if err != nil {
		return nil, err
	}
	trainSec := time.Since(start).Seconds()

	start = time.Now()
	eng, err := engine.New(g, emb, cfg, engine.WithIndex(engine.IndexConfig{
		IVF: true, NList: opt.NList, NProbe: opt.NProbe,
	}))
	if err != nil {
		return nil, err
	}
	buildSec := time.Since(start).Seconds()

	rng := rand.New(rand.NewSource(opt.Seed + 1))
	nodes := make([]int, opt.Queries)
	for i := range nodes {
		nodes[i] = rng.Intn(g.N)
	}
	m := eng.Model()

	timeQueries := func(run func(u int) []core.Scored) ([][]core.Scored, float64) {
		out := make([][]core.Scored, len(nodes))
		t0 := time.Now()
		for i, u := range nodes {
			out[i] = run(u)
		}
		return out, float64(len(nodes)) / time.Since(t0).Seconds()
	}

	_, scanQPS := timeQueries(func(u int) []core.Scored {
		return m.Scorer.TopKTargets(u, opt.TopK, nil)
	})
	exactRes, exactQPS := timeQueries(func(u int) []core.Scored {
		ans, err := eng.TopLinks(u, opt.TopK, engine.ModeExact, 0)
		if err != nil {
			panic(err)
		}
		if ans.Backend != engine.BackendExact {
			panic("exact backend not used: " + ans.Backend)
		}
		return ans.Results
	})
	ivfRes, ivfQPS := timeQueries(func(u int) []core.Scored {
		ans, err := eng.TopLinks(u, opt.TopK, engine.ModeIVF, 0)
		if err != nil {
			panic(err)
		}
		if ans.Backend != engine.BackendIVF {
			panic("ivf backend not used: " + ans.Backend)
		}
		return ans.Results
	})
	var hit, total int
	for i := range exactRes {
		in := make(map[int]bool, len(exactRes[i]))
		for _, s := range exactRes[i] {
			in[s.ID] = true
		}
		for _, s := range ivfRes[i] {
			if in[s.ID] {
				hit++
			}
		}
		total += len(exactRes[i])
	}

	st := eng.IndexStatus()
	b := &TopKBench{
		N: g.N, Edges: g.M(), D: g.D, K: opt.K,
		Queries: opt.Queries, TopK: opt.TopK,
		NList: st.NList, NProbe: st.NProbe,
		TrainSeconds: trainSec, IndexBuildSeconds: buildSec,
		ScanQPS: scanQPS, ExactQPS: exactQPS, IVFQPS: ivfQPS,
		RecallAtK:          float64(hit) / float64(total),
		SpeedupExactVsScan: exactQPS / scanQPS,
		SpeedupIVFVsScan:   ivfQPS / scanQPS,
	}
	return b, nil
}

// PrintTopK renders the comparison as a table.
func PrintTopK(w io.Writer, b *TopKBench) {
	fmt.Fprintf(w, "Top-k serving: n=%d m=%d d=%d k=%d, %d queries, top-%d (nlist=%d nprobe=%d)\n",
		b.N, b.Edges, b.D, b.K, b.Queries, b.TopK, b.NList, b.NProbe)
	fmt.Fprintf(w, "train %.1fs, index build %.1fs\n", b.TrainSeconds, b.IndexBuildSeconds)
	fmt.Fprintf(w, "%-22s %12s %10s %10s\n", "path", "QPS", "speedup", "recall")
	fmt.Fprintf(w, "%-22s %12.1f %10s %10s\n", "scan (PR-1 brute)", b.ScanQPS, "1.0x", "1.000")
	fmt.Fprintf(w, "%-22s %12.1f %9.1fx %10s\n", "index exact", b.ExactQPS, b.SpeedupExactVsScan, "1.000")
	fmt.Fprintf(w, "%-22s %12.1f %9.1fx %10.3f\n", "index ivf", b.IVFQPS, b.SpeedupIVFVsScan, b.RecallAtK)
}

// WriteTopKJSON writes the comparison to path as indented JSON.
func WriteTopKJSON(path string, b *TopKBench) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
