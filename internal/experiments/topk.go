package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"runtime"
	"time"

	"pane/internal/core"
	"pane/internal/datagen"
	"pane/internal/engine"
	"pane/internal/index"
	"pane/internal/obs"
)

// TopKOptions configures the serving-index comparison of RunTopK. Zero
// values pick the defaults noted per field.
type TopKOptions struct {
	N       int   // nodes; 0 → 100000
	D       int   // attributes; 0 → 100
	K       int   // space budget; 0 → 32
	Threads int   // 0 → 1 (the comparison is about work, not cores)
	Seed    int64 // 0 → 1
	NList   int   // IVF lists; 0 → sqrt(n)
	NProbe  int   // probes per query; 0 → index default
	Queries int   // measured queries; 0 → 200
	TopK    int   // k per query; 0 → 10
	Rerank  int   // quantized survivor multiplier; 0 → index default
	// ShardPoints are the shard counts of the scaling sweep; nil → {1, 2,
	// 4, 8}. Empty (non-nil) skips the sweep.
	ShardPoints []int
}

// minFullProbeRecall is the report-integrity floor: IVF probing every
// list must reproduce the exact answer, so full-probe recall@k below this
// means the index is structurally broken and the run fails instead of
// printing a report that masks it.
const minFullProbeRecall = 0.9

// minSQ8Recall is the quantized-tier floor the CI perf gate enforces on
// every run: SQ8 at its default re-rank window must recover at least this
// fraction of the exact top-k, or the run fails — near-exactness is the
// quantized tier's contract, not a tunable.
const minSQ8Recall = 0.99

// minFP16Recall is the binary16 tier's floor, enforced on every run: the
// fp16 scan serves WITHOUT exact re-rank, so its 11-bit significands must
// keep recall@k at or above this on their own — near-exactness is the
// representation's contract, not a tunable, and there is no re-rank knob
// to trade it away.
//
// The floor is enforced on the missed-slot count with a binomial sampling
// allowance (see fp16MissAllowance) rather than as a sharp ratio cutoff.
// On the committed bench data the tier's true recall sits almost exactly
// at the floor — the misses are rank-boundary pairs whose float64 score
// gap is below fp16's 2^-11 relative resolution, so per-query-sample
// measurements wobble a few slots either side of slots/1000 (measured
// 0.9988–0.9992 across samples; centering or re-scaling the codes does
// not help, the information simply isn't in 11 bits). A sharp cutoff at
// exactly the expectation would make the gate a coin flip on healthy
// code; the 2σ allowance keeps it deterministic there while a genuinely
// broken tier (recall 0.99 → 10σ over budget) still fails hard.
const minFP16Recall = 0.999

// fp16MissAllowance is the largest missed-slot count the fp16 gate
// accepts over `slots` scored slots: the minFP16Recall expectation plus
// two binomial standard deviations (σ ≈ sqrt(slots·p) for small miss
// probability p), never below one — at tiny test scales a single miss is
// one boundary tie, indistinguishable from correct behavior.
func fp16MissAllowance(slots int) int {
	expected := float64(slots) * (1 - minFP16Recall)
	allowed := int(math.Round(expected + 2*math.Sqrt(expected)))
	if allowed < 1 {
		allowed = 1
	}
	return allowed
}

// ShardScalingPoint is one row of the shard-count sweep: the same model
// and query stream served through S shards.
type ShardScalingPoint struct {
	Shards            int     `json:"shards"`
	IndexBuildSeconds float64 `json:"index_build_seconds"`
	ExactQPS          float64 `json:"exact_qps"`
	IVFQPS            float64 `json:"ivf_qps"`
	SQ8QPS            float64 `json:"sq8_qps"`
	FP16QPS           float64 `json:"fp16_qps,omitempty"`
	RecallAtK         float64 `json:"recall_at_k"`
}

// TopKBench is the measured exact-vs-IVF serving comparison emitted as
// BENCH_topk.json by `benchexp -exp topk`. QPS numbers are single-stream
// (one query at a time, as a latency-sensitive caller sees them).
type TopKBench struct {
	N       int `json:"n"`
	Edges   int `json:"edges"`
	D       int `json:"d"`
	K       int `json:"k"`
	Queries int `json:"queries"`
	TopK    int `json:"top_k"`
	NList   int `json:"nlist"`
	NProbe  int `json:"nprobe"`
	Rerank  int `json:"rerank"` // quantized survivor multiplier in effect

	TrainSeconds      float64 `json:"train_seconds"`
	IndexBuildSeconds float64 `json:"index_build_seconds"`

	ScanQPS    float64 `json:"scan_qps"`           // PR-1 brute force (per-query transform + full scan)
	ExactQPS   float64 `json:"exact_qps"`          // exact backend over precomputed Z
	IVFQPS     float64 `json:"ivf_qps"`            // IVF backend at NProbe
	SQ8QPS     float64 `json:"sq8_qps"`            // quantized flat scan + exact re-rank
	IVFSQQPS   float64 `json:"ivfsq_qps"`          // quantized IVF at the same NProbe
	FP16QPS    float64 `json:"fp16_qps,omitempty"` // binary16 flat scan, no re-rank
	IVFFP16QPS float64 `json:"ivffp16_qps,omitempty"`

	RecallAtK       float64 `json:"recall_at_k"`              // IVF vs exact, fraction of top-k ids recovered
	RecallFullProbe float64 `json:"recall_full_probe"`        // IVF probing every list; < 0.9 fails the run
	RecallSQ8       float64 `json:"recall_sq8"`               // SQ8 vs exact; < 0.99 fails the run
	RecallIVFSQ     float64 `json:"recall_ivfsq"`             // IVFSQ vs exact at NProbe
	RecallFP16      float64 `json:"recall_fp16,omitempty"`    // fp16 vs exact; gated at 0.999 + 2σ allowance
	RecallIVFFP16   float64 `json:"recall_ivffp16,omitempty"` // ivffp16 vs exact at NProbe

	SpeedupExactVsScan   float64 `json:"speedup_exact_vs_scan"`
	SpeedupIVFVsScan     float64 `json:"speedup_ivf_vs_scan"`
	SpeedupSQ8VsScan     float64 `json:"speedup_sq8_vs_scan"`
	SpeedupIVFSQVsScan   float64 `json:"speedup_ivfsq_vs_scan"`
	SpeedupFP16VsScan    float64 `json:"speedup_fp16_vs_scan,omitempty"`
	SpeedupIVFFP16VsScan float64 `json:"speedup_ivffp16_vs_scan,omitempty"`

	// Per-path heap allocations per query (runtime.MemStats.Mallocs over
	// the timed window), tracking the query-path pooling work.
	ScanAllocs    float64 `json:"scan_allocs_per_query"`
	ExactAllocs   float64 `json:"exact_allocs_per_query"`
	IVFAllocs     float64 `json:"ivf_allocs_per_query"`
	SQ8Allocs     float64 `json:"sq8_allocs_per_query"`
	IVFSQAllocs   float64 `json:"ivfsq_allocs_per_query"`
	FP16Allocs    float64 `json:"fp16_allocs_per_query,omitempty"`
	IVFFP16Allocs float64 `json:"ivffp16_allocs_per_query,omitempty"`

	// Per-path latency percentiles, recorded per query into the same
	// obs.Histogram type the live server scrapes through /metrics.
	// Pointers with omitempty so baselines written before these fields
	// existed still parse and gate (CheckTopKBaseline never reads them).
	ScanLatency    *obs.LatencySummary `json:"scan_latency_ms,omitempty"`
	ExactLatency   *obs.LatencySummary `json:"exact_latency_ms,omitempty"`
	IVFLatency     *obs.LatencySummary `json:"ivf_latency_ms,omitempty"`
	SQ8Latency     *obs.LatencySummary `json:"sq8_latency_ms,omitempty"`
	IVFSQLatency   *obs.LatencySummary `json:"ivfsq_latency_ms,omitempty"`
	FP16Latency    *obs.LatencySummary `json:"fp16_latency_ms,omitempty"`
	IVFFP16Latency *obs.LatencySummary `json:"ivffp16_latency_ms,omitempty"`

	// Sharding is the shard-count scaling sweep: the same model served at
	// S ∈ ShardPoints, exact AND sq8 answers verified bit-for-bit against
	// S=1.
	Sharding []ShardScalingPoint `json:"sharding,omitempty"`
}

// RunTopK generates a community-structured graph, trains a model, builds
// the serving indexes, and measures the three top-links paths against
// each other, then sweeps the shard count. It fails (rather than writing
// a misleading report) when IVF at full probe cannot reproduce the exact
// answer, and when sharded exact diverges from single-shard exact.
func RunTopK(opt TopKOptions) (*TopKBench, error) {
	if opt.N <= 0 {
		opt.N = 100000
	}
	if opt.D <= 0 {
		opt.D = 100
	}
	if opt.K <= 0 {
		opt.K = 32
	}
	if opt.Threads <= 0 {
		opt.Threads = 1
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	if opt.Queries <= 0 {
		opt.Queries = 200
	}
	if opt.TopK <= 0 {
		opt.TopK = 10
	}
	if opt.ShardPoints == nil {
		opt.ShardPoints = []int{1, 2, 4, 8}
	}

	g, err := datagen.Generate(datagen.Config{
		Name: "topkbench", N: opt.N, AvgOutDeg: 8, D: opt.D, AttrsPer: 6,
		Communities: 50, Seed: opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	// Eps 0.25 keeps the training loop short (t = 1); the index
	// comparison needs realistic vector structure, not converged quality.
	cfg := core.Config{K: opt.K, Alpha: 0.5, Eps: 0.25, Threads: opt.Threads, Seed: opt.Seed}

	start := time.Now()
	emb, err := core.ParallelPANE(g, cfg)
	if err != nil {
		return nil, err
	}
	trainSec := time.Since(start).Seconds()

	// One engine per shard count, all wrapping the SAME trained
	// embedding, so every sweep point serves identical vectors.
	buildEngine := func(shards int) (*engine.Engine, float64, error) {
		t0 := time.Now()
		eng, err := engine.New(g, emb, cfg, engine.WithIndex(engine.IndexConfig{
			IVF: true, NList: opt.NList, NProbe: opt.NProbe, Shards: shards,
			Quantize: true, Rerank: opt.Rerank, FP16: true,
		}))
		return eng, time.Since(t0).Seconds(), err
	}
	eng, buildSec, err := buildEngine(1)
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(opt.Seed + 1))
	nodes := make([]int, opt.Queries)
	for i := range nodes {
		nodes[i] = rng.Intn(g.N)
	}
	m := eng.Model()

	// timeQueries also reports heap allocations per query (Mallocs is a
	// process-global counter, so worker-goroutine allocations are
	// included, and the single-stream loop keeps other mutators out of
	// the window) and p50/p95/p99 latency from per-query durations
	// recorded into an obs.Histogram — the same bucket layout the serving
	// path exposes, so bench percentiles and scraped percentiles are
	// directly comparable.
	timeQueries := func(run func(u int) []core.Scored) ([][]core.Scored, float64, float64, *obs.LatencySummary) {
		out := make([][]core.Scored, len(nodes))
		h := obs.NewHistogram()
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		t0 := time.Now()
		for i, u := range nodes {
			q0 := time.Now()
			out[i] = run(u)
			h.Observe(time.Since(q0))
		}
		elapsed := time.Since(t0).Seconds()
		runtime.ReadMemStats(&ms1)
		allocs := float64(ms1.Mallocs-ms0.Mallocs) / float64(len(nodes))
		sum := h.SummaryMs()
		return out, float64(len(nodes)) / elapsed, allocs, &sum
	}
	topLinks := func(e *engine.Engine, mode string, nprobe int, wantBackend string) func(u int) []core.Scored {
		return func(u int) []core.Scored {
			ans, err := e.TopLinks(u, opt.TopK, mode, nprobe)
			if err != nil {
				panic(err)
			}
			if ans.Backend != wantBackend {
				panic(wantBackend + " backend not used: " + ans.Backend)
			}
			return ans.Results
		}
	}
	overlap := func(truth, got [][]core.Scored) (hit, total int) {
		for i := range truth {
			in := make(map[int]bool, len(truth[i]))
			for _, s := range truth[i] {
				in[s.ID] = true
			}
			for _, s := range got[i] {
				if in[s.ID] {
					hit++
				}
			}
			total += len(truth[i])
		}
		return hit, total
	}
	recall := func(truth, got [][]core.Scored) float64 {
		hit, total := overlap(truth, got)
		return float64(hit) / float64(total)
	}

	_, scanQPS, scanAllocs, scanLat := timeQueries(func(u int) []core.Scored {
		return m.Scorer.TopKTargets(u, opt.TopK, nil)
	})
	exactRes, exactQPS, exactAllocs, exactLat := timeQueries(topLinks(eng, engine.ModeExact, 0, engine.BackendExact))
	ivfRes, ivfQPS, ivfAllocs, ivfLat := timeQueries(topLinks(eng, engine.ModeIVF, 0, engine.BackendIVF))
	sq8Res, sq8QPS, sq8Allocs, sq8Lat := timeQueries(topLinks(eng, engine.ModeSQ8, 0, engine.BackendSQ8))
	ivfsqRes, ivfsqQPS, ivfsqAllocs, ivfsqLat := timeQueries(topLinks(eng, engine.ModeIVFSQ, 0, engine.BackendIVFSQ))
	fp16Res, fp16QPS, fp16Allocs, fp16Lat := timeQueries(topLinks(eng, engine.ModeFP16, 0, engine.BackendFP16))
	ivffpRes, ivffpQPS, ivffpAllocs, ivffpLat := timeQueries(topLinks(eng, engine.ModeIVFFP16, 0, engine.BackendIVFFP16))

	st := eng.IndexStatus()
	// Full-probe IVF must reproduce the exact answer; anything well below
	// 1.0 means the inverted file itself lost candidates, and the report
	// must not mask that as an aggressive-nprobe artifact.
	fullRes, _, _, _ := timeQueries(topLinks(eng, engine.ModeIVF, st.NList, engine.BackendIVF))
	fullRecall := recall(exactRes, fullRes)
	if fullRecall < minFullProbeRecall {
		return nil, fmt.Errorf("experiments: IVF recall@%d at full nprobe is %.3f (< %.2f): serving index is broken",
			opt.TopK, fullRecall, minFullProbeRecall)
	}
	// The quantized tier's recall floor is part of its contract (and the
	// CI perf gate): a run below it must fail, not publish a fast number.
	// The floor is defined at the default-or-wider survivor window — an
	// explicit sub-default -rerank is a deliberate recall/speed trade the
	// operator asked to measure, so it gets a report, not an abort.
	sq8Recall := recall(exactRes, sq8Res)
	if (opt.Rerank <= 0 || opt.Rerank >= index.DefaultRerank) && sq8Recall < minSQ8Recall {
		return nil, fmt.Errorf("experiments: SQ8 recall@%d is %.4f (< %.2f): quantized tier is broken",
			opt.TopK, sq8Recall, minSQ8Recall)
	}
	// The binary16 tier has no re-rank to lean on, so its floor is
	// unconditional: a run below it must fail, not publish a fast number.
	// The gate counts missed slots against the floor's binomial allowance
	// (see fp16MissAllowance) rather than comparing the ratio sharply —
	// the misses are boundary ties below fp16 resolution and wobble a few
	// slots per query sample, while real breakage overshoots by many σ.
	fp16Hits, fp16Slots := overlap(exactRes, fp16Res)
	fp16Recall := float64(fp16Hits) / float64(fp16Slots)
	if misses := fp16Slots - fp16Hits; misses > fp16MissAllowance(fp16Slots) {
		return nil, fmt.Errorf("experiments: fp16 recall@%d is %.4f (%d/%d slots missed, floor %.3f allows %d): binary16 tier is broken",
			opt.TopK, fp16Recall, misses, fp16Slots, minFP16Recall, fp16MissAllowance(fp16Slots))
	}

	b := &TopKBench{
		N: g.N, Edges: g.M(), D: g.D, K: opt.K,
		Queries: opt.Queries, TopK: opt.TopK,
		NList: st.NList, NProbe: st.NProbe, Rerank: st.Rerank,
		TrainSeconds: trainSec, IndexBuildSeconds: buildSec,
		ScanQPS: scanQPS, ExactQPS: exactQPS, IVFQPS: ivfQPS,
		SQ8QPS: sq8QPS, IVFSQQPS: ivfsqQPS,
		FP16QPS: fp16QPS, IVFFP16QPS: ivffpQPS,
		RecallAtK:            recall(exactRes, ivfRes),
		RecallFullProbe:      fullRecall,
		RecallSQ8:            sq8Recall,
		RecallIVFSQ:          recall(exactRes, ivfsqRes),
		RecallFP16:           fp16Recall,
		RecallIVFFP16:        recall(exactRes, ivffpRes),
		SpeedupExactVsScan:   exactQPS / scanQPS,
		SpeedupIVFVsScan:     ivfQPS / scanQPS,
		SpeedupSQ8VsScan:     sq8QPS / scanQPS,
		SpeedupIVFSQVsScan:   ivfsqQPS / scanQPS,
		SpeedupFP16VsScan:    fp16QPS / scanQPS,
		SpeedupIVFFP16VsScan: ivffpQPS / scanQPS,
		ScanAllocs:           scanAllocs,
		ExactAllocs:          exactAllocs,
		IVFAllocs:            ivfAllocs,
		SQ8Allocs:            sq8Allocs,
		IVFSQAllocs:          ivfsqAllocs,
		FP16Allocs:           fp16Allocs,
		IVFFP16Allocs:        ivffpAllocs,
		ScanLatency:          scanLat,
		ExactLatency:         exactLat,
		IVFLatency:           ivfLat,
		SQ8Latency:           sq8Lat,
		IVFSQLatency:         ivfsqLat,
		FP16Latency:          fp16Lat,
		IVFFP16Latency:       ivffpLat,
	}

	for _, s := range opt.ShardPoints {
		if s < 1 {
			continue
		}
		if s == 1 {
			// Already built and measured for the headline numbers; a
			// second identical engine would add nothing but build time.
			b.Sharding = append(b.Sharding, ShardScalingPoint{
				Shards: 1, IndexBuildSeconds: buildSec,
				ExactQPS: exactQPS, IVFQPS: ivfQPS, SQ8QPS: sq8QPS, FP16QPS: fp16QPS,
				RecallAtK: b.RecallAtK,
			})
			continue
		}
		se, sBuild, err := buildEngine(s)
		if err != nil {
			return nil, err
		}
		// Sharded exact, sharded sq8, and sharded fp16 must all reproduce
		// their single-shard answers bit for bit: exact because the merge
		// is a total order over disjoint ids, sq8 because the survivor cut
		// is global and per-row quantization is shard-invariant, fp16
		// because every score is final (per-element encoding needs no
		// cross-shard calibration).
		verify := func(label string, want, got [][]core.Scored) error {
			for i := range want {
				if len(got[i]) != len(want[i]) {
					return fmt.Errorf("experiments: shards=%d %s returned %d results for query %d, single-shard %d",
						s, label, len(got[i]), i, len(want[i]))
				}
				for j := range want[i] {
					if got[i][j] != want[i][j] {
						return fmt.Errorf("experiments: shards=%d %s diverges from single-shard at query %d rank %d: %v != %v",
							s, label, i, j, got[i][j], want[i][j])
					}
				}
			}
			return nil
		}
		sExactRes, sExactQPS, _, _ := timeQueries(topLinks(se, engine.ModeExact, 0, engine.BackendExact))
		if err := verify("exact", exactRes, sExactRes); err != nil {
			return nil, err
		}
		sSq8Res, sSq8QPS, _, _ := timeQueries(topLinks(se, engine.ModeSQ8, 0, engine.BackendSQ8))
		if err := verify("sq8", sq8Res, sSq8Res); err != nil {
			return nil, err
		}
		sFp16Res, sFp16QPS, _, _ := timeQueries(topLinks(se, engine.ModeFP16, 0, engine.BackendFP16))
		if err := verify("fp16", fp16Res, sFp16Res); err != nil {
			return nil, err
		}
		sIvfRes, sIvfQPS, _, _ := timeQueries(topLinks(se, engine.ModeIVF, 0, engine.BackendIVF))
		b.Sharding = append(b.Sharding, ShardScalingPoint{
			Shards:            s,
			IndexBuildSeconds: sBuild,
			ExactQPS:          sExactQPS,
			IVFQPS:            sIvfQPS,
			SQ8QPS:            sSq8QPS,
			FP16QPS:           sFp16QPS,
			RecallAtK:         recall(exactRes, sIvfRes),
		})
	}
	return b, nil
}

// PrintTopK renders the comparison as a table.
func PrintTopK(w io.Writer, b *TopKBench) {
	fmt.Fprintf(w, "Top-k serving: n=%d m=%d d=%d k=%d, %d queries, top-%d (nlist=%d nprobe=%d rerank=%d)\n",
		b.N, b.Edges, b.D, b.K, b.Queries, b.TopK, b.NList, b.NProbe, b.Rerank)
	fmt.Fprintf(w, "train %.1fs, index build %.1fs, full-probe recall %.3f\n",
		b.TrainSeconds, b.IndexBuildSeconds, b.RecallFullProbe)
	// latCols renders a path's p50/p95/p99 (ms); a report written before
	// the latency fields existed prints dashes instead of zeros.
	latCols := func(l *obs.LatencySummary) string {
		if l == nil {
			return fmt.Sprintf("%9s %9s %9s", "-", "-", "-")
		}
		return fmt.Sprintf("%9.3f %9.3f %9.3f", l.P50, l.P95, l.P99)
	}
	fmt.Fprintf(w, "%-22s %12s %10s %10s %12s %9s %9s %9s\n", "path", "QPS", "speedup", "recall", "allocs/op", "p50(ms)", "p95(ms)", "p99(ms)")
	fmt.Fprintf(w, "%-22s %12.1f %10s %10s %12.1f %s\n", "scan (PR-1 brute)", b.ScanQPS, "1.0x", "1.000", b.ScanAllocs, latCols(b.ScanLatency))
	fmt.Fprintf(w, "%-22s %12.1f %9.1fx %10s %12.1f %s\n", "index exact", b.ExactQPS, b.SpeedupExactVsScan, "1.000", b.ExactAllocs, latCols(b.ExactLatency))
	fmt.Fprintf(w, "%-22s %12.1f %9.1fx %10.3f %12.1f %s\n", "index ivf", b.IVFQPS, b.SpeedupIVFVsScan, b.RecallAtK, b.IVFAllocs, latCols(b.IVFLatency))
	fmt.Fprintf(w, "%-22s %12.1f %9.1fx %10.3f %12.1f %s\n", "index sq8", b.SQ8QPS, b.SpeedupSQ8VsScan, b.RecallSQ8, b.SQ8Allocs, latCols(b.SQ8Latency))
	fmt.Fprintf(w, "%-22s %12.1f %9.1fx %10.3f %12.1f %s\n", "index ivfsq", b.IVFSQQPS, b.SpeedupIVFSQVsScan, b.RecallIVFSQ, b.IVFSQAllocs, latCols(b.IVFSQLatency))
	if b.FP16QPS > 0 {
		fmt.Fprintf(w, "%-22s %12.1f %9.1fx %10.4f %12.1f %s\n", "index fp16", b.FP16QPS, b.SpeedupFP16VsScan, b.RecallFP16, b.FP16Allocs, latCols(b.FP16Latency))
		fmt.Fprintf(w, "%-22s %12.1f %9.1fx %10.4f %12.1f %s\n", "index ivffp16", b.IVFFP16QPS, b.SpeedupIVFFP16VsScan, b.RecallIVFFP16, b.IVFFP16Allocs, latCols(b.IVFFP16Latency))
	}
	if len(b.Sharding) > 0 {
		fmt.Fprintf(w, "\nShard scaling (exact, sq8, and fp16 verified bit-for-bit against S=1):\n")
		fmt.Fprintf(w, "%-8s %14s %12s %12s %12s %12s %10s\n", "shards", "build (s)", "exact QPS", "ivf QPS", "sq8 QPS", "fp16 QPS", "recall")
		for _, p := range b.Sharding {
			fmt.Fprintf(w, "%-8d %14.2f %12.1f %12.1f %12.1f %12.1f %10.3f\n",
				p.Shards, p.IndexBuildSeconds, p.ExactQPS, p.IVFQPS, p.SQ8QPS, p.FP16QPS, p.RecallAtK)
		}
	}
}

// WriteTopKJSON writes the comparison to path as indented JSON.
func WriteTopKJSON(path string, b *TopKBench) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadTopKJSON loads a report written by WriteTopKJSON — typically the
// committed baseline a CI run gates against.
func ReadTopKJSON(path string) (*TopKBench, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	b := &TopKBench{}
	if err := json.Unmarshal(data, b); err != nil {
		return nil, fmt.Errorf("experiments: parsing baseline %s: %w", path, err)
	}
	return b, nil
}

// CheckTopKBaseline is the CI perf-regression gate: it compares cur
// against a committed baseline and returns an error when IVF, SQ8, or
// IVFSQ throughput or recall@k regressed by more than tol (a fraction,
// e.g. 0.25). SQ8 and fp16 recall additionally have their absolute
// floors (minSQ8Recall, minFP16Recall), enforced when the run measured
// those tiers at all (RunTopK itself fails below the floors; the check
// here catches a hand-edited baseline or report).
//
// Recall is compared absolutely — it is hardware-independent. Throughput
// is compared via the scan-normalized speedup (backend QPS divided by the
// same run's brute-force QPS), never via raw QPS: the baseline was
// measured on whatever machine committed it, and dividing by the same
// run's scan path makes the runner's hardware drop out of the
// comparison. The trade-off — a regression that slows scan and the
// backends in lockstep hides in the ratio — is what keeps the gate
// deterministic on arbitrary CI runners. Quantized speedups are only
// gated when the baseline recorded them, so a pre-quantization baseline
// keeps working.
func CheckTopKBaseline(cur, base *TopKBench, tol float64) error {
	if tol < 0 {
		return fmt.Errorf("experiments: negative tolerance %v", tol)
	}
	var failures []string
	if cur.RecallAtK < base.RecallAtK-tol {
		failures = append(failures, fmt.Sprintf("recall@%d %.3f fell more than %.2f below baseline %.3f",
			cur.TopK, cur.RecallAtK, tol, base.RecallAtK))
	}
	if cur.SQ8QPS > 0 && cur.RecallSQ8 < minSQ8Recall {
		failures = append(failures, fmt.Sprintf("sq8 recall@%d %.4f is below the %.2f floor",
			cur.TopK, cur.RecallSQ8, minSQ8Recall))
	}
	// Like RunTopK's own gate, the fp16 floor is enforced on the
	// reconstructed miss count against the binomial allowance; the +0.5
	// absorbs float rounding in the reconstruction.
	if slots := cur.Queries * cur.TopK; cur.FP16QPS > 0 && slots > 0 &&
		(1-cur.RecallFP16)*float64(slots) > float64(fp16MissAllowance(slots))+0.5 {
		failures = append(failures, fmt.Sprintf("fp16 recall@%d %.4f is below the %.3f floor (allowance %d/%d slots)",
			cur.TopK, cur.RecallFP16, minFP16Recall, fp16MissAllowance(slots), slots))
	}
	speedups := []struct {
		name      string
		cur, base float64
	}{
		{"IVF", cur.SpeedupIVFVsScan, base.SpeedupIVFVsScan},
		{"SQ8", cur.SpeedupSQ8VsScan, base.SpeedupSQ8VsScan},
		{"IVFSQ", cur.SpeedupIVFSQVsScan, base.SpeedupIVFSQVsScan},
		{"FP16", cur.SpeedupFP16VsScan, base.SpeedupFP16VsScan},
		{"IVFFP16", cur.SpeedupIVFFP16VsScan, base.SpeedupIVFFP16VsScan},
	}
	for _, s := range speedups {
		if s.base > 0 && s.cur < s.base*(1-tol) {
			failures = append(failures, fmt.Sprintf("%s speedup-vs-scan %.2fx dropped more than %.0f%% below baseline %.2fx",
				s.name, s.cur, tol*100, s.base))
		}
	}
	if len(failures) == 0 {
		return nil
	}
	msg := "experiments: top-k perf regression vs baseline:"
	for _, f := range failures {
		msg += "\n  - " + f
	}
	return fmt.Errorf("%s", msg)
}
