package experiments

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func updateBench() *UpdateBench {
	return &UpdateBench{
		N: 2000, D: 30, K: 16, Shards: 2,
		IncrementalRefreshes: 8, FullRebuilds: 2,
		AffinityIncremental: 6, AffinityFull: 1,
		Points: []UpdatePoint{
			{DeltaEdges: 10, SpeedupModel: 30, SpeedupIndex: 20, SpeedupTotal: 4},
			{DeltaEdges: 100, SpeedupModel: 15, SpeedupIndex: 10, SpeedupTotal: 3},
		},
	}
}

func TestCheckUpdateBaselinePasses(t *testing.T) {
	base := updateBench()
	cur := updateBench()
	cur.Points[0].SpeedupIndex = 16 // -20%, within 25%
	cur.Points[1].SpeedupTotal = 2.5
	if err := CheckUpdateBaseline(cur, base, 0.25); err != nil {
		t.Fatalf("in-tolerance run rejected: %v", err)
	}
	// A point the baseline never measured is not compared.
	cur.Points = append(cur.Points, UpdatePoint{DeltaEdges: 9999, SpeedupIndex: 0.1, SpeedupTotal: 0.1})
	if err := CheckUpdateBaseline(cur, base, 0.25); err != nil {
		t.Fatalf("unmatched point compared: %v", err)
	}
}

func TestCheckUpdateBaselineCatchesRegressions(t *testing.T) {
	base := updateBench()
	cur := updateBench()
	cur.Points[0].SpeedupIndex = 5 // -75%
	err := CheckUpdateBaseline(cur, base, 0.25)
	if err == nil || !strings.Contains(err.Error(), "index speedup") {
		t.Fatalf("index regression not caught: %v", err)
	}
	cur = updateBench()
	cur.Points[1].SpeedupModel = 5 // -67%
	err = CheckUpdateBaseline(cur, base, 0.25)
	if err == nil || !strings.Contains(err.Error(), "model speedup") {
		t.Fatalf("model regression not caught: %v", err)
	}
	cur = updateBench()
	cur.IncrementalRefreshes = 0
	if err := CheckUpdateBaseline(cur, base, 0.25); err == nil {
		t.Fatal("dead incremental pipeline not caught")
	}
	cur = updateBench()
	cur.AffinityIncremental = 0
	if err := CheckUpdateBaseline(cur, base, 0.25); err == nil {
		t.Fatal("dead model-side delta path not caught")
	}
	// A delta-set drift (no matching points at all) must fail, not pass
	// vacuously.
	cur = updateBench()
	for i := range cur.Points {
		cur.Points[i].DeltaEdges += 7
	}
	err = CheckUpdateBaseline(cur, base, 0.25)
	if err == nil || !strings.Contains(err.Error(), "compared no points") {
		t.Fatalf("vacuous gate not caught: %v", err)
	}
	if err := CheckUpdateBaseline(updateBench(), base, -1); err == nil {
		t.Fatal("negative tolerance accepted")
	}
}

// TestRunUpdateSmoke runs the whole sweep on a small graph: the report
// must round-trip through JSON, and its internal integrity checks (all
// cycles incremental, refreshed index equals a fresh build) must hold.
func TestRunUpdateSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("update sweep in -short mode")
	}
	b, err := RunUpdate(UpdateOptions{
		N: 1500, D: 30, K: 16, Threads: 2, Seed: 7, Shards: 2,
		Deltas: []int{5, 25}, Repeats: 1, Queries: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Points) != 2 || b.Points[0].DirtyRows == 0 {
		t.Fatalf("report %+v", b)
	}
	if b.IncrementalRefreshes == 0 || b.FullRebuilds != 2 {
		t.Fatalf("counters %+v", b)
	}
	if b.AffinityIncremental == 0 || b.AffinityFull == 0 {
		t.Fatalf("affinity counters %+v", b)
	}
	if b.AttrEntries == 0 || b.AttrRecall < 0.999 {
		t.Fatalf("attr phase %+v", b)
	}
	for _, p := range b.Points {
		sum := p.IncrAffinitySeconds + p.IncrCCDSeconds + p.IncrTransformSeconds
		if d := sum - p.IncrModelSeconds; d > 1e-9 || d < -1e-9 {
			t.Fatalf("Δ=%d phase split %.9f does not sum to model time %.9f", p.DeltaEdges, sum, p.IncrModelSeconds)
		}
	}
	var buf bytes.Buffer
	PrintUpdate(&buf, b)
	if !strings.Contains(buf.String(), "Update-to-fresh-index") {
		t.Fatalf("print output:\n%s", buf.String())
	}
	path := filepath.Join(t.TempDir(), "u.json")
	if err := WriteUpdateJSON(path, b); err != nil {
		t.Fatal(err)
	}
	back, err := ReadUpdateJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckUpdateBaseline(back, b, 0.0); err != nil {
		t.Fatalf("round-tripped report fails its own gate: %v", err)
	}
}
