package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"time"

	"pane/internal/engine"
	"pane/internal/index"
	"pane/internal/mat"
)

// KernelOptions configures the compute-kernel microbenchmark of
// RunKernel. Zero values pick the defaults noted per field.
type KernelOptions struct {
	Dims    []int         // vector lengths / square GEMM sizes; nil → {32, 64, 128, 256}
	Seed    int64         // 0 → 1
	MinTime time.Duration // minimum timed window per cell; 0 → 50ms
}

// KernelCell is one (op, dim) measurement: the portable kernel and the
// dispatched kernel timed on the same inputs in the same process.
type KernelCell struct {
	Op  string `json:"op"`
	Dim int    `json:"dim"`
	// Nominal bytes touched per call (inputs + outputs at their storage
	// width), the numerator of the GB/s columns. For gemm this is the
	// algorithmic 3·8·d² footprint, not actual cache traffic.
	Bytes        int     `json:"bytes"`
	GenericNsOp  float64 `json:"generic_ns_op"`
	DispatchNsOp float64 `json:"dispatch_ns_op"`
	GenericGBs   float64 `json:"generic_gb_s"`
	DispatchGBs  float64 `json:"dispatch_gb_s"`
	// Speedup is generic_ns_op / dispatch_ns_op — a same-machine,
	// same-run ratio, so it survives being compared across hosts the way
	// the top-k gate's scan-normalized speedups do.
	Speedup float64 `json:"speedup"`
}

// KernelBench is the kernel microbenchmark report emitted as
// BENCH_kernel.json by `benchexp -exp kernel`: per-op dispatch decisions
// plus the generic-vs-dispatched timing grid.
type KernelBench struct {
	// ISAs records what every kernel dispatched to on the measuring
	// build and host (engine.KernelDispatch: dot/axpy/gemm/sq8dot/fp16dot
	// → generic|avx2|neon).
	ISAs  map[string]string `json:"isas"`
	Cells []KernelCell      `json:"cells"`
}

// kernelSink keeps the timed loops' results observable so the compiler
// cannot hoist or eliminate the kernel calls.
var kernelSink float64

// RunKernel times the four scan kernels (float64 dot, blocked GEMM,
// int8 dot, fp16 decode-and-accumulate) at each dim, portable vs
// dispatched, on deterministic pseudo-random inputs. It fails (rather
// than reporting a meaningless grid) when a dispatched kernel disagrees
// with its portable twin — the bit-identity contract the index tiers are
// built on, checked here one more time on the bench's own inputs.
func RunKernel(opt KernelOptions) (*KernelBench, error) {
	if opt.Dims == nil {
		opt.Dims = []int{32, 64, 128, 256}
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	if opt.MinTime <= 0 {
		opt.MinTime = 50 * time.Millisecond
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	// measure returns ns per call, growing the iteration count until the
	// timed window reaches MinTime so one scheduler blip cannot dominate.
	measure := func(f func()) float64 {
		f() // warm caches and any lazy paths before timing
		iters := 1
		for {
			t0 := time.Now()
			for i := 0; i < iters; i++ {
				f()
			}
			el := time.Since(t0)
			if el >= opt.MinTime {
				return float64(el.Nanoseconds()) / float64(iters)
			}
			next := iters * 100
			if el > 0 {
				next = int(float64(iters) * 1.5 * float64(opt.MinTime) / float64(el))
			}
			if next <= iters {
				next = iters * 2
			}
			iters = next
		}
	}

	b := &KernelBench{ISAs: engine.KernelDispatch()}
	for _, d := range opt.Dims {
		if d <= 0 {
			return nil, fmt.Errorf("experiments: non-positive kernel dim %d", d)
		}
		av := make([]float64, d)
		bv := make([]float64, d)
		ai := make([]int8, d)
		bi := make([]int8, d)
		for i := 0; i < d; i++ {
			av[i] = rng.NormFloat64()
			bv[i] = rng.NormFloat64()
			ai[i] = int8(rng.Intn(255) - 127)
			bi[i] = int8(rng.Intn(255) - 127)
		}
		ch := index.EncodeFP16Rows(mat.FromRows([][]float64{bv}))
		am := mat.New(d, d)
		bm := mat.New(d, d)
		for i := range am.Data {
			am.Data[i] = rng.NormFloat64()
			bm.Data[i] = rng.NormFloat64()
		}
		dst := mat.New(d, d)
		dstG := mat.New(d, d)

		// Bit-identity spot check on the bench's own inputs before the
		// numbers are worth printing.
		if g, s := mat.DotGeneric(av, bv), mat.Dot(av, bv); g != s {
			return nil, fmt.Errorf("experiments: dot dispatch diverges from generic at dim %d: %v != %v", d, s, g)
		}
		if g, s := index.DotI8Generic(ai, bi), index.DotI8(ai, bi); g != s {
			return nil, fmt.Errorf("experiments: sq8dot dispatch diverges from generic at dim %d: %d != %d", d, s, g)
		}
		if g, s := index.DotFP16Generic(av, ch), index.DotFP16(av, ch); g != s {
			return nil, fmt.Errorf("experiments: fp16dot dispatch diverges from generic at dim %d: %v != %v", d, s, g)
		}
		mat.MulIntoGeneric(dstG, am, bm)
		mat.MulInto(dst, am, bm)
		for i := range dst.Data {
			if dst.Data[i] != dstG.Data[i] {
				return nil, fmt.Errorf("experiments: gemm dispatch diverges from generic at dim %d element %d: %v != %v",
					d, i, dst.Data[i], dstG.Data[i])
			}
		}

		cell := func(op string, bytes int, generic, dispatch func()) {
			gNs := measure(generic)
			sNs := measure(dispatch)
			b.Cells = append(b.Cells, KernelCell{
				Op: op, Dim: d, Bytes: bytes,
				GenericNsOp: gNs, DispatchNsOp: sNs,
				GenericGBs:  float64(bytes) / gNs,
				DispatchGBs: float64(bytes) / sNs,
				Speedup:     gNs / sNs,
			})
		}
		cell("dot", 16*d,
			func() { kernelSink += mat.DotGeneric(av, bv) },
			func() { kernelSink += mat.Dot(av, bv) })
		cell("gemm", 3*8*d*d,
			func() { mat.MulIntoGeneric(dst, am, bm); kernelSink += dst.Data[0] },
			func() { mat.MulInto(dst, am, bm); kernelSink += dst.Data[0] })
		cell("sq8dot", 2*d,
			func() { kernelSink += float64(index.DotI8Generic(ai, bi)) },
			func() { kernelSink += float64(index.DotI8(ai, bi)) })
		cell("fp16dot", 10*d,
			func() { kernelSink += index.DotFP16Generic(av, ch) },
			func() { kernelSink += index.DotFP16(av, ch) })
	}
	return b, nil
}

// PrintKernel renders the microbenchmark grid as a table.
func PrintKernel(w io.Writer, b *KernelBench) {
	ops := make([]string, 0, len(b.ISAs))
	for op := range b.ISAs {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	fmt.Fprintf(w, "Kernel dispatch:")
	for _, op := range ops {
		fmt.Fprintf(w, " %s=%s", op, b.ISAs[op])
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-10s %6s %14s %14s %10s %12s\n", "op", "dim", "generic ns", "dispatch ns", "speedup", "GB/s")
	for _, c := range b.Cells {
		fmt.Fprintf(w, "%-10s %6d %14.1f %14.1f %9.2fx %12.2f\n",
			c.Op, c.Dim, c.GenericNsOp, c.DispatchNsOp, c.Speedup, c.DispatchGBs)
	}
}

// WriteKernelJSON writes the report to path as indented JSON.
func WriteKernelJSON(path string, b *KernelBench) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadKernelJSON loads a report written by WriteKernelJSON — typically
// the committed baseline a CI run gates against.
func ReadKernelJSON(path string) (*KernelBench, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	b := &KernelBench{}
	if err := json.Unmarshal(data, b); err != nil {
		return nil, fmt.Errorf("experiments: parsing baseline %s: %w", path, err)
	}
	return b, nil
}

// CheckKernelBaseline is the kernel-tier CI gate. Two checks:
//
//   - Dispatch regression: an op the baseline ran vectorized (avx2/neon)
//     that the current run dispatches to "generic" fails outright — a
//     build-tag or CPU-detection regression silently costs more than any
//     timing wobble, and the ratio gate below would not see it (the
//     generic/generic ratio is a healthy-looking 1.0x).
//   - Speedup regression: per (op, dim) cell present in both reports,
//     the same-run generic/dispatched ratio must stay within tol of the
//     baseline's. The ratio is same-machine by construction, so the
//     baseline's host drops out; tol is generous (CI passes 0.5) because
//     microbenchmark ratios wobble more than end-to-end QPS.
//
// Cells only the baseline has (a dim the current run skipped) are
// ignored; a baseline without SIMD (generic ISAs) gates nothing, so the
// noasm build can run the bench without tripping its own gate.
func CheckKernelBaseline(cur, base *KernelBench, tol float64) error {
	if tol < 0 {
		return fmt.Errorf("experiments: negative tolerance %v", tol)
	}
	var failures []string
	for op, baseISA := range base.ISAs {
		if baseISA != "generic" && cur.ISAs[op] == "generic" {
			failures = append(failures, fmt.Sprintf("%s dispatch regressed to generic (baseline ran %s)", op, baseISA))
		}
	}
	baseCells := make(map[[2]interface{}]KernelCell, len(base.Cells))
	for _, c := range base.Cells {
		baseCells[[2]interface{}{c.Op, c.Dim}] = c
	}
	for _, c := range cur.Cells {
		bc, ok := baseCells[[2]interface{}{c.Op, c.Dim}]
		if !ok || bc.Speedup <= 1 {
			continue
		}
		if cur.ISAs[c.Op] == "generic" {
			// Already reported above as a dispatch regression (or the
			// baseline was generic too and bc.Speedup ≤ 1 skipped it);
			// a generic/generic timing ratio carries no extra signal.
			continue
		}
		if c.Speedup < bc.Speedup*(1-tol) {
			failures = append(failures, fmt.Sprintf("%s dim=%d speedup %.2fx dropped more than %.0f%% below baseline %.2fx",
				c.Op, c.Dim, c.Speedup, tol*100, bc.Speedup))
		}
	}
	if len(failures) == 0 {
		return nil
	}
	msg := "experiments: kernel perf regression vs baseline:"
	for _, f := range failures {
		msg += "\n  - " + f
	}
	return fmt.Errorf("%s", msg)
}
