package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// fastOpts keeps experiment tests quick: tiny k, few threads.
func fastOpts() Options {
	return Options{K: 32, Alpha: 0.5, Eps: 0.05, Threads: 4, Seed: 1}
}

func TestRunTable2QualitativeStructure(t *testing.T) {
	rows := RunTable2()
	if len(rows) != 6 {
		t.Fatalf("%d rows, want 6", len(rows))
	}
	// v1's strongest affinity is r1 both ways (§2.3).
	if rows[0].Forward[0] <= rows[0].Forward[2] || rows[0].Back[0] <= rows[0].Back[2] {
		t.Fatalf("v1 affinities inconsistent with the running example: %+v", rows[0])
	}
	var buf bytes.Buffer
	PrintTable2(&buf, rows)
	if !strings.Contains(buf.String(), "Xf[v1") {
		t.Fatal("PrintTable2 output malformed")
	}
}

func TestRunTable3(t *testing.T) {
	rows, err := RunTable3([]string{"cora", "citeseer"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Stats.Nodes != 2700 {
		t.Fatalf("unexpected rows: %+v", rows)
	}
	var buf bytes.Buffer
	PrintTable3(&buf, rows)
	if !strings.Contains(buf.String(), "cora") {
		t.Fatal("PrintTable3 output malformed")
	}
}

func TestRunTable4PANEWins(t *testing.T) {
	rows, err := RunTable4([]string{"cora"}, fastOpts(), 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	scores := map[string]MethodScore{}
	for _, s := range rows[0].Scores {
		scores[s.Method] = s
	}
	pane := scores["PANE(single)"]
	if pane.Skipped || pane.AUC < 0.6 {
		t.Fatalf("PANE attribute inference AUC = %v", pane.AUC)
	}
	// Headline claim of Table 4: PANE beats both baselines.
	for _, m := range []string{"BLA", "CAN(lite)"} {
		if b := scores[m]; !b.Skipped && b.AUC >= pane.AUC {
			t.Fatalf("%s AUC %v >= PANE %v — Table 4 ordering violated", m, b.AUC, pane.AUC)
		}
	}
	// Parallel close to single thread (§5.2).
	par := scores["PANE(parallel)"]
	if par.Skipped || pane.AUC-par.AUC > 0.05 {
		t.Fatalf("parallel PANE AUC %v too far below single %v", par.AUC, pane.AUC)
	}
}

func TestRunTable4SkipsBigDatasets(t *testing.T) {
	rows, err := RunTable4([]string{"cora"}, fastOpts(), 10) // everything is "big"
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range rows[0].Scores {
		switch s.Method {
		case "BLA", "CAN(lite)":
			if !s.Skipped {
				t.Fatalf("%s should be skipped above the cutoff", s.Method)
			}
		default:
			if s.Skipped {
				t.Fatalf("PANE must never be skipped: %+v", s)
			}
		}
	}
}

func TestRunTable5PANECompetitive(t *testing.T) {
	rows, err := RunTable5([]string{"cora"}, fastOpts(), 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	scores := map[string]MethodScore{}
	for _, s := range rows[0].Scores {
		scores[s.Method] = s
	}
	pane := scores["PANE(single)"]
	if pane.Skipped || pane.AUC < 0.65 {
		t.Fatalf("PANE link AUC = %v", pane.AUC)
	}
	// PANE must beat the quantized and attribute-only baselines.
	for _, m := range []string{"BANE", "LQANR", "CAN(lite)"} {
		if b := scores[m]; !b.Skipped && b.AUC > pane.AUC+0.02 {
			t.Fatalf("%s AUC %v beats PANE %v — Table 5 ordering violated", m, b.AUC, pane.AUC)
		}
	}
	var buf bytes.Buffer
	PrintMethodTable(&buf, "Table 5", rows)
	if !strings.Contains(buf.String(), "PANE") {
		t.Fatal("PrintMethodTable output malformed")
	}
}

func TestRunFig2(t *testing.T) {
	rows, err := RunFig2([]string{"cora"}, []float64{0.5}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatal("want one dataset panel")
	}
	var paneF1, nrpF1 float64
	for _, p := range rows[0].Points {
		if p.Method == "PANE(single)" {
			paneF1 = p.MicroF1
		}
		if p.Method == "NRP" {
			nrpF1 = p.MicroF1
		}
		if p.MicroF1 < 0 || p.MicroF1 > 1 || p.MacroF1 < 0 || p.MacroF1 > 1 {
			t.Fatalf("F1 out of range: %+v", p)
		}
	}
	// Fig 2's headline: PANE above the homogeneous baseline (attributes
	// carry label signal NRP cannot see).
	if paneF1 <= nrpF1 {
		t.Fatalf("PANE Micro-F1 %v not above NRP %v", paneF1, nrpF1)
	}
	var buf bytes.Buffer
	PrintFig2(&buf, rows)
	if !strings.Contains(buf.String(), "PANE") {
		t.Fatal("PrintFig2 output malformed")
	}
}

func TestRunFig3(t *testing.T) {
	rows, err := RunFig3([]string{"cora"}, fastOpts(), 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("want 9 method timings, got %d", len(rows))
	}
	for _, r := range rows {
		if !r.Skipped && r.Elapsed <= 0 {
			t.Fatalf("non-positive timing: %+v", r)
		}
	}
}

func TestRunFig4Sweeps(t *testing.T) {
	opt := fastOpts()
	sp, err := RunFig4a([]string{"cora"}, []int{1, 2}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(sp) != 2 || sp[0].Speedup != 1 {
		t.Fatalf("fig4a rows: %+v", sp)
	}
	kb, err := RunFig4b([]string{"cora"}, []int{16, 32}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(kb) != 2 {
		t.Fatal("fig4b rows wrong")
	}
	ec, err := RunFig4c([]string{"cora"}, []float64{0.25, 0.05}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(ec) != 2 {
		t.Fatal("fig4c rows wrong")
	}
	// Smaller ε → more iterations → at least as slow, modulo noise; just
	// require positive timings here (the bench asserts the trend).
	for _, r := range ec {
		if r.Elapsed <= 0 {
			t.Fatal("non-positive timing")
		}
	}
}

func TestRunFig56Sweep(t *testing.T) {
	attr, link, err := RunFig56([]string{"cora"}, "k", []float64{16, 32}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(attr) != 2 || len(link) != 2 {
		t.Fatalf("want 2 points per task, got %d/%d", len(attr), len(link))
	}
	for _, p := range append(attr, link...) {
		if p.AUC < 0.4 || p.AUC > 1 {
			t.Fatalf("implausible AUC %v", p.AUC)
		}
	}
	if _, _, err := RunFig56([]string{"cora"}, "bogus", []float64{1}, fastOpts()); err == nil {
		t.Fatal("unknown parameter accepted")
	}
}

func TestRunFig78GreedyBeatsRandomEarly(t *testing.T) {
	link, attr, err := RunFig78([]string{"cora"}, []int{1}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	byVariant := func(rows []InitPoint) map[string]InitPoint {
		m := map[string]InitPoint{}
		for _, r := range rows {
			m[r.Variant] = r
		}
		return m
	}
	l := byVariant(link)
	if l["PANE"].AUC < l["PANE-R"].AUC {
		t.Fatalf("Fig 7: greedy %v below random %v at t=1", l["PANE"].AUC, l["PANE-R"].AUC)
	}
	a := byVariant(attr)
	if a["PANE"].AUC < a["PANE-R"].AUC {
		t.Fatalf("Fig 8: greedy %v below random %v at t=1", a["PANE"].AUC, a["PANE-R"].AUC)
	}
}
