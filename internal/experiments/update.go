package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"pane/internal/core"
	"pane/internal/datagen"
	"pane/internal/engine"
	"pane/internal/graph"
	"pane/internal/obs"
)

// UpdateOptions configures the update-to-fresh-index comparison of
// RunUpdate. Zero values pick the defaults noted per field.
type UpdateOptions struct {
	N       int   // nodes; 0 → 100000
	D       int   // attributes; 0 → 100
	K       int   // space budget; 0 → 128
	Threads int   // 0 → 1
	Seed    int64 // 0 → 1
	Shards  int   // serving shards; 0 → 4
	// Deltas are the edge-batch sizes of the sweep; nil → {100, 1000,
	// 10000}.
	Deltas []int
	// Repeats is the number of timed repetitions per point (minimum
	// taken); 0 → 2.
	Repeats int
	// Queries is the number of correctness-check queries; 0 → 50.
	Queries int
}

// UpdatePoint is one row of the delta sweep: the same edge batch applied
// through the full path (full affinity recompute + full warm-start
// sweeps + per-shard full index rebuilds) and the delta path
// (frontier-restricted recurrence patch + restricted sweeps +
// incremental per-shard refresh), timed end to end. ModelSeconds is the
// ApplyEdges call (graph merge, affinity work, warm-start refinement,
// publish); IndexSeconds the time from publish until every shard serves
// the new version — the update-to-fresh-index latency the delta pipeline
// exists to shrink. The incremental model time is further broken into
// its three phases: affinity (frontier BFS + recurrence patch), CCD
// (warm-start coordinate descent), and transform (everything else —
// graph merge, factor transforms, publish).
type UpdatePoint struct {
	DeltaEdges int `json:"delta_edges"`
	DirtyRows  int `json:"dirty_rows"` // distinct node rows the batch touches

	FullModelSeconds float64 `json:"full_model_seconds"`
	FullIndexSeconds float64 `json:"full_index_seconds"`
	FullTotalSeconds float64 `json:"full_total_seconds"`
	IncrModelSeconds float64 `json:"incr_model_seconds"`
	IncrIndexSeconds float64 `json:"incr_index_seconds"`
	IncrTotalSeconds float64 `json:"incr_total_seconds"`

	// Incremental model-phase split (sums to IncrModelSeconds).
	IncrAffinitySeconds  float64 `json:"incr_affinity_seconds"`
	IncrCCDSeconds       float64 `json:"incr_ccd_seconds"`
	IncrTransformSeconds float64 `json:"incr_transform_seconds"`
	// AffinityIncremental reports whether the point's recurrence was
	// patched over the delta frontier (false = frontier exceeded the
	// budget and the engine fell back to a full recurrence pass).
	AffinityIncremental bool `json:"affinity_incremental"`
	// AffinityFrontier is the forward+backward frontier row count of the
	// recurrence patch.
	AffinityFrontier int `json:"affinity_frontier"`

	// SpeedupModel is full/incremental ApplyEdges latency; SpeedupIndex
	// full/incremental update-to-fresh-index latency; SpeedupTotal the
	// same for the whole update.
	SpeedupModel float64 `json:"speedup_model"`
	SpeedupIndex float64 `json:"speedup_index"`
	SpeedupTotal float64 `json:"speedup_total"`

	// IncrLatency summarizes the point's per-repeat incremental
	// update-to-fresh-index totals (every repeat, where the *Seconds
	// fields above keep only the minimum), recorded into the same
	// obs.Histogram type the live server scrapes. Pointer with omitempty
	// so pre-existing baselines still parse (CheckUpdateBaseline never
	// reads it).
	IncrLatency *obs.LatencySummary `json:"incr_latency_ms,omitempty"`
}

// UpdateBench is the measured comparison emitted as BENCH_update.json by
// `benchexp -exp update`.
type UpdateBench struct {
	N            int     `json:"n"`
	Edges        int     `json:"edges"`
	D            int     `json:"d"`
	K            int     `json:"k"`
	Shards       int     `json:"shards"`
	TrainSeconds float64 `json:"train_seconds"`
	// IndexBuildSeconds is the initial full build both engines start from.
	IndexBuildSeconds float64       `json:"index_build_seconds"`
	Points            []UpdatePoint `json:"points"`
	// Final healthz counters of the incremental engine: every post-initial
	// shard cycle must have been served incrementally.
	IncrementalRefreshes uint64 `json:"incremental_refreshes"`
	FullRebuilds         uint64 `json:"full_rebuilds"`
	// Model-side counters of the incremental engine (the affinity section
	// of /healthz): recurrence passes by kind across the whole run.
	AffinityIncremental uint64 `json:"affinity_incremental"`
	AffinityFull        uint64 `json:"affinity_full"`

	// Attribute-delta phase: one node-attribute batch absorbed by the
	// low-rank link-space correction instead of a full shard rebuild.
	AttrEntries          int     `json:"attr_entries"`
	AttrAttrs            int     `json:"attr_attrs"` // distinct attributes touched
	AttrFullTotalSeconds float64 `json:"attr_full_total_seconds"`
	AttrIncrTotalSeconds float64 `json:"attr_incr_total_seconds"`
	// AttrRecall is the incremental engine's mean top-10 link recall after
	// the gram-corrected refresh, against a fresh index built around its
	// own model; the run fails below 0.999.
	AttrRecall float64 `json:"attr_recall"`
}

// RunUpdate generates a community graph, trains one model, and wraps it
// in two engines with identical index stacks (exact + IVF + quantized
// tiers over Shards shards): one pinned to the full update path (refresh
// and affinity thresholds 0) and one to the delta path (both 1). Each
// sweep point applies the same random edge batches to both and times
// update-to-fresh-index latency; a final node-attribute batch exercises
// the gram-corrected link refresh. The run fails — rather than reporting
// a misleading number — when the incremental engine's refreshed index
// does not answer exactly like a from-scratch build around its own model
// after the edge sweep, or within the 0.999 top-10 recall floor after
// the attribute batch.
func RunUpdate(opt UpdateOptions) (*UpdateBench, error) {
	if opt.N <= 0 {
		opt.N = 100000
	}
	if opt.D <= 0 {
		opt.D = 100
	}
	if opt.K <= 0 {
		opt.K = 128
	}
	if opt.Threads <= 0 {
		opt.Threads = 1
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	if opt.Shards <= 0 {
		opt.Shards = 4
	}
	if opt.Deltas == nil {
		opt.Deltas = []int{100, 1000, 10000}
	}
	if opt.Repeats <= 0 {
		opt.Repeats = 2
	}
	if opt.Queries <= 0 {
		opt.Queries = 50
	}

	g, err := datagen.Generate(datagen.Config{
		Name: "updatebench", N: opt.N, AvgOutDeg: 8, D: opt.D, AttrsPer: 6,
		Communities: 50, Seed: opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	cfg := core.Config{K: opt.K, Alpha: 0.5, Eps: 0.25, Threads: opt.Threads, Seed: opt.Seed}
	start := time.Now()
	emb, err := core.ParallelPANE(g, cfg)
	if err != nil {
		return nil, err
	}
	trainSec := time.Since(start).Seconds()

	idxCfg := engine.IndexConfig{IVF: true, Quantize: true, Shards: opt.Shards}
	// lastStats captures the incremental engine's per-update stats; the
	// observer runs synchronously inside Apply*, so the value is final by
	// the time the call returns.
	var lastStats engine.UpdateStats
	build := func(threshold float64, extra ...engine.Option) (*engine.Engine, float64, error) {
		t0 := time.Now()
		opts := append([]engine.Option{
			engine.WithIndex(idxCfg),
			engine.WithRefreshThreshold(threshold),
			engine.WithAffinityThreshold(threshold),
		}, extra...)
		eng, err := engine.New(g, emb, cfg, opts...)
		return eng, time.Since(t0).Seconds(), err
	}
	engFull, buildSec, err := build(0)
	if err != nil {
		return nil, err
	}
	engIncr, _, err := build(1, engine.WithUpdateObserver(func(s engine.UpdateStats) {
		lastStats = s
	}))
	if err != nil {
		return nil, err
	}

	// One timed update: apply the batch, then wait for every shard to
	// serve the new version.
	timeUpdate := func(eng *engine.Engine, edges []graph.Edge) (modelSec, indexSec float64, err error) {
		t0 := time.Now()
		if _, err := eng.ApplyEdges(edges); err != nil {
			return 0, 0, err
		}
		t1 := time.Now()
		eng.WaitForIndex()
		indexSec = time.Since(t1).Seconds()
		return t1.Sub(t0).Seconds(), indexSec, nil
	}

	b := &UpdateBench{
		N: g.N, Edges: g.M(), D: g.D, K: opt.K, Shards: opt.Shards,
		TrainSeconds: trainSec, IndexBuildSeconds: buildSec,
	}
	rng := rand.New(rand.NewSource(opt.Seed + 2))
	for _, delta := range opt.Deltas {
		if delta < 1 {
			continue
		}
		p := UpdatePoint{DeltaEdges: delta}
		// One batch per point, re-applied on every repeat: re-inserting an
		// existing edge still refines and republishes (the update cost does
		// not depend on graph novelty), so the minimum timings and the
		// reported dirty-row count all describe the same batch.
		edges := make([]graph.Edge, delta)
		touched := make(map[int]struct{}, 2*delta)
		for i := range edges {
			edges[i] = graph.Edge{Src: rng.Intn(g.N), Dst: rng.Intn(g.N)}
			touched[edges[i].Src] = struct{}{}
			touched[edges[i].Dst] = struct{}{}
		}
		p.DirtyRows = len(touched)
		incrH := obs.NewHistogram()
		for rep := 0; rep < opt.Repeats; rep++ {
			im, ii, err := timeUpdate(engIncr, edges)
			if err != nil {
				return nil, err
			}
			incrH.ObserveSeconds(im + ii)
			st := lastStats
			fm, fi, err := timeUpdate(engFull, edges)
			if err != nil {
				return nil, err
			}
			if rep == 0 || im+ii < p.IncrTotalSeconds {
				p.IncrModelSeconds, p.IncrIndexSeconds, p.IncrTotalSeconds = im, ii, im+ii
				p.IncrAffinitySeconds, p.IncrCCDSeconds = st.AffinitySeconds, st.CCDSeconds
				p.IncrTransformSeconds = im - st.AffinitySeconds - st.CCDSeconds
				p.AffinityIncremental = st.AffinityIncremental
				p.AffinityFrontier = st.AffinityFrontier
			}
			if rep == 0 || fm+fi < p.FullTotalSeconds {
				p.FullModelSeconds, p.FullIndexSeconds, p.FullTotalSeconds = fm, fi, fm+fi
			}
		}
		if p.IncrModelSeconds > 0 {
			p.SpeedupModel = p.FullModelSeconds / p.IncrModelSeconds
		}
		if p.IncrIndexSeconds > 0 {
			p.SpeedupIndex = p.FullIndexSeconds / p.IncrIndexSeconds
		}
		if p.IncrTotalSeconds > 0 {
			p.SpeedupTotal = p.FullTotalSeconds / p.IncrTotalSeconds
		}
		lat := incrH.SummaryMs()
		p.IncrLatency = &lat
		b.Points = append(b.Points, p)
	}

	// Report integrity. The incremental engine must (a) have served every
	// post-initial cycle incrementally, (b) answer bit-for-bit like a
	// fresh build around its own final model for exact and sq8, and (c)
	// degenerate to its exact answer at full IVF probe — the refreshed
	// inverted lists lost nobody.
	// Compare against the ACTUAL shard count (the layout may collapse to
	// fewer shards than requested on tiny graphs), not the requested one.
	st := engIncr.IndexStatus()
	b.IncrementalRefreshes = st.IncrementalRefreshes
	b.FullRebuilds = st.FullRebuilds
	if st.FullRebuilds != uint64(st.Shards) {
		return nil, fmt.Errorf("experiments: incremental engine fell back to full rebuilds (%d cycles vs the %d initial builds): delta pipeline is broken",
			st.FullRebuilds, st.Shards)
	}
	if st.IncrementalRefreshes == 0 {
		return nil, fmt.Errorf("experiments: incremental engine recorded no incremental refreshes")
	}
	m := engIncr.Model()
	fresh, err := engine.New(m.Graph, m.Emb, m.Cfg, engine.WithIndex(idxCfg))
	if err != nil {
		return nil, err
	}
	nlist := engIncr.IndexStatus().NList
	qrng := rand.New(rand.NewSource(opt.Seed + 3))
	for i := 0; i < opt.Queries; i++ {
		u := qrng.Intn(g.N)
		for _, mode := range []string{engine.ModeExact, engine.ModeSQ8} {
			want, err := fresh.TopLinks(u, 10, mode, 0)
			if err != nil {
				return nil, err
			}
			got, err := engIncr.TopLinks(u, 10, mode, 0)
			if err != nil {
				return nil, err
			}
			if err := sameScored(mode, u, want.Results, got.Results); err != nil {
				return nil, err
			}
		}
		exact, err := engIncr.TopLinks(u, 10, engine.ModeExact, 0)
		if err != nil {
			return nil, err
		}
		probeAll, err := engIncr.TopLinks(u, 10, engine.ModeIVF, nlist)
		if err != nil {
			return nil, err
		}
		if err := sameScored("ivf full-probe", u, exact.Results, probeAll.Results); err != nil {
			return nil, err
		}
	}

	// Attribute-delta phase. One node-attribute batch over a handful of
	// distinct attributes, applied to both engines after the edge sweep.
	// The incremental engine must absorb it without a single full shard
	// rebuild (low-rank gram correction of the link space), and its
	// refreshed top-k must stay within the recall floor of a fresh build
	// around its own model — bit-identity is out of reach here because the
	// correction accumulates ~1 ulp against a from-scratch transform.
	nAttrs := opt.K/4 - 1 // gram viability bound: 2·|Δattrs| < K/2
	if nAttrs > 16 {
		nAttrs = 16
	}
	if nAttrs > g.D {
		nAttrs = g.D
	}
	if nAttrs < 1 {
		nAttrs = 1
	}
	nEntries := opt.N / 100
	if nEntries < 20 {
		nEntries = 20
	}
	attrIDs := rng.Perm(g.D)[:nAttrs]
	entries := make([]graph.AttrEntry, nEntries)
	for i := range entries {
		entries[i] = graph.AttrEntry{
			Node: rng.Intn(g.N), Attr: attrIDs[rng.Intn(nAttrs)], Weight: 1,
		}
	}
	b.AttrEntries, b.AttrAttrs = nEntries, nAttrs
	timeAttrs := func(eng *engine.Engine) (float64, error) {
		t0 := time.Now()
		if _, err := eng.ApplyAttrs(entries); err != nil {
			return 0, err
		}
		eng.WaitForIndex()
		return time.Since(t0).Seconds(), nil
	}
	if b.AttrIncrTotalSeconds, err = timeAttrs(engIncr); err != nil {
		return nil, err
	}
	if !lastStats.Incremental || !lastStats.GramCorrection {
		return nil, fmt.Errorf("experiments: attr delta took the full path (incremental=%v gram=%v): link-space correction is broken",
			lastStats.Incremental, lastStats.GramCorrection)
	}
	if b.AttrFullTotalSeconds, err = timeAttrs(engFull); err != nil {
		return nil, err
	}
	if st := engIncr.IndexStatus(); st.FullRebuilds != uint64(st.Shards) {
		return nil, fmt.Errorf("experiments: attr delta triggered full shard rebuilds (%d vs the %d initial builds)",
			st.FullRebuilds, st.Shards)
	}
	m = engIncr.Model()
	fresh, err = engine.New(m.Graph, m.Emb, m.Cfg, engine.WithIndex(idxCfg))
	if err != nil {
		return nil, err
	}
	var recallSum float64
	for i := 0; i < opt.Queries; i++ {
		u := qrng.Intn(g.N)
		want, err := fresh.TopLinks(u, 10, engine.ModeExact, 0)
		if err != nil {
			return nil, err
		}
		got, err := engIncr.TopLinks(u, 10, engine.ModeExact, 0)
		if err != nil {
			return nil, err
		}
		recallSum += recallScored(want.Results, got.Results)
	}
	b.AttrRecall = recallSum / float64(opt.Queries)
	if b.AttrRecall < 0.999 {
		return nil, fmt.Errorf("experiments: gram-corrected top-10 recall %.4f below the 0.999 floor", b.AttrRecall)
	}

	as := engIncr.AffinityStatus()
	b.AffinityIncremental, b.AffinityFull = as.Incremental, as.Full
	return b, nil
}

func recallScored(want, got []core.Scored) float64 {
	if len(want) == 0 {
		return 1
	}
	ids := make(map[int]bool, len(got))
	for _, s := range got {
		ids[s.ID] = true
	}
	hit := 0
	for _, s := range want {
		if ids[s.ID] {
			hit++
		}
	}
	return float64(hit) / float64(len(want))
}

func deltaSizes(points []UpdatePoint) []int {
	out := make([]int, len(points))
	for i, p := range points {
		out[i] = p.DeltaEdges
	}
	return out
}

func sameScored(label string, u int, want, got []core.Scored) error {
	if len(want) != len(got) {
		return fmt.Errorf("experiments: refreshed index diverges (%s, u=%d): %d results vs %d",
			label, u, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			return fmt.Errorf("experiments: refreshed index diverges (%s, u=%d, rank %d): %v != %v",
				label, u, i, got[i], want[i])
		}
	}
	return nil
}

// PrintUpdate renders the sweep as a table.
func PrintUpdate(w io.Writer, b *UpdateBench) {
	fmt.Fprintf(w, "Update-to-fresh-index: n=%d m=%d d=%d k=%d, %d shards (train %.1fs, initial build %.1fs)\n",
		b.N, b.Edges, b.D, b.K, b.Shards, b.TrainSeconds, b.IndexBuildSeconds)
	fmt.Fprintf(w, "%-8s %-8s | %10s %10s %10s | %10s %10s %10s | %10s %10s %10s | %8s %8s %8s | %9s %9s %9s\n",
		"Δedges", "dirty", "full mdl", "full idx", "full tot", "incr mdl", "incr idx", "incr tot",
		"aff", "ccd", "xform", "mdl spd", "idx spd", "tot spd", "p50(ms)", "p95(ms)", "p99(ms)")
	for _, p := range b.Points {
		lat := fmt.Sprintf("%9s %9s %9s", "-", "-", "-")
		if p.IncrLatency != nil {
			lat = fmt.Sprintf("%9.1f %9.1f %9.1f", p.IncrLatency.P50, p.IncrLatency.P95, p.IncrLatency.P99)
		}
		fmt.Fprintf(w, "%-8d %-8d | %9.3fs %9.3fs %9.3fs | %9.3fs %9.3fs %9.3fs | %9.3fs %9.3fs %9.3fs | %7.1fx %7.1fx %7.1fx | %s\n",
			p.DeltaEdges, p.DirtyRows,
			p.FullModelSeconds, p.FullIndexSeconds, p.FullTotalSeconds,
			p.IncrModelSeconds, p.IncrIndexSeconds, p.IncrTotalSeconds,
			p.IncrAffinitySeconds, p.IncrCCDSeconds, p.IncrTransformSeconds,
			p.SpeedupModel, p.SpeedupIndex, p.SpeedupTotal, lat)
	}
	fmt.Fprintf(w, "incremental engine: %d incremental refreshes, %d full builds (initial only); %d affinity patches, %d full recurrence passes\n",
		b.IncrementalRefreshes, b.FullRebuilds, b.AffinityIncremental, b.AffinityFull)
	fmt.Fprintf(w, "attr delta: %d entries over %d attrs, full %.3fs vs incr %.3fs (gram-corrected, recall %.4f)\n",
		b.AttrEntries, b.AttrAttrs, b.AttrFullTotalSeconds, b.AttrIncrTotalSeconds, b.AttrRecall)
}

// WriteUpdateJSON writes the report to path as indented JSON.
func WriteUpdateJSON(path string, b *UpdateBench) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadUpdateJSON loads a report written by WriteUpdateJSON.
func ReadUpdateJSON(path string) (*UpdateBench, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	b := &UpdateBench{}
	if err := json.Unmarshal(data, b); err != nil {
		return nil, fmt.Errorf("experiments: parsing baseline %s: %w", path, err)
	}
	return b, nil
}

// CheckUpdateBaseline is the CI regression gate for the update path: it
// compares cur against a committed baseline and fails when the
// incremental-vs-full speedup (a same-machine ratio, so runner hardware
// drops out exactly as in CheckTopKBaseline) regressed by more than tol
// on any delta size both reports measured, or when the incremental
// pipeline stopped serving updates incrementally at all.
func CheckUpdateBaseline(cur, base *UpdateBench, tol float64) error {
	if tol < 0 {
		return fmt.Errorf("experiments: negative tolerance %v", tol)
	}
	if cur.IncrementalRefreshes == 0 {
		return fmt.Errorf("experiments: update gate: no incremental refreshes recorded")
	}
	if cur.AffinityIncremental == 0 {
		return fmt.Errorf("experiments: update gate: no incremental affinity passes recorded — model-side delta path is dead")
	}
	basePoints := make(map[int]UpdatePoint, len(base.Points))
	for _, p := range base.Points {
		basePoints[p.DeltaEdges] = p
	}
	var failures []string
	compared := 0
	for _, p := range cur.Points {
		bp, ok := basePoints[p.DeltaEdges]
		if !ok {
			continue
		}
		compared++
		if bp.SpeedupModel > 0 && p.SpeedupModel < bp.SpeedupModel*(1-tol) {
			failures = append(failures, fmt.Sprintf(
				"Δ=%d model speedup %.1fx dropped more than %.0f%% below baseline %.1fx",
				p.DeltaEdges, p.SpeedupModel, tol*100, bp.SpeedupModel))
		}
		if bp.SpeedupIndex > 0 && p.SpeedupIndex < bp.SpeedupIndex*(1-tol) {
			failures = append(failures, fmt.Sprintf(
				"Δ=%d index speedup %.1fx dropped more than %.0f%% below baseline %.1fx",
				p.DeltaEdges, p.SpeedupIndex, tol*100, bp.SpeedupIndex))
		}
		if bp.SpeedupTotal > 0 && p.SpeedupTotal < bp.SpeedupTotal*(1-tol) {
			failures = append(failures, fmt.Sprintf(
				"Δ=%d total speedup %.1fx dropped more than %.0f%% below baseline %.1fx",
				p.DeltaEdges, p.SpeedupTotal, tol*100, bp.SpeedupTotal))
		}
	}
	if compared == 0 {
		// A delta-set drift between the run and the committed baseline
		// must not pass as a vacuously green gate.
		return fmt.Errorf("experiments: update gate compared no points: run measured %v, baseline has %v — regenerate the baseline",
			deltaSizes(cur.Points), deltaSizes(base.Points))
	}
	if len(failures) == 0 {
		return nil
	}
	msg := "experiments: update-path perf regression vs baseline:"
	for _, f := range failures {
		msg += "\n  - " + f
	}
	return fmt.Errorf("%s", msg)
}
