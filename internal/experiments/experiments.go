// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on the synthetic stand-in datasets. Each Run* function
// returns structured rows and can also print them in the paper's layout;
// cmd/benchexp is a thin CLI over this package, and bench_test.go wraps
// the same entry points in testing.B benchmarks.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"pane/internal/baselines"
	"pane/internal/core"
	"pane/internal/dataset"
	"pane/internal/eval"
	"pane/internal/graph"
	"pane/internal/mat"
	"pane/internal/ml"
)

// Options tunes experiment scale so the full suite stays fast by default;
// the benchmarks use the same defaults the paper's parameter study does.
type Options struct {
	K       int
	Alpha   float64
	Eps     float64
	Threads int
	Seed    int64
}

// Defaults mirror §5.1.
func Defaults() Options {
	return Options{K: 128, Alpha: 0.5, Eps: 0.015, Threads: 10, Seed: 1}
}

func (o Options) paneConfig() core.Config {
	return core.Config{K: o.K, Alpha: o.Alpha, Eps: o.Eps, Threads: o.Threads, Seed: o.Seed}
}

// ---------------------------------------------------------------------------
// Table 2: running-example affinities.

// Table2Row is one node's forward and backward affinity triple.
type Table2Row struct {
	Node    string
	Forward [3]float64
	Back    [3]float64
}

// RunTable2 computes the exact affinity table of the running example via
// APMI with a deep iteration budget (the paper used simulated walks; APMI
// converges to the same values, which the rwalk tests verify).
func RunTable2() []Table2Row {
	g := graph.RunningExample()
	f, b := core.AffinityFromGraph(g, graph.RunningExampleAlpha, 400, 1)
	names := []string{"v1", "v2", "v3", "v4", "v5", "v6"}
	rows := make([]Table2Row, g.N)
	for v := 0; v < g.N; v++ {
		rows[v].Node = names[v]
		for r := 0; r < 3; r++ {
			rows[v].Forward[r] = f.At(v, r)
			rows[v].Back[r] = b.At(v, r)
		}
	}
	return rows
}

// PrintTable2 renders the rows in Table 2's layout.
func PrintTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintln(w, "Table 2: targets for X[vi]·Y[rj]ᵀ (running example, α=0.15)")
	fmt.Fprintf(w, "%-8s %8s %8s %8s\n", "", "Y[r1]", "Y[r2]", "Y[r3]")
	for _, r := range rows {
		fmt.Fprintf(w, "Xf[%-4s] %8.3f %8.3f %8.3f\n", r.Node, r.Forward[0], r.Forward[1], r.Forward[2])
		fmt.Fprintf(w, "Xb[%-4s] %8.3f %8.3f %8.3f\n", r.Node, r.Back[0], r.Back[1], r.Back[2])
	}
}

// ---------------------------------------------------------------------------
// Table 3: dataset statistics.

// Table3Row pairs stand-in statistics with the original's.
type Table3Row struct {
	Name  string
	Stats graph.Stats
	Info  dataset.Info
}

// RunTable3 generates every stand-in and collects statistics.
func RunTable3(names []string) ([]Table3Row, error) {
	rows := make([]Table3Row, 0, len(names))
	for _, name := range names {
		g, info, err := dataset.Load(name)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table3Row{Name: name, Stats: g.Stats(), Info: info})
	}
	return rows, nil
}

// PrintTable3 renders the dataset table with the paper's original sizes
// alongside the stand-in sizes.
func PrintTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintln(w, "Table 3: datasets (stand-in | paper original)")
	fmt.Fprintf(w, "%-12s %10s %10s %8s %10s %6s   %s\n", "name", "|V|", "|EV|", "|R|", "|ER|", "|L|", "paper (|V|,|EV|,|R|,|ER|,|L|)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %10d %10d %8d %10d %6d   (%s, %s, %s, %s, %s)\n",
			r.Name, r.Stats.Nodes, r.Stats.Edges, r.Stats.Attrs, r.Stats.AttrEntries, r.Stats.LabelKinds,
			r.Info.PaperN, r.Info.PaperE, r.Info.PaperR, r.Info.PaperER, r.Info.PaperL)
	}
}

// ---------------------------------------------------------------------------
// Table 4: attribute inference.

// MethodScore is one (method, AUC, AP) cell with the time it took.
type MethodScore struct {
	Method  string
	AUC, AP float64
	Elapsed time.Duration
	Skipped bool // method infeasible at this scale (the paper's "-")
}

// AttrInferenceResult is one dataset's Table 4 row.
type AttrInferenceResult struct {
	Dataset string
	Scores  []MethodScore
}

// RunTable4 evaluates attribute inference for BLA, CANLite, PANE (single
// thread) and PANE (parallel) on the given datasets. skipSlowAbove bounds
// the node count above which the non-scalable baselines are skipped,
// mirroring the "cannot finish in a week" entries of the paper.
func RunTable4(names []string, opt Options, skipSlowAbove int) ([]AttrInferenceResult, error) {
	var out []AttrInferenceResult
	for _, name := range names {
		g, _, err := dataset.Load(name)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(opt.Seed))
		sp := eval.SplitAttributes(g, 0.8, rng)
		res := AttrInferenceResult{Dataset: name}
		big := g.N > skipSlowAbove

		res.Scores = append(res.Scores, timedScore("BLA", big, func() (func(v, r int) float64, error) {
			bla := baselines.RunBLA(sp.Train, baselines.DefaultBLAConfig())
			return bla.AttrScore, nil
		}, sp.Evaluate))

		res.Scores = append(res.Scores, timedScore("CAN(lite)", big, func() (func(v, r int) float64, error) {
			cfg := baselines.DefaultCANLiteConfig()
			cfg.K = opt.K
			e := baselines.CANLite(sp.Train, cfg)
			return e.AttrScore, nil
		}, sp.Evaluate))

		res.Scores = append(res.Scores, timedScore("PANE(single)", false, func() (func(v, r int) float64, error) {
			e, err := core.PANE(sp.Train, opt.paneConfig())
			if err != nil {
				return nil, err
			}
			return e.AttrScore, nil
		}, sp.Evaluate))

		res.Scores = append(res.Scores, timedScore("PANE(parallel)", false, func() (func(v, r int) float64, error) {
			e, err := core.ParallelPANE(sp.Train, opt.paneConfig())
			if err != nil {
				return nil, err
			}
			return e.AttrScore, nil
		}, sp.Evaluate))

		out = append(out, res)
	}
	return out, nil
}

func timedScore(name string, skip bool, build func() (func(int, int) float64, error),
	evaluate func(func(int, int) float64) (float64, float64)) MethodScore {
	if skip {
		return MethodScore{Method: name, Skipped: true}
	}
	start := time.Now()
	score, err := build()
	if err != nil {
		return MethodScore{Method: name, Skipped: true}
	}
	auc, ap := evaluate(score)
	return MethodScore{Method: name, AUC: auc, AP: ap, Elapsed: time.Since(start)}
}

// PrintMethodTable renders Table 4/5-style results.
func PrintMethodTable(w io.Writer, title string, rows []AttrInferenceResult) {
	fmt.Fprintln(w, title)
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s", r.Dataset)
		for _, s := range r.Scores {
			if s.Skipped {
				fmt.Fprintf(w, "  %s: %8s", s.Method, "-")
			} else {
				fmt.Fprintf(w, "  %s: AUC=%.3f AP=%.3f (%.2fs)", s.Method, s.AUC, s.AP, s.Elapsed.Seconds())
			}
		}
		fmt.Fprintln(w)
	}
}

// ---------------------------------------------------------------------------
// Table 5: link prediction.

// RunTable5 evaluates link prediction for every implemented method. The
// paper reports the best of four scoring rules per undirected-embedding
// competitor; we do the same over inner product and cosine.
func RunTable5(names []string, opt Options, skipSlowAbove int) ([]AttrInferenceResult, error) {
	var out []AttrInferenceResult
	for _, name := range names {
		g, info, err := dataset.Load(name)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(opt.Seed))
		sp := eval.SplitLinks(g, 0.3, rng)
		res := AttrInferenceResult{Dataset: name}
		big := g.N > skipSlowAbove
		directed := info.Directed

		evalEdge := func(score func(u, v int) float64) (float64, float64) {
			return sp.Evaluate(score)
		}

		res.Scores = append(res.Scores, timedScore("NRP", false, func() (func(int, int) float64, error) {
			cfg := baselines.DefaultNRPConfig()
			cfg.K = opt.K
			cfg.Alpha = opt.Alpha
			cfg.NB = opt.Threads
			e := baselines.NRP(sp.Train, cfg)
			if directed {
				return e.Directed, nil
			}
			return e.Undirected, nil
		}, evalEdge))

		// TADW materializes an n x n proximity matrix, so its feasibility
		// cutoff is much lower than the O(n·d) baselines' — the same
		// asymmetry the paper's "-" entries reflect.
		tadwBig := big || g.N > 5000
		res.Scores = append(res.Scores, timedScore("TADW", tadwBig, func() (func(int, int) float64, error) {
			cfg := baselines.DefaultTADWConfig()
			cfg.K = opt.K
			e := baselines.TADW(sp.Train, cfg)
			return bestOfTwo(sp, e.InnerScore, e.CosineScore), nil
		}, evalEdge))

		res.Scores = append(res.Scores, timedScore("DeepWalkMF", tadwBig, func() (func(int, int) float64, error) {
			cfg := baselines.DefaultDeepWalkMFConfig()
			cfg.K = opt.K
			e := baselines.DeepWalkMF(sp.Train, cfg)
			return bestOfTwo(sp, e.InnerScore, e.CosineScore), nil
		}, evalEdge))

		res.Scores = append(res.Scores, timedScore("AANE", big, func() (func(int, int) float64, error) {
			cfg := baselines.DefaultAANEConfig()
			cfg.K = opt.K
			e := baselines.AANE(sp.Train, cfg)
			return bestOfTwo(sp, e.InnerScore, e.CosineScore), nil
		}, evalEdge))

		res.Scores = append(res.Scores, timedScore("BANE", big, func() (func(int, int) float64, error) {
			cfg := baselines.DefaultBANEConfig()
			cfg.K = opt.K
			e := baselines.BANE(sp.Train, cfg)
			return e.HammingScore, nil
		}, evalEdge))

		res.Scores = append(res.Scores, timedScore("LQANR", big, func() (func(int, int) float64, error) {
			cfg := baselines.DefaultLQANRConfig()
			cfg.K = opt.K
			e := baselines.LQANR(sp.Train, cfg)
			ne := baselines.NodeEmbedding{X: e.X}
			return bestOfTwo(sp, ne.InnerScore, ne.CosineScore), nil
		}, evalEdge))

		res.Scores = append(res.Scores, timedScore("CAN(lite)", big, func() (func(int, int) float64, error) {
			cfg := baselines.DefaultCANLiteConfig()
			cfg.K = opt.K
			e := baselines.CANLite(sp.Train, cfg)
			return e.LinkScore, nil
		}, evalEdge))

		res.Scores = append(res.Scores, timedScore("PANE(single)", false, func() (func(int, int) float64, error) {
			e, err := core.PANE(sp.Train, opt.paneConfig())
			if err != nil {
				return nil, err
			}
			s := core.NewLinkScorer(e)
			if directed {
				return s.Directed, nil
			}
			return s.Undirected, nil
		}, evalEdge))

		res.Scores = append(res.Scores, timedScore("PANE(parallel)", false, func() (func(int, int) float64, error) {
			e, err := core.ParallelPANE(sp.Train, opt.paneConfig())
			if err != nil {
				return nil, err
			}
			s := core.NewLinkScorer(e)
			if directed {
				return s.Directed, nil
			}
			return s.Undirected, nil
		}, evalEdge))

		out = append(out, res)
	}
	return out, nil
}

// bestOfTwo returns whichever of the two scorers achieves higher AUC on
// the split — the paper's "adopt all prediction methods, report best".
func bestOfTwo(sp *eval.LinkSplit, a, b func(u, v int) float64) func(u, v int) float64 {
	aucA, _ := sp.Evaluate(a)
	aucB, _ := sp.Evaluate(b)
	if aucA >= aucB {
		return a
	}
	return b
}

// ---------------------------------------------------------------------------
// Figure 2: node classification.

// ClassificationPoint is Micro-F1/Macro-F1 at one training fraction for
// one method.
type ClassificationPoint struct {
	Method    string
	TrainFrac float64
	MicroF1   float64
	MacroF1   float64
}

// ClassificationResult is one dataset's Figure 2 panel.
type ClassificationResult struct {
	Dataset string
	Points  []ClassificationPoint
}

// RunFig2 sweeps the training fraction and reports Micro/Macro-F1 for
// PANE (both versions), NRP, CANLite and BANE.
func RunFig2(names []string, fracs []float64, opt Options) ([]ClassificationResult, error) {
	var out []ClassificationResult
	for _, name := range names {
		g, _, err := dataset.Load(name)
		if err != nil {
			return nil, err
		}
		// Build features once per method.
		paneSingle, err := core.PANE(g, opt.paneConfig())
		if err != nil {
			return nil, err
		}
		panePar, err := core.ParallelPANE(g, opt.paneConfig())
		if err != nil {
			return nil, err
		}
		nrpCfg := baselines.DefaultNRPConfig()
		nrpCfg.K = opt.K
		nrpCfg.NB = opt.Threads
		nrp := baselines.NRP(g, nrpCfg)
		canCfg := baselines.DefaultCANLiteConfig()
		canCfg.K = opt.K
		can := baselines.CANLite(g, canCfg)
		baneCfg := baselines.DefaultBANEConfig()
		baneCfg.K = opt.K
		bane := baselines.BANE(g, baneCfg)

		featSets := []struct {
			name string
			x    interface{ Row(int) []float64 }
		}{
			{"PANE(single)", paneSingle.ClassifierFeatures()},
			{"PANE(parallel)", panePar.ClassifierFeatures()},
			{"NRP", nrp.Features()},
			{"CAN(lite)", can.Features()},
			{"BANE", bane.Features()},
		}
		res := ClassificationResult{Dataset: name}
		for _, frac := range fracs {
			rng := rand.New(rand.NewSource(opt.Seed + int64(frac*1000)))
			sp := eval.SplitNodes(g, frac, rng)
			for _, fs := range featSets {
				micro, macro := classify(fs.x, g, sp, opt.Seed)
				res.Points = append(res.Points, ClassificationPoint{
					Method: fs.name, TrainFrac: frac, MicroF1: micro, MacroF1: macro,
				})
			}
		}
		out = append(out, res)
	}
	return out, nil
}

type rowser interface{ Row(int) []float64 }

func classify(x rowser, g *graph.Graph, sp *eval.NodeSplit, seed int64) (micro, macro float64) {
	if len(sp.TrainIdx) == 0 || len(sp.TestIdx) == 0 {
		return 0, 0
	}
	width := len(x.Row(sp.TrainIdx[0]))
	trainX := mat.New(len(sp.TrainIdx), width)
	labels := make([][]int, len(sp.TrainIdx))
	for i, v := range sp.TrainIdx {
		copy(trainX.Row(i), x.Row(v))
		labels[i] = g.Labels[v]
	}
	cfg := ml.DefaultSVMConfig()
	cfg.Seed = seed
	ovr := ml.TrainOneVsRest(trainX, labels, cfg)
	counts := eval.NewF1Counts()
	for _, v := range sp.TestIdx {
		truth := g.Labels[v]
		pred := ovr.PredictK(x.Row(v), len(truth))
		counts.Add(pred, truth)
	}
	return counts.MicroF1(), counts.MacroF1()
}

// PrintFig2 renders one line per (dataset, method) with the F1 series.
func PrintFig2(w io.Writer, rows []ClassificationResult) {
	fmt.Fprintln(w, "Figure 2: node classification Micro-F1 vs training fraction")
	for _, r := range rows {
		byMethod := map[string][]ClassificationPoint{}
		var order []string
		for _, p := range r.Points {
			if _, ok := byMethod[p.Method]; !ok {
				order = append(order, p.Method)
			}
			byMethod[p.Method] = append(byMethod[p.Method], p)
		}
		sort.Strings(order)
		for _, m := range order {
			fmt.Fprintf(w, "%-12s %-14s", r.Dataset, m)
			for _, p := range byMethod[m] {
				fmt.Fprintf(w, "  %.1f:%.3f", p.TrainFrac, p.MicroF1)
			}
			fmt.Fprintln(w)
		}
	}
}
