package experiments

import (
	"path/filepath"
	"strings"
	"testing"
)

// bench returns a plausible baseline-shaped report for gate tests.
func bench() *TopKBench {
	return &TopKBench{
		N: 20000, K: 32, TopK: 10, Queries: 200,
		ScanQPS: 1000, ExactQPS: 1100, IVFQPS: 6000,
		RecallAtK: 0.99, RecallFullProbe: 1.0,
		SpeedupIVFVsScan: 6.0, SpeedupExactVsScan: 1.1,
	}
}

func TestCheckTopKBaselinePasses(t *testing.T) {
	base := bench()
	cur := bench()
	// Within tolerance: 20% slower and slightly lower recall.
	cur.IVFQPS = 4900
	cur.SpeedupIVFVsScan = 4.9
	cur.RecallAtK = 0.95
	if err := CheckTopKBaseline(cur, base, 0.25); err != nil {
		t.Fatalf("in-tolerance run rejected: %v", err)
	}
	// A different machine/graph size with a healthy speedup also passes:
	// raw QPS is not compared across shapes.
	cur = bench()
	cur.N = 100000
	cur.IVFQPS = 800 // much slower hardware...
	cur.ScanQPS = 130
	cur.SpeedupIVFVsScan = 6.2 // ...same relative win
	if err := CheckTopKBaseline(cur, base, 0.25); err != nil {
		t.Fatalf("cross-shape run rejected: %v", err)
	}
}

func TestCheckTopKBaselineFailsOnRegression(t *testing.T) {
	base := bench()

	slow := bench()
	slow.IVFQPS = 3000
	slow.SpeedupIVFVsScan = 3.0 // 50% drop
	err := CheckTopKBaseline(slow, base, 0.25)
	if err == nil || !strings.Contains(err.Error(), "speedup") {
		t.Fatalf("speedup regression not caught: %v", err)
	}

	blurry := bench()
	blurry.RecallAtK = 0.60 // collapse well past tolerance
	err = CheckTopKBaseline(blurry, base, 0.25)
	if err == nil || !strings.Contains(err.Error(), "recall") {
		t.Fatalf("recall regression not caught: %v", err)
	}

	// The fp16 floor is absolute (when the tier was measured): 0.99 over
	// 2000 slots is 20 misses, ~13σ past the floor's binomial allowance
	// (expectation 2 + 2σ ≈ 5).
	halfBroken := bench()
	halfBroken.FP16QPS = 900
	halfBroken.RecallFP16 = 0.99
	err = CheckTopKBaseline(halfBroken, base, 0.25)
	if err == nil || !strings.Contains(err.Error(), "fp16 recall") {
		t.Fatalf("fp16 floor not enforced: %v", err)
	}
	// A single missed slot at tiny scale is within the allowance (one
	// boundary tie is indistinguishable from correct behavior).
	tied := bench()
	tied.Queries, tied.TopK = 30, 5
	tied.FP16QPS = 900
	tied.RecallFP16 = 1 - 1.0/150
	if err := CheckTopKBaseline(tied, base, 0.25); err != nil {
		t.Fatalf("single tie rejected: %v", err)
	}
	// At bench scale the allowance tracks the floor's sampling noise:
	// slots/1000 + 2σ misses pass, one more fails.
	allowed := fp16MissAllowance(2000)
	atEdge := bench()
	atEdge.FP16QPS = 900
	atEdge.RecallFP16 = 1 - float64(allowed)/2000
	if err := CheckTopKBaseline(atEdge, base, 0.25); err != nil {
		t.Fatalf("at-allowance run rejected: %v", err)
	}
	overEdge := bench()
	overEdge.FP16QPS = 900
	overEdge.RecallFP16 = 1 - float64(allowed+1)/2000
	err = CheckTopKBaseline(overEdge, base, 0.25)
	if err == nil || !strings.Contains(err.Error(), "fp16 recall") {
		t.Fatalf("over-allowance run accepted: %v", err)
	}

	if err := CheckTopKBaseline(bench(), base, -1); err == nil {
		t.Fatal("negative tolerance accepted")
	}
}

// TestRunTopKSmallEndToEnd runs the whole serving benchmark on a tiny
// graph: the report must be internally consistent, the shard sweep must
// cover the requested points (the bit-for-bit exact comparison is an
// error inside RunTopK, so returning at all proves it), and the JSON
// round trip must preserve the gate's inputs.
func TestRunTopKSmallEndToEnd(t *testing.T) {
	b, err := RunTopK(TopKOptions{
		N: 600, D: 20, K: 8, Seed: 1, Queries: 30, TopK: 5,
		ShardPoints: []int{1, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if b.N != 600 || b.Queries != 30 || b.TopK != 5 {
		t.Fatalf("report shape %+v", b)
	}
	if b.RecallFullProbe < minFullProbeRecall {
		t.Fatalf("full-probe recall %v made it into a successful report", b.RecallFullProbe)
	}
	if len(b.Sharding) != 2 || b.Sharding[0].Shards != 1 || b.Sharding[1].Shards != 3 {
		t.Fatalf("sharding sweep %+v", b.Sharding)
	}
	for _, p := range b.Sharding {
		if p.ExactQPS <= 0 || p.IVFQPS <= 0 {
			t.Fatalf("degenerate sweep point %+v", p)
		}
	}

	path := filepath.Join(t.TempDir(), "bench.json")
	if err := WriteTopKJSON(path, b); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTopKJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.IVFQPS != b.IVFQPS || back.RecallAtK != b.RecallAtK || len(back.Sharding) != len(b.Sharding) {
		t.Fatalf("JSON round trip changed the report: %+v vs %+v", back, b)
	}
	// A fresh run gates cleanly against itself.
	if err := CheckTopKBaseline(b, back, 0.0); err != nil {
		t.Fatalf("self-comparison failed: %v", err)
	}
}
