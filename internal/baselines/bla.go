package baselines

import (
	"pane/internal/graph"
	"pane/internal/mat"
)

// BLA is the attribute-inference baseline of [45] in its core mechanism:
// bi-directional iterative inference where a node's attribute scores are
// refined from its in- and out-neighbors' scores. It is not an embedding
// method; it directly returns an n x d score matrix.
//
// Implementation: initialize S⁰ = R (observed associations), then iterate
//
//	S^{t+1} = (1−β)·R + β·½(P·Sᵗ + Pᵀ·Sᵗ)
//
// which propagates attribute evidence both along and against edge
// direction (the "bi-directional joint inference" of the original),
// anchored at the observed attributes.
type BLA struct {
	Scores *mat.Dense
}

// BLAConfig parameterizes the propagation.
type BLAConfig struct {
	Beta  float64 // neighbor weight in (0,1)
	Iters int
}

// DefaultBLAConfig uses moderate propagation.
func DefaultBLAConfig() BLAConfig { return BLAConfig{Beta: 0.6, Iters: 8} }

// RunBLA executes the propagation on g.
func RunBLA(g *graph.Graph, cfg BLAConfig) *BLA {
	p, pt := g.Walk()
	r := g.Attr.ToDense()
	r.NormalizeRows()
	s := r.Clone()
	for it := 0; it < cfg.Iters; it++ {
		fwd := p.MulDense(s)
		bwd := pt.MulDense(s)
		fwd.AddScaled(1, bwd)
		fwd.Scale(0.5 * cfg.Beta)
		next := r.Clone()
		next.Scale(1 - cfg.Beta)
		next.AddScaled(1, fwd)
		s = next
	}
	return &BLA{Scores: s}
}

// AttrScore returns the propagated score for (v, r).
func (b *BLA) AttrScore(v, r int) float64 { return b.Scores.At(v, r) }
