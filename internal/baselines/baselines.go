// Package baselines implements the competitor methods the paper compares
// PANE against in §5, restricted to the matrix-factorization family that
// is feasible from scratch in stdlib Go (the deep-neural competitors are
// substituted — see DESIGN.md §3):
//
//   - NRP   [49]: homogeneous network embedding from approximate
//     personalized-PageRank proximity (the strongest non-attributed rival).
//   - TADW  [44]: text-associated DeepWalk — alternating minimization of
//     ‖M − Wᵀ·H·T‖² where T are attribute features.
//   - BANE  [47]: binarized ANE — sign-quantized factors of a fused
//     topology+attribute proximity, scored by Hamming similarity.
//   - LQANR [46]: low-bit quantized ANE — b-bit quantized factors.
//   - CANLite: a spectral co-embedding proxy for CAN [27], the only other
//     method that embeds attributes and can do attribute inference.
//   - BLA   [45]: iterative neighbor-vote attribute inference (not an
//     embedding method; the paper's second attribute-inference baseline).
//
// All baselines share PANE's substrates (CSR kernels, randomized SVD), so
// runtime comparisons measure algorithms rather than implementation
// maturity.
package baselines

import (
	"pane/internal/graph"
	"pane/internal/mat"
)

// NodeEmbedding is a single-vector-per-node embedding produced by the
// undirected baselines.
type NodeEmbedding struct {
	X *mat.Dense
}

// InnerScore returns the inner-product link score X[u]·X[v].
func (e *NodeEmbedding) InnerScore(u, v int) float64 {
	return mat.Dot(e.X.Row(u), e.X.Row(v))
}

// CosineScore returns the cosine-similarity link score.
func (e *NodeEmbedding) CosineScore(u, v int) float64 {
	xu, xv := e.X.Row(u), e.X.Row(v)
	nu, nv := mat.Norm2(xu), mat.Norm2(xv)
	if nu == 0 || nv == 0 {
		return 0
	}
	return mat.Dot(xu, xv) / (nu * nv)
}

// Features returns the classification feature matrix (the embedding
// itself; rows L2-normalized for SVM conditioning).
func (e *NodeEmbedding) Features() *mat.Dense {
	out := e.X.Clone()
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		n := mat.Norm2(row)
		if n > 0 {
			inv := 1 / n
			for j := range row {
				row[j] *= inv
			}
		}
	}
	return out
}

// normalizedAdjacencyWithSelfLoops returns Â = D̃⁻¹(A + I) row-stochastic
// smoothing operator shared by TADW's proximity and CANLite.
func normalizedAdjacencyWithSelfLoops(g *graph.Graph) func(x *mat.Dense) *mat.Dense {
	p, _ := g.Walk()
	return func(x *mat.Dense) *mat.Dense {
		// Â·x ≈ ½(P·x + x): average the node's own signal with its
		// neighborhood mean — the standard self-loop trick without
		// materializing A + I.
		out := p.MulDense(x)
		out.AddScaled(1, x)
		out.Scale(0.5)
		return out
	}
}
