package baselines

import (
	"math"
	"math/rand"

	"pane/internal/graph"
	"pane/internal/mat"
	"pane/internal/sparse"
	"pane/internal/svd"
)

// NRPEmbedding holds NRP's forward/backward node embeddings: the link
// score for a directed edge (u,v) is Xf[u]·Xb[v] (§5.3 of the paper).
type NRPEmbedding struct {
	Xf, Xb *mat.Dense
}

// NRPConfig parameterizes NRP.
type NRPConfig struct {
	K     int     // total budget; each side gets K/2
	Alpha float64 // PPR stopping probability
	T     int     // PPR truncation length
	Seed  int64
	NB    int // worker threads
}

// DefaultNRPConfig mirrors PANE's defaults for a fair comparison.
func DefaultNRPConfig() NRPConfig {
	return NRPConfig{K: 128, Alpha: 0.5, T: 6, Seed: 1, NB: 1}
}

// pprOp is the implicit personalized-PageRank proximity operator
// Π = α·Σ_{ℓ=0}^{T}(1−α)^ℓ·P^ℓ, exposed to randomized SVD through SpMM
// passes only — this is how NRP (and RandNE/STRAP before it) avoids the
// O(n²) proximity matrix.
type pprOp struct {
	p, pt *sparse.CSR
	alpha float64
	t     int
	nb    int
}

func (o pprOp) Dims() (int, int) { return o.p.R, o.p.R }

func (o pprOp) series(m *sparse.CSR, x *mat.Dense) *mat.Dense {
	term := x.Clone()
	acc := x.Clone()
	acc.Scale(o.alpha)
	for l := 1; l <= o.t; l++ {
		next := m.ParMulDense(term, o.nb)
		next.Scale(1 - o.alpha)
		term = next
		scaled := term.Clone()
		scaled.Scale(o.alpha)
		acc.AddScaled(1, scaled)
	}
	return acc
}

func (o pprOp) Apply(x *mat.Dense) *mat.Dense  { return o.series(o.p, x) }
func (o pprOp) ApplyT(x *mat.Dense) *mat.Dense { return o.series(o.pt, x) }

// NRP computes the NRP baseline embedding. Relative to the published
// method we keep the PPR-proximity factorization (its core) and replace
// the iterative degree-reweighting post-pass with square-root singular
// value splitting, which serves the same role of balancing the two sides;
// DESIGN.md records the substitution.
func NRP(g *graph.Graph, cfg NRPConfig) *NRPEmbedding {
	p, pt := g.Walk()
	op := pprOp{p: p, pt: pt, alpha: cfg.Alpha, t: cfg.T, nb: cfg.NB}
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := svd.RandSVDOp(op, cfg.K/2, 4, rng, cfg.NB)
	xf := res.U.Clone()
	xb := res.V.Clone()
	for j, s := range res.S {
		r := math.Sqrt(s)
		for i := 0; i < xf.Rows; i++ {
			xf.Set(i, j, xf.At(i, j)*r)
		}
		for i := 0; i < xb.Rows; i++ {
			xb.Set(i, j, xb.At(i, j)*r)
		}
	}
	return &NRPEmbedding{Xf: xf, Xb: xb}
}

// Directed returns the directed link score Xf[u]·Xb[v].
func (e *NRPEmbedding) Directed(u, v int) float64 {
	return mat.Dot(e.Xf.Row(u), e.Xb.Row(v))
}

// Undirected returns p(u,v) + p(v,u).
func (e *NRPEmbedding) Undirected(u, v int) float64 {
	return e.Directed(u, v) + e.Directed(v, u)
}

// Features returns normalized concat(Xf, Xb) for node classification, the
// same protocol PANE uses (§5.4).
func (e *NRPEmbedding) Features() *mat.Dense {
	n, half := e.Xf.Rows, e.Xf.Cols
	out := mat.New(n, 2*half)
	for v := 0; v < n; v++ {
		row := out.Row(v)
		copyUnit(row[:half], e.Xf.Row(v))
		copyUnit(row[half:], e.Xb.Row(v))
	}
	return out
}

func copyUnit(dst, src []float64) {
	n := mat.Norm2(src)
	if n == 0 {
		copy(dst, src)
		return
	}
	inv := 1 / n
	for i, v := range src {
		dst[i] = v * inv
	}
}
