package baselines

import (
	"math"
	"math/rand"

	"pane/internal/graph"
	"pane/internal/mat"
	"pane/internal/svd"
)

// AANEConfig parameterizes the accelerated attributed network embedding
// baseline.
type AANEConfig struct {
	K      int
	Lambda float64 // strength of the graph-regularization smoothing
	Rounds int     // smoothing/factorization alternations
	Seed   int64
}

// DefaultAANEConfig mirrors the original's moderate regularization.
func DefaultAANEConfig() AANEConfig {
	return AANEConfig{K: 128, Lambda: 0.5, Rounds: 3, Seed: 1}
}

// AANE implements the core of Accelerated Attributed Network Embedding
// [18]: embeddings approximate the *attribute affinity* (cosine
// similarity of attribute vectors) while being smoothed along graph
// edges. The original solves this with distributed ADMM over an n x n
// cosine-similarity matrix; we keep its two ingredients — attribute
// affinity factorization and Laplacian smoothing — but stay O(n·d):
// factorize the L2-normalized attribute matrix (whose Gram matrix IS the
// cosine similarity), then alternate embedding smoothing X ← (1−λ)X +
// λ·P̄X with re-orthonormalization, which is a projected gradient step on
// the graph-regularization term. DESIGN.md records the substitution.
func AANE(g *graph.Graph, cfg AANEConfig) *NodeEmbedding {
	// Row-normalize attribute vectors so inner products are cosines.
	a := g.Attr.ToDense()
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		n := mat.Norm2(row)
		if n > 0 {
			inv := 1 / n
			for j := range row {
				row[j] *= inv
			}
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	k := cfg.K
	if k > g.D {
		k = g.D
	}
	res := svd.RandSVD(a, k, 3, rng, 1)
	x := res.UScaled()
	// Laplacian smoothing rounds: averaging each node with its (in+out)
	// neighborhood mean pulls connected nodes together, the effect of
	// AANE's ‖x_i − x_j‖ penalty over edges.
	p, pt := g.Walk()
	for r := 0; r < cfg.Rounds; r++ {
		fwd := p.MulDense(x)
		bwd := pt.MulDense(x)
		fwd.AddScaled(1, bwd)
		fwd.Scale(0.5 * cfg.Lambda)
		x.Scale(1 - cfg.Lambda)
		x.AddScaled(1, fwd)
	}
	return &NodeEmbedding{X: x}
}

// DeepWalkMFConfig parameterizes the topology-only DeepWalk-as-matrix-
// factorization baseline.
type DeepWalkMFConfig struct {
	K      int
	Window int     // random-walk context window T
	Neg    float64 // negative sampling constant b in the NetMF closed form
	Seed   int64
}

// DefaultDeepWalkMFConfig uses the common window of 10 and one negative
// sample.
func DefaultDeepWalkMFConfig() DeepWalkMFConfig {
	return DeepWalkMFConfig{K: 128, Window: 10, Neg: 1, Seed: 1}
}

// DeepWalkMF embeds nodes by factorizing DeepWalk's implicit matrix (Qiu
// et al., WSDM'18 — reference [33], the result PANE's related work leans
// on): M = log⁺( vol(G)/(b·T) · Σ_{t=1..T} Pᵗ · D⁻¹ ). Representative of
// the random-walk HNE family (DeepWalk/node2vec/LINE) in the comparison,
// with the same O(n²) wall TADW has: M is dense, so it only runs on the
// small datasets — exactly the scalability contrast §6.2 draws.
func DeepWalkMF(g *graph.Graph, cfg DeepWalkMFConfig) *NodeEmbedding {
	n := g.N
	p, _ := g.Walk()
	// Accumulate Σ Pᵗ (dense) once; each extra power is one sparse×dense.
	acc := mat.New(n, n)
	cur := p.ToDense()
	acc.AddScaled(1, cur)
	for t := 1; t < cfg.Window; t++ {
		cur = p.MulDense(cur)
		acc.AddScaled(1, cur)
	}
	// Multiply by D⁻¹ on the right and the NetMF volume constant.
	invDeg := make([]float64, n)
	var vol float64
	for v := 0; v < n; v++ {
		deg := g.OutDegree(v)
		vol += deg
		if deg > 0 {
			invDeg[v] = 1 / deg
		}
	}
	scale := vol / (cfg.Neg * float64(cfg.Window))
	for i := 0; i < n; i++ {
		row := acc.Row(i)
		for j := range row {
			row[j] *= scale * invDeg[j]
		}
	}
	// Truncated log: log(max(x,1)) keeps the PMI matrix sparse-ish and
	// nonnegative, the "log⁺" of NetMF.
	acc.Apply(func(x float64) float64 {
		if x <= 1 {
			return 0
		}
		return math.Log(x)
	})
	rng := rand.New(rand.NewSource(cfg.Seed))
	k := cfg.K
	if k > n {
		k = n
	}
	res := svd.RandSVD(acc, k, 3, rng, 1)
	// DeepWalk uses U·Σ^{1/2} as the embedding.
	x := res.U.Clone()
	for j, s := range res.S {
		r := math.Sqrt(s)
		for i := 0; i < x.Rows; i++ {
			x.Set(i, j, x.At(i, j)*r)
		}
	}
	return &NodeEmbedding{X: x}
}
