package baselines

import (
	"math/rand"

	"pane/internal/graph"
	"pane/internal/mat"
	"pane/internal/svd"
)

// BANEEmbedding is a binary ({−1,+1}) node embedding scored by Hamming
// similarity, as in BANE [47].
type BANEEmbedding struct {
	Bits *mat.Dense // entries are exactly −1 or +1
}

// BANEConfig parameterizes BANE.
type BANEConfig struct {
	K     int
	Alpha float64 // smoothing strength of the fused proximity
	Hops  int     // attribute smoothing rounds
	Seed  int64
}

// DefaultBANEConfig mirrors the paper's k and moderate smoothing.
func DefaultBANEConfig() BANEConfig {
	return BANEConfig{K: 128, Alpha: 0.7, Hops: 2, Seed: 1}
}

// BANE computes a binarized embedding: the fused topology+attribute
// signal S = Â^hops · R (attribute features smoothed along edges, the
// "unified matrix" of the original in spirit) is factorized by randomized
// SVD and the left factor is sign-quantized. The original's cyclic
// coordinate binary optimization is substituted by this
// factorize-then-quantize pipeline (DESIGN.md §3); both lose accuracy to
// quantization, which is the property Table 5 exercises.
func BANE(g *graph.Graph, cfg BANEConfig) *BANEEmbedding {
	smooth := normalizedAdjacencyWithSelfLoops(g)
	s := g.Attr.ToDense()
	for h := 0; h < cfg.Hops; h++ {
		sm := smooth(s)
		sm.Scale(cfg.Alpha)
		s.Scale(1 - cfg.Alpha)
		s.AddScaled(1, sm)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	k := cfg.K
	if k > g.D {
		k = g.D
	}
	res := svd.RandSVD(s, k, 3, rng, 1)
	bits := res.UScaled()
	bits.Apply(func(x float64) float64 {
		if x >= 0 {
			return 1
		}
		return -1
	})
	return &BANEEmbedding{Bits: bits}
}

// HammingScore returns the Hamming similarity (fraction of agreeing bits)
// between nodes u and v — BANE's link predictor.
func (e *BANEEmbedding) HammingScore(u, v int) float64 {
	bu, bv := e.Bits.Row(u), e.Bits.Row(v)
	agree := 0
	for i := range bu {
		if bu[i] == bv[i] {
			agree++
		}
	}
	return float64(agree) / float64(len(bu))
}

// Features returns the bit vectors as SVM features.
func (e *BANEEmbedding) Features() *mat.Dense { return e.Bits.Clone() }
