package baselines

import (
	"math/rand"

	"pane/internal/graph"
	"pane/internal/mat"
	"pane/internal/svd"
)

// TADWConfig parameterizes TADW.
type TADWConfig struct {
	K      int     // embedding width of the W factor
	TextK  int     // reduced attribute-feature width (TADW uses SVD-reduced text)
	Lambda float64 // ridge regularization
	Iters  int     // alternating minimization rounds
	Seed   int64
}

// DefaultTADWConfig mirrors the usual TADW setting.
func DefaultTADWConfig() TADWConfig {
	return TADWConfig{K: 128, TextK: 64, Lambda: 0.2, Iters: 10, Seed: 1}
}

// TADW implements text-associated DeepWalk [44]: minimize
//
//	‖M − Wᵀ·H·T‖² + λ(‖W‖² + ‖H‖²)
//
// where M = (P + P²)/2 is the second-order random-walk proximity and
// T (textK x n) is the SVD-reduced attribute feature matrix. W (k x n)
// and H (k x textK) are found by alternating ridge regressions; the final
// node embedding concatenates Wᵀ and (H·T)ᵀ, as in the original paper.
//
// M is dense n x n, which is exactly why TADW cannot scale (§6.1) — we
// keep that property deliberately and only run it on the small datasets,
// like the paper does.
func TADW(g *graph.Graph, cfg TADWConfig) *NodeEmbedding {
	n := g.N
	rng := rand.New(rand.NewSource(cfg.Seed))
	// M = (P + P²)/2, dense n x n. P² is computed as the sparse P times
	// the dense P (O(m·n)), not dense×dense (O(n³)) — still quadratic
	// space, which is TADW's real scalability wall.
	p, _ := g.Walk()
	pd := p.ToDense()
	p2 := p.MulDense(pd)
	m := pd.Clone()
	m.AddScaled(1, p2)
	m.Scale(0.5)
	// T: top-textK right factor of the attribute matrix, rows = features.
	attr := g.Attr.ToDense()
	tk := cfg.TextK
	if tk > g.D {
		tk = g.D
	}
	if tk > n {
		tk = n
	}
	// Per-node reduced features: T = (UΣ)ᵀ, tk x n.
	ares := svd.RandSVD(attr, tk, 3, rng, 1)
	tMat := ares.UScaled().T()
	half := cfg.K / 2
	// Initialize W randomly, H by zeros; alternate.
	w := mat.New(half, n)
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64() * 0.1
	}
	h := mat.New(half, tk)
	for it := 0; it < cfg.Iters; it++ {
		// Fix W, solve H: H = argmin ‖M − Wᵀ H T‖² + λ‖H‖².
		// Normal equations: (W Wᵀ + λI) H (T Tᵀ + λI) ≈ W M Tᵀ — we solve
		// the two-sided system approximately by sequential ridge solves.
		wm := mat.Mul(w, m)         // half x n
		wmT := mat.MulBT(wm, tMat)  // half x tk
		gw := mat.MulBT(w, w)       // half x half (W Wᵀ)
		gt := mat.MulBT(tMat, tMat) // tk x tk (T Tᵀ)
		h = solveTwoSided(gw, gt, wmT, cfg.Lambda)
		// Fix H, solve W: Wᵀ = argmin ‖M − Wᵀ (HT)‖²; W = (HT HTᵀ+λI)⁻¹ HT Mᵀ.
		ht := mat.Mul(h, tMat) // half x n
		ghh := mat.MulBT(ht, ht)
		rhs := mat.MulBT(ht, m) // half x n (HT · Mᵀ; M symmetric-ish but keep explicit)
		w = solveSPD(ghh, rhs, cfg.Lambda)
	}
	// Embedding: [Wᵀ | (H·T)ᵀ], n x k.
	ht := mat.Mul(h, tMat)
	x := mat.New(n, 2*half)
	wT := w.T()
	htT := ht.T()
	x.SetColSlice(0, wT)
	x.SetColSlice(half, htT)
	return &NodeEmbedding{X: x}
}

// solveSPD solves (G + λI)·X = RHS for X via Cholesky-free Gaussian
// elimination (G is small: half x half).
func solveSPD(g, rhs *mat.Dense, lambda float64) *mat.Dense {
	k := g.Rows
	a := g.Clone()
	for i := 0; i < k; i++ {
		a.Set(i, i, a.At(i, i)+lambda)
	}
	return gaussSolve(a, rhs)
}

// solveTwoSided approximately solves (GW + λI)·H·(GT + λI) = RHS by two
// sequential solves: first the left system, then the right.
func solveTwoSided(gw, gt, rhs *mat.Dense, lambda float64) *mat.Dense {
	left := solveSPD(gw, rhs, lambda) // (GW+λI)⁻¹ RHS, half x tk
	// Right solve: H (GT+λI) = left → Hᵀ solves (GT+λI)ᵀ Hᵀ = leftᵀ.
	k := gt.Rows
	a := gt.T()
	for i := 0; i < k; i++ {
		a.Set(i, i, a.At(i, i)+lambda)
	}
	ht := gaussSolve(a, left.T())
	return ht.T()
}

// gaussSolve solves A·X = B with partial pivoting, overwriting copies.
func gaussSolve(a, b *mat.Dense) *mat.Dense {
	n := a.Rows
	aa := a.Clone()
	xx := b.Clone()
	for col := 0; col < n; col++ {
		// Pivot.
		piv := col
		for r := col + 1; r < n; r++ {
			if abs(aa.At(r, col)) > abs(aa.At(piv, col)) {
				piv = r
			}
		}
		if piv != col {
			swapRows(aa, piv, col)
			swapRows(xx, piv, col)
		}
		d := aa.At(col, col)
		if d == 0 {
			continue
		}
		inv := 1 / d
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := aa.At(r, col) * inv
			if f == 0 {
				continue
			}
			arow := aa.Row(r)
			acol := aa.Row(col)
			for j := col; j < n; j++ {
				arow[j] -= f * acol[j]
			}
			xrow := xx.Row(r)
			xcol := xx.Row(col)
			for j := 0; j < xx.Cols; j++ {
				xrow[j] -= f * xcol[j]
			}
		}
	}
	for r := 0; r < n; r++ {
		d := aa.At(r, r)
		if d == 0 {
			continue
		}
		inv := 1 / d
		row := xx.Row(r)
		for j := range row {
			row[j] *= inv
		}
	}
	return xx
}

func swapRows(m *mat.Dense, i, j int) {
	ri, rj := m.Row(i), m.Row(j)
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
