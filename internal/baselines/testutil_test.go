package baselines

import (
	"pane/internal/graph"
)

type graphEdge struct{ u, v int }

// rebuildWithoutAttrs clones g's topology with a single dummy attribute,
// for tests that need attribute-independence.
func rebuildWithoutAttrs(g *graph.Graph) *graph.Graph {
	var edges []graph.Edge
	for u := 0; u < g.N; u++ {
		for _, v := range g.OutNeighbors(u) {
			edges = append(edges, graph.Edge{Src: u, Dst: int(v)})
		}
	}
	out, err := graph.New(g.N, 1, edges, []graph.AttrEntry{{Node: 0, Attr: 0, Weight: 1}}, nil)
	if err != nil {
		panic(err)
	}
	return out
}
