package baselines

import (
	"math"
	"math/rand"
	"testing"

	"pane/internal/eval"
	"pane/internal/mat"
)

func TestAANEShapesAndFinite(t *testing.T) {
	g := benchGraph(30)
	cfg := DefaultAANEConfig()
	cfg.K = 32
	e := AANE(g, cfg)
	if e.X.Rows != g.N || e.X.Cols != 32 {
		t.Fatalf("shape %dx%d", e.X.Rows, e.X.Cols)
	}
	for _, v := range e.X.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite embedding")
		}
	}
}

func TestAANELinkAboveRandom(t *testing.T) {
	g := benchGraph(31)
	rng := rand.New(rand.NewSource(32))
	sp := eval.SplitLinks(g, 0.3, rng)
	cfg := DefaultAANEConfig()
	cfg.K = 32
	e := AANE(sp.Train, cfg)
	aucI, _ := sp.Evaluate(e.InnerScore)
	aucC, _ := sp.Evaluate(e.CosineScore)
	if auc := math.Max(aucI, aucC); auc < 0.6 {
		t.Fatalf("AANE AUC = %v", auc)
	}
}

func TestAANESmoothingPullsNeighborsTogether(t *testing.T) {
	// More smoothing rounds must not increase the mean embedding distance
	// across edges (the Laplacian term it implements).
	g := benchGraph(33)
	dist := func(rounds int) float64 {
		cfg := DefaultAANEConfig()
		cfg.K = 16
		cfg.Rounds = rounds
		e := AANE(g, cfg)
		var sum float64
		cnt := 0
		for u := 0; u < g.N; u++ {
			for _, v := range g.OutNeighbors(u) {
				du := e.X.Row(u)
				dv := e.X.Row(int(v))
				var d2 float64
				for i := range du {
					d2 += (du[i] - dv[i]) * (du[i] - dv[i])
				}
				sum += math.Sqrt(d2)
				cnt++
			}
		}
		return sum / float64(cnt)
	}
	if d3, d0 := dist(3), dist(0); d3 >= d0 {
		t.Fatalf("smoothing did not reduce edge distance: %v vs %v", d3, d0)
	}
}

func TestDeepWalkMFShapes(t *testing.T) {
	g := benchGraph(34)
	cfg := DefaultDeepWalkMFConfig()
	cfg.K = 32
	cfg.Window = 4
	e := DeepWalkMF(g, cfg)
	if e.X.Rows != g.N || e.X.Cols != 32 {
		t.Fatalf("shape %dx%d", e.X.Rows, e.X.Cols)
	}
}

func TestDeepWalkMFLinkPrediction(t *testing.T) {
	g := benchGraph(35)
	rng := rand.New(rand.NewSource(36))
	sp := eval.SplitLinks(g, 0.3, rng)
	cfg := DefaultDeepWalkMFConfig()
	cfg.K = 32
	cfg.Window = 4
	e := DeepWalkMF(sp.Train, cfg)
	aucI, _ := sp.Evaluate(e.InnerScore)
	aucC, _ := sp.Evaluate(e.CosineScore)
	if auc := math.Max(aucI, aucC); auc < 0.55 {
		t.Fatalf("DeepWalkMF AUC = %v", auc)
	}
}

func TestDeepWalkMFIgnoresAttributes(t *testing.T) {
	// Topology-only: scrambling attributes must not change the embedding.
	g1 := benchGraph(37)
	cfg := DefaultDeepWalkMFConfig()
	cfg.K = 16
	cfg.Window = 3
	e1 := DeepWalkMF(g1, cfg)
	// Rebuild with shuffled attribute columns.
	var edges []graphEdge
	for u := 0; u < g1.N; u++ {
		for _, v := range g1.OutNeighbors(u) {
			edges = append(edges, graphEdge{u, int(v)})
		}
	}
	g2 := rebuildWithoutAttrs(g1)
	e2 := DeepWalkMF(g2, cfg)
	_ = edges
	if e1.X.MaxAbsDiff(e2.X) > 0 {
		t.Fatal("DeepWalkMF output depends on attributes")
	}
	var _ *mat.Dense = e1.X
}
