package baselines

import (
	"math"
	"math/rand"
	"testing"

	"pane/internal/datagen"
	"pane/internal/eval"
	"pane/internal/graph"
	"pane/internal/mat"
)

func benchGraph(seed int64) *graph.Graph {
	g, err := datagen.Generate(datagen.Config{
		Name: "test", N: 400, AvgOutDeg: 6, D: 40, AttrsPer: 4,
		Communities: 4, Seed: seed, Homophily: 0.85, AttrSkew: 0.85,
	})
	if err != nil {
		panic(err)
	}
	return g
}

func TestNRPShapesAndFiniteness(t *testing.T) {
	g := benchGraph(1)
	cfg := DefaultNRPConfig()
	cfg.K = 32
	e := NRP(g, cfg)
	if e.Xf.Rows != g.N || e.Xb.Rows != g.N || e.Xf.Cols != 16 {
		t.Fatal("NRP shapes wrong")
	}
	for _, m := range []*mat.Dense{e.Xf, e.Xb} {
		for i, v := range m.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("non-finite at %d", i)
			}
		}
	}
}

func TestNRPLinkPredictionBeatsRandom(t *testing.T) {
	g := benchGraph(2)
	rng := rand.New(rand.NewSource(3))
	sp := eval.SplitLinks(g, 0.3, rng)
	cfg := DefaultNRPConfig()
	cfg.K = 32
	e := NRP(sp.Train, cfg)
	auc, _ := sp.Evaluate(e.Directed)
	if auc < 0.65 {
		t.Fatalf("NRP link AUC = %v, want > 0.65", auc)
	}
}

func TestNRPDeterministic(t *testing.T) {
	g := benchGraph(4)
	cfg := DefaultNRPConfig()
	cfg.K = 16
	a := NRP(g, cfg)
	b := NRP(g, cfg)
	if a.Xf.MaxAbsDiff(b.Xf) > 0 {
		t.Fatal("NRP not deterministic for fixed seed")
	}
}

func TestNRPParallelMatchesSerial(t *testing.T) {
	g := benchGraph(5)
	cfg := DefaultNRPConfig()
	cfg.K = 16
	serial := NRP(g, cfg)
	cfg.NB = 4
	par := NRP(g, cfg)
	if serial.Xf.MaxAbsDiff(par.Xf) > 1e-9 {
		t.Fatal("parallel NRP deviates")
	}
}

func TestTADWEmbeddingQuality(t *testing.T) {
	g := benchGraph(6)
	rng := rand.New(rand.NewSource(7))
	sp := eval.SplitLinks(g, 0.3, rng)
	cfg := DefaultTADWConfig()
	cfg.K = 32
	cfg.TextK = 16
	cfg.Iters = 5
	e := TADW(sp.Train, cfg)
	if e.X.Rows != g.N || e.X.Cols != 32 {
		t.Fatalf("TADW shape %dx%d", e.X.Rows, e.X.Cols)
	}
	aucInner, _ := sp.Evaluate(e.InnerScore)
	aucCos, _ := sp.Evaluate(e.CosineScore)
	auc := math.Max(aucInner, aucCos)
	if auc < 0.6 {
		t.Fatalf("TADW link AUC = %v, want > 0.6", auc)
	}
}

func TestGaussSolve(t *testing.T) {
	a := mat.FromRows([][]float64{{4, 1}, {1, 3}})
	b := mat.FromRows([][]float64{{1, 0}, {0, 1}})
	x := gaussSolve(a, b)
	// Check A·X = I.
	prod := mat.Mul(a, x)
	id := mat.FromRows([][]float64{{1, 0}, {0, 1}})
	if prod.MaxAbsDiff(id) > 1e-10 {
		t.Fatalf("gaussSolve failed: %v", prod.Data)
	}
}

func TestGaussSolveSingularDoesNotExplode(t *testing.T) {
	a := mat.FromRows([][]float64{{1, 1}, {1, 1}})
	b := mat.FromRows([][]float64{{1}, {1}})
	x := gaussSolve(a, b)
	for _, v := range x.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("singular solve produced non-finite values")
		}
	}
}

func TestBANEBinary(t *testing.T) {
	g := benchGraph(8)
	cfg := DefaultBANEConfig()
	cfg.K = 32
	e := BANE(g, cfg)
	for _, v := range e.Bits.Data {
		if v != 1 && v != -1 {
			t.Fatalf("non-binary entry %v", v)
		}
	}
	if s := e.HammingScore(0, 0); s != 1 {
		t.Fatalf("self Hamming = %v, want 1", s)
	}
}

func TestBANELinkAboveRandom(t *testing.T) {
	g := benchGraph(9)
	rng := rand.New(rand.NewSource(10))
	sp := eval.SplitLinks(g, 0.3, rng)
	cfg := DefaultBANEConfig()
	cfg.K = 32
	e := BANE(sp.Train, cfg)
	auc, _ := sp.Evaluate(e.HammingScore)
	if auc < 0.55 {
		t.Fatalf("BANE AUC = %v", auc)
	}
}

func TestLQANRQuantized(t *testing.T) {
	g := benchGraph(11)
	cfg := DefaultLQANRConfig()
	cfg.K = 32
	cfg.Bits = 3
	e := LQANR(g, cfg)
	limit := math.Pow(2, 3)
	for _, v := range e.X.Data {
		if v != math.Round(v) {
			t.Fatalf("non-integer quantized value %v", v)
		}
		if math.Abs(v) > limit {
			t.Fatalf("value %v exceeds 2^b = %v", v, limit)
		}
	}
}

func TestLQANRMoreBitsAtLeastAsGood(t *testing.T) {
	// More quantization levels should not hurt link AUC much; with very
	// few bits accuracy degrades — the space/accuracy trade-off LQANR is
	// about. We assert the 6-bit variant is at least as good as 1-bit
	// minus small noise.
	g := benchGraph(12)
	rng := rand.New(rand.NewSource(13))
	sp := eval.SplitLinks(g, 0.3, rng)
	auc := func(bits int) float64 {
		cfg := DefaultLQANRConfig()
		cfg.K = 32
		cfg.Bits = bits
		e := LQANR(sp.Train, cfg)
		ne := NodeEmbedding{X: e.X}
		a, _ := sp.Evaluate(ne.CosineScore)
		return a
	}
	if a6, a1 := auc(6), auc(1); a6+0.03 < a1 {
		t.Fatalf("6-bit AUC %v markedly below 1-bit %v", a6, a1)
	}
}

func TestCANLiteAttributeInference(t *testing.T) {
	g := benchGraph(14)
	rng := rand.New(rand.NewSource(15))
	sp := eval.SplitAttributes(g, 0.8, rng)
	cfg := DefaultCANLiteConfig()
	cfg.K = 32
	e := CANLite(sp.Train, cfg)
	auc, ap := sp.Evaluate(e.AttrScore)
	if auc < 0.6 || ap < 0.6 {
		t.Fatalf("CANLite attribute inference AUC=%v AP=%v", auc, ap)
	}
}

func TestCANLiteShapes(t *testing.T) {
	g := benchGraph(16)
	cfg := DefaultCANLiteConfig()
	cfg.K = 24
	e := CANLite(g, cfg)
	if e.X.Rows != g.N || e.Y.Rows != g.D || e.X.Cols != e.Y.Cols {
		t.Fatal("CANLite shapes wrong")
	}
}

func TestBLAAttributeInference(t *testing.T) {
	g := benchGraph(17)
	rng := rand.New(rand.NewSource(18))
	sp := eval.SplitAttributes(g, 0.8, rng)
	bla := RunBLA(sp.Train, DefaultBLAConfig())
	auc, _ := sp.Evaluate(bla.AttrScore)
	if auc < 0.55 {
		t.Fatalf("BLA AUC = %v", auc)
	}
}

func TestBLAAnchorsObserved(t *testing.T) {
	// Observed attributes must keep positive score after propagation.
	g := benchGraph(19)
	bla := RunBLA(g, DefaultBLAConfig())
	for v := 0; v < g.N; v++ {
		cols, _ := g.NodeAttrs(v)
		for _, c := range cols {
			if bla.AttrScore(v, int(c)) <= 0 {
				t.Fatalf("observed attribute (%d,%d) scored %v", v, c, bla.AttrScore(v, int(c)))
			}
		}
	}
}

func TestNodeEmbeddingScorers(t *testing.T) {
	x := mat.FromRows([][]float64{{1, 0}, {2, 0}, {0, 3}})
	e := NodeEmbedding{X: x}
	if e.InnerScore(0, 1) != 2 {
		t.Fatalf("inner = %v", e.InnerScore(0, 1))
	}
	if math.Abs(e.CosineScore(0, 1)-1) > 1e-12 {
		t.Fatalf("cosine = %v", e.CosineScore(0, 1))
	}
	if e.CosineScore(0, 2) != 0 {
		t.Fatal("orthogonal cosine should be 0")
	}
	f := e.Features()
	for i := 0; i < f.Rows; i++ {
		if n := mat.Norm2(f.Row(i)); math.Abs(n-1) > 1e-12 {
			t.Fatalf("feature row %d norm %v", i, n)
		}
	}
}
