package baselines

import (
	"math"
	"math/rand"

	"pane/internal/graph"
	"pane/internal/mat"
	"pane/internal/svd"
)

// CANLiteEmbedding co-embeds nodes and attributes in the same space, the
// capability that makes CAN [27] the paper's only attribute-inference-
// capable competitor.
type CANLiteEmbedding struct {
	X *mat.Dense // n x k node embeddings
	Y *mat.Dense // d x k attribute embeddings
}

// CANLiteConfig parameterizes CANLite.
type CANLiteConfig struct {
	K    int
	Hops int // graph-convolution smoothing rounds before factorization
	Seed int64
}

// DefaultCANLiteConfig uses two smoothing hops, the depth of CAN's GCN
// encoder.
func DefaultCANLiteConfig() CANLiteConfig {
	return CANLiteConfig{K: 128, Hops: 2, Seed: 1}
}

// CANLite is the spectral proxy for CAN: the attribute matrix is smoothed
// by Â^hops (the linearized two-layer GCN — "simple graph convolution"),
// then the smoothed node-attribute matrix is factorized as X·Yᵀ by
// randomized SVD with square-root singular value splitting, giving node
// and attribute embeddings whose inner product reconstructs smoothed
// node-attribute affinity. This replaces CAN's variational autoencoder
// with its linear skeleton (DESIGN.md §3): it keeps the co-embedding
// geometry (inner-product scoring for both attribute inference and link
// prediction) while dropping the nonlinearity.
func CANLite(g *graph.Graph, cfg CANLiteConfig) *CANLiteEmbedding {
	smooth := normalizedAdjacencyWithSelfLoops(g)
	s := g.Attr.ToDense()
	// Column-normalize first so high-frequency attributes do not dominate.
	s.NormalizeColumns()
	for h := 0; h < cfg.Hops; h++ {
		s = smooth(s)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	k := cfg.K
	if k > g.D {
		k = g.D
	}
	res := svd.RandSVD(s, k, 3, rng, 1)
	x := res.U.Clone()
	y := res.V.Clone()
	for j, sv := range res.S {
		r := math.Sqrt(sv)
		for i := 0; i < x.Rows; i++ {
			x.Set(i, j, x.At(i, j)*r)
		}
		for i := 0; i < y.Rows; i++ {
			y.Set(i, j, y.At(i, j)*r)
		}
	}
	return &CANLiteEmbedding{X: x, Y: y}
}

// AttrScore returns the attribute-inference score X[v]·Y[r].
func (e *CANLiteEmbedding) AttrScore(v, r int) float64 {
	return mat.Dot(e.X.Row(v), e.Y.Row(r))
}

// LinkScore returns the inner-product link score X[u]·X[v] (CAN treats
// graphs as undirected).
func (e *CANLiteEmbedding) LinkScore(u, v int) float64 {
	return mat.Dot(e.X.Row(u), e.X.Row(v))
}

// Features returns row-normalized node embeddings for classification.
func (e *CANLiteEmbedding) Features() *mat.Dense {
	ne := NodeEmbedding{X: e.X}
	return ne.Features()
}
