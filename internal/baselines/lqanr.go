package baselines

import (
	"math"
	"math/rand"

	"pane/internal/graph"
	"pane/internal/svd"
)

// LQANRConfig parameterizes the low-bit quantized baseline.
type LQANRConfig struct {
	K     int
	Bits  int // bit-width b; entries quantize to {−2^b, …, −1, 0, 1, …, 2^b}
	Hops  int
	Alpha float64
	Seed  int64
}

// DefaultLQANRConfig uses b = 4, a midpoint of the original's studied
// range.
func DefaultLQANRConfig() LQANRConfig {
	return LQANRConfig{K: 128, Bits: 4, Hops: 2, Alpha: 0.7, Seed: 1}
}

// LQANR computes a low-bit quantized embedding [46]: like BANE it fuses
// topology and attributes by smoothing, factorizes, then quantizes — but
// to 2^b+1 magnitude levels instead of signs, trading space for accuracy.
// The original learns the quantized factors directly with alternating
// optimization; we substitute factorize-then-quantize (DESIGN.md §3).
func LQANR(g *graph.Graph, cfg LQANRConfig) *NodeEmbedding {
	smooth := normalizedAdjacencyWithSelfLoops(g)
	s := g.Attr.ToDense()
	for h := 0; h < cfg.Hops; h++ {
		sm := smooth(s)
		sm.Scale(cfg.Alpha)
		s.Scale(1 - cfg.Alpha)
		s.AddScaled(1, sm)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	k := cfg.K
	if k > g.D {
		k = g.D
	}
	res := svd.RandSVD(s, k, 3, rng, 1)
	x := res.UScaled()
	// Quantize each column to integer levels in [−2^b, 2^b], scaling by
	// the column's max magnitude.
	levels := math.Pow(2, float64(cfg.Bits))
	for j := 0; j < x.Cols; j++ {
		var maxAbs float64
		for i := 0; i < x.Rows; i++ {
			if a := math.Abs(x.At(i, j)); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs == 0 {
			continue
		}
		scale := levels / maxAbs
		for i := 0; i < x.Rows; i++ {
			x.Set(i, j, math.Round(x.At(i, j)*scale))
		}
	}
	return &NodeEmbedding{X: x}
}
