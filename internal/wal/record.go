package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"pane/internal/graph"
)

// Record is one durable update: the graph delta an applied update carried
// and the model version that applying it produced. The version is the
// contiguity token of the whole replication design — a log replayed onto
// a bundle at version V must supply records V+1, V+2, ... with no gap,
// and a follower applies a record only when it extends its current
// version by exactly one.
type Record struct {
	Version uint64
	// Epoch is the fencing epoch of the leader that produced this record.
	// Failover promotes a follower at epoch+1; an engine refuses records
	// (and a log refuses appends) from any earlier epoch, so a deposed
	// leader that keeps writing can never land a record the promoted
	// lineage would accept — two epochs never share a version. Epoch-less
	// PR 8 logs decode as epoch 0.
	Epoch uint32
	Edges []graph.Edge
	Attrs []graph.AttrEntry
}

// Frame layout (everything little-endian, matching internal/store):
//
//	uint32 payload length
//	uint32 CRC-32C (Castagnoli) of the payload
//	payload:
//	  uint64 version
//	  uint32 edge count (bit 31 = epoch flag), uint32 attr count
//	  [uint32 epoch — only when the epoch flag is set]
//	  per edge:  uint32 src, uint32 dst
//	  per attr:  uint32 node, uint32 attr, float64 weight
//
// The checksum covers the payload only; the length word is validated
// structurally (a frame is accepted only if exactly length bytes follow
// and their CRC matches). Torn writes therefore fail closed: a partial
// frame at the tail of a segment can never be mistaken for a record.
//
// The epoch rides in spare headroom: edge counts never approach 2^31, so
// bit 31 of the count word versions the frame. Epoch-0 records encode
// without the flag or the epoch word — byte-identical to the PR 8
// format — which keeps old logs replayable and keeps a never-failed-over
// deployment's log bytes unchanged. A non-zero epoch sets the flag and
// inserts one uint32 after the counts.

// castagnoli is the CRC-32C table; hardware-accelerated on amd64/arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const (
	frameHeaderSize = 8       // length + crc words
	recordBaseSize  = 16      // version + the two count words
	epochSize       = 4       // the epoch word, present only under epochFlag
	edgeSize        = 8       // two uint32s
	attrSize        = 16      // two uint32s + one float64
	maxPayload      = 1 << 30 // sanity bound; a real record is far smaller

	// epochFlag marks an epoch-bearing frame in bit 31 of the edge-count
	// word (counts never get near it).
	epochFlag = 1 << 31
)

// ErrTorn reports a structurally incomplete or checksum-failing frame —
// the expected disk state after a crash mid-write. Open truncates a torn
// tail; any other reader treats it as "the log ends here".
var ErrTorn = fmt.Errorf("wal: torn record")

// tornOr maps a mid-frame read failure: running out of bytes is the
// torn-tail crash signature, while any other error (EIO) is a live
// read failure that must surface as itself.
func tornOr(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return ErrTorn
	}
	return err
}

// payloadSize returns the encoded payload size of rec.
func payloadSize(rec Record) int {
	n := recordBaseSize + edgeSize*len(rec.Edges) + attrSize*len(rec.Attrs)
	if rec.Epoch != 0 {
		n += epochSize
	}
	return n
}

// EncodeFrame appends rec's frame (header + payload) to dst and returns
// the extended slice. The encoding is deterministic, so re-encoding a
// decoded record reproduces the original bytes — which is what lets the
// /replicate endpoint stream records it read back from the log.
func EncodeFrame(dst []byte, rec Record) ([]byte, error) {
	for _, e := range rec.Edges {
		if e.Src < 0 || e.Dst < 0 || e.Src > math.MaxUint32 || e.Dst > math.MaxUint32 {
			return nil, fmt.Errorf("wal: edge (%d,%d) outside the uint32 id space", e.Src, e.Dst)
		}
	}
	for _, a := range rec.Attrs {
		if a.Node < 0 || a.Attr < 0 || a.Node > math.MaxUint32 || a.Attr > math.MaxUint32 {
			return nil, fmt.Errorf("wal: attr entry (%d,%d) outside the uint32 id space", a.Node, a.Attr)
		}
	}
	if len(rec.Edges) >= epochFlag || len(rec.Attrs) >= epochFlag {
		return nil, fmt.Errorf("wal: record v%d carries %d edges + %d attrs, past the count field",
			rec.Version, len(rec.Edges), len(rec.Attrs))
	}
	n := payloadSize(rec)
	start := len(dst)
	dst = append(dst, make([]byte, frameHeaderSize+n)...)
	payload := dst[start+frameHeaderSize:]
	binary.LittleEndian.PutUint64(payload[0:], rec.Version)
	nEdgesWord := uint32(len(rec.Edges))
	off := recordBaseSize
	if rec.Epoch != 0 {
		nEdgesWord |= epochFlag
		binary.LittleEndian.PutUint32(payload[recordBaseSize:], rec.Epoch)
		off += epochSize
	}
	binary.LittleEndian.PutUint32(payload[8:], nEdgesWord)
	binary.LittleEndian.PutUint32(payload[12:], uint32(len(rec.Attrs)))
	for _, e := range rec.Edges {
		binary.LittleEndian.PutUint32(payload[off:], uint32(e.Src))
		binary.LittleEndian.PutUint32(payload[off+4:], uint32(e.Dst))
		off += edgeSize
	}
	for _, a := range rec.Attrs {
		binary.LittleEndian.PutUint32(payload[off:], uint32(a.Node))
		binary.LittleEndian.PutUint32(payload[off+4:], uint32(a.Attr))
		binary.LittleEndian.PutUint64(payload[off+8:], math.Float64bits(a.Weight))
		off += attrSize
	}
	binary.LittleEndian.PutUint32(dst[start:], uint32(n))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.Checksum(payload, castagnoli))
	return dst, nil
}

// ReadFrame decodes the next frame from br. It returns io.EOF at a clean
// record boundary, ErrTorn when the stream ends inside a frame or the
// checksum fails, and a descriptive error for a checksum-valid but
// structurally inconsistent payload (which only a writer bug produces).
func ReadFrame(br *bufio.Reader) (Record, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:1]); err != nil {
		if err == io.EOF {
			return Record{}, io.EOF // clean end: not a single byte of a next frame
		}
		// A real read error (EIO, injected fault) is neither a clean end
		// nor a torn tail: reporting it as ErrTorn would let a recovery
		// scan truncate perfectly good records behind a flaky read.
		return Record{}, err
	}
	if _, err := io.ReadFull(br, hdr[1:]); err != nil {
		return Record{}, tornOr(err)
	}
	n := binary.LittleEndian.Uint32(hdr[0:])
	crc := binary.LittleEndian.Uint32(hdr[4:])
	if n < recordBaseSize || n > maxPayload {
		return Record{}, ErrTorn
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		return Record{}, tornOr(err)
	}
	if crc32.Checksum(payload, castagnoli) != crc {
		return Record{}, ErrTorn
	}
	return decodePayload(payload)
}

// decodePayload parses a checksum-verified payload.
func decodePayload(payload []byte) (Record, error) {
	rec := Record{Version: binary.LittleEndian.Uint64(payload[0:])}
	nEdgesWord := binary.LittleEndian.Uint32(payload[8:])
	nEdges := int(nEdgesWord &^ epochFlag)
	nAttrs := int(binary.LittleEndian.Uint32(payload[12:]))
	off := recordBaseSize
	want := recordBaseSize + edgeSize*nEdges + attrSize*nAttrs
	if nEdgesWord&epochFlag != 0 {
		want += epochSize
		if len(payload) < off+epochSize {
			return Record{}, fmt.Errorf("wal: record v%d sets the epoch flag on a %d-byte payload", rec.Version, len(payload))
		}
		rec.Epoch = binary.LittleEndian.Uint32(payload[off:])
		if rec.Epoch == 0 {
			return Record{}, fmt.Errorf("wal: record v%d carries an explicit epoch 0 (flag without epoch)", rec.Version)
		}
		off += epochSize
	}
	if want != len(payload) {
		return Record{}, fmt.Errorf("wal: record v%d declares %d edges + %d attrs (%d bytes) but carries %d",
			rec.Version, nEdges, nAttrs, want, len(payload))
	}
	if nEdges > 0 {
		rec.Edges = make([]graph.Edge, nEdges)
		for i := range rec.Edges {
			rec.Edges[i] = graph.Edge{
				Src: int(binary.LittleEndian.Uint32(payload[off:])),
				Dst: int(binary.LittleEndian.Uint32(payload[off+4:])),
			}
			off += edgeSize
		}
	}
	if nAttrs > 0 {
		rec.Attrs = make([]graph.AttrEntry, nAttrs)
		for i := range rec.Attrs {
			rec.Attrs[i] = graph.AttrEntry{
				Node:   int(binary.LittleEndian.Uint32(payload[off:])),
				Attr:   int(binary.LittleEndian.Uint32(payload[off+4:])),
				Weight: math.Float64frombits(binary.LittleEndian.Uint64(payload[off+8:])),
			}
			off += attrSize
		}
	}
	return rec, nil
}
