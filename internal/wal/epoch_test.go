package wal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"reflect"
	"testing"

	"pane/internal/graph"
)

// TestEpochFrameRoundTrip pins the epoch-bearing frame format: non-zero
// epochs survive encode/decode and re-encode byte-identically.
func TestEpochFrameRoundTrip(t *testing.T) {
	for _, epoch := range []uint32{1, 2, 1 << 20, 1<<32 - 1} {
		rec := testRecord(7)
		rec.Epoch = epoch
		frame, err := EncodeFrame(nil, rec)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ReadFrame(bufio.NewReader(bytes.NewReader(frame)))
		if err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		if !reflect.DeepEqual(rec, got) {
			t.Fatalf("epoch %d round trip: %+v != %+v", epoch, got, rec)
		}
		again, err := EncodeFrame(nil, got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(frame, again) {
			t.Fatalf("epoch %d re-encode differs", epoch)
		}
	}
}

// TestEpochZeroFrameMatchesPR8Format: an epoch-0 record must encode
// without the flag or the epoch word — byte-identical to the epoch-less
// PR 8 frame — so old logs stay readable and unfailed deployments write
// unchanged bytes. The golden bytes pin the v1 layout literally.
func TestEpochZeroFrameMatchesPR8Format(t *testing.T) {
	rec := Record{Version: 3, Edges: []graph.Edge{{Src: 1, Dst: 2}}}
	frame, err := EncodeFrame(nil, rec)
	if err != nil {
		t.Fatal(err)
	}
	if n := binary.LittleEndian.Uint32(frame[8+8:]); n&epochFlag != 0 {
		t.Fatalf("epoch-0 frame sets the epoch flag: count word %#x", n)
	}
	golden := []byte{
		0x18, 0x00, 0x00, 0x00, // payload length = 24
		0x00, 0x00, 0x00, 0x00, // crc placeholder, checked below
		0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // version 3
		0x01, 0x00, 0x00, 0x00, // 1 edge, no flag
		0x00, 0x00, 0x00, 0x00, // 0 attrs
		0x01, 0x00, 0x00, 0x00, // src 1
		0x02, 0x00, 0x00, 0x00, // dst 2
	}
	if !bytes.Equal(frame[:4], golden[:4]) || !bytes.Equal(frame[8:], golden[8:]) {
		t.Fatalf("epoch-0 frame diverged from the PR 8 layout:\n got %x\nwant %x (crc word free)", frame, golden)
	}
	// And an explicit flag with epoch word 0 is a writer bug, not a record.
	bad := append([]byte(nil), frame...)
	payload := bad[frameHeaderSize:]
	binary.LittleEndian.PutUint32(payload[8:], 1|epochFlag)
	grown := append(payload[:recordBaseSize:recordBaseSize], append([]byte{0, 0, 0, 0}, payload[recordBaseSize:]...)...)
	if _, err := decodePayload(grown); err == nil {
		t.Fatal("explicit epoch-0 flag accepted")
	}
}

// TestAppendEnforcesEpochMonotonicity: once a log holds an epoch-e
// record, appends from any earlier epoch fail with ErrEpochFenced — the
// deposed-leader write — while equal and later epochs extend it.
func TestAppendEnforcesEpochMonotonicity(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	appendRecords(t, l, 1, 3) // epoch 0
	rec := testRecord(4)
	rec.Epoch = 2
	if err := l.Append(rec); err != nil {
		t.Fatal(err)
	}
	if got := l.LastEpoch(); got != 2 {
		t.Fatalf("LastEpoch = %d, want 2", got)
	}
	old := testRecord(5)
	old.Epoch = 1
	if err := l.Append(old); !errors.Is(err, ErrEpochFenced) {
		t.Fatalf("stale-epoch append: err = %v, want ErrEpochFenced", err)
	}
	same := testRecord(5)
	same.Epoch = 2
	if err := l.Append(same); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen revalidates the epochs and keeps fencing.
	l, err = Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if got := l.LastEpoch(); got != 2 {
		t.Fatalf("LastEpoch after reopen = %d, want 2", got)
	}
	stale := testRecord(6)
	stale.Epoch = 1
	if err := l.Append(stale); !errors.Is(err, ErrEpochFenced) {
		t.Fatalf("stale-epoch append after reopen: err = %v, want ErrEpochFenced", err)
	}
	recs, err := l.ReadFrom(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantEpochs := []uint32{0, 0, 0, 2, 2}
	for i, rec := range recs {
		if rec.Epoch != wantEpochs[i] {
			t.Fatalf("record %d epoch = %d, want %d", i+1, rec.Epoch, wantEpochs[i])
		}
	}
}

// TestOpenRejectsEpochRegression: a log whose bytes regress the epoch
// mid-stream is corrupt (only a writer bug or tampering produces it).
func TestOpenRejectsEpochRegression(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	r1 := testRecord(1)
	r1.Epoch = 3
	if err := l.Append(r1); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Hand-append a frame at an earlier epoch, bypassing Append's check.
	r2 := testRecord(2)
	r2.Epoch = 1
	frame, err := EncodeFrame(nil, r2)
	if err != nil {
		t.Fatal(err)
	}
	f, err := OSFS().OpenAppend(segmentPath(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := Open(dir, Options{Sync: SyncNone}); err == nil {
		t.Fatal("epoch regression accepted on open")
	}
}
