// Package wal implements the durable write-ahead delta log behind the
// serving engine: an append-only, checksummed record stream of the
// edge/attr deltas each applied update carried, segmented for
// compaction. The log is the database (LogBase-style): a leader appends
// every update before publishing the new model version, a restarted
// leader replays log-after-bundle, and followers tail it over
// /replicate.
package wal

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SyncPolicy selects when appended records are fsynced.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: an acknowledged update
	// survives power loss. The durable default.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a background timer (Options.SyncEvery):
	// bounded loss window, near-SyncNone throughput.
	SyncInterval
	// SyncNone never fsyncs explicitly; the OS flushes when it likes.
	// Crash-consistent (torn tails still truncate cleanly) but recent
	// acknowledged updates can vanish.
	SyncNone
)

// ParseSyncPolicy maps the -wal-sync flag values.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	}
	return SyncAlways, fmt.Errorf("wal: unknown sync policy %q (want always|interval|none)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// Options tune a Log. Zero values mean the defaults below.
type Options struct {
	// SegmentBytes rotates to a new segment file once the active one
	// would exceed this size. Default 64 MiB.
	SegmentBytes int64
	// Sync is the fsync policy for appends. Default SyncAlways.
	Sync SyncPolicy
	// SyncEvery is the flush cadence under SyncInterval. Default 100ms.
	SyncEvery time.Duration
	// FS is the filesystem the log runs on. Nil means the real OS;
	// internal/faults injects short writes, fsync errors, and read
	// failures through it.
	FS FS
}

const (
	defaultSegmentBytes = 64 << 20
	defaultSyncEvery    = 100 * time.Millisecond
	segmentSuffix       = ".wal"
)

// ErrCompacted reports that the requested records were reclaimed by
// compaction; the caller must fetch a bundle instead of replaying.
var ErrCompacted = errors.New("wal: requested records compacted away")

// segment is the in-memory index entry for one on-disk segment file.
// Segments are named by their first record version (zero-padded so the
// lexical directory order is the version order) and hold a contiguous,
// strictly increasing version range.
type segment struct {
	path        string
	first, last uint64
	size        int64
	// lastEpoch is the fencing epoch of the segment's newest record;
	// epochs are non-decreasing across the whole log.
	lastEpoch uint32
}

// Log is a durable segmented record log. All mutation happens under mu;
// ReadFrom snapshots segment metadata under mu and then reads file
// bytes lock-free (appends only ever extend the active file, and each
// record lands in a single write call).
type Log struct {
	dir  string
	opts Options
	fs   FS

	mu        sync.Mutex
	segments  []segment
	f         File   // active (= last) segment, nil when the log is empty
	buf       []byte // reused frame encode buffer
	dirty     bool   // unsynced appends under SyncInterval
	closed    bool
	lastEpoch uint32 // newest record's fencing epoch; appends never regress it

	// crashAfter, when positive, makes the next Append write only that
	// many bytes of the frame and then fail the log — the injected
	// crash point the recovery tests tear pages with.
	crashAfter int

	stopSync chan struct{} // interval flusher shutdown
	syncDone chan struct{}
}

// Open opens (creating if needed) the log directory, validates every
// segment record-by-record, and truncates a torn tail on the final
// segment. Corruption anywhere but the final segment's tail is a hard
// error: that is not a crash artifact.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = defaultSyncEvery
	}
	if opts.FS == nil {
		opts.FS = OSFS()
	}
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	names, err := segmentNames(opts.FS, dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts, fs: opts.FS}
	for i, name := range names {
		seg, err := l.scanSegment(filepath.Join(dir, name), i == len(names)-1)
		if err != nil {
			return nil, err
		}
		if seg.size == 0 {
			// A truncated-to-empty final segment: remove it rather than
			// carry a segment with no records.
			if err := l.fs.Remove(seg.path); err != nil {
				return nil, fmt.Errorf("wal: %w", err)
			}
			continue
		}
		if n := len(l.segments); n > 0 {
			if seg.first != l.segments[n-1].last+1 {
				return nil, fmt.Errorf("wal: version gap between %s (ends %d) and %s (starts %d)",
					l.segments[n-1].path, l.segments[n-1].last, seg.path, seg.first)
			}
		}
		if seg.lastEpoch < l.lastEpoch {
			return nil, fmt.Errorf("wal: %s regresses the fencing epoch from %d to %d",
				seg.path, l.lastEpoch, seg.lastEpoch)
		}
		l.lastEpoch = seg.lastEpoch
		l.segments = append(l.segments, seg)
	}
	if n := len(l.segments); n > 0 {
		f, err := l.fs.OpenAppend(l.segments[n-1].path)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		l.f = f
	}
	if opts.Sync == SyncInterval {
		l.stopSync = make(chan struct{})
		l.syncDone = make(chan struct{})
		go l.syncLoop()
	}
	return l, nil
}

// segmentNames lists the *.wal files in dir in version order.
func segmentNames(fs FS, dir string) ([]string, error) {
	entries, err := fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), segmentSuffix) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// scanSegment validates one segment file and returns its metadata. For
// the final segment a torn tail is truncated in place; for any other
// segment it is corruption.
func (l *Log) scanSegment(path string, last bool) (segment, error) {
	f, err := l.fs.Open(path)
	if err != nil {
		return segment{}, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	nameVer, err := versionFromName(path)
	if err != nil {
		return segment{}, err
	}
	seg := segment{path: path}
	br := bufio.NewReader(f)
	for {
		rec, err := ReadFrame(br)
		if err == io.EOF {
			break
		}
		if errors.Is(err, ErrTorn) {
			if !last {
				return segment{}, fmt.Errorf("wal: %s is corrupt mid-log (torn record after version %d)", path, seg.last)
			}
			if err := l.fs.Truncate(path, seg.size); err != nil {
				return segment{}, fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
			}
			break
		}
		if err != nil {
			return segment{}, err
		}
		if seg.size == 0 {
			if rec.Version != nameVer {
				return segment{}, fmt.Errorf("wal: %s starts at version %d, want %d", path, rec.Version, nameVer)
			}
			seg.first = rec.Version
		} else if rec.Version != seg.last+1 {
			return segment{}, fmt.Errorf("wal: %s skips from version %d to %d", path, seg.last, rec.Version)
		}
		if rec.Epoch < seg.lastEpoch {
			return segment{}, fmt.Errorf("wal: %s regresses the fencing epoch from %d to %d at version %d",
				path, seg.lastEpoch, rec.Epoch, rec.Version)
		}
		seg.last = rec.Version
		seg.lastEpoch = rec.Epoch
		seg.size += int64(frameHeaderSize + payloadSize(rec))
	}
	return seg, nil
}

func versionFromName(path string) (uint64, error) {
	base := strings.TrimSuffix(filepath.Base(path), segmentSuffix)
	v, err := strconv.ParseUint(base, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("wal: segment name %q is not a version: %w", filepath.Base(path), err)
	}
	return v, nil
}

func segmentPath(dir string, first uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%020d%s", first, segmentSuffix))
}

// ErrEpochFenced reports an append stamped with a fencing epoch older
// than one the log has already recorded — the deposed-leader write the
// whole failover design exists to refuse.
var ErrEpochFenced = errors.New("wal: append from a deposed fencing epoch")

// Append durably records rec. Versions must be contiguous: on a
// non-empty log rec.Version must be exactly LastVersion()+1 — the same
// invariant replay and followers rely on. Epochs must be non-decreasing:
// an append fenced below the log's newest epoch fails with
// ErrEpochFenced, so no version can ever exist under two epochs.
func (l *Log) Append(rec Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: append on closed log")
	}
	if n := len(l.segments); n > 0 && rec.Version != l.segments[n-1].last+1 {
		return fmt.Errorf("wal: append version %d does not extend last version %d", rec.Version, l.segments[n-1].last)
	}
	if rec.Epoch < l.lastEpoch {
		return fmt.Errorf("%w: record v%d at epoch %d, log already at epoch %d",
			ErrEpochFenced, rec.Version, rec.Epoch, l.lastEpoch)
	}
	frame, err := EncodeFrame(l.buf[:0], rec)
	if err != nil {
		return err
	}
	l.buf = frame
	if l.f != nil {
		if active := &l.segments[len(l.segments)-1]; active.size+int64(len(frame)) > l.opts.SegmentBytes && active.size > 0 {
			if err := l.rotateLocked(); err != nil {
				return err
			}
		}
	}
	if l.f == nil {
		if err := l.createSegmentLocked(rec.Version); err != nil {
			return err
		}
	}
	if l.crashAfter > 0 && l.crashAfter < len(frame) {
		// Injected crash: persist a torn prefix of the frame and die.
		l.f.Write(frame[:l.crashAfter])
		l.f.Sync()
		l.f.Close()
		l.closed = true
		return errors.New("wal: injected crash mid-record")
	}
	active := &l.segments[len(l.segments)-1]
	if n, err := l.f.Write(frame); err != nil || n < len(frame) {
		// A short or failed write left a partial frame on disk. Roll the
		// segment back to its last good length so the log stays append-
		// clean; if even that fails the log is poisoned — better closed
		// than silently corrupt mid-file.
		if terr := l.fs.Truncate(active.path, active.size); terr != nil {
			l.closed = true
			return fmt.Errorf("wal: partial append (%v) and rollback failed (%v); log closed", err, terr)
		}
		if err == nil {
			err = io.ErrShortWrite
		}
		return fmt.Errorf("wal: %w", err)
	}
	switch l.opts.Sync {
	case SyncAlways:
		if err := l.f.Sync(); err != nil {
			// The frame reached the file but not the platter. Appends are
			// atomic: roll the unsynced frame back so a retry of the same
			// version stays contiguous — the caller was never acked.
			if terr := l.fs.Truncate(active.path, active.size); terr != nil {
				l.closed = true
				return fmt.Errorf("wal: fsync failed (%v) and rollback failed (%v); log closed", err, terr)
			}
			return fmt.Errorf("wal: %w", err)
		}
	case SyncInterval:
		l.dirty = true
	}
	active.size += int64(len(frame))
	active.last = rec.Version
	active.lastEpoch = rec.Epoch
	l.lastEpoch = rec.Epoch
	return nil
}

// rotateLocked seals the active segment; the next append creates a
// fresh one named by its record's version.
func (l *Log) rotateLocked() error {
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.f = nil
	return nil
}

// createSegmentLocked starts a new segment whose first record will be
// version first, and fsyncs the directory so the file itself survives.
func (l *Log) createSegmentLocked(first uint64) error {
	path := segmentPath(l.dir, first)
	f, err := l.fs.Create(path)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	l.f = f
	l.segments = append(l.segments, segment{path: path, first: first, last: first - 1, lastEpoch: l.lastEpoch})
	return nil
}

// Sync forces unsynced appends to disk (a no-op under SyncAlways).
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.f == nil || l.closed {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.dirty = false
	return nil
}

func (l *Log) syncLoop() {
	defer close(l.syncDone)
	t := time.NewTicker(l.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-l.stopSync:
			return
		case <-t.C:
			l.mu.Lock()
			if l.dirty {
				l.syncLocked()
			}
			l.mu.Unlock()
		}
	}
}

// Close flushes and closes the log.
func (l *Log) Close() error {
	if l.stopSync != nil {
		close(l.stopSync)
		<-l.syncDone
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// Bounds reports the first and last record versions and whether the log
// holds any records at all.
func (l *Log) Bounds() (first, last uint64, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.segments) == 0 {
		return 0, 0, false
	}
	return l.segments[0].first, l.segments[len(l.segments)-1].last, true
}

// LastVersion returns the newest record version, or 0 on an empty log.
func (l *Log) LastVersion() uint64 {
	_, last, _ := l.Bounds()
	return last
}

// LastEpoch returns the newest record's fencing epoch (0 on an empty or
// pre-failover log). Appends below it are refused.
func (l *Log) LastEpoch() uint32 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastEpoch
}

// ReadFrom returns up to max records with Version > after, in order
// (max <= 0 means no cap). It returns ErrCompacted when record after+1
// existed but was reclaimed — the caller must fall back to a bundle.
func (l *Log) ReadFrom(after uint64, max int) ([]Record, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, errors.New("wal: read on closed log")
	}
	if len(l.segments) == 0 {
		l.mu.Unlock()
		return nil, nil
	}
	if after+1 < l.segments[0].first {
		l.mu.Unlock()
		return nil, ErrCompacted
	}
	// Snapshot the metadata of the segments that can hold wanted
	// records, then read outside the lock: appends only extend the
	// active file past the size captured here, and compaction never
	// removes a segment whose records we were promised (it only
	// reclaims below snapshots the caller is already past).
	var want []segment
	for _, seg := range l.segments {
		if seg.last > after {
			want = append(want, seg)
		}
	}
	l.mu.Unlock()

	var out []Record
	for _, seg := range want {
		recs, err := readSegment(l.fs, seg, after, max-len(out), max > 0)
		if err != nil {
			if os.IsNotExist(err) {
				return nil, ErrCompacted
			}
			return nil, err
		}
		out = append(out, recs...)
		if max > 0 && len(out) >= max {
			break
		}
	}
	return out, nil
}

// readSegment reads records with Version > after from one segment,
// bounded to the byte size captured under the log lock.
func readSegment(fs FS, seg segment, after uint64, budget int, capped bool) ([]Record, error) {
	f, err := fs.Open(seg.path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(io.LimitReader(f, seg.size))
	var out []Record
	for {
		rec, err := ReadFrame(br)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("wal: reading %s: %w", seg.path, err)
		}
		if rec.Version <= after {
			continue
		}
		out = append(out, rec)
		if capped && len(out) >= budget {
			return out, nil
		}
	}
}

// Reset discards every segment, active one included. Recovery calls it
// when the log's newest record is older than the restored bundle (a
// crash under a relaxed sync policy lost appends the bundle had already
// captured): the stale history cannot be extended contiguously, and
// followers it can no longer serve fall back to a bundle fetch.
func (l *Log) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: reset on closed log")
	}
	if l.f != nil {
		if err := l.f.Close(); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		l.f = nil
	}
	for _, seg := range l.segments {
		if err := l.fs.Remove(seg.path); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
	}
	l.segments = nil
	l.dirty = false
	if err := l.fs.SyncDir(l.dir); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// Compact reclaims whole segments whose every record is at or below
// watermark — the model version recorded inside a durably written
// bundle, never the live engine version (which may have advanced past
// what the bundle captured). The active segment is always retained so
// the log keeps its append position.
func (l *Log) Compact(watermark uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: compact on closed log")
	}
	kept := l.segments[:0]
	removed := false
	for i, seg := range l.segments {
		if i < len(l.segments)-1 && seg.last <= watermark {
			if err := l.fs.Remove(seg.path); err != nil {
				return fmt.Errorf("wal: %w", err)
			}
			removed = true
			continue
		}
		kept = append(kept, seg)
	}
	l.segments = kept
	if removed {
		if err := l.fs.SyncDir(l.dir); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
	}
	return nil
}
