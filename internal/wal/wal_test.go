package wal

import (
	"bufio"
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"pane/internal/graph"
)

// testRecord builds a deterministic record for version v with a
// v-dependent mix of edge and attr deltas.
func testRecord(v uint64) Record {
	rng := rand.New(rand.NewSource(int64(v)))
	rec := Record{Version: v}
	for i := 0; i < 1+rng.Intn(4); i++ {
		rec.Edges = append(rec.Edges, graph.Edge{Src: rng.Intn(1000), Dst: rng.Intn(1000)})
	}
	for i := 0; i < rng.Intn(3); i++ {
		rec.Attrs = append(rec.Attrs, graph.AttrEntry{Node: rng.Intn(1000), Attr: rng.Intn(50), Weight: rng.Float64()})
	}
	return rec
}

func appendRecords(t *testing.T, l *Log, from, to uint64) {
	t.Helper()
	for v := from; v <= to; v++ {
		if err := l.Append(testRecord(v)); err != nil {
			t.Fatalf("append v%d: %v", v, err)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	for v := uint64(1); v <= 50; v++ {
		rec := testRecord(v)
		frame, err := EncodeFrame(nil, rec)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ReadFrame(bufio.NewReader(bytes.NewReader(frame)))
		if err != nil {
			t.Fatalf("v%d: %v", v, err)
		}
		if !reflect.DeepEqual(rec, got) {
			t.Fatalf("v%d round trip: %+v != %+v", v, got, rec)
		}
		// Re-encoding the decoded record must reproduce the bytes: the
		// /replicate stream depends on it.
		again, err := EncodeFrame(nil, got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(frame, again) {
			t.Fatalf("v%d re-encode differs", v)
		}
	}
}

func TestEncodeFrameRejectsOutOfRangeIDs(t *testing.T) {
	if _, err := EncodeFrame(nil, Record{Version: 1, Edges: []graph.Edge{{Src: -1, Dst: 0}}}); err == nil {
		t.Fatal("negative edge id accepted")
	}
	if _, err := EncodeFrame(nil, Record{Version: 1, Attrs: []graph.AttrEntry{{Node: 1 << 40, Attr: 0}}}); err == nil {
		t.Fatal("oversized attr id accepted")
	}
}

func TestAppendReopenReadFrom(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	appendRecords(t, l, 1, 40)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l, err = Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	first, last, ok := l.Bounds()
	if !ok || first != 1 || last != 40 {
		t.Fatalf("bounds = %d..%d ok=%v, want 1..40", first, last, ok)
	}
	recs, err := l.ReadFrom(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 40 {
		t.Fatalf("got %d records, want 40", len(recs))
	}
	for i, rec := range recs {
		if want := testRecord(uint64(i + 1)); !reflect.DeepEqual(rec, want) {
			t.Fatalf("record %d: %+v != %+v", i, rec, want)
		}
	}
	// Reopening must keep the append position.
	appendRecords(t, l, 41, 45)
	if got, err := l.ReadFrom(42, 0); err != nil || len(got) != 3 || got[0].Version != 43 {
		t.Fatalf("ReadFrom(42) = %d recs, err %v", len(got), err)
	}
	// Capped reads stop early.
	if got, err := l.ReadFrom(0, 7); err != nil || len(got) != 7 || got[6].Version != 7 {
		t.Fatalf("capped ReadFrom = %d recs, err %v", len(got), err)
	}
}

func TestAppendEnforcesContiguousVersions(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendRecords(t, l, 7, 9) // an empty log accepts any starting version
	if err := l.Append(testRecord(11)); err == nil {
		t.Fatal("version gap accepted")
	}
	if err := l.Append(testRecord(9)); err == nil {
		t.Fatal("version replay accepted")
	}
}

func TestSegmentRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every record rotates.
	l, err := Open(dir, Options{Sync: SyncNone, SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	appendRecords(t, l, 1, 10)
	if n := len(l.segments); n != 10 {
		t.Fatalf("got %d segments, want 10", n)
	}

	// Compaction keeps segments above the watermark plus the active
	// one, and reads below the new floor report ErrCompacted.
	if err := l.Compact(5); err != nil {
		t.Fatal(err)
	}
	first, last, _ := l.Bounds()
	if first != 6 || last != 10 {
		t.Fatalf("bounds after compact = %d..%d, want 6..10", first, last)
	}
	if _, err := l.ReadFrom(3, 0); !errors.Is(err, ErrCompacted) {
		t.Fatalf("ReadFrom(3) err = %v, want ErrCompacted", err)
	}
	recs, err := l.ReadFrom(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 || recs[0].Version != 6 {
		t.Fatalf("ReadFrom(5) = %d recs starting %d", len(recs), recs[0].Version)
	}
	// The active segment survives even a watermark past its records.
	if err := l.Compact(99); err != nil {
		t.Fatal(err)
	}
	if n := len(l.segments); n != 1 {
		t.Fatalf("active segment not retained: %d segments", n)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// The compacted log reopens and appends cleanly.
	l, err = Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendRecords(t, l, 11, 12)
	if v := l.LastVersion(); v != 12 {
		t.Fatalf("LastVersion = %d, want 12", v)
	}
}

func TestTornTailTruncation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	appendRecords(t, l, 1, 5)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := segmentNames(OSFS(), dir)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, names[len(names)-1])

	// A torn frame prefix at the tail: header plus part of a payload.
	partial, err := EncodeFrame(nil, testRecord(6))
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, frameHeaderSize, len(partial) - 1} {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(partial[:cut]); err != nil {
			t.Fatal(err)
		}
		f.Close()

		l, err := Open(dir, Options{Sync: SyncNone})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if v := l.LastVersion(); v != 5 {
			t.Fatalf("cut %d: LastVersion = %d, want 5", cut, v)
		}
		l.Close()
	}

	// A corrupted byte inside the tail record also truncates to the
	// last good record.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	flipped := append([]byte(nil), partial...)
	flipped[len(flipped)-1] ^= 0xff
	if _, err := f.Write(flipped); err != nil {
		t.Fatal(err)
	}
	f.Close()
	l, err = Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if v := l.LastVersion(); v != 5 {
		t.Fatalf("LastVersion after checksum tear = %d, want 5", v)
	}
	appendRecords(t, l, 6, 7)
}

func TestInjectedCrashMidRecord(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	appendRecords(t, l, 1, 3)
	l.crashAfter = 5 // die five bytes into the next frame
	if err := l.Append(testRecord(4)); err == nil {
		t.Fatal("injected crash did not fail the append")
	}

	l, err = Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if v := l.LastVersion(); v != 3 {
		t.Fatalf("LastVersion after crash = %d, want 3", v)
	}
	recs, err := l.ReadFrom(0, 0)
	if err != nil || len(recs) != 3 {
		t.Fatalf("replay after crash: %d recs, err %v", len(recs), err)
	}
	appendRecords(t, l, 4, 4)
}

// TestCrashAtEveryByte is the recovery property test: for a log cut at
// every possible byte offset — every SIGKILL point — reopening yields
// exactly the longest record prefix whose frames fit, and the log stays
// appendable.
func TestCrashAtEveryByte(t *testing.T) {
	golden := t.TempDir()
	l, err := Open(golden, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	var ends []int64 // byte offset after each record
	var off int64
	for v := uint64(1); v <= n; v++ {
		rec := testRecord(v)
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
		off += int64(frameHeaderSize + payloadSize(rec))
		ends = append(ends, off)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := segmentNames(OSFS(), golden)
	if err != nil || len(names) != 1 {
		t.Fatalf("want one segment, got %v (err %v)", names, err)
	}
	data, err := os.ReadFile(filepath.Join(golden, names[0]))
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(data); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, names[0]), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, Options{Sync: SyncNone})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		wantLast := uint64(0)
		for i, end := range ends {
			if int64(cut) >= end {
				wantLast = uint64(i + 1)
			}
		}
		if v := l.LastVersion(); v != wantLast {
			t.Fatalf("cut %d: LastVersion = %d, want %d", cut, v, wantLast)
		}
		recs, err := l.ReadFrom(0, 0)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(recs) != int(wantLast) {
			t.Fatalf("cut %d: %d records, want %d", cut, len(recs), wantLast)
		}
		appendRecords(t, l, wantLast+1, wantLast+1)
		l.Close()
	}
}

func TestReset(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNone, SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	appendRecords(t, l, 1, 6)
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := l.Bounds(); ok {
		t.Fatal("bounds non-empty after reset")
	}
	if names, _ := segmentNames(OSFS(), dir); len(names) != 0 {
		t.Fatalf("segments survive reset: %v", names)
	}
	// A reset log accepts any next version — that is its purpose.
	appendRecords(t, l, 20, 22)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l, err = Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	first, last, _ := l.Bounds()
	if first != 20 || last != 22 {
		t.Fatalf("bounds = %d..%d, want 20..22", first, last)
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, p := range []SyncPolicy{SyncAlways, SyncInterval, SyncNone} {
		got, err := ParseSyncPolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", p.String(), got, err)
		}
		dir := t.TempDir()
		l, err := Open(dir, Options{Sync: p, SyncEvery: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		appendRecords(t, l, 1, 10)
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		l, err = Open(dir, Options{Sync: p})
		if err != nil {
			t.Fatal(err)
		}
		if v := l.LastVersion(); v != 10 {
			t.Fatalf("policy %v: LastVersion = %d", p, v)
		}
		l.Close()
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

func TestOpenRejectsMidLogCorruption(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNone, SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	appendRecords(t, l, 1, 3) // three segments
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := segmentNames(OSFS(), dir)
	if err != nil || len(names) != 3 {
		t.Fatalf("want 3 segments, got %v", names)
	}
	// Tear the middle segment: that is data loss, not a crash tail.
	mid := filepath.Join(dir, names[1])
	data, err := os.ReadFile(mid)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(mid, data[:len(data)-2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{Sync: SyncNone}); err == nil {
		t.Fatal("mid-log tear accepted")
	}
}
