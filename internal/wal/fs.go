package wal

import (
	"io"
	"os"
)

// File is the slice of *os.File the log needs from an open segment (or
// the directory handle it fsyncs). It exists so internal/faults can hand
// the log files that tear writes, fail fsyncs, or error reads — the
// failure modes a disk actually has and the chaos tier injects.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Sync() error
}

// FS abstracts every filesystem operation the log performs. The zero
// configuration (Options.FS == nil) uses the real OS; internal/faults
// wraps OSFS with injected faults.
type FS interface {
	// MkdirAll creates the log directory.
	MkdirAll(dir string, perm os.FileMode) error
	// ReadDir lists the log directory.
	ReadDir(dir string) ([]os.DirEntry, error)
	// Create opens a brand-new segment for writing (O_CREATE|O_EXCL).
	Create(name string) (File, error)
	// OpenAppend reopens an existing segment for appending.
	OpenAppend(name string) (File, error)
	// Open opens a file (or directory, for SyncDir-free readers) read-only.
	Open(name string) (File, error)
	// Remove deletes a reclaimed segment.
	Remove(name string) error
	// Truncate cuts a segment back to size — torn tails on open, rolled-
	// back partial appends on write failure.
	Truncate(name string, size int64) error
	// SyncDir fsyncs the directory so created/removed segment names are
	// durable.
	SyncDir(dir string) error
}

// osFS is the real filesystem.
type osFS struct{}

// OSFS returns the production FS backed by the os package.
func OSFS() FS { return osFS{} }

func (osFS) MkdirAll(dir string, perm os.FileMode) error { return os.MkdirAll(dir, perm) }
func (osFS) ReadDir(dir string) ([]os.DirEntry, error)   { return os.ReadDir(dir) }
func (osFS) Remove(name string) error                    { return os.Remove(name) }
func (osFS) Truncate(name string, size int64) error      { return os.Truncate(name, size) }
func (osFS) Open(name string) (File, error)              { return os.Open(name) }
func (osFS) Create(name string) (File, error) {
	// O_APPEND matters beyond idiom: after a failed append is rolled
	// back (Truncate to the last good size), an append-mode handle
	// writes at the new end, while a plain O_WRONLY handle would write
	// at its stale offset and leave a hole of zeros — a torn record a
	// later recovery would truncate good data for.
	return os.OpenFile(name, os.O_CREATE|os.O_EXCL|os.O_WRONLY|os.O_APPEND, 0o644)
}
func (osFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_APPEND, 0o644)
}
func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
