package core

import (
	"math"
	"math/rand"
	"testing"

	"pane/internal/mat"
)

// randomDense fills an r x c matrix with N(0,1) entries.
func randomDense(rng *rand.Rand, r, c int) *mat.Dense {
	m := mat.New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// TestGramDeltaApplyMatchesFullTransform checks that correcting
// Z_old = Xb·G_old with the low-rank delta reproduces Z_new = Xb·G_new
// to float round-off, for deltas that move only the listed attr rows.
func TestGramDeltaApplyMatchesFullTransform(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		n := 12 + rng.Intn(20)
		d := 6 + rng.Intn(10)
		k2 := 4 + rng.Intn(6)
		nb := 1 + rng.Intn(3)
		xb := randomDense(rng, n, k2)
		yOld := randomDense(rng, d, k2)
		yNew := mat.New(d, k2)
		copy(yNew.Data, yOld.Data)
		nTouch := 1 + rng.Intn(3)
		attrs := rng.Perm(d)[:nTouch]
		for _, r := range attrs {
			for j := range yNew.Row(r) {
				yNew.Row(r)[j] += rng.NormFloat64()
			}
		}

		zOld := mat.ParMul(xb, mat.MulAT(yOld, yOld), 1)
		zWant := mat.ParMul(xb, mat.MulAT(yNew, yNew), 1)

		gd, err := NewGramDelta(yOld, yNew, attrs)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := gd.Rank(), 2*nTouch; got != want {
			t.Fatalf("trial %d: rank %d, want %d", trial, got, want)
		}
		z := mat.New(n, k2)
		copy(z.Data, zOld.Data)
		gd.Apply(z, xb, 0, nb)

		scale := 0.0
		for _, v := range zWant.Data {
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
		for i, v := range z.Data {
			if math.Abs(v-zWant.Data[i]) > 1e-10*(1+scale) {
				t.Fatalf("trial %d: corrected z[%d] = %v, want %v", trial, i, v, zWant.Data[i])
			}
		}
	}
}

// TestGramDeltaApplyBlock checks that applying to a sub-block with a row
// offset corrects exactly the rows [lo, lo+z.Rows) of the full matrix.
func TestGramDeltaApplyBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n, d, k2 := 20, 8, 6
	xb := randomDense(rng, n, k2)
	yOld := randomDense(rng, d, k2)
	yNew := mat.New(d, k2)
	copy(yNew.Data, yOld.Data)
	attrs := []int{2, 5}
	for _, r := range attrs {
		for j := range yNew.Row(r) {
			yNew.Row(r)[j] += rng.NormFloat64()
		}
	}
	gd, err := NewGramDelta(yOld, yNew, attrs)
	if err != nil {
		t.Fatal(err)
	}
	full := mat.ParMul(xb, mat.MulAT(yOld, yOld), 1)
	gd.Apply(full, xb, 0, 2)

	lo, hi := 7, 15
	block := mat.New(hi-lo, k2)
	base := mat.ParMul(xb, mat.MulAT(yOld, yOld), 1)
	for j := lo; j < hi; j++ {
		copy(block.Row(j-lo), base.Row(j))
	}
	gd.Apply(block, xb, lo, 1)
	for j := lo; j < hi; j++ {
		for p, v := range block.Row(j - lo) {
			if v != full.Row(j)[p] {
				t.Fatalf("block row %d differs from full apply", j)
			}
		}
	}
}

// TestGramDeltaErrors covers the constructor's validation paths and
// Apply's panics.
func TestGramDeltaErrors(t *testing.T) {
	yOld := mat.New(4, 3)
	yNew := mat.New(4, 3)
	if _, err := NewGramDelta(yOld, mat.New(5, 3), nil); err == nil {
		t.Fatal("mismatched shapes should error")
	}
	if _, err := NewGramDelta(yOld, yNew, []int{4}); err == nil {
		t.Fatal("out-of-range attr should error")
	}
	gd, err := NewGramDelta(yOld, yNew, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s should panic", name)
			}
		}()
		f()
	}
	mustPanic("width mismatch", func() { gd.Apply(mat.New(2, 4), mat.New(6, 4), 0, 1) })
	mustPanic("row overflow", func() { gd.Apply(mat.New(4, 3), mat.New(6, 3), 3, 1) })
	mustPanic("negative lo", func() { gd.Apply(mat.New(2, 3), mat.New(6, 3), -1, 1) })
}
