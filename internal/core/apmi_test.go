package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pane/internal/graph"
	"pane/internal/mat"
	"pane/internal/rwalk"
)

// testGraph builds a random attributed digraph where every node has an
// out-edge and at least one attribute.
func testGraph(rng *rand.Rand, n, d int) *graph.Graph {
	var edges []graph.Edge
	for v := 0; v < n; v++ {
		edges = append(edges, graph.Edge{Src: v, Dst: (v + 1) % n})
		for e := 0; e < 1+rng.Intn(3); e++ {
			edges = append(edges, graph.Edge{Src: v, Dst: rng.Intn(n)})
		}
	}
	var attrs []graph.AttrEntry
	for v := 0; v < n; v++ {
		attrs = append(attrs, graph.AttrEntry{Node: v, Attr: rng.Intn(d), Weight: 1 + rng.Float64()})
		if rng.Float64() < 0.6 {
			attrs = append(attrs, graph.AttrEntry{Node: v, Attr: rng.Intn(d), Weight: rng.Float64() + 0.2})
		}
	}
	g, err := graph.New(n, d, edges, attrs, nil)
	if err != nil {
		panic(err)
	}
	return g
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{K: 3, Alpha: 0.5, Eps: 0.015},
		{K: 0, Alpha: 0.5, Eps: 0.015},
		{K: 128, Alpha: 0, Eps: 0.015},
		{K: 128, Alpha: 1.2, Eps: 0.015},
		{K: 128, Alpha: 0.5, Eps: 0},
		{K: 128, Alpha: 0.5, Eps: 2},
		{K: 128, Alpha: 0.5, Eps: 0.1, Threads: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d validated", i)
		}
	}
}

func TestIterationsMatchesPaperTable(t *testing.T) {
	// §5.6: with α = 0.5, ε from 0.001 to 0.25 corresponds to t from 9 to 1.
	cases := []struct {
		eps  float64
		want int
	}{
		{0.25, 1}, {0.05, 4}, {0.015, 6}, {0.005, 7}, {0.001, 9},
	}
	for _, c := range cases {
		cfg := Config{K: 16, Alpha: 0.5, Eps: c.eps}
		if got := cfg.Iterations(); got != c.want {
			t.Errorf("eps=%v: t=%d, want %d", c.eps, got, c.want)
		}
	}
}

func TestAPMINonnegativeAndShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := testGraph(rng, 20, 6)
	f, b := AffinityFromGraph(g, 0.5, 5, 1)
	if f.Rows != g.N || f.Cols != g.D || b.Rows != g.N || b.Cols != g.D {
		t.Fatal("affinity shape mismatch")
	}
	for i, v := range f.Data {
		if v < 0 || math.IsNaN(v) {
			t.Fatalf("F'[%d] = %v", i, v)
		}
	}
	for i, v := range b.Data {
		if v < 0 || math.IsNaN(v) {
			t.Fatalf("B'[%d] = %v", i, v)
		}
	}
}

func TestAPMIConvergesToExactSeries(t *testing.T) {
	// With large t the iterative P(t) must converge to the infinite series
	// computed densely by rwalk.Exact*.
	rng := rand.New(rand.NewSource(2))
	g := testGraph(rng, 15, 5)
	alpha := 0.4
	pf := rwalk.ExactForward(g, alpha)
	pb := rwalk.ExactBackward(g, alpha)
	wantF, wantB := rwalk.Affinities(pf, pb)
	gotF, gotB := AffinityFromGraph(g, alpha, 200, 1)
	if d := gotF.MaxAbsDiff(wantF); d > 1e-8 {
		t.Fatalf("F' deviates from exact series by %v", d)
	}
	if d := gotB.MaxAbsDiff(wantB); d > 1e-8 {
		t.Fatalf("B' deviates from exact series by %v", d)
	}
}

func TestAPMIMatchesSimulation(t *testing.T) {
	// End-to-end: the closed-form affinity approximates Monte-Carlo
	// estimates from actual random walks (§2.2's definition).
	rng := rand.New(rand.NewSource(3))
	g := testGraph(rng, 10, 3)
	alpha := 0.3
	sim := rwalk.New(g, alpha)
	pfEst := sim.EstimateForward(rng, 50000)
	pbEst := sim.EstimateBackward(rng, 100000)
	simF, simB := rwalk.Affinities(pfEst, pbEst)
	gotF, gotB := AffinityFromGraph(g, alpha, 100, 1)
	if d := gotF.MaxAbsDiff(simF); d > 0.08 {
		t.Fatalf("F' deviates from simulated affinity by %v", d)
	}
	if d := gotB.MaxAbsDiff(simB); d > 0.08 {
		t.Fatalf("B' deviates from simulated affinity by %v", d)
	}
}

func TestAPMIErrorBoundLemma31(t *testing.T) {
	// Lemma 3.1 in its practical form: the truncated P(t)_f differs from
	// the exact P_f by at most (1−α)^{t+1} = ε elementwise (Inequality 9).
	rng := rand.New(rand.NewSource(4))
	g := testGraph(rng, 12, 4)
	alpha := 0.5
	exact := rwalk.ExactForward(g, alpha)
	p, pt := g.Walk()
	rr, rc := g.NormalizedAttrs()
	for _, tIter := range []int{1, 3, 6} {
		// Algorithm 2's recurrence keeps the tail at weight (1−α)^t, so
		// the elementwise gap to the infinite series is ≤ (1−α)^t.
		eps := math.Pow(1-alpha, float64(tIter))
		pf := rr.Clone()
		pb := rc.Clone()
		nextF := mat.New(g.N, g.D)
		nextB := mat.New(g.N, g.D)
		for l := 0; l < tIter; l++ {
			p.AxpyInto(nextF, 1-alpha, pf, alpha, rr, 1)
			pt.AxpyInto(nextB, 1-alpha, pb, alpha, rc, 1)
			pf, nextF = nextF, pf
			pb, nextB = nextB, pb
		}
		// The recurrence of Algorithm 2 keeps the final term at weight
		// (1−α)^t instead of α(1−α)^t, so P(t) ≥ exact series prefix; the
		// deviation from the full series is still bounded by ε·max-row-sum.
		for i := range pf.Data {
			diff := math.Abs(pf.Data[i] - exact.Data[i])
			if diff > eps+1e-12 {
				t.Fatalf("t=%d: |P(t)−Pf| = %v exceeds ε = %v", tIter, diff, eps)
			}
		}
	}
}

func TestPAPMIMatchesAPMI(t *testing.T) {
	// Lemma 4.1: PAPMI returns exactly APMI's output for any nb.
	rng := rand.New(rand.NewSource(5))
	g := testGraph(rng, 25, 7)
	p, pt := g.Walk()
	rr, rc := g.NormalizedAttrs()
	wantF, wantB := APMI(p, pt, rr, rc, 0.5, 6)
	for _, nb := range []int{2, 3, 5, 7, 16} {
		gotF, gotB := PAPMI(p, pt, rr, rc, 0.5, 6, nb)
		if d := gotF.MaxAbsDiff(wantF); d > 1e-12 {
			t.Fatalf("nb=%d: PAPMI F' deviates by %v", nb, d)
		}
		if d := gotB.MaxAbsDiff(wantB); d > 1e-12 {
			t.Fatalf("nb=%d: PAPMI B' deviates by %v", nb, d)
		}
	}
}

func TestAPMIPropertyMoreIterationsMonotoneError(t *testing.T) {
	// Property: increasing t cannot move P(t)_f farther from the exact
	// series (geometric contraction).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := testGraph(rng, 6+rng.Intn(10), 2+rng.Intn(4))
		alpha := 0.3 + 0.4*rng.Float64()
		exact := rwalk.ExactForward(g, alpha)
		p, _ := g.Walk()
		rr, _ := g.NormalizedAttrs()
		prevErr := math.Inf(1)
		pf := rr.Clone()
		next := mat.New(g.N, g.D)
		for l := 0; l < 12; l++ {
			p.AxpyInto(next, 1-alpha, pf, alpha, rr, 1)
			pf, next = next, pf
			err := pf.MaxAbsDiff(exact)
			if err > prevErr+1e-12 {
				return false
			}
			prevErr = err
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestRunningExampleAffinityTable(t *testing.T) {
	// The Table 2 reproduction: APMI's affinities on the running example
	// must reproduce the qualitative structure discussed in §2.3 (see
	// rwalk's ordering test for the simulated counterpart).
	g := graph.RunningExample()
	f, b := AffinityFromGraph(g, graph.RunningExampleAlpha, 400, 1)
	v1, v5, v6 := 0, 4, 5
	r1, r3 := 0, 2
	if !(f.At(v1, r1) > f.At(v1, r3) && b.At(v1, r1) > b.At(v1, r3)) {
		t.Fatalf("v1 should prefer r1: F=%v B=%v", f.Row(v1), b.Row(v1))
	}
	if !(f.At(v5, r3) > f.At(v5, r1)) {
		t.Fatalf("v5 forward anomaly missing: F[v5]=%v", f.Row(v5))
	}
	if !(f.At(v5, r1)+b.At(v5, r1) > f.At(v5, r3)+b.At(v5, r3)) {
		t.Fatal("combined affinity fails to fix v5's inference")
	}
	// v6 carries r3 and should have its strongest affinity there.
	if !(f.At(v6, r3) > f.At(v6, r1)) || !(b.At(v6, r3) > b.At(v6, r1)) {
		t.Fatalf("v6 should prefer r3: F=%v B=%v", f.Row(v6), b.Row(v6))
	}
}
