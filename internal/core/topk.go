package core

import (
	"container/heap"
)

// Scored pairs an index (node or attribute id) with a prediction score.
type Scored struct {
	ID    int
	Score float64
}

// scoredHeap is a min-heap on Score, used to keep the running top-k.
type scoredHeap []Scored

func (h scoredHeap) Len() int            { return len(h) }
func (h scoredHeap) Less(i, j int) bool  { return h[i].Score < h[j].Score }
func (h scoredHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *scoredHeap) Push(x interface{}) { *h = append(*h, x.(Scored)) }
func (h *scoredHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// topK drains a heap into descending score order.
func topK(h *scoredHeap) []Scored {
	out := make([]Scored, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(Scored)
	}
	return out
}

// TopKAttrs returns the k attributes with the highest inferred affinity
// to node v (Equation 21), optionally excluding a set of attribute ids
// (e.g. the ones already observed, for missing-attribute suggestion).
// Results are sorted by descending score.
func (e *Embedding) TopKAttrs(v, k int, exclude map[int]bool) []Scored {
	h := &scoredHeap{}
	heap.Init(h)
	for r := 0; r < e.Y.Rows; r++ {
		if exclude != nil && exclude[r] {
			continue
		}
		s := e.AttrScore(v, r)
		if h.Len() < k {
			heap.Push(h, Scored{ID: r, Score: s})
		} else if s > (*h)[0].Score {
			(*h)[0] = Scored{ID: r, Score: s}
			heap.Fix(h, 0)
		}
	}
	return topK(h)
}

// TopKTargets returns the k most plausible out-neighbors of node u under
// the link model (Equation 22), excluding u itself and any ids in
// exclude (e.g. existing out-neighbors, for recommendation). Results are
// sorted by descending score.
//
// Complexity: O(n·k²/4) per query via the precomputed Gram matrix —
// compute q = Xf[u]·G once (O(k²)), then score each candidate with one
// O(k/2) dot product.
func (s *LinkScorer) TopKTargets(u, k int, exclude map[int]bool) []Scored {
	half := s.e.Xf.Cols
	// q = Xf[u] · G, a length-(k/2) vector.
	q := make([]float64, half)
	xu := s.e.Xf.Row(u)
	for i := 0; i < half; i++ {
		if xu[i] == 0 {
			continue
		}
		gi := s.g.Row(i)
		for j := 0; j < half; j++ {
			q[j] += xu[i] * gi[j]
		}
	}
	h := &scoredHeap{}
	heap.Init(h)
	n := s.e.Xb.Rows
	for v := 0; v < n; v++ {
		if v == u || (exclude != nil && exclude[v]) {
			continue
		}
		xv := s.e.Xb.Row(v)
		var sc float64
		for j := 0; j < half; j++ {
			sc += q[j] * xv[j]
		}
		if h.Len() < k {
			heap.Push(h, Scored{ID: v, Score: sc})
		} else if sc > (*h)[0].Score {
			(*h)[0] = Scored{ID: v, Score: sc}
			heap.Fix(h, 0)
		}
	}
	return topK(h)
}
