package core

import (
	"container/heap"
)

// Scored pairs an index (node or attribute id) with a prediction score.
type Scored struct {
	ID    int
	Score float64
}

// Better reports whether a ranks strictly ahead of b in top-k order:
// higher score first, equal scores broken by ascending ID. The explicit
// tie-break makes every top-k producer in the repository — the heap scans
// below, and the exact and IVF backends of internal/index — return
// bit-for-bit identical rankings on identical scores, regardless of
// candidate visit order or worker count.
func Better(a, b Scored) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.ID < b.ID
}

// scoredHeap is a min-heap whose root is the weakest kept candidate under
// Better — the next one to evict when a better candidate arrives.
type scoredHeap []Scored

func (h scoredHeap) Len() int            { return len(h) }
func (h scoredHeap) Less(i, j int) bool  { return Better(h[j], h[i]) }
func (h scoredHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *scoredHeap) Push(x interface{}) { *h = append(*h, x.(Scored)) }
func (h *scoredHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// TopK accumulates a stream of scored candidates and retains the k best
// under Better. Candidate ids must be unique within one accumulation.
// The zero value is unusable; call NewTopK.
type TopK struct {
	k int
	h scoredHeap
}

// NewTopK returns an accumulator keeping the best k candidates. k < 1
// keeps none.
func NewTopK(k int) *TopK {
	if k < 0 {
		k = 0
	}
	prealloc := k
	if prealloc > 1024 {
		prealloc = 1024
	}
	return &TopK{k: k, h: make(scoredHeap, 0, prealloc)}
}

// Offer considers one candidate.
func (t *TopK) Offer(id int, score float64) {
	if t.k == 0 {
		return
	}
	s := Scored{ID: id, Score: score}
	if len(t.h) < t.k {
		heap.Push(&t.h, s)
		return
	}
	if Better(s, t.h[0]) {
		t.h[0] = s
		heap.Fix(&t.h, 0)
	}
}

// Len returns the number of candidates currently retained.
func (t *TopK) Len() int { return len(t.h) }

// Take drains the accumulator into descending rank order (highest score
// first, ascending ID on ties). The accumulator is empty afterwards.
func (t *TopK) Take() []Scored {
	out := make([]Scored, len(t.h))
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&t.h).(Scored)
	}
	return out
}

// TopKAttrs returns the k attributes with the highest inferred affinity
// to node v (Equation 21), optionally excluding a set of attribute ids
// (e.g. the ones already observed, for missing-attribute suggestion).
// Results are sorted by descending score, ties by ascending id.
func (e *Embedding) TopKAttrs(v, k int, exclude map[int]bool) []Scored {
	t := NewTopK(k)
	for r := 0; r < e.Y.Rows; r++ {
		if exclude != nil && exclude[r] {
			continue
		}
		t.Offer(r, e.AttrScore(v, r))
	}
	return t.Take()
}

// TopKTargets returns the k most plausible out-neighbors of node u under
// the link model (Equation 22), excluding u itself and any ids in
// exclude (e.g. existing out-neighbors, for recommendation). Results are
// sorted by descending score, ties by ascending id.
//
// Complexity: O(n·k²/4) per query via the precomputed Gram matrix —
// compute q = Xf[u]·G once (O(k²)), then score each candidate with one
// O(k/2) dot product. internal/index amortizes the per-query transform
// across queries by materializing the whole candidate matrix per model
// version.
func (s *LinkScorer) TopKTargets(u, k int, exclude map[int]bool) []Scored {
	half := s.e.Xf.Cols
	// q = Xf[u] · G, a length-(k/2) vector.
	q := make([]float64, half)
	xu := s.e.Xf.Row(u)
	for i := 0; i < half; i++ {
		if xu[i] == 0 {
			continue
		}
		gi := s.g.Row(i)
		for j := 0; j < half; j++ {
			q[j] += xu[i] * gi[j]
		}
	}
	t := NewTopK(k)
	n := s.e.Xb.Rows
	for v := 0; v < n; v++ {
		if v == u || (exclude != nil && exclude[v]) {
			continue
		}
		xv := s.e.Xb.Row(v)
		var sc float64
		for j := 0; j < half; j++ {
			sc += q[j] * xv[j]
		}
		t.Offer(v, sc)
	}
	return t.Take()
}
