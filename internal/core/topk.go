package core

import (
	"sync"

	"pane/internal/mat"
)

// Scored pairs an index (node or attribute id) with a prediction score.
type Scored struct {
	ID    int
	Score float64
}

// Better reports whether a ranks strictly ahead of b in top-k order:
// higher score first, equal scores broken by ascending ID. The explicit
// tie-break makes every top-k producer in the repository — the heap scans
// below, and the exact and IVF backends of internal/index — return
// bit-for-bit identical rankings on identical scores, regardless of
// candidate visit order or worker count.
func Better(a, b Scored) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.ID < b.ID
}

// TopK accumulates a stream of scored candidates and retains the k best
// under Better. Candidate ids must be unique within one accumulation.
// The zero value is unusable; call NewTopK.
//
// h is a hand-rolled min-heap (by Better-rank: the root is the weakest
// kept candidate, the next to evict) rather than a container/heap
// implementation: heap.Push/Pop pass elements through interface{}, which
// boxes every Scored on the heap — one allocation per offered candidate
// on the serving path. The open-coded sift loops below keep Offer and
// Take allocation-free.
type TopK struct {
	k int
	h []Scored
}

// worse reports whether h[i] ranks strictly behind h[j] — the heap order.
func (t *TopK) worse(i, j int) bool { return Better(t.h[j], t.h[i]) }

// up restores the heap property from leaf i toward the root.
func (t *TopK) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !t.worse(i, p) {
			break
		}
		t.h[i], t.h[p] = t.h[p], t.h[i]
		i = p
	}
}

// down restores the heap property from node i toward the leaves.
func (t *TopK) down(i int) {
	n := len(t.h)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && t.worse(r, l) {
			m = r
		}
		if !t.worse(m, i) {
			break
		}
		t.h[i], t.h[m] = t.h[m], t.h[i]
		i = m
	}
}

// NewTopK returns an accumulator keeping the best k candidates. k < 1
// keeps none.
func NewTopK(k int) *TopK {
	if k < 0 {
		k = 0
	}
	prealloc := k
	if prealloc > 1024 {
		prealloc = 1024
	}
	return &TopK{k: k, h: make([]Scored, 0, prealloc)}
}

// Offer considers one candidate.
func (t *TopK) Offer(id int, score float64) {
	if t.k == 0 {
		return
	}
	s := Scored{ID: id, Score: score}
	if len(t.h) < t.k {
		t.h = append(t.h, s)
		t.up(len(t.h) - 1)
		return
	}
	if Better(s, t.h[0]) {
		t.h[0] = s
		t.down(0)
	}
}

// Len returns the number of candidates currently retained.
func (t *TopK) Len() int { return len(t.h) }

// Reset empties the accumulator and re-arms it for a fresh top-k
// accumulation, keeping the heap's backing array. It is what lets the
// serving paths recycle accumulators through the pool below instead of
// allocating one per query. k < 1 keeps none, matching NewTopK.
func (t *TopK) Reset(k int) {
	if k < 0 {
		k = 0
	}
	t.k = k
	t.h = t.h[:0]
}

// topkPool recycles TopK accumulators across queries. Per-request heap
// allocations are a measurable share of the top-k serving path's
// allocs/op (the scan itself allocates nothing), and the backing arrays
// are small and bounded, so pooling them is pure win.
var topkPool sync.Pool

// GetTopK returns a pooled accumulator re-armed for the best k, falling
// back to a fresh NewTopK when the pool is empty.
func GetTopK(k int) *TopK {
	if t, _ := topkPool.Get().(*TopK); t != nil {
		t.Reset(k)
		return t
	}
	return NewTopK(k)
}

// PutTopK returns an accumulator to the pool. Callers must be done with
// it — typically they have already drained it with Take, whose returned
// slice is freshly allocated and stays valid.
func PutTopK(t *TopK) { topkPool.Put(t) }

// Take drains the accumulator into descending rank order (highest score
// first, ascending ID on ties). The accumulator is empty afterwards.
func (t *TopK) Take() []Scored {
	out := make([]Scored, len(t.h))
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = t.h[0] // weakest remaining candidate
		last := len(t.h) - 1
		t.h[0] = t.h[last]
		t.h = t.h[:last]
		if last > 0 {
			t.down(0)
		}
	}
	return out
}

// TopKAttrs returns the k attributes with the highest inferred affinity
// to node v (Equation 21), optionally excluding a set of attribute ids
// (e.g. the ones already observed, for missing-attribute suggestion).
// Results are sorted by descending score, ties by ascending id.
func (e *Embedding) TopKAttrs(v, k int, exclude map[int]bool) []Scored {
	t := NewTopK(k)
	for r := 0; r < e.Y.Rows; r++ {
		if exclude != nil && exclude[r] {
			continue
		}
		t.Offer(r, e.AttrScore(v, r))
	}
	return t.Take()
}

// TopKTargets returns the k most plausible out-neighbors of node u under
// the link model (Equation 22), excluding u itself and any ids in
// exclude (e.g. existing out-neighbors, for recommendation). Results are
// sorted by descending score, ties by ascending id.
//
// Complexity: O(n·k²/4) per query via the precomputed Gram matrix —
// compute q = Xf[u]·G once (O(k²)), then score each candidate with one
// O(k/2) dot product. internal/index amortizes the per-query transform
// across queries by materializing the whole candidate matrix per model
// version.
func (s *LinkScorer) TopKTargets(u, k int, exclude map[int]bool) []Scored {
	half := s.e.Xf.Cols
	// q = Xf[u] · G, a length-(k/2) vector.
	q := make([]float64, half)
	xu := s.e.Xf.Row(u)
	for i := 0; i < half; i++ {
		if xu[i] == 0 {
			continue
		}
		gi := s.g.Row(i)
		for j := 0; j < half; j++ {
			q[j] += xu[i] * gi[j]
		}
	}
	t := NewTopK(k)
	n := s.e.Xb.Rows
	for v := 0; v < n; v++ {
		if v == u || (exclude != nil && exclude[v]) {
			continue
		}
		t.Offer(v, mat.Dot(q, s.e.Xb.Row(v)))
	}
	return t.Take()
}
