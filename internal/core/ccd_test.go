package core

import (
	"math"
	"math/rand"
	"testing"

	"pane/internal/mat"
)

// affinityPair builds a synthetic (F', B') pair with correlated structure,
// standing in for APMI output in solver unit tests.
func affinityPair(rng *rand.Rand, n, d, rank int) (f, b *mat.Dense) {
	base := func() *mat.Dense {
		l := mat.New(n, rank)
		r := mat.New(rank, d)
		for i := range l.Data {
			l.Data[i] = math.Abs(rng.NormFloat64())
		}
		for i := range r.Data {
			r.Data[i] = math.Abs(rng.NormFloat64())
		}
		m := mat.Mul(l, r)
		m.Log1pScaled(1)
		return m
	}
	return base(), base()
}

func TestGreedyInitApproximatesForwardAffinity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f, b := affinityPair(rng, 40, 15, 4)
	st := GreedyInit(f, b, 8, 4, rng, 1)
	// Xf·Yᵀ should already be a decent approximation of F'.
	approx := mat.MulBT(st.Xf, st.Y)
	approx.Sub(f)
	rel := approx.FrobeniusNorm() / f.FrobeniusNorm()
	if rel > 0.25 {
		t.Fatalf("greedy init forward relative error %v too high", rel)
	}
}

func TestGreedyInitResidualsConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f, b := affinityPair(rng, 30, 12, 3)
	st := GreedyInit(f, b, 6, 3, rng, 1)
	wantSf := mat.MulBT(st.Xf, st.Y)
	wantSf.Sub(f)
	wantSb := mat.MulBT(st.Xb, st.Y)
	wantSb.Sub(b)
	if st.Sf.MaxAbsDiff(wantSf) > 1e-10 || st.Sb.MaxAbsDiff(wantSb) > 1e-10 {
		t.Fatal("initial residuals inconsistent with embeddings")
	}
}

func TestCCDResidualMaintenance(t *testing.T) {
	// After any number of sweeps the incrementally maintained Sf/Sb must
	// equal the from-scratch residuals — the correctness core of
	// Equations (18)-(20).
	rng := rand.New(rand.NewSource(3))
	f, b := affinityPair(rng, 25, 10, 3)
	st := GreedyInit(f, b, 6, 3, rng, 1)
	for sweep := 1; sweep <= 3; sweep++ {
		refine(st, 1, 1)
		wantSf := mat.MulBT(st.Xf, st.Y)
		wantSf.Sub(f)
		wantSb := mat.MulBT(st.Xb, st.Y)
		wantSb.Sub(b)
		if d := st.Sf.MaxAbsDiff(wantSf); d > 1e-9 {
			t.Fatalf("sweep %d: Sf drift %v", sweep, d)
		}
		if d := st.Sb.MaxAbsDiff(wantSb); d > 1e-9 {
			t.Fatalf("sweep %d: Sb drift %v", sweep, d)
		}
	}
}

func TestCCDMonotoneObjective(t *testing.T) {
	// Each coordinate update is an exact 1-D minimization, so the
	// objective must be non-increasing across sweeps.
	rng := rand.New(rand.NewSource(4))
	f, b := affinityPair(rng, 35, 14, 5)
	st := RandomInit(f, b, 8, rng, 1)
	prev := Objective(&st.Embedding, f, b)
	for sweep := 0; sweep < 5; sweep++ {
		refine(st, 1, 1)
		cur := Objective(&st.Embedding, f, b)
		if cur > prev+1e-9 {
			t.Fatalf("objective rose from %v to %v at sweep %d", prev, cur, sweep)
		}
		prev = cur
	}
}

func TestParallelCCDMatchesSerial(t *testing.T) {
	// From an identical starting state, the block-parallel sweeps must
	// produce exactly the serial result (disjoint writes).
	rng := rand.New(rand.NewSource(5))
	f, b := affinityPair(rng, 30, 13, 4)
	mkState := func() *state {
		r := rand.New(rand.NewSource(99))
		return GreedyInit(f, b, 6, 3, r, 1)
	}
	serial := mkState()
	refine(serial, 3, 1)
	for _, nb := range []int{2, 4, 8} {
		par := mkState()
		refine(par, 3, nb)
		if d := par.Xf.MaxAbsDiff(serial.Xf); d > 1e-12 {
			t.Fatalf("nb=%d: Xf deviates by %v", nb, d)
		}
		if d := par.Y.MaxAbsDiff(serial.Y); d > 1e-12 {
			t.Fatalf("nb=%d: Y deviates by %v", nb, d)
		}
		if d := par.Xb.MaxAbsDiff(serial.Xb); d > 1e-12 {
			t.Fatalf("nb=%d: Xb deviates by %v", nb, d)
		}
	}
}

func TestGreedyInitBeatsRandomInit(t *testing.T) {
	// §5.7's claim in solver form: at equal sweep counts, greedy
	// initialization reaches a lower objective than random initialization.
	rng := rand.New(rand.NewSource(6))
	f, b := affinityPair(rng, 50, 20, 6)
	cfgIters := 2
	g := GreedyInit(f, b, 8, 4, rand.New(rand.NewSource(7)), 1)
	r := RandomInit(f, b, 8, rand.New(rand.NewSource(7)), 1)
	refine(g, cfgIters, 1)
	refine(r, cfgIters, 1)
	og := Objective(&g.Embedding, f, b)
	or := Objective(&r.Embedding, f, b)
	if og >= or {
		t.Fatalf("greedy objective %v not below random %v", og, or)
	}
}

func TestSMGreedyInitCloseToSerial(t *testing.T) {
	// Lemma 4.2's practical content: split-merge init approximates F'
	// essentially as well as the serial greedy init.
	rng := rand.New(rand.NewSource(8))
	f, b := affinityPair(rng, 60, 18, 4)
	serial := GreedyInit(f, b, 8, 5, rand.New(rand.NewSource(1)), 1)
	sm := SMGreedyInit(f, b, 8, 5, rand.New(rand.NewSource(1)), 4)
	objSerial := Objective(&serial.Embedding, f, b)
	objSM := Objective(&sm.Embedding, f, b)
	// Allow the parallel variant a modest slack — it performs extra
	// truncations.
	if objSM > 2*objSerial+1e-9 {
		t.Fatalf("split-merge init objective %v ≫ serial %v", objSM, objSerial)
	}
	// Residuals must be internally consistent too.
	wantSf := mat.MulBT(sm.Xf, sm.Y)
	wantSf.Sub(f)
	if sm.Sf.MaxAbsDiff(wantSf) > 1e-9 {
		t.Fatal("split-merge residual Sf inconsistent")
	}
}

func TestSMGreedyInitFallbackTinyBlocks(t *testing.T) {
	// When blocks would be shorter than k/2 rows, SMGreedyInit must fall
	// back to the serial initializer rather than produce degenerate SVDs.
	rng := rand.New(rand.NewSource(9))
	f, b := affinityPair(rng, 10, 8, 2)
	st := SMGreedyInit(f, b, 8, 3, rng, 8) // 10 rows / 8 blocks < 4
	if st == nil || st.Xf.Rows != 10 {
		t.Fatal("fallback failed")
	}
}

func TestLemma42UnitaryYAndZeroResiduals(t *testing.T) {
	// Lemma 4.2 with exact decompositions: when rank(F') <= k/2, both
	// initializers satisfy Xf·Yᵀ = F', YᵀY = I and Sf = 0.
	rng := rand.New(rand.NewSource(10))
	l := mat.New(40, 3)
	r := mat.New(3, 12)
	for i := range l.Data {
		l.Data[i] = rng.NormFloat64()
	}
	for i := range r.Data {
		r.Data[i] = rng.NormFloat64()
	}
	f := mat.Mul(l, r) // exact rank 3 <= k/2 = 4
	b := f.Clone()
	for _, nb := range []int{1, 4} {
		var st *state
		if nb == 1 {
			st = GreedyInit(f, b, 8, 6, rand.New(rand.NewSource(3)), 1)
		} else {
			st = SMGreedyInit(f, b, 8, 6, rand.New(rand.NewSource(3)), nb)
		}
		if d := st.Sf.FrobeniusNorm(); d > 1e-6 {
			t.Fatalf("nb=%d: Sf norm %v, want ~0", nb, d)
		}
		gram := mat.MulAT(st.Y, st.Y)
		for i := 0; i < gram.Rows; i++ {
			for j := 0; j < gram.Cols; j++ {
				want := 0.0
				if i == j && i < 3 {
					want = 1.0 // padded zero columns are allowed beyond the true rank
				}
				if i == j && i >= 3 {
					continue
				}
				if math.Abs(gram.At(i, j)-want) > 1e-6 {
					t.Fatalf("nb=%d: YᵀY[%d,%d] = %v", nb, i, j, gram.At(i, j))
				}
			}
		}
		// Sb·Y must vanish (the backward optimality condition of the lemma).
		sby := mat.Mul(st.Sb, st.Y)
		if sby.FrobeniusNorm() > 1e-6 {
			t.Fatalf("nb=%d: Sb·Y norm %v, want ~0", nb, sby.FrobeniusNorm())
		}
	}
}

func TestObjectiveZeroForPerfectFactorization(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xf := mat.New(5, 2)
	y := mat.New(3, 2)
	for i := range xf.Data {
		xf.Data[i] = rng.NormFloat64()
	}
	for i := range y.Data {
		y.Data[i] = rng.NormFloat64()
	}
	f := mat.MulBT(xf, y)
	e := &Embedding{Xf: xf, Xb: xf, Y: y}
	if o := Objective(e, f, f); o > 1e-18 {
		t.Fatalf("objective %v for perfect factorization", o)
	}
}
