package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"pane/internal/graph"
	"pane/internal/mat"
)

func smallConfig() Config {
	return Config{K: 16, Alpha: 0.5, Eps: 0.015, Threads: 4, Seed: 1}
}

func TestPANEEndToEndShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := testGraph(rng, 40, 10)
	e, err := PANE(g, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if e.Xf.Rows != g.N || e.Xb.Rows != g.N || e.Y.Rows != g.D {
		t.Fatal("embedding row counts wrong")
	}
	if e.Xf.Cols != 8 || e.Xb.Cols != 8 || e.Y.Cols != 8 || e.K() != 16 {
		t.Fatal("embedding widths wrong")
	}
	for _, m := range []*mat.Dense{e.Xf, e.Xb, e.Y} {
		for i, v := range m.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("non-finite embedding value at %d", i)
			}
		}
	}
}

func TestPANERejectsBadConfig(t *testing.T) {
	g := graph.RunningExample()
	if _, err := PANE(g, Config{K: 7, Alpha: 0.5, Eps: 0.015}); err == nil {
		t.Fatal("odd K accepted")
	}
	if _, err := ParallelPANE(g, Config{K: 8, Alpha: 2, Eps: 0.015}); err == nil {
		t.Fatal("bad alpha accepted")
	}
}

func TestPANEApproximatesAffinity(t *testing.T) {
	// The whole point of Equation (4): Xf·Yᵀ ≈ F' and Xb·Yᵀ ≈ B'.
	rng := rand.New(rand.NewSource(2))
	g := testGraph(rng, 50, 8)
	cfg := smallConfig()
	f, b := AffinityFromGraph(g, cfg.Alpha, cfg.Iterations(), 1)
	e, err := PANE(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	relF := relErr(mat.MulBT(e.Xf, e.Y), f)
	relB := relErr(mat.MulBT(e.Xb, e.Y), b)
	if relF > 0.35 || relB > 0.35 {
		t.Fatalf("reconstruction error too high: F %v, B %v", relF, relB)
	}
}

func relErr(got, want *mat.Dense) float64 {
	d := got.Clone()
	d.Sub(want)
	return d.FrobeniusNorm() / want.FrobeniusNorm()
}

func TestParallelPANECloseToSerial(t *testing.T) {
	// §5's repeated observation: parallel PANE's utility is within a hair
	// of single-thread PANE. We check the objective value ratio.
	rng := rand.New(rand.NewSource(3))
	g := testGraph(rng, 60, 12)
	cfg := smallConfig()
	f, b := AffinityFromGraph(g, cfg.Alpha, cfg.Iterations(), 1)
	serial, err := PANE(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ParallelPANE(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	os := Objective(serial, f, b)
	op := Objective(par, f, b)
	if op > 1.5*os+1e-9 {
		t.Fatalf("parallel objective %v much worse than serial %v", op, os)
	}
}

func TestParallelPANESingleThreadDegenerate(t *testing.T) {
	// Threads=1 parallel PANE must agree with single-thread PANE exactly:
	// same affinity path, same initializer fallback, same CCD.
	rng := rand.New(rand.NewSource(4))
	g := testGraph(rng, 30, 6)
	cfg := smallConfig()
	cfg.Threads = 1
	a, err := PANE(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParallelPANE(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Xf.MaxAbsDiff(b.Xf) > 1e-12 || a.Y.MaxAbsDiff(b.Y) > 1e-12 {
		t.Fatal("Threads=1 parallel PANE differs from serial PANE")
	}
}

func TestPANEDeterministicForSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := testGraph(rng, 25, 5)
	cfg := smallConfig()
	a, _ := PANE(g, cfg)
	b, _ := PANE(g, cfg)
	if a.Xf.MaxAbsDiff(b.Xf) > 0 || a.Xb.MaxAbsDiff(b.Xb) > 0 || a.Y.MaxAbsDiff(b.Y) > 0 {
		t.Fatal("same seed produced different embeddings")
	}
	cfg.Seed = 999
	c, _ := PANE(g, cfg)
	if a.Xf.MaxAbsDiff(c.Xf) == 0 {
		t.Fatal("different seed produced identical embeddings (suspicious)")
	}
}

func TestAttrScoreRecoversHeldOutAttributes(t *testing.T) {
	// Functional smoke test of Equation (21): nodes should score their own
	// attributes above the median of attributes they do not carry.
	rng := rand.New(rand.NewSource(6))
	g := testGraph(rng, 60, 10)
	cfg := smallConfig()
	e, err := PANE(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	better, total := 0, 0
	for v := 0; v < g.N; v++ {
		cols, _ := g.NodeAttrs(v)
		if len(cols) == 0 {
			continue
		}
		owned := map[int32]bool{}
		for _, c := range cols {
			owned[c] = true
		}
		var negScores []float64
		for r := 0; r < g.D; r++ {
			if !owned[int32(r)] {
				negScores = append(negScores, e.AttrScore(v, r))
			}
		}
		sort.Float64s(negScores)
		median := negScores[len(negScores)/2]
		for _, c := range cols {
			total++
			if e.AttrScore(v, int(c)) > median {
				better++
			}
		}
	}
	if frac := float64(better) / float64(total); frac < 0.8 {
		t.Fatalf("only %.2f of owned attributes beat the median non-owned score", frac)
	}
}

func TestLinkScorerMatchesEquation22(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := testGraph(rng, 20, 6)
	e, err := PANE(g, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := NewLinkScorer(e)
	// Direct evaluation of Σ_r (Xf[u]·Y[r])(Xb[v]·Y[r]).
	for _, pair := range [][2]int{{0, 1}, {3, 9}, {12, 4}} {
		u, v := pair[0], pair[1]
		var want float64
		for r := 0; r < g.D; r++ {
			want += mat.Dot(e.Xf.Row(u), e.Y.Row(r)) * mat.Dot(e.Xb.Row(v), e.Y.Row(r))
		}
		if got := s.Directed(u, v); math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("Directed(%d,%d) = %v, want %v", u, v, got, want)
		}
		if got := s.Undirected(u, v); math.Abs(got-(s.Directed(u, v)+s.Directed(v, u))) > 1e-12 {
			t.Fatal("Undirected != sum of directions")
		}
	}
}

func TestLinkScorerRanksEdgesAboveRandomPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := testGraph(rng, 60, 10)
	e, err := PANE(g, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := NewLinkScorer(e)
	var edgeScores, nonScores []float64
	for u := 0; u < g.N; u++ {
		for _, v := range g.OutNeighbors(u) {
			edgeScores = append(edgeScores, s.Directed(u, int(v)))
		}
	}
	for i := 0; i < 500; i++ {
		u, v := rng.Intn(g.N), rng.Intn(g.N)
		if u != v && !g.HasEdge(u, v) {
			nonScores = append(nonScores, s.Directed(u, v))
		}
	}
	if meanOf(edgeScores) <= meanOf(nonScores) {
		t.Fatalf("edges do not outscore non-edges: %v vs %v", meanOf(edgeScores), meanOf(nonScores))
	}
}

func meanOf(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestClassifierFeatures(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := testGraph(rng, 15, 5)
	e, err := PANE(g, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	feats := e.ClassifierFeatures()
	if feats.Rows != g.N || feats.Cols != e.K() {
		t.Fatal("feature shape wrong")
	}
	half := e.Xf.Cols
	for v := 0; v < g.N; v++ {
		row := feats.Row(v)
		nf := mat.Norm2(row[:half])
		nb := mat.Norm2(row[half:])
		if math.Abs(nf-1) > 1e-9 && nf != 0 {
			t.Fatalf("forward half not normalized: %v", nf)
		}
		if math.Abs(nb-1) > 1e-9 && nb != 0 {
			t.Fatalf("backward half not normalized: %v", nb)
		}
	}
}

func TestPANERandomInitWorseEarly(t *testing.T) {
	// Figure 7/8's premise: at a small iteration budget PANE (greedy)
	// yields a lower objective than PANE-R (random init).
	rng := rand.New(rand.NewSource(10))
	g := testGraph(rng, 50, 10)
	cfg := smallConfig()
	cfg.CCDIters = 1
	f, b := AffinityFromGraph(g, cfg.Alpha, cfg.Iterations(), 1)
	greedy, err := PANE(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	random, err := PANERandomInit(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if Objective(greedy, f, b) >= Objective(random, f, b) {
		t.Fatal("greedy init not better than random at 1 CCD sweep")
	}
}
