package core

import (
	"math"
	"math/rand"
	"testing"

	"pane/internal/graph"
)

// freshGraphFrom rebuilds g2 from its entry lists so its derived-product
// cache is built from scratch rather than patched — the reference for
// "what a cold computation would produce".
func freshGraphFrom(g *graph.Graph) *graph.Graph {
	fresh, err := graph.New(g.N, g.D, g.Edges(), g.AttrEntries(), g.Labels)
	if err != nil {
		panic(err)
	}
	return fresh
}

// randomDelta draws a small random batch of edge inserts and attribute
// weight bumps for g.
func randomDelta(rng *rand.Rand, g *graph.Graph, nEdges, nAttrs int) ([]graph.Edge, []graph.AttrEntry) {
	var edges []graph.Edge
	for i := 0; i < nEdges; i++ {
		edges = append(edges, graph.Edge{Src: rng.Intn(g.N), Dst: rng.Intn(g.N)})
	}
	var attrs []graph.AttrEntry
	for i := 0; i < nAttrs; i++ {
		attrs = append(attrs, graph.AttrEntry{Node: rng.Intn(g.N), Attr: rng.Intn(g.D), Weight: 0.5 + rng.Float64()})
	}
	return edges, attrs
}

// TestAffinityStateMatchesAPMI: a fresh state's materialized affinity must
// be bit-identical to APMI's output, for t = 1 and deeper recurrences and
// regardless of worker count.
func TestAffinityStateMatchesAPMI(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, tc := range []struct{ t, nb int }{{1, 1}, {1, 4}, {3, 1}, {3, 4}} {
		g := testGraph(rng, 40, 7)
		p, pt := g.Walk()
		rr, rc := g.NormalizedAttrs()
		wantF, wantB := APMI(p, pt, rr, rc, 0.5, tc.t)
		s := NewAffinityState(g, 0.5, tc.t, tc.nb)
		gotF, gotB := s.Affinity(tc.nb)
		for i, v := range wantF.Data {
			if gotF.Data[i] != v {
				t.Fatalf("t=%d nb=%d: F differs at %d: %v vs %v", tc.t, tc.nb, i, gotF.Data[i], v)
			}
		}
		for i, v := range wantB.Data {
			if gotB.Data[i] != v {
				t.Fatalf("t=%d nb=%d: B differs at %d: %v vs %v", tc.t, tc.nb, i, gotB.Data[i], v)
			}
		}
	}
}

// TestAffinityRowsMatchFull: gathered rows must equal the same rows of the
// full materialization bit-for-bit.
func TestAffinityRowsMatchFull(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	g := testGraph(rng, 30, 5)
	s := NewAffinityState(g, 0.5, 2, 2)
	f, b := s.Affinity(2)
	rows := []int{0, 3, 7, 29}
	fRows, bRows := s.AffinityRows(rows, 2)
	for j, v := range rows {
		for p := 0; p < s.d; p++ {
			if fRows.Row(j)[p] != f.Row(v)[p] || bRows.Row(j)[p] != b.Row(v)[p] {
				t.Fatalf("gathered affinity row %d differs from full materialization", v)
			}
		}
	}
}

// TestUpdateAffinityFrontierExact is the frontier property test: after an
// incremental update, (a) every row outside the reported frontier is
// bit-identical to the state before the update (the frontier covers the
// dense diff), and (b) the patched pre-normalization levels and row sums
// are bit-identical to a state rebuilt from scratch on the updated graph —
// i.e. the restricted recurrence loses nothing.
func TestUpdateAffinityFrontierExact(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 15; trial++ {
		tIter := 1 + rng.Intn(3)
		g := testGraph(rng, 30+rng.Intn(30), 4+rng.Intn(5))
		s := NewAffinityState(g, 0.5, tIter, 2)
		before := NewAffinityState(g, 0.5, tIter, 1) // immutable copy of the pre-update state
		var edges []graph.Edge
		var attrs []graph.AttrEntry
		if trial%3 != 1 {
			edges, _ = randomDelta(rng, g, 1+rng.Intn(3), 0)
		}
		if trial%3 != 0 {
			_, attrs = randomDelta(rng, g, 0, 1+rng.Intn(3))
		}
		g2, err := g.WithUpdates(edges, attrs)
		if err != nil {
			t.Fatal(err)
		}
		up, err := UpdateAffinity(s, g2, edges, attrs, 0, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !up.Incremental {
			t.Fatalf("trial %d: unexpected fallback with no frontier budget", trial)
		}
		full := NewAffinityState(freshGraphFrom(g2), 0.5, tIter, 2)
		inF := make([]bool, g.N)
		// The reported frontier sizes are checked indirectly: frontier
		// membership is exactly "the row may differ from before".
		for v := 0; v < g.N; v++ {
			inF[v] = !before.FinalRowsEqual(s, v)
		}
		frontierRows := 0
		for v := 0; v < g.N; v++ {
			// (b) the updated state matches the from-scratch rebuild on
			// every row, frontier or not.
			if !s.FinalRowsEqual(full, v) {
				t.Fatalf("trial %d: row %d of patched state differs from full rebuild", trial, v)
			}
			if s.rowSums[v] != full.rowSums[v] {
				t.Fatalf("trial %d: row sum %d differs from full rebuild", trial, v)
			}
			if inF[v] {
				frontierRows++
			}
		}
		if max := up.FrontierF + up.FrontierB; frontierRows > max {
			t.Fatalf("trial %d: %d rows changed but frontier reported only %d+%d",
				trial, frontierRows, up.FrontierF, up.FrontierB)
		}
		// Column sums are maintained incrementally: equal to the fresh
		// accumulation up to float round-off.
		for j := range s.colSums {
			if d := math.Abs(s.colSums[j] - full.colSums[j]); d > 1e-12*(1+math.Abs(full.colSums[j])) {
				t.Fatalf("trial %d: col sum %d drifted %v", trial, j, d)
			}
		}
	}
}

// TestUpdateAffinityThresholdFallback: a frontier above the budget leaves
// the state untouched and reports Incremental=false.
func TestUpdateAffinityThresholdFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	g := testGraph(rng, 40, 5)
	s := NewAffinityState(g, 0.5, 2, 1)
	before := NewAffinityState(g, 0.5, 2, 1)
	// Touch many sources so the frontier blows past 1% of n.
	var edges []graph.Edge
	for v := 0; v < g.N; v += 2 {
		edges = append(edges, graph.Edge{Src: v, Dst: (v + 3) % g.N})
	}
	g2, err := g.WithUpdates(edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	up, err := UpdateAffinity(s, g2, edges, nil, 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	if up.Incremental {
		t.Fatal("expected threshold fallback")
	}
	for v := 0; v < g.N; v++ {
		if !s.FinalRowsEqual(before, v) {
			t.Fatal("fallback mutated the state")
		}
	}
}

// TestUpdateAffinityEmptyDelta: an empty delta is a no-op.
func TestUpdateAffinityEmptyDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	g := testGraph(rng, 20, 4)
	s := NewAffinityState(g, 0.5, 1, 1)
	up, err := UpdateAffinity(s, g, nil, nil, 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !up.Incremental || up.FrontierF != 0 || up.FrontierB != 0 {
		t.Fatalf("empty delta: %+v", up)
	}
}

// TestAffinityStateDriftBounded chains 100 random deltas through one
// state and checks that the incrementally-maintained column sums stay
// within tolerance of a fresh accumulation, that the reported drift
// estimate stays sane, and that the materialized affinity stays within
// tolerance of a cold APMI run on the final graph.
func TestAffinityStateDriftBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	g := testGraph(rng, 60, 6)
	s := NewAffinityState(g, 0.5, 2, 2)
	const chain = 100
	incr := 0
	for step := 0; step < chain; step++ {
		edges, attrs := randomDelta(rng, g, 1+rng.Intn(3), rng.Intn(2))
		g2, err := g.WithUpdates(edges, attrs)
		if err != nil {
			t.Fatal(err)
		}
		up, err := UpdateAffinity(s, g2, edges, attrs, 0.9, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !up.Incremental {
			// Frontier exceeded 90% of n — rebuild, as the engine would.
			s = NewAffinityState(g2, 0.5, 2, 2)
		} else {
			incr++
		}
		g = g2
	}
	if incr == 0 {
		t.Fatal("no incremental updates exercised")
	}
	const tol = 1e-9
	fresh := s.finalF().ColSums()
	for j := range fresh {
		if d := math.Abs(s.colSums[j] - fresh[j]); d > tol*(1+math.Abs(fresh[j])) {
			t.Fatalf("col sum %d drifted %v after %d chained deltas", j, d, chain)
		}
	}
	if s.Drift() < 0 || s.Drift() > tol {
		t.Fatalf("drift estimate %v outside [0, %v]", s.Drift(), tol)
	}
	p, pt := g.Walk()
	rr, rc := g.NormalizedAttrs()
	wantF, wantB := APMI(p, pt, rr, rc, 0.5, 2)
	gotF, gotB := s.Affinity(2)
	for i := range wantF.Data {
		if d := math.Abs(gotF.Data[i] - wantF.Data[i]); d > tol {
			t.Fatalf("F[%d] drifted %v from cold APMI", i, d)
		}
	}
	for i := range wantB.Data {
		if d := math.Abs(gotB.Data[i] - wantB.Data[i]); d > tol {
			t.Fatalf("B[%d] drifted %v from cold APMI", i, d)
		}
	}
}

// TestRefineRowsFromStateMatchesRefineRowsFrom: with a fresh state (whose
// materialization equals APMI bit-for-bit), the state-served refinement
// must equal the matrix-served one exactly, for both the node-only
// gathered path and the attribute path.
func TestRefineRowsFromStateMatchesRefineRowsFrom(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	g := testGraph(rng, 40, 6)
	cfg := Config{K: 8, Alpha: 0.5, Eps: 0.25, Threads: 2, Seed: 1}
	emb, err := PANE(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := NewAffinityState(g, cfg.Alpha, cfg.Iterations(), 2)
	f, b := AffinityFromGraph(g, cfg.Alpha, cfg.Iterations(), 1)
	for _, delta := range []UpdateDelta{
		{Nodes: []int{2, 5, 17}},
		{Nodes: []int{4}, Attrs: []int{1, 3}},
	} {
		want := RefineRowsFrom(emb, f, b, cfg, 2, 2, delta)
		got := RefineRowsFromState(s, emb, cfg, 2, 2, delta)
		for i, v := range want.Xf.Data {
			if got.Xf.Data[i] != v {
				t.Fatalf("delta %+v: Xf differs at %d", delta, i)
			}
		}
		for i, v := range want.Xb.Data {
			if got.Xb.Data[i] != v {
				t.Fatalf("delta %+v: Xb differs at %d", delta, i)
			}
		}
		for i, v := range want.Y.Data {
			if got.Y.Data[i] != v {
				t.Fatalf("delta %+v: Y differs at %d", delta, i)
			}
		}
	}
}

// TestAffinityUpdateMismatchedGraph: shape mismatches are rejected.
func TestAffinityUpdateMismatchedGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	g := testGraph(rng, 20, 4)
	other := testGraph(rng, 21, 4)
	s := NewAffinityState(g, 0.5, 1, 1)
	if _, err := UpdateAffinity(s, other, nil, nil, 0, 1); err == nil {
		t.Fatal("mismatched graph accepted")
	}
	if _, err := UpdateAffinity(s, g, []graph.Edge{{Src: -1, Dst: 0}}, nil, 0, 1); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if _, err := UpdateAffinity(s, g, nil, []graph.AttrEntry{{Node: 0, Attr: 99, Weight: 1}}, 0, 1); err == nil {
		t.Fatal("out-of-range attr accepted")
	}
}
