package core

import (
	"pane/internal/mat"
)

// AttrScore returns the attribute-inference score of Equation (21):
//
//	p(v, r) = Xf[v]·Y[r]ᵀ + Xb[v]·Y[r]ᵀ ≈ F[v,r] + B[v,r]
func (e *Embedding) AttrScore(v, r int) float64 {
	yr := e.Y.Row(r)
	return mat.Dot(e.Xf.Row(v), yr) + mat.Dot(e.Xb.Row(v), yr)
}

// LinkScorer precomputes the k/2 x k/2 Gram matrix G = YᵀY so that the
// link-prediction score of Equation (22),
//
//	p(u, v) = Σ_r (Xf[u]·Y[r]ᵀ)(Xb[v]·Y[r]ᵀ) = Xf[u]·G·Xb[v]ᵀ,
//
// costs O(k²) per queried pair instead of O(d·k).
type LinkScorer struct {
	e *Embedding
	g *mat.Dense
}

// NewLinkScorer builds the scorer for e.
func NewLinkScorer(e *Embedding) *LinkScorer {
	return &LinkScorer{e: e, g: mat.MulAT(e.Y, e.Y)}
}

// Directed returns p(u, v), the score of the directed edge u → v.
func (s *LinkScorer) Directed(u, v int) float64 {
	xu := s.e.Xf.Row(u)
	xv := s.e.Xb.Row(v)
	var total float64
	half := len(xu)
	for i := 0; i < half; i++ {
		if xu[i] == 0 {
			continue
		}
		gi := s.g.Row(i)
		var acc float64
		for j := 0; j < half; j++ {
			acc += gi[j] * xv[j]
		}
		total += xu[i] * acc
	}
	return total
}

// Undirected returns p(u,v) + p(v,u), the paper's score for undirected
// graphs (§5.3).
func (s *LinkScorer) Undirected(u, v int) float64 {
	return s.Directed(u, v) + s.Directed(v, u)
}

// TransformedCandidates materializes Z = Xb·G (G = YᵀY is symmetric), the
// n x k/2 candidate matrix of the link model: p(u, v) = Xf[u]·Z[v]ᵀ.
// Computing Z once per model version moves the per-query O(k²) transform
// of TopKTargets into an index build step (internal/index), leaving each
// candidate at one O(k/2) dot product with no per-query setup. nb is the
// worker count for the multiply.
func (s *LinkScorer) TransformedCandidates(nb int) *mat.Dense {
	return s.TransformedCandidatesRange(0, s.e.Xb.Rows, nb)
}

// TransformedCandidatesRange materializes rows [lo, hi) of Z = Xb·G — one
// contiguous shard of the candidate matrix. Each output row is computed by
// the same row-owned kernel as the full product, so shard-wise assembly is
// bit-for-bit identical to TransformedCandidates: sharded serving can
// build S independent blocks concurrently without changing any score.
func (s *LinkScorer) TransformedCandidatesRange(lo, hi, nb int) *mat.Dense {
	return mat.ParMul(s.e.Xb.RowSlice(lo, hi), s.g, nb)
}

// TransformedCandidatesRows materializes only the listed rows of Z =
// Xb·G: row j of the result is Z[rows[j]]. Each row is computed by the
// same row-owned kernel as TransformedCandidates (mat.MulRowInto), so a
// recomputed row is bit-for-bit the row a full rebuild would produce —
// which is what lets an incremental index refresh patch Δ rows into a
// previous version's candidate matrix instead of recomputing all n. nb is
// the worker count over the listed rows.
func (s *LinkScorer) TransformedCandidatesRows(rows []int, nb int) *mat.Dense {
	out := mat.New(len(rows), s.g.Cols)
	mat.ParallelRanges(len(rows), nb, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			mat.MulRowInto(out.Row(j), s.e.Xb, rows[j], s.g)
		}
	})
	return out
}

// AttrQueryInto writes the attribute-inference query vector of node v,
// Xf[v] + Xb[v], into dst (which must have length k/2) and returns it:
// dst·Y[r]ᵀ equals AttrScore(v, r) up to floating-point association, so Y
// itself is the candidate matrix for indexed attribute retrieval.
func (e *Embedding) AttrQueryInto(v int, dst []float64) []float64 {
	xf, xb := e.Xf.Row(v), e.Xb.Row(v)
	for i := range dst {
		dst[i] = xf[i] + xb[i]
	}
	return dst
}

// ClassifierFeatures returns the per-node feature vectors used for node
// classification (§5.4): the forward and backward embeddings of each node
// are L2-normalized independently and concatenated into a length-K vector.
func (e *Embedding) ClassifierFeatures() *mat.Dense {
	n := e.Xf.Rows
	half := e.Xf.Cols
	out := mat.New(n, 2*half)
	for v := 0; v < n; v++ {
		dst := out.Row(v)
		copyNormalized(dst[:half], e.Xf.Row(v))
		copyNormalized(dst[half:], e.Xb.Row(v))
	}
	return out
}

func copyNormalized(dst, src []float64) {
	nrm := mat.Norm2(src)
	if nrm == 0 {
		copy(dst, src)
		return
	}
	inv := 1 / nrm
	for i, v := range src {
		dst[i] = v * inv
	}
}
