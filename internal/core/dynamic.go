package core

import (
	"fmt"

	"pane/internal/graph"
	"pane/internal/mat"
)

// This file implements the paper's future-work direction of §7 ("adapt
// PANE to time-varying graphs where attributes and node connections
// change over time") in its natural factorization-solver form: when the
// graph changes, the affinity matrices are recomputed (APMI is the cheap,
// O(m·d·t) phase and has no state to reuse), but the expensive solver is
// *warm-started* from the previous embeddings instead of re-running
// GreedyInit, since a small graph delta moves the optimum of Equation (4)
// only slightly. The same greedy-seeding logic that makes cold-start fast
// (§3.2) makes the previous solution an even better seed after a small
// change.

// RefineFrom continues CCD refinement from an existing embedding against
// (possibly updated) affinity targets f and b. prev is not mutated. The
// residuals are rebuilt once (O(n·d·k)) and then maintained incrementally
// as usual. sweeps <= 0 defaults to cfg.ccdIters().
func RefineFrom(prev *Embedding, f, b *mat.Dense, cfg Config, sweeps, nb int) *Embedding {
	if nb < 1 {
		nb = 1
	}
	st := &state{Embedding: Embedding{
		Xf: prev.Xf.Clone(),
		Xb: prev.Xb.Clone(),
		Y:  prev.Y.Clone(),
	}}
	st.Sf = mat.ParMulBT(st.Xf, st.Y, nb)
	st.Sf.Sub(f)
	st.Sb = mat.ParMulBT(st.Xb, st.Y, nb)
	st.Sb.Sub(b)
	if sweeps <= 0 {
		sweeps = cfg.ccdIters()
	}
	refine(st, sweeps, nb)
	e := st.Embedding
	return &e
}

// UpdateEmbedding re-embeds an updated graph by warm-starting from prev.
// It recomputes the affinity matrices for the new graph and runs `sweeps`
// CCD sweeps from the previous solution — typically 1-2 sweeps suffice
// for small deltas, vs cfg.Iterations() for a cold start. prev must have
// been trained with the same K and on a graph with the same node and
// attribute counts (embeddings are positional).
func UpdateEmbedding(g *graph.Graph, prev *Embedding, cfg Config, sweeps int) (*Embedding, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := checkGraph(g); err != nil {
		return nil, err
	}
	if prev.Xf.Rows != g.N || prev.Y.Rows != g.D || prev.K() != cfg.K {
		return nil, fmt.Errorf("core: UpdateEmbedding shape mismatch: graph %dx%d k=%d vs previous embedding %dx%d k=%d",
			g.N, g.D, cfg.K, prev.Xf.Rows, prev.Y.Rows, prev.K())
	}
	nb := cfg.Threads
	if nb < 1 {
		nb = 1
	}
	f, b := AffinityFromGraph(g, cfg.Alpha, cfg.Iterations(), nb)
	return RefineFrom(prev, f, b, cfg, sweeps, nb), nil
}
