package core

import (
	"fmt"

	"pane/internal/graph"
	"pane/internal/mat"
)

// This file implements the paper's future-work direction of §7 ("adapt
// PANE to time-varying graphs where attributes and node connections
// change over time") in its natural factorization-solver form: when the
// graph changes, the affinity matrices are recomputed (APMI is the cheap,
// O(m·d·t) phase and has no state to reuse), but the expensive solver is
// *warm-started* from the previous embeddings instead of re-running
// GreedyInit, since a small graph delta moves the optimum of Equation (4)
// only slightly. The same greedy-seeding logic that makes cold-start fast
// (§3.2) makes the previous solution an even better seed after a small
// change.

// RefineFrom continues CCD refinement from an existing embedding against
// (possibly updated) affinity targets f and b. prev is not mutated. The
// residuals are rebuilt once (O(n·d·k)) and then maintained incrementally
// as usual. sweeps <= 0 defaults to cfg.ccdIters().
func RefineFrom(prev *Embedding, f, b *mat.Dense, cfg Config, sweeps, nb int) *Embedding {
	if nb < 1 {
		nb = 1
	}
	st := &state{Embedding: Embedding{
		Xf: prev.Xf.Clone(),
		Xb: prev.Xb.Clone(),
		Y:  prev.Y.Clone(),
	}}
	st.Sf = mat.ParMulBT(st.Xf, st.Y, nb)
	st.Sf.Sub(f)
	st.Sb = mat.ParMulBT(st.Xb, st.Y, nb)
	st.Sb.Sub(b)
	if sweeps <= 0 {
		sweeps = cfg.ccdIters()
	}
	refine(st, sweeps, nb)
	e := st.Embedding
	return &e
}

// UpdateDelta is the row delta of one dynamic update: the node rows whose
// Xf/Xb embedding rows change and the attribute rows whose Y rows change.
// It is both the input of the delta-restricted refinement (which rows to
// refine) and its report (exactly these rows may differ from the previous
// embedding; every other row is bit-identical). Both lists must be
// strictly ascending and in range.
type UpdateDelta struct {
	Nodes []int
	Attrs []int
}

// Empty reports whether the delta touches no rows.
func (d UpdateDelta) Empty() bool { return len(d.Nodes) == 0 && len(d.Attrs) == 0 }

// Rows returns the total number of rows the delta touches.
func (d UpdateDelta) Rows() int { return len(d.Nodes) + len(d.Attrs) }

// checkRowList validates one delta row list: strictly ascending ids in
// [0, limit).
func checkRowList(rows []int, limit int, what string) error {
	for i, r := range rows {
		if r < 0 || r >= limit {
			return fmt.Errorf("core: delta %s row %d out of range [0,%d)", what, r, limit)
		}
		if i > 0 && rows[i-1] >= r {
			return fmt.Errorf("core: delta %s rows not strictly ascending at index %d (%d after %d)",
				what, i, r, rows[i-1])
		}
	}
	return nil
}

// RefineRowsFrom is the delta-restricted form of RefineFrom: only the
// listed node and attribute rows are swept; every unlisted row of the
// returned embedding is bit-identical to prev. This is what makes the
// update path O(Δ) downstream — the serving index can trust that exactly
// delta's rows (plus, when any Y row moved, everything derived from the
// Gram matrix G = YᵀY) changed.
//
// A node-only delta (no attribute rows) additionally restricts the
// residual rebuild to the touched rows: the node sweep for row v reads
// and writes only Sf[v]/Sb[v], so the O(n·d·k) full residual
// materialization of RefineFrom collapses to O(|Δ|·d·k). With attribute
// rows in the delta the full residuals are needed (an attribute sweep
// walks its residual column across all n nodes), so the general path
// rebuilds them like RefineFrom and restricts only the sweeps.
func RefineRowsFrom(prev *Embedding, f, b *mat.Dense, cfg Config, sweeps, nb int, delta UpdateDelta) *Embedding {
	// The restricted sweeps parallelize over the row lists assuming the
	// rows are distinct and in range; a duplicate would hand the same row
	// to two goroutines. Malformed deltas are a programmer error, so they
	// fail loudly here rather than corrupt an embedding.
	if err := checkRowList(delta.Nodes, prev.Xf.Rows, "node"); err != nil {
		panic(err)
	}
	if err := checkRowList(delta.Attrs, prev.Y.Rows, "attribute"); err != nil {
		panic(err)
	}
	if nb < 1 {
		nb = 1
	}
	if sweeps <= 0 {
		sweeps = cfg.ccdIters()
	}
	if delta.Empty() {
		// Nothing to refine: the previous embedding is the answer. The
		// matrices are immutable by convention, so sharing them is safe.
		e := *prev
		return &e
	}
	if len(delta.Attrs) == 0 {
		return refineNodeRowsGathered(prev, f, b, sweeps, nb, delta.Nodes)
	}
	st := &state{Embedding: Embedding{
		Xf: prev.Xf.Clone(),
		Xb: prev.Xb.Clone(),
		Y:  prev.Y.Clone(),
	}}
	st.Sf = mat.ParMulBT(st.Xf, st.Y, nb)
	st.Sf.Sub(f)
	st.Sb = mat.ParMulBT(st.Xb, st.Y, nb)
	st.Sb.Sub(b)
	refineRows(st, sweeps, nb, delta.Nodes, delta.Attrs)
	e := st.Embedding
	return &e
}

// refineRows runs sweeps restricted CCD iterations over the full solver
// state: the node phase visits only the listed node rows, the attribute
// phase only the listed attribute rows. The phase structure (and all
// per-row arithmetic) matches refine exactly.
func refineRows(st *state, sweeps, nb int, nodes, attrs []int) {
	half := st.Xf.Cols
	for it := 0; it < sweeps; it++ {
		yColT := st.Y.T()
		yNormInv := make([]float64, half)
		for l := 0; l < half; l++ {
			s := mat.Dot(yColT.Row(l), yColT.Row(l))
			if s > 0 {
				yNormInv[l] = 1 / s
			}
		}
		mat.ParallelRanges(len(nodes), nb, func(lo, hi int) {
			ccdNodeSweepRows(st, yNormInv, yColT, nodes[lo:hi])
		})
		xfColT := st.Xf.T()
		xbColT := st.Xb.T()
		xNormInv := make([]float64, half)
		for l := 0; l < half; l++ {
			s := mat.Dot(xfColT.Row(l), xfColT.Row(l)) + mat.Dot(xbColT.Row(l), xbColT.Row(l))
			if s > 0 {
				xNormInv[l] = 1 / s
			}
		}
		sfT := st.Sf.T()
		sbT := st.Sb.T()
		mat.ParallelRanges(len(attrs), nb, func(lo, hi int) {
			ccdAttrSweepRows(st, xNormInv, xfColT, xbColT, sfT, sbT, attrs[lo:hi])
		})
		st.Sf = sfT.T()
		st.Sb = sbT.T()
	}
}

// refineNodeRowsGathered is the node-only fast path of RefineRowsFrom:
// the touched rows are gathered into compact matrices, their residual
// rows built directly (O(|Δ|·d·k), not O(n·d·k)), swept with Y fixed,
// and scattered back into clones of the previous factors. Y is returned
// by reference, unchanged — which is what lets the serving layer keep
// every Gram-derived structure (G, Z rows of untouched nodes) bit-for-bit.
func refineNodeRowsGathered(prev *Embedding, f, b *mat.Dense, sweeps, nb int, nodes []int) *Embedding {
	fRows := mat.New(len(nodes), f.Cols)
	bRows := mat.New(len(nodes), b.Cols)
	for j, v := range nodes {
		copy(fRows.Row(j), f.Row(v))
		copy(bRows.Row(j), b.Row(v))
	}
	return refineNodeRowsGatheredTargets(prev, fRows, bRows, sweeps, nb, nodes)
}

// refineNodeRowsGatheredTargets is refineNodeRowsGathered with the
// affinity targets already gathered: row j of fRows/bRows is the affinity
// row of nodes[j]. This is the entry point of the AffinityState path,
// which materializes exactly the delta's target rows (O(|Δ|·d)) instead of
// full n x d affinity matrices.
func refineNodeRowsGatheredTargets(prev *Embedding, fRows, bRows *mat.Dense, sweeps, nb int, nodes []int) *Embedding {
	nd := len(nodes)
	half := prev.Xf.Cols
	subXf := mat.New(nd, half)
	subXb := mat.New(nd, half)
	for j, v := range nodes {
		copy(subXf.Row(j), prev.Xf.Row(v))
		copy(subXb.Row(j), prev.Xb.Row(v))
	}
	st := &state{Embedding: Embedding{Xf: subXf, Xb: subXb, Y: prev.Y}}
	st.Sf = mat.ParMulBT(subXf, prev.Y, nb)
	st.Sb = mat.ParMulBT(subXb, prev.Y, nb)
	for j := range nodes {
		// Row-wise Sub: same x + (-1)·y arithmetic as Dense.Sub, so the
		// gathered residual rows match a full rebuild's rows bit for bit.
		mat.AxpyVec(-1, fRows.Row(j), st.Sf.Row(j))
		mat.AxpyVec(-1, bRows.Row(j), st.Sb.Row(j))
	}
	// Y is fixed for the whole restricted refinement, so its column cache
	// and norms are loop-invariant.
	yColT := prev.Y.T()
	yNormInv := make([]float64, half)
	for l := 0; l < half; l++ {
		s := mat.Dot(yColT.Row(l), yColT.Row(l))
		if s > 0 {
			yNormInv[l] = 1 / s
		}
	}
	for it := 0; it < sweeps; it++ {
		mat.ParallelRanges(nd, nb, func(lo, hi int) {
			ccdNodeSweep(st, yNormInv, yColT, lo, hi)
		})
	}
	e := &Embedding{Xf: prev.Xf.Clone(), Xb: prev.Xb.Clone(), Y: prev.Y}
	for j, v := range nodes {
		copy(e.Xf.Row(v), subXf.Row(j))
		copy(e.Xb.Row(v), subXb.Row(j))
	}
	return e
}

// RefineRowsFromState is RefineRowsFrom with the affinity targets served
// from an incrementally-maintained AffinityState instead of freshly
// computed matrices. For a node-only delta the state materializes exactly
// the delta's target rows, so the whole model-side update is O(Δ) — no
// n x d pass anywhere. A delta with attribute rows still needs the full
// affinity matrices (an attribute sweep walks its residual column across
// all n nodes), so that path materializes them from the state in O(n·d).
func RefineRowsFromState(st *AffinityState, prev *Embedding, cfg Config, sweeps, nb int, delta UpdateDelta) *Embedding {
	if err := checkRowList(delta.Nodes, prev.Xf.Rows, "node"); err != nil {
		panic(err)
	}
	if err := checkRowList(delta.Attrs, prev.Y.Rows, "attribute"); err != nil {
		panic(err)
	}
	if nb < 1 {
		nb = 1
	}
	if sweeps <= 0 {
		sweeps = cfg.ccdIters()
	}
	if delta.Empty() {
		e := *prev
		return &e
	}
	if len(delta.Attrs) == 0 {
		fRows, bRows := st.AffinityRows(delta.Nodes, nb)
		return refineNodeRowsGatheredTargets(prev, fRows, bRows, sweeps, nb, delta.Nodes)
	}
	f, b := st.Affinity(nb)
	stt := &state{Embedding: Embedding{
		Xf: prev.Xf.Clone(),
		Xb: prev.Xb.Clone(),
		Y:  prev.Y.Clone(),
	}}
	stt.Sf = mat.ParMulBT(stt.Xf, stt.Y, nb)
	stt.Sf.Sub(f)
	stt.Sb = mat.ParMulBT(stt.Xb, stt.Y, nb)
	stt.Sb.Sub(b)
	refineRows(stt, sweeps, nb, delta.Nodes, delta.Attrs)
	e := stt.Embedding
	return &e
}

// UpdateEmbeddingRows is the delta-restricted form of UpdateEmbedding: it
// recomputes the affinity targets for the updated graph but warm-start
// refines only delta's rows, leaving every other embedding row
// bit-identical to prev. The same delta doubles as the report consumers
// need: an index over the previous version can reach this version by
// refreshing exactly delta's rows (and, when delta touches any attribute
// row, whatever it derives from Y globally).
func UpdateEmbeddingRows(g *graph.Graph, prev *Embedding, cfg Config, sweeps int, delta UpdateDelta) (*Embedding, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := checkGraph(g); err != nil {
		return nil, err
	}
	if prev.Xf.Rows != g.N || prev.Y.Rows != g.D || prev.K() != cfg.K {
		return nil, fmt.Errorf("core: UpdateEmbeddingRows shape mismatch: graph %dx%d k=%d vs previous embedding %dx%d k=%d",
			g.N, g.D, cfg.K, prev.Xf.Rows, prev.Y.Rows, prev.K())
	}
	if err := checkRowList(delta.Nodes, g.N, "node"); err != nil {
		return nil, err
	}
	if err := checkRowList(delta.Attrs, g.D, "attribute"); err != nil {
		return nil, err
	}
	nb := cfg.Threads
	if nb < 1 {
		nb = 1
	}
	f, b := AffinityFromGraph(g, cfg.Alpha, cfg.Iterations(), nb)
	return RefineRowsFrom(prev, f, b, cfg, sweeps, nb, delta), nil
}

// UpdateEmbedding re-embeds an updated graph by warm-starting from prev.
// It recomputes the affinity matrices for the new graph and runs `sweeps`
// CCD sweeps from the previous solution — typically 1-2 sweeps suffice
// for small deltas, vs cfg.Iterations() for a cold start. prev must have
// been trained with the same K and on a graph with the same node and
// attribute counts (embeddings are positional).
func UpdateEmbedding(g *graph.Graph, prev *Embedding, cfg Config, sweeps int) (*Embedding, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := checkGraph(g); err != nil {
		return nil, err
	}
	if prev.Xf.Rows != g.N || prev.Y.Rows != g.D || prev.K() != cfg.K {
		return nil, fmt.Errorf("core: UpdateEmbedding shape mismatch: graph %dx%d k=%d vs previous embedding %dx%d k=%d",
			g.N, g.D, cfg.K, prev.Xf.Rows, prev.Y.Rows, prev.K())
	}
	nb := cfg.Threads
	if nb < 1 {
		nb = 1
	}
	f, b := AffinityFromGraph(g, cfg.Alpha, cfg.Iterations(), nb)
	return RefineFrom(prev, f, b, cfg, sweeps, nb), nil
}
