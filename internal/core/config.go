// Package core implements PANE itself: the APMI/PAPMI affinity
// approximation (Algorithms 2 and 6), the greedy SVD-based initialization
// (Algorithms 3 and 7), the cyclic-coordinate-descent refinement
// (Algorithms 4 and 8), and the end-to-end single-thread and parallel
// drivers (Algorithms 1 and 5) of the paper.
package core

import (
	"fmt"
	"math"
)

// Config collects PANE's hyperparameters. The zero value is not usable;
// start from DefaultConfig.
type Config struct {
	// K is the per-node space budget: each node receives a forward and a
	// backward embedding of length K/2, and each attribute an embedding of
	// length K/2. K must be even and >= 2. Paper default: 128.
	K int
	// Alpha is the random-walk stopping probability in (0,1). Paper
	// default: 0.5.
	Alpha float64
	// Eps is the error threshold ε controlling the number of APMI
	// iterations t = ceil(log(ε)/log(1−α) − 1). Paper default: 0.015.
	Eps float64
	// Threads is nb, the number of worker threads for the parallel
	// algorithms. Ignored (treated as 1) by the single-thread driver.
	Threads int
	// CCDIters overrides the number of CCD refinement sweeps; 0 means
	// "use t", the paper's coupling of both loops to the same t.
	CCDIters int
	// PowerIters is the number of subspace power iterations inside
	// RandSVD; 0 means "use t" capped at 3 (subspace iteration converges
	// geometrically — more passes measurably cost, don't measurably help;
	// see BenchmarkAblationRandSVDPowerIters).
	PowerIters int
	// Seed drives the randomized SVD sketch; fixed seeds give
	// reproducible embeddings.
	Seed int64
}

// DefaultConfig returns the paper's default parameter setting (§5.1).
func DefaultConfig() Config {
	return Config{K: 128, Alpha: 0.5, Eps: 0.015, Threads: 10, Seed: 1}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.K < 2 || c.K%2 != 0 {
		return fmt.Errorf("core: K must be an even integer >= 2, got %d", c.K)
	}
	if c.Alpha <= 0 || c.Alpha >= 1 {
		return fmt.Errorf("core: Alpha must lie in (0,1), got %v", c.Alpha)
	}
	if c.Eps <= 0 || c.Eps >= 1 {
		return fmt.Errorf("core: Eps must lie in (0,1), got %v", c.Eps)
	}
	if c.Threads < 0 {
		return fmt.Errorf("core: Threads must be >= 0, got %d", c.Threads)
	}
	if c.CCDIters < 0 || c.PowerIters < 0 {
		return fmt.Errorf("core: iteration overrides must be >= 0")
	}
	return nil
}

// Iterations returns t = ceil(log(ε)/log(1−α) − 1), clamped to at least 1
// (Line 1 of Algorithm 1). With α = 0.5 this maps ε ∈ {0.25, …, 0.001} to
// t ∈ {1, …, 9}, matching §5.6's "varying ε from 0.001 to 0.25 corresponds
// to reducing t from 9 to 1".
func (c Config) Iterations() int {
	t := int(math.Ceil(math.Log(c.Eps)/math.Log(1-c.Alpha) - 1))
	if t < 1 {
		t = 1
	}
	return t
}

func (c Config) ccdIters() int {
	if c.CCDIters > 0 {
		return c.CCDIters
	}
	return c.Iterations()
}

func (c Config) powerIters() int {
	if c.PowerIters > 0 {
		return c.PowerIters
	}
	t := c.Iterations()
	if t > 3 {
		t = 3
	}
	return t
}
