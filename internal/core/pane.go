package core

import (
	"fmt"
	"math/rand"

	"pane/internal/graph"
	"pane/internal/mat"
)

// checkGraph rejects inputs PANE cannot embed: the affinity model needs
// at least one attribute association to seed the walks.
func checkGraph(g *graph.Graph) error {
	if g.D == 0 || g.NNZAttr() == 0 {
		return fmt.Errorf("core: graph has no node-attribute associations; PANE's affinity model is undefined without attributes")
	}
	return nil
}

// PANE (Algorithm 1) computes attributed network embeddings for g with a
// single thread: APMI for the affinity matrices, then SVDCCD (greedy
// initialization + CCD refinement).
func PANE(g *graph.Graph, cfg Config) (*Embedding, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := checkGraph(g); err != nil {
		return nil, err
	}
	t := cfg.Iterations()
	f, b := AffinityFromGraph(g, cfg.Alpha, t, 1)
	return SVDCCD(f, b, cfg, 1), nil
}

// ParallelPANE (Algorithm 5) computes the same embeddings using
// cfg.Threads workers in every phase: PAPMI, SMGreedyInit, and the
// block-parallel CCD sweeps of PSVDCCD.
func ParallelPANE(g *graph.Graph, cfg Config) (*Embedding, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := checkGraph(g); err != nil {
		return nil, err
	}
	nb := cfg.Threads
	if nb < 1 {
		nb = 1
	}
	t := cfg.Iterations()
	f, b := AffinityFromGraph(g, cfg.Alpha, t, nb)
	return PSVDCCD(f, b, cfg, nb), nil
}

// SVDCCD (Algorithm 4) jointly factorizes precomputed affinity matrices:
// GreedyInit seeds the embeddings, then cfg.ccdIters() CCD sweeps refine
// them. nb parallelizes the dense products inside the initializer but the
// algorithm structure is the serial one.
func SVDCCD(f, b *mat.Dense, cfg Config, nb int) *Embedding {
	rng := rand.New(rand.NewSource(cfg.Seed))
	st := GreedyInit(f, b, cfg.K, cfg.powerIters(), rng, nb)
	refine(st, cfg.ccdIters(), nb)
	e := st.Embedding
	return &e
}

// PSVDCCD (Algorithm 8) is the parallel joint factorization: the
// split-merge initializer SMGreedyInit followed by node/attribute
// block-parallel CCD sweeps.
func PSVDCCD(f, b *mat.Dense, cfg Config, nb int) *Embedding {
	rng := rand.New(rand.NewSource(cfg.Seed))
	st := SMGreedyInit(f, b, cfg.K, cfg.powerIters(), rng, nb)
	refine(st, cfg.ccdIters(), nb)
	e := st.Embedding
	return &e
}

// PANERandomInit is the PANE-R ablation of §5.7: identical to PANE except
// that GreedyInit is replaced by random initialization. Used by the
// Figure 7/8 experiments.
func PANERandomInit(g *graph.Graph, cfg Config) (*Embedding, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := checkGraph(g); err != nil {
		return nil, err
	}
	t := cfg.Iterations()
	f, b := AffinityFromGraph(g, cfg.Alpha, t, 1)
	rng := rand.New(rand.NewSource(cfg.Seed))
	st := RandomInit(f, b, cfg.K, rng, 1)
	refine(st, cfg.ccdIters(), 1)
	e := st.Embedding
	return &e, nil
}
