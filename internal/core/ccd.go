package core

import (
	"pane/internal/mat"
)

// ccdNodeSweep performs Lines 3-9 of Algorithm 4 for node rows [lo, hi):
// with Y fixed, each coordinate Xf[v,l] and Xb[v,l] is moved to its
// per-coordinate least-squares optimum using the maintained residuals:
//
//	μ_f(v,l) = Sf[v]·Y[:,l] / (Y[:,l]·Y[:,l])         (Eq. 16)
//	Xf[v,l] −= μ_f(v,l)                               (Eq. 13)
//	Sf[v]   −= μ_f(v,l)·Y[:,l]ᵀ                       (Eq. 18)
//
// and symmetrically for Xb/Sb. yNormInv caches 1/(Y[:,l]·Y[:,l]).
// Different rows touch disjoint state, so the sweep parallelizes over
// rows without any change to the result.
func ccdNodeSweep(st *state, yNormInv []float64, yColT *mat.Dense, lo, hi int) {
	for v := lo; v < hi; v++ {
		ccdNodeRow(st, yNormInv, yColT, v)
	}
}

// ccdNodeSweepRows is ccdNodeSweep over an explicit row list instead of a
// contiguous range — the delta-update path refines only the node rows an
// update actually touched. Per-row arithmetic is identical, so a listed
// row moves exactly as it would in a full sweep from the same state.
func ccdNodeSweepRows(st *state, yNormInv []float64, yColT *mat.Dense, rows []int) {
	for _, v := range rows {
		ccdNodeRow(st, yNormInv, yColT, v)
	}
}

// ccdNodeRow moves one node row's coordinates to their per-coordinate
// optima and patches its residual row (Eqs. 13, 16, 18).
func ccdNodeRow(st *state, yNormInv []float64, yColT *mat.Dense, v int) {
	half := st.Xf.Cols
	d := st.Sf.Cols
	sfRow := st.Sf.Row(v)
	sbRow := st.Sb.Row(v)
	xfRow := st.Xf.Row(v)
	xbRow := st.Xb.Row(v)
	for l := 0; l < half; l++ {
		if yNormInv[l] == 0 {
			continue
		}
		ycol := yColT.Row(l) // Y[:,l] as a contiguous slice
		var dotF, dotB float64
		for j := 0; j < d; j++ {
			dotF += sfRow[j] * ycol[j]
			dotB += sbRow[j] * ycol[j]
		}
		muF := dotF * yNormInv[l]
		muB := dotB * yNormInv[l]
		xfRow[l] -= muF
		xbRow[l] -= muB
		for j := 0; j < d; j++ {
			sfRow[j] -= muF * ycol[j]
			sbRow[j] -= muB * ycol[j]
		}
	}
}

// ccdAttrSweep performs Lines 10-14 of Algorithm 4 for attribute rows
// [lo, hi): with Xf, Xb fixed, each coordinate Y[r,l] moves to the joint
// optimum of the forward and backward losses:
//
//	μ_y(r,l) = (Xf[:,l]·Sf[:,r] + Xb[:,l]·Sb[:,r]) /
//	           (Xf[:,l]·Xf[:,l] + Xb[:,l]·Xb[:,l])   (Eq. 17)
//	Y[r,l]  −= μ_y(r,l)                              (Eq. 15)
//	Sf[:,r] −= μ_y(r,l)·Xf[:,l], Sb[:,r] −= μ_y·Xb[:,l]  (Eq. 20)
//
// xNormInv caches the combined column norms; xfColT/xbColT are the column
// views of Xf/Xb. The residuals arrive TRANSPOSED (sfT, sbT are d x n) so
// that each attribute's residual column is a contiguous row — walking
// Sf[:,r] in row-major n x d layout would stride by d and miss cache on
// every element, which dominates the whole solver on large graphs. Distinct attributes touch disjoint
// rows of the transposed residuals, so the sweep parallelizes without
// changing the result.
func ccdAttrSweep(st *state, xNormInv []float64, xfColT, xbColT, sfT, sbT *mat.Dense, lo, hi int) {
	for r := lo; r < hi; r++ {
		ccdAttrRow(st, xNormInv, xfColT, xbColT, sfT, sbT, r)
	}
}

// ccdAttrSweepRows is ccdAttrSweep over an explicit attribute-row list —
// the delta-update path refines only the attributes an update touched.
func ccdAttrSweepRows(st *state, xNormInv []float64, xfColT, xbColT, sfT, sbT *mat.Dense, rows []int) {
	for _, r := range rows {
		ccdAttrRow(st, xNormInv, xfColT, xbColT, sfT, sbT, r)
	}
}

// ccdAttrRow moves one attribute row's coordinates to their joint optima
// and patches its transposed residual rows (Eqs. 15, 17, 20).
func ccdAttrRow(st *state, xNormInv []float64, xfColT, xbColT, sfT, sbT *mat.Dense, r int) {
	half := st.Y.Cols
	n := sfT.Cols
	yRow := st.Y.Row(r)
	sfRow := sfT.Row(r)
	sbRow := sbT.Row(r)
	for l := 0; l < half; l++ {
		if xNormInv[l] == 0 {
			continue
		}
		xfCol := xfColT.Row(l)
		xbCol := xbColT.Row(l)
		var num float64
		for i := 0; i < n; i++ {
			num += xfCol[i]*sfRow[i] + xbCol[i]*sbRow[i]
		}
		mu := num * xNormInv[l]
		yRow[l] -= mu
		for i := 0; i < n; i++ {
			sfRow[i] -= mu * xfCol[i]
			sbRow[i] -= mu * xbCol[i]
		}
	}
}

// refine runs iters full CCD sweeps (Algorithm 4 Lines 2-14 serially,
// Algorithm 8 when nb > 1). The two half-sweeps synchronize between each
// other, exactly as PSVDCCD requires; within a half-sweep the row blocks
// are independent, so the parallel result is identical to the serial one
// for the same starting state.
func refine(st *state, iters, nb int) {
	n := st.Xf.Rows
	d := st.Y.Rows
	half := st.Xf.Cols
	for it := 0; it < iters; it++ {
		// Node phase: Y fixed. Cache Y's columns contiguously and their
		// inverse squared norms.
		yColT := st.Y.T()
		yNormInv := make([]float64, half)
		for l := 0; l < half; l++ {
			s := mat.Dot(yColT.Row(l), yColT.Row(l))
			if s > 0 {
				yNormInv[l] = 1 / s
			}
		}
		if nb <= 1 {
			ccdNodeSweep(st, yNormInv, yColT, 0, n)
		} else {
			mat.ParallelRanges(n, nb, func(lo, hi int) {
				ccdNodeSweep(st, yNormInv, yColT, lo, hi)
			})
		}
		// Attribute phase: Xf, Xb fixed. The residuals are transposed so
		// each attribute's column is contiguous (see ccdAttrSweep), then
		// transposed back for the next node phase. Two cache-blocked
		// transposes per sweep are O(n·d) streamed memory — negligible
		// next to the O(n·d·k) updates they make cache-friendly.
		xfColT := st.Xf.T()
		xbColT := st.Xb.T()
		xNormInv := make([]float64, half)
		for l := 0; l < half; l++ {
			s := mat.Dot(xfColT.Row(l), xfColT.Row(l)) + mat.Dot(xbColT.Row(l), xbColT.Row(l))
			if s > 0 {
				xNormInv[l] = 1 / s
			}
		}
		sfT := st.Sf.T()
		sbT := st.Sb.T()
		if nb <= 1 {
			ccdAttrSweep(st, xNormInv, xfColT, xbColT, sfT, sbT, 0, d)
		} else {
			mat.ParallelRanges(d, nb, func(lo, hi int) {
				ccdAttrSweep(st, xNormInv, xfColT, xbColT, sfT, sbT, lo, hi)
			})
		}
		st.Sf = sfT.T()
		st.Sb = sbT.T()
	}
}

// Objective evaluates Equation (4), the total squared error
// ‖Xf·Yᵀ − F'‖² + ‖Xb·Yᵀ − B'‖², recomputed from scratch (not from the
// maintained residuals) so tests can cross-check residual maintenance.
func Objective(e *Embedding, f, b *mat.Dense) float64 {
	rf := mat.MulBT(e.Xf, e.Y)
	rf.Sub(f)
	rb := mat.MulBT(e.Xb, e.Y)
	rb.Sub(b)
	nf := rf.FrobeniusNorm()
	nbn := rb.FrobeniusNorm()
	return nf*nf + nbn*nbn
}
