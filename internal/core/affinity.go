package core

import (
	"fmt"
	"math"
	"sort"

	"pane/internal/graph"
	"pane/internal/mat"
	"pane/internal/sparse"
)

// This file makes the model side of dynamic updates O(Δ): instead of
// re-running the full APMI recurrence on every graph delta, the engine
// retains the pre-normalization recurrence levels in an AffinityState and
// UpdateAffinity re-runs the recurrence only over the rows a delta can
// actually influence — the t-hop dependency frontier of the changed CSR
// rows — patching the cached levels in place.
//
// Exactness argument: iteration ℓ of the recurrence computes row i from
// row i of the seed and the level-(ℓ−1) rows of i's out-neighbors (P for
// the forward direction, Pᵀ for the backward one). A delta changes level-1
// rows only where a P/Pᵀ row or a seed row changed; each further iteration
// propagates changes one hop along the dependency direction (in-edges for
// the forward recurrence, out-edges for the backward). Re-running all t
// iterations restricted to a superset of that frontier — reading
// out-of-frontier neighbor rows from the cached previous levels — therefore
// reproduces every frontier row bit-for-bit, and rows outside the frontier
// are untouched by construction. The only approximation in the whole
// scheme is the forward column sums, which are adjusted incrementally
// (old sum + the patched rows' deltas) rather than re-accumulated over all
// n rows; the resulting float rounding drift is tracked in Drift and
// bounded empirically by TestAffinityStateDriftBounded.

// machEps is the double-precision unit roundoff used by the drift
// estimate.
const machEps = 2.220446049250313e-16

// AffinityState caches the pre-normalization APMI recurrence:
// P(1..t)_f and P(1..t)_b, plus the column sums of P(t)_f and the row sums
// of P(t)_b that the final normalization needs. Memory is 2·t·n·d float64s
// — for the default server configuration (eps 0.015 → t = 6) that is
// ~100 MB per million node-attribute cells, which is the price of O(Δ)
// model updates; engines that cannot afford it run with full affinity
// recomputation instead (WithAffinityThreshold(0) / -full-affinity).
type AffinityState struct {
	n, d  int
	alpha float64
	t     int

	lf, lb []*mat.Dense // pre-normalization levels 1..t, both directions

	colSums []float64 // column sums of lf[t-1], adjusted incrementally
	rowSums []float64 // row sums of lb[t-1], always exact

	drift float64 // accumulated relative rounding-noise estimate on colSums
}

// NewAffinityState runs the full APMI recurrence on g, retaining every
// pre-normalization level. The levels (and the sums) are bit-identical to
// the internal state of APMI/PAPMI for any nb, so Affinity() reproduces
// APMI's output exactly.
func NewAffinityState(g *graph.Graph, alpha float64, t, nb int) *AffinityState {
	p, pt := g.Walk()
	rr, rc := g.NormalizedAttrs()
	if t < 1 {
		t = 1
	}
	if nb < 1 {
		nb = 1
	}
	n, d := rr.Rows, rr.Cols
	s := &AffinityState{n: n, d: d, alpha: alpha, t: t}
	prevF, prevB := rr, rc
	for l := 0; l < t; l++ {
		nf := mat.New(n, d)
		nbm := mat.New(n, d)
		p.AxpyInto(nf, 1-alpha, prevF, alpha, rr, nb)
		pt.AxpyInto(nbm, 1-alpha, prevB, alpha, rc, nb)
		s.lf = append(s.lf, nf)
		s.lb = append(s.lb, nbm)
		prevF, prevB = nf, nbm
	}
	s.colSums = prevF.ColSums()
	s.rowSums = prevB.RowSums()
	return s
}

// Iterations returns the retained recurrence depth t.
func (s *AffinityState) Iterations() int { return s.t }

// Drift returns the accumulated relative rounding-noise estimate on the
// incrementally-maintained forward column sums. It grows by roughly one
// machine epsilon per unit of relative mass an update moves; a full
// rebuild (NewAffinityState) resets it to zero.
func (s *AffinityState) Drift() float64 { return s.drift }

// finalF and finalB are the level-t pre-normalization matrices.
func (s *AffinityState) finalF() *mat.Dense { return s.lf[s.t-1] }
func (s *AffinityState) finalB() *mat.Dense { return s.lb[s.t-1] }

// FinalRowsEqual reports whether row i of the pre-normalization state
// matches other's bit-for-bit — the frontier property tests use it to
// verify rows outside the frontier are untouched.
func (s *AffinityState) FinalRowsEqual(other *AffinityState, i int) bool {
	a, b := s.finalF().Row(i), other.finalF().Row(i)
	for j := range a {
		if a[j] != b[j] {
			return false
		}
	}
	a, b = s.finalB().Row(i), other.finalB().Row(i)
	for j := range a {
		if a[j] != b[j] {
			return false
		}
	}
	return true
}

// invColSums replicates NormalizeColumns' convention: zero-sum columns
// scale by 1 (stay zero).
func (s *AffinityState) invColSums() []float64 {
	inv := make([]float64, s.d)
	for j, v := range s.colSums {
		if v != 0 {
			inv[j] = 1 / v
		} else {
			inv[j] = 1
		}
	}
	return inv
}

// affinityRowInto materializes the normalized + SPMI-transformed affinity
// rows of node v into frow/brow. The arithmetic matches APMI's
// NormalizeColumns/NormalizeRows + Log1pScaled element-for-element, so a
// materialized row is bit-identical to the same row of a full APMI run
// sharing the same sums.
func (s *AffinityState) affinityRowInto(frow, brow []float64, v int, invCol []float64, nf, df float64) {
	src := s.finalF().Row(v)
	for j := range frow {
		x := src[j] * invCol[j]
		frow[j] = math.Log1p(nf * x)
	}
	src = s.finalB().Row(v)
	rs := s.rowSums[v]
	if rs == 0 {
		for j := range brow {
			brow[j] = math.Log1p(df * src[j])
		}
		return
	}
	rinv := 1 / rs
	for j := range brow {
		x := src[j] * rinv
		brow[j] = math.Log1p(df * x)
	}
}

// Affinity materializes the full F', B' affinity matrices from the cached
// state — O(n·d), used when a delta touches attribute rows (the attribute
// CCD sweeps walk residual columns over all n nodes).
func (s *AffinityState) Affinity(nb int) (f, b *mat.Dense) {
	if nb < 1 {
		nb = 1
	}
	f = mat.New(s.n, s.d)
	b = mat.New(s.n, s.d)
	invCol := s.invColSums()
	nf, df := float64(s.n), float64(s.d)
	mat.ParallelRanges(s.n, nb, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			s.affinityRowInto(f.Row(v), b.Row(v), v, invCol, nf, df)
		}
	})
	return f, b
}

// AffinityRows materializes only the listed nodes' affinity rows —
// O(|rows|·d), the node-only delta path that avoids touching all n rows.
func (s *AffinityState) AffinityRows(rows []int, nb int) (fRows, bRows *mat.Dense) {
	if nb < 1 {
		nb = 1
	}
	fRows = mat.New(len(rows), s.d)
	bRows = mat.New(len(rows), s.d)
	invCol := s.invColSums()
	nf, df := float64(s.n), float64(s.d)
	mat.ParallelRanges(len(rows), nb, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			s.affinityRowInto(fRows.Row(j), bRows.Row(j), rows[j], invCol, nf, df)
		}
	})
	return fRows, bRows
}

// AffinityUpdate reports what UpdateAffinity did.
type AffinityUpdate struct {
	// FrontierF / FrontierB are the forward and backward frontier sizes
	// (rows whose recurrence was re-run).
	FrontierF, FrontierB int
	// Incremental is false when the frontier exceeded the caller's
	// fraction budget and nothing was patched — the caller should fall
	// back to a full NewAffinityState rebuild.
	Incremental bool
	// MassShift is the L1 mass the update moved in the final forward
	// level, relative to the total column mass — a measure of how much
	// the normalization denominators moved.
	MassShift float64
}

// UpdateAffinity folds a graph delta into the cached state: it computes
// the t-hop dependency frontier of the delta, re-runs the recurrence over
// frontier rows only (against the cached levels), and adjusts the global
// column sums incrementally. g must be the post-delta graph whose edge and
// attribute deltas are given. When either frontier exceeds maxFrac·n the
// state is left untouched and Incremental=false is returned; maxFrac <= 0
// means no limit.
//
// Frontier construction: an added edge (u,v) rescales row u of P — and
// thereby column u of Pᵀ, i.e. every Pᵀ row of u's out-neighbors. An
// attribute entry (w,r) re-normalizes row w of Rr and column r of Rc,
// i.e. the Rc rows of r's supporting nodes. Seed rows whose P/Pᵀ row
// changed propagate for the remaining t−1 iterations; seed rows whose
// Rr/Rc row changed enter at iteration 0 and propagate t hops. Updates
// only ever add edges, so expanding along the new graph's adjacency is a
// superset of every propagation path in both the old and new graphs.
func UpdateAffinity(s *AffinityState, g *graph.Graph, edges []graph.Edge, attrs []graph.AttrEntry, maxFrac float64, nb int) (AffinityUpdate, error) {
	if g.N != s.n || g.D != s.d {
		return AffinityUpdate{}, fmt.Errorf("core: UpdateAffinity graph %dx%d does not match state %dx%d", g.N, g.D, s.n, s.d)
	}
	if nb < 1 {
		nb = 1
	}
	srcSet := map[int]bool{}
	for _, e := range edges {
		if e.Src < 0 || e.Src >= s.n || e.Dst < 0 || e.Dst >= s.n {
			return AffinityUpdate{}, fmt.Errorf("core: UpdateAffinity edge (%d,%d) out of range", e.Src, e.Dst)
		}
		srcSet[e.Src] = true
	}
	nodeSet := map[int]bool{}
	attrSet := map[int]bool{}
	for _, a := range attrs {
		if a.Node < 0 || a.Node >= s.n || a.Attr < 0 || a.Attr >= s.d {
			return AffinityUpdate{}, fmt.Errorf("core: UpdateAffinity attr entry (%d,%d) out of range", a.Node, a.Attr)
		}
		if a.Weight == 0 {
			continue
		}
		nodeSet[a.Node] = true
		attrSet[a.Attr] = true
	}
	if len(srcSet) == 0 && len(nodeSet) == 0 {
		return AffinityUpdate{Incremental: true}, nil
	}
	pSeeds := sortedSet(srcSet)
	rrSeeds := sortedSet(nodeSet)
	// Pᵀ rows that changed: the out-neighbors (old and new — P row u
	// rescaled entirely) of every edge source, read off the new adjacency.
	ptSet := map[int]bool{}
	for _, u := range pSeeds {
		cols, _ := g.Adj.Row(u)
		for _, c := range cols {
			ptSet[int(c)] = true
		}
	}
	// Rc rows that changed: the supporters of every touched attribute.
	rcSet := map[int]bool{}
	if len(attrSet) > 0 {
		at := g.AttrT()
		for r := range attrSet {
			nodes, _ := at.Row(r)
			for _, v := range nodes {
				rcSet[int(v)] = true
			}
		}
	}
	frontierF := mergeSortedUnique(
		sparse.Reach(g.AdjT, rrSeeds, s.t),
		sparse.Reach(g.AdjT, pSeeds, s.t-1),
	)
	frontierB := mergeSortedUnique(
		sparse.Reach(g.Adj, sortedSet(rcSet), s.t),
		sparse.Reach(g.Adj, sortedSet(ptSet), s.t-1),
	)
	up := AffinityUpdate{FrontierF: len(frontierF), FrontierB: len(frontierB)}
	if maxFrac > 0 {
		budget := maxFrac * float64(s.n)
		if float64(len(frontierF)) > budget || float64(len(frontierB)) > budget {
			return up, nil
		}
	}
	up.Incremental = true
	p, pt := g.Walk()
	rr, rc := g.NormalizedAttrs()
	for l := 0; l < s.t; l++ {
		srcF, srcB := rr, rc
		if l > 0 {
			srcF, srcB = s.lf[l-1], s.lb[l-1]
		}
		last := l == s.t-1
		if !last {
			s.patchLevel(s.lf[l], p, srcF, rr, frontierF, nb)
			s.patchLevel(s.lb[l], pt, srcB, rc, frontierB, nb)
			continue
		}
		up.MassShift = s.patchFinalF(p, srcF, rr, frontierF, nb)
		s.patchFinalB(pt, srcB, rc, frontierB, nb)
	}
	return up, nil
}

// patchLevel re-runs one recurrence iteration for the frontier rows of
// dst, reading the previous level from src (out-of-frontier rows keep
// their cached values, which is exactly what iteration l needs). The
// per-row kernel is AxpyRowInto — the same kernel AxpyInto runs — so a
// patched row is bit-identical to a full pass over the same inputs.
func (s *AffinityState) patchLevel(dst *mat.Dense, m *sparse.CSR, src, seed *mat.Dense, frontier []int, nb int) {
	a := 1 - s.alpha
	mat.ParallelRanges(len(frontier), nb, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			i := frontier[k]
			m.AxpyRowInto(dst.Row(i), i, a, src, s.alpha, seed.Row(i))
		}
	})
}

// patchFinalF patches the last forward level while folding each row's
// change into the maintained column sums. Per-worker partial deltas are
// reduced in block order, so results are deterministic for a given nb.
// Returns the relative L1 mass the frontier moved.
func (s *AffinityState) patchFinalF(m *sparse.CSR, src, seed *mat.Dense, frontier []int, nb int) float64 {
	a := 1 - s.alpha
	blocks := mat.SplitRanges(len(frontier), nb)
	deltas := make([][]float64, len(blocks))
	moved := make([]float64, len(blocks))
	noise := make([]float64, len(blocks))
	dst := s.finalF()
	mat.ParallelRanges(len(blocks), len(blocks), func(blo, bhi int) {
		for w := blo; w < bhi; w++ {
			part := make([]float64, s.d)
			buf := make([]float64, s.d)
			var mv, nz float64
			for k := blocks[w][0]; k < blocks[w][1]; k++ {
				i := frontier[k]
				m.AxpyRowInto(buf, i, a, src, s.alpha, seed.Row(i))
				old := dst.Row(i)
				for j, v := range buf {
					diff := v - old[j]
					part[j] += diff
					mv += math.Abs(diff)
					nz += math.Abs(v) + math.Abs(old[j])
				}
				copy(old, buf)
			}
			deltas[w], moved[w], noise[w] = part, mv, nz
		}
	})
	var totalMoved, totalNoise float64
	for w := range deltas {
		for j, v := range deltas[w] {
			s.colSums[j] += v
		}
		totalMoved += moved[w]
		totalNoise += noise[w]
	}
	var totalSum float64
	for _, v := range s.colSums {
		totalSum += v
	}
	if totalSum <= 0 {
		return 0
	}
	// Each patched row adds one round-off-prone +=delta per column; the
	// noise estimate charges one epsilon per unit of magnitude that flowed
	// through the sums. Advisory only — the drift test measures the real
	// deviation against freshly-accumulated sums.
	s.drift += machEps * (totalNoise + totalMoved) / totalSum
	return totalMoved / totalSum
}

// patchFinalB patches the last backward level; row sums are row-local, so
// they are recomputed exactly (left-to-right, matching RowSums) and the
// backward direction carries no drift at all.
func (s *AffinityState) patchFinalB(m *sparse.CSR, src, seed *mat.Dense, frontier []int, nb int) {
	a := 1 - s.alpha
	dst := s.finalB()
	mat.ParallelRanges(len(frontier), nb, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			i := frontier[k]
			row := dst.Row(i)
			m.AxpyRowInto(row, i, a, src, s.alpha, seed.Row(i))
			var sum float64
			for _, v := range row {
				sum += v
			}
			s.rowSums[i] = sum
		}
	})
}

func sortedSet(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// mergeSortedUnique merges two ascending unique int slices into one.
func mergeSortedUnique(a, b []int) []int {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
