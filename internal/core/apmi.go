package core

import (
	"pane/internal/graph"
	"pane/internal/mat"
	"pane/internal/sparse"
)

// APMI (Algorithm 2) approximates the forward and backward affinity
// matrices F' and B' of Equation (7) in O(m·d·t) time without sampling a
// single random walk. It returns dense n x d matrices.
//
// The recurrence (Lines 3-5) is
//
//	P(ℓ)_f = (1−α)·P·P(ℓ−1)_f + α·P(0)_f,   P(0)_f = Rr
//	P(ℓ)_b = (1−α)·Pᵀ·P(ℓ−1)_b + α·P(0)_b,  P(0)_b = Rc
//
// followed by column-normalizing P(t)_f, row-normalizing P(t)_b, and the
// SPMI transform F' = log(n·P̂_f + 1), B' = log(d·P̂_b + 1).
func APMI(p, pt *sparse.CSR, rr, rc *mat.Dense, alpha float64, t int) (f, b *mat.Dense) {
	return apmi(p, pt, rr, rc, alpha, t, 1)
}

// apmi is the shared implementation; nb > 1 parallelizes the SpMM row
// loops (used by the drivers when structural column partitioning is not
// required — results are identical either way).
func apmi(p, pt *sparse.CSR, rr, rc *mat.Dense, alpha float64, t, nb int) (f, b *mat.Dense) {
	n, d := rr.Rows, rr.Cols
	pf := rr.Clone()
	pb := rc.Clone()
	nextF := mat.New(n, d)
	nextB := mat.New(n, d)
	for l := 0; l < t; l++ {
		p.AxpyInto(nextF, 1-alpha, pf, alpha, rr, nb)
		pt.AxpyInto(nextB, 1-alpha, pb, alpha, rc, nb)
		pf, nextF = nextF, pf
		pb, nextB = nextB, pb
	}
	pf.NormalizeColumns()
	pb.NormalizeRows()
	pf.Log1pScaled(float64(n))
	pb.Log1pScaled(float64(d))
	return pf, pb
}

// PAPMI (Algorithm 6) computes the same F', B' as APMI using nb threads.
// Following the paper, the attribute set R is partitioned into nb column
// blocks; thread i owns block i and runs the full t-iteration recurrence
// on it independently, after which the blocks are concatenated and the
// final normalization is applied. Lemma 4.1 guarantees — and
// TestPAPMIMatchesAPMI verifies — that the result equals APMI's exactly.
func PAPMI(p, pt *sparse.CSR, rr, rc *mat.Dense, alpha float64, t, nb int) (f, b *mat.Dense) {
	n, d := rr.Rows, rr.Cols
	if nb <= 1 || d == 0 {
		return APMI(p, pt, rr, rc, alpha, t)
	}
	pf := mat.New(n, d)
	pb := mat.New(n, d)
	blocks := mat.SplitRanges(d, nb)
	mat.ParallelRanges(len(blocks), len(blocks), func(blo, bhi int) {
		for w := blo; w < bhi; w++ {
			lo, hi := blocks[w][0], blocks[w][1]
			// Thread-local seeds: the column slices of Rr and Rc.
			seedF := rr.ColSlice(lo, hi)
			seedB := rc.ColSlice(lo, hi)
			bf := seedF.Clone()
			bb := seedB.Clone()
			nxtF := mat.New(n, hi-lo)
			nxtB := mat.New(n, hi-lo)
			for l := 0; l < t; l++ {
				p.AxpyInto(nxtF, 1-alpha, bf, alpha, seedF, 1)
				pt.AxpyInto(nxtB, 1-alpha, bb, alpha, seedB, 1)
				bf, nxtF = nxtF, bf
				bb, nxtB = nxtB, bb
			}
			pf.SetColSlice(lo, bf)
			pb.SetColSlice(lo, bb)
		}
	})
	// Lines 9-13: final normalization and SPMI transform, node-partitioned.
	normalizeColumnsPar(pf, nb)
	mat.ParallelRanges(n, nb, func(lo, hi int) {
		v := pb.RowView(lo, hi)
		v.NormalizeRows()
	})
	nf, df := float64(n), float64(d)
	mat.ParallelRanges(n, nb, func(lo, hi int) {
		pf.RowView(lo, hi).Log1pScaled(nf)
		pb.RowView(lo, hi).Log1pScaled(df)
	})
	return pf, pb
}

// normalizeColumnsPar column-normalizes m using nb workers: per-block
// partial column sums are reduced serially, then the scaling pass is
// row-parallel. Bit-identical to Dense.NormalizeColumns up to float
// addition order of the partial sums; we keep the serial reduction in
// block order so results are deterministic for a given nb.
func normalizeColumnsPar(m *mat.Dense, nb int) {
	blocks := mat.SplitRanges(m.Rows, nb)
	partials := make([][]float64, len(blocks))
	mat.ParallelRanges(len(blocks), len(blocks), func(blo, bhi int) {
		for w := blo; w < bhi; w++ {
			partials[w] = m.RowView(blocks[w][0], blocks[w][1]).ColSums()
		}
	})
	sums := make([]float64, m.Cols)
	for _, p := range partials {
		for j, v := range p {
			sums[j] += v
		}
	}
	inv := make([]float64, m.Cols)
	for j, s := range sums {
		if s != 0 {
			inv[j] = 1 / s
		} else {
			inv[j] = 1
		}
	}
	mat.ParallelRanges(m.Rows, nb, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := m.Row(i)
			for j := range row {
				row[j] *= inv[j]
			}
		}
	})
}

// AffinityFromGraph is a convenience wrapper deriving P, Pᵀ, Rr, Rc from
// g and running APMI (nb <= 1) or PAPMI (nb > 1).
func AffinityFromGraph(g *graph.Graph, alpha float64, t, nb int) (f, b *mat.Dense) {
	p, pt := g.Walk()
	rr, rc := g.NormalizedAttrs()
	if nb > 1 {
		return PAPMI(p, pt, rr, rc, alpha, t, nb)
	}
	return APMI(p, pt, rr, rc, alpha, t)
}
