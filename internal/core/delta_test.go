package core

import (
	"math/rand"
	"testing"

	"pane/internal/graph"
	"pane/internal/mat"
)

// deltaFixture trains a model, perturbs the graph, and returns the pieces
// a delta-refinement test needs.
func deltaFixture(t *testing.T, seed int64) (prev *Embedding, f2, b2 *mat.Dense, cfg Config, g2 *graph.Graph) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := testGraph(rng, 40, 9)
	cfg = smallConfig()
	prev, err := PANE(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2 = perturb(g, 12, 8, seed+1)
	f2, b2 = AffinityFromGraph(g2, cfg.Alpha, cfg.Iterations(), 1)
	return prev, f2, b2, cfg, g2
}

// TestRefineRowsFromTouchesExactlyDelta is the delta-report contract:
// every row outside the delta is bit-identical to the previous embedding,
// and (on this fixture) every listed row actually moved.
func TestRefineRowsFromTouchesExactlyDelta(t *testing.T) {
	prev, f2, b2, cfg, _ := deltaFixture(t, 20)
	delta := UpdateDelta{Nodes: []int{1, 5, 17, 33}, Attrs: []int{2, 6}}
	next := RefineRowsFrom(prev, f2, b2, cfg, 2, 1, delta)

	inNodes := map[int]bool{}
	for _, v := range delta.Nodes {
		inNodes[v] = true
	}
	for v := 0; v < prev.Xf.Rows; v++ {
		same := rowsEqual(prev.Xf.Row(v), next.Xf.Row(v)) && rowsEqual(prev.Xb.Row(v), next.Xb.Row(v))
		if inNodes[v] && same {
			t.Fatalf("listed node row %d did not move", v)
		}
		if !inNodes[v] && !same {
			t.Fatalf("unlisted node row %d changed", v)
		}
	}
	inAttrs := map[int]bool{}
	for _, r := range delta.Attrs {
		inAttrs[r] = true
	}
	for r := 0; r < prev.Y.Rows; r++ {
		same := rowsEqual(prev.Y.Row(r), next.Y.Row(r))
		if inAttrs[r] && same {
			t.Fatalf("listed attribute row %d did not move", r)
		}
		if !inAttrs[r] && !same {
			t.Fatalf("unlisted attribute row %d changed", r)
		}
	}
}

// TestRefineRowsFromNodeOnlySharesY: a node-only delta must leave Y not
// just equal but the SAME matrix, and untouched Z rows of the link
// candidate transform bit-identical — the property the incremental index
// refresh is built on.
func TestRefineRowsFromNodeOnlySharesY(t *testing.T) {
	prev, f2, b2, cfg, _ := deltaFixture(t, 30)
	delta := UpdateDelta{Nodes: []int{0, 7, 21}}
	next := RefineRowsFrom(prev, f2, b2, cfg, 2, 1, delta)
	if next.Y != prev.Y {
		t.Fatal("node-only delta did not share Y")
	}
	zPrev := NewLinkScorer(prev).TransformedCandidates(1)
	zNext := NewLinkScorer(next).TransformedCandidates(1)
	in := map[int]bool{0: true, 7: true, 21: true}
	for v := 0; v < zPrev.Rows; v++ {
		if !in[v] && !rowsEqual(zPrev.Row(v), zNext.Row(v)) {
			t.Fatalf("Z row %d changed without its Xb row changing", v)
		}
	}
}

// TestRefineRowsFromGatheredMatchesGeneral: the node-only gathered fast
// path must produce bit-for-bit the rows the general (full-state) path
// produces for the same node delta — the two are one algorithm with two
// residual layouts.
func TestRefineRowsFromGatheredMatchesGeneral(t *testing.T) {
	prev, f2, b2, cfg, _ := deltaFixture(t, 40)
	nodes := []int{2, 3, 11, 29, 38}
	fast := RefineRowsFrom(prev, f2, b2, cfg, 2, 1, UpdateDelta{Nodes: nodes})

	// Drive the general path by hand: full residual state, node rows only.
	st := &state{Embedding: Embedding{Xf: prev.Xf.Clone(), Xb: prev.Xb.Clone(), Y: prev.Y.Clone()}}
	st.Sf = mat.ParMulBT(st.Xf, st.Y, 1)
	st.Sf.Sub(f2)
	st.Sb = mat.ParMulBT(st.Xb, st.Y, 1)
	st.Sb.Sub(b2)
	refineRows(st, 2, 1, nodes, nil)

	if fast.Xf.MaxAbsDiff(st.Xf) != 0 || fast.Xb.MaxAbsDiff(st.Xb) != 0 {
		t.Fatal("gathered node-only path diverges from the full-state restricted sweep")
	}
}

// TestRefineRowsFromFullDeltaMatchesRefineFrom: listing every row must
// reproduce RefineFrom exactly — restricted sweeps are a strict
// generalization, not a different solver.
func TestRefineRowsFromFullDeltaMatchesRefineFrom(t *testing.T) {
	prev, f2, b2, cfg, _ := deltaFixture(t, 50)
	all := UpdateDelta{Nodes: seq(prev.Xf.Rows), Attrs: seq(prev.Y.Rows)}
	want := RefineFrom(prev, f2, b2, cfg, 2, 1)
	got := RefineRowsFrom(prev, f2, b2, cfg, 2, 1, all)
	if want.Xf.MaxAbsDiff(got.Xf) != 0 || want.Xb.MaxAbsDiff(got.Xb) != 0 || want.Y.MaxAbsDiff(got.Y) != 0 {
		t.Fatal("full-delta restricted refinement diverges from RefineFrom")
	}
}

// TestRefineRowsFromParallelMatchesSerial: restricted sweeps touch
// disjoint rows, so the worker count must not change the result.
func TestRefineRowsFromParallelMatchesSerial(t *testing.T) {
	prev, f2, b2, cfg, _ := deltaFixture(t, 60)
	delta := UpdateDelta{Nodes: []int{1, 4, 9, 16, 25, 36}, Attrs: []int{0, 3, 8}}
	serial := RefineRowsFrom(prev, f2, b2, cfg, 2, 1, delta)
	par := RefineRowsFrom(prev, f2, b2, cfg, 2, 4, delta)
	if serial.Xf.MaxAbsDiff(par.Xf) != 0 || serial.Xb.MaxAbsDiff(par.Xb) != 0 || serial.Y.MaxAbsDiff(par.Y) != 0 {
		t.Fatal("parallel restricted refinement deviates from serial")
	}
}

// TestRefineRowsFromLowersObjective: refining only the touched rows must
// still improve the fit to the new targets.
func TestRefineRowsFromLowersObjective(t *testing.T) {
	prev, f2, b2, cfg, g2 := deltaFixture(t, 70)
	delta := UpdateDelta{Nodes: seq(g2.N)[:10], Attrs: []int{1, 2}}
	before := Objective(prev, f2, b2)
	next := RefineRowsFrom(prev, f2, b2, cfg, 2, 1, delta)
	if after := Objective(next, f2, b2); after >= before {
		t.Fatalf("restricted refinement did not lower the objective: %v -> %v", before, after)
	}
}

func TestUpdateEmbeddingRowsValidates(t *testing.T) {
	prev, _, _, cfg, g2 := deltaFixture(t, 80)
	if _, err := UpdateEmbeddingRows(g2, prev, cfg, 1, UpdateDelta{Nodes: []int{g2.N}}); err == nil {
		t.Fatal("out-of-range node row accepted")
	}
	if _, err := UpdateEmbeddingRows(g2, prev, cfg, 1, UpdateDelta{Nodes: []int{3, 3}}); err == nil {
		t.Fatal("duplicate node row accepted")
	}
	if _, err := UpdateEmbeddingRows(g2, prev, cfg, 1, UpdateDelta{Attrs: []int{5, 1}}); err == nil {
		t.Fatal("descending attribute rows accepted")
	}
	if _, err := UpdateEmbeddingRows(g2, prev, cfg, 1, UpdateDelta{Nodes: []int{0, 1}}); err != nil {
		t.Fatalf("valid delta rejected: %v", err)
	}
}

// TestTransformedCandidatesRowsMatchesFull: the row-restricted transform
// must be bit-identical to the corresponding rows of the full product at
// any worker count.
func TestTransformedCandidatesRowsMatchesFull(t *testing.T) {
	prev, _, _, _, _ := deltaFixture(t, 90)
	s := NewLinkScorer(prev)
	full := s.TransformedCandidates(1)
	rows := []int{0, 5, 13, 39}
	for _, nb := range []int{1, 3} {
		part := s.TransformedCandidatesRows(rows, nb)
		for j, v := range rows {
			if !rowsEqual(part.Row(j), full.Row(v)) {
				t.Fatalf("nb=%d: recomputed Z row %d differs from full product", nb, v)
			}
		}
	}
}

func rowsEqual(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// TestRefineRowsFromRejectsMalformedDelta: the exported low-level entry
// point must fail loudly on duplicate or out-of-range delta rows rather
// than race two goroutines over one row.
func TestRefineRowsFromRejectsMalformedDelta(t *testing.T) {
	prev, f2, b2, cfg, _ := deltaFixture(t, 100)
	for name, delta := range map[string]UpdateDelta{
		"duplicate nodes":   {Nodes: []int{5, 5}},
		"out-of-range node": {Nodes: []int{prev.Xf.Rows}},
		"descending attrs":  {Attrs: []int{4, 1}},
		"out-of-range attr": {Attrs: []int{prev.Y.Rows}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: accepted", name)
				}
			}()
			RefineRowsFrom(prev, f2, b2, cfg, 1, 2, delta)
		}()
	}
}
