package core

import (
	"fmt"

	"pane/internal/mat"
)

// GramDelta is the low-rank correction an attribute delta induces on the
// link-candidate matrix Z = Xb·G. When an update moves only the Y rows of
// the touched attributes (the node-only CCD sweeps leave Y untouched, and
// the attribute sweeps move exactly the delta's rows), the Gram matrix
// changes by
//
//	ΔG = Σ_{r ∈ Δattrs} (yNew_r ⊗ yNew_r − yOld_r ⊗ yOld_r),
//
// a rank ≤ 2·|Δattrs| update. For any node i whose Xb row did not change,
// the new candidate row is Z_new[i] = Z_old[i] + Xb[i]·ΔG, which Apply
// evaluates as Σ_r (Xb[i]·yNew_r)·yNew_r − (Xb[i]·yOld_r)·yOld_r in
// O(|Δattrs|·k) per row — instead of the O(k²) full transform per row that
// previously forced attribute deltas onto the full-rebuild path.
//
// The correction is float-exact up to round-off (~1e-15 relative per
// application); the serving layer counts applications and the bench
// verifies recall against a freshly-built index stays ≥ 0.999.
type GramDelta struct {
	yOld, yNew *mat.Dense // gathered touched rows: |Δattrs| x k/2
}

// NewGramDelta gathers the touched attribute rows from the previous and
// updated Y factors. The two factors must share shape, and attrs must be
// in range (the caller's UpdateDelta contract).
func NewGramDelta(yOld, yNew *mat.Dense, attrs []int) (*GramDelta, error) {
	if yOld.Rows != yNew.Rows || yOld.Cols != yNew.Cols {
		return nil, fmt.Errorf("core: GramDelta factor shapes differ: %dx%d vs %dx%d",
			yOld.Rows, yOld.Cols, yNew.Rows, yNew.Cols)
	}
	d := &GramDelta{
		yOld: mat.New(len(attrs), yOld.Cols),
		yNew: mat.New(len(attrs), yOld.Cols),
	}
	for j, r := range attrs {
		if r < 0 || r >= yOld.Rows {
			return nil, fmt.Errorf("core: GramDelta attr row %d out of range [0,%d)", r, yOld.Rows)
		}
		copy(d.yOld.Row(j), yOld.Row(r))
		copy(d.yNew.Row(j), yNew.Row(r))
	}
	return d, nil
}

// Rank returns the rank bound of the correction, 2·|Δattrs|.
func (d *GramDelta) Rank() int { return 2 * d.yOld.Rows }

// Apply adds the correction to z, a block of candidate rows whose global
// node ids are [lo, lo+z.Rows): row j of z is corrected using Xb row
// lo+j. nb parallelizes over the block's rows; each row is owned by one
// worker, so results are deterministic.
func (d *GramDelta) Apply(z, xb *mat.Dense, lo, nb int) {
	if z.Cols != xb.Cols || z.Cols != d.yOld.Cols {
		panic(fmt.Sprintf("core: GramDelta Apply width mismatch: z %d, xb %d, delta %d",
			z.Cols, xb.Cols, d.yOld.Cols))
	}
	if lo < 0 || lo+z.Rows > xb.Rows {
		panic(fmt.Sprintf("core: GramDelta Apply rows [%d,%d) out of range for %d nodes",
			lo, lo+z.Rows, xb.Rows))
	}
	if nb < 1 {
		nb = 1
	}
	nr := d.yOld.Rows
	mat.ParallelRanges(z.Rows, nb, func(blo, bhi int) {
		for j := blo; j < bhi; j++ {
			xrow := xb.Row(lo + j)
			zrow := z.Row(j)
			for r := 0; r < nr; r++ {
				yn := d.yNew.Row(r)
				yo := d.yOld.Row(r)
				mat.AxpyVec(mat.Dot(xrow, yn), yn, zrow)
				mat.AxpyVec(-mat.Dot(xrow, yo), yo, zrow)
			}
		}
	})
}
