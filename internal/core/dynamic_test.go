package core

import (
	"math/rand"
	"testing"

	"pane/internal/graph"
)

// perturb returns g with a handful of extra random edges and attribute
// associations — a small graph delta.
func perturb(g *graph.Graph, extraEdges, extraAttrs int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	var edges []graph.Edge
	for u := 0; u < g.N; u++ {
		for _, v := range g.OutNeighbors(u) {
			edges = append(edges, graph.Edge{Src: u, Dst: int(v)})
		}
	}
	for i := 0; i < extraEdges; i++ {
		edges = append(edges, graph.Edge{Src: rng.Intn(g.N), Dst: rng.Intn(g.N)})
	}
	var attrs []graph.AttrEntry
	for v := 0; v < g.N; v++ {
		cols, vals := g.NodeAttrs(v)
		for k, c := range cols {
			attrs = append(attrs, graph.AttrEntry{Node: v, Attr: int(c), Weight: vals[k]})
		}
	}
	for i := 0; i < extraAttrs; i++ {
		attrs = append(attrs, graph.AttrEntry{Node: rng.Intn(g.N), Attr: rng.Intn(g.D), Weight: 1})
	}
	out, err := graph.New(g.N, g.D, edges, attrs, g.Labels)
	if err != nil {
		panic(err)
	}
	return out
}

func TestRefineFromDoesNotMutatePrev(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := testGraph(rng, 30, 8)
	cfg := smallConfig()
	prev, err := PANE(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := prev.Xf.Clone()
	f, b := AffinityFromGraph(g, cfg.Alpha, cfg.Iterations(), 1)
	RefineFrom(prev, f, b, cfg, 2, 1)
	if prev.Xf.MaxAbsDiff(snapshot) != 0 {
		t.Fatal("RefineFrom mutated the previous embedding")
	}
}

func TestRefineFromLowersObjective(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := testGraph(rng, 40, 10)
	cfg := smallConfig()
	cfg.CCDIters = 1
	prev, err := PANE(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// New targets from a perturbed graph.
	g2 := perturb(g, 15, 10, 3)
	f2, b2 := AffinityFromGraph(g2, cfg.Alpha, cfg.Iterations(), 1)
	before := Objective(prev, f2, b2)
	warm := RefineFrom(prev, f2, b2, cfg, 2, 1)
	after := Objective(warm, f2, b2)
	if after >= before {
		t.Fatalf("warm refinement did not lower the objective: %v -> %v", before, after)
	}
}

func TestUpdateEmbeddingCloseToRetrain(t *testing.T) {
	// After a small delta, 2 warm sweeps must land within a modest factor
	// of a full cold retrain's objective — the value proposition of the
	// dynamic extension.
	rng := rand.New(rand.NewSource(4))
	g := testGraph(rng, 50, 10)
	cfg := smallConfig()
	prev, err := PANE(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2 := perturb(g, 10, 8, 5)
	warm, err := UpdateEmbedding(g2, prev, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := PANE(g2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f2, b2 := AffinityFromGraph(g2, cfg.Alpha, cfg.Iterations(), 1)
	warmObj := Objective(warm, f2, b2)
	coldObj := Objective(cold, f2, b2)
	if warmObj > 1.3*coldObj {
		t.Fatalf("warm objective %v far above cold retrain %v", warmObj, coldObj)
	}
}

func TestUpdateEmbeddingBeatsStalePredictions(t *testing.T) {
	// The warm-updated embedding must fit the new affinity better than
	// the stale embedding does.
	rng := rand.New(rand.NewSource(6))
	g := testGraph(rng, 40, 8)
	cfg := smallConfig()
	prev, err := PANE(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2 := perturb(g, 20, 15, 7)
	warm, err := UpdateEmbedding(g2, prev, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	f2, b2 := AffinityFromGraph(g2, cfg.Alpha, cfg.Iterations(), 1)
	if Objective(warm, f2, b2) >= Objective(prev, f2, b2) {
		t.Fatal("update did not improve fit to the new graph")
	}
}

func TestUpdateEmbeddingShapeChecks(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := testGraph(rng, 20, 5)
	cfg := smallConfig()
	prev, err := PANE(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Different node count.
	g2 := testGraph(rand.New(rand.NewSource(9)), 25, 5)
	if _, err := UpdateEmbedding(g2, prev, cfg, 1); err == nil {
		t.Fatal("node count mismatch accepted")
	}
	// Different K.
	cfg2 := cfg
	cfg2.K = cfg.K * 2
	if _, err := UpdateEmbedding(g, prev, cfg2, 1); err == nil {
		t.Fatal("K mismatch accepted")
	}
	// Bad config still rejected.
	bad := cfg
	bad.Alpha = 0
	if _, err := UpdateEmbedding(g, prev, bad, 1); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestRefineFromParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	g := testGraph(rng, 30, 7)
	cfg := smallConfig()
	prev, err := PANE(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, b := AffinityFromGraph(g, cfg.Alpha, cfg.Iterations(), 1)
	serial := RefineFrom(prev, f, b, cfg, 3, 1)
	par := RefineFrom(prev, f, b, cfg, 3, 4)
	if serial.Xf.MaxAbsDiff(par.Xf) > 1e-12 || serial.Y.MaxAbsDiff(par.Y) > 1e-12 {
		t.Fatal("parallel warm refinement deviates from serial")
	}
}
