package core

import (
	"math/rand"

	"pane/internal/mat"
	"pane/internal/svd"
)

// Embedding bundles PANE's output: forward and backward node embeddings
// (n x k/2 each) and attribute embeddings (d x k/2).
type Embedding struct {
	Xf, Xb, Y *mat.Dense
}

// K returns the total per-node space budget (twice the column count).
func (e *Embedding) K() int { return 2 * e.Xf.Cols }

// state is the mutable solver state: the embeddings plus the dynamically
// maintained residuals Sf = Xf·Yᵀ − F' and Sb = Xb·Yᵀ − B'.
type state struct {
	Embedding
	Sf, Sb *mat.Dense
}

// GreedyInit (Algorithm 3) seeds the solver: a randomized SVD of F' gives
// Xf = UΣ and Y = V so that Xf·Yᵀ ≈ F' immediately; the near-unitarity of
// V then makes Xb = B'·Y a good seed for the backward factor. The
// residuals are initialized in full once here and only patched
// incrementally afterwards.
func GreedyInit(f, b *mat.Dense, k, t int, rng *rand.Rand, nb int) *state {
	half := k / 2
	res := svd.RandSVD(f, half, t, rng, nb)
	y := res.V
	xf := res.UScaled()
	xf = padCols(xf, half)
	y = padCols(y, half)
	xb := mat.ParMul(b, y, nb)
	sf := mat.ParMulBT(xf, y, nb)
	sf.Sub(f)
	sb := mat.ParMulBT(xb, y, nb)
	sb.Sub(b)
	return &state{Embedding: Embedding{Xf: xf, Xb: xb, Y: y}, Sf: sf, Sb: sb}
}

// RandomInit seeds the solver with small Gaussian embeddings instead of
// the greedy SVD — the PANE-R ablation of §5.7 (Figures 7 and 8).
func RandomInit(f, b *mat.Dense, k int, rng *rand.Rand, nb int) *state {
	half := k / 2
	n, d := f.Rows, f.Cols
	gauss := func(r, c int) *mat.Dense {
		m := mat.New(r, c)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64() * 0.1
		}
		return m
	}
	xf, xb, y := gauss(n, half), gauss(n, half), gauss(d, half)
	sf := mat.ParMulBT(xf, y, nb)
	sf.Sub(f)
	sb := mat.ParMulBT(xb, y, nb)
	sb.Sub(b)
	return &state{Embedding: Embedding{Xf: xf, Xb: xb, Y: y}, Sf: sf, Sb: sb}
}

// SMGreedyInit (Algorithm 7) is the split-merge parallel variant of
// GreedyInit: F' is split into nb row blocks, each block is factorized
// independently, the per-block right factors are merged by a second small
// SVD, and the left factors are stitched through the merge weights W. The
// result is close to — but not identical to — GreedyInit's (Lemma 4.2
// shows they coincide when every SVD is exact), which is the source of the
// parallel algorithm's small utility loss discussed in §5.6.
func SMGreedyInit(f, b *mat.Dense, k, t int, rng *rand.Rand, nb int) *state {
	half := k / 2
	n := f.Rows
	if nb <= 1 || n < 2*half {
		return GreedyInit(f, b, k, t, rng, nb)
	}
	blocks := mat.SplitRanges(n, nb)
	// Every block must be at least half tall for a rank-half SVD to make
	// sense; fall back to the serial initializer otherwise.
	for _, rg := range blocks {
		if rg[1]-rg[0] < half {
			return GreedyInit(f, b, k, t, rng, nb)
		}
	}
	type blockFactor struct {
		u *mat.Dense // (block rows) x half, already scaled by Σ
		v *mat.Dense // d x half
	}
	factors := make([]blockFactor, len(blocks))
	// Pre-draw per-block RNG seeds deterministically so the parallel
	// execution order cannot change the result.
	seeds := make([]int64, len(blocks))
	for i := range seeds {
		seeds[i] = rng.Int63()
	}
	mat.ParallelRanges(len(blocks), len(blocks), func(blo, bhi int) {
		for w := blo; w < bhi; w++ {
			rg := blocks[w]
			blockRng := rand.New(rand.NewSource(seeds[w]))
			res := svd.RandSVD(f.RowView(rg[0], rg[1]), half, t, blockRng, 1)
			factors[w] = blockFactor{u: padCols(res.UScaled(), half), v: padCols(res.V, half)}
		}
	})
	// Merge: stack V1ᵀ..Vnbᵀ into a (nb·half) x d matrix and decompose it.
	stacked := make([]*mat.Dense, len(blocks))
	for i, fac := range factors {
		stacked[i] = fac.v.T()
	}
	vBig := mat.StackRows(stacked...)
	mergeRng := rand.New(rand.NewSource(rng.Int63()))
	merged := svd.RandSVD(vBig, half, t, mergeRng, nb)
	y := padCols(merged.V, half)
	w := padCols(merged.UScaled(), half) // (nb·half) x half
	// Stitch: Xf[Vi] = Ui · W[i·half:(i+1)·half], Xb[Vi] = B'[Vi]·Y,
	// and the residual blocks (Lines 7-11).
	xf := mat.New(n, half)
	xb := mat.New(n, half)
	sf := mat.New(n, f.Cols)
	sb := mat.New(n, f.Cols)
	mat.ParallelRanges(len(blocks), len(blocks), func(blo, bhi int) {
		for iw := blo; iw < bhi; iw++ {
			rg := blocks[iw]
			wBlock := w.RowView(iw*half, (iw+1)*half)
			xfBlock := mat.Mul(factors[iw].u, wBlock)
			xf.RowView(rg[0], rg[1]).CopyFrom(xfBlock)
			xbBlock := mat.Mul(b.RowView(rg[0], rg[1]), y)
			xb.RowView(rg[0], rg[1]).CopyFrom(xbBlock)
			sfBlock := mat.MulBT(xfBlock, y)
			sfBlock.Sub(f.RowView(rg[0], rg[1]))
			sf.RowView(rg[0], rg[1]).CopyFrom(sfBlock)
			sbBlock := mat.MulBT(xbBlock, y)
			sbBlock.Sub(b.RowView(rg[0], rg[1]))
			sb.RowView(rg[0], rg[1]).CopyFrom(sbBlock)
		}
	})
	return &state{Embedding: Embedding{Xf: xf, Xb: xb, Y: y}, Sf: sf, Sb: sb}
}

// padCols widens m with zero columns up to want columns, when a truncated
// SVD returned fewer directions than requested (rank-deficient input).
func padCols(m *mat.Dense, want int) *mat.Dense {
	if m.Cols >= want {
		return m
	}
	out := mat.New(m.Rows, want)
	out.SetColSlice(0, m)
	return out
}
