package core

import (
	"math/rand"
	"sort"
	"testing"

	"pane/internal/graph"
	"pane/internal/mat"
)

func topkEmbedding(t *testing.T) (*graph.Graph, *Embedding) {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	g := testGraph(rng, 40, 12)
	e, err := PANE(g, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	return g, e
}

func TestTopKAttrsMatchesBruteForce(t *testing.T) {
	g, e := topkEmbedding(t)
	for _, v := range []int{0, 7, 39} {
		got := e.TopKAttrs(v, 5, nil)
		// Brute force.
		all := make([]Scored, g.D)
		for r := 0; r < g.D; r++ {
			all[r] = Scored{ID: r, Score: e.AttrScore(v, r)}
		}
		sort.Slice(all, func(i, j int) bool { return all[i].Score > all[j].Score })
		if len(got) != 5 {
			t.Fatalf("got %d results", len(got))
		}
		for i := range got {
			if got[i].Score != all[i].Score {
				t.Fatalf("v=%d rank %d: got %v want %v", v, i, got[i], all[i])
			}
		}
	}
}

func TestTopKAttrsExclude(t *testing.T) {
	_, e := topkEmbedding(t)
	full := e.TopKAttrs(3, 3, nil)
	excl := map[int]bool{full[0].ID: true}
	got := e.TopKAttrs(3, 3, excl)
	for _, s := range got {
		if s.ID == full[0].ID {
			t.Fatal("excluded attribute returned")
		}
	}
	if got[0].Score > full[0].Score {
		t.Fatal("ordering inconsistent after exclusion")
	}
}

func TestTopKAttrsDescending(t *testing.T) {
	_, e := topkEmbedding(t)
	got := e.TopKAttrs(1, 8, nil)
	for i := 1; i < len(got); i++ {
		if got[i].Score > got[i-1].Score {
			t.Fatalf("not descending at %d: %v", i, got)
		}
	}
}

func TestTopKAttrsKLargerThanD(t *testing.T) {
	g, e := topkEmbedding(t)
	got := e.TopKAttrs(0, g.D+50, nil)
	if len(got) != g.D {
		t.Fatalf("len = %d, want %d", len(got), g.D)
	}
}

func TestTopKTargetsMatchesBruteForce(t *testing.T) {
	g, e := topkEmbedding(t)
	s := NewLinkScorer(e)
	u := 5
	got := s.TopKTargets(u, 6, nil)
	var all []Scored
	for v := 0; v < g.N; v++ {
		if v == u {
			continue
		}
		all = append(all, Scored{ID: v, Score: s.Directed(u, v)})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Score > all[j].Score })
	for i := range got {
		if d := got[i].Score - all[i].Score; d > 1e-9 || d < -1e-9 {
			t.Fatalf("rank %d: got %v want %v", i, got[i], all[i])
		}
	}
}

func TestTopKTargetsExcludesSelfAndGiven(t *testing.T) {
	g, e := topkEmbedding(t)
	s := NewLinkScorer(e)
	u := 2
	excl := map[int]bool{}
	for _, v := range g.OutNeighbors(u) {
		excl[int(v)] = true
	}
	got := s.TopKTargets(u, g.N, excl)
	for _, r := range got {
		if r.ID == u {
			t.Fatal("self returned")
		}
		if excl[r.ID] {
			t.Fatal("excluded target returned")
		}
	}
	if len(got) != g.N-1-len(excl) {
		t.Fatalf("len = %d, want %d", len(got), g.N-1-len(excl))
	}
}

func TestTopKAccumulatorMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		k := 1 + rng.Intn(20)
		// Coarse quantization forces plenty of score ties.
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = float64(rng.Intn(8))
		}
		// Offer in a random order: the result must not depend on it.
		acc := NewTopK(k)
		for _, i := range rng.Perm(n) {
			acc.Offer(i, scores[i])
		}
		got := acc.Take()

		all := make([]Scored, n)
		for i, s := range scores {
			all[i] = Scored{ID: i, Score: s}
		}
		sort.Slice(all, func(i, j int) bool { return Better(all[i], all[j]) })
		want := all
		if k < n {
			want = all[:k]
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d results, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d rank %d: got %v want %v (k=%d n=%d)", trial, i, got[i], want[i], k, n)
			}
		}
	}
}

// TestTopKResetAndPool: a pooled, Reset accumulator behaves exactly like
// a fresh one — including shrinking k between uses and surviving a
// drain-refill cycle — and Take's output remains valid after the
// accumulator returns to the pool.
func TestTopKResetAndPool(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 30; trial++ {
		k := 1 + rng.Intn(12)
		n := 1 + rng.Intn(100)
		fresh := NewTopK(k)
		pooled := GetTopK(k + 5) // deliberately mis-sized, then fixed
		pooled.Reset(k)
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = float64(rng.Intn(6))
		}
		for i, s := range scores {
			fresh.Offer(i, s)
			pooled.Offer(i, s)
		}
		want := fresh.Take()
		got := pooled.Take()
		PutTopK(pooled)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d vs %d results", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d rank %d: %v vs %v", trial, i, got[i], want[i])
			}
		}
	}
	// Reset(k) with k < 1 keeps nothing, like NewTopK.
	tk := GetTopK(3)
	tk.Reset(0)
	tk.Offer(1, 10)
	if tk.Len() != 0 {
		t.Fatal("Reset(0) accumulator kept a candidate")
	}
	PutTopK(tk)
}

func TestTopKTieBreakAscendingID(t *testing.T) {
	// An embedding with identical attribute rows produces exact score
	// ties; the ranking must come back in ascending attribute id.
	row := []float64{0.3, 0.7}
	e := &Embedding{
		Xf: mat.FromRows([][]float64{{1, 2}}),
		Xb: mat.FromRows([][]float64{{0.5, 0.25}}),
		Y:  mat.FromRows([][]float64{row, row, row, row}),
	}
	got := e.TopKAttrs(0, 3, nil)
	for i, s := range got {
		if s.ID != i {
			t.Fatalf("tie order %v, want ids 0,1,2", got)
		}
	}
	// And with an exclusion, the next-smallest id fills in.
	got = e.TopKAttrs(0, 3, map[int]bool{0: true})
	if got[0].ID != 1 || got[1].ID != 2 || got[2].ID != 3 {
		t.Fatalf("tie order with exclusion %v", got)
	}
}

func TestTopKZeroAndNegativeK(t *testing.T) {
	acc := NewTopK(0)
	acc.Offer(1, 5)
	if acc.Len() != 0 || len(acc.Take()) != 0 {
		t.Fatal("k=0 kept candidates")
	}
	acc = NewTopK(-3)
	acc.Offer(1, 5)
	if len(acc.Take()) != 0 {
		t.Fatal("negative k kept candidates")
	}
}

func TestPANEErrorsWithoutAttributes(t *testing.T) {
	g, err := graph.New(5, 0, []graph.Edge{{Src: 0, Dst: 1}}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PANE(g, smallConfig()); err == nil {
		t.Fatal("attribute-less graph accepted by PANE")
	}
	if _, err := ParallelPANE(g, smallConfig()); err == nil {
		t.Fatal("attribute-less graph accepted by ParallelPANE")
	}
	if _, err := PANERandomInit(g, smallConfig()); err == nil {
		t.Fatal("attribute-less graph accepted by PANERandomInit")
	}
}

func TestPANETinyGraphs(t *testing.T) {
	// Degenerate but valid inputs must not panic: one attribute, two
	// nodes, K larger than d.
	g, err := graph.New(2, 1,
		[]graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}},
		[]graph.AttrEntry{{Node: 0, Attr: 0, Weight: 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{K: 8, Alpha: 0.5, Eps: 0.1, Threads: 3, Seed: 1}
	for _, run := range []func(*graph.Graph, Config) (*Embedding, error){PANE, ParallelPANE} {
		e, err := run(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if e.Xf.Rows != 2 || e.Y.Rows != 1 {
			t.Fatal("degenerate shapes wrong")
		}
	}
}

func TestPANEDisconnectedAndDangling(t *testing.T) {
	// Dangling node (1) and isolated node (3) must flow through the whole
	// pipeline without NaNs.
	g, err := graph.New(4, 2,
		[]graph.Edge{{Src: 0, Dst: 1}, {Src: 2, Dst: 0}},
		[]graph.AttrEntry{{Node: 0, Attr: 0, Weight: 1}, {Node: 2, Attr: 1, Weight: 2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	e, err := PANE(g, Config{K: 4, Alpha: 0.5, Eps: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []interface{ Row(int) []float64 }{e.Xf, e.Xb, e.Y} {
		for i := 0; i < 2; i++ {
			for _, v := range m.Row(i) {
				if v != v { // NaN
					t.Fatal("NaN in embedding of degenerate graph")
				}
			}
		}
	}
}
