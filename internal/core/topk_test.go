package core

import (
	"math/rand"
	"sort"
	"testing"

	"pane/internal/graph"
)

func topkEmbedding(t *testing.T) (*graph.Graph, *Embedding) {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	g := testGraph(rng, 40, 12)
	e, err := PANE(g, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	return g, e
}

func TestTopKAttrsMatchesBruteForce(t *testing.T) {
	g, e := topkEmbedding(t)
	for _, v := range []int{0, 7, 39} {
		got := e.TopKAttrs(v, 5, nil)
		// Brute force.
		all := make([]Scored, g.D)
		for r := 0; r < g.D; r++ {
			all[r] = Scored{ID: r, Score: e.AttrScore(v, r)}
		}
		sort.Slice(all, func(i, j int) bool { return all[i].Score > all[j].Score })
		if len(got) != 5 {
			t.Fatalf("got %d results", len(got))
		}
		for i := range got {
			if got[i].Score != all[i].Score {
				t.Fatalf("v=%d rank %d: got %v want %v", v, i, got[i], all[i])
			}
		}
	}
}

func TestTopKAttrsExclude(t *testing.T) {
	_, e := topkEmbedding(t)
	full := e.TopKAttrs(3, 3, nil)
	excl := map[int]bool{full[0].ID: true}
	got := e.TopKAttrs(3, 3, excl)
	for _, s := range got {
		if s.ID == full[0].ID {
			t.Fatal("excluded attribute returned")
		}
	}
	if got[0].Score > full[0].Score {
		t.Fatal("ordering inconsistent after exclusion")
	}
}

func TestTopKAttrsDescending(t *testing.T) {
	_, e := topkEmbedding(t)
	got := e.TopKAttrs(1, 8, nil)
	for i := 1; i < len(got); i++ {
		if got[i].Score > got[i-1].Score {
			t.Fatalf("not descending at %d: %v", i, got)
		}
	}
}

func TestTopKAttrsKLargerThanD(t *testing.T) {
	g, e := topkEmbedding(t)
	got := e.TopKAttrs(0, g.D+50, nil)
	if len(got) != g.D {
		t.Fatalf("len = %d, want %d", len(got), g.D)
	}
}

func TestTopKTargetsMatchesBruteForce(t *testing.T) {
	g, e := topkEmbedding(t)
	s := NewLinkScorer(e)
	u := 5
	got := s.TopKTargets(u, 6, nil)
	var all []Scored
	for v := 0; v < g.N; v++ {
		if v == u {
			continue
		}
		all = append(all, Scored{ID: v, Score: s.Directed(u, v)})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Score > all[j].Score })
	for i := range got {
		if d := got[i].Score - all[i].Score; d > 1e-9 || d < -1e-9 {
			t.Fatalf("rank %d: got %v want %v", i, got[i], all[i])
		}
	}
}

func TestTopKTargetsExcludesSelfAndGiven(t *testing.T) {
	g, e := topkEmbedding(t)
	s := NewLinkScorer(e)
	u := 2
	excl := map[int]bool{}
	for _, v := range g.OutNeighbors(u) {
		excl[int(v)] = true
	}
	got := s.TopKTargets(u, g.N, excl)
	for _, r := range got {
		if r.ID == u {
			t.Fatal("self returned")
		}
		if excl[r.ID] {
			t.Fatal("excluded target returned")
		}
	}
	if len(got) != g.N-1-len(excl) {
		t.Fatalf("len = %d, want %d", len(got), g.N-1-len(excl))
	}
}

func TestPANEErrorsWithoutAttributes(t *testing.T) {
	g, err := graph.New(5, 0, []graph.Edge{{Src: 0, Dst: 1}}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PANE(g, smallConfig()); err == nil {
		t.Fatal("attribute-less graph accepted by PANE")
	}
	if _, err := ParallelPANE(g, smallConfig()); err == nil {
		t.Fatal("attribute-less graph accepted by ParallelPANE")
	}
	if _, err := PANERandomInit(g, smallConfig()); err == nil {
		t.Fatal("attribute-less graph accepted by PANERandomInit")
	}
}

func TestPANETinyGraphs(t *testing.T) {
	// Degenerate but valid inputs must not panic: one attribute, two
	// nodes, K larger than d.
	g, err := graph.New(2, 1,
		[]graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}},
		[]graph.AttrEntry{{Node: 0, Attr: 0, Weight: 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{K: 8, Alpha: 0.5, Eps: 0.1, Threads: 3, Seed: 1}
	for _, run := range []func(*graph.Graph, Config) (*Embedding, error){PANE, ParallelPANE} {
		e, err := run(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if e.Xf.Rows != 2 || e.Y.Rows != 1 {
			t.Fatal("degenerate shapes wrong")
		}
	}
}

func TestPANEDisconnectedAndDangling(t *testing.T) {
	// Dangling node (1) and isolated node (3) must flow through the whole
	// pipeline without NaNs.
	g, err := graph.New(4, 2,
		[]graph.Edge{{Src: 0, Dst: 1}, {Src: 2, Dst: 0}},
		[]graph.AttrEntry{{Node: 0, Attr: 0, Weight: 1}, {Node: 2, Attr: 1, Weight: 2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	e, err := PANE(g, Config{K: 4, Alpha: 0.5, Eps: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []interface{ Row(int) []float64 }{e.Xf, e.Xb, e.Y} {
		for i := 0; i < 2; i++ {
			for _, v := range m.Row(i) {
				if v != v { // NaN
					t.Fatal("NaN in embedding of degenerate graph")
				}
			}
		}
	}
}
