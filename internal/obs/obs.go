// Package obs is the serving stack's observability substrate: a
// dependency-free metrics registry (the module is stdlib-only and stays
// that way) holding counters, gauges, and log-bucketed latency
// histograms, exposed as Prometheus text exposition and as a JSON
// snapshot. Recording on the hot path is lock-free: every metric is a
// handful of atomic words, and series lookup reads a copy-on-write map
// through one atomic pointer — registration (the first time a
// name+labels combination is seen) takes a mutex, recording never does.
//
// Naming follows the Prometheus conventions the rest of the repo
// documents in README "Observability": every family is prefixed
// pane_<subsystem>_, counters end in _total, durations are histograms in
// seconds named *_duration_seconds, and label keys are closed enums
// (route, code, backend, kind, stage) — never unbounded user input, so
// series cardinality is fixed at compile time.
//
// Typical wiring: the engine owns one Registry per process (or per
// engine in tests), resolves its metric handles once at construction,
// and records through the handles; the HTTP layer serves
// Registry.Handler at GET /metrics. Handles for a given name+labels are
// canonical — asking twice returns the same pointer — which is what lets
// /healthz and /metrics report from the same underlying cells and never
// disagree.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key=value pair attached to a series. Keys must match the
// Prometheus label-name charset; values are arbitrary strings (escaped
// at exposition time) but should come from small closed sets to bound
// cardinality.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Registry is a set of metric families. The zero value is NOT usable;
// call NewRegistry.
type Registry struct {
	families sync.Map // name -> *family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Metric kinds, matching the TYPE line of the text exposition.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// family is one metric family: a name, HELP/TYPE metadata fixed at first
// registration, and its series behind a copy-on-write map (reads are one
// atomic load; only registering a NEW series takes mu).
type family struct {
	name string
	help string
	kind string

	mu     sync.Mutex
	series atomic.Pointer[map[string]*series]
}

// series is one labeled instance of a family. Exactly one of c/g/h is
// non-nil, matching the family kind.
type series struct {
	labels string // canonical rendered label set, e.g. `route="/healthz"`
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Counter is a monotonically increasing uint64. All methods are safe for
// concurrent use and lock-free.
type Counter struct{ v atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 that can go up and down (in-flight requests, drift
// estimates, the current model version). Lock-free via atomic bit
// storage; Add is a CAS loop.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (delta may be negative).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Counter returns the canonical counter for name+labels, creating family
// and series on first use. help is fixed by the first registration of
// the family; a later registration under the same name with a different
// kind panics (a programmer error tests catch immediately — silently
// serving a family whose TYPE line lies would corrupt every scrape).
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.lookup(name, help, kindCounter, labels).c
}

// Gauge returns the canonical gauge for name+labels; see Counter for the
// registration rules.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.lookup(name, help, kindGauge, labels).g
}

// Histogram returns the canonical latency histogram for name+labels; see
// Counter for the registration rules and NewHistogram for the bucket
// layout.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	return r.lookup(name, help, kindHistogram, labels).h
}

func (r *Registry) lookup(name, help, kind string, labels []Label) *series {
	f := r.family(name, help, kind)
	key := labelKey(labels)
	if s, ok := (*f.series.Load())[key]; ok {
		return s
	}
	return f.register(key, kind)
}

func (r *Registry) family(name, help, kind string) *family {
	if v, ok := r.families.Load(name); ok {
		f := v.(*family)
		f.check(kind)
		return f
	}
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	f := &family{name: name, help: help, kind: kind}
	empty := map[string]*series{}
	f.series.Store(&empty)
	if v, loaded := r.families.LoadOrStore(name, f); loaded {
		f = v.(*family)
		f.check(kind)
	}
	return f
}

func (f *family) check(kind string) {
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s and re-requested as %s", f.name, f.kind, kind))
	}
}

// register adds the series for key under mu, copying the map so readers
// never see a map mid-write. Double-checked: a concurrent registration
// of the same key wins harmlessly.
func (f *family) register(key, kind string) *series {
	f.mu.Lock()
	defer f.mu.Unlock()
	old := *f.series.Load()
	if s, ok := old[key]; ok {
		return s
	}
	s := &series{labels: key}
	switch kind {
	case kindCounter:
		s.c = &Counter{}
	case kindGauge:
		s.g = &Gauge{}
	case kindHistogram:
		s.h = NewHistogram()
	}
	next := make(map[string]*series, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[key] = s
	f.series.Store(&next)
	return s
}

// labelKey renders labels canonically (sorted by key) so that the same
// set in any order maps to the same series. Keys are validated here —
// the one place every registration funnels through.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if !validName(l.Key) {
			panic(fmt.Sprintf("obs: invalid label name %q", l.Key))
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// validName reports whether s matches the Prometheus metric/label name
// charset [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// escapeLabelValue applies the exposition-format escapes for label
// values: backslash, double quote, and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// escapeHelp applies the exposition-format escapes for HELP text:
// backslash and newline.
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}
