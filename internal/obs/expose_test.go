package obs

import (
	"net/http/httptest"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"
)

// sampleRe matches one exposition sample line: a valid series name, an
// optional label block, one space, one value.
var sampleRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_:][a-zA-Z0-9_:]*="(\\.|[^"\\])*"(,[a-zA-Z_:][a-zA-Z0-9_:]*="(\\.|[^"\\])*")*\})? (NaN|[+-]Inf|-?[0-9][0-9.eE+-]*)$`)

func testRegistry() *Registry {
	r := NewRegistry()
	r.Counter("pane_test_requests_total", "Requests.", L("route", "/a"), L("code", "200")).Add(3)
	r.Counter("pane_test_requests_total", "Requests.", L("route", "/b"), L("code", "500")).Inc()
	r.Gauge("pane_test_inflight", "In flight.").Set(2)
	h := r.Histogram("pane_test_duration_seconds", "Latency.", L("route", "/a"))
	h.Observe(500 * time.Microsecond)
	h.Observe(3 * time.Millisecond)
	h.Observe(time.Minute) // +Inf bucket
	// Values needing escapes must render as valid exposition.
	r.Counter("pane_test_escapes_total", "Help with \\ and\nnewline.", L("v", "a\"b\\c\nd")).Inc()
	return r
}

// TestExpositionLint renders a registry and lints every line of the
// output against the text-format grammar: HELP then TYPE once per
// family, families in sorted order, every sample parseable, no
// duplicate series.
func TestExpositionLint(t *testing.T) {
	var b strings.Builder
	if err := testRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasSuffix(out, "\n") {
		t.Fatal("exposition does not end in a newline")
	}
	var families []string
	seenSeries := map[string]bool{}
	expectTyped := "" // family name a # TYPE must follow for
	for i, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || !validName(name) {
				t.Fatalf("line %d: malformed HELP: %q", i+1, line)
			}
			families = append(families, name)
			expectTyped = name
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", i+1, line)
			}
			if fields[0] != expectTyped {
				t.Fatalf("line %d: TYPE for %q, want %q (must follow its HELP)", i+1, fields[0], expectTyped)
			}
			switch fields[1] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown TYPE %q", i+1, fields[1])
			}
			expectTyped = ""
		default:
			if !sampleRe.MatchString(line) {
				t.Fatalf("line %d: unparseable sample: %q", i+1, line)
			}
			series := line[:strings.LastIndexByte(line, ' ')]
			if seenSeries[series] {
				t.Fatalf("line %d: duplicate series %q", i+1, series)
			}
			seenSeries[series] = true
		}
	}
	if !sort.StringsAreSorted(families) {
		t.Fatalf("families not sorted: %v", families)
	}
	for _, want := range []string{
		`pane_test_requests_total{code="200",route="/a"} 3`,
		`pane_test_requests_total{code="500",route="/b"} 1`,
		`pane_test_inflight 2`,
		`pane_test_escapes_total{v="a\"b\\c\nd"} 1`,
		"# HELP pane_test_escapes_total Help with \\\\ and\\nnewline.",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestHistogramExposition checks the cumulative-bucket contract: le
// bounds strictly increase, cumulative counts never decrease, the +Inf
// bucket is present and equals _count, and _sum is there.
func TestHistogramExposition(t *testing.T) {
	var b strings.Builder
	if err := testRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	bucketRe := regexp.MustCompile(`^pane_test_duration_seconds_bucket\{route="/a",le="([^"]+)"\} (\d+)$`)
	var (
		lastLe  = -1.0
		lastCum = uint64(0)
		infCum  uint64
		sawInf  bool
		count   uint64
		sawCnt  bool
	)
	for _, line := range strings.Split(b.String(), "\n") {
		if m := bucketRe.FindStringSubmatch(line); m != nil {
			cum, _ := strconv.ParseUint(m[2], 10, 64)
			if cum < lastCum {
				t.Fatalf("cumulative bucket count decreased at %q", line)
			}
			lastCum = cum
			if m[1] == "+Inf" {
				sawInf, infCum = true, cum
				continue
			}
			le, err := strconv.ParseFloat(m[1], 64)
			if err != nil {
				t.Fatalf("bad le %q: %v", m[1], err)
			}
			if le <= lastLe {
				t.Fatalf("le bounds not increasing at %q", line)
			}
			lastLe = le
		}
		if rest, ok := strings.CutPrefix(line, `pane_test_duration_seconds_count{route="/a"} `); ok {
			count, _ = strconv.ParseUint(rest, 10, 64)
			sawCnt = true
		}
	}
	if !sawInf {
		t.Fatal("no +Inf bucket exposed")
	}
	if !sawCnt {
		t.Fatal("no _count exposed")
	}
	if infCum != count || count != 3 {
		t.Fatalf("+Inf bucket %d and _count %d must both be 3", infCum, count)
	}
	if !strings.Contains(b.String(), `pane_test_duration_seconds_sum{route="/a"} `) {
		t.Fatal("no _sum exposed")
	}
}

func TestHandler(t *testing.T) {
	rec := httptest.NewRecorder()
	testRegistry().Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "pane_test_requests_total") {
		t.Fatal("body missing expected series")
	}
}

func TestSnapshot(t *testing.T) {
	snap := testRegistry().Snapshot()
	if v, ok := snap[`pane_test_requests_total{code="200",route="/a"}`]; !ok || v.(uint64) != 3 {
		t.Fatalf("snapshot counter = %v (present %v), want 3", v, ok)
	}
	if v, ok := snap["pane_test_inflight"]; !ok || v.(float64) != 2 {
		t.Fatalf("snapshot gauge = %v (present %v), want 2", v, ok)
	}
	h, ok := snap[`pane_test_duration_seconds{route="/a"}`].(map[string]any)
	if !ok {
		t.Fatal("snapshot histogram missing")
	}
	if h["count"].(uint64) != 3 {
		t.Fatalf("snapshot histogram count = %v, want 3", h["count"])
	}
	if h["sum_seconds"].(float64) < 60 {
		t.Fatalf("snapshot histogram sum %v lost the 60s observation", h["sum_seconds"])
	}
}
