package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every family in Prometheus text exposition
// format v0.0.4: families sorted by name, each with one # HELP and one
// # TYPE line followed by its series sorted by label set, histograms as
// cumulative _bucket{le=...} plus _sum and _count. Scrapes run
// concurrently with recording; for histograms the _count line is
// derived from the +Inf cumulative bucket so every exposed histogram is
// internally consistent (count == +Inf bucket) even mid-write.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var names []string
	r.families.Range(func(k, _ any) bool {
		names = append(names, k.(string))
		return true
	})
	sort.Strings(names)
	for _, name := range names {
		v, _ := r.families.Load(name)
		if err := v.(*family).write(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, escapeHelp(f.help), f.name, f.kind); err != nil {
		return err
	}
	m := *f.series.Load()
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := m[k].write(w, f.name, f.kind); err != nil {
			return err
		}
	}
	return nil
}

func (s *series) write(w io.Writer, name, kind string) error {
	switch kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s %s\n", seriesName(name, s.labels), formatFloat(float64(s.c.Value())))
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s %s\n", seriesName(name, s.labels), formatFloat(s.g.Value()))
		return err
	case kindHistogram:
		b, total := s.h.snapshot()
		var cum uint64
		for i := 0; i < numBuckets; i++ {
			cum += b[i]
			// Skip interior empty-prefix noise? No: Prometheus clients
			// expect every boundary, but 26 lines/series is heavy when
			// most are redundant. Emit a boundary only when its
			// cumulative count changes, plus the first and +Inf buckets
			// — cumulative semantics make the omitted lines exactly
			// reconstructible.
			if i != 0 && i != numBuckets-1 && b[i] == 0 {
				continue
			}
			le := "+Inf"
			if i < numBuckets-1 {
				le = formatFloat(bucketUpperSeconds(i))
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", seriesName(name+"_bucket", joinLabels(s.labels, `le="`+le+`"`)), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", seriesName(name+"_sum", s.labels), formatFloat(s.h.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s %d\n", seriesName(name+"_count", s.labels), total)
		return err
	}
	return nil
}

func seriesName(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns the GET /metrics handler serving the text exposition.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		io.WriteString(w, b.String())
	})
}

// Snapshot returns every series as a flat JSON-friendly map keyed by
// the exposed series name (histograms become {count, sum_seconds,
// p50_ms, p95_ms, p99_ms} objects). This is the single source behind
// /healthz sections and the expvar publication in paneserve — the same
// cells /metrics reads, so the two surfaces cannot disagree.
func (r *Registry) Snapshot() map[string]any {
	out := map[string]any{}
	r.families.Range(func(_, v any) bool {
		f := v.(*family)
		for _, s := range *f.series.Load() {
			key := seriesName(f.name, s.labels)
			switch f.kind {
			case kindCounter:
				out[key] = s.c.Value()
			case kindGauge:
				out[key] = s.g.Value()
			case kindHistogram:
				sum := s.h.SummaryMs()
				out[key] = map[string]any{
					"count":       sum.Count,
					"sum_seconds": s.h.Sum(),
					"p50_ms":      sum.P50,
					"p95_ms":      sum.P95,
					"p99_ms":      sum.P99,
				}
			}
		}
		return true
	})
	return out
}
