package obs

import (
	"math"
	"testing"
	"time"
)

// TestBucketBoundaries is the boundary property test: a duration exactly
// on a power-of-two boundary lands in the bucket whose upper bound IS
// that boundary (le is inclusive), and one nanosecond more lands in the
// next bucket up.
func TestBucketBoundaries(t *testing.T) {
	for e := minBucketExp; e <= maxBucketExp; e++ {
		ns := int64(1) << e
		i := bucketIndex(ns)
		if got := bucketUpperSeconds(i); got != float64(ns)/1e9 {
			t.Fatalf("2^%d ns landed in bucket %d (le=%v), want le=%v", e, i, got, float64(ns)/1e9)
		}
		j := bucketIndex(ns + 1)
		if e == maxBucketExp {
			if j != numBuckets-1 {
				t.Fatalf("2^%d+1 ns landed in bucket %d, want the +Inf bucket %d", e, j, numBuckets-1)
			}
		} else if j != i+1 {
			t.Fatalf("2^%d+1 ns landed in bucket %d, want %d", e, j, i+1)
		}
	}
	// Below the first boundary everything collapses into bucket 0.
	for _, ns := range []int64{0, 1, 1023, 1024} {
		if i := bucketIndex(ns); i != 0 {
			t.Fatalf("%d ns landed in bucket %d, want 0", ns, i)
		}
	}
	if !math.IsInf(bucketUpperSeconds(numBuckets-1), 1) {
		t.Fatal("last bucket upper bound is not +Inf")
	}
}

// TestObserveCountConsistency checks the invariant the exposition relies
// on: the per-bucket counts sum to the observation count, and every
// cumulative prefix is monotone.
func TestObserveCountConsistency(t *testing.T) {
	h := NewHistogram()
	const n = 10000
	for i := 0; i < n; i++ {
		// Spread across several decades, including sub-boundary and
		// beyond-last-boundary extremes.
		h.Observe(time.Duration(int64(i)*int64(i)) * time.Nanosecond)
	}
	h.Observe(30 * time.Second) // +Inf bucket
	h.Observe(-time.Second)     // clamps to 0, must still count
	b, total := h.snapshot()
	if total != n+2 {
		t.Fatalf("bucket total %d, want %d", total, n+2)
	}
	if h.Count() != n+2 {
		t.Fatalf("count %d, want %d", h.Count(), n+2)
	}
	var cum, prev uint64
	for i := range b {
		cum += b[i]
		if cum < prev {
			t.Fatalf("cumulative count decreased at bucket %d", i)
		}
		prev = cum
	}
	if cum != total {
		t.Fatalf("cumulative end %d != total %d", cum, total)
	}
	if h.Sum() < 30 {
		t.Fatalf("sum %.3fs lost the 30s observation", h.Sum())
	}
}

func TestQuantile(t *testing.T) {
	h := NewHistogram()
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", q)
	}
	// 100 observations of ~1ms: every quantile must fall inside the
	// bucket that holds 1ms.
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}
	lo := bucketUpperSeconds(bucketIndex(int64(time.Millisecond)) - 1)
	hi := bucketUpperSeconds(bucketIndex(int64(time.Millisecond)))
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		v := h.Quantile(q)
		if v < lo || v > hi {
			t.Fatalf("q=%v estimate %v outside the 1ms bucket [%v, %v]", q, v, lo, hi)
		}
	}
	// Quantiles are monotone in q once the distribution spans buckets.
	h2 := NewHistogram()
	for i := 1; i <= 1000; i++ {
		h2.Observe(time.Duration(i) * 50 * time.Microsecond)
	}
	prev := -1.0
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99} {
		v := h2.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone: q=%v gave %v after %v", q, v, prev)
		}
		prev = v
	}
	// +Inf-bucket observations report the last finite boundary (a floor),
	// never infinity.
	h3 := NewHistogram()
	h3.Observe(time.Hour)
	if v := h3.Quantile(0.99); math.IsInf(v, 1) || v != bucketUpperSeconds(numBuckets-2) {
		t.Fatalf("overflow quantile %v, want the last finite boundary %v", v, bucketUpperSeconds(numBuckets-2))
	}
}

func TestSummaryMs(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 50; i++ {
		h.Observe(2 * time.Millisecond)
	}
	s := h.SummaryMs()
	if s.Count != 50 {
		t.Fatalf("summary count %d, want 50", s.Count)
	}
	// 2ms lands in the (1.048ms, 2.097ms] bucket; all three percentiles
	// must interpolate within it (in milliseconds).
	for _, v := range []float64{s.P50, s.P95, s.P99} {
		if v < 1 || v > 2.1 {
			t.Fatalf("summary percentile %vms implausible for 2ms observations", v)
		}
	}
	if s.P50 > s.P95 || s.P95 > s.P99 {
		t.Fatalf("percentiles not ordered: %v %v %v", s.P50, s.P95, s.P99)
	}
}
