package obs

import "time"

// Span times one stage of a request and records the elapsed duration
// into a histogram when ended. It is a value, not a pointer — starting
// a span allocates nothing:
//
//	sp := obs.StartSpan(m.stageFanout)
//	... fan out to shards ...
//	sp.End()
//
// A span over a nil histogram is a no-op (End still returns the
// elapsed time), which lets call sites stay unconditional when metrics
// are disabled — e.g. Model.Execute outside any engine.
type Span struct {
	h  *Histogram
	t0 time.Time
}

// StartSpan starts timing against h (h may be nil).
func StartSpan(h *Histogram) Span {
	if h == nil {
		return Span{}
	}
	return Span{h: h, t0: time.Now()}
}

// End records the elapsed duration and returns it. Safe to call on a
// zero Span (returns 0, records nothing).
func (s Span) End() time.Duration {
	if s.h == nil {
		return 0
	}
	d := time.Since(s.t0)
	s.h.Observe(d)
	return d
}
