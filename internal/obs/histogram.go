package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: power-of-two nanosecond boundaries from
// 2^minBucketExp ns (~1µs) through 2^maxBucketExp ns (~17.2s), plus a
// final +Inf bucket. 26 buckets total — wide enough to cover a
// microsecond cache-hit scan through a multi-second full rebuild, and
// small enough that a histogram is ~30 atomic words. Boundaries being
// exact powers of two makes Observe a bits.Len64 (one LZCNT), not a
// search.
const (
	minBucketExp = 10 // 2^10 ns = 1.024µs
	maxBucketExp = 34 // 2^34 ns ≈ 17.18s
	// numBuckets includes the +Inf bucket.
	numBuckets = maxBucketExp - minBucketExp + 2
)

// Histogram is a fixed-layout latency histogram with lock-free
// recording: one atomic add on a bucket, one on the sum, one on the
// count. Scrapes read the same atomics without stopping writers, so a
// scrape concurrent with writes may observe a count ahead of the bucket
// it landed in by a few events — exposition re-derives _count from the
// bucket sum so the exposed series stay internally consistent.
type Histogram struct {
	buckets [numBuckets]atomic.Uint64
	sumNs   atomic.Int64
	count   atomic.Uint64
}

// NewHistogram returns a histogram usable standalone (benchexp records
// per-query latencies into one without any registry).
func NewHistogram() *Histogram { return &Histogram{} }

// bucketIndex maps a duration in nanoseconds to its bucket: the first
// bucket whose upper bound 2^(minBucketExp+i) is ≥ ns. Values at or
// below the first boundary land in bucket 0; values above the last
// finite boundary land in the +Inf bucket.
func bucketIndex(ns int64) int {
	if ns <= 1<<minBucketExp {
		return 0
	}
	// bits.Len64(x-1) is ceil(log2(x)) for x ≥ 2.
	i := bits.Len64(uint64(ns-1)) - minBucketExp
	if i >= numBuckets {
		return numBuckets - 1
	}
	return i
}

// bucketUpperSeconds returns bucket i's inclusive upper bound in
// seconds; the last bucket is +Inf.
func bucketUpperSeconds(i int) float64 {
	if i == numBuckets-1 {
		return math.Inf(1)
	}
	return float64(int64(1)<<(minBucketExp+i)) / 1e9
}

// Observe records one duration. Negative durations clamp to zero
// (monotonic clock regressions shouldn't corrupt the sum).
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketIndex(ns)].Add(1)
	h.sumNs.Add(ns)
	h.count.Add(1)
}

// ObserveSeconds records a duration given in seconds.
func (h *Histogram) ObserveSeconds(s float64) {
	h.Observe(time.Duration(s * 1e9))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed durations in seconds.
func (h *Histogram) Sum() float64 { return float64(h.sumNs.Load()) / 1e9 }

// snapshot copies the bucket counts once so quantile math runs on a
// consistent-enough view (each bucket is individually consistent; the
// total is derived from the copied buckets, not the live count).
func (h *Histogram) snapshot() (b [numBuckets]uint64, total uint64) {
	for i := range h.buckets {
		b[i] = h.buckets[i].Load()
		total += b[i]
	}
	return b, total
}

// Quantile returns an estimate of the q-th quantile (0 ≤ q ≤ 1) in
// seconds, interpolating linearly within the target bucket. Returns 0
// when the histogram is empty. Observations in the +Inf bucket report
// the last finite boundary — the estimate is a floor there, like
// Prometheus's histogram_quantile.
func (h *Histogram) Quantile(q float64) float64 {
	b, total := h.snapshot()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i := 0; i < numBuckets; i++ {
		if b[i] == 0 {
			continue
		}
		prev := cum
		cum += float64(b[i])
		if cum < rank {
			continue
		}
		if i == numBuckets-1 {
			return bucketUpperSeconds(numBuckets - 2)
		}
		lo := 0.0
		if i > 0 {
			lo = bucketUpperSeconds(i - 1)
		}
		hi := bucketUpperSeconds(i)
		frac := 0.0
		if b[i] > 0 {
			frac = (rank - prev) / float64(b[i])
		}
		if frac < 0 {
			frac = 0
		} else if frac > 1 {
			frac = 1
		}
		return lo + (hi-lo)*frac
	}
	return bucketUpperSeconds(numBuckets - 2)
}

// LatencySummary is the p50/p95/p99 triple benchexp embeds in its JSON
// reports, in milliseconds so the numbers read naturally next to QPS.
type LatencySummary struct {
	P50   float64 `json:"p50_ms"`
	P95   float64 `json:"p95_ms"`
	P99   float64 `json:"p99_ms"`
	Count uint64  `json:"count"`
}

// SummaryMs returns the standard p50/p95/p99 summary in milliseconds.
func (h *Histogram) SummaryMs() LatencySummary {
	return LatencySummary{
		P50:   h.Quantile(0.50) * 1e3,
		P95:   h.Quantile(0.95) * 1e3,
		P99:   h.Quantile(0.99) * 1e3,
		Count: h.Count(),
	}
}
