package obs

import (
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCanonicalHandles(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("pane_test_total", "h", L("route", "/x"), L("code", "200"))
	// Same labels in the opposite order must resolve to the same cell.
	b := r.Counter("pane_test_total", "h", L("code", "200"), L("route", "/x"))
	if a != b {
		t.Fatal("label order changed the series identity")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatalf("handles not aliased: got %d", b.Value())
	}
	if c := r.Counter("pane_test_total", "h", L("route", "/y"), L("code", "200")); c == a {
		t.Fatal("distinct label values mapped to the same series")
	}
	if c := r.Counter("pane_test_total", "h"); c == a {
		t.Fatal("empty label set mapped to a labeled series")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("pane_test_total", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter family as a gauge did not panic")
		}
	}()
	r.Gauge("pane_test_total", "h")
}

func TestInvalidNamesPanic(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"", "1leading_digit", "has space", "has-dash"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("metric name %q did not panic", name)
				}
			}()
			r.Counter(name, "h")
		}()
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid label name did not panic")
		}
	}()
	r.Counter("pane_ok_total", "h", L("bad-key", "v"))
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("pane_test_gauge", "h")
	g.Set(3.5)
	g.Add(-1.25)
	if v := g.Value(); v != 2.25 {
		t.Fatalf("gauge = %v, want 2.25", v)
	}
}

func TestSpan(t *testing.T) {
	h := NewHistogram()
	sp := StartSpan(h)
	time.Sleep(time.Millisecond)
	if d := sp.End(); d <= 0 {
		t.Fatalf("span elapsed %v, want > 0", d)
	}
	if h.Count() != 1 {
		t.Fatalf("span did not record: count %d", h.Count())
	}
	// Zero-histogram spans are no-ops, not nil dereferences.
	var nilSpan = StartSpan(nil)
	if d := nilSpan.End(); d != 0 {
		t.Fatalf("nil-histogram span returned %v, want 0", d)
	}
}

// TestConcurrentRecordAndScrape hammers one registry from recording
// goroutines (including concurrent first-time registrations) while the
// main goroutine scrapes both expositions. Run under -race this is the
// lock-free hot path's correctness test; the final assertions check no
// increment was lost.
func TestConcurrentRecordAndScrape(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("pane_test_ops_total", "h", L("worker", strconv.Itoa(w)))
			g := r.Gauge("pane_test_inflight", "h")
			h := r.Histogram("pane_test_duration_seconds", "h")
			for i := 0; i < perWorker; i++ {
				g.Add(1)
				c.Inc()
				h.Observe(time.Duration(i) * time.Microsecond)
				// First-touch registration racing against scrapes and
				// against the same registration from other workers.
				r.Counter("pane_test_shared_total", "h", L("i", strconv.Itoa(i%5))).Inc()
				g.Add(-1)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatalf("scrape during writes: %v", err)
		}
		_ = r.Snapshot()
		select {
		case <-done:
			var total uint64
			for w := 0; w < workers; w++ {
				total += r.Counter("pane_test_ops_total", "h", L("worker", strconv.Itoa(w))).Value()
			}
			if total != workers*perWorker {
				t.Fatalf("lost increments: %d, want %d", total, workers*perWorker)
			}
			if h := r.Histogram("pane_test_duration_seconds", "h"); h.Count() != workers*perWorker {
				t.Fatalf("lost observations: %d, want %d", h.Count(), workers*perWorker)
			}
			var shared uint64
			for i := 0; i < 5; i++ {
				shared += r.Counter("pane_test_shared_total", "h", L("i", strconv.Itoa(i))).Value()
			}
			if shared != workers*perWorker {
				t.Fatalf("lost increments on racing registrations: %d, want %d", shared, workers*perWorker)
			}
			if g := r.Gauge("pane_test_inflight", "h").Value(); g != 0 {
				t.Fatalf("gauge did not settle to 0: %v", g)
			}
			return
		default:
		}
	}
}
