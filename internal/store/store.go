// Package store provides compact binary serialization for the repository's
// large artifacts — CSR graphs, embedding matrices, and whole model
// bundles — so pipelines can persist a 10⁸-edge graph or a 10⁷-row
// embedding without the 3-4x size and parse cost of the text formats. The
// format is little-endian, versioned, and self-describing enough to fail
// loudly on corruption.
package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"pane/internal/mat"
	"pane/internal/sparse"
)

// Magic numbers identify the artifact kinds.
const (
	magicCSR   = 0x43535231 // "CSR1"
	magicDense = 0x444E5331 // "DNS1"
)

var order = binary.LittleEndian

// WriteCSR serializes m.
func WriteCSR(w io.Writer, m *sparse.CSR) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if err := writeCSR(bw, m); err != nil {
		return err
	}
	return bw.Flush()
}

// writeCSR writes the CSR section to w without buffering or flushing,
// so sections can be composed on one stream (see bundle.go).
func writeCSR(w io.Writer, m *sparse.CSR) error {
	hdr := []uint64{magicCSR, uint64(m.R), uint64(m.C), uint64(m.NNZ())}
	if err := binary.Write(w, order, hdr); err != nil {
		return err
	}
	// One bulk write for the row pointers: binary.Write on a []uint64 hits
	// encoding/binary's fast path, vs a reflection round trip per element.
	ptr := make([]uint64, len(m.RowPtr))
	for i, p := range m.RowPtr {
		ptr[i] = uint64(p)
	}
	if err := binary.Write(w, order, ptr); err != nil {
		return err
	}
	if err := binary.Write(w, order, m.Cols); err != nil {
		return err
	}
	return binary.Write(w, order, m.Vals)
}

// ReadCSR deserializes a CSR written by WriteCSR.
func ReadCSR(r io.Reader) (*sparse.CSR, error) {
	return readCSR(bufio.NewReaderSize(r, 1<<20))
}

// readCSR reads exactly one CSR section from r. It performs only exact-
// length reads (no readahead), so it is safe on a shared stream.
func readCSR(r io.Reader) (*sparse.CSR, error) {
	hdr := make([]uint64, 4)
	if err := binary.Read(r, order, hdr); err != nil {
		return nil, fmt.Errorf("store: reading CSR header: %w", err)
	}
	magic, rows, cols, nnz := hdr[0], hdr[1], hdr[2], hdr[3]
	if magic != magicCSR {
		return nil, fmt.Errorf("store: bad CSR magic %#x", magic)
	}
	const limit = 1 << 33 // 8G entries: sanity bound against corruption
	if rows > limit || cols > limit || nnz > limit {
		return nil, fmt.Errorf("store: implausible CSR dimensions %dx%d nnz=%d", rows, cols, nnz)
	}
	m := &sparse.CSR{
		R: int(rows), C: int(cols),
		RowPtr: make([]int, rows+1),
		Cols:   make([]int32, nnz),
		Vals:   make([]float64, nnz),
	}
	ptr := make([]uint64, rows+1)
	if err := binary.Read(r, order, ptr); err != nil {
		return nil, fmt.Errorf("store: reading row pointers: %w", err)
	}
	for i, v := range ptr {
		m.RowPtr[i] = int(v)
	}
	if m.RowPtr[rows] != int(nnz) {
		return nil, fmt.Errorf("store: row pointer tail %d != nnz %d", m.RowPtr[rows], nnz)
	}
	if err := binary.Read(r, order, m.Cols); err != nil {
		return nil, fmt.Errorf("store: reading columns: %w", err)
	}
	if err := binary.Read(r, order, m.Vals); err != nil {
		return nil, fmt.Errorf("store: reading values: %w", err)
	}
	for i, c := range m.Cols {
		if c < 0 || uint64(c) >= cols {
			return nil, fmt.Errorf("store: column %d out of range at entry %d", c, i)
		}
	}
	return m, nil
}

// WriteDense serializes m.
func WriteDense(w io.Writer, m *mat.Dense) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if err := writeDense(bw, m); err != nil {
		return err
	}
	return bw.Flush()
}

// writeDense writes the dense section to w without buffering or flushing.
func writeDense(w io.Writer, m *mat.Dense) error {
	hdr := []uint64{magicDense, uint64(m.Rows), uint64(m.Cols)}
	if err := binary.Write(w, order, hdr); err != nil {
		return err
	}
	return binary.Write(w, order, m.Data)
}

// ReadDense deserializes a matrix written by WriteDense.
func ReadDense(r io.Reader) (*mat.Dense, error) {
	return readDense(bufio.NewReaderSize(r, 1<<20))
}

// readDense reads exactly one dense section from r with exact-length reads.
func readDense(r io.Reader) (*mat.Dense, error) {
	hdr := make([]uint64, 3)
	if err := binary.Read(r, order, hdr); err != nil {
		return nil, fmt.Errorf("store: reading dense header: %w", err)
	}
	magic, rows, cols := hdr[0], hdr[1], hdr[2]
	if magic != magicDense {
		return nil, fmt.Errorf("store: bad dense magic %#x", magic)
	}
	if rows > math.MaxInt32 || cols > math.MaxInt32 || rows*cols > 1<<33 {
		return nil, fmt.Errorf("store: implausible dense dimensions %dx%d", rows, cols)
	}
	m := mat.New(int(rows), int(cols))
	if err := binary.Read(r, order, m.Data); err != nil {
		return nil, fmt.Errorf("store: reading dense data: %w", err)
	}
	return m, nil
}

// SaveDenseFile writes m to path atomically (temp file + rename).
func SaveDenseFile(path string, m *mat.Dense) error {
	return saveAtomic(path, func(w io.Writer) error { return WriteDense(w, m) })
}

// LoadDenseFile reads a matrix from path.
func LoadDenseFile(path string) (*mat.Dense, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadDense(f)
}

// SaveCSRFile writes m to path atomically.
func SaveCSRFile(path string, m *sparse.CSR) error {
	return saveAtomic(path, func(w io.Writer) error { return WriteCSR(w, m) })
}

// LoadCSRFile reads a CSR from path.
func LoadCSRFile(path string) (*sparse.CSR, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSR(f)
}

// saveAtomic writes via a temp file in path's directory and renames it
// into place, so readers never observe a partially written artifact. The
// temp name is unique per writer (os.CreateTemp), so concurrent saves to
// the same path never interleave into one torn file — whichever rename
// lands last wins with a complete artifact.
func saveAtomic(path string, write func(w io.Writer) error) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := f.Chmod(0o644); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
