// Package store provides compact binary serialization for the repository's
// large artifacts — CSR graphs and embedding matrices — so pipelines can
// persist a 10⁸-edge graph or a 10⁷-row embedding without the 3-4x size
// and parse cost of the text formats. The format is little-endian,
// versioned, and self-describing enough to fail loudly on corruption.
package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"pane/internal/mat"
	"pane/internal/sparse"
)

// Magic numbers identify the two artifact kinds.
const (
	magicCSR   = 0x43535231 // "CSR1"
	magicDense = 0x444E5331 // "DNS1"
)

var order = binary.LittleEndian

// WriteCSR serializes m.
func WriteCSR(w io.Writer, m *sparse.CSR) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	hdr := []uint64{magicCSR, uint64(m.R), uint64(m.C), uint64(m.NNZ())}
	for _, v := range hdr {
		if err := binary.Write(bw, order, v); err != nil {
			return err
		}
	}
	for _, p := range m.RowPtr {
		if err := binary.Write(bw, order, uint64(p)); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, order, m.Cols); err != nil {
		return err
	}
	if err := binary.Write(bw, order, m.Vals); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadCSR deserializes a CSR written by WriteCSR.
func ReadCSR(r io.Reader) (*sparse.CSR, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic, rows, cols, nnz uint64
	for _, p := range []*uint64{&magic, &rows, &cols, &nnz} {
		if err := binary.Read(br, order, p); err != nil {
			return nil, fmt.Errorf("store: reading CSR header: %w", err)
		}
	}
	if magic != magicCSR {
		return nil, fmt.Errorf("store: bad CSR magic %#x", magic)
	}
	const limit = 1 << 33 // 8G entries: sanity bound against corruption
	if rows > limit || cols > limit || nnz > limit {
		return nil, fmt.Errorf("store: implausible CSR dimensions %dx%d nnz=%d", rows, cols, nnz)
	}
	m := &sparse.CSR{
		R: int(rows), C: int(cols),
		RowPtr: make([]int, rows+1),
		Cols:   make([]int32, nnz),
		Vals:   make([]float64, nnz),
	}
	for i := range m.RowPtr {
		var v uint64
		if err := binary.Read(br, order, &v); err != nil {
			return nil, fmt.Errorf("store: reading row pointers: %w", err)
		}
		m.RowPtr[i] = int(v)
	}
	if m.RowPtr[rows] != int(nnz) {
		return nil, fmt.Errorf("store: row pointer tail %d != nnz %d", m.RowPtr[rows], nnz)
	}
	if err := binary.Read(br, order, m.Cols); err != nil {
		return nil, fmt.Errorf("store: reading columns: %w", err)
	}
	if err := binary.Read(br, order, m.Vals); err != nil {
		return nil, fmt.Errorf("store: reading values: %w", err)
	}
	for i, c := range m.Cols {
		if c < 0 || uint64(c) >= cols {
			return nil, fmt.Errorf("store: column %d out of range at entry %d", c, i)
		}
	}
	return m, nil
}

// WriteDense serializes m.
func WriteDense(w io.Writer, m *mat.Dense) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	hdr := []uint64{magicDense, uint64(m.Rows), uint64(m.Cols)}
	for _, v := range hdr {
		if err := binary.Write(bw, order, v); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, order, m.Data); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadDense deserializes a matrix written by WriteDense.
func ReadDense(r io.Reader) (*mat.Dense, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic, rows, cols uint64
	for _, p := range []*uint64{&magic, &rows, &cols} {
		if err := binary.Read(br, order, p); err != nil {
			return nil, fmt.Errorf("store: reading dense header: %w", err)
		}
	}
	if magic != magicDense {
		return nil, fmt.Errorf("store: bad dense magic %#x", magic)
	}
	if rows > math.MaxInt32 || cols > math.MaxInt32 || rows*cols > 1<<33 {
		return nil, fmt.Errorf("store: implausible dense dimensions %dx%d", rows, cols)
	}
	m := mat.New(int(rows), int(cols))
	if err := binary.Read(br, order, m.Data); err != nil {
		return nil, fmt.Errorf("store: reading dense data: %w", err)
	}
	return m, nil
}

// SaveDenseFile writes m to path atomically (temp file + rename).
func SaveDenseFile(path string, m *mat.Dense) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := WriteDense(f, m); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadDenseFile reads a matrix from path.
func LoadDenseFile(path string) (*mat.Dense, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadDense(f)
}

// SaveCSRFile writes m to path atomically.
func SaveCSRFile(path string, m *sparse.CSR) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := WriteCSR(f, m); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadCSRFile reads a CSR from path.
func LoadCSRFile(path string) (*sparse.CSR, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSR(f)
}
