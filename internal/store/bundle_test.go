package store

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"

	"pane/internal/core"
	"pane/internal/mat"
	"pane/internal/sparse"
)

func testBundle(withLabels bool) *Bundle {
	rng := rand.New(rand.NewSource(7))
	randDense := func(r, c int) *mat.Dense {
		m := mat.New(r, c)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		return m
	}
	n, d, half := 5, 3, 2
	adj := sparse.NewCSR(n, n, []sparse.Entry{
		{Row: 0, Col: 1, Val: 1}, {Row: 1, Col: 2, Val: 1},
		{Row: 2, Col: 0, Val: 1}, {Row: 3, Col: 4, Val: 1},
	})
	attr := sparse.NewCSR(n, d, []sparse.Entry{
		{Row: 0, Col: 0, Val: 0.5}, {Row: 1, Col: 2, Val: 2},
		{Row: 4, Col: 1, Val: 1},
	})
	b := &Bundle{
		ModelVersion: 42,
		Cfg:          core.Config{K: 2 * half, Alpha: 0.5, Eps: 0.015, Threads: 3, Seed: 9},
		Xf:           randDense(n, half),
		Xb:           randDense(n, half),
		Y:            randDense(d, half),
		Adj:          adj,
		Attr:         attr,
	}
	if withLabels {
		b.Labels = [][]int{{0}, {1, 2}, {}, {0, 1}, {}}
	}
	return b
}

func TestBundleRoundTrip(t *testing.T) {
	for _, withLabels := range []bool{false, true} {
		b := testBundle(withLabels)
		var buf bytes.Buffer
		if err := WriteBundle(&buf, b); err != nil {
			t.Fatal(err)
		}
		got, err := ReadBundle(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if got.ModelVersion != 42 {
			t.Fatalf("version %d", got.ModelVersion)
		}
		if got.Cfg != b.Cfg {
			t.Fatalf("config %+v != %+v", got.Cfg, b.Cfg)
		}
		for name, pair := range map[string][2]*mat.Dense{
			"Xf": {got.Xf, b.Xf}, "Xb": {got.Xb, b.Xb}, "Y": {got.Y, b.Y},
		} {
			if !pair[0].Equal(pair[1], 0) {
				t.Fatalf("%s not bit-equal after round trip", name)
			}
		}
		if got.Adj.NNZ() != b.Adj.NNZ() || got.Attr.NNZ() != b.Attr.NNZ() {
			t.Fatal("CSR nnz changed")
		}
		if withLabels {
			if len(got.Labels) != 5 || len(got.Labels[1]) != 2 || got.Labels[3][1] != 1 {
				t.Fatalf("labels %v", got.Labels)
			}
		} else if got.Labels != nil {
			t.Fatalf("labels should be nil, got %v", got.Labels)
		}

		// Deterministic: re-serializing the read bundle is byte-identical.
		var buf2 bytes.Buffer
		if err := WriteBundle(&buf2, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatal("bundle serialization not deterministic")
		}
	}
}

func TestBundleIndexMetaRoundTrip(t *testing.T) {
	b := testBundle(false)
	b.Index = &IndexMeta{IVF: true, NList: 128, NProbe: 16, Seed: -7, Shards: 8}
	var buf bytes.Buffer
	if err := WriteBundle(&buf, b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBundle(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Index == nil || *got.Index != *b.Index {
		t.Fatalf("index meta %+v, want %+v", got.Index, b.Index)
	}
	var buf2 bytes.Buffer
	if err := WriteBundle(&buf2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("index meta serialization not deterministic")
	}
}

func TestBundleReadsFormatV1(t *testing.T) {
	// A v1 bundle is exactly a current bundle without the trailing index
	// and quantized-payload sections and with format word 1. Readers must
	// keep accepting it.
	b := testBundle(true)
	var buf bytes.Buffer
	if err := WriteBundle(&buf, b); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	v1 := append([]byte(nil), raw[:len(raw)-16]...) // drop index + quant presence words
	order.PutUint64(v1[8:16], 1)                    // format version field
	got, err := ReadBundle(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("v1 bundle rejected: %v", err)
	}
	if got.Index != nil || got.Quant != nil {
		t.Fatalf("v1 bundle grew sections: %+v %+v", got.Index, got.Quant)
	}
	if got.ModelVersion != b.ModelVersion || !got.Xf.Equal(b.Xf, 0) {
		t.Fatal("v1 payload mangled")
	}
}

func TestBundleReadsFormatV2(t *testing.T) {
	// A v2 bundle carries the index section WITHOUT the trailing
	// shard/quantize/rerank words (and no quantized payload). Build one
	// from a current bundle by dropping those four words and rewriting
	// the format word; the reader must accept it and default the shard
	// count to 0 (unsharded).
	b := testBundle(false)
	b.Index = &IndexMeta{IVF: true, NList: 64, NProbe: 8, Seed: 5, Shards: 4}
	var buf bytes.Buffer
	if err := WriteBundle(&buf, b); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	v2 := append([]byte(nil), raw[:len(raw)-32]...) // drop shard+quantize+rerank+quant words
	order.PutUint64(v2[8:16], 2)                    // format version field
	got, err := ReadBundle(bytes.NewReader(v2))
	if err != nil {
		t.Fatalf("v2 bundle rejected: %v", err)
	}
	want := *b.Index
	want.Shards = 0
	if got.Index == nil || *got.Index != want {
		t.Fatalf("v2 index meta %+v, want %+v", got.Index, want)
	}
	if !got.Xf.Equal(b.Xf, 0) {
		t.Fatal("v2 payload mangled")
	}
}

func TestBundleReadsFormatV3(t *testing.T) {
	// A v3 bundle ends after the shard word: no quantize/rerank words, no
	// quantized payload. The reader must default both to "unquantized".
	b := testBundle(false)
	b.Index = &IndexMeta{IVF: true, NList: 64, NProbe: 8, Seed: 5, Shards: 4, Quantize: true, Rerank: 6}
	var buf bytes.Buffer
	if err := WriteBundle(&buf, b); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	v3 := append([]byte(nil), raw[:len(raw)-24]...) // drop quantize+rerank+quant words
	order.PutUint64(v3[8:16], 3)                    // format version field
	got, err := ReadBundle(bytes.NewReader(v3))
	if err != nil {
		t.Fatalf("v3 bundle rejected: %v", err)
	}
	want := *b.Index
	want.Quantize, want.Rerank = false, 0
	if got.Index == nil || *got.Index != want {
		t.Fatalf("v3 index meta %+v, want %+v", got.Index, want)
	}
	if got.Quant != nil {
		t.Fatalf("v3 bundle grew a quantized payload")
	}
	if !got.Xf.Equal(b.Xf, 0) {
		t.Fatal("v3 payload mangled")
	}
}

func TestBundleQuantPayloadRoundTrip(t *testing.T) {
	b := testBundle(false)
	n, d, half := b.Xf.Rows, b.Y.Rows, b.Xf.Cols
	b.Index = &IndexMeta{IVF: true, NList: 4, NProbe: 2, Seed: 1, Shards: 2, Quantize: true, Rerank: 3}
	mk := func(rows int) QuantizedMatrix {
		qm := QuantizedMatrix{Rows: rows, Dim: half,
			Codes: make([]int8, rows*half),
			Scale: make([]float32, rows), Base: make([]float32, rows)}
		for i := range qm.Codes {
			qm.Codes[i] = int8(i*7 - 100)
		}
		for i := range qm.Scale {
			qm.Scale[i] = float32(i) * 0.25
			qm.Base[i] = float32(i) - 1.5
		}
		return qm
	}
	b.Quant = &QuantPayload{Links: mk(n), Attrs: mk(d)}
	var buf bytes.Buffer
	if err := WriteBundle(&buf, b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBundle(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Quant == nil {
		t.Fatal("payload lost")
	}
	for name, pair := range map[string][2]QuantizedMatrix{
		"links": {got.Quant.Links, b.Quant.Links}, "attrs": {got.Quant.Attrs, b.Quant.Attrs},
	} {
		g, w := pair[0], pair[1]
		if g.Rows != w.Rows || g.Dim != w.Dim {
			t.Fatalf("%s shape %dx%d", name, g.Rows, g.Dim)
		}
		for i := range w.Codes {
			if g.Codes[i] != w.Codes[i] {
				t.Fatalf("%s code %d differs", name, i)
			}
		}
		for i := range w.Scale {
			if g.Scale[i] != w.Scale[i] || g.Base[i] != w.Base[i] {
				t.Fatalf("%s params %d differ", name, i)
			}
		}
	}
	// Deterministic resave.
	var buf2 bytes.Buffer
	if err := WriteBundle(&buf2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("quantized payload serialization not deterministic")
	}
	// A payload whose shape disagrees with the model must be rejected.
	b.Quant.Links.Rows = n + 1
	b.Quant.Links.Codes = make([]int8, (n+1)*half)
	b.Quant.Links.Scale = make([]float32, n+1)
	b.Quant.Links.Base = make([]float32, n+1)
	var bad bytes.Buffer
	if err := WriteBundle(&bad, b); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBundle(bytes.NewReader(bad.Bytes())); err == nil {
		t.Fatal("mismatched quantized payload accepted")
	}
}

func TestBundleReadsFormatV4(t *testing.T) {
	// A v4 bundle carries the quantize/rerank words and the quantized
	// payload but predates the fp16 flag and half payload. Build one from
	// a current bundle by cutting the fp16 flag word out of the index
	// section, dropping the trailing half-presence word, and rewriting the
	// format word; the reader must accept it with FP16 false and no half
	// payload.
	b := testBundle(false)
	n, d, half := b.Xf.Rows, b.Y.Rows, b.Xf.Cols
	b.Index = &IndexMeta{IVF: true, NList: 4, NProbe: 2, Seed: 1, Shards: 2, Quantize: true, Rerank: 3}
	qm := func(rows int) QuantizedMatrix {
		m := QuantizedMatrix{Rows: rows, Dim: half,
			Codes: make([]int8, rows*half),
			Scale: make([]float32, rows), Base: make([]float32, rows)}
		for i := range m.Codes {
			m.Codes[i] = int8(i*3 - 7)
		}
		for i := range m.Scale {
			m.Scale[i] = float32(i) * 0.5
			m.Base[i] = float32(i)
		}
		return m
	}
	b.Quant = &QuantPayload{Links: qm(n), Attrs: qm(d)}
	var buf bytes.Buffer
	if err := WriteBundle(&buf, b); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Current layout tail: [fp16 flag word][quant section][half word].
	var qbuf bytes.Buffer
	if err := writeQuant(&qbuf, b.Quant); err != nil {
		t.Fatal(err)
	}
	cut := len(raw) - 8 - qbuf.Len() - 8 // start of the fp16 flag word
	v4 := append([]byte(nil), raw[:cut]...)
	v4 = append(v4, raw[cut+8:len(raw)-8]...) // keep quant, drop half word
	order.PutUint64(v4[8:16], 4)              // format version field
	got, err := ReadBundle(bytes.NewReader(v4))
	if err != nil {
		t.Fatalf("v4 bundle rejected: %v", err)
	}
	want := *b.Index
	want.FP16 = false
	if got.Index == nil || *got.Index != want {
		t.Fatalf("v4 index meta %+v, want %+v", got.Index, want)
	}
	if got.Half != nil {
		t.Fatal("v4 bundle grew an fp16 payload")
	}
	if got.Quant == nil || got.Quant.Links.Rows != n || got.Quant.Attrs.Rows != d {
		t.Fatalf("v4 quantized payload mangled: %+v", got.Quant)
	}
	for i, c := range b.Quant.Links.Codes {
		if got.Quant.Links.Codes[i] != c {
			t.Fatalf("v4 quant code %d differs", i)
		}
	}
	if !got.Xf.Equal(b.Xf, 0) {
		t.Fatal("v4 payload mangled")
	}
}

func TestBundleHalfPayloadRoundTrip(t *testing.T) {
	b := testBundle(false)
	n, d, half := b.Xf.Rows, b.Y.Rows, b.Xf.Cols
	b.Index = &IndexMeta{IVF: true, NList: 4, NProbe: 2, Seed: 1, Shards: 2, FP16: true}
	mk := func(rows int) HalfMatrix {
		hm := HalfMatrix{Rows: rows, Dim: half, Codes: make([]uint16, rows*half)}
		for i := range hm.Codes {
			hm.Codes[i] = uint16(i*0x1234 + 0x3C00) // arbitrary bit patterns incl. high bits
		}
		return hm
	}
	b.Half = &HalfPayload{Links: mk(n), Attrs: mk(d)}
	var buf bytes.Buffer
	if err := WriteBundle(&buf, b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBundle(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Half == nil {
		t.Fatal("fp16 payload lost")
	}
	if got.Index == nil || !got.Index.FP16 {
		t.Fatalf("fp16 flag lost: %+v", got.Index)
	}
	for name, pair := range map[string][2]HalfMatrix{
		"links": {got.Half.Links, b.Half.Links}, "attrs": {got.Half.Attrs, b.Half.Attrs},
	} {
		g, w := pair[0], pair[1]
		if g.Rows != w.Rows || g.Dim != w.Dim {
			t.Fatalf("%s shape %dx%d", name, g.Rows, g.Dim)
		}
		for i := range w.Codes {
			if g.Codes[i] != w.Codes[i] {
				t.Fatalf("%s code %d differs", name, i)
			}
		}
	}
	// Deterministic resave.
	var buf2 bytes.Buffer
	if err := WriteBundle(&buf2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("fp16 payload serialization not deterministic")
	}
	// A payload whose shape disagrees with the model must be rejected.
	b.Half.Links.Rows = n + 1
	b.Half.Links.Codes = make([]uint16, (n+1)*half)
	var bad bytes.Buffer
	if err := WriteBundle(&bad, b); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBundle(bytes.NewReader(bad.Bytes())); err == nil {
		t.Fatal("mismatched fp16 payload accepted")
	}
}

func TestBundleFileAtomicSave(t *testing.T) {
	b := testBundle(true)
	path := filepath.Join(t.TempDir(), "m.pane")
	if err := SaveBundleFile(path, b); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBundleFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.ModelVersion != b.ModelVersion || !got.Xf.Equal(b.Xf, 0) {
		t.Fatal("file round trip changed the bundle")
	}
}

func TestBundleRejectsCorruption(t *testing.T) {
	b := testBundle(false)
	var buf bytes.Buffer
	if err := WriteBundle(&buf, b); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Bad magic.
	bad := append([]byte(nil), raw...)
	bad[0] ^= 0xFF
	if _, err := ReadBundle(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupt magic accepted")
	}
	// Bad format version.
	bad = append([]byte(nil), raw...)
	bad[8] = 99
	if _, err := ReadBundle(bytes.NewReader(bad)); err == nil {
		t.Fatal("future format version accepted")
	}
	// Truncation anywhere must error, never panic.
	for _, cut := range []int{10, len(raw) / 2, len(raw) - 3} {
		if _, err := ReadBundle(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Invalid config (K = 0) must be rejected by validation.
	bad = append([]byte(nil), raw...)
	for i := 24; i < 32; i++ { // K field, little-endian
		bad[i] = 0
	}
	if _, err := ReadBundle(bytes.NewReader(bad)); err == nil {
		t.Fatal("zero K accepted")
	}
}

func TestReadLabelsRejectsOverflowingCounts(t *testing.T) {
	// Per-node counts of 2^63 sum (mod 2^64) to 0: a naive total check
	// passes and make() panics. The reader must error gracefully instead.
	var buf bytes.Buffer
	for _, v := range []uint64{1, 2, 1 << 63, 1 << 63} { // present, n, counts...
		if err := binaryWriteU64(&buf, v); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := readLabels(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("overflowing label counts accepted")
	}
	// A giant node count must be rejected before allocating the counts slice.
	buf.Reset()
	for _, v := range []uint64{1, 1 << 40} {
		if err := binaryWriteU64(&buf, v); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := readLabels(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("giant label count accepted")
	}
}

func binaryWriteU64(buf *bytes.Buffer, v uint64) error {
	var b [8]byte
	order.PutUint64(b[:], v)
	_, err := buf.Write(b[:])
	return err
}
