package store

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"

	"pane/internal/mat"
	"pane/internal/sparse"
)

func randomCSR(rng *rand.Rand, r, c int, density float64) *sparse.CSR {
	var entries []sparse.Entry
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if rng.Float64() < density {
				entries = append(entries, sparse.Entry{Row: i, Col: j, Val: rng.NormFloat64()})
			}
		}
	}
	return sparse.NewCSR(r, c, entries)
}

func TestCSRRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randomCSR(rng, 37, 23, 0.2)
	var buf bytes.Buffer
	if err := WriteCSR(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSR(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.R != m.R || got.C != m.C || got.NNZ() != m.NNZ() {
		t.Fatal("shape mismatch after round trip")
	}
	if !got.ToDense().Equal(m.ToDense(), 0) {
		t.Fatal("contents changed")
	}
}

func TestCSREmpty(t *testing.T) {
	m := sparse.NewCSR(5, 3, nil)
	var buf bytes.Buffer
	if err := WriteCSR(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSR(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NNZ() != 0 || got.R != 5 || got.C != 3 {
		t.Fatal("empty CSR round trip failed")
	}
}

func TestCSRBadMagic(t *testing.T) {
	var buf bytes.Buffer
	m := mat.New(2, 2)
	if err := WriteDense(&buf, m); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCSR(&buf); err == nil {
		t.Fatal("dense payload accepted as CSR")
	}
}

func TestCSRTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randomCSR(rng, 10, 10, 0.3)
	var buf bytes.Buffer
	if err := WriteCSR(&buf, m); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadCSR(bytes.NewReader(cut)); err == nil {
		t.Fatal("truncated CSR accepted")
	}
}

func TestDenseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := mat.New(19, 7)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	var buf bytes.Buffer
	if err := WriteDense(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDense(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m, 0) {
		t.Fatal("dense round trip changed values")
	}
}

func TestDenseBadMagic(t *testing.T) {
	var buf bytes.Buffer
	m := sparse.NewCSR(1, 1, []sparse.Entry{{Row: 0, Col: 0, Val: 1}})
	if err := WriteCSR(&buf, m); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDense(&buf); err == nil {
		t.Fatal("CSR payload accepted as dense")
	}
}

func TestFileHelpers(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(4))
	d := mat.New(6, 4)
	for i := range d.Data {
		d.Data[i] = rng.Float64()
	}
	dp := filepath.Join(dir, "m.dense")
	if err := SaveDenseFile(dp, d); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDenseFile(dp)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(d, 0) {
		t.Fatal("dense file round trip failed")
	}
	c := randomCSR(rng, 8, 8, 0.4)
	cp := filepath.Join(dir, "m.csr")
	if err := SaveCSRFile(cp, c); err != nil {
		t.Fatal(err)
	}
	gotC, err := LoadCSRFile(cp)
	if err != nil {
		t.Fatal(err)
	}
	if !gotC.ToDense().Equal(c.ToDense(), 0) {
		t.Fatal("CSR file round trip failed")
	}
	if _, err := LoadDenseFile(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestCSRColumnRangeValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := randomCSR(rng, 6, 6, 0.5)
	var buf bytes.Buffer
	if err := WriteCSR(&buf, m); err != nil {
		t.Fatal(err)
	}
	// Corrupt a column index beyond the declared width.
	raw := buf.Bytes()
	// Header: 4x8 bytes; row pointers: 7x8 bytes; columns follow (int32).
	colOff := 32 + 56
	raw[colOff] = 0xFF
	raw[colOff+1] = 0xFF
	raw[colOff+2] = 0xFF
	raw[colOff+3] = 0x7F
	if _, err := ReadCSR(bytes.NewReader(raw)); err == nil {
		t.Fatal("corrupt column index accepted")
	}
}
