package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"pane/internal/core"
	"pane/internal/mat"
	"pane/internal/sparse"
)

// A Bundle is a complete serialized model: everything needed to serve
// queries AND keep applying dynamic updates after a restart. The seed
// repo persisted a model as three unrelated matrix files, which loses the
// graph (so no further updates), the hyperparameters (so no consistent
// warm restarts), and any notion of which version of a live model the
// files represent. A bundle is one file, written atomically, with:
//
//	magic "PNB1" + format version
//	model version (monotone counter bumped by every dynamic update)
//	core.Config (all hyperparameters)
//	optional per-node label sets
//	Xf, Xb, Y dense sections
//	adjacency and attribute CSR sections
//	optional serving-index configuration (format version 2; format
//	version 3 appends the shard layout; format version 4 the quantize
//	flag and re-rank multiplier; format version 5 the fp16 flag)
//	optional SQ8 quantized payload: per-row codes + scale/base vectors
//	of the candidate matrices (format version 4)
//	optional fp16 payload: binary16 codes of the candidate matrices
//	(format version 5)
//
// Serialization is deterministic: saving a loaded current-format bundle
// reproduces the input byte for byte, which snapshot tests rely on. (A
// loaded format-1 through format-4 bundle re-saves as format 5, so only
// its payload — not its bytes — survives the round trip.)
type Bundle struct {
	ModelVersion uint64
	Cfg          core.Config
	Xf, Xb, Y    *mat.Dense
	Adj, Attr    *sparse.CSR
	Labels       [][]int
	// Index optionally records the serving-index configuration so a
	// restored server rebuilds the same index without re-specifying it.
	// The index structures themselves are never persisted — they are
	// derived state, cheaply rebuilt from the embeddings on load.
	Index *IndexMeta
	// Quant optionally carries the SQ8 encodings of the candidate
	// matrices (format version 4). Like Index it is derived state — a
	// loader that drops it just re-quantizes, bit-identically — but
	// persisting it lets a restored server publish its quantized tier
	// without the extra pass, and gives the format a place to verify the
	// encoding survived the round trip.
	Quant *QuantPayload
	// Half optionally carries the binary16 encodings of the candidate
	// matrices (format version 5), with the same derived-state contract
	// as Quant: droppable (a loader just re-encodes, bit-identically),
	// but persisting it lets a restored server publish its fp16 tier
	// without the extra pass.
	Half *HalfPayload
}

// IndexMeta mirrors engine.IndexConfig for persistence (raw configured
// values, not resolved defaults, so round trips are exact). Thread counts
// are deliberately excluded: they are host properties, not model state.
type IndexMeta struct {
	IVF    bool
	NList  int
	NProbe int
	Seed   int64
	// Shards records the serving-shard count (format version 3); 0 means
	// unsharded, matching engine.IndexConfig's "values <= 1 mean one".
	Shards int
	// Quantize and Rerank record the SQ8 tier configuration (format
	// version 4): whether the quantized backends are built, and their
	// exact-re-rank survivor multiplier (0 means the index default).
	Quantize bool
	Rerank   int
	// FP16 records whether the half-precision tier is built (format
	// version 5).
	FP16 bool
}

// QuantizedMatrix is one candidate matrix's per-row SQ8 encoding as
// index.QuantizeRows produces it: Rows*Dim int8 codes row-major, and a
// (scale, base) float32 pair per row. Because the encoding is per-row,
// any contiguous row range of it equals the encoding of that shard's rows
// — which is how a sharded engine consumes one flat payload.
type QuantizedMatrix struct {
	Rows, Dim   int
	Codes       []int8
	Scale, Base []float32
}

// QuantPayload carries the SQ8 encodings of both candidate spaces: the
// link transform Z = Xb·G and the attribute matrix Y.
type QuantPayload struct {
	Links, Attrs QuantizedMatrix
}

// HalfMatrix is one candidate matrix's binary16 encoding as
// index.EncodeFP16Rows produces it: Rows*Dim uint16 code words,
// row-major. The encoding is per element, so any contiguous row range of
// it equals the encoding of that shard's rows — the same slice property
// the quantized payload has, and how a sharded engine consumes one flat
// payload.
type HalfMatrix struct {
	Rows, Dim int
	Codes     []uint16
}

// HalfPayload carries the binary16 encodings of both candidate spaces:
// the link transform Z = Xb·G and the attribute matrix Y.
type HalfPayload struct {
	Links, Attrs HalfMatrix
}

const (
	magicBundle = 0x504E4231 // "PNB1"
	// bundleFormatV is the version written; versions 1 (no index
	// section), 2 (index section without the shard word), 3 (no
	// quantize/rerank words, no quantized payload), and 4 (no fp16 flag
	// or payload) are still read.
	bundleFormatV = 5
)

// WriteBundle serializes b to w.
func WriteBundle(w io.Writer, b *Bundle) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	hdr := []uint64{
		magicBundle, bundleFormatV, b.ModelVersion,
		uint64(b.Cfg.K),
		math.Float64bits(b.Cfg.Alpha),
		math.Float64bits(b.Cfg.Eps),
		uint64(b.Cfg.Threads),
		uint64(b.Cfg.CCDIters),
		uint64(b.Cfg.PowerIters),
		uint64(b.Cfg.Seed),
	}
	if err := binary.Write(bw, order, hdr); err != nil {
		return err
	}
	if err := writeLabels(bw, b.Labels); err != nil {
		return err
	}
	for _, m := range []*mat.Dense{b.Xf, b.Xb, b.Y} {
		if err := writeDense(bw, m); err != nil {
			return err
		}
	}
	for _, m := range []*sparse.CSR{b.Adj, b.Attr} {
		if err := writeCSR(bw, m); err != nil {
			return err
		}
	}
	if err := writeIndexMeta(bw, b.Index); err != nil {
		return err
	}
	if err := writeQuant(bw, b.Quant); err != nil {
		return err
	}
	if err := writeHalf(bw, b.Half); err != nil {
		return err
	}
	return bw.Flush()
}

// writeIndexMeta encodes the optional serving-index section: a presence
// flag, then the configuration words. Negative tuning values mean "use
// defaults" everywhere they are consumed, so they are normalized to 0
// here — every bundle this writes must be loadable, and readIndexMeta
// rejects negative words.
func writeIndexMeta(w io.Writer, im *IndexMeta) error {
	if im == nil {
		return binary.Write(w, order, uint64(0))
	}
	flag := func(b bool) uint64 {
		if b {
			return 1
		}
		return 0
	}
	nlist, nprobe, shards, rerank := im.NList, im.NProbe, im.Shards, im.Rerank
	if nlist < 0 {
		nlist = 0
	}
	if nprobe < 0 {
		nprobe = 0
	}
	if shards < 0 {
		shards = 0
	}
	if rerank < 0 {
		rerank = 0
	}
	return binary.Write(w, order, []uint64{
		1, flag(im.IVF), uint64(nlist), uint64(nprobe), uint64(im.Seed), uint64(shards),
		flag(im.Quantize), uint64(rerank), flag(im.FP16),
	})
}

// readIndexMeta decodes the index section of a format-`version` bundle:
// version 2 carries four configuration words, version 3 appends the
// shard count (absent means 0, i.e. unsharded), version 4 the quantize
// flag and re-rank multiplier (absent means unquantized), version 5 the
// fp16 flag (absent means no half-precision tier).
func readIndexMeta(r io.Reader, version uint64) (*IndexMeta, error) {
	var present uint64
	if err := binary.Read(r, order, &present); err != nil {
		return nil, fmt.Errorf("store: reading index flag: %w", err)
	}
	if present == 0 {
		return nil, nil
	}
	nWords := 4
	if version >= 3 {
		nWords = 5
	}
	if version >= 4 {
		nWords = 7
	}
	if version >= 5 {
		nWords = 8
	}
	words := make([]uint64, nWords)
	if err := binary.Read(r, order, words); err != nil {
		return nil, fmt.Errorf("store: reading index config: %w", err)
	}
	im := &IndexMeta{
		IVF:    words[0] != 0,
		NList:  int(words[1]),
		NProbe: int(words[2]),
		Seed:   int64(words[3]),
	}
	if version >= 3 {
		im.Shards = int(words[4])
	}
	if version >= 4 {
		im.Quantize = words[5] != 0
		im.Rerank = int(words[6])
	}
	if version >= 5 {
		im.FP16 = words[7] != 0
	}
	if im.NList < 0 || im.NProbe < 0 || im.Shards < 0 || im.Rerank < 0 {
		return nil, fmt.Errorf("store: negative index config nlist=%d nprobe=%d shards=%d rerank=%d",
			im.NList, im.NProbe, im.Shards, im.Rerank)
	}
	return im, nil
}

// writeQuant encodes the optional quantized-payload section: a presence
// flag, then each matrix's shape, per-row parameters, and codes.
func writeQuant(w io.Writer, qp *QuantPayload) error {
	if qp == nil {
		return binary.Write(w, order, uint64(0))
	}
	if err := binary.Write(w, order, uint64(1)); err != nil {
		return err
	}
	for _, qm := range []*QuantizedMatrix{&qp.Links, &qp.Attrs} {
		if len(qm.Codes) != qm.Rows*qm.Dim || len(qm.Scale) != qm.Rows || len(qm.Base) != qm.Rows {
			return fmt.Errorf("store: quantized payload shape mismatch: %d codes, %d scales, %d bases for %dx%d",
				len(qm.Codes), len(qm.Scale), len(qm.Base), qm.Rows, qm.Dim)
		}
		if err := binary.Write(w, order, []uint64{uint64(qm.Rows), uint64(qm.Dim)}); err != nil {
			return err
		}
		for _, v := range [][]float32{qm.Scale, qm.Base} {
			if err := binary.Write(w, order, v); err != nil {
				return err
			}
		}
		if err := binary.Write(w, order, qm.Codes); err != nil {
			return err
		}
	}
	return nil
}

// readQuant decodes the quantized-payload section written by writeQuant.
func readQuant(r io.Reader) (*QuantPayload, error) {
	var present uint64
	if err := binary.Read(r, order, &present); err != nil {
		return nil, fmt.Errorf("store: reading quantized payload flag: %w", err)
	}
	if present == 0 {
		return nil, nil
	}
	qp := &QuantPayload{}
	for _, qm := range []*QuantizedMatrix{&qp.Links, &qp.Attrs} {
		shape := make([]uint64, 2)
		if err := binary.Read(r, order, shape); err != nil {
			return nil, fmt.Errorf("store: reading quantized payload shape: %w", err)
		}
		const limit = 1 << 33 // same sanity bound as the dense sections
		if shape[0] > limit || shape[1] > limit ||
			(shape[1] != 0 && shape[0] > limit/shape[1]) { // product bound, overflow-safe
			return nil, fmt.Errorf("store: implausible quantized payload %dx%d", shape[0], shape[1])
		}
		qm.Rows, qm.Dim = int(shape[0]), int(shape[1])
		qm.Scale = make([]float32, qm.Rows)
		qm.Base = make([]float32, qm.Rows)
		qm.Codes = make([]int8, qm.Rows*qm.Dim)
		for _, dst := range []interface{}{qm.Scale, qm.Base, qm.Codes} {
			if err := binary.Read(r, order, dst); err != nil {
				return nil, fmt.Errorf("store: reading quantized payload: %w", err)
			}
		}
	}
	return qp, nil
}

// writeHalf encodes the optional fp16-payload section: a presence flag,
// then each matrix's shape and binary16 code words.
func writeHalf(w io.Writer, hp *HalfPayload) error {
	if hp == nil {
		return binary.Write(w, order, uint64(0))
	}
	if err := binary.Write(w, order, uint64(1)); err != nil {
		return err
	}
	for _, hm := range []*HalfMatrix{&hp.Links, &hp.Attrs} {
		if len(hm.Codes) != hm.Rows*hm.Dim {
			return fmt.Errorf("store: fp16 payload shape mismatch: %d codes for %dx%d",
				len(hm.Codes), hm.Rows, hm.Dim)
		}
		if err := binary.Write(w, order, []uint64{uint64(hm.Rows), uint64(hm.Dim)}); err != nil {
			return err
		}
		if err := binary.Write(w, order, hm.Codes); err != nil {
			return err
		}
	}
	return nil
}

// readHalf decodes the fp16-payload section written by writeHalf.
func readHalf(r io.Reader) (*HalfPayload, error) {
	var present uint64
	if err := binary.Read(r, order, &present); err != nil {
		return nil, fmt.Errorf("store: reading fp16 payload flag: %w", err)
	}
	if present == 0 {
		return nil, nil
	}
	hp := &HalfPayload{}
	for _, hm := range []*HalfMatrix{&hp.Links, &hp.Attrs} {
		shape := make([]uint64, 2)
		if err := binary.Read(r, order, shape); err != nil {
			return nil, fmt.Errorf("store: reading fp16 payload shape: %w", err)
		}
		const limit = 1 << 33 // same sanity bound as the dense sections
		if shape[0] > limit || shape[1] > limit ||
			(shape[1] != 0 && shape[0] > limit/shape[1]) { // product bound, overflow-safe
			return nil, fmt.Errorf("store: implausible fp16 payload %dx%d", shape[0], shape[1])
		}
		hm.Rows, hm.Dim = int(shape[0]), int(shape[1])
		hm.Codes = make([]uint16, hm.Rows*hm.Dim)
		if err := binary.Read(r, order, hm.Codes); err != nil {
			return nil, fmt.Errorf("store: reading fp16 payload: %w", err)
		}
	}
	return hp, nil
}

// ReadBundle deserializes a bundle written by WriteBundle and validates
// that its parts agree with each other.
func ReadBundle(r io.Reader) (*Bundle, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	hdr := make([]uint64, 10)
	if err := binary.Read(br, order, hdr); err != nil {
		return nil, fmt.Errorf("store: reading bundle header: %w", err)
	}
	if hdr[0] != magicBundle {
		return nil, fmt.Errorf("store: bad bundle magic %#x", hdr[0])
	}
	if hdr[1] < 1 || hdr[1] > bundleFormatV {
		return nil, fmt.Errorf("store: unsupported bundle format version %d", hdr[1])
	}
	b := &Bundle{
		ModelVersion: hdr[2],
		Cfg: core.Config{
			K:          int(hdr[3]),
			Alpha:      math.Float64frombits(hdr[4]),
			Eps:        math.Float64frombits(hdr[5]),
			Threads:    int(hdr[6]),
			CCDIters:   int(hdr[7]),
			PowerIters: int(hdr[8]),
			Seed:       int64(hdr[9]),
		},
	}
	if err := b.Cfg.Validate(); err != nil {
		return nil, fmt.Errorf("store: bundle config: %w", err)
	}
	var err error
	if b.Labels, err = readLabels(br); err != nil {
		return nil, err
	}
	for _, dst := range []**mat.Dense{&b.Xf, &b.Xb, &b.Y} {
		if *dst, err = readDense(br); err != nil {
			return nil, err
		}
	}
	for _, dst := range []**sparse.CSR{&b.Adj, &b.Attr} {
		if *dst, err = readCSR(br); err != nil {
			return nil, err
		}
	}
	if hdr[1] >= 2 {
		if b.Index, err = readIndexMeta(br, hdr[1]); err != nil {
			return nil, err
		}
	}
	if hdr[1] >= 4 {
		if b.Quant, err = readQuant(br); err != nil {
			return nil, err
		}
	}
	if hdr[1] >= 5 {
		if b.Half, err = readHalf(br); err != nil {
			return nil, err
		}
	}
	return b, b.check()
}

// check cross-validates the bundle's sections.
func (b *Bundle) check() error {
	n, half := b.Xf.Rows, b.Xf.Cols
	switch {
	case b.Xb.Rows != n || b.Xb.Cols != half:
		return fmt.Errorf("store: bundle Xb %dx%d does not match Xf %dx%d", b.Xb.Rows, b.Xb.Cols, n, half)
	case b.Y.Cols != half:
		return fmt.Errorf("store: bundle Y width %d != k/2 = %d", b.Y.Cols, half)
	case 2*half != b.Cfg.K:
		return fmt.Errorf("store: bundle embedding width %d != config K %d", 2*half, b.Cfg.K)
	case b.Adj.R != n || b.Adj.C != n:
		return fmt.Errorf("store: bundle adjacency %dx%d != n=%d", b.Adj.R, b.Adj.C, n)
	case b.Attr.R != n || b.Attr.C != b.Y.Rows:
		return fmt.Errorf("store: bundle attribute matrix %dx%d != %dx%d", b.Attr.R, b.Attr.C, n, b.Y.Rows)
	case b.Labels != nil && len(b.Labels) != n:
		return fmt.Errorf("store: bundle labels length %d != n=%d", len(b.Labels), n)
	}
	if q := b.Quant; q != nil {
		// The link encoding covers Z = Xb·G (n rows, k/2 wide), the
		// attribute encoding Y itself.
		switch {
		case q.Links.Rows != n || q.Links.Dim != half:
			return fmt.Errorf("store: quantized link payload %dx%d does not match Z %dx%d",
				q.Links.Rows, q.Links.Dim, n, half)
		case q.Attrs.Rows != b.Y.Rows || q.Attrs.Dim != half:
			return fmt.Errorf("store: quantized attr payload %dx%d does not match Y %dx%d",
				q.Attrs.Rows, q.Attrs.Dim, b.Y.Rows, half)
		}
	}
	if h := b.Half; h != nil {
		// Same candidate spaces as the quantized payload: Links covers
		// Z = Xb·G, Attrs covers Y.
		switch {
		case h.Links.Rows != n || h.Links.Dim != half:
			return fmt.Errorf("store: fp16 link payload %dx%d does not match Z %dx%d",
				h.Links.Rows, h.Links.Dim, n, half)
		case h.Attrs.Rows != b.Y.Rows || h.Attrs.Dim != half:
			return fmt.Errorf("store: fp16 attr payload %dx%d does not match Y %dx%d",
				h.Attrs.Rows, h.Attrs.Dim, b.Y.Rows, half)
		}
	}
	return nil
}

// writeLabels encodes optional per-node label sets: a presence flag, then
// node count, per-node set sizes, and the flattened label values.
func writeLabels(w io.Writer, labels [][]int) error {
	if labels == nil {
		return binary.Write(w, order, uint64(0))
	}
	if err := binary.Write(w, order, uint64(1)); err != nil {
		return err
	}
	if err := binary.Write(w, order, uint64(len(labels))); err != nil {
		return err
	}
	counts := make([]uint64, len(labels))
	var total int
	for i, ls := range labels {
		counts[i] = uint64(len(ls))
		total += len(ls)
	}
	if err := binary.Write(w, order, counts); err != nil {
		return err
	}
	flat := make([]int64, 0, total)
	for _, ls := range labels {
		for _, l := range ls {
			flat = append(flat, int64(l))
		}
	}
	return binary.Write(w, order, flat)
}

func readLabels(r io.Reader) ([][]int, error) {
	var present uint64
	if err := binary.Read(r, order, &present); err != nil {
		return nil, fmt.Errorf("store: reading label flag: %w", err)
	}
	if present == 0 {
		return nil, nil
	}
	var n uint64
	if err := binary.Read(r, order, &n); err != nil {
		return nil, fmt.Errorf("store: reading label count: %w", err)
	}
	const limit = 1 << 31 // node count bound; keeps the counts slice small
	if n > limit {
		return nil, fmt.Errorf("store: implausible label count %d", n)
	}
	counts := make([]uint64, n)
	if err := binary.Read(r, order, counts); err != nil {
		return nil, fmt.Errorf("store: reading label sizes: %w", err)
	}
	// Bound each count and the running total inside the loop: a single
	// overflow-crafted count (or a sum that wraps uint64) must fail here,
	// not panic in make below.
	var total uint64
	for i, c := range counts {
		if c > 1<<33 {
			return nil, fmt.Errorf("store: implausible label size %d at node %d", c, i)
		}
		total += c
		if total > 1<<33 {
			return nil, fmt.Errorf("store: implausible label total %d", total)
		}
	}
	flat := make([]int64, total)
	if err := binary.Read(r, order, flat); err != nil {
		return nil, fmt.Errorf("store: reading labels: %w", err)
	}
	labels := make([][]int, n)
	off := 0
	for i, c := range counts {
		ls := make([]int, c)
		for j := range ls {
			ls[j] = int(flat[off])
			off++
		}
		labels[i] = ls
	}
	return labels, nil
}

// SaveBundleFile writes b to path atomically (temp file + rename), so a
// crash mid-snapshot never clobbers the previous good bundle.
func SaveBundleFile(path string, b *Bundle) error {
	return saveAtomic(path, func(w io.Writer) error { return WriteBundle(w, b) })
}

// LoadBundleFile reads a bundle from path.
func LoadBundleFile(path string) (*Bundle, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBundle(f)
}
