package ml

import (
	"math/rand"
	"testing"

	"pane/internal/mat"
)

// blobs generates two Gaussian clusters labelled true/false.
func blobs(rng *rand.Rand, n, dim int, sep float64) (*mat.Dense, []bool) {
	x := mat.New(n, dim)
	y := make([]bool, n)
	for i := 0; i < n; i++ {
		y[i] = i%2 == 0
		off := -sep
		if y[i] {
			off = sep
		}
		for j := 0; j < dim; j++ {
			x.Set(i, j, rng.NormFloat64()+off)
		}
	}
	return x, y
}

func TestSVMSeparableData(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := blobs(rng, 200, 5, 3)
	m := TrainSVM(x, y, DefaultSVMConfig())
	correct := 0
	for i := 0; i < x.Rows; i++ {
		if m.Predict(x.Row(i)) == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(x.Rows); acc < 0.98 {
		t.Fatalf("training accuracy %v on separable data", acc)
	}
}

func TestSVMGeneralizes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xTrain, yTrain := blobs(rng, 300, 4, 2)
	xTest, yTest := blobs(rng, 200, 4, 2)
	m := TrainSVM(xTrain, yTrain, DefaultSVMConfig())
	correct := 0
	for i := 0; i < xTest.Rows; i++ {
		if m.Predict(xTest.Row(i)) == yTest[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(xTest.Rows); acc < 0.9 {
		t.Fatalf("test accuracy %v", acc)
	}
}

func TestSVMDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, y := blobs(rng, 100, 3, 1)
	a := TrainSVM(x, y, DefaultSVMConfig())
	b := TrainSVM(x, y, DefaultSVMConfig())
	for j := range a.W {
		if a.W[j] != b.W[j] {
			t.Fatal("same seed produced different weights")
		}
	}
}

func TestSVMMismatchedLengthsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TrainSVM(mat.New(3, 2), []bool{true}, DefaultSVMConfig())
}

func TestOneVsRestThreeClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n, dim := 300, 4
	x := mat.New(n, dim)
	labels := make([][]int, n)
	centers := [][]float64{{4, 0, 0, 0}, {0, 4, 0, 0}, {0, 0, 4, 0}}
	for i := 0; i < n; i++ {
		c := i % 3
		labels[i] = []int{c}
		for j := 0; j < dim; j++ {
			x.Set(i, j, rng.NormFloat64()*0.5+centers[c][j])
		}
	}
	ovr := TrainOneVsRest(x, labels, DefaultSVMConfig())
	if len(ovr.Classes) != 3 {
		t.Fatalf("classes = %v", ovr.Classes)
	}
	correct := 0
	for i := 0; i < n; i++ {
		if ovr.PredictTop(x.Row(i)) == labels[i][0] {
			correct++
		}
	}
	if acc := float64(correct) / float64(n); acc < 0.95 {
		t.Fatalf("OVR accuracy %v", acc)
	}
}

func TestOneVsRestPredictK(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n, dim := 200, 6
	x := mat.New(n, dim)
	labels := make([][]int, n)
	for i := 0; i < n; i++ {
		// Multi-label: classes 0/1 indicated by coordinates 0/1.
		var ls []int
		if rng.Float64() < 0.5 {
			ls = append(ls, 0)
			x.Set(i, 0, 3)
		}
		if rng.Float64() < 0.5 {
			ls = append(ls, 1)
			x.Set(i, 1, 3)
		}
		for j := 2; j < dim; j++ {
			x.Set(i, j, rng.NormFloat64()*0.3)
		}
		labels[i] = ls
	}
	ovr := TrainOneVsRest(x, labels, DefaultSVMConfig())
	hits, total := 0, 0
	for i := 0; i < n; i++ {
		if len(labels[i]) == 0 {
			continue
		}
		pred := ovr.PredictK(x.Row(i), len(labels[i]))
		if len(pred) != len(labels[i]) {
			t.Fatalf("PredictK returned %d labels, want %d", len(pred), len(labels[i]))
		}
		want := map[int]bool{}
		for _, l := range labels[i] {
			want[l] = true
		}
		for _, p := range pred {
			total++
			if want[p] {
				hits++
			}
		}
	}
	if frac := float64(hits) / float64(total); frac < 0.9 {
		t.Fatalf("multi-label hit rate %v", frac)
	}
}

func TestPredictKClampsToClassCount(t *testing.T) {
	x := mat.FromRows([][]float64{{1}, {0}})
	labels := [][]int{{0}, {1}}
	ovr := TrainOneVsRest(x, labels, DefaultSVMConfig())
	if got := ovr.PredictK([]float64{1}, 10); len(got) != 2 {
		t.Fatalf("PredictK(k>classes) len = %d", len(got))
	}
}
