// Package ml provides the linear classifiers the evaluation harness needs
// — the paper trains a linear SVM (§5.4, citing Cortes & Vapnik) on
// concatenated embeddings for node classification. The SVM is trained
// with the Pegasos stochastic subgradient method; a one-vs-rest wrapper
// handles multi-class and multi-label targets.
package ml

import (
	"math"
	"math/rand"

	"pane/internal/mat"
)

// SVM is a binary linear classifier w·x + b trained on hinge loss with L2
// regularization.
type SVM struct {
	W []float64
	B float64
}

// SVMConfig controls Pegasos training.
type SVMConfig struct {
	// Lambda is the L2 regularization strength. Default 1e-4.
	Lambda float64
	// Epochs is the number of passes over the training data. Default 20.
	Epochs int
	// Seed drives example shuffling.
	Seed int64
}

// DefaultSVMConfig returns sensible defaults for embedding-sized inputs.
func DefaultSVMConfig() SVMConfig {
	return SVMConfig{Lambda: 1e-4, Epochs: 20, Seed: 1}
}

// TrainSVM fits a binary SVM on rows of x with ±1 targets derived from y
// (true → +1). It implements Pegasos: step size 1/(λ·t) with projection
// implicit in the shrinking update.
func TrainSVM(x *mat.Dense, y []bool, cfg SVMConfig) *SVM {
	if x.Rows != len(y) {
		panic("ml: TrainSVM target length mismatch")
	}
	if cfg.Lambda <= 0 {
		cfg.Lambda = 1e-4
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 20
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := make([]float64, x.Cols)
	var b float64
	order := make([]int, x.Rows)
	for i := range order {
		order[i] = i
	}
	// Offset the step-size schedule by t0 = 1/λ so the first updates are
	// O(1) instead of O(1/λ) — the usual stabilization of Pegasos.
	t0 := 1 / cfg.Lambda
	t := 1
	for ep := 0; ep < cfg.Epochs; ep++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, i := range order {
			eta := 1 / (cfg.Lambda * (t0 + float64(t)))
			t++
			yi := -1.0
			if y[i] {
				yi = 1.0
			}
			xi := x.Row(i)
			margin := yi * (mat.Dot(w, xi) + b)
			// Shrink.
			scale := 1 - eta*cfg.Lambda
			if scale < 0 {
				scale = 0
			}
			for j := range w {
				w[j] *= scale
			}
			if margin < 1 {
				step := eta * yi
				for j := range w {
					w[j] += step * xi[j]
				}
				b += step
			}
		}
	}
	// Guard against non-finite weights from pathological inputs.
	for j := range w {
		if math.IsNaN(w[j]) || math.IsInf(w[j], 0) {
			w[j] = 0
		}
	}
	return &SVM{W: w, B: b}
}

// Score returns the signed decision value for feature vector x.
func (s *SVM) Score(x []float64) float64 { return mat.Dot(s.W, x) + s.B }

// Predict returns Score(x) > 0.
func (s *SVM) Predict(x []float64) bool { return s.Score(x) > 0 }

// OneVsRest is a multi-class / multi-label classifier made of one binary
// SVM per class.
type OneVsRest struct {
	Classes []int
	Models  []*SVM
}

// TrainOneVsRest fits one SVM per distinct label appearing in labels,
// where labels[i] is the (possibly empty, possibly multi-) label set of
// row i of x.
func TrainOneVsRest(x *mat.Dense, labels [][]int, cfg SVMConfig) *OneVsRest {
	classSet := map[int]bool{}
	for _, ls := range labels {
		for _, l := range ls {
			classSet[l] = true
		}
	}
	classes := make([]int, 0, len(classSet))
	for l := range classSet {
		classes = append(classes, l)
	}
	// Deterministic class order.
	for i := 1; i < len(classes); i++ {
		for j := i; j > 0 && classes[j-1] > classes[j]; j-- {
			classes[j-1], classes[j] = classes[j], classes[j-1]
		}
	}
	ovr := &OneVsRest{Classes: classes, Models: make([]*SVM, len(classes))}
	for ci, c := range classes {
		y := make([]bool, len(labels))
		for i, ls := range labels {
			for _, l := range ls {
				if l == c {
					y[i] = true
					break
				}
			}
		}
		sub := cfg
		sub.Seed = cfg.Seed + int64(ci)*7919
		ovr.Models[ci] = TrainSVM(x, y, sub)
	}
	return ovr
}

// PredictTop returns the single best class for x (argmax decision value).
func (o *OneVsRest) PredictTop(x []float64) int {
	best, bestScore := -1, math.Inf(-1)
	for i, m := range o.Models {
		if s := m.Score(x); s > bestScore {
			bestScore = s
			best = o.Classes[i]
		}
	}
	return best
}

// PredictK returns the k highest-scoring classes for x, in descending
// score order. Multi-label evaluation follows the standard protocol of
// predicting as many labels as the example truly has.
func (o *OneVsRest) PredictK(x []float64, k int) []int {
	type cs struct {
		c int
		s float64
	}
	all := make([]cs, len(o.Models))
	for i, m := range o.Models {
		all[i] = cs{o.Classes[i], m.Score(x)}
	}
	// Partial selection sort: k is tiny.
	if k > len(all) {
		k = len(all)
	}
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(all); j++ {
			if all[j].s > all[best].s {
				best = j
			}
		}
		all[i], all[best] = all[best], all[i]
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].c
	}
	return out
}
