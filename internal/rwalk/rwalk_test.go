package rwalk

import (
	"math"
	"math/rand"
	"testing"

	"pane/internal/graph"
	"pane/internal/mat"
)

// fullyAttributed builds a random strongly-attribute-covered graph: every
// node has at least one attribute and at least one out-edge, so the walk
// series is a proper distribution and simulation needs no restarts.
func fullyAttributed(rng *rand.Rand, n, d int) *graph.Graph {
	var edges []graph.Edge
	for v := 0; v < n; v++ {
		// Guarantee an out-edge, then sprinkle extras.
		edges = append(edges, graph.Edge{Src: v, Dst: (v + 1) % n})
		for e := 0; e < 2; e++ {
			edges = append(edges, graph.Edge{Src: v, Dst: rng.Intn(n)})
		}
	}
	var attrs []graph.AttrEntry
	for v := 0; v < n; v++ {
		attrs = append(attrs, graph.AttrEntry{Node: v, Attr: rng.Intn(d), Weight: 1 + rng.Float64()})
		if rng.Float64() < 0.5 {
			attrs = append(attrs, graph.AttrEntry{Node: v, Attr: rng.Intn(d), Weight: 1})
		}
	}
	g, err := graph.New(n, d, edges, attrs, nil)
	if err != nil {
		panic(err)
	}
	return g
}

func TestExactForwardIsDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := fullyAttributed(rng, 12, 4)
	pf := ExactForward(g, 0.2)
	for v := 0; v < g.N; v++ {
		var s float64
		for _, x := range pf.Row(v) {
			if x < 0 {
				t.Fatalf("negative probability at row %d", v)
			}
			s += x
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("row %d sums to %v", v, s)
		}
	}
}

func TestExactBackwardIsDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := fullyAttributed(rng, 12, 4)
	pb := ExactBackward(g, 0.2)
	sums := pb.ColSums()
	for r, s := range sums {
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("column %d sums to %v", r, s)
		}
	}
}

func TestSimulationMatchesExactForward(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := fullyAttributed(rng, 8, 3)
	alpha := 0.3
	sim := New(g, alpha)
	est := sim.EstimateForward(rng, 60000)
	exact := ExactForward(g, alpha)
	if d := est.MaxAbsDiff(exact); d > 0.02 {
		t.Fatalf("forward simulation deviates from exact series by %v", d)
	}
}

func TestSimulationMatchesExactBackward(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := fullyAttributed(rng, 8, 3)
	alpha := 0.3
	sim := New(g, alpha)
	est := sim.EstimateBackward(rng, 120000)
	exact := ExactBackward(g, alpha)
	if d := est.MaxAbsDiff(exact); d > 0.02 {
		t.Fatalf("backward simulation deviates from exact series by %v", d)
	}
}

func TestFootnote1RestartOnAttributelessNodes(t *testing.T) {
	// The running example has attribute-less v1, v2; forward walks from
	// them must still return attributes (restart rule), and the empirical
	// distribution must equal the row-normalized exact series.
	g := graph.RunningExample()
	rng := rand.New(rand.NewSource(5))
	sim := New(g, graph.RunningExampleAlpha)
	for _, v := range []int{0, 1} {
		if r := sim.ForwardWalk(rng, v, 64); r < 0 {
			t.Fatalf("forward walk from attribute-less node %d failed", v)
		}
	}
	est := sim.EstimateForward(rng, 40000)
	exact := ExactForward(g, graph.RunningExampleAlpha)
	exact.NormalizeRows() // conditioning on eventual success
	if d := est.MaxAbsDiff(exact); d > 0.02 {
		t.Fatalf("restart-conditioned simulation deviates by %v", d)
	}
}

func TestAffinitiesSPMIPositivity(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := fullyAttributed(rng, 10, 4)
	pf := ExactForward(g, 0.25)
	pb := ExactBackward(g, 0.25)
	f, b := Affinities(pf, pb)
	for i, v := range f.Data {
		if v < 0 {
			t.Fatalf("F[%d] = %v negative — SPMI must be nonnegative", i, v)
		}
	}
	for i, v := range b.Data {
		if v < 0 {
			t.Fatalf("B[%d] = %v negative", i, v)
		}
	}
}

func TestAffinityOrderingRunningExample(t *testing.T) {
	// Qualitative claims of §2.3 on the running example:
	// (1) v1 has high affinity with r1 (its strongest attribute both ways);
	// (2) v5's forward affinity alone ranks r3 above r1 — considering
	//     forward only would wrongly suggest v5 owns r3;
	// (3) combining forward+backward ranks r1 at least as high as r3 for
	//     v5, fixing the inference.
	g := graph.RunningExample()
	alpha := graph.RunningExampleAlpha
	pf := ExactForward(g, alpha)
	pf.NormalizeRows()
	pb := ExactBackward(g, alpha)
	f, b := Affinities(pf, pb)

	v1, v5 := 0, 4
	r1, r3 := 0, 2
	if !(f.At(v1, r1) > f.At(v1, r3)) {
		t.Fatalf("claim 1 fwd: F[v1] = %v", f.Row(v1))
	}
	if !(b.At(v1, r1) > b.At(v1, r3)) {
		t.Fatalf("claim 1 bwd: B[v1] = %v", b.Row(v1))
	}
	if !(f.At(v5, r3) > f.At(v5, r1)) {
		t.Fatalf("claim 2: expected forward anomaly, F[v5] = %v", f.Row(v5))
	}
	comb1 := f.At(v5, r1) + b.At(v5, r1)
	comb3 := f.At(v5, r3) + b.At(v5, r3)
	if !(comb1 > comb3) {
		t.Fatalf("claim 3: combined affinity %v (r1) !> %v (r3)", comb1, comb3)
	}
}

func TestNewPanicsOnBadAlpha(t *testing.T) {
	g := graph.RunningExample()
	for _, a := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("alpha=%v should panic", a)
				}
			}()
			New(g, a)
		}()
	}
}

func TestBackwardWalkEmptyAttribute(t *testing.T) {
	g, err := graph.New(3, 2, []graph.Edge{{Src: 0, Dst: 1}},
		[]graph.AttrEntry{{Node: 0, Attr: 0, Weight: 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sim := New(g, 0.5)
	rng := rand.New(rand.NewSource(7))
	if v := sim.BackwardWalk(rng, 1); v != -1 {
		t.Fatalf("walk from unused attribute returned %d, want -1", v)
	}
}

func TestEstimateForwardShape(t *testing.T) {
	g := graph.RunningExample()
	sim := New(g, 0.15)
	est := sim.EstimateForward(rand.New(rand.NewSource(8)), 100)
	if est.Rows != g.N || est.Cols != g.D {
		t.Fatalf("shape %dx%d", est.Rows, est.Cols)
	}
	var _ *mat.Dense = est
}
