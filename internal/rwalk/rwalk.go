// Package rwalk simulates the forward and backward random walks with
// restart that define node-attribute affinity in §2.2 of the paper. PANE
// itself never samples walks (APMI computes the same quantities in closed
// form); this package exists to (a) validate APMI against a ground-truth
// Monte-Carlo estimate, (b) regenerate the Table 2 running example the way
// the paper did ("using simulated random walks on the extended graph"),
// and (c) serve as an executable specification of the affinity model.
package rwalk

import (
	"math/rand"

	"pane/internal/graph"
	"pane/internal/mat"
)

// Simulator samples forward/backward walks on the extended graph of an
// attributed network.
type Simulator struct {
	g     *graph.Graph
	alpha float64

	// outCum[v]/outIdx[v] hold the cumulative out-edge distribution of v
	// (weight-proportional; uniform for unit weights).
	// fwdPick[v] holds the cumulative attribute distribution of v.
	// bwdStart[r] holds the cumulative node distribution of attribute r.
	outCum      [][]float64
	outIdx      [][]int32
	fwdPickCum  [][]float64
	fwdPickIdx  [][]int32
	bwdStartCum [][]float64
	bwdStartIdx [][]int32
}

// New builds a simulator for g with stopping probability alpha ∈ (0,1).
func New(g *graph.Graph, alpha float64) *Simulator {
	if alpha <= 0 || alpha >= 1 {
		panic("rwalk: alpha must lie strictly between 0 and 1")
	}
	s := &Simulator{g: g, alpha: alpha}
	s.outCum = make([][]float64, g.N)
	s.outIdx = make([][]int32, g.N)
	for v := 0; v < g.N; v++ {
		cols, vals := g.Adj.Row(v)
		if len(cols) == 0 {
			continue
		}
		cum := make([]float64, len(vals))
		var tot float64
		for i, w := range vals {
			tot += w
			cum[i] = tot
		}
		for i := range cum {
			cum[i] /= tot
		}
		s.outCum[v] = cum
		s.outIdx[v] = cols
	}
	s.fwdPickCum = make([][]float64, g.N)
	s.fwdPickIdx = make([][]int32, g.N)
	for v := 0; v < g.N; v++ {
		cols, vals := g.NodeAttrs(v)
		if len(cols) == 0 {
			continue
		}
		cum := make([]float64, len(vals))
		var tot float64
		for i, w := range vals {
			tot += w
			cum[i] = tot
		}
		for i := range cum {
			cum[i] /= tot
		}
		s.fwdPickCum[v] = cum
		s.fwdPickIdx[v] = cols
	}
	// Column-wise cumulative distributions for backward starts.
	attrT := g.Attr.T()
	s.bwdStartCum = make([][]float64, g.D)
	s.bwdStartIdx = make([][]int32, g.D)
	for r := 0; r < g.D; r++ {
		cols, vals := attrT.Row(r)
		if len(cols) == 0 {
			continue
		}
		cum := make([]float64, len(vals))
		var tot float64
		for i, w := range vals {
			tot += w
			cum[i] = tot
		}
		for i := range cum {
			cum[i] /= tot
		}
		s.bwdStartCum[r] = cum
		s.bwdStartIdx[r] = cols
	}
	return s
}

func sampleCum(rng *rand.Rand, cum []float64, idx []int32) int32 {
	u := rng.Float64()
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return idx[lo]
}

// walkFrom runs the RWR portion of a walk starting at v and returns the
// terminating node. Walks stranded at dangling nodes terminate there (the
// convention matching APMI's zero rows for dangling nodes).
func (s *Simulator) walkFrom(rng *rand.Rand, v int) int {
	for {
		if rng.Float64() < s.alpha {
			return v
		}
		cum := s.outCum[v]
		if cum == nil {
			return v
		}
		v = int(sampleCum(rng, cum, s.outIdx[v]))
	}
}

// ForwardWalk samples one forward walk from node v: RWR until termination
// at some node vl, then pick one of vl's attributes. Per footnote 1 of the
// paper, if vl carries no attributes the walk restarts from v. The walk
// returns the sampled attribute. maxRestart caps the retries so that
// pathological graphs (no attribute reachable) terminate; it returns -1 in
// that case.
func (s *Simulator) ForwardWalk(rng *rand.Rand, v int, maxRestart int) int {
	for try := 0; try <= maxRestart; try++ {
		vl := s.walkFrom(rng, v)
		if cum := s.fwdPickCum[vl]; cum != nil {
			return int(sampleCum(rng, cum, s.fwdPickIdx[vl]))
		}
	}
	return -1
}

// BackwardWalk samples one backward walk from attribute r: pick a start
// node according to Rc[:, r], then RWR to termination; returns the
// terminal node, or -1 when attribute r has no associated nodes.
func (s *Simulator) BackwardWalk(rng *rand.Rand, r int) int {
	cum := s.bwdStartCum[r]
	if cum == nil {
		return -1
	}
	v := int(sampleCum(rng, cum, s.bwdStartIdx[r]))
	return s.walkFrom(rng, v)
}

// EstimateForward samples nr forward walks from every node and returns the
// empirical estimate of p_f as an n x d matrix whose row v is the
// distribution over attributes reached from v.
func (s *Simulator) EstimateForward(rng *rand.Rand, nr int) *mat.Dense {
	pf := mat.New(s.g.N, s.g.D)
	for v := 0; v < s.g.N; v++ {
		row := pf.Row(v)
		hit := 0
		for i := 0; i < nr; i++ {
			if r := s.ForwardWalk(rng, v, 64); r >= 0 {
				row[r]++
				hit++
			}
		}
		if hit > 0 {
			inv := 1 / float64(hit)
			for j := range row {
				row[j] *= inv
			}
		}
	}
	return pf
}

// EstimateBackward samples nr backward walks from every attribute and
// returns the empirical estimate of p_b as an n x d matrix whose column r
// is the distribution over terminal nodes of walks from attribute r.
func (s *Simulator) EstimateBackward(rng *rand.Rand, nr int) *mat.Dense {
	pb := mat.New(s.g.N, s.g.D)
	for r := 0; r < s.g.D; r++ {
		hit := 0
		for i := 0; i < nr; i++ {
			if v := s.BackwardWalk(rng, r); v >= 0 {
				pb.Set(v, r, pb.At(v, r)+1)
				hit++
			}
		}
		if hit > 0 {
			inv := 1 / float64(hit)
			for v := 0; v < s.g.N; v++ {
				pb.Set(v, r, pb.At(v, r)*inv)
			}
		}
	}
	return pb
}

// Affinities converts Monte-Carlo estimates of p_f and p_b into the SPMI
// forward/backward affinity matrices of Equations (2) and (3):
//
//	F[v,r] = log(n·p_f(v,r)/Σ_h p_f(h,r) + 1)
//	B[v,r] = log(d·p_b(v,r)/Σ_h p_b(v,h) + 1)
func Affinities(pf, pb *mat.Dense) (f, b *mat.Dense) {
	n := float64(pf.Rows)
	d := float64(pb.Cols)
	f = pf.Clone()
	f.NormalizeColumns()
	f.Log1pScaled(n)
	b = pb.Clone()
	b.NormalizeRows()
	b.Log1pScaled(d)
	return f, b
}

// ExactForward computes p_f exactly by dense power iteration — O(n²·t)
// and meant only for small validation graphs. It mirrors Equation (5)
// truncated at machine precision.
func ExactForward(g *graph.Graph, alpha float64) *mat.Dense {
	p, _ := g.Walk()
	rr, _ := g.NormalizedAttrs()
	return exactSeries(p, rr, alpha, g.N)
}

// ExactBackward computes p_b exactly; see ExactForward.
func ExactBackward(g *graph.Graph, alpha float64) *mat.Dense {
	_, pt := g.Walk()
	_, rc := g.NormalizedAttrs()
	return exactSeries(pt, rc, alpha, g.N)
}

func exactSeries(p interface {
	MulDense(*mat.Dense) *mat.Dense
}, seed *mat.Dense, alpha float64, n int) *mat.Dense {
	// Run the series Σ α(1−α)^ℓ P^ℓ seed until the term norm vanishes.
	term := seed.Clone()
	term.Scale(alpha)
	acc := term.Clone()
	for l := 0; l < 10000; l++ {
		nxt := p.MulDense(term)
		nxt.Scale(1 - alpha)
		acc.AddScaled(1, nxt)
		term = nxt
		if term.FrobeniusNorm() < 1e-15 {
			break
		}
	}
	return acc
}
