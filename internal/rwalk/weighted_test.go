package rwalk

import (
	"math"
	"math/rand"
	"testing"

	"pane/internal/graph"
)

func TestWeightedWalkFollowsEdgeWeights(t *testing.T) {
	// Node 0 has a weight-9 edge to node 1 and weight-1 to node 2; with
	// α=0.5, walks from 0 that move must hit 1 nine times as often as 2.
	g, err := graph.NewWeighted(3, 1,
		[]graph.WeightedEdge{{Src: 0, Dst: 1, Weight: 9}, {Src: 0, Dst: 2, Weight: 1}},
		[]graph.AttrEntry{{Node: 1, Attr: 0, Weight: 1}, {Node: 2, Attr: 0, Weight: 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sim := New(g, 0.5)
	rng := rand.New(rand.NewSource(1))
	hits1, hits2 := 0, 0
	for i := 0; i < 50000; i++ {
		switch sim.walkFrom(rng, 0) {
		case 1:
			hits1++
		case 2:
			hits2++
		}
	}
	ratio := float64(hits1) / float64(hits2)
	if math.Abs(ratio-9) > 1 {
		t.Fatalf("hit ratio %.2f, want ≈9", ratio)
	}
}

func TestWeightedSimulationMatchesExactSeries(t *testing.T) {
	// The APMI closed form uses P = D⁻¹A with weighted A; simulation must
	// agree on a weighted graph too.
	rng := rand.New(rand.NewSource(2))
	var wedges []graph.WeightedEdge
	n, d := 8, 3
	for v := 0; v < n; v++ {
		wedges = append(wedges,
			graph.WeightedEdge{Src: v, Dst: (v + 1) % n, Weight: 1 + rng.Float64()*4},
			graph.WeightedEdge{Src: v, Dst: rng.Intn(n), Weight: 0.5 + rng.Float64()})
	}
	var attrs []graph.AttrEntry
	for v := 0; v < n; v++ {
		attrs = append(attrs, graph.AttrEntry{Node: v, Attr: v % d, Weight: 1 + rng.Float64()})
	}
	g, err := graph.NewWeighted(n, d, wedges, attrs, nil)
	if err != nil {
		t.Fatal(err)
	}
	alpha := 0.3
	sim := New(g, alpha)
	est := sim.EstimateForward(rng, 60000)
	exact := ExactForward(g, alpha)
	exact.NormalizeRows()
	if diff := est.MaxAbsDiff(exact); diff > 0.02 {
		t.Fatalf("weighted simulation deviates from exact series by %v", diff)
	}
}
