package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pane/internal/graph"
)

func TestAUCPerfectRanking(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []bool{true, true, false, false}
	if got := AUC(scores, labels); got != 1 {
		t.Fatalf("AUC = %v, want 1", got)
	}
}

func TestAUCWorstRanking(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	labels := []bool{true, true, false, false}
	if got := AUC(scores, labels); got != 0 {
		t.Fatalf("AUC = %v, want 0", got)
	}
}

func TestAUCRandomIsHalf(t *testing.T) {
	// All-tied scores must give exactly 0.5 via average ranks.
	scores := []float64{1, 1, 1, 1}
	labels := []bool{true, false, true, false}
	if got := AUC(scores, labels); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("AUC = %v, want 0.5", got)
	}
}

func TestAUCKnownValue(t *testing.T) {
	// One inversion among 2x2: positives {0.9, 0.3}, negatives {0.5, 0.1}
	// → pairs won: (0.9>0.5),(0.9>0.1),(0.3<0.5 lose),(0.3>0.1) = 3/4.
	scores := []float64{0.9, 0.3, 0.5, 0.1}
	labels := []bool{true, true, false, false}
	if got := AUC(scores, labels); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("AUC = %v, want 0.75", got)
	}
}

func TestAUCEmptyClass(t *testing.T) {
	if got := AUC([]float64{1, 2}, []bool{true, true}); got != 0.5 {
		t.Fatalf("degenerate AUC = %v, want 0.5", got)
	}
}

func TestAUCPropertyInvariantToMonotoneTransform(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(30)
		scores := make([]float64, n)
		labels := make([]bool, n)
		for i := range scores {
			scores[i] = rng.NormFloat64()
			labels[i] = rng.Float64() < 0.5
		}
		labels[0], labels[1] = true, false // ensure both classes
		a1 := AUC(scores, labels)
		trans := make([]float64, n)
		for i, s := range scores {
			trans[i] = math.Exp(s) + 3
		}
		a2 := AUC(trans, labels)
		return math.Abs(a1-a2) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAveragePrecisionPerfect(t *testing.T) {
	scores := []float64{3, 2, 1}
	labels := []bool{true, true, false}
	if got := AveragePrecision(scores, labels); got != 1 {
		t.Fatalf("AP = %v, want 1", got)
	}
}

func TestAveragePrecisionKnown(t *testing.T) {
	// Ranking: pos, neg, pos → precisions at hits: 1/1, 2/3 → AP = 5/6.
	scores := []float64{3, 2, 1}
	labels := []bool{true, false, true}
	if got := AveragePrecision(scores, labels); math.Abs(got-5.0/6) > 1e-12 {
		t.Fatalf("AP = %v, want %v", got, 5.0/6)
	}
}

func TestAveragePrecisionNoPositives(t *testing.T) {
	if got := AveragePrecision([]float64{1, 2}, []bool{false, false}); got != 0 {
		t.Fatalf("AP = %v, want 0", got)
	}
}

func TestF1CountsSingleLabel(t *testing.T) {
	c := NewF1Counts()
	c.Add([]int{1}, []int{1}) // TP
	c.Add([]int{1}, []int{2}) // FP for 1, FN for 2
	c.Add([]int{2}, []int{2}) // TP for 2
	micro := c.MicroF1()
	// tp=2, fp=1, fn=1 → P=2/3, R=2/3 → F1=2/3.
	if math.Abs(micro-2.0/3) > 1e-12 {
		t.Fatalf("MicroF1 = %v, want 2/3", micro)
	}
	macro := c.MacroF1()
	// class1: tp1 fp1 fn0 → F1=2/3; class2: tp1 fp0 fn1 → F1=2/3.
	if math.Abs(macro-2.0/3) > 1e-12 {
		t.Fatalf("MacroF1 = %v, want 2/3", macro)
	}
}

func TestF1CountsMultiLabel(t *testing.T) {
	c := NewF1Counts()
	c.Add([]int{1, 2}, []int{1, 3})
	// TP(1), FP(2), FN(3).
	if c.TP[1] != 1 || c.FP[2] != 1 || c.FN[3] != 1 {
		t.Fatalf("counts wrong: %+v", c)
	}
	if c.MicroF1() != 0.5 { // tp=1 fp=1 fn=1 → P=R=0.5
		t.Fatalf("MicroF1 = %v", c.MicroF1())
	}
}

func TestF1PerfectAndEmpty(t *testing.T) {
	c := NewF1Counts()
	c.Add([]int{4}, []int{4})
	if c.MicroF1() != 1 || c.MacroF1() != 1 {
		t.Fatal("perfect prediction should score 1")
	}
	empty := NewF1Counts()
	if empty.MacroF1() != 0 || empty.MicroF1() != 0 {
		t.Fatal("empty accumulator should score 0")
	}
}

func TestMeanStd(t *testing.T) {
	m, s := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if m != 5 || math.Abs(s-2) > 1e-12 {
		t.Fatalf("MeanStd = %v, %v", m, s)
	}
	if m, s := MeanStd(nil); m != 0 || s != 0 {
		t.Fatal("empty MeanStd should be 0,0")
	}
}

func testGraph(rng *rand.Rand, n, d int) *graph.Graph {
	var edges []graph.Edge
	for v := 0; v < n; v++ {
		edges = append(edges, graph.Edge{Src: v, Dst: (v + 1) % n})
		edges = append(edges, graph.Edge{Src: v, Dst: rng.Intn(n)})
	}
	var attrs []graph.AttrEntry
	for v := 0; v < n; v++ {
		for a := 0; a < 2; a++ {
			attrs = append(attrs, graph.AttrEntry{Node: v, Attr: rng.Intn(d), Weight: 1})
		}
	}
	labels := make([][]int, n)
	for v := range labels {
		labels[v] = []int{v % 3}
	}
	g, err := graph.New(n, d, edges, attrs, labels)
	if err != nil {
		panic(err)
	}
	return g
}

func TestSplitAttributesProportions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := testGraph(rng, 40, 8)
	sp := SplitAttributes(g, 0.8, rng)
	total := g.NNZAttr()
	if got := sp.Train.NNZAttr(); got != int(float64(total)*0.8) {
		t.Fatalf("train entries = %d, want %d", got, int(float64(total)*0.8))
	}
	if len(sp.TestPos) != total-sp.Train.NNZAttr() {
		t.Fatal("test positives wrong count")
	}
	if len(sp.TestNeg) != len(sp.TestPos) {
		t.Fatal("negatives must match positives count")
	}
	// Negatives really are absent from the original matrix.
	for _, p := range sp.TestNeg {
		if g.Attr.At(p[0], p[1]) != 0 {
			t.Fatal("sampled negative is actually present")
		}
	}
	// Topology untouched.
	if sp.Train.M() != g.M() {
		t.Fatal("edge set must be preserved by attribute split")
	}
}

func TestSplitAttributesEvaluateOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := testGraph(rng, 30, 6)
	sp := SplitAttributes(g, 0.8, rng)
	// An oracle that scores true pairs 1 and negatives 0 gets AUC=AP=1.
	auc, ap := sp.Evaluate(func(v, r int) float64 {
		if g.Attr.At(v, r) != 0 {
			return 1
		}
		return 0
	})
	if auc != 1 || ap != 1 {
		t.Fatalf("oracle AUC=%v AP=%v, want 1,1", auc, ap)
	}
}

func TestSplitLinksProportions(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := testGraph(rng, 50, 5)
	sp := SplitLinks(g, 0.3, rng)
	wantRemoved := int(float64(g.M()) * 0.3)
	if len(sp.TestPos) != wantRemoved {
		t.Fatalf("removed %d, want %d", len(sp.TestPos), wantRemoved)
	}
	if sp.Train.M() != g.M()-wantRemoved {
		t.Fatal("residual edge count wrong")
	}
	if len(sp.TestNeg) != len(sp.TestPos) {
		t.Fatal("negative count mismatch")
	}
	for _, e := range sp.TestNeg {
		if g.HasEdge(e.Src, e.Dst) {
			t.Fatal("negative edge exists in original graph")
		}
	}
	for _, e := range sp.TestPos {
		if sp.Train.HasEdge(e.Src, e.Dst) {
			t.Fatal("removed edge still present in residual graph")
		}
	}
	// Attributes untouched.
	if sp.Train.NNZAttr() != g.NNZAttr() {
		t.Fatal("attribute set must be preserved by link split")
	}
}

func TestSplitNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := testGraph(rng, 30, 5)
	sp := SplitNodes(g, 0.5, rng)
	if len(sp.TrainIdx)+len(sp.TestIdx) != 30 {
		t.Fatal("split does not cover all labelled nodes")
	}
	if len(sp.TrainIdx) != 15 {
		t.Fatalf("train size %d, want 15", len(sp.TrainIdx))
	}
	seen := map[int]bool{}
	for _, v := range append(append([]int{}, sp.TrainIdx...), sp.TestIdx...) {
		if seen[v] {
			t.Fatal("node appears twice")
		}
		seen[v] = true
	}
}
