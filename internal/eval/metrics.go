// Package eval implements the evaluation protocol of §5: AUC and average
// precision for attribute inference and link prediction, micro/macro F1
// for node classification, and the train/test splitters the paper
// describes (80/20 attribute-entry split, 30% edge removal with equal
// negative sampling).
package eval

import (
	"math"
	"sort"
)

// AUC computes the area under the ROC curve for scores with binary ground
// truth, handling ties by assigning average ranks (the Mann-Whitney
// formulation). It returns 0.5 when either class is empty.
func AUC(scores []float64, labels []bool) float64 {
	if len(scores) != len(labels) {
		panic("eval: AUC length mismatch")
	}
	type sl struct {
		s   float64
		pos bool
	}
	items := make([]sl, len(scores))
	nPos, nNeg := 0, 0
	for i, s := range scores {
		items[i] = sl{s, labels[i]}
		if labels[i] {
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0.5
	}
	sort.Slice(items, func(i, j int) bool { return items[i].s < items[j].s })
	// Average ranks over tied groups.
	var rankSumPos float64
	i := 0
	for i < len(items) {
		j := i
		for j < len(items) && items[j].s == items[i].s {
			j++
		}
		avgRank := float64(i+j+1) / 2 // ranks are 1-based: positions i+1..j
		for t := i; t < j; t++ {
			if items[t].pos {
				rankSumPos += avgRank
			}
		}
		i = j
	}
	u := rankSumPos - float64(nPos)*float64(nPos+1)/2
	return u / (float64(nPos) * float64(nNeg))
}

// AveragePrecision computes AP: the mean of precision values at each
// positive hit when items are ranked by descending score. Ties are broken
// by input order after a stable sort, which is the common implementation
// convention.
func AveragePrecision(scores []float64, labels []bool) float64 {
	if len(scores) != len(labels) {
		panic("eval: AP length mismatch")
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	var hits, sumPrec float64
	for rank, id := range idx {
		if labels[id] {
			hits++
			sumPrec += hits / float64(rank+1)
		}
	}
	if hits == 0 {
		return 0
	}
	return sumPrec / hits
}

// F1Counts accumulates per-class true/false positives and false negatives
// for multi-label classification.
type F1Counts struct {
	TP, FP, FN map[int]int
}

// NewF1Counts returns an empty accumulator.
func NewF1Counts() *F1Counts {
	return &F1Counts{TP: map[int]int{}, FP: map[int]int{}, FN: map[int]int{}}
}

// Add records one example's predicted and true label sets.
func (c *F1Counts) Add(pred, truth []int) {
	t := map[int]bool{}
	for _, l := range truth {
		t[l] = true
	}
	p := map[int]bool{}
	for _, l := range pred {
		p[l] = true
	}
	for l := range p {
		if t[l] {
			c.TP[l]++
		} else {
			c.FP[l]++
		}
	}
	for l := range t {
		if !p[l] {
			c.FN[l]++
		}
	}
}

// MicroF1 returns the micro-averaged F1: a single precision/recall over
// all (example, label) decisions pooled together.
func (c *F1Counts) MicroF1() float64 {
	var tp, fp, fn int
	for _, v := range c.TP {
		tp += v
	}
	for _, v := range c.FP {
		fp += v
	}
	for _, v := range c.FN {
		fn += v
	}
	return f1(tp, fp, fn)
}

// MacroF1 returns the macro-averaged F1: the unweighted mean of per-class
// F1 over every class that appears in predictions or truth.
func (c *F1Counts) MacroF1() float64 {
	classes := map[int]bool{}
	for l := range c.TP {
		classes[l] = true
	}
	for l := range c.FP {
		classes[l] = true
	}
	for l := range c.FN {
		classes[l] = true
	}
	if len(classes) == 0 {
		return 0
	}
	var sum float64
	for l := range classes {
		sum += f1(c.TP[l], c.FP[l], c.FN[l])
	}
	return sum / float64(len(classes))
}

func f1(tp, fp, fn int) float64 {
	if tp == 0 {
		return 0
	}
	prec := float64(tp) / float64(tp+fp)
	rec := float64(tp) / float64(tp+fn)
	return 2 * prec * rec / (prec + rec)
}

// MeanStd returns the mean and population standard deviation of xs.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(std / float64(len(xs)))
}
