package eval

import (
	"math/rand"

	"pane/internal/graph"
)

// AttrSplit holds the attribute-inference evaluation protocol of §5.2: the
// nonzero entries of R are split 80/20 into a training graph (with the
// test associations removed) and a held-out positive set; the test set is
// the held-out positives plus an equal number of sampled negatives
// ((node, attr) pairs absent from R).
type AttrSplit struct {
	Train     *graph.Graph
	TestPos   []graph.AttrEntry
	TestNeg   [][2]int
	TrainFrac float64
}

// SplitAttributes builds an AttrSplit with the given training fraction
// (the paper uses 0.8).
func SplitAttributes(g *graph.Graph, trainFrac float64, rng *rand.Rand) *AttrSplit {
	var all []graph.AttrEntry
	for v := 0; v < g.N; v++ {
		cols, vals := g.NodeAttrs(v)
		for k, c := range cols {
			all = append(all, graph.AttrEntry{Node: v, Attr: int(c), Weight: vals[k]})
		}
	}
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	nTrain := int(float64(len(all)) * trainFrac)
	trainEntries := all[:nTrain]
	testPos := all[nTrain:]
	// Rebuild the graph with only training associations.
	var edges []graph.Edge
	for u := 0; u < g.N; u++ {
		for _, v := range g.OutNeighbors(u) {
			edges = append(edges, graph.Edge{Src: u, Dst: int(v)})
		}
	}
	train, err := graph.New(g.N, g.D, edges, trainEntries, g.Labels)
	if err != nil {
		panic("eval: SplitAttributes rebuild failed: " + err.Error())
	}
	// Negatives: absent pairs, as many as positives.
	neg := make([][2]int, 0, len(testPos))
	for len(neg) < len(testPos) {
		v, r := rng.Intn(g.N), rng.Intn(g.D)
		if g.Attr.At(v, r) == 0 {
			neg = append(neg, [2]int{v, r})
		}
	}
	return &AttrSplit{Train: train, TestPos: testPos, TestNeg: neg, TrainFrac: trainFrac}
}

// Evaluate scores every test pair with score and returns AUC and AP.
func (s *AttrSplit) Evaluate(score func(v, r int) float64) (auc, ap float64) {
	scores := make([]float64, 0, len(s.TestPos)+len(s.TestNeg))
	labels := make([]bool, 0, cap(scores))
	for _, e := range s.TestPos {
		scores = append(scores, score(e.Node, e.Attr))
		labels = append(labels, true)
	}
	for _, p := range s.TestNeg {
		scores = append(scores, score(p[0], p[1]))
		labels = append(labels, false)
	}
	return AUC(scores, labels), AveragePrecision(scores, labels)
}

// LinkSplit holds the link-prediction protocol of §5.3: removeFrac of the
// edges are removed to form the residual training graph; the test set is
// the removed edges plus an equal number of non-existing edges.
type LinkSplit struct {
	Train   *graph.Graph
	TestPos []graph.Edge
	TestNeg []graph.Edge
}

// SplitLinks builds a LinkSplit (the paper removes 30%).
func SplitLinks(g *graph.Graph, removeFrac float64, rng *rand.Rand) *LinkSplit {
	var all []graph.Edge
	for u := 0; u < g.N; u++ {
		for _, v := range g.OutNeighbors(u) {
			all = append(all, graph.Edge{Src: u, Dst: int(v)})
		}
	}
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	nRemove := int(float64(len(all)) * removeFrac)
	testPos := all[:nRemove]
	residual := all[nRemove:]
	var attrs []graph.AttrEntry
	for v := 0; v < g.N; v++ {
		cols, vals := g.NodeAttrs(v)
		for k, c := range cols {
			attrs = append(attrs, graph.AttrEntry{Node: v, Attr: int(c), Weight: vals[k]})
		}
	}
	train, err := graph.New(g.N, g.D, residual, attrs, g.Labels)
	if err != nil {
		panic("eval: SplitLinks rebuild failed: " + err.Error())
	}
	neg := make([]graph.Edge, 0, len(testPos))
	for len(neg) < len(testPos) {
		u, v := rng.Intn(g.N), rng.Intn(g.N)
		if u != v && !g.HasEdge(u, v) {
			neg = append(neg, graph.Edge{Src: u, Dst: v})
		}
	}
	return &LinkSplit{Train: train, TestPos: testPos, TestNeg: neg}
}

// Evaluate scores every test edge with score and returns AUC and AP.
func (s *LinkSplit) Evaluate(score func(u, v int) float64) (auc, ap float64) {
	scores := make([]float64, 0, len(s.TestPos)+len(s.TestNeg))
	labels := make([]bool, 0, cap(scores))
	for _, e := range s.TestPos {
		scores = append(scores, score(e.Src, e.Dst))
		labels = append(labels, true)
	}
	for _, e := range s.TestNeg {
		scores = append(scores, score(e.Src, e.Dst))
		labels = append(labels, false)
	}
	return AUC(scores, labels), AveragePrecision(scores, labels)
}

// NodeSplit is a train/test partition of labelled node indices for the
// classification task of §5.4.
type NodeSplit struct {
	TrainIdx, TestIdx []int
}

// SplitNodes samples trainFrac of the nodes carrying at least one label
// into the training set; the remaining labelled nodes form the test set.
func SplitNodes(g *graph.Graph, trainFrac float64, rng *rand.Rand) *NodeSplit {
	var labelled []int
	for v, ls := range g.Labels {
		if len(ls) > 0 {
			labelled = append(labelled, v)
		}
	}
	rng.Shuffle(len(labelled), func(i, j int) { labelled[i], labelled[j] = labelled[j], labelled[i] })
	nTrain := int(float64(len(labelled)) * trainFrac)
	if nTrain < 1 && len(labelled) > 0 {
		nTrain = 1
	}
	return &NodeSplit{TrainIdx: labelled[:nTrain], TestIdx: labelled[nTrain:]}
}
