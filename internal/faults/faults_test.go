package faults

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"pane/internal/graph"
	"pane/internal/wal"
)

func TestTransportErrorDelayHang(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "0123456789")
	}))
	defer ts.Close()

	var mode atomic.Value
	client := &http.Client{Transport: &Transport{Plan: func(req *http.Request) *Fault {
		f, _ := mode.Load().(*Fault)
		return f
	}}}

	// Pass-through: nil fault.
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "0123456789" {
		t.Fatalf("pass-through body %q", body)
	}

	// Err: the round trip fails and is recognizably injected.
	mode.Store(&Fault{Err: errors.New("connection refused")})
	if _, err := client.Get(ts.URL); !errors.Is(err, ErrInjected) {
		t.Fatalf("injected error not surfaced: %v", err)
	}

	// Delay: at least the configured latency.
	mode.Store(&Fault{Delay: 30 * time.Millisecond})
	t0 := time.Now()
	resp, err = client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if d := time.Since(t0); d < 30*time.Millisecond {
		t.Fatalf("delayed request returned in %v", d)
	}

	// Hang: only the context deadline frees the caller.
	mode.Store(&Fault{Hang: true})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL, nil)
	if _, err := client.Do(req); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hang ended with %v, want deadline exceeded", err)
	}
}

func TestTransportTruncateBody(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "0123456789")
	}))
	defer ts.Close()
	client := &http.Client{Transport: &Transport{Plan: func(req *http.Request) *Fault {
		return &Fault{TruncateBody: 4}
	}}}
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "0123" {
		t.Fatalf("truncated body %q, want %q", body, "0123")
	}
}

func testRecord(version uint64, epoch uint32) wal.Record {
	return wal.Record{
		Version: version,
		Epoch:   epoch,
		Edges:   []graph.Edge{{Src: int(version), Dst: int(version) + 1}},
	}
}

// TestFSTornWriteRollsBack: a torn append must leave the log exactly as
// it was — same last version, still appendable, and a reopen sees no
// trace of the torn frame.
func TestFSTornWriteRollsBack(t *testing.T) {
	dir := t.TempDir()
	fs := WrapFS(nil)
	log, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := log.Append(testRecord(1, 0)); err != nil {
		t.Fatal(err)
	}

	fs.TearWrites(1)
	if err := log.Append(testRecord(2, 0)); !errors.Is(err, ErrInjected) {
		t.Fatalf("torn append err = %v, want injected", err)
	}
	if last := log.LastVersion(); last != 1 {
		t.Fatalf("last version after torn append = %d, want 1", last)
	}
	// The filesystem healed; the same version appends cleanly.
	if err := log.Append(testRecord(2, 0)); err != nil {
		t.Fatalf("retry after rollback: %v", err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	recs, err := re.ReadFrom(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Version != 1 || recs[1].Version != 2 {
		t.Fatalf("reopened log has %v", recs)
	}
}

// TestFSFsyncFailureRollsBack: under SyncAlways an append whose fsync
// fails was never durable and must not count — the unacked frame is
// rolled back so a retry stays version-contiguous.
func TestFSFsyncFailureRollsBack(t *testing.T) {
	dir := t.TempDir()
	fs := WrapFS(nil)
	log, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	if err := log.Append(testRecord(1, 0)); err != nil {
		t.Fatal(err)
	}

	fs.FailSyncs(1)
	if err := log.Append(testRecord(2, 0)); !errors.Is(err, ErrInjected) {
		t.Fatalf("unsynced append err = %v, want injected", err)
	}
	if last := log.LastVersion(); last != 1 {
		t.Fatalf("last version after failed fsync = %d, want 1", last)
	}
	if err := log.Append(testRecord(2, 0)); err != nil {
		t.Fatalf("retry after fsync failure: %v", err)
	}
	recs, err := log.ReadFrom(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
}

// TestFSReadFailureSurfaces: an EIO mid-read must surface to the
// caller, not silently end the stream.
func TestFSReadFailureSurfaces(t *testing.T) {
	dir := t.TempDir()
	fs := WrapFS(nil)
	log, err := wal.Open(dir, wal.Options{Sync: wal.SyncNone, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	for v := uint64(1); v <= 3; v++ {
		if err := log.Append(testRecord(v, 0)); err != nil {
			t.Fatal(err)
		}
	}
	fs.FailReads(1)
	if _, err := log.ReadFrom(0, 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("read with injected EIO: err = %v, want injected", err)
	}
	// Healed: the same read succeeds.
	recs, err := log.ReadFrom(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records after heal, want 3", len(recs))
	}
}
