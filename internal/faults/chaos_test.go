package faults

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pane/internal/core"
	"pane/internal/engine"
	"pane/internal/graph"
	"pane/internal/replica"
	"pane/internal/server"
	"pane/internal/wal"
)

// The chaos suite runs the whole serving stack — leader, WAL, HTTP
// replication, followers — under injected faults and a leader kill,
// and holds it to the same acceptance bar as the clean-path tests:
// bit-identical convergence, no record accepted from two fencing
// epochs at the same version, and a deposed leader whose appends fail.
//
// CI runs this package with -race -count=2; everything must be
// self-contained and deterministic enough to pass repeatedly.

func chaosEngineOpts() []engine.Option {
	return []engine.Option{
		engine.WithAffinityThreshold(0), // bit-identity needs the deterministic path
		engine.WithIndex(engine.IndexConfig{IVF: true, NList: 2, NProbe: 2}),
	}
}

func trainChaosLeader(t *testing.T) *engine.Engine {
	t.Helper()
	eng, err := engine.Train(graph.RunningExample(),
		core.Config{K: 4, Alpha: 0.15, Eps: 0.05, Seed: 1}, chaosEngineOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func chaosUpdate(t *testing.T, eng *engine.Engine, i int) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(i)))
	var err error
	if i%2 == 0 {
		_, err = eng.ApplyEdges([]graph.Edge{{Src: rng.Intn(6), Dst: rng.Intn(6)}})
	} else {
		_, err = eng.ApplyAttrs([]graph.AttrEntry{{Node: rng.Intn(6), Attr: rng.Intn(3), Weight: 0.25}})
	}
	if err != nil {
		t.Fatalf("update %d: %v", i, err)
	}
}

// flakyPlan delays a slice of requests and truncates an occasional
// /replicate body mid-frame — enough chaos to exercise the retry and
// torn-stream paths on every run, counted so runs stay reproducible.
func flakyPlan() func(req *http.Request) *Fault {
	var n atomic.Int64
	return func(req *http.Request) *Fault {
		i := n.Add(1)
		switch {
		case i%11 == 3:
			return &Fault{Delay: 2 * time.Millisecond}
		case i%7 == 5 && strings.HasPrefix(req.URL.Path, "/replicate"):
			// Cut inside the stream: whole frames apply, the tail is
			// discarded, the next round resumes.
			return &Fault{TruncateBody: 40}
		}
		return nil
	}
}

func flakyFollowerOpts(leaderURL string) replica.Options {
	return replica.Options{
		Leader:     leaderURL,
		Poll:       time.Millisecond,
		MaxBackoff: 4 * time.Millisecond,
		Client:     &http.Client{Transport: &Transport{Plan: flakyPlan()}},
	}
}

func waitVersion(t *testing.T, eng *engine.Engine, want uint64, what string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for eng.Version() != want {
		if time.Now().After(deadline) {
			t.Fatalf("%s stuck at version %d, want %d", what, eng.Version(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

func assertConverged(t *testing.T, a, b *engine.Engine) {
	t.Helper()
	a.WaitForIndex()
	b.WaitForIndex()
	for _, mode := range []string{engine.ModeExact, engine.ModeIVF} {
		for u := 0; u < 6; u++ {
			ra, err := a.TopLinks(u, 4, mode, 0)
			if err != nil {
				t.Fatal(err)
			}
			rb, err := b.TopLinks(u, 4, mode, 0)
			if err != nil {
				t.Fatal(err)
			}
			if ra.Version != rb.Version || len(ra.Results) != len(rb.Results) {
				t.Fatalf("mode %s node %d: v%d/%d results vs v%d/%d",
					mode, u, ra.Version, len(ra.Results), rb.Version, len(rb.Results))
			}
			for i := range ra.Results {
				if ra.Results[i] != rb.Results[i] {
					t.Fatalf("mode %s node %d rank %d: %+v != %+v", mode, u, i, ra.Results[i], rb.Results[i])
				}
			}
		}
	}
}

// TestChaosLeaderKillPromotion is the failover acceptance test: a
// leader dies mid-stream with two followers tailing through a faulty
// network; one follower promotes to epoch 1 and takes writes whose
// versions collide with updates the dead leader applied but never
// replicated; the survivor re-points and converges bit-identically,
// and no engine accepts records from both epochs at the same version.
func TestChaosLeaderKillPromotion(t *testing.T) {
	leader := trainChaosLeader(t)
	leaderLog, err := wal.Open(t.TempDir(), wal.Options{Sync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer leaderLog.Close()
	if err := leader.AttachWAL(leaderLog); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(leader))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r0, err := replica.Bootstrap(ctx, flakyFollowerOpts(ts.URL), chaosEngineOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := replica.Bootstrap(ctx, flakyFollowerOpts(ts.URL), chaosEngineOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	go r0.Run(ctx)
	go r1.Run(ctx)

	// Live stream through the faulty network: both followers reach v7.
	for i := 1; i <= 6; i++ {
		chaosUpdate(t, leader, i)
	}
	waitVersion(t, r0.Engine(), leader.Version(), "follower 0")
	waitVersion(t, r1.Engine(), leader.Version(), "follower 1")

	// The leader applies two more updates nobody replicates (v8, v9 on
	// epoch 0), then dies mid-deployment.
	chaosUpdate(t, leader, 7)
	chaosUpdate(t, leader, 8)
	ts.Close()

	// The orphaned followers degrade: rounds fail, staleness flips on,
	// reads keep serving.
	deadline := time.Now().Add(30 * time.Second)
	for !r0.Stale() {
		if time.Now().After(deadline) {
			t.Fatalf("follower 0 never went stale after leader death (status %+v)", r0.Status())
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := r0.Engine().TopLinks(0, 4, engine.ModeExact, 0); err != nil {
		t.Fatalf("stale follower read: %v", err)
	}

	// Failover: r0 promotes at epoch 1 from v7 and takes writes whose
	// versions 8 and 9 collide with the dead leader's unreplicated ones.
	plog, err := wal.Open(t.TempDir(), wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer plog.Close()
	epoch, err := r0.Promote(plog)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 {
		t.Fatalf("promotion epoch = %d, want 1", epoch)
	}
	if r0.Stale() {
		t.Fatal("promoted leader still reports the outage's staleness")
	}
	chaosUpdate(t, r0.Engine(), 107)
	chaosUpdate(t, r0.Engine(), 108)
	if got := r0.Engine().Version(); got != 9 {
		t.Fatalf("promoted leader at v%d, want 9", got)
	}

	// Epoch bookkeeping across the two lineages: the dead leader's log
	// is pure epoch 0, the promoted log pure epoch 1, same version range.
	oldRecs, err := leaderLog.ReadFrom(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range oldRecs {
		if rec.Epoch != 0 {
			t.Fatalf("old lineage record v%d has epoch %d", rec.Version, rec.Epoch)
		}
	}
	newRecs, err := plog.ReadFrom(7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(newRecs) != 2 {
		t.Fatalf("promoted log has %d records, want 2", len(newRecs))
	}
	for _, rec := range newRecs {
		if rec.Epoch != 1 {
			t.Fatalf("promoted record v%d has epoch %d, want 1", rec.Version, rec.Epoch)
		}
	}

	// The survivor re-points and converges bit-identically with the
	// promoted lineage — still through the faulty network.
	ts2 := httptest.NewServer(server.New(r0.Engine()))
	defer ts2.Close()
	r1.SetLeader(ts2.URL)
	waitVersion(t, r1.Engine(), r0.Engine().Version(), "survivor")
	if r1.Engine().Epoch() != 1 {
		t.Fatalf("survivor epoch = %d, want 1", r1.Engine().Epoch())
	}
	cancel()
	assertConverged(t, r0.Engine(), r1.Engine())

	// Fencing, both directions. The deposed leader hears about epoch 1
	// and its appends fail for good...
	leader.Fence(epoch)
	if _, err := leader.ApplyEdges([]graph.Edge{{Src: 0, Dst: 1}}); !errors.Is(err, engine.ErrFenced) {
		t.Fatalf("deposed leader append: err = %v, want ErrFenced", err)
	}
	// ...and no engine takes records from both epochs at the same
	// version: an engine on the promoted lineage must refuse a dead-
	// lineage record even when its version would extend the stream.
	stale := oldRecs[len(oldRecs)-1] // dead leader's v9, epoch 0
	if stale.Version != 9 {
		t.Fatalf("old lineage last record v%d, want 9", stale.Version)
	}
	r2, err := replica.Bootstrap(context.Background(),
		replica.Options{Leader: ts2.URL, Poll: time.Millisecond}, chaosEngineOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	// r2 bootstrapped from the promoted bundle (v9, epoch adopted on
	// the next record apply): force the mixed-epoch case directly.
	if r2.Engine().Version() != 9 {
		t.Fatalf("r2 at v%d", r2.Engine().Version())
	}
	chaosUpdate(t, r0.Engine(), 109) // v10 on epoch 1
	if _, err := r2.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if r2.Engine().Epoch() != 1 || r2.Engine().Version() != 10 {
		t.Fatalf("r2 after replay: v%d epoch %d, want v10 epoch 1", r2.Engine().Version(), r2.Engine().Epoch())
	}
	forged := stale
	forged.Version = 11 // version extends; epoch is from the dead lineage
	if _, err := r2.Engine().ApplyRecord(forged); !errors.Is(err, engine.ErrFenced) {
		t.Fatalf("epoch-0 record on an epoch-1 engine: err = %v, want ErrFenced", err)
	}
}

// TestChaosFaultyDiskLeader: a leader whose disk tears writes and
// refuses fsyncs mid-stream must fail the affected updates cleanly
// (no version published, no torn state), accept retries, recover its
// exact stream on reopen, and still feed followers to bit-identical
// convergence.
func TestChaosFaultyDiskLeader(t *testing.T) {
	dir := t.TempDir()
	fs := WrapFS(nil)
	leader := trainChaosLeader(t)
	log, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := leader.AttachWAL(log); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(leader))
	defer ts.Close()

	apply := func(i int) error {
		rng := rand.New(rand.NewSource(int64(i)))
		var err error
		if i%2 == 0 {
			_, err = leader.ApplyEdges([]graph.Edge{{Src: rng.Intn(6), Dst: rng.Intn(6)}})
		} else {
			_, err = leader.ApplyAttrs([]graph.AttrEntry{{Node: rng.Intn(6), Attr: rng.Intn(3), Weight: 0.25}})
		}
		return err
	}

	for i := 1; i <= 8; i++ {
		switch i {
		case 3:
			fs.TearWrites(1)
		case 6:
			fs.FailSyncs(1)
		}
		err := apply(i)
		if i == 3 || i == 6 {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("update %d under disk fault: err = %v, want injected", i, err)
			}
			// The failed update was never acked: retry it.
			if err := apply(i); err != nil {
				t.Fatalf("retry of update %d: %v", i, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
	}
	want := leader.Version()
	if want != 9 {
		t.Fatalf("leader at v%d, want 9 (8 applied updates)", want)
	}

	// A follower replays the whole stream to bit-identity.
	r, err := replica.Bootstrap(context.Background(),
		replica.Options{Leader: ts.URL, Poll: time.Millisecond}, chaosEngineOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if r.Engine().Version() != want {
		t.Fatalf("follower at v%d, leader at v%d", r.Engine().Version(), want)
	}
	assertConverged(t, leader, r.Engine())

	// Crash-recovery: reopening the log finds the exact contiguous
	// stream — the rolled-back frames left no trace.
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	recs, err := re.ReadFrom(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 8 {
		t.Fatalf("recovered %d records, want 8", len(recs))
	}
	for i, rec := range recs {
		if rec.Version != uint64(i+2) || rec.Epoch != 0 {
			t.Fatalf("recovered record %d: v%d epoch %d", i, rec.Version, rec.Epoch)
		}
	}
}

// TestChaosEpochlessLogCompat: a log written entirely at epoch 0 (the
// PR 8 on-disk format — no epoch words anywhere) must reopen, replay,
// and re-encode byte-identically under the current code.
func TestChaosEpochlessLogCompat(t *testing.T) {
	dir := t.TempDir()
	log, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for v := uint64(1); v <= 5; v++ {
		rec := wal.Record{Version: v, Edges: []graph.Edge{{Src: int(v % 6), Dst: int((v + 1) % 6)}}}
		frame, err := wal.EncodeFrame(nil, rec)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, frame)
		if err := log.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.LastEpoch(); got != 0 {
		t.Fatalf("epoch-less log reopened at epoch %d", got)
	}
	recs, err := re.ReadFrom(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("replayed %d records, want 5", len(recs))
	}
	for i, rec := range recs {
		frame, err := wal.EncodeFrame(nil, rec)
		if err != nil {
			t.Fatal(err)
		}
		if string(frame) != string(want[i]) {
			t.Fatalf("record %d re-encodes differently: % x vs % x", i, frame, want[i])
		}
		if rec.Epoch != 0 {
			t.Fatalf("record %d decoded with epoch %d", i, rec.Epoch)
		}
	}
}
