// Package faults is the fault-injection layer behind the chaos tier:
// deterministic, test-controlled failures at the two boundaries the
// serving stack crosses — the network (Transport, an http.RoundTripper
// that errors, delays, hangs, or truncates responses) and the disk
// (FS, a wal.FS that tears writes, fails fsyncs, and errors reads).
//
// Nothing here is random. Tests script faults explicitly (a Plan
// function per request, counted budgets per filesystem op), so a chaos
// run that fails replays exactly. The package has no test-only build
// constraints because paneserve never imports it; it depends only on
// internal/wal for the FS seam.
package faults

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"pane/internal/wal"
)

// ErrInjected is the root of every synthetic failure, so tests can
// errors.Is-match injected faults apart from real ones.
var ErrInjected = errors.New("faults: injected fault")

// Fault describes what happens to one HTTP request. The zero value
// passes the request through untouched. Fields compose in order:
// Delay first, then Err or Hang (mutually exclusive, Err wins), then —
// for requests that do go out — TruncateBody on the response.
type Fault struct {
	// Delay sleeps before anything else (bounded by the request
	// context), modeling a slow network or an overloaded leader.
	Delay time.Duration
	// Err fails the round trip outright — connection refused, reset.
	Err error
	// Hang blocks until the request context is done and returns its
	// error: the pathology timeouts exist for. A client with no
	// deadline hangs forever, which is exactly the point.
	Hang bool
	// TruncateBody forwards the request but cuts the response body to
	// at most this many bytes (when > 0) — a mid-stream leader death
	// from the client's perspective.
	TruncateBody int64
}

// Transport is an http.RoundTripper that consults Plan for each
// request. A nil Plan result (or a zero Fault) forwards to Base.
type Transport struct {
	// Base handles non-faulted requests; nil means
	// http.DefaultTransport.
	Base http.RoundTripper
	// Plan decides each request's fate. Called once per attempt, so a
	// counting plan can fail the first N tries and pass the rest.
	Plan func(req *http.Request) *Fault
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	var f Fault
	if t.Plan != nil {
		if p := t.Plan(req); p != nil {
			f = *p
		}
	}
	if f.Delay > 0 {
		select {
		case <-time.After(f.Delay):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if f.Err != nil {
		return nil, fmt.Errorf("%w: %w", ErrInjected, f.Err)
	}
	if f.Hang {
		<-req.Context().Done()
		return nil, req.Context().Err()
	}
	resp, err := base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if f.TruncateBody > 0 {
		resp.Body = &truncatedBody{rc: resp.Body, remaining: f.TruncateBody}
	}
	return resp, nil
}

// truncatedBody yields at most `remaining` bytes, then reports EOF —
// indistinguishable from a connection the other side closed mid-write.
type truncatedBody struct {
	rc        io.ReadCloser
	remaining int64
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, io.EOF
	}
	if int64(len(p)) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.rc.Read(p)
	b.remaining -= int64(n)
	return n, err
}

func (b *truncatedBody) Close() error { return b.rc.Close() }

// FS wraps a wal.FS with counted fault budgets: arm N failures of a
// kind and the next N matching operations fail, after which the
// filesystem heals. Budgets are safe to arm from any goroutine.
type FS struct {
	inner wal.FS

	tearWrites atomic.Int64 // upcoming Write calls that write half and fail
	failSyncs  atomic.Int64 // upcoming Sync calls that fail
	failReads  atomic.Int64 // upcoming Read calls that fail (EIO-style)
}

// WrapFS wraps inner (nil means the real OS filesystem) for injection.
func WrapFS(inner wal.FS) *FS {
	if inner == nil {
		inner = wal.OSFS()
	}
	return &FS{inner: inner}
}

// TearWrites arms n short writes: each affected Write persists only
// half its bytes and returns an error — a torn frame on disk.
func (f *FS) TearWrites(n int) { f.tearWrites.Store(int64(n)) }

// FailSyncs arms n fsync failures — the write reached the page cache
// but durability is refused, the failure mode fsyncgate made famous.
func (f *FS) FailSyncs(n int) { f.failSyncs.Store(int64(n)) }

// FailReads arms n read failures (EIO), hitting both recovery scans
// and /replicate reads.
func (f *FS) FailReads(n int) { f.failReads.Store(int64(n)) }

// claim consumes one unit of a budget if any remains.
func claim(c *atomic.Int64) bool {
	for {
		n := c.Load()
		if n <= 0 {
			return false
		}
		if c.CompareAndSwap(n, n-1) {
			return true
		}
	}
}

func (f *FS) MkdirAll(dir string, perm os.FileMode) error { return f.inner.MkdirAll(dir, perm) }
func (f *FS) ReadDir(dir string) ([]os.DirEntry, error)   { return f.inner.ReadDir(dir) }
func (f *FS) Remove(name string) error                    { return f.inner.Remove(name) }
func (f *FS) Truncate(name string, size int64) error      { return f.inner.Truncate(name, size) }
func (f *FS) SyncDir(dir string) error                    { return f.inner.SyncDir(dir) }

func (f *FS) Create(name string) (wal.File, error) {
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{inner: file, fs: f}, nil
}

func (f *FS) OpenAppend(name string) (wal.File, error) {
	file, err := f.inner.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{inner: file, fs: f}, nil
}

func (f *FS) Open(name string) (wal.File, error) {
	file, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{inner: file, fs: f}, nil
}

// faultFile applies the armed budgets to one open file.
type faultFile struct {
	inner wal.File
	fs    *FS
}

func (f *faultFile) Write(p []byte) (int, error) {
	if claim(&f.fs.tearWrites) {
		n, err := f.inner.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("%w: write torn after %d of %d bytes", ErrInjected, n, len(p))
	}
	return f.inner.Write(p)
}

func (f *faultFile) Read(p []byte) (int, error) {
	if claim(&f.fs.failReads) {
		return 0, fmt.Errorf("%w: read error (EIO)", ErrInjected)
	}
	return f.inner.Read(p)
}

func (f *faultFile) Sync() error {
	if claim(&f.fs.failSyncs) {
		return fmt.Errorf("%w: fsync refused", ErrInjected)
	}
	return f.inner.Sync()
}

func (f *faultFile) Close() error { return f.inner.Close() }
