//go:build !amd64 || noasm

package index

import "pane/internal/mat"

// Builds without the F16C kernel (non-amd64 platforms, or any platform
// under the noasm tag) always take the portable decode-and-accumulate
// kernel. Half→float64 decode is exact and the generic kernel follows
// the same canonical summation order, so scores are bit-identical either
// way.
const useDotFP16SIMD = false

// dotFP16SIMD is never called when useDotFP16SIMD is false; this stub
// keeps the portable build compiling.
func dotFP16SIMD(q *float64, c *uint16, n int) float64 {
	panic("index: dotFP16SIMD called on a build without SIMD support")
}

// FP16ISA reports the instruction set the fp16 scan kernel dispatches to
// on this build and host.
func FP16ISA() string {
	return mat.ISAGeneric
}
